//! A look inside the contention mechanism itself (§3): watch the average
//! diff-request response time at the master grow with the node count, and
//! watch replicated sequential execution flatten it.
//!
//! The kernel's phases run on the page-guard API (`ShArray::with_slices` /
//! `with_slices_mut`): each page is faulted once per pass and the elements
//! stream straight from the page bytes, so the host-side cost of driving
//! the simulation stays flat while the *simulated* contention (what this
//! demo measures) is untouched — the guards charge exactly the virtual
//! time the element-wise protocol would.
//!
//! ```text
//! cargo run --release --example contention_demo
//! ```

use repseq::apps::kernels::{ContentionKernel, KernelConfig};
use repseq::core::{RunConfig, Runtime, SeqMode};

fn response_ms(mode: SeqMode, nodes: usize) -> (f64, f64) {
    let mut rt = Runtime::new(RunConfig {
        cluster: repseq::dsm::ClusterConfig::paper(nodes),
        seq_mode: mode,
    });
    let k = ContentionKernel::setup(&mut rt, KernelConfig { pages: 24, iters: 3, read_ns: 40.0 });
    let stats = rt.stats();
    rt.run(move |team| {
        k.run(team)?;
        Ok(())
    })
    .expect("simulation failed");
    let snap = stats.snapshot();
    (
        snap.par_agg().avg_response().map(|d| d.as_millis_f64()).unwrap_or(0.0),
        snap.total_time.as_secs_f64(),
    )
}

fn main() {
    println!("Contention at the master vs. cluster size (24 shared pages, 3 iterations)\n");
    println!("{:>6} {:>26} {:>26}", "nodes", "Original avg resp (ms)", "Replicated avg resp (ms)");
    for nodes in [2usize, 4, 8, 16, 32] {
        let (orig, _) = response_ms(SeqMode::MasterOnly, nodes);
        let (opt, _) = response_ms(SeqMode::Replicated, nodes);
        println!("{nodes:>6} {orig:>26.3} {opt:>26.3}");
    }
    println!(
        "\nThe base system's response time climbs with the node count — requests queue\n\
         at the master's link, exactly the effect §3 describes — while the replicated\n\
         system's parallel sections stay contention-free (no requests at all once the\n\
         data is locally written everywhere; 0 ms means no parallel-section requests)."
    );
}
