//! The paper's first evaluation application: Barnes-Hut N-body simulation
//! (§6.1), runnable under all three systems.
//!
//! ```text
//! cargo run --release --example barnes_hut [bodies] [nodes] [timesteps]
//! ```

use repseq::apps::barnes_hut::{BarnesHut, BhConfig};
use repseq::core::{RunConfig, Runtime, SeqMode};

fn main() {
    let mut args = std::env::args().skip(1);
    let bodies: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(4096);
    let nodes: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(16);
    let steps: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(2);
    println!("Barnes-Hut: {bodies} bodies, {nodes} nodes, {steps} timesteps\n");

    let mut outcomes = Vec::new();
    for (label, mode) in [
        ("Original (master-only sequential)", SeqMode::MasterOnly),
        ("Broadcast ablation", SeqMode::MasterOnlyBroadcast),
        ("Optimized (replicated sequential)", SeqMode::Replicated),
    ] {
        let mut cfg = BhConfig::scaled(bodies);
        cfg.timesteps = steps;
        let mut rt = Runtime::new(RunConfig {
            cluster: repseq::dsm::ClusterConfig::paper(nodes),
            seq_mode: mode,
        });
        let app = BarnesHut::setup(&mut rt, cfg);
        let stats = rt.stats();
        let out = std::sync::Arc::new(parking_lot::Mutex::new(None));
        let out2 = std::sync::Arc::clone(&out);
        rt.run(move |team| {
            let r = app.run(team)?;
            *out2.lock() = Some(r);
            Ok(())
        })
        .expect("simulation failed");
        let result = out.lock().take().unwrap();
        let snap = stats.snapshot();
        println!(
            "{label}\n  total {:>8.2} s   sequential {:>7.2} s   parallel {:>7.2} s",
            snap.total_time.as_secs_f64(),
            snap.seq_time().as_secs_f64(),
            snap.par_time().as_secs_f64()
        );
        println!(
            "  parallel diff data {:>8} KB   avg parallel response {:>6.2} ms\n",
            snap.par_agg().diff_bytes / 1024,
            snap.par_agg().avg_response().map(|d| d.as_millis_f64()).unwrap_or(0.0)
        );
        outcomes.push((label, result));
    }
    let first = outcomes[0].1;
    for (label, r) in &outcomes[1..] {
        assert_eq!(*r, first, "{label} diverged from the original system");
    }
    println!(
        "all three systems computed identical physics ({} interactions, checksum {:.6})",
        first.interactions, first.checksum
    );
}
