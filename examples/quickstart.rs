//! Quickstart: the paper's idea in 80 lines.
//!
//! A master rewrites a block of shared pages in a sequential section;
//! every node then reads all of it in the parallel section. Under the base
//! system the reads storm the master (§3 contention); under replicated
//! sequential execution (the paper's contribution) the rewrite happens
//! locally on every node and the storm disappears.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use repseq::core::{RunConfig, Runtime, SeqMode, Worker};
use repseq::dsm::ShArray;
use repseq::sim::Dur;

fn run(mode: SeqMode) -> (u64, repseq::stats::StatsSnapshot) {
    let nodes = 16;
    let mut rt = Runtime::new(RunConfig {
        cluster: repseq::dsm::ClusterConfig::paper(nodes),
        seq_mode: mode,
    });
    // 32 pages of shared data plus a per-node result slot.
    let data: ShArray<u64> = rt.alloc_array_page_aligned(32 * 512);
    let sums: ShArray<u64> = rt.alloc_array_page_aligned(nodes);
    let stats = rt.stats();

    let out = std::sync::Arc::new(parking_lot::Mutex::new(0u64));
    let out2 = std::sync::Arc::clone(&out);
    rt.run(move |team| {
        team.start_measurement();
        for iter in 0..3u64 {
            // Sequential section: rewrite everything (master-only under
            // MasterOnly, locally on every node under Replicated).
            team.sequential(move |nd| {
                let vals: Vec<u64> =
                    (0..data.len() as u64).map(|k| k.wrapping_mul(iter + 1)).collect();
                data.write_range(nd, 0, &vals)
            })?;
            // Parallel section: every node reads the whole block.
            team.parallel(move |nd| {
                let vals = nd.read_all(data)?;
                nd.charge(Dur::from_micros(vals.len() as u64 / 50));
                let s = vals.iter().fold(0u64, |a, &b| a.wrapping_add(b));
                sums.set(nd, nd.node(), s)
            })?;
        }
        team.end_measurement();
        let mut check = 0u64;
        for q in 0..team.n_nodes() {
            check = check.wrapping_add(sums.get(team.node(), q)?);
        }
        *out2.lock() = check;
        Ok(())
    })
    .expect("simulation failed");
    let check = *out.lock();
    (check, stats.snapshot())
}

fn main() {
    println!("repseq quickstart: 16 simulated nodes, 3 iterations\n");
    let (c_orig, orig) = run(SeqMode::MasterOnly);
    let (c_opt, opt) = run(SeqMode::Replicated);
    assert_eq!(c_orig, c_opt, "both systems must compute the same result");

    println!("{:<34} {:>12} {:>12}", "", "Original", "Replicated");
    println!(
        "{:<34} {:>12.2} {:>12.2}",
        "total time (virtual s)",
        orig.total_time.as_secs_f64(),
        opt.total_time.as_secs_f64()
    );
    println!(
        "{:<34} {:>12.2} {:>12.2}",
        "parallel-section time (s)",
        orig.par_time().as_secs_f64(),
        opt.par_time().as_secs_f64()
    );
    println!(
        "{:<34} {:>12} {:>12}",
        "parallel diff requests",
        orig.par_agg().diff_requests,
        opt.par_agg().diff_requests
    );
    println!(
        "{:<34} {:>12.2} {:>12.2}",
        "avg parallel response (ms)",
        orig.par_agg().avg_response().map(|d| d.as_millis_f64()).unwrap_or(0.0),
        opt.par_agg().avg_response().map(|d| d.as_millis_f64()).unwrap_or(0.0)
    );
    println!(
        "\nchecksum {c_orig:#018x} — identical under both systems; the request storm after\n\
         the sequential section is gone under replicated sequential execution."
    );
}
