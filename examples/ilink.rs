//! The paper's second evaluation application: a genetic-linkage workload
//! with parallel Ilink's structure (§6.2), runnable under both systems.
//!
//! ```text
//! cargo run --release --example ilink [iterations] [nodes]
//! ```

use repseq::apps::ilink::{Ilink, IlinkConfig};
use repseq::core::{RunConfig, Runtime, SeqMode};

fn main() {
    let mut args = std::env::args().skip(1);
    let iterations: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(8);
    let nodes: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(16);
    let cfg = IlinkConfig::scaled(iterations);
    println!(
        "Ilink: {} families, genarrays of {}, {iterations} iterations, {nodes} nodes\n",
        cfg.n_families, cfg.genarray_len
    );

    let mut results = Vec::new();
    for (label, mode) in [
        ("Original (master-only sequential)", SeqMode::MasterOnly),
        ("Optimized (replicated sequential)", SeqMode::Replicated),
    ] {
        let mut rt = Runtime::new(RunConfig {
            cluster: repseq::dsm::ClusterConfig::paper(nodes),
            seq_mode: mode,
        });
        let app = Ilink::setup(&mut rt, cfg.clone());
        let stats = rt.stats();
        let out = std::sync::Arc::new(parking_lot::Mutex::new(None));
        let out2 = std::sync::Arc::clone(&out);
        rt.run(move |team| {
            let r = app.run(team)?;
            *out2.lock() = Some(r);
            Ok(())
        })
        .expect("simulation failed");
        let r = out.lock().take().unwrap();
        let snap = stats.snapshot();
        println!(
            "{label}\n  total {:>8.3} s   sequential {:>7.3} s   parallel {:>7.3} s",
            snap.total_time.as_secs_f64(),
            snap.seq_time().as_secs_f64(),
            snap.par_time().as_secs_f64()
        );
        println!(
            "  {} parallel / {} sequential updates; parallel diff data {} KB\n",
            r.parallel_updates,
            r.sequential_updates,
            snap.par_agg().diff_bytes / 1024
        );
        results.push(r);
    }
    assert_eq!(
        results[0].likelihood, results[1].likelihood,
        "the two systems must compute identical likelihoods"
    );
    println!("likelihood {:.9} — identical under both systems", results[0].likelihood);
}
