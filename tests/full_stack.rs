//! Repository-level integration tests: the whole stack (engine → network →
//! DSM → runtime → applications) through the facade crate, mixing features
//! that the per-crate suites exercise separately.

use std::sync::Arc;

use parking_lot::Mutex;
use repseq::core::{RunConfig, Runtime, SeqMode, Worker};
use repseq::dsm::{ClusterConfig, ShArray};
use repseq::sim::Dur;

/// A program mixing every synchronization feature: replicated sequential
/// sections, parallel regions with internal barriers, locks, conditional
/// parallelism and reductions — all in one run.
#[test]
fn kitchen_sink_program() {
    for mode in [SeqMode::MasterOnly, SeqMode::Replicated] {
        let n = 5;
        let mut rt = Runtime::new(RunConfig { cluster: ClusterConfig::paper(n), seq_mode: mode });
        let grid: ShArray<u64> = rt.alloc_array_page_aligned(n * 128);
        let ticket = rt.alloc_var::<u64>();
        let out = Arc::new(Mutex::new((0u64, 0u64)));
        let out2 = Arc::clone(&out);
        rt.run(move |team| {
            team.start_measurement();
            // Replicated/sequential init.
            team.sequential(move |nd| {
                for i in 0..grid.len() {
                    grid.set(nd, i, i as u64)?;
                }
                Ok(())
            })?;
            // Parallel phase with internal barrier and a lock-protected
            // ticket counter.
            team.parallel(move |nd| {
                for i in nd.my_block(grid.len()) {
                    let v = grid.get(nd, i)?;
                    grid.set(nd, i, v * 2)?;
                }
                nd.barrier()?;
                // After the barrier, read a neighbour's block.
                let other = (nd.node() + 1) % nd.n_nodes();
                let i = other * 128;
                assert_eq!(grid.get(nd, i)?, (i as u64) * 2);
                nd.lock(9)?;
                let t = ticket.get(nd)?;
                nd.charge(Dur::from_micros(3));
                ticket.set(nd, t + 1)?;
                nd.unlock(9)?;
                Ok(())
            })?;
            // Conditional parallelism.
            for round in 0..2 {
                if round == 0 {
                    team.parallel_for_cyclic(64, move |nd, i| {
                        let v = grid.get(nd, i)?;
                        grid.set(nd, i, v + 1)
                    })?;
                } else {
                    team.sequential(move |nd| {
                        for i in 0..64 {
                            let v = grid.get(nd, i)?;
                            grid.set(nd, i, v + 1)?;
                        }
                        Ok(())
                    })?;
                }
            }
            team.end_measurement();
            let tickets = ticket.get(team.node())?;
            let probe = grid.get(team.node(), 10)?;
            *out2.lock() = (tickets, probe);
            Ok(())
        })
        .unwrap();
        let (tickets, probe) = *out.lock();
        assert_eq!(tickets, n as u64, "{mode:?}: every node took the lock once");
        assert_eq!(probe, 10 * 2 + 2, "{mode:?}: grid[10] = 10*2 + two increments");
    }
}

/// Full determinism at the facade level: two identical runs produce the
/// same event count, end time and statistics.
#[test]
fn end_to_end_runs_are_reproducible() {
    let run = || {
        let n = 4;
        let mut rt = Runtime::new(RunConfig {
            cluster: ClusterConfig::paper(n),
            seq_mode: SeqMode::Replicated,
        });
        let app = repseq::apps::barnes_hut::BarnesHut::setup(
            &mut rt,
            repseq::apps::barnes_hut::BhConfig::tiny(),
        );
        let stats = rt.stats();
        let report = rt
            .run(move |team| {
                app.run(team)?;
                Ok(())
            })
            .unwrap();
        let snap = stats.snapshot();
        (
            report.end_time.nanos(),
            report.events_processed,
            snap.total_agg().messages,
            snap.total_agg().bytes,
            snap.par_agg().diff_bytes,
        )
    };
    assert_eq!(run(), run());
}

/// The headline claim, end to end at a contention-heavy node count: with
/// everything composed through the facade, replicated sequential execution
/// still wins on the Barnes-Hut workload.
#[test]
fn headline_improvement_holds_end_to_end() {
    let run = |mode| {
        let n = 16;
        let mut rt = Runtime::new(RunConfig { cluster: ClusterConfig::paper(n), seq_mode: mode });
        let mut cfg = repseq::apps::barnes_hut::BhConfig::scaled(2048);
        cfg.timesteps = 2;
        let app = repseq::apps::barnes_hut::BarnesHut::setup(&mut rt, cfg);
        let stats = rt.stats();
        rt.run(move |team| {
            app.run(team)?;
            Ok(())
        })
        .unwrap();
        stats.snapshot()
    };
    let orig = run(SeqMode::MasterOnly);
    let opt = run(SeqMode::Replicated);
    assert!(
        opt.total_time < orig.total_time,
        "optimized must win at 16 nodes: {} vs {}",
        opt.total_time,
        orig.total_time
    );
    assert!(opt.par_agg().diff_bytes < orig.par_agg().diff_bytes);
}

/// Loss injection composes with the full application stack: a lossy hub
/// still yields bit-identical physics via the recovery path.
#[test]
fn lossy_multicast_does_not_corrupt_applications() {
    let run = |loss: Option<repseq::net::LossConfig>| {
        let mut cluster = ClusterConfig::paper(3);
        cluster.net.loss = loss;
        cluster.dsm.rse_timeout = Dur::from_millis(25);
        let mut rt = Runtime::new(RunConfig { cluster, seq_mode: SeqMode::Replicated });
        let app = repseq::apps::barnes_hut::BarnesHut::setup(
            &mut rt,
            repseq::apps::barnes_hut::BhConfig::tiny(),
        );
        let out = Arc::new(Mutex::new(None));
        let out2 = Arc::clone(&out);
        rt.run(move |team| {
            let r = app.run(team)?;
            *out2.lock() = Some(r);
            Ok(())
        })
        .unwrap();
        let r = out.lock().take().unwrap();
        r
    };
    let clean = run(None);
    let lossy = run(Some(repseq::net::LossConfig::multicast_only(150, 99)));
    assert_eq!(clean, lossy, "loss recovery must preserve the physics");
}
