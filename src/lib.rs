//! # repseq — contention elimination by replicated sequential execution
//!
//! A reproduction of *"Contention Elimination by Replication of Sequential
//! Sections in Distributed Shared Memory Programs"* (Lu, Cox, Zwaenepoel —
//! PPoPP 2001) as a Rust workspace: a deterministic cluster simulator, a
//! TreadMarks-style lazy-release-consistency software DSM, the paper's
//! replicated-sequential-execution + flow-controlled-multicast technique,
//! an OpenMP/NOW-style fork-join runtime, and the two evaluation
//! applications (Barnes-Hut and an Ilink-like genetic-linkage workload).
//!
//! This facade crate re-exports the sub-crates under stable names; the
//! examples and integration tests at the repository root use it. See
//! `README.md` for a tour and `DESIGN.md` for the substitution rationale.

pub use repseq_apps as apps;
pub use repseq_core as core;
pub use repseq_dsm as dsm;
pub use repseq_net as net;
pub use repseq_sim as sim;
pub use repseq_stats as stats;
