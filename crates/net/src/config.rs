//! Network configuration.

use repseq_sim::Dur;

/// Parameters of the simulated cluster interconnect.
///
/// The defaults model the paper's testbed: a 100 Mbps switched Ethernet
/// carrying all unicast traffic plus a separate 100 Mbps hub carrying all
/// multicast traffic (§6: "All unicast messages go through the switch,
/// while all multicast messages go through the hub"). Per-message software
/// overheads are in the range measured for UDP messaging on late-1990s
/// commodity hardware (TreadMarks reports round-trip small-message times of
/// a few hundred microseconds).
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Number of cluster nodes.
    pub nodes: usize,
    /// Bandwidth of each full-duplex switched link (bits/second).
    pub unicast_bw_bps: f64,
    /// Bandwidth of the shared (half-duplex) multicast hub (bits/second).
    pub multicast_bw_bps: f64,
    /// Switch forwarding latency per frame.
    pub switch_latency: Dur,
    /// Hub propagation latency per frame.
    pub hub_latency: Dur,
    /// Software cost of sending one message, charged to the sender's CPU.
    pub send_sw_overhead: Dur,
    /// Software cost of receiving one message, added to the delivery time.
    pub recv_sw_overhead: Dur,
    /// Wire overhead per frame (Ethernet + IP + UDP headers), added to the
    /// payload when computing transmission times but not counted in the
    /// tables' byte counts.
    pub header_bytes: u64,
    /// Frames larger than this are fragmented; each fragment pays the
    /// header. 1500-byte Ethernet MTU minus headers.
    pub mtu_payload: u64,
    /// Optional deterministic message loss (per-mille drop rate, seed).
    /// Used to exercise the multicast timeout-recovery path; off by
    /// default, as in the paper's measurements.
    pub loss: Option<LossConfig>,
}

/// Deterministic message-loss injection.
#[derive(Debug, Clone, Copy)]
pub struct LossConfig {
    /// Drop probability in 1/1000 units, applied per (frame, receiver).
    pub drop_per_mille: u32,
    /// Seed for the deterministic hash; two runs with the same seed drop
    /// the same frames.
    pub seed: u64,
    /// Also drop unicast *diff-protocol* frames (requests, replies,
    /// flow-control acks). Off by default: the DSM treats its unicast
    /// transport as reliable (TreadMarks ran its own reliability layer over
    /// UDP), while IP multicast is the lossy medium the §5.4.2 recovery
    /// path exists for. Synchronization traffic (fork/join, barriers,
    /// locks) is never dropped even when this is set — the protocol makes
    /// no recovery claim for it.
    pub unicast: bool,
}

impl LossConfig {
    /// Multicast-only loss (the realistic configuration).
    pub fn multicast_only(drop_per_mille: u32, seed: u64) -> Self {
        LossConfig { drop_per_mille, seed, unicast: false }
    }
}

impl NetConfig {
    /// The paper's testbed shape for `n` nodes.
    pub fn paper(n: usize) -> Self {
        NetConfig {
            nodes: n,
            unicast_bw_bps: 100e6,
            multicast_bw_bps: 100e6,
            switch_latency: Dur::from_micros(15),
            hub_latency: Dur::from_micros(5),
            send_sw_overhead: Dur::from_micros(35),
            recv_sw_overhead: Dur::from_micros(35),
            header_bytes: 58,
            mtu_payload: 1442,
            loss: None,
        }
    }

    /// A lower bound on the virtual latency of any message between two
    /// *different* nodes: the cheapest path is an empty frame (headers
    /// only) on the faster medium, plus the fixed forwarding and software
    /// receive costs. The simulation engine uses this as its conservative
    /// lookahead — no node can affect another sooner than this — when
    /// scheduling node groups on the host (`Sim::set_parallel`).
    ///
    /// Send-side software overhead is *not* included: it is charged to the
    /// sender's clock before the transfer starts, so it is already part of
    /// "now" when the delivery time is computed.
    pub fn min_cross_latency(&self) -> Dur {
        let switched = self.unicast_wire_time(0) * 2 + self.switch_latency;
        let hubbed = self.multicast_wire_time(0) + self.hub_latency;
        switched.min(hubbed) + self.recv_sw_overhead
    }

    /// Transmission time of `payload` bytes on a link of `bw` bits/second,
    /// including per-fragment header overhead.
    pub fn wire_time(&self, payload_bytes: u64, bw_bps: f64) -> Dur {
        let fragments = payload_bytes.div_ceil(self.mtu_payload).max(1);
        let on_wire = payload_bytes + fragments * self.header_bytes;
        Dur::from_secs_f64(on_wire as f64 * 8.0 / bw_bps)
    }

    /// Transmission time on a switched (unicast) link.
    pub fn unicast_wire_time(&self, payload_bytes: u64) -> Dur {
        self.wire_time(payload_bytes, self.unicast_bw_bps)
    }

    /// Transmission time on the hub.
    pub fn multicast_wire_time(&self, payload_bytes: u64) -> Dur {
        self.wire_time(payload_bytes, self.multicast_bw_bps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_time_scales_with_size() {
        let cfg = NetConfig::paper(4);
        let small = cfg.unicast_wire_time(100);
        let large = cfg.unicast_wire_time(10_000);
        assert!(large > small * 50, "10000B should take ~100x longer than 100B");
        // 1442B payload + 58B header = 1500B on wire at 100 Mbps = 120us.
        assert_eq!(cfg.unicast_wire_time(1442), Dur::from_micros(120));
    }

    #[test]
    fn fragmentation_pays_per_fragment_headers() {
        let cfg = NetConfig::paper(4);
        let one = cfg.unicast_wire_time(1442);
        let two = cfg.unicast_wire_time(2 * 1442);
        assert_eq!(two, one * 2);
    }

    #[test]
    fn zero_payload_still_costs_a_header() {
        let cfg = NetConfig::paper(4);
        assert!(cfg.unicast_wire_time(0) > Dur::ZERO);
    }
}
