//! The shared interconnect: per-node switched links and the multicast hub.
//!
//! Contention is modeled with per-resource `free_at` times:
//!
//! * each node's transmit link serializes its outgoing unicast frames —
//!   this is where a master node answering a storm of diff requests
//!   bottlenecks;
//! * each node's receive port at the switch serializes incoming frames —
//!   this is where simultaneous requests converge;
//! * the hub is a single half-duplex medium shared by all multicast
//!   frames.
//!
//! The model matches §3's definition of contention: "the arrival of one or
//! more diff requests on a node before the diff in response to a previous
//! request has left the node" — responses queue on the transmit link, and
//! service time at the handler process (modeled in the DSM layer) adds to
//! the backlog.

use std::sync::Arc;

use parking_lot::Mutex;
use repseq_sim::{Ctx, Pid, SimTime};
use repseq_stats::{MsgClass, NodeId, StatsRef};

use crate::config::NetConfig;
use crate::loss::LossState;

struct Links {
    /// When each node's transmit link becomes free.
    tx_free: Vec<SimTime>,
    /// When each node's switch output (receive) port becomes free.
    rx_free: Vec<SimTime>,
    /// When the hub becomes free.
    hub_free: SimTime,
}

/// One frame the loss injector decided to drop. The log lets a failing
/// torture schedule report the exact loss decision that triggered the
/// recovery path under test, instead of forcing a bisect over seeds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LossEvent {
    /// Sending node.
    pub src: NodeId,
    /// Receiving node whose copy was dropped (for multicast, one entry per
    /// affected destination).
    pub dst: NodeId,
    /// Per-(src, dst) frame sequence number the decision was keyed on.
    pub pair_seq: u64,
    /// Frame classification.
    pub class: MsgClass,
    /// Virtual time the frame would have been delivered at.
    pub at: SimTime,
    /// Whether the frame travelled on the hub (multicast) or the switch.
    pub multicast: bool,
}

/// The cluster interconnect. One per simulation; hand a [`Nic`] to each
/// node.
pub struct Network {
    cfg: NetConfig,
    links: Mutex<Links>,
    loss: Option<Mutex<LossState>>,
    drop_log: Mutex<Vec<LossEvent>>,
    stats: StatsRef,
}

impl Network {
    /// Build the interconnect described by `cfg`, reporting every frame to
    /// `stats`.
    pub fn new(cfg: NetConfig, stats: StatsRef) -> Arc<Network> {
        let n = cfg.nodes;
        Arc::new(Network {
            loss: cfg.loss.map(|l| Mutex::new(LossState::new(l))),
            cfg,
            links: Mutex::new(Links {
                tx_free: vec![SimTime::ZERO; n],
                rx_free: vec![SimTime::ZERO; n],
                hub_free: SimTime::ZERO,
            }),
            drop_log: Mutex::new(Vec::new()),
            stats,
        })
    }

    /// The configuration this network was built with.
    pub fn config(&self) -> &NetConfig {
        &self.cfg
    }

    /// Every frame the loss injector dropped so far, in canonical
    /// `(at, src, dst, pair_seq, multicast)` order. The decisions
    /// themselves are deterministic (keyed per `(src, dst, medium)` frame
    /// counters), but under window-parallel host execution the *log append*
    /// order depends on worker scheduling — sorting by the decision key
    /// restores a host-invariant view.
    pub fn loss_events(&self) -> Vec<LossEvent> {
        let mut log = self.drop_log.lock().clone();
        log.sort_by_key(|e| (e.at, e.src, e.dst, e.pair_seq, e.multicast));
        log
    }

    /// A handle for `node` to send through.
    pub fn nic(self: &Arc<Self>, node: NodeId) -> Nic {
        assert!(node < self.cfg.nodes, "node {node} out of range");
        Nic { node, net: Arc::clone(self) }
    }
}

/// A node's interface to the interconnect. Both simulated processes of a
/// node (application and protocol handler) send through the same `Nic`, so
/// they contend for the same transmit link — as they would on real
/// hardware.
#[derive(Clone)]
pub struct Nic {
    node: NodeId,
    net: Arc<Network>,
}

impl Nic {
    /// The node this NIC belongs to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The interconnect configuration.
    pub fn config(&self) -> &NetConfig {
        self.net.config()
    }

    /// Send one unicast frame through the switch to the process `dst`
    /// (which belongs to node `dst_node`). Charges the sender's CPU for the
    /// software send overhead; never yields. Returns the delivery time
    /// (even if the frame is then lost).
    pub fn unicast<M: Send + 'static>(
        &self,
        ctx: &Ctx<M>,
        dst_node: NodeId,
        dst: Pid,
        class: MsgClass,
        payload_bytes: u64,
        msg: M,
    ) -> SimTime {
        let cfg = self.net.config();
        ctx.charge(cfg.send_sw_overhead);
        let now = ctx.now();
        self.net.stats.on_message(self.node, class, payload_bytes);
        let wire = cfg.unicast_wire_time(payload_bytes);
        let deliver_at = if dst_node == self.node {
            // Loopback: no switch traversal, and the transmit link is
            // touched only by this node's own (serialized) processes, so
            // no cross-group ordering is needed.
            let mut l = self.net.links.lock();
            let t0 = now.max(l.tx_free[self.node]);
            let tx_done = t0 + wire;
            l.tx_free[self.node] = tx_done;
            tx_done
        } else {
            // The receiver's switch port is shared among all senders:
            // reservations must happen in global event order or the
            // computed queueing delays differ between host exec modes.
            ctx.ordered(|| {
                let mut l = self.net.links.lock();
                // Serialize on the sender's transmit link.
                let t0 = now.max(l.tx_free[self.node]);
                let tx_done = t0 + wire;
                l.tx_free[self.node] = tx_done;
                // Store-and-forward at the switch, then serialize on the
                // receiver's output port.
                let at_port = tx_done + cfg.switch_latency;
                let t1 = at_port.max(l.rx_free[dst_node]);
                let rx_done = t1 + wire;
                l.rx_free[dst_node] = rx_done;
                rx_done
            })
        };
        let at = deliver_at + cfg.recv_sw_overhead;
        if !self.dropped_unicast(class, dst_node, at) {
            ctx.send(dst, msg, at);
        }
        at
    }

    /// Send one multicast frame through the hub, delivered to every process
    /// in `dsts` (normally the protocol handler of every node, including
    /// the sender's — IP multicast loopback). Counted once in the
    /// statistics, as in the paper. Returns the delivery time.
    pub fn multicast<M: Clone + Send + 'static>(
        &self,
        ctx: &Ctx<M>,
        dsts: &[(NodeId, Pid)],
        class: MsgClass,
        payload_bytes: u64,
        msg: M,
    ) -> SimTime {
        let cfg = self.net.config();
        ctx.charge(cfg.send_sw_overhead);
        let now = ctx.now();
        self.net.stats.on_message(self.node, class, payload_bytes);
        let wire = cfg.multicast_wire_time(payload_bytes);
        let deliver_at = ctx.ordered(|| {
            let mut l = self.net.links.lock();
            // The hub is one shared half-duplex medium: every node
            // contends for it, so reservations take global event order.
            let t0 = now.max(l.hub_free);
            let done = t0 + wire;
            l.hub_free = done;
            done + cfg.hub_latency
        });
        let at = deliver_at + cfg.recv_sw_overhead;
        for &(dst_node, dst) in dsts {
            if self.dropped(class, dst_node, at, true) {
                continue;
            }
            ctx.send(dst, msg.clone(), at);
        }
        at
    }

    /// A multicast exempt from loss injection: used for acknowledged
    /// metadata transfers (the valid-notice table), whose reliability the
    /// runtime guarantees with its own handshake. The diff reply chain
    /// stays lossy — that is what the §5.4.2 recovery path is for.
    pub fn multicast_reliable<M: Clone + Send + 'static>(
        &self,
        ctx: &Ctx<M>,
        dsts: &[(NodeId, Pid)],
        class: MsgClass,
        payload_bytes: u64,
        msg: M,
    ) -> SimTime {
        let cfg = self.net.config();
        ctx.charge(cfg.send_sw_overhead);
        let now = ctx.now();
        self.net.stats.on_message(self.node, class, payload_bytes);
        let wire = cfg.multicast_wire_time(payload_bytes);
        let deliver_at = ctx.ordered(|| {
            let mut l = self.net.links.lock();
            let t0 = now.max(l.hub_free);
            let done = t0 + wire;
            l.hub_free = done;
            done + cfg.hub_latency
        });
        let at = deliver_at + cfg.recv_sw_overhead;
        for &(_, dst) in dsts {
            ctx.send(dst, msg.clone(), at);
        }
        at
    }

    /// Deliver a message to another process of the *same node* with no
    /// network cost and no statistics (e.g. the protocol handler waking the
    /// application after completing a page). Delivered at the current
    /// instant.
    pub fn local<M: Send + 'static>(&self, ctx: &Ctx<M>, dst: Pid, msg: M) {
        ctx.send(dst, msg, ctx.now());
    }

    fn dropped(&self, class: MsgClass, dst_node: NodeId, at: SimTime, multicast: bool) -> bool {
        let Some(l) = &self.net.loss else { return false };
        let (drop, pair_seq) = l.lock().drop_frame(self.node, dst_node, multicast);
        if drop {
            self.net.drop_log.lock().push(LossEvent {
                src: self.node,
                dst: dst_node,
                pair_seq,
                class,
                at,
                multicast,
            });
        }
        drop
    }

    /// Unicast loss applies only to diff-protocol frames (requests, replies
    /// and flow-control acks): the DSM runs its synchronization traffic
    /// (fork/join, barriers, locks) over a transport it treats as reliable,
    /// so dropping those frames would model a failure mode the protocol
    /// does not claim to survive.
    fn dropped_unicast(&self, class: MsgClass, dst_node: NodeId, at: SimTime) -> bool {
        let applies = self.net.config().loss.map(|l| l.unicast).unwrap_or(false);
        applies && class.is_diff_message() && self.dropped(class, dst_node, at, false)
    }
}
