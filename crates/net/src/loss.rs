//! Deterministic message-loss injection.
//!
//! Drop decisions are keyed on `(seed, src, dst, per-pair sequence)` via
//! splitmix64, so the decision for the k-th frame on a link depends only on
//! the seed and that link's own traffic history — never on unrelated frames
//! elsewhere in the cluster, and never on frame contents. This keeps runs
//! reproducible (same seed ⇒ same drops) while making per-link loss
//! independent: turning unicast loss on or off, or adding traffic on another
//! link, cannot perturb the multicast drop sequence a regression test was
//! pinned to. Required for reproducible tests of the timeout-recovery path
//! (§5.4.2).

use std::collections::HashMap;

use crate::config::LossConfig;

pub(crate) struct LossState {
    cfg: LossConfig,
    /// Per-(src, dst, medium) frame sequence numbers. The hub (multicast)
    /// and the switch (unicast) keep separate streams so enabling unicast
    /// loss cannot shift the multicast decision sequence even on the same
    /// node pair.
    pair_seq: HashMap<(usize, usize, bool), u64>,
}

impl LossState {
    pub(crate) fn new(cfg: LossConfig) -> Self {
        LossState { cfg, pair_seq: HashMap::new() }
    }

    /// Decide whether the frame from `src` to `dst` (on the hub if
    /// `multicast`, else the switch) is dropped. Returns the decision and
    /// the per-pair sequence number it was keyed on (for the loss log, so a
    /// failing schedule names the exact decision to replay).
    pub(crate) fn drop_frame(&mut self, src: usize, dst: usize, multicast: bool) -> (bool, u64) {
        let seq = self.pair_seq.entry((src, dst, multicast)).or_insert(0);
        let k = *seq;
        *seq += 1;
        let x = splitmix64(
            self.cfg
                .seed
                .wrapping_add(k.wrapping_mul(0x9E37_79B9_7F4A_7C15))
                .wrapping_add((src as u64) << 32)
                .wrapping_add((dst as u64) << 16)
                .wrapping_add(multicast as u64),
        );
        ((x % 1000) < self.cfg.drop_per_mille as u64, k)
    }
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loss_is_deterministic() {
        let mut a = LossState::new(LossConfig { drop_per_mille: 100, seed: 42, unicast: true });
        let mut b = LossState::new(LossConfig { drop_per_mille: 100, seed: 42, unicast: true });
        for i in 0..1000 {
            assert_eq!(
                a.drop_frame(i % 7, i % 5, i % 2 == 0),
                b.drop_frame(i % 7, i % 5, i % 2 == 0)
            );
        }
    }

    #[test]
    fn loss_rate_is_roughly_right() {
        let mut l = LossState::new(LossConfig { drop_per_mille: 100, seed: 7, unicast: true });
        let drops = (0..10_000).filter(|_| l.drop_frame(0, 1, true).0).count();
        assert!((800..1200).contains(&drops), "expected ~1000 drops, got {drops}");
    }

    #[test]
    fn zero_rate_never_drops() {
        let mut l = LossState::new(LossConfig { drop_per_mille: 0, seed: 7, unicast: true });
        assert!(!(0..1000).any(|_| l.drop_frame(1, 2, true).0));
    }

    /// The core order-independence property: the decision for the k-th
    /// frame on a pair is a pure function of (seed, src, dst, medium, k),
    /// so interleaving traffic on other links — or unicast traffic on the
    /// *same* pair — cannot perturb it.
    #[test]
    fn pair_sequences_are_independent() {
        let cfg = LossConfig { drop_per_mille: 300, seed: 9, unicast: true };
        // Run A: only multicast on the (0 -> 1) pair.
        let mut a = LossState::new(cfg);
        let seq_a: Vec<(bool, u64)> = (0..500).map(|_| a.drop_frame(0, 1, true)).collect();
        // Run B: the same stream interleaved with heavy unrelated traffic,
        // including unicast on the very same (0 -> 1) pair.
        let mut b = LossState::new(cfg);
        let mut seq_b = Vec::new();
        for i in 0..500usize {
            b.drop_frame(2, 3, true);
            b.drop_frame(0, 1, false);
            b.drop_frame(i % 4, 3, false);
            seq_b.push(b.drop_frame(0, 1, true));
            b.drop_frame(3, 0, true);
        }
        assert_eq!(seq_a, seq_b, "per-pair decisions must ignore other links");
    }

    /// Per-pair sequence numbers count each link's own frames.
    #[test]
    fn pair_seq_counts_per_link() {
        let mut l = LossState::new(LossConfig { drop_per_mille: 0, seed: 1, unicast: true });
        assert_eq!(l.drop_frame(0, 1, true).1, 0);
        assert_eq!(l.drop_frame(0, 2, true).1, 0);
        assert_eq!(l.drop_frame(0, 1, true).1, 1);
        assert_eq!(l.drop_frame(0, 1, false).1, 0);
        assert_eq!(l.drop_frame(1, 0, true).1, 0);
        assert_eq!(l.drop_frame(0, 1, true).1, 2);
    }
}
