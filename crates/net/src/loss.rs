//! Deterministic message-loss injection.
//!
//! A counter-based splitmix64 keeps the decision sequence independent of
//! frame contents and identical across runs with the same seed — required
//! for reproducible tests of the timeout-recovery path (§5.4.2).

use crate::config::LossConfig;

pub(crate) struct LossState {
    cfg: LossConfig,
    counter: u64,
}

impl LossState {
    pub(crate) fn new(cfg: LossConfig) -> Self {
        LossState { cfg, counter: 0 }
    }

    /// Decide whether the frame from `src` to `dst` is dropped.
    pub(crate) fn drop_frame(&mut self, src: usize, dst: usize, bytes: u64) -> bool {
        self.counter += 1;
        let x = splitmix64(
            self.cfg
                .seed
                .wrapping_add(self.counter.wrapping_mul(0x9E37_79B9_7F4A_7C15))
                .wrapping_add((src as u64) << 32)
                .wrapping_add(dst as u64)
                .wrapping_add(bytes.rotate_left(17)),
        );
        (x % 1000) < self.cfg.drop_per_mille as u64
    }
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loss_is_deterministic() {
        let mut a = LossState::new(LossConfig { drop_per_mille: 100, seed: 42, unicast: true });
        let mut b = LossState::new(LossConfig { drop_per_mille: 100, seed: 42, unicast: true });
        for i in 0..1000 {
            assert_eq!(a.drop_frame(i % 7, i % 5, i as u64), b.drop_frame(i % 7, i % 5, i as u64));
        }
    }

    #[test]
    fn loss_rate_is_roughly_right() {
        let mut l = LossState::new(LossConfig { drop_per_mille: 100, seed: 7, unicast: true });
        let drops = (0..10_000).filter(|&i| l.drop_frame(0, 1, i)).count();
        assert!((800..1200).contains(&drops), "expected ~1000 drops, got {drops}");
    }

    #[test]
    fn zero_rate_never_drops() {
        let mut l = LossState::new(LossConfig { drop_per_mille: 0, seed: 7, unicast: true });
        assert!(!(0..1000).any(|i| l.drop_frame(1, 2, i)));
    }
}
