//! # repseq-net — the simulated cluster interconnect
//!
//! Models the paper's testbed network: a 100 Mbps switched Ethernet for
//! unicast traffic and a separate 100 Mbps hub for multicast traffic
//! (PPoPP'01 §6). Frames occupy links in virtual time, so convergent
//! request storms queue exactly where the paper says they do — at the
//! victim node's links — while multicast frames serialize on the shared
//! hub.
//!
//! The DSM layer sends protocol messages through a per-node [`Nic`]; the
//! engine delivers them at the computed virtual time. Loss injection (off
//! by default) exercises the multicast recovery path deterministically.

mod config;
mod loss;
mod network;

pub use config::{LossConfig, NetConfig};
pub use network::{LossEvent, Network, Nic};
