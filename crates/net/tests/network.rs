//! Network model tests: bandwidth serialization, switch queueing,
//! convergent contention, hub behaviour, loss.

use std::sync::Arc;

use parking_lot::Mutex;
use repseq_net::{LossConfig, NetConfig, Network};
use repseq_sim::{Dur, Sim, SimTime};
use repseq_stats::{MsgClass, Section, Stats};

fn cfg4() -> NetConfig {
    NetConfig::paper(4)
}

/// Delivery time of a single uncontended unicast frame:
/// send overhead + wire + switch latency + wire (store-and-forward)
/// + receive overhead.
#[test]
fn uncontended_unicast_latency() {
    let cfg = cfg4();
    let stats = Stats::new(4);
    let net = Network::new(cfg.clone(), Arc::clone(&stats));
    let mut sim = Sim::<u64>::new();
    let nic0 = net.nic(0);
    sim.spawn("sender", move |ctx| {
        nic0.unicast(&ctx, 1, 1, MsgClass::Other, 1442, 7);
        Ok(())
    });
    let got = Arc::new(Mutex::new(SimTime::ZERO));
    let got2 = Arc::clone(&got);
    sim.spawn("receiver", move |ctx| {
        let env = ctx.recv()?;
        *got2.lock() = env.at;
        Ok(())
    });
    sim.run().unwrap();
    let expect = SimTime::ZERO
        + cfg.send_sw_overhead
        + cfg.unicast_wire_time(1442)
        + cfg.switch_latency
        + cfg.unicast_wire_time(1442)
        + cfg.recv_sw_overhead;
    assert_eq!(*got.lock(), expect);
}

/// Two frames from the same sender serialize on its transmit link.
#[test]
fn sender_link_serializes() {
    let cfg = cfg4();
    let stats = Stats::new(4);
    let net = Network::new(cfg.clone(), stats);
    let mut sim = Sim::<u64>::new();
    let nic0 = net.nic(0);
    sim.spawn("sender", move |ctx| {
        // Two sends back-to-back with no compute in between: the second
        // pays the first's wire time on the shared tx link.
        nic0.unicast(&ctx, 1, 1, MsgClass::Other, 1442, 1);
        nic0.unicast(&ctx, 2, 2, MsgClass::Other, 1442, 2);
        Ok(())
    });
    let times = Arc::new(Mutex::new(vec![SimTime::ZERO; 2]));
    for node in [1usize, 2] {
        let times = Arc::clone(&times);
        sim.spawn(&format!("r{node}"), move |ctx| {
            let env = ctx.recv()?;
            times.lock()[node - 1] = env.at;
            Ok(())
        });
    }
    sim.run().unwrap();
    let t = times.lock();
    let wire = cfg.unicast_wire_time(1442);
    // Receiver 2's frame waited for frame 1 on the tx link, then paid the
    // extra send overhead charged before it.
    let gap = t[1] - t[0];
    assert!(gap >= wire, "second frame must queue behind the first: gap {gap}");
}

/// Frames from many senders converging on one receiver serialize at the
/// receiver's switch port — the contention mechanism of §3.
#[test]
fn convergent_frames_queue_at_receiver_port() {
    let cfg = NetConfig::paper(9);
    let stats = Stats::new(9);
    let net = Network::new(cfg.clone(), stats);
    let mut sim = Sim::<u64>::new();
    let arrivals = Arc::new(Mutex::new(Vec::<SimTime>::new()));
    let arrivals2 = Arc::clone(&arrivals);
    sim.spawn("sink", move |ctx| {
        for _ in 0..8 {
            let env = ctx.recv()?;
            arrivals2.lock().push(env.at);
        }
        Ok(())
    });
    for src in 1..9usize {
        let nic = net.nic(src);
        sim.spawn(&format!("s{src}"), move |ctx| {
            nic.unicast(&ctx, 0, 0, MsgClass::Other, 1442, src as u64);
            Ok(())
        });
    }
    sim.run().unwrap();
    let arrivals = arrivals.lock();
    let wire = cfg.unicast_wire_time(1442);
    // All 8 senders transmit simultaneously; deliveries must be spaced by
    // at least the wire time of the shared receiver port.
    for pair in arrivals.windows(2) {
        let gap = pair[1] - pair[0];
        assert!(gap >= wire, "deliveries must serialize: gap {gap} < wire {wire}");
    }
    // Total spread ≈ 7 wire times: the last requester waits for all others.
    let spread = *arrivals.last().unwrap() - arrivals[0];
    assert!(spread >= wire * 7);
}

/// One multicast frame reaches every destination at the same instant and is
/// counted once.
#[test]
fn multicast_reaches_all_counted_once() {
    let cfg = cfg4();
    let stats = Stats::new(4);
    let net = Network::new(cfg.clone(), Arc::clone(&stats));
    stats.set_section(Section::Replicated, SimTime::ZERO);
    let mut sim = Sim::<u64>::new();
    let nic0 = net.nic(0);
    sim.spawn("sender", move |ctx| {
        let dsts: Vec<_> = (0..4).map(|n| (n, n + 1)).collect();
        nic0.multicast(&ctx, &dsts, MsgClass::DiffReply, 4096, 99);
        Ok(())
    });
    let arrivals = Arc::new(Mutex::new(Vec::<SimTime>::new()));
    for pid in 1..5usize {
        let arrivals = Arc::clone(&arrivals);
        sim.spawn(&format!("r{pid}"), move |ctx| {
            let env = ctx.recv()?;
            arrivals.lock().push(env.at);
            Ok(())
        });
    }
    sim.run().unwrap();
    let arrivals = arrivals.lock();
    assert_eq!(arrivals.len(), 4);
    assert!(arrivals.iter().all(|&t| t == arrivals[0]), "multicast arrives everywhere at once");
    let snap = stats.snapshot();
    let agg = snap.seq_agg();
    assert_eq!(agg.messages, 1, "one multicast = one message, as in the paper");
    assert_eq!(agg.bytes, 4096);
    assert_eq!(agg.diff_messages, 1);
}

/// Successive multicasts serialize on the hub (half-duplex shared medium),
/// even from different senders.
#[test]
fn hub_serializes_multicasts() {
    let cfg = cfg4();
    let stats = Stats::new(4);
    let net = Network::new(cfg.clone(), stats);
    let mut sim = Sim::<u64>::new();
    for src in [0usize, 1] {
        let nic = net.nic(src);
        sim.spawn(&format!("s{src}"), move |ctx| {
            nic.multicast(&ctx, &[(3, 2)], MsgClass::DiffReply, 14_420, src as u64);
            Ok(())
        });
    }
    let arrivals = Arc::new(Mutex::new(Vec::<SimTime>::new()));
    let arrivals2 = Arc::clone(&arrivals);
    sim.spawn("sink", move |ctx| {
        for _ in 0..2 {
            arrivals2.lock().push(ctx.recv()?.at);
        }
        Ok(())
    });
    sim.run().unwrap();
    let arrivals = arrivals.lock();
    let gap = arrivals[1] - arrivals[0];
    let wire = cfg.multicast_wire_time(14_420);
    assert!(gap >= wire, "hub must serialize: gap {gap} < {wire}");
}

/// Hub and switch are independent networks: multicast does not delay
/// unicast.
#[test]
fn hub_and_switch_are_independent() {
    let cfg = cfg4();
    let stats = Stats::new(4);
    let net = Network::new(cfg.clone(), stats);
    let mut sim = Sim::<u64>::new();
    let nic0 = net.nic(0);
    sim.spawn("sender", move |ctx| {
        // Big multicast first, then a unicast: the unicast must not queue
        // behind the multicast (separate media).
        nic0.multicast(&ctx, &[(1, 1)], MsgClass::Broadcast, 1_000_000, 0);
        nic0.unicast(&ctx, 1, 1, MsgClass::Other, 100, 1);
        Ok(())
    });
    let order = Arc::new(Mutex::new(Vec::<u64>::new()));
    let order2 = Arc::clone(&order);
    sim.spawn("r", move |ctx| {
        for _ in 0..2 {
            order2.lock().push(ctx.recv()?.msg);
        }
        Ok(())
    });
    sim.run().unwrap();
    assert_eq!(*order.lock(), vec![1, 0], "small unicast overtakes the big multicast");
}

/// Loopback unicast skips the switch.
#[test]
fn loopback_skips_switch() {
    let cfg = cfg4();
    let stats = Stats::new(4);
    let net = Network::new(cfg.clone(), stats);
    let mut sim = Sim::<u64>::new();
    let nic0 = net.nic(0);
    let at = Arc::new(Mutex::new(SimTime::ZERO));
    let at2 = Arc::clone(&at);
    sim.spawn("self", move |ctx| {
        nic0.unicast(&ctx, 0, 0, MsgClass::Other, 100, 5);
        let env = ctx.recv()?;
        *at2.lock() = env.at;
        Ok(())
    });
    sim.run().unwrap();
    let expect =
        SimTime::ZERO + cfg.send_sw_overhead + cfg.unicast_wire_time(100) + cfg.recv_sw_overhead;
    assert_eq!(*at.lock(), expect);
}

/// Local (same-node, inter-process) messages are free and uncounted.
#[test]
fn local_messages_are_free() {
    let cfg = cfg4();
    let stats = Stats::new(4);
    let net = Network::new(cfg, Arc::clone(&stats));
    let mut sim = Sim::<u64>::new();
    let nic0 = net.nic(0);
    sim.spawn("app", move |ctx| {
        ctx.charge(Dur::from_micros(3));
        nic0.local(&ctx, 1, 11);
        Ok(())
    });
    let at = Arc::new(Mutex::new(SimTime::ZERO));
    let at2 = Arc::clone(&at);
    sim.spawn("handler", move |ctx| {
        *at2.lock() = ctx.recv()?.at;
        Ok(())
    });
    sim.run().unwrap();
    assert_eq!(*at.lock(), SimTime::from_nanos(3_000));
    assert_eq!(stats.snapshot().total_agg().messages, 0);
}

/// With 100% loss nothing arrives; with 0% everything does.
#[test]
fn loss_injection_extremes() {
    for (rate, expect) in [(1000u32, 0usize), (0, 10)] {
        let mut cfg = cfg4();
        cfg.loss = Some(LossConfig { drop_per_mille: rate, seed: 1, unicast: true });
        let stats = Stats::new(4);
        let net = Network::new(cfg, Arc::clone(&stats));
        let mut sim = Sim::<u64>::new();
        let nic0 = net.nic(0);
        sim.spawn("sender", move |ctx| {
            for i in 0..10 {
                nic0.unicast(&ctx, 1, 1, MsgClass::DiffReply, 100, i);
            }
            // Keep the run alive until all surviving frames are delivered.
            ctx.sleep(Dur::from_secs(1))?;
            Ok(())
        });
        let got = Arc::new(Mutex::new(0usize));
        let got2 = Arc::clone(&got);
        sim.spawn_daemon("receiver", move |ctx| {
            while ctx.recv().is_ok() {
                *got2.lock() += 1;
            }
            Ok(())
        });
        sim.run().unwrap();
        assert_eq!(*got.lock(), expect, "rate {rate}");
        // Sends are counted even when frames are lost.
        assert_eq!(stats.snapshot().total_agg_with_startup().messages, 10);
    }
}

/// A paper-scale sanity check: 31 clients each requesting a 4 KB diff from
/// node 0 roughly at once see average response times far above the
/// uncontended response time (Table 2's 3.34 ms vs 0.67 ms effect).
#[test]
fn contention_raises_response_time() {
    let n = 32;
    let cfg = NetConfig::paper(n);
    let stats = Stats::new(n);
    let net = Network::new(cfg.clone(), stats);
    let mut sim = Sim::<(u64, usize)>::new();

    // Node 0: a server answering each request with a 4 KB reply.
    let server_nic = net.nic(0);
    sim.spawn_daemon("server", move |ctx| {
        while let Ok(env) = ctx.recv() {
            let (_, reply_to) = env.msg;
            ctx.charge(Dur::from_micros(30)); // diff creation
                                              // Client for node N was spawned after the server, so pid == N.
            server_nic.unicast(&ctx, reply_to, reply_to, MsgClass::DiffReply, 4096, (1, 0));
        }
        Ok(())
    });
    let rts = Arc::new(Mutex::new(Vec::<Dur>::new()));
    for node in 1..n {
        let nic = net.nic(node);
        let rts = Arc::clone(&rts);
        sim.spawn(&format!("client{node}"), move |ctx| {
            let t0 = ctx.now();
            nic.unicast(&ctx, 0, 0, MsgClass::DiffRequest, 128, (0, node));
            let _ = ctx.recv()?;
            rts.lock().push(ctx.now() - t0);
            Ok(())
        });
    }
    sim.run().unwrap();
    let rts = rts.lock();
    let min = rts.iter().copied().fold(Dur::from_secs(1), Dur::min_of);
    let max = rts.iter().copied().fold(Dur::ZERO, Dur::max);
    assert!(
        max > min * 5,
        "the last-served client must wait behind the queue: min {min}, max {max}"
    );
}

/// Turning unicast loss on must not perturb the multicast drop sequence:
/// decisions are keyed per (src, dst, medium), not on a shared call
/// counter, so the same seed pins the same multicast schedule regardless of
/// what the switch is doing.
#[test]
fn unicast_loss_does_not_perturb_multicast_drops() {
    let run = |unicast: bool| {
        let mut cfg = cfg4();
        cfg.loss = Some(LossConfig { drop_per_mille: 400, seed: 77, unicast });
        let stats = Stats::new(4);
        let net = Network::new(cfg, stats);
        let mut sim = Sim::<u64>::new();
        let nic0 = net.nic(0);
        sim.spawn("sender", move |ctx| {
            for i in 0..200u64 {
                // Unicast diff traffic interleaved with the multicast
                // stream, including to the same destination node.
                nic0.unicast(&ctx, 1, 1, MsgClass::DiffRequest, 128, 10_000 + i);
                nic0.unicast(&ctx, 2, 2, MsgClass::DiffRequest, 128, 20_000 + i);
                nic0.multicast(&ctx, &[(1, 1), (3, 3)], MsgClass::DiffReply, 1024, i);
            }
            // Keep the run alive until all surviving frames are delivered.
            ctx.sleep(Dur::from_secs(2))?;
            Ok(())
        });
        let got = Arc::new(Mutex::new(Vec::<(usize, u64)>::new()));
        for pid in [1usize, 2, 3] {
            let got = Arc::clone(&got);
            sim.spawn_daemon(&format!("r{pid}"), move |ctx| {
                while let Ok(env) = ctx.recv() {
                    if env.msg < 10_000 {
                        got.lock().push((pid, env.msg));
                    }
                }
                Ok(())
            });
        }
        sim.run().unwrap();
        let mut delivered = got.lock().clone();
        delivered.sort_unstable();
        let mcast_drops: Vec<_> = net
            .loss_events()
            .into_iter()
            .filter(|e| e.multicast)
            .map(|e| (e.src, e.dst, e.pair_seq))
            .collect();
        (delivered, mcast_drops)
    };
    let (deliv_off, drops_off) = run(false);
    let (deliv_on, drops_on) = run(true);
    assert!(!drops_off.is_empty(), "the schedule must actually drop multicast frames");
    assert_eq!(deliv_off, deliv_on, "multicast deliveries must not depend on unicast loss");
    assert_eq!(drops_off, drops_on, "multicast drop decisions must not depend on unicast loss");
}

/// Sync-class unicast frames are exempt from loss injection even with
/// unicast loss enabled: the protocol treats its synchronization transport
/// as reliable.
#[test]
fn sync_unicast_frames_are_never_dropped() {
    let mut cfg = cfg4();
    cfg.loss = Some(LossConfig { drop_per_mille: 1000, seed: 3, unicast: true });
    let stats = Stats::new(4);
    let net = Network::new(cfg, stats);
    let mut sim = Sim::<u64>::new();
    let nic0 = net.nic(0);
    sim.spawn("sender", move |ctx| {
        for i in 0..10 {
            nic0.unicast(&ctx, 1, 1, MsgClass::Sync, 64, i);
        }
        ctx.sleep(Dur::from_secs(1))?;
        Ok(())
    });
    let got = Arc::new(Mutex::new(0usize));
    let got2 = Arc::clone(&got);
    sim.spawn_daemon("receiver", move |ctx| {
        while ctx.recv().is_ok() {
            *got2.lock() += 1;
        }
        Ok(())
    });
    sim.run().unwrap();
    assert_eq!(*got.lock(), 10, "sync traffic must survive 100% diff-frame loss");
    assert!(net.loss_events().is_empty());
}

/// Helper so the test reads naturally.
trait DurMin {
    fn min_of(self, other: Dur) -> Dur;
}
impl DurMin for Dur {
    fn min_of(self, other: Dur) -> Dur {
        if self < other {
            self
        } else {
            other
        }
    }
}
