//! Runtime construction: allocate, preload, then run a master program with
//! parked slaves — the OpenMP/NOW process model (§2.2.1: "Initially, the
//! master thread executes the program while the slave threads are blocked
//! inside the runtime system waiting for the master to issue a Tmk_fork").

use std::sync::Arc;

use repseq_dsm::{Cluster, ClusterConfig, DsmNode, Pod, ShArray, ShVar};
use repseq_sim::{SimError, SimReport, Stopped};
use repseq_stats::{Stats, StatsRef};

use crate::team::{SeqMode, Team};

/// Configuration of one run.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Cluster shape (nodes, network, DSM costs).
    pub cluster: ClusterConfig,
    /// How sequential sections execute.
    pub seq_mode: SeqMode,
}

impl RunConfig {
    /// The paper's testbed with the base (Original) system.
    pub fn original(n: usize) -> Self {
        RunConfig { cluster: ClusterConfig::paper(n), seq_mode: SeqMode::MasterOnly }
    }

    /// The paper's testbed with replicated sequential execution (Optimized).
    pub fn optimized(n: usize) -> Self {
        RunConfig { cluster: ClusterConfig::paper(n), seq_mode: SeqMode::Replicated }
    }

    /// The §6.1.2 ablation: original system plus hand-inserted broadcasts.
    pub fn broadcast(n: usize) -> Self {
        RunConfig { cluster: ClusterConfig::paper(n), seq_mode: SeqMode::MasterOnlyBroadcast }
    }

    /// Master-only execution with an automatic push of the section's
    /// written pages (see [`SeqMode::MasterPush`]).
    pub fn master_push(n: usize) -> Self {
        RunConfig { cluster: ClusterConfig::paper(n), seq_mode: SeqMode::MasterPush }
    }
}

/// The DSM-layer strategy implied by a [`SeqMode`]. The Team's mode is the
/// single source of truth; the cluster config's `seq_exec` is derived from
/// it so `DsmNode::run_sequential` dispatches consistently.
fn seq_exec_for(mode: SeqMode) -> repseq_dsm::SeqExecMode {
    match mode {
        SeqMode::Replicated => repseq_dsm::SeqExecMode::Rse,
        SeqMode::MasterOnly | SeqMode::MasterOnlyBroadcast => repseq_dsm::SeqExecMode::MasterOnly,
        SeqMode::MasterPush => repseq_dsm::SeqExecMode::MasterPush,
    }
}

/// A run under construction: allocate and preload shared data, then
/// [`Runtime::run`] the master program.
pub struct Runtime {
    cluster: Cluster,
    mode: SeqMode,
    stats: StatsRef,
}

impl Runtime {
    /// Build a runtime (and a fresh statistics registry).
    pub fn new(cfg: RunConfig) -> Runtime {
        let stats = Stats::new(cfg.cluster.nodes);
        Runtime::with_stats(cfg, stats)
    }

    /// Build a runtime reporting into an existing registry.
    pub fn with_stats(cfg: RunConfig, stats: StatsRef) -> Runtime {
        let mut cluster_cfg = cfg.cluster;
        cluster_cfg.dsm.seq_exec = seq_exec_for(cfg.seq_mode);
        Runtime {
            cluster: Cluster::new(cluster_cfg, Arc::clone(&stats)),
            mode: cfg.seq_mode,
            stats,
        }
    }

    /// The statistics registry (snapshot it after the run for the tables).
    pub fn stats(&self) -> StatsRef {
        Arc::clone(&self.stats)
    }

    /// Install a race sink (e.g. `repseq-check`'s `RaceDetector`) that will
    /// observe every shared-memory access and synchronization event of the
    /// run. Purely observational: charges no virtual time, sends no
    /// messages.
    pub fn set_race_sink(&mut self, sink: Arc<dyn repseq_dsm::RaceSink>) {
        self.cluster.set_race_sink(sink);
    }

    /// Record the kernel event trace during the run (see
    /// `SimReport::trace`), so a failing schedule can be diffed against a
    /// clean run event by event. Off by default — tracing a long run costs
    /// memory.
    pub fn record_trace(&mut self, on: bool) {
        self.cluster.record_trace(on);
    }

    /// Allocate a shared array (8-byte aligned).
    pub fn alloc_array<T: Pod>(&mut self, len: usize) -> ShArray<T> {
        self.cluster.alloc_array(len)
    }

    /// Allocate a page-aligned shared array.
    pub fn alloc_array_page_aligned<T: Pod>(&mut self, len: usize) -> ShArray<T> {
        self.cluster.alloc_array_page_aligned(len)
    }

    /// Allocate a shared variable.
    pub fn alloc_var<T: Pod>(&mut self) -> ShVar<T> {
        self.cluster.alloc_var()
    }

    /// Preload initial array contents (present everywhere before the run).
    pub fn preload<T: Pod>(&mut self, arr: ShArray<T>, vals: &[T]) {
        self.cluster.preload(arr, vals);
    }

    /// Preload one element.
    pub fn preload_at<T: Pod>(&mut self, arr: ShArray<T>, i: usize, v: T) {
        self.cluster.preload_at(arr, i, v);
    }

    /// Preload a shared variable.
    pub fn preload_var<T: Pod>(&mut self, var: ShVar<T>, v: T) {
        self.cluster.preload_var(var, v);
    }

    /// The DSM page size (for page-span computations).
    pub fn page_size(&self) -> usize {
        self.cluster.config().dsm.page_size
    }

    /// The cluster's node count (for sizing per-node shared structures).
    pub fn n_nodes(&self) -> usize {
        self.cluster.config().nodes
    }

    /// Run `program` as the master; every other node parks in the slave
    /// scheduler loop. Slaves are shut down automatically when the program
    /// returns.
    pub fn run<F>(self, program: F) -> Result<SimReport, SimError>
    where
        F: FnOnce(&Team) -> Result<(), Stopped> + Send + 'static,
    {
        let n = self.cluster.config().nodes;
        let mode = self.mode;
        let stats = Arc::clone(&self.stats);
        let mut apps: Vec<repseq_dsm::AppFn> = Vec::new();
        apps.push(Box::new(move |node: DsmNode| {
            let team = Team::new(node, mode, stats);
            program(&team)?;
            team.node().shutdown_slaves()
        }));
        for _ in 1..n {
            apps.push(Box::new(|node: DsmNode| node.slave_loop()));
        }
        self.cluster.launch(apps)
    }
}
