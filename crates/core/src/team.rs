//! The Team API: OpenMP-style sections on top of the DSM fork/join
//! runtime, with the paper's two execution modes for sequential sections.

use std::ops::Range;

use repseq_dsm::{DsmNode, PageId, Pod, ShArray};
use repseq_sim::{Dur, SimTime, Stopped as DsmStopped};
use repseq_stats::{Section, StatsRef};

pub use repseq_sim::Stopped;

/// How sequential sections execute (the paper's Original vs Optimized
/// systems, §4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeqMode {
    /// The base system: the master executes sequential sections alone; the
    /// following fork distributes write notices and the parallel section
    /// pays the contention.
    MasterOnly,
    /// Replicated sequential execution with flow-controlled multicast (the
    /// paper's contribution).
    Replicated,
    /// The §6.1.2 ablation: master-only execution, followed by a
    /// hand-inserted broadcast of the pages named by the section.
    MasterOnlyBroadcast,
    /// Master-only execution, followed by an *automatic* broadcast of
    /// every page the section wrote (no hand-inserted page list). A
    /// natural middle ground between [`SeqMode::MasterOnly`] and
    /// [`SeqMode::Replicated`]: it eliminates the post-section demand
    /// misses but still serializes the pushes through the master's single
    /// transmit link — the §2 contention that replication removes.
    MasterPush,
}

/// Handle to the running team, available in the master program. All
/// shared-memory access, section structure and statistics flow through it.
pub struct Team {
    node: DsmNode,
    mode: SeqMode,
    stats: StatsRef,
}

impl Team {
    pub(crate) fn new(node: DsmNode, mode: SeqMode, stats: StatsRef) -> Team {
        Team { node, mode, stats }
    }

    /// The master's DSM handle (for reads/writes between sections — note
    /// such accesses belong to the enclosing sequential section).
    pub fn node(&self) -> &DsmNode {
        &self.node
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.node.n_nodes()
    }

    /// The sequential-section execution mode.
    pub fn mode(&self) -> SeqMode {
        self.mode
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.node.ctx().now()
    }

    /// Charge master compute time.
    pub fn charge(&self, d: Dur) {
        self.node.charge(d);
    }

    /// Begin the measured portion of the run (after initialization).
    pub fn start_measurement(&self) {
        self.stats.start_measurement(self.now());
    }

    /// End the measured portion.
    pub fn end_measurement(&self) {
        self.stats.end_measurement(self.now());
    }

    /// Run a sequential section. Under [`SeqMode::MasterOnly`] the body
    /// runs on the master alone; under [`SeqMode::Replicated`] it runs on
    /// every node with replication semantics (§5.2). The body must be
    /// deterministic — the paper's stated assumption.
    pub fn sequential(
        &self,
        f: impl Fn(&DsmNode) -> Result<(), DsmStopped> + Send + Sync + 'static,
    ) -> Result<(), Stopped> {
        self.sequential_inner(f, Vec::new())
    }

    /// Run a sequential section and, in [`SeqMode::MasterOnlyBroadcast`],
    /// broadcast the listed pages afterwards (the §6.1.2 hand-inserted
    /// broadcast). In the other modes the page list is ignored.
    pub fn sequential_broadcasting(
        &self,
        f: impl Fn(&DsmNode) -> Result<(), DsmStopped> + Send + Sync + 'static,
        broadcast_pages: Vec<PageId>,
    ) -> Result<(), Stopped> {
        self.sequential_inner(f, broadcast_pages)
    }

    fn sequential_inner(
        &self,
        f: impl Fn(&DsmNode) -> Result<(), DsmStopped> + Send + Sync + 'static,
        broadcast_pages: Vec<PageId>,
    ) -> Result<(), Stopped> {
        match self.mode {
            SeqMode::Replicated => {
                self.stats.set_section(Section::Replicated, self.now());
                self.node.run_sequential(f)
            }
            SeqMode::MasterOnly | SeqMode::MasterPush => {
                self.stats.set_section(Section::Sequential, self.now());
                self.node.race_label("team::sequential");
                self.node.run_sequential(f)
            }
            SeqMode::MasterOnlyBroadcast => {
                self.stats.set_section(Section::Sequential, self.now());
                self.node.race_label("team::sequential");
                f(&self.node)?;
                self.node.broadcast_pages(broadcast_pages)
            }
        }
    }

    /// Run a parallel region on every node. The body receives each node's
    /// DSM handle; use the schedules in [`crate::sched`] (or
    /// [`Worker`] helpers) to share work.
    pub fn parallel(
        &self,
        f: impl Fn(&DsmNode) -> Result<(), DsmStopped> + Send + Sync + 'static,
    ) -> Result<(), Stopped> {
        self.stats.set_section(Section::Parallel, self.now());
        self.node.run_parallel(f)
    }

    /// A `parallel for` with a static block schedule: `f(node, i)` runs for
    /// every `i` in `0..total`, each iteration on exactly one node.
    pub fn parallel_for_block(
        &self,
        total: usize,
        f: impl Fn(&DsmNode, usize) -> Result<(), DsmStopped> + Send + Sync + 'static,
    ) -> Result<(), Stopped> {
        self.parallel(move |nd| {
            for i in crate::sched::block_range(nd.node(), nd.n_nodes(), total) {
                f(nd, i)?;
            }
            Ok(())
        })
    }

    /// A `parallel for` with a static cyclic schedule (Ilink's non-zero
    /// entry distribution).
    pub fn parallel_for_cyclic(
        &self,
        total: usize,
        f: impl Fn(&DsmNode, usize) -> Result<(), DsmStopped> + Send + Sync + 'static,
    ) -> Result<(), Stopped> {
        self.parallel(move |nd| {
            for i in crate::sched::cyclic_iter(nd.node(), nd.n_nodes(), total) {
                f(nd, i)?;
            }
            Ok(())
        })
    }

    /// Sum-reduce a per-node partial array (one slot per node) on the
    /// master — the gather Ilink's master performs after each parallel
    /// update. Belongs to the *following* sequential section; callers
    /// normally invoke it inside [`Team::sequential`].
    pub fn sum_partials(&self, node: &DsmNode, partials: ShArray<f64>) -> Result<f64, Stopped> {
        let mut total = 0.0;
        for q in 0..partials.len() {
            total += partials.get(node, q)?;
        }
        Ok(total)
    }

    /// Guarded output: "input and output instructions are not duplicated"
    /// (§5.2). Inside replicated sections, call with the section's node
    /// handle; only the master's invocation prints.
    pub fn master_print(node: &DsmNode, args: std::fmt::Arguments<'_>) {
        if node.is_master() {
            println!("{args}");
        }
    }
}

/// Per-node helpers available inside parallel bodies.
pub trait Worker {
    /// This node's block of `0..total`.
    fn my_block(&self, total: usize) -> Range<usize>;
    /// This node's cyclic iterations of `0..total`.
    fn my_cyclic(&self, total: usize) -> Box<dyn Iterator<Item = usize> + '_>;
    /// Read the whole array into a local buffer. Backed by the page-guard
    /// walk ([`ShArray::with_slices`]): one read fault per page, elements
    /// decoded straight from the page bytes. Prefer `with_slices` directly
    /// when the values are consumed once — it skips this vector too.
    fn read_all<T: Pod>(&self, arr: ShArray<T>) -> Result<Vec<T>, DsmStopped>;
}

impl Worker for DsmNode {
    fn my_block(&self, total: usize) -> Range<usize> {
        crate::sched::block_range(self.node(), self.n_nodes(), total)
    }

    fn my_cyclic(&self, total: usize) -> Box<dyn Iterator<Item = usize> + '_> {
        Box::new(crate::sched::cyclic_iter(self.node(), self.n_nodes(), total))
    }

    fn read_all<T: Pod>(&self, arr: ShArray<T>) -> Result<Vec<T>, DsmStopped> {
        let mut out = vec![T::read_from(&vec![0u8; T::SIZE]); arr.len()];
        arr.read_range(self, 0, &mut out)?;
        Ok(out)
    }
}
