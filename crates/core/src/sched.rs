//! Work-sharing schedules for parallel loops.
//!
//! The paper's prototype "supports static block or cyclic partition of
//! loops" (§2.1); both are provided here, plus a weighted block partition
//! (Barnes-Hut splits particles by recorded per-particle work, §6.1.1).

use std::ops::Range;

/// The contiguous block of `total` iterations assigned to `me` of `n`
/// workers. Remainder iterations go to the lowest-numbered workers, so
/// block sizes differ by at most one.
pub fn block_range(me: usize, n: usize, total: usize) -> Range<usize> {
    assert!(me < n && n > 0);
    let base = total / n;
    let extra = total % n;
    let start = me * base + me.min(extra);
    let len = base + usize::from(me < extra);
    start..start + len
}

/// The iterations assigned to `me` of `n` workers under a cyclic schedule
/// (iteration `i` goes to worker `i % n`) — how Ilink spreads the non-zero
/// genarray entries (§6.2.1).
pub fn cyclic_iter(me: usize, n: usize, total: usize) -> impl Iterator<Item = usize> {
    assert!(me < n && n > 0);
    (me..total).step_by(n)
}

/// Split `0..weights.len()` into `n` contiguous segments of approximately
/// equal total weight; returns the boundaries (the Barnes-Hut
/// Morton-ordered, cost-weighted partition: "the size of a segment is
/// weighted according to the workload recorded from the previous
/// iteration", §6.1.1). Segment `i` is `bounds[i]..bounds[i+1]`.
pub fn weighted_segments(weights: &[f64], n: usize) -> Vec<usize> {
    assert!(n > 0);
    let total: f64 = weights.iter().sum();
    let mut bounds = Vec::with_capacity(n + 1);
    bounds.push(0);
    let mut acc = 0.0;
    let mut next = 1;
    for (i, w) in weights.iter().enumerate() {
        // Close segments whose weight quota is filled; each remaining
        // segment targets an equal share of the remaining weight.
        while next < n && acc >= total * next as f64 / n as f64 {
            bounds.push(i);
            next += 1;
        }
        acc += w;
        let _ = i;
    }
    while bounds.len() < n {
        bounds.push(weights.len());
    }
    bounds.push(weights.len());
    bounds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_partition_is_exact_and_balanced() {
        for total in [0usize, 1, 7, 32, 100, 101] {
            for n in [1usize, 2, 3, 8] {
                let mut seen = vec![false; total];
                let mut sizes = Vec::new();
                for me in 0..n {
                    let r = block_range(me, n, total);
                    sizes.push(r.len());
                    for i in r {
                        assert!(!seen[i], "iteration {i} assigned twice");
                        seen[i] = true;
                    }
                }
                assert!(seen.iter().all(|&s| s), "total {total}, n {n}: not covered");
                let min = sizes.iter().min().unwrap();
                let max = sizes.iter().max().unwrap();
                assert!(max - min <= 1, "unbalanced blocks: {sizes:?}");
            }
        }
    }

    #[test]
    fn blocks_are_contiguous_and_ordered() {
        let r0 = block_range(0, 3, 10);
        let r1 = block_range(1, 3, 10);
        let r2 = block_range(2, 3, 10);
        assert_eq!(r0, 0..4);
        assert_eq!(r1, 4..7);
        assert_eq!(r2, 7..10);
    }

    #[test]
    fn cyclic_partition_is_exact() {
        for total in [0usize, 1, 9, 32] {
            for n in [1usize, 2, 4] {
                let mut seen = vec![false; total];
                for me in 0..n {
                    for i in cyclic_iter(me, n, total) {
                        assert!(!seen[i]);
                        seen[i] = true;
                        assert_eq!(i % n, me);
                    }
                }
                assert!(seen.iter().all(|&s| s));
            }
        }
    }

    #[test]
    fn weighted_segments_cover_and_balance() {
        let weights: Vec<f64> = (0..100).map(|i| 1.0 + (i % 7) as f64).collect();
        let n = 4;
        let bounds = weighted_segments(&weights, n);
        assert_eq!(bounds.len(), n + 1);
        assert_eq!(bounds[0], 0);
        assert_eq!(bounds[n], 100);
        let total: f64 = weights.iter().sum();
        for i in 0..n {
            assert!(bounds[i] <= bounds[i + 1]);
            let seg: f64 = weights[bounds[i]..bounds[i + 1]].iter().sum();
            assert!(seg <= total / n as f64 * 2.0 + 8.0, "segment {i} too heavy: {seg} of {total}");
        }
    }

    #[test]
    fn weighted_segments_handle_degenerate_inputs() {
        assert_eq!(weighted_segments(&[], 3), vec![0, 0, 0, 0]);
        let one = weighted_segments(&[5.0], 2);
        assert_eq!(one[0], 0);
        assert_eq!(one[2], 1);
        // All-zero weights still produce a valid cover.
        let z = weighted_segments(&[0.0; 10], 2);
        assert_eq!(z[0], 0);
        assert_eq!(z[2], 10);
    }
}
