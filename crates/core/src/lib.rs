//! # repseq-core — the OpenMP/NOW-style runtime
//!
//! The user-facing layer of the reproduction: a master program drives
//! fork-join parallelism over the DSM cluster, with sequential sections
//! executed either by the master alone (the paper's *Original* system),
//! replicated on every node with multicast support (the paper's
//! *Optimized* system), or master-only followed by a hand-inserted page
//! broadcast (the §6.1.2 ablation). Switching a whole application between
//! the three systems is one [`SeqMode`] value — exactly the experimental
//! design of the paper's evaluation.
//!
//! ```
//! use repseq_core::{RunConfig, Runtime, Worker};
//!
//! let mut rt = Runtime::new(RunConfig::optimized(4));
//! let data = rt.alloc_array_page_aligned::<f64>(1024);
//! let partials = rt.alloc_array_page_aligned::<f64>(4);
//! rt.preload(data, &vec![1.0; 1024]);
//! let report = rt
//!     .run(move |team| {
//!         team.start_measurement();
//!         // Sequential section: rescale everything (replicated on all
//!         // nodes under the optimized mode).
//!         team.sequential(move |nd| {
//!             for i in 0..data.len() {
//!                 let v = data.get(nd, i)?;
//!                 data.set(nd, i, v * 2.0)?;
//!             }
//!             Ok(())
//!         })?;
//!         // Parallel section: block-partitioned sum.
//!         team.parallel(move |nd| {
//!             let mut s = 0.0;
//!             for i in nd.my_block(data.len()) {
//!                 s += data.get(nd, i)?;
//!             }
//!             partials.set(nd, nd.node(), s)
//!         })?;
//!         let total = team.sum_partials(team.node(), partials)?;
//!         assert_eq!(total, 2048.0);
//!         team.end_measurement();
//!         Ok(())
//!     })
//!     .unwrap();
//! assert!(report.end_time.nanos() > 0);
//! ```

mod runtime;
pub mod sched;
mod team;

pub use runtime::{RunConfig, Runtime};
pub use team::{SeqMode, Stopped, Team, Worker};
