//! Team-level integration tests: the three execution systems (Original,
//! Optimized, Broadcast-ablation) agree on results and differ on traffic
//! exactly the way the paper says they should.

use std::sync::Arc;

use parking_lot::Mutex;
use repseq_core::{RunConfig, Runtime, SeqMode, Team, Worker};
use repseq_dsm::ShArray;
use repseq_sim::Dur;
use repseq_stats::StatsSnapshot;

/// A miniature of the paper's application shape: iterate
/// [sequential: rebuild `tree` from `parts`] →
/// [parallel: update own slice of `parts` reading the whole `tree`].
fn mini_app(mode: SeqMode, n: usize, iters: usize) -> (Vec<u64>, StatsSnapshot) {
    let mut rt =
        Runtime::new(RunConfig { cluster: repseq_dsm::ClusterConfig::paper(n), seq_mode: mode });
    let pages_of_tree = 4usize;
    let tree: ShArray<u64> = rt.alloc_array_page_aligned(pages_of_tree * 512);
    let parts: ShArray<u64> = rt.alloc_array_page_aligned(n * 512);
    let init: Vec<u64> = (0..parts.len() as u64).collect();
    rt.preload(parts, &init);
    let stats = rt.stats();
    let out = Arc::new(Mutex::new(Vec::new()));
    let out2 = Arc::clone(&out);
    let page_size = rt.page_size();
    rt.run(move |team| {
        team.start_measurement();
        for _ in 0..iters {
            let (first, last) = tree.page_span(page_size);
            team.sequential_broadcasting(
                move |nd| {
                    // Deterministic "tree build" reading every particle.
                    let mut acc = 0u64;
                    for i in 0..parts.len() {
                        acc = acc.wrapping_add(parts.get(nd, i)?);
                    }
                    for k in 0..tree.len() {
                        tree.set(nd, k, acc.wrapping_add(k as u64))?;
                    }
                    Ok(())
                },
                (first..=last).collect(),
            )?;
            team.parallel(move |nd| {
                for i in nd.my_block(parts.len()) {
                    let t = tree.get(nd, i % tree.len())?;
                    let v = parts.get(nd, i)?;
                    parts.set(nd, i, v.wrapping_mul(3).wrapping_add(t))?;
                }
                Ok(())
            })?;
        }
        team.end_measurement();
        let mut v = Vec::new();
        for i in 0..parts.len() {
            v.push(parts.get(team.node(), i)?);
        }
        *out2.lock() = v;
        Ok(())
    })
    .expect("run failed");
    let snap = stats.snapshot();
    (Arc::try_unwrap(out).unwrap().into_inner(), snap)
}

#[test]
fn three_systems_compute_identical_results() {
    let (orig, s_orig) = mini_app(SeqMode::MasterOnly, 4, 2);
    let (opt, s_opt) = mini_app(SeqMode::Replicated, 4, 2);
    let (bc, s_bc) = mini_app(SeqMode::MasterOnlyBroadcast, 4, 2);
    assert_eq!(orig, opt, "Original and Optimized must agree");
    assert_eq!(orig, bc, "Original and Broadcast must agree");

    // Table-shape checks (scaled): the optimized system slashes
    // parallel-section diff traffic; its sequential sections cost more.
    let (po, pr, pb) = (s_orig.par_agg(), s_opt.par_agg(), s_bc.par_agg());
    assert!(
        pr.diff_bytes * 3 < po.diff_bytes,
        "optimized parallel diff data must collapse: {} vs {}",
        pr.diff_bytes,
        po.diff_bytes
    );
    // The broadcast ablation eliminates tree fetches but not the rest:
    // between the two extremes.
    assert!(pb.diff_bytes < po.diff_bytes, "broadcast must reduce parallel traffic");
    assert!(
        s_opt.seq_agg().messages > s_orig.seq_agg().messages,
        "replication adds sequential-section messages (forwards, acks)"
    );
    // Flow-control machinery really ran.
    assert!(s_opt.seq_agg().null_acks > 0);
    assert!(s_opt.seq_agg().forwarded_requests > 0);
    assert_eq!(s_orig.seq_agg().null_acks, 0);
    // The paper's headline: total time improves under replication.
    assert!(
        s_opt.total_time < s_orig.total_time,
        "optimized must beat original: {} vs {}",
        s_opt.total_time,
        s_orig.total_time
    );
}

#[test]
fn optimized_sequential_section_is_slower_but_parallel_is_faster() {
    let (_, s_orig) = mini_app(SeqMode::MasterOnly, 4, 2);
    let (_, s_opt) = mini_app(SeqMode::Replicated, 4, 2);
    assert!(
        s_opt.seq_time() > s_orig.seq_time(),
        "replicated sequential sections pay the multicast overhead: {} vs {}",
        s_opt.seq_time(),
        s_orig.seq_time()
    );
    assert!(
        s_opt.par_time() < s_orig.par_time(),
        "contention-free parallel sections must be faster: {} vs {}",
        s_opt.par_time(),
        s_orig.par_time()
    );
}

#[test]
fn parallel_for_schedules_cover_iterations() {
    for cyclic in [false, true] {
        let n = 3;
        let mut rt = Runtime::new(RunConfig::original(n));
        let marks: ShArray<u32> = rt.alloc_array_page_aligned(96);
        let ok = Arc::new(Mutex::new(false));
        let ok2 = Arc::clone(&ok);
        rt.run(move |team| {
            let body =
                move |nd: &repseq_dsm::DsmNode, i: usize| marks.set(nd, i, (nd.node() + 1) as u32);
            if cyclic {
                team.parallel_for_cyclic(96, body)?;
            } else {
                team.parallel_for_block(96, body)?;
            }
            let mut all = true;
            for i in 0..96 {
                let v = marks.get(team.node(), i)?;
                let expect = if cyclic { (i % 3 + 1) as u32 } else { (i / 32 + 1) as u32 };
                all &= v == expect;
            }
            *ok2.lock() = all;
            Ok(())
        })
        .unwrap();
        assert!(*ok.lock(), "cyclic={cyclic}");
    }
}

#[test]
fn conditional_parallelization_if_clause() {
    // Ilink's pattern: the master examines the amount of work and runs the
    // update in parallel only above a threshold (§6.2.1).
    let n = 3;
    let mut rt = Runtime::new(RunConfig::optimized(n));
    let x: ShArray<u64> = rt.alloc_array_page_aligned(64);
    let done = Arc::new(Mutex::new((0u64, 0u64)));
    let done2 = Arc::clone(&done);
    rt.run(move |team| {
        for round in 0..4usize {
            let work = if round % 2 == 0 { 100 } else { 1 };
            let threshold = 10;
            if work > threshold {
                team.parallel_for_block(64, move |nd, i| {
                    let v = x.get(nd, i)?;
                    x.set(nd, i, v + 1)
                })?;
            } else {
                team.sequential(move |nd| {
                    for i in 0..64 {
                        let v = x.get(nd, i)?;
                        x.set(nd, i, v + 10)?;
                    }
                    Ok(())
                })?;
            }
        }
        let a = x.get(team.node(), 0)?;
        let b = x.get(team.node(), 63)?;
        *done2.lock() = (a, b);
        Ok(())
    })
    .unwrap();
    assert_eq!(*done.lock(), (22, 22), "2 parallel +1s and 2 sequential +10s");
}

#[test]
fn locks_inside_parallel_regions() {
    let n = 4;
    let mut rt = Runtime::new(RunConfig::original(n));
    let counter = rt.alloc_var::<u64>();
    let result = Arc::new(Mutex::new(0u64));
    let result2 = Arc::clone(&result);
    rt.run(move |team| {
        team.parallel(move |nd| {
            for _ in 0..3 {
                nd.lock(1)?;
                let v = counter.get(nd)?;
                nd.charge(Dur::from_micros(5));
                counter.set(nd, v + 1)?;
                nd.unlock(1)?;
            }
            Ok(())
        })?;
        *result2.lock() = counter.get(team.node())?;
        Ok(())
    })
    .unwrap();
    assert_eq!(*result.lock(), 12);
}

#[test]
fn barriers_inside_parallel_regions() {
    let n = 3;
    let mut rt = Runtime::new(RunConfig::optimized(n));
    let stage: ShArray<u64> = rt.alloc_array_page_aligned(n);
    let ok = Arc::new(Mutex::new(false));
    let ok2 = Arc::clone(&ok);
    rt.run(move |team| {
        team.parallel(move |nd| {
            stage.set(nd, nd.node(), (nd.node() as u64 + 1) * 7)?;
            nd.barrier()?;
            // After the internal barrier every node sees everyone's write.
            let mut s = 0;
            for q in 0..nd.n_nodes() {
                s += stage.get(nd, q)?;
            }
            assert_eq!(s, 7 + 14 + 21);
            Ok(())
        })?;
        *ok2.lock() = true;
        Ok(())
    })
    .unwrap();
    assert!(*ok.lock());
}

#[test]
fn worker_read_all_bulk_reads() {
    let n = 2;
    let mut rt = Runtime::new(RunConfig::original(n));
    let data: ShArray<f64> = rt.alloc_array_page_aligned(700);
    let vals: Vec<f64> = (0..700).map(|i| i as f64 * 0.5).collect();
    rt.preload(data, &vals);
    let got = Arc::new(Mutex::new(Vec::new()));
    let got2 = Arc::clone(&got);
    rt.run(move |team| {
        let v = team.node().read_all(data)?;
        *got2.lock() = v;
        Ok(())
    })
    .unwrap();
    assert_eq!(got.lock().len(), 700);
    assert_eq!(got.lock()[699], 699.0 * 0.5);
}

#[test]
fn measurement_spans_sections() {
    let n = 2;
    let mut rt = Runtime::new(RunConfig::original(n));
    let x: ShArray<u64> = rt.alloc_array_page_aligned(8);
    let stats = rt.stats();
    rt.run(move |team| {
        team.start_measurement();
        team.sequential(move |nd| x.set(nd, 0, 1))?;
        team.parallel(move |nd| {
            nd.charge(Dur::from_millis(2));
            let _ = x.get(nd, 0)?;
            Ok(())
        })?;
        team.end_measurement();
        Ok(())
    })
    .unwrap();
    let snap = stats.snapshot();
    assert!(snap.total_time >= Dur::from_millis(2));
    assert!(snap.par_time() >= Dur::from_millis(2));
    let sum = snap.seq_time() + snap.par_time();
    assert!(sum <= snap.total_time + Dur::from_millis(1), "sections fit inside the total");
}

/// Both modes handle a program whose first section is parallel (no
/// sequential prologue).
#[test]
fn parallel_first_program() {
    for mode in [SeqMode::MasterOnly, SeqMode::Replicated] {
        let n = 3;
        let mut rt = Runtime::new(RunConfig {
            cluster: repseq_dsm::ClusterConfig::paper(n),
            seq_mode: mode,
        });
        let a: ShArray<u64> = rt.alloc_array_page_aligned(n);
        let ok = Arc::new(Mutex::new(0u64));
        let ok2 = Arc::clone(&ok);
        rt.run(move |team| {
            team.parallel(move |nd| a.set(nd, nd.node(), 5))?;
            team.sequential(move |nd| {
                let mut s = 0;
                for q in 0..a.len() {
                    s += a.get(nd, q)?;
                }
                a.set(nd, 0, s)
            })?;
            *ok2.lock() = a.get(team.node(), 0)?;
            Ok(())
        })
        .unwrap();
        assert_eq!(*ok.lock(), 15, "{mode:?}");
    }
}

/// Teams can print (guarded) from replicated sections without duplicating
/// output — smoke-tested via the guard logic.
#[test]
fn master_print_guard() {
    let n = 2;
    let rt = Runtime::new(RunConfig::optimized(n));
    let printed = Arc::new(Mutex::new(0usize));
    let printed2 = Arc::clone(&printed);
    rt.run(move |team| {
        let printed3 = Arc::clone(&printed2);
        team.sequential(move |nd| {
            if nd.is_master() {
                // Stand-in for Team::master_print: count instead of print.
                *printed3.lock() += 1;
            }
            Team::master_print(nd, format_args!(""));
            Ok(())
        })?;
        Ok(())
    })
    .unwrap();
    assert_eq!(*printed.lock(), 1, "exactly one node executes guarded I/O");
}
