//! Typed handles into the shared address space.
//!
//! Handles are plain `(address, length)` pairs — `Copy`, cheaply captured
//! by fork closures, exactly like the shared-variable addresses the
//! OpenMP-to-TreadMarks translator passes to slaves at a fork (§2.3).
//!
//! ## Page-guard bulk access
//!
//! [`ShArray::with_slices`] / [`ShArray::with_slices_mut`] split an element
//! range into maximal single-page runs and hand each run to a closure as a
//! [`PageSlice`] / [`PageSliceMut`]: the fault (validity check, twin
//! creation, diff fetch) is taken **once per page run** when the guard is
//! created, and every element access inside the run is a plain decode from
//! the page bytes. This is how a real DSM behaves — the fault happens at
//! the first touch of a page, subsequent accesses run at memory speed —
//! and it is the bulk-kernel complement to the per-element software TLB.
//!
//! Guards pin protocol validity only at acquisition; they must not be
//! cached across synchronization (the borrow-scoped closure API makes that
//! structurally impossible).

use std::marker::PhantomData;
use std::ops::Range;

use repseq_sim::Stopped;

use crate::interval::PageId;
use crate::page::PageBuf;
use crate::pod::Pod;
use crate::race::{AccessKind, AccessTap};
use crate::runtime::DsmNode;

/// A read guard over one single-page run of elements: `len()` elements of
/// `T` starting at global index `first_index()`, whose page was faulted in
/// (if needed) when the guard was created.
pub struct PageSlice<T: Pod> {
    buf: PageBuf,
    byte_off: usize,
    first: usize,
    count: usize,
    /// Race-detection tap over the run (None when no sink is installed,
    /// or when the run's access was already recorded at creation).
    tap: Option<AccessTap>,
    _t: PhantomData<fn() -> T>,
}

impl<T: Pod> PageSlice<T> {
    /// Global array index of the run's first element.
    pub fn first_index(&self) -> usize {
        self.first
    }

    /// Elements in the run.
    pub fn len(&self) -> usize {
        self.count
    }

    /// True if the run is empty (never produced by `with_slices`).
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Read the `k`-th element of the run (index relative to the run).
    #[inline]
    pub fn get(&self, k: usize) -> T {
        assert!(k < self.count, "run index {k} out of bounds ({} elements)", self.count);
        if let Some(tap) = &self.tap {
            tap.element(k, T::SIZE, AccessKind::Read);
        }
        let off = self.byte_off + k * T::SIZE;
        T::read_from(&self.buf.slice()[off..off + T::SIZE])
    }
}

/// A write guard over one single-page run of elements. Writes go straight
/// to the page bytes — the write fault (twin creation, §5.3 pre-diff) was
/// taken when the guard was created.
pub struct PageSliceMut<T: Pod> {
    buf: PageBuf,
    byte_off: usize,
    first: usize,
    count: usize,
    /// Run backed by a detached copy (page-straddling element); written
    /// back through the MMU after the closure if `written`.
    detached: Option<u64>,
    written: bool,
    /// Race-detection tap over the run (None when no sink is installed).
    tap: Option<AccessTap>,
    _t: PhantomData<fn() -> T>,
}

impl<T: Pod> PageSliceMut<T> {
    /// Global array index of the run's first element.
    pub fn first_index(&self) -> usize {
        self.first
    }

    /// Elements in the run.
    pub fn len(&self) -> usize {
        self.count
    }

    /// True if the run is empty (never produced by `with_slices_mut`).
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Read the `k`-th element of the run.
    #[inline]
    pub fn get(&self, k: usize) -> T {
        assert!(k < self.count, "run index {k} out of bounds ({} elements)", self.count);
        if let Some(tap) = &self.tap {
            tap.element(k, T::SIZE, AccessKind::Read);
        }
        let off = self.byte_off + k * T::SIZE;
        T::read_from(&self.buf.slice()[off..off + T::SIZE])
    }

    /// Write the `k`-th element of the run.
    #[inline]
    pub fn set(&mut self, k: usize, v: T) {
        assert!(k < self.count, "run index {k} out of bounds ({} elements)", self.count);
        if let Some(tap) = &self.tap {
            tap.element(k, T::SIZE, AccessKind::Write);
        }
        let off = self.byte_off + k * T::SIZE;
        v.write_to(&mut self.buf.slice_mut()[off..off + T::SIZE]);
        self.written = true;
    }
}

/// A shared array of `T`.
pub struct ShArray<T: Pod> {
    base: u64,
    len: usize,
    _t: PhantomData<fn() -> T>,
}

impl<T: Pod> Clone for ShArray<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T: Pod> Copy for ShArray<T> {}

impl<T: Pod> ShArray<T> {
    pub(crate) fn new(base: u64, len: usize) -> Self {
        ShArray { base, len, _t: PhantomData }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the array has no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Address of element `i`.
    #[inline]
    pub fn addr(&self, i: usize) -> u64 {
        debug_assert!(i < self.len, "index {i} out of bounds ({} elements)", self.len);
        self.base + (i * T::SIZE) as u64
    }

    /// Read element `i` on `node`.
    #[inline]
    pub fn get(&self, node: &DsmNode, i: usize) -> Result<T, Stopped> {
        node.read(self.addr(i))
    }

    /// Write element `i` on `node`.
    #[inline]
    pub fn set(&self, node: &DsmNode, i: usize, v: T) -> Result<(), Stopped> {
        node.write(self.addr(i), v)
    }

    /// Visit `range` as a sequence of maximal single-page runs, taking the
    /// read fault once per page. Elements that straddle a page boundary
    /// are delivered as singleton runs backed by a detached copy (read
    /// through the buffered byte path, exactly like the element-wise
    /// protocol).
    pub fn with_slices(
        &self,
        node: &DsmNode,
        range: Range<usize>,
        mut f: impl FnMut(&PageSlice<T>) -> Result<(), Stopped>,
    ) -> Result<(), Stopped> {
        assert!(range.start <= range.end && range.end <= self.len);
        let ps = node.page_size();
        let mut i = range.start;
        while i < range.end {
            let a = self.addr(i);
            let in_page = (a % ps as u64) as usize;
            if in_page + T::SIZE > ps {
                let mut bytes = vec![0u8; T::SIZE];
                // `read_bytes` records the access; no tap on the run.
                node.read_bytes(a, &mut bytes)?;
                let run = PageSlice {
                    buf: PageBuf::new(bytes.into_boxed_slice()),
                    byte_off: 0,
                    first: i,
                    count: 1,
                    tap: None,
                    _t: PhantomData,
                };
                f(&run)?;
                i += 1;
            } else {
                let count = ((ps - in_page) / T::SIZE).min(range.end - i);
                let p = (a / ps as u64) as PageId;
                let buf = node.page_for_read(p)?;
                if node.tlb_enabled && count > 1 {
                    // The run serves `count` element accesses from the one
                    // translation just resolved; each after the first skips
                    // the walk exactly like a TLB hit.
                    repseq_stats::host::tlb_hits_bulk(count as u64 - 1);
                }
                let run = PageSlice {
                    buf,
                    byte_off: in_page,
                    first: i,
                    count,
                    tap: node.race_tap(a),
                    _t: PhantomData,
                };
                f(&run)?;
                i += count;
            }
        }
        Ok(())
    }

    /// Visit `range` as a sequence of maximal single-page runs, taking the
    /// write fault (twin creation, §5.3 pre-diff) once per page.
    /// Straddling elements arrive as detached singleton runs pre-filled
    /// with the current value and are written back through the byte path
    /// only if the closure wrote them — the fault pattern matches the
    /// element-wise protocol exactly, so message counts are unchanged.
    pub fn with_slices_mut(
        &self,
        node: &DsmNode,
        range: Range<usize>,
        mut f: impl FnMut(&mut PageSliceMut<T>) -> Result<(), Stopped>,
    ) -> Result<(), Stopped> {
        assert!(range.start <= range.end && range.end <= self.len);
        let ps = node.page_size();
        let mut i = range.start;
        while i < range.end {
            let a = self.addr(i);
            let in_page = (a % ps as u64) as usize;
            if in_page + T::SIZE > ps {
                let mut bytes = vec![0u8; T::SIZE];
                // The pre-fill is runtime bookkeeping, not a program read;
                // the tap records what the closure actually touches, and
                // the write-back below re-uses its record.
                node.read_bytes_quiet(a, &mut bytes)?;
                let mut run = PageSliceMut {
                    buf: PageBuf::new(bytes.into_boxed_slice()),
                    byte_off: 0,
                    first: i,
                    count: 1,
                    detached: Some(a),
                    written: false,
                    tap: node.race_tap(a),
                    _t: PhantomData,
                };
                f(&mut run)?;
                if let Some(addr) = run.detached {
                    if run.written {
                        node.write_bytes_quiet(addr, run.buf.slice())?;
                    }
                }
                i += 1;
            } else {
                let count = ((ps - in_page) / T::SIZE).min(range.end - i);
                let p = (a / ps as u64) as PageId;
                let buf = node.page_for_write(p)?;
                if node.tlb_enabled && count > 1 {
                    // As in `with_slices`: the guard amortizes one walk over
                    // the whole run.
                    repseq_stats::host::tlb_hits_bulk(count as u64 - 1);
                }
                let mut run = PageSliceMut {
                    buf,
                    byte_off: in_page,
                    first: i,
                    count,
                    detached: None,
                    written: false,
                    tap: node.race_tap(a),
                    _t: PhantomData,
                };
                f(&mut run)?;
                i += count;
            }
        }
        Ok(())
    }

    /// Read a contiguous range into `out` (the fault is taken once per
    /// page run; elements decode straight from the page bytes).
    pub fn read_range(&self, node: &DsmNode, start: usize, out: &mut [T]) -> Result<(), Stopped> {
        assert!(start + out.len() <= self.len);
        self.with_slices(node, start..start + out.len(), |run| {
            let base = run.first_index() - start;
            for k in 0..run.len() {
                out[base + k] = run.get(k);
            }
            Ok(())
        })
    }

    /// Write a contiguous range from `vals` (one write fault per page run;
    /// elements encode straight into the page bytes).
    pub fn write_range(&self, node: &DsmNode, start: usize, vals: &[T]) -> Result<(), Stopped> {
        assert!(start + vals.len() <= self.len);
        self.with_slices_mut(node, start..start + vals.len(), |run| {
            let base = run.first_index() - start;
            for k in 0..run.len() {
                run.set(k, vals[base + k]);
            }
            Ok(())
        })
    }

    /// The page range `[first, last]` the array spans (for the
    /// hand-inserted broadcast ablation).
    pub fn page_span(&self, page_size: usize) -> (u32, u32) {
        let first = (self.base / page_size as u64) as u32;
        let last_byte = self.base + (self.len * T::SIZE).max(1) as u64 - 1;
        (first, (last_byte / page_size as u64) as u32)
    }
}

/// A single shared variable.
pub struct ShVar<T: Pod> {
    arr: ShArray<T>,
}

impl<T: Pod> Clone for ShVar<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T: Pod> Copy for ShVar<T> {}

impl<T: Pod> ShVar<T> {
    pub(crate) fn from_array(arr: ShArray<T>) -> Self {
        debug_assert_eq!(arr.len(), 1);
        ShVar { arr }
    }

    /// The variable's address.
    pub fn addr(&self) -> u64 {
        self.arr.addr(0)
    }

    pub(crate) fn as_array(&self) -> ShArray<T> {
        self.arr
    }

    /// Read on `node`.
    #[inline]
    pub fn get(&self, node: &DsmNode) -> Result<T, Stopped> {
        self.arr.get(node, 0)
    }

    /// Write on `node`.
    #[inline]
    pub fn set(&self, node: &DsmNode, v: T) -> Result<(), Stopped> {
        self.arr.set(node, 0, v)
    }
}
