//! Typed handles into the shared address space.
//!
//! Handles are plain `(address, length)` pairs — `Copy`, cheaply captured
//! by fork closures, exactly like the shared-variable addresses the
//! OpenMP-to-TreadMarks translator passes to slaves at a fork (§2.3).

use std::marker::PhantomData;

use repseq_sim::Stopped;

use crate::pod::Pod;
use crate::runtime::DsmNode;

/// A shared array of `T`.
pub struct ShArray<T: Pod> {
    base: u64,
    len: usize,
    _t: PhantomData<fn() -> T>,
}

impl<T: Pod> Clone for ShArray<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T: Pod> Copy for ShArray<T> {}

impl<T: Pod> ShArray<T> {
    pub(crate) fn new(base: u64, len: usize) -> Self {
        ShArray { base, len, _t: PhantomData }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the array has no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Address of element `i`.
    #[inline]
    pub fn addr(&self, i: usize) -> u64 {
        debug_assert!(i < self.len, "index {i} out of bounds ({} elements)", self.len);
        self.base + (i * T::SIZE) as u64
    }

    /// Read element `i` on `node`.
    #[inline]
    pub fn get(&self, node: &DsmNode, i: usize) -> Result<T, Stopped> {
        node.read(self.addr(i))
    }

    /// Write element `i` on `node`.
    #[inline]
    pub fn set(&self, node: &DsmNode, i: usize, v: T) -> Result<(), Stopped> {
        node.write(self.addr(i), v)
    }

    /// Read a contiguous range into `out` (page checks amortized per page).
    pub fn read_range(&self, node: &DsmNode, start: usize, out: &mut [T]) -> Result<(), Stopped> {
        assert!(start + out.len() <= self.len);
        let mut buf = vec![0u8; out.len() * T::SIZE];
        node.read_bytes(self.addr(start), &mut buf)?;
        for (k, slot) in out.iter_mut().enumerate() {
            *slot = T::read_from(&buf[k * T::SIZE..]);
        }
        Ok(())
    }

    /// Write a contiguous range from `vals`.
    pub fn write_range(&self, node: &DsmNode, start: usize, vals: &[T]) -> Result<(), Stopped> {
        assert!(start + vals.len() <= self.len);
        let mut buf = vec![0u8; vals.len() * T::SIZE];
        for (k, v) in vals.iter().enumerate() {
            v.write_to(&mut buf[k * T::SIZE..]);
        }
        node.write_bytes(self.addr(start), &buf)
    }

    /// The page range `[first, last]` the array spans (for the
    /// hand-inserted broadcast ablation).
    pub fn page_span(&self, page_size: usize) -> (u32, u32) {
        let first = (self.base / page_size as u64) as u32;
        let last_byte = self.base + (self.len * T::SIZE).max(1) as u64 - 1;
        (first, (last_byte / page_size as u64) as u32)
    }
}

/// A single shared variable.
pub struct ShVar<T: Pod> {
    arr: ShArray<T>,
}

impl<T: Pod> Clone for ShVar<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T: Pod> Copy for ShVar<T> {}

impl<T: Pod> ShVar<T> {
    pub(crate) fn from_array(arr: ShArray<T>) -> Self {
        debug_assert_eq!(arr.len(), 1);
        ShVar { arr }
    }

    /// The variable's address.
    pub fn addr(&self) -> u64 {
        self.arr.addr(0)
    }

    pub(crate) fn as_array(&self) -> ShArray<T> {
        self.arr
    }

    /// Read on `node`.
    #[inline]
    pub fn get(&self, node: &DsmNode) -> Result<T, Stopped> {
        self.arr.get(node, 0)
    }

    /// Write on `node`.
    #[inline]
    pub fn set(&self, node: &DsmNode, v: T) -> Result<(), Stopped> {
        self.arr.set(node, 0, v)
    }
}
