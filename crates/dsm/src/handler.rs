//! The per-node protocol handler process.
//!
//! TreadMarks serves remote requests in a signal handler on the
//! application processor; here each node runs a dedicated handler process
//! that serves requests serially and shares the node's transmit link with
//! the application — the two ingredients of the contention behaviour §3
//! describes. The handler also implements the barrier manager (node 0),
//! the lock managers, and the receive side of the replicated-section
//! multicast protocol.

use std::sync::Arc;

use parking_lot::Mutex;
use repseq_net::Nic;
use repseq_sim::{Ctx, Stopped};
use repseq_stats::MsgClass;

use crate::msg::DsmMsg;
use crate::runtime::Topology;
use crate::state::NodeState;
use crate::strategy::chain;
use crate::sync::{holder_logic, LockAction};

pub(crate) fn handler_main(
    ctx: Ctx<DsmMsg>,
    nic: Nic,
    st: Arc<Mutex<NodeState>>,
    topo: Arc<Topology>,
) -> Result<(), Stopped> {
    let node = nic.node();
    let n = topo.n;
    loop {
        // While a forwarded multicast request is in flight, the master
        // handler arms a timeout so a lost frame cannot wedge the queue
        // forever (the requester recovers independently, §5.4.2).
        let env = {
            let stall_guard = node == 0 && st.lock().rse.mcast_inflight.is_some();
            if stall_guard {
                let t = st.lock().cfg.rse_timeout * 4;
                match ctx.recv_timeout(t)? {
                    Some(e) => e,
                    None => {
                        let next = {
                            let mut s = st.lock();
                            s.rse.mcast_inflight = None;
                            chain::master_try_start(&mut s)
                        };
                        if let Some(msg) = next {
                            chain::multicast_to_handlers(
                                &nic,
                                &ctx,
                                &topo,
                                MsgClass::ForwardedRequest,
                                msg,
                            );
                        }
                        continue;
                    }
                }
            } else {
                ctx.recv()?
            }
        };

        match env.msg {
            // ---- demand diff fetching ----
            DsmMsg::DiffRequest { page, ivxs, reply_to, req_id } => {
                let (service, cost, diffs) = {
                    let mut s = st.lock();
                    let service = s.cfg.service_overhead;
                    let (cost, diffs) = s.serve_diff_request(page, &ivxs);
                    (service, cost, diffs)
                };
                ctx.charge(service + cost);
                let dst_node = node_of_app(&topo, reply_to);
                let reply = DsmMsg::DiffReply { page, diffs, req_id };
                let size = reply.wire_size();
                nic.unicast(&ctx, dst_node, reply_to, MsgClass::DiffReply, size, reply);
            }

            // ---- barrier manager (node 0) ----
            DsmMsg::BarrierArrive { from, vc, records, reply_to } => {
                debug_assert_eq!(node, 0, "barrier arrivals go to the manager");
                let departures = {
                    let mut s = st.lock();
                    ctx.charge(s.cfg.sync_overhead);
                    let cost = s.apply_records(records, &vc);
                    ctx.charge(cost);
                    s.sync.barrier_arrivals.push((from, vc, reply_to));
                    if s.sync.barrier_arrivals.len() == n {
                        let arrivals = std::mem::take(&mut s.sync.barrier_arrivals);
                        let merged = s.con.vc.clone();
                        Some(
                            arrivals
                                .into_iter()
                                .map(|(q, vcq, pid)| {
                                    let records = s.con.intervals.records_unknown_to(&vcq);
                                    (q, pid, DsmMsg::BarrierDepart { records, vc: merged.clone() })
                                })
                                .collect::<Vec<_>>(),
                        )
                    } else {
                        None
                    }
                };
                if let Some(departures) = departures {
                    for (q, pid, msg) in departures {
                        let size = msg.wire_size();
                        if q == 0 {
                            nic.local(&ctx, pid, msg);
                        } else {
                            nic.unicast(&ctx, q, pid, MsgClass::Sync, size, msg);
                        }
                    }
                }
            }

            // ---- lock manager / holder ----
            DsmMsg::LockAcquire { lock, from, vc, reply_to, forwarded } => {
                let manager = (lock as usize) % n == node;
                let action = {
                    let mut s = st.lock();
                    ctx.charge(s.cfg.sync_overhead);
                    if manager && !forwarded {
                        // Lazy token initialization: an unseen lock's token
                        // starts at its manager.
                        let target = match s.sync.lock_last.get(&lock) {
                            Some(&t) => t,
                            None => {
                                s.sync.lock_token.insert(lock);
                                node
                            }
                        };
                        s.sync.lock_last.insert(lock, from);
                        if target == node {
                            holder_logic(&mut s, lock, from, &vc, reply_to)
                        } else {
                            LockAction::Forward(target)
                        }
                    } else {
                        holder_logic(&mut s, lock, from, &vc, reply_to)
                    }
                };
                match action {
                    LockAction::Queued => {}
                    LockAction::Forward(target) => {
                        let msg = DsmMsg::LockAcquire { lock, from, vc, reply_to, forwarded: true };
                        let size = msg.wire_size();
                        nic.unicast(
                            &ctx,
                            target,
                            topo.handler_pids[target],
                            MsgClass::Lock,
                            size,
                            msg,
                        );
                    }
                    LockAction::Grant { records, vc } => {
                        let msg = DsmMsg::LockGrant { lock, records, vc };
                        let size = msg.wire_size();
                        let dst_node = node_of_app(&topo, reply_to);
                        nic.unicast(&ctx, dst_node, reply_to, MsgClass::Lock, size, msg);
                    }
                }
            }

            // ---- replicated-section multicast protocol ----
            DsmMsg::McastRequest { page, wanted, requester, epoch } => {
                debug_assert_eq!(node, 0, "multicast requests are serialized at the master");
                let fwd = {
                    let mut s = st.lock();
                    ctx.charge(s.cfg.service_overhead);
                    chain::master_enqueue(&mut s, page, wanted, requester, epoch)
                };
                if let Some(msg) = fwd {
                    chain::multicast_to_handlers(
                        &nic,
                        &ctx,
                        &topo,
                        MsgClass::ForwardedRequest,
                        msg,
                    );
                }
            }
            DsmMsg::McastForward { page, wanted, requester, req_seq } => {
                let turn = {
                    let mut s = st.lock();
                    ctx.charge(s.cfg.service_overhead);
                    chain::on_forward(&mut s, page, wanted, requester, req_seq)
                };
                if let Some((msg, cost)) = turn {
                    ctx.charge(cost);
                    let class = match &msg {
                        DsmMsg::McastNullAck { .. } => MsgClass::NullAck,
                        _ => MsgClass::DiffReply,
                    };
                    chain::multicast_to_handlers(&nic, &ctx, &topo, class, msg);
                }
            }
            DsmMsg::McastDiffReply { page, diffs, turn, req_seq } => {
                handle_chain_step(&ctx, &nic, &st, &topo, Some((page, diffs)), turn, req_seq);
            }
            DsmMsg::McastNullAck { page: _, turn, req_seq } => {
                handle_chain_step(&ctx, &nic, &st, &topo, None, turn, req_seq);
            }
            DsmMsg::RecoveryRequest { page, ivxs, requester: _, reply_mcast } => {
                let served = {
                    let mut s = st.lock();
                    ctx.charge(s.cfg.service_overhead);
                    // One multicast reply serves every concurrent
                    // requester; see `oob_reply_due` for the window rule.
                    let window = s.cfg.rse_timeout / 2;
                    if s.oob_reply_due(page, &ivxs, ctx.now(), window) {
                        let (cost, diffs) = s.serve_diff_request(page, &ivxs);
                        let reply = DsmMsg::McastDiffReply {
                            page,
                            diffs,
                            turn: node,
                            req_seq: chain::OOB_SEQ,
                        };
                        Some((reply, cost))
                    } else {
                        None
                    }
                };
                debug_assert!(reply_mcast, "recovery replies are always multicast (§5.4.2)");
                if let Some((msg, cost)) = served {
                    ctx.charge(cost);
                    chain::multicast_to_handlers(&nic, &ctx, &topo, MsgClass::DiffReply, msg);
                }
            }

            // ---- hand-inserted broadcast (ablation / MasterPush) ----
            DsmMsg::PageBroadcast { page, data, vc } => {
                let mut s = st.lock();
                ctx.charge(s.cfg.service_overhead);
                let meta = s.page_mut(page);
                let fresh = !(meta.valid && vc.dominated_by(&meta.valid_at));
                if meta.twin.is_none() && fresh {
                    // Safe to overwrite: we have no concurrent local writes
                    // and our copy does not already cover the broadcast
                    // (a broadcast delayed behind other hub traffic must
                    // not clobber a fresher demand-fetched copy). Copy in
                    // place — a TLB entry or guard may alias the buffer,
                    // and replacing it would leave them pointing at the
                    // pre-broadcast bytes forever.
                    s.page_data(page).copy_from_slice(&data);
                    let meta = s.page_mut(page);
                    meta.valid_at.merge(&vc);
                    // The copy is valid only if it covers every write
                    // notice known locally: a late broadcast must not
                    // resurrect a copy that newer notices invalidated.
                    // (Uncovered notices keep it invalid; the next access
                    // demand-fetches exactly those diffs onto this base.)
                    meta.valid =
                        meta.notices.iter().all(|&(owner, ivx)| meta.valid_at.covers(owner, ivx));
                    s.rse.valid_changed.insert(page);
                    // Content changed underneath any cached translation.
                    s.bump_page_prot_gen(page);
                }
            }

            DsmMsg::ValidNoticeTable { deltas } => {
                let mut s = st.lock();
                ctx.charge(s.cfg.sync_overhead);
                s.merge_valid_deltas(&deltas);
            }

            DsmMsg::WakePage { .. } => { /* stale local wakeup */ }
            other => panic!("handler {node}: unexpected {}", other.kind()),
        }
    }
}

/// Shared handling for both chain step messages (diff replies and null
/// acks): incorporate diffs, advance the chain, take our own turn, and at
/// the master start the next queued request when a chain completes.
fn handle_chain_step(
    ctx: &Ctx<DsmMsg>,
    nic: &Nic,
    st: &Arc<Mutex<NodeState>>,
    topo: &Arc<Topology>,
    diffs: Option<(crate::interval::PageId, Vec<crate::page::DiffEntry>)>,
    turn: usize,
    req_seq: u64,
) {
    let node = nic.node();
    let mut to_multicast: Option<(DsmMsg, MsgClass)> = None;
    let mut wake: Option<crate::interval::PageId> = None;
    {
        let mut s = st.lock();
        ctx.charge(s.cfg.service_overhead);
        if let Some((page, diffs)) = &diffs {
            let (cost, w) = chain::incorporate_diffs(&mut s, *page, diffs);
            ctx.charge(cost);
            wake = w;
        }
        if req_seq != chain::OOB_SEQ {
            let done = chain::advance_chain(&mut s, req_seq, turn);
            if done {
                if node == 0 {
                    s.rse.mcast_inflight = None;
                    if let Some(msg) = chain::master_try_start(&mut s) {
                        to_multicast = Some((msg, MsgClass::ForwardedRequest));
                    }
                }
            } else if let Some((msg, cost)) = chain::take_turn(&mut s, req_seq) {
                ctx.charge(cost);
                let class = match &msg {
                    DsmMsg::McastNullAck { .. } => MsgClass::NullAck,
                    _ => MsgClass::DiffReply,
                };
                to_multicast = Some((msg, class));
            }
        } else if wake.is_none() {
            // Out-of-band recovery reply that did not complete our copy:
            // a waiting application must still be woken so it re-evaluates
            // its fetch plan immediately — it may now recover more, and
            // what is still missing gets re-requested — instead of
            // sleeping out a full extra `rse_timeout`.
            if let Some((page, _)) = &diffs {
                if s.rse.waiting_page == Some(*page) {
                    wake = Some(*page);
                }
            }
        }
    }
    if let Some(page) = wake {
        nic.local(ctx, topo.app_pids[node], DsmMsg::WakePage { page });
    }
    if let Some((msg, class)) = to_multicast {
        chain::multicast_to_handlers(nic, ctx, topo, class, msg);
    }
}

fn node_of_app(topo: &Topology, pid: repseq_sim::Pid) -> usize {
    topo.app_pids
        .iter()
        .position(|&p| p == pid)
        .expect("reply target is not an application process")
}
