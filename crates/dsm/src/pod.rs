//! Plain-old-data encoding for typed access to the paged shared heap.
//!
//! The real system detects shared accesses with VM page protection; here
//! applications go through typed handles instead (see `DESIGN.md`), so
//! every shared type must say how it lays out in page bytes. All encodings
//! are little-endian and fixed-size; no `unsafe` is involved.

/// A fixed-size value that can live in DSM pages.
pub trait Pod: Copy + 'static {
    /// Encoded size in bytes.
    const SIZE: usize;

    /// Decode from exactly `SIZE` bytes.
    fn read_from(b: &[u8]) -> Self;

    /// Encode into exactly `SIZE` bytes.
    fn write_to(self, b: &mut [u8]);
}

macro_rules! impl_pod_int {
    ($($t:ty),*) => {$(
        impl Pod for $t {
            const SIZE: usize = std::mem::size_of::<$t>();
            #[inline]
            fn read_from(b: &[u8]) -> Self {
                <$t>::from_le_bytes(b[..Self::SIZE].try_into().unwrap())
            }
            #[inline]
            fn write_to(self, b: &mut [u8]) {
                b[..Self::SIZE].copy_from_slice(&self.to_le_bytes());
            }
        }
    )*};
}

impl_pod_int!(u8, u16, u32, u64, i8, i16, i32, i64, f32, f64);

impl<T: Pod, const N: usize> Pod for [T; N] {
    const SIZE: usize = T::SIZE * N;

    #[inline]
    fn read_from(b: &[u8]) -> Self {
        std::array::from_fn(|i| T::read_from(&b[i * T::SIZE..]))
    }

    #[inline]
    fn write_to(self, b: &mut [u8]) {
        for (i, v) in self.into_iter().enumerate() {
            v.write_to(&mut b[i * T::SIZE..]);
        }
    }
}

impl Pod for bool {
    const SIZE: usize = 1;
    #[inline]
    fn read_from(b: &[u8]) -> Self {
        b[0] != 0
    }
    #[inline]
    fn write_to(self, b: &mut [u8]) {
        b[0] = self as u8;
    }
}

/// Implements [`Pod`] for a struct by concatenating the encodings of its
/// fields in declaration order.
///
/// ```
/// use repseq_dsm::{impl_pod_struct, Pod};
///
/// #[derive(Clone, Copy, Default, PartialEq, Debug)]
/// struct Body { pos: [f64; 3], mass: f64, id: u32 }
/// impl_pod_struct!(Body { pos: [f64; 3], mass: f64, id: u32 });
///
/// let b = Body { pos: [1.0, 2.0, 3.0], mass: 4.0, id: 5 };
/// let mut buf = vec![0u8; Body::SIZE];
/// b.write_to(&mut buf);
/// assert_eq!(Body::read_from(&buf), b);
/// assert_eq!(Body::SIZE, 3 * 8 + 8 + 4);
/// ```
#[macro_export]
macro_rules! impl_pod_struct {
    ($name:ident { $($field:ident : $ty:ty),+ $(,)? }) => {
        impl $crate::Pod for $name {
            const SIZE: usize = 0 $(+ <$ty as $crate::Pod>::SIZE)+;

            fn read_from(b: &[u8]) -> Self {
                let mut o = 0usize;
                $(
                    let $field = <$ty as $crate::Pod>::read_from(&b[o..]);
                    o += <$ty as $crate::Pod>::SIZE;
                )+
                let _ = o;
                $name { $($field),+ }
            }

            fn write_to(self, b: &mut [u8]) {
                let mut o = 0usize;
                $(
                    <$ty as $crate::Pod>::write_to(self.$field, &mut b[o..]);
                    o += <$ty as $crate::Pod>::SIZE;
                )+
                let _ = o;
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_roundtrips() {
        let mut buf = [0u8; 8];
        42u32.write_to(&mut buf);
        assert_eq!(u32::read_from(&buf), 42);
        (-7i64).write_to(&mut buf);
        assert_eq!(i64::read_from(&buf), -7);
        3.25f64.write_to(&mut buf);
        assert_eq!(f64::read_from(&buf), 3.25);
        true.write_to(&mut buf);
        assert!(bool::read_from(&buf));
    }

    #[test]
    fn array_roundtrip() {
        let v = [1.5f64, -2.5, 0.0];
        let mut buf = [0u8; 24];
        v.write_to(&mut buf);
        assert_eq!(<[f64; 3]>::read_from(&buf), v);
        assert_eq!(<[f64; 3]>::SIZE, 24);
    }

    #[derive(Clone, Copy, Default, PartialEq, Debug)]
    struct Cell {
        children: [u32; 8],
        com: [f64; 3],
        mass: f64,
    }
    impl_pod_struct!(Cell { children: [u32; 8], com: [f64; 3], mass: f64 });

    #[test]
    fn struct_roundtrip_and_size() {
        assert_eq!(Cell::SIZE, 8 * 4 + 3 * 8 + 8);
        let c = Cell { children: [1, 2, 3, 4, 5, 6, 7, 8], com: [0.5, -0.5, 9.0], mass: 2.0 };
        let mut buf = vec![0u8; Cell::SIZE];
        c.write_to(&mut buf);
        assert_eq!(Cell::read_from(&buf), c);
    }

    #[test]
    fn encoding_is_little_endian_stable() {
        let mut buf = [0u8; 4];
        0x0102_0304u32.write_to(&mut buf);
        assert_eq!(buf, [4, 3, 2, 1]);
    }
}
