//! The data plane: page contents, twins, diffs, the twin buffer pool and
//! software-TLB revocation (the protection generation).
//!
//! This layer owns *the bytes*: materializing pages from the initial
//! image, twinning on write faults, lazy diff creation and application,
//! the diff cache, and every protection change that must invalidate the
//! application process's software TLB. It consults the consistency layer
//! for what a copy is missing (`missing_notices` against the interval
//! store) but never mutates interval or vector-clock state beyond the
//! coverage stamp (`valid_at`) of its own pages.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use repseq_sim::Dur;
use repseq_stats::{host, NodeId};

use crate::diff::Diff;
use crate::interval::PageId;
use crate::page::{DiffEntry, DiffRecord, PageBuf, PageMeta};

/// Twin-pool cap for nodes whose cluster never called
/// [`NodeState::size_twin_pool`] (unit tests, hand-built states). Clusters
/// size the pool from the shared-segment page count instead, since a full
/// sweep over the segment can twin every page of it.
const TWIN_POOL_DEFAULT_CAP: usize = 64;

/// Most buffers [`NodeState::size_twin_pool`] prewarms eagerly; beyond
/// this, first-touch allocation is cheaper than the up-front memory.
const TWIN_POOL_PREWARM_MAX: usize = 256;

/// Cluster-wide prewarm budget in pages (32 MiB at 4 KiB pages), split
/// evenly across nodes. Prewarming is per node, so without the split a
/// 256-node cluster would eagerly commit `256 × TWIN_POOL_PREWARM_MAX`
/// pages before the run even starts. Each node's share never drops below
/// [`TWIN_POOL_DEFAULT_CAP`]: enough to cover the whole segment of the
/// scaled-down workloads that large host runs actually use, so their
/// twin-pool hit rate stays ≥ 0.90 (pinned by `twin_pool_256.rs`).
const TWIN_POOL_PREWARM_BUDGET: usize = 8192;

/// Take a page buffer from `pool` (or allocate) and fill it with `src`.
/// Free functions rather than methods so callers can hold a `&mut` into
/// the page table at the same time (disjoint field borrows).
pub(crate) fn pool_take(pool: &mut Vec<Box<[u8]>>, src: &[u8]) -> Box<[u8]> {
    match pool.pop() {
        Some(mut buf) if buf.len() == src.len() => {
            host::twin_pool_hit();
            buf.copy_from_slice(src);
            buf
        }
        _ => {
            host::twin_pool_miss();
            src.to_vec().into_boxed_slice()
        }
    }
}

/// Return a page buffer to `pool` for reuse.
pub(crate) fn pool_recycle(pool: &mut Vec<Box<[u8]>>, cap: usize, buf: Box<[u8]>) {
    if pool.len() < cap {
        pool.push(buf);
    }
}

/// Number of per-page generation buckets in a [`GenTable`]. Pages hash in
/// by their low bits; a bucket collision only *over*-invalidates (the
/// colliding page's TLB entries revalidate through the slow path), never
/// under-invalidates, so the count is purely a hit-rate/memory trade.
const GEN_BUCKETS: usize = 1024;

/// Per-page protection generations plus a monotone node-wide total.
///
/// Revoking one page's protection used to bump a single node-global
/// counter, flushing every software-TLB entry of the node; with
/// generations per page bucket, a revocation invalidates only the
/// translations of (pages aliasing) that page. Each bucket carries *two*
/// generations because the two ways a translation can go stale are
/// asymmetric:
///
/// * the **read** generation covers the mapping itself — bumped when the
///   page is invalidated or its contents change out of band, which
///   retires every cached translation of the page;
/// * the **write** generation covers write permission only — bumped when
///   writing is revoked but the page stays valid and readable (interval
///   close, §5.3 write-protect at replicated-section entry/exit), which
///   retires only *writable* translations: a read-only entry is still
///   exactly right, and keeping it is most of the TLB's hit rate on
///   read-mostly phases.
///
/// The `total` counter is bumped alongside every per-page bump so "did
/// anything change?" monotonicity checks (and [`NodeState::prot_gen`])
/// keep a single number to compare.
pub(crate) struct GenTable {
    total: AtomicU64,
    read_gens: Vec<AtomicU64>,
    write_gens: Vec<AtomicU64>,
}

impl GenTable {
    fn new() -> GenTable {
        GenTable {
            total: AtomicU64::new(0),
            read_gens: (0..GEN_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            write_gens: (0..GEN_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    #[inline]
    fn bucket(p: PageId) -> usize {
        p as usize & (GEN_BUCKETS - 1)
    }

    /// The read (mapping) generation a software-TLB entry for page `p`
    /// must be stamped with (and validated against) right now.
    #[inline]
    pub(crate) fn page_read(&self, p: PageId) -> u64 {
        self.read_gens[Self::bucket(p)].load(Ordering::Relaxed)
    }

    /// The write-permission generation for page `p`.
    #[inline]
    pub(crate) fn page_write(&self, p: PageId) -> u64 {
        self.write_gens[Self::bucket(p)].load(Ordering::Relaxed)
    }

    /// Monotone count of every per-page bump on this node.
    #[inline]
    pub(crate) fn total(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Revoke every cached translation of page `p` (and, via bucket
    /// collision, possibly of a few unrelated pages — always safe, only
    /// slower): invalidation or out-of-band content change.
    #[inline]
    pub(crate) fn bump_page(&self, p: PageId) {
        self.read_gens[Self::bucket(p)].fetch_add(1, Ordering::Relaxed);
        self.write_gens[Self::bucket(p)].fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
    }

    /// Revoke only *writable* cached translations of page `p`: the page
    /// stays valid and readable, so read-only entries remain current.
    #[inline]
    pub(crate) fn bump_page_write(&self, p: PageId) {
        self.write_gens[Self::bucket(p)].fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
    }
}

/// Page/twin/diff state: one node's local memory.
pub(crate) struct DataPlane {
    pub(crate) pages: HashMap<PageId, PageMeta>,
    /// Diff cache: local creations and remote fetches, never evicted
    /// (garbage collection is out of scope, see DESIGN.md). One record can
    /// be keyed under several intervals it covers.
    pub(crate) diffs: HashMap<(PageId, NodeId, u32), DiffEntry>,
    /// Pages with a twin (writes not yet diffed).
    pub(crate) dirty_pages: Vec<PageId>,
    /// Recycled page-sized buffers for twins: every write fault needs a
    /// page copy, and the steady state of a fault-heavy run would
    /// otherwise allocate and free one page per fault. Buffers return
    /// here when a twin is consumed by diff creation or dropped at
    /// replicated-section exit. Capped at `twin_pool_cap`.
    pub(crate) twin_pool: Vec<Box<[u8]>>,
    /// Pool cap: the shared-segment page count once the cluster calls
    /// [`NodeState::size_twin_pool`], [`TWIN_POOL_DEFAULT_CAP`] otherwise.
    pub(crate) twin_pool_cap: usize,
    /// Per-page protection generations: bumped for a page at every
    /// protection *revocation* or out-of-band content change that could
    /// make a cached translation of it stale — interval close, invalidation
    /// by write notice, §5.3 write-protect at replicated-section
    /// entry/exit, diff application, page broadcast. Permission *grants* (a
    /// write fault enabling writing) do not bump: a stale read-only entry
    /// is merely conservative (write lookups miss and take the slow path).
    /// The application process's software TLB validates entries against the
    /// owning page's generation with one relaxed load, so TLB hits skip the
    /// mutex and page walk, and revoking one page no longer flushes every
    /// unrelated entry. Shared (`Arc`) because the handler process mutates
    /// protections while the TLB lives with the application process.
    pub(crate) prot_gen: Arc<GenTable>,
    /// Initial page images (shared, written before the run starts).
    pub(crate) initial: Arc<HashMap<PageId, Arc<[u8]>>>,
}

impl DataPlane {
    pub(crate) fn new(initial: Arc<HashMap<PageId, Arc<[u8]>>>) -> DataPlane {
        DataPlane {
            pages: HashMap::new(),
            diffs: HashMap::new(),
            dirty_pages: Vec::new(),
            twin_pool: Vec::new(),
            twin_pool_cap: TWIN_POOL_DEFAULT_CAP,
            prot_gen: Arc::new(GenTable::new()),
            initial,
        }
    }
}

use crate::state::NodeState;

impl NodeState {
    /// The page contents, materialized from the initial image on first
    /// touch.
    pub fn page_data(&mut self, p: PageId) -> &mut [u8] {
        let ps = self.cfg.page_size;
        let initial = Arc::clone(&self.data.initial);
        let n = self.n;
        let page = self.data.pages.entry(p).or_insert_with(|| PageMeta::new(n));
        page.materialize(ps, initial.get(&p))
    }

    /// A shared handle to the page contents (materialized on first touch),
    /// for the software TLB and the page guards.
    pub(crate) fn page_buf(&mut self, p: PageId) -> PageBuf {
        let ps = self.cfg.page_size;
        let initial = Arc::clone(&self.data.initial);
        let n = self.n;
        let page = self.data.pages.entry(p).or_insert_with(|| PageMeta::new(n));
        page.buf(ps, initial.get(&p)).clone()
    }

    /// The node-wide protection-change counter: the monotone total of all
    /// per-page generation bumps, so "was anything revoked?" checks keep a
    /// single number to compare.
    pub fn prot_gen(&self) -> u64 {
        self.data.prot_gen.total()
    }

    /// The shared per-page generation table itself, for wiring the
    /// application process's software TLB.
    pub(crate) fn prot_gen_arc(&self) -> Arc<GenTable> {
        Arc::clone(&self.data.prot_gen)
    }

    /// Advance page `p`'s read (mapping) generation, invalidating every
    /// software-TLB entry for it (and for pages sharing its bucket).
    /// Called when the page is invalidated or its contents are replaced
    /// or mutated outside the TLB's view. The test-only
    /// `tlb_break_generation_bumps` config flag turns this into a no-op so
    /// the coherence oracle can be shown to catch the resulting stale
    /// translations.
    #[inline]
    pub(crate) fn bump_page_prot_gen(&self, p: PageId) {
        if self.cfg.tlb_break_generation_bumps {
            return;
        }
        self.data.prot_gen.bump_page(p);
    }

    /// Advance page `p`'s write-permission generation, invalidating only
    /// *writable* software-TLB entries for it. Called when writing is
    /// revoked but the page stays valid and readable — a cached read-only
    /// translation is still exactly right and survives. Gated by the same
    /// fault-injection flag as [`NodeState::bump_page_prot_gen`].
    #[inline]
    pub(crate) fn bump_page_write_prot_gen(&self, p: PageId) {
        if self.cfg.tlb_break_generation_bumps {
            return;
        }
        self.data.prot_gen.bump_page_write(p);
    }

    /// Size the twin pool for a shared segment of `seg_pages` pages: a
    /// segment-wide fault burst (one twin per page) must recycle rather
    /// than allocate, so the cap tracks the segment size, and the pool is
    /// prewarmed so even the first burst hits. The prewarm is bounded two
    /// ways — per node (`TWIN_POOL_PREWARM_MAX`) and cluster-wide
    /// (`TWIN_POOL_PREWARM_BUDGET` split over `n` nodes) — so scaling
    /// the node count does not scale the eagerly committed host memory
    /// with it. The *cap* still tracks the full segment: buffers recycled
    /// after the first burst are kept, so steady-state hits do not depend
    /// on the prewarm bound.
    pub fn size_twin_pool(&mut self, seg_pages: usize) {
        self.data.twin_pool_cap = seg_pages.max(TWIN_POOL_DEFAULT_CAP);
        let share = (TWIN_POOL_PREWARM_BUDGET / self.n.max(1)).max(TWIN_POOL_DEFAULT_CAP);
        let warm = seg_pages.min(TWIN_POOL_PREWARM_MAX).min(share);
        let ps = self.cfg.page_size;
        while self.data.twin_pool.len() < warm {
            self.data.twin_pool.push(vec![0u8; ps].into_boxed_slice());
        }
    }

    /// This node's view of page `p`, created on demand.
    pub fn page_mut(&mut self, p: PageId) -> &mut PageMeta {
        let n = self.n;
        self.data.pages.entry(p).or_insert_with(|| PageMeta::new(n))
    }

    /// Create the diff for a twinned page (lazy diff creation, §5.1).
    /// Returns the modeled cost. Afterwards the page is clean: no twin,
    /// write-protected, out of the dirty set.
    pub(crate) fn create_own_diff(&mut self, p: PageId) -> Dur {
        let node = self.node;
        let mut cost = self.cfg.diff_create_cost();
        let page = self.data.pages.get_mut(&p).expect("diffing unknown page");
        let mut twin = page.twin.take().expect("diffing a page without a twin");
        let data = page.data.as_ref().expect("twinned page must be materialized").slice();
        let timer = host::start();
        let diff = Diff::create(&twin, data);
        host::record_diff_create(timer, 2 * data.len() as u64);
        let ivxs = std::mem::take(&mut page.own_undiffed);
        let written_cur = page.written_cur;
        page.rse_protected = false;
        if written_cur {
            // The diff was requested mid-interval: it already contains the
            // current interval's writes so far, but that interval's write
            // notice does not exist yet. Re-twin immediately so the rest of
            // the current interval stays separable — reusing the buffer of
            // the twin just consumed instead of cloning the page.
            cost += self.cfg.twin_cost();
            let page = self.data.pages.get_mut(&p).unwrap();
            twin.copy_from_slice(page.data.as_ref().unwrap().slice());
            page.twin = Some(twin);
            // stays writable and in the dirty set
        } else {
            pool_recycle(&mut self.data.twin_pool, self.data.twin_pool_cap, twin);
            let page = self.data.pages.get_mut(&p).unwrap();
            page.writable = false;
            self.data.dirty_pages.retain(|&q| q != p);
            self.bump_page_write_prot_gen(p); // write permission revoked, still readable
        }
        let record = Arc::new(DiffRecord { owner: node, covers: ivxs.clone(), diff });
        for ivx in ivxs {
            self.data.diffs.insert((p, node, ivx), Arc::clone(&record));
        }
        cost
    }

    /// Handle a write fault on a *valid* page: create the twin if the page
    /// has none (and, during a replicated section, the §5.3 pre-section
    /// diff first). A page re-protected at an interval close keeps its
    /// twin; the fault only re-enables writing and records the page in the
    /// new interval's write set. Returns the cost to charge.
    pub fn write_fault(&mut self, p: PageId) -> Dur {
        let mut cost = self.cfg.fault_overhead;
        let in_rse = self.rse.active;
        let rse_protected = self.data.pages.get(&p).map(|pg| pg.rse_protected).unwrap_or(false);
        if in_rse && rse_protected {
            // First write to a dirty page inside a replicated section:
            // create the pre-section diff before the page may change
            // (§5.3), then fall through to re-twin.
            cost += self.create_own_diff(p);
        }
        let need_twin = self.data.pages.get(&p).map(|pg| pg.twin.is_none()).unwrap_or(true);
        if need_twin {
            cost += self.cfg.twin_cost();
            self.page_data(p); // materialize before twinning
            let page = self.data.pages.get_mut(&p).unwrap();
            debug_assert!(page.valid, "write fault on an invalid page");
            let twin = pool_take(&mut self.data.twin_pool, page.data.as_ref().unwrap().slice());
            page.twin = Some(twin);
            if !in_rse {
                self.data.dirty_pages.push(p);
            }
        }
        let page = self.data.pages.get_mut(&p).unwrap();
        page.writable = true;
        if in_rse {
            if !page.rse_dirty {
                page.rse_dirty = true;
                self.rse.dirty.push(p);
            }
        } else if !page.written_cur {
            page.written_cur = true;
            self.con.cur_writes.push(p);
        }
        cost
    }

    /// The write notices this node's copy of `p` is missing. The returned
    /// buffer comes from the node's scratch arena — hand it back with
    /// [`NodeState::recycle_notices`] when done (dropping it instead is
    /// only a missed reuse, never an error).
    pub(crate) fn needed_notices(&mut self, p: PageId) -> Vec<(NodeId, u32)> {
        let mut buf = self.scratch.notices.take();
        let page = &*self.page_mut(p);
        buf.extend(page.notices.iter().copied().filter(|&(o, i)| !page.valid_at.covers(o, i)));
        buf
    }

    /// Return a notice buffer from [`NodeState::needed_notices`] to the
    /// scratch arena.
    pub(crate) fn recycle_notices(&mut self, buf: Vec<(NodeId, u32)>) {
        self.scratch.notices.give(buf);
    }

    /// Group the needed notices that are not already in the diff cache by
    /// owner: the requests an ordinary page fault sends (in parallel, to
    /// each last writer).
    pub(crate) fn fetch_plan(&mut self, p: PageId) -> HashMap<NodeId, Vec<u32>> {
        let needed = self.needed_notices(p);
        let mut plan: HashMap<NodeId, Vec<u32>> = HashMap::new();
        for &(owner, ivx) in &needed {
            if !self.data.diffs.contains_key(&(p, owner, ivx)) {
                plan.entry(owner).or_default().push(ivx);
            }
        }
        self.recycle_notices(needed);
        plan
    }

    /// Apply every cached missing diff to the local copy of `p` in a legal
    /// order and mark the page valid. All needed diffs must be cached.
    /// Returns the modeled cost.
    pub(crate) fn apply_cached_diffs(&mut self, p: PageId) -> Dur {
        let needed = self.needed_notices(p);
        // Collect the distinct records behind the needed notices.
        let mut records: Vec<(u64, DiffEntry)> = self.scratch.diff_batch.take();
        for &(owner, ivx) in &needed {
            let rec = self
                .data
                .diffs
                .get(&(p, owner, ivx))
                .unwrap_or_else(|| panic!("diff ({p},{owner},{ivx}) not cached"))
                .clone();
            if records.iter().any(|(_, r)| Arc::ptr_eq(r, &rec)) {
                continue;
            }
            // Sort key: the vector time of the *earliest* covered interval,
            // in a linear extension of happened-before (dominated
            // timestamps have strictly smaller weights). The earliest
            // interval is the right anchor for a merged record: a remote
            // write notice that intervened after one of the covered
            // intervals would have invalidated the writer's page and cut
            // the merge there, so every other diff either precedes the
            // earliest covered interval (and must apply before this record)
            // or is concurrent with all covered intervals (and, in a
            // race-free program, byte-disjoint).
            let key_ivx = rec.covers[0];
            debug_assert!(key_ivx <= self.con.intervals.known(owner));
            let weight = self.con.intervals.get(owner, key_ivx).vc.weight();
            records.push((weight, rec));
        }
        self.recycle_notices(needed);
        records
            .sort_by(|a, b| (a.0, a.1.owner, a.1.covers[0]).cmp(&(b.0, b.1.owner, b.1.covers[0])));
        let mut cost = Dur::ZERO;
        let node = self.node;
        let page_size = self.cfg.page_size;
        let initial = Arc::clone(&self.data.initial);
        let page = self.page_mut(p);
        let data = page.materialize(page_size, initial.get(&p));
        let payload: u64 = records.iter().map(|(_, rec)| rec.diff.payload_bytes()).sum();
        // One fused pass over the page instead of one pass per record;
        // the modeled cost still charges every record's full payload, as
        // a real DSM would copy it.
        let timer = host::start();
        let applied = Diff::apply_fused(records.iter().map(|(_, rec)| &rec.diff), data);
        host::record_diff_apply(timer, payload);
        if let Err(e) = applied {
            // A run outside the page means a corrupted or mis-sized diff.
            // The in-bounds runs were applied; keep the node running on
            // its best-effort copy rather than tearing the cluster down.
            eprintln!("node {node}: page {p}: {e}");
        }
        cost += self.cfg.diff_apply_cost(payload);
        // The copy now reflects everything we know — plus every interval
        // the applied diffs cover, even if we have not yet seen those
        // intervals' records. Recording the full coverage is what prevents
        // the same bytes from being re-applied later under a different
        // interval tag, over newer local writes.
        let mut valid_at = self.con.vc.clone();
        for (_, rec) in &records {
            let o = rec.owner;
            valid_at.set(o, valid_at.get(o).max(rec.max_ivx()));
        }
        let page = self.data.pages.get_mut(&p).unwrap();
        page.valid = true;
        page.valid_at = valid_at;
        self.rse.valid_changed.insert(p);
        // The handler may have applied these diffs while the application
        // process was blocked elsewhere: its TLB must re-check validity.
        self.bump_page_prot_gen(p);
        self.scratch.diff_batch.give(records);
        cost
    }

    /// Serve a diff request for intervals `ivxs` of this node on page `p`:
    /// create the diff lazily if needed and return the entries. This is the
    /// §5.3-critical path: during a replicated section the twin still holds
    /// the pre-section base, so the diff created here contains only
    /// pre-section modifications.
    pub(crate) fn serve_diff_request(&mut self, p: PageId, ivxs: &[u32]) -> (Dur, Vec<DiffEntry>) {
        let node = self.node;
        let mut cost = Dur::ZERO;
        let mut out: Vec<DiffEntry> = Vec::new();
        for &ivx in ivxs {
            if !self.data.diffs.contains_key(&(p, node, ivx)) {
                // Lazy creation: must still have the twin.
                let page = self.data.pages.get(&p);
                assert!(
                    page.map(|pg| pg.twin.is_some()).unwrap_or(false),
                    "node {node}: diff ({p},{ivx}) requested but neither cached nor creatable"
                );
                cost += self.create_own_diff(p);
            }
            let rec = self.data.diffs.get(&(p, node, ivx)).unwrap().clone();
            if !out.iter().any(|r| Arc::ptr_eq(r, &rec)) {
                out.push(rec);
            }
        }
        (cost, out)
    }

    /// Record fetched diffs in the cache, keyed under every interval each
    /// record covers.
    pub(crate) fn cache_diffs(&mut self, p: PageId, entries: &[DiffEntry]) {
        for rec in entries {
            for &ivx in &rec.covers {
                self.data.diffs.entry((p, rec.owner, ivx)).or_insert_with(|| Arc::clone(rec));
            }
        }
    }

    /// True if every needed diff for `p` is cached (the page can be made
    /// valid locally).
    pub(crate) fn can_complete(&mut self, p: PageId) -> bool {
        let needed = self.needed_notices(p);
        let complete =
            needed.iter().all(|&(owner, ivx)| self.data.diffs.contains_key(&(p, owner, ivx)));
        self.recycle_notices(needed);
        complete
    }

    /// The bytes of page `p` as a local read would see them, or `None` if
    /// the local copy is invalid. Read-only: unlike `page_data`, an
    /// untouched page is *not* materialized into the page table — the lazy
    /// initial image is copied out instead — so inspection never perturbs
    /// protocol state.
    pub fn inspect_page(&self, p: PageId) -> Option<Vec<u8>> {
        match self.data.pages.get(&p) {
            Some(pg) if !pg.valid => None,
            Some(pg) => Some(match &pg.data {
                Some(d) => d.slice().to_vec(),
                None => self.initial_image(p),
            }),
            None => Some(self.initial_image(p)),
        }
    }

    fn initial_image(&self, p: PageId) -> Vec<u8> {
        match self.data.initial.get(&p) {
            Some(img) => img.to_vec(),
            None => vec![0u8; self.cfg.page_size],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DsmConfig;
    use crate::interval::IntervalRecord;
    use crate::state::testutil::{fake_write, state};
    use crate::vc::Vc;

    #[test]
    fn own_diff_covers_all_undiffed_intervals() {
        let mut st = state(0, 2);
        fake_write(&mut st, 3, 0, 1);
        st.close_interval();
        // Page stays dirty; second interval re-notices it.
        fake_write(&mut st, 3, 1, 2);
        st.close_interval();
        assert_eq!(st.page_mut(3).own_undiffed, vec![1, 2]);
        st.create_own_diff(3);
        assert!(st.data.diffs.contains_key(&(3, 0, 1)));
        assert!(st.data.diffs.contains_key(&(3, 0, 2)));
        assert!(Arc::ptr_eq(&st.data.diffs[&(3, 0, 1)], &st.data.diffs[&(3, 0, 2)]));
        let page = st.page_mut(3);
        assert!(page.twin.is_none() && !page.writable);
        assert!(st.data.dirty_pages.is_empty());
    }

    #[test]
    fn fetch_plan_groups_missing_by_owner() {
        let mut st = state(2, 3);
        for (owner, ivx) in [(0u32, 1u32), (0, 2), (1, 1)] {
            let mut vcfix = Vc::zero(3);
            vcfix.set(owner as usize, ivx);
            let rec = IntervalRecord::new(owner as usize, ivx, vcfix.clone(), vec![9]);
            st.apply_records(vec![rec], &vcfix);
        }
        // Cache one of them: plan must exclude it.
        st.data.diffs.insert(
            (9, 0, 1),
            Arc::new(DiffRecord { owner: 0, covers: vec![1], diff: Diff::default() }),
        );
        let plan = st.fetch_plan(9);
        assert_eq!(plan[&0], vec![2]);
        assert_eq!(plan[&1], vec![1]);
    }

    #[test]
    fn apply_cached_diffs_orders_by_happened_before() {
        let ps = DsmConfig::default().page_size;
        // Node 0 writes byte 0 = 1 in interval 1, then (after node 1 saw
        // it) node 1 writes byte 0 = 2 in its interval 1. Node 2 must end
        // with 2.
        let mut st = state(2, 3);
        let mut vc01 = Vc::zero(3);
        vc01.set(0, 1);
        let mut vc11 = vc01.clone();
        vc11.set(1, 1); // node 1's interval knows node 0's
        let r0 = IntervalRecord::new(0, 1, vc01.clone(), vec![4]);
        let r1 = IntervalRecord::new(1, 1, vc11.clone(), vec![4]);
        st.apply_records(vec![r0, r1], &vc11);
        // Diffs: node 0 wrote 1, node 1 wrote 2 at the same offset.
        let base = vec![0u8; ps];
        let mut a = base.clone();
        a[0] = 1;
        let mut b = base.clone();
        b[0] = 2;
        st.data.diffs.insert(
            (4, 0, 1),
            Arc::new(DiffRecord { owner: 0, covers: vec![1], diff: Diff::create(&base, &a) }),
        );
        st.data.diffs.insert(
            (4, 1, 1),
            Arc::new(DiffRecord { owner: 1, covers: vec![1], diff: Diff::create(&a, &b) }),
        );
        assert!(st.can_complete(4));
        st.apply_cached_diffs(4);
        let page = st.page_mut(4);
        assert!(page.valid);
        assert_eq!(page.data.as_ref().unwrap().slice()[0], 2);
    }

    #[test]
    fn serve_diff_request_creates_lazily() {
        let mut st = state(0, 2);
        fake_write(&mut st, 5, 8, 77);
        st.close_interval();
        let (cost, entries) = st.serve_diff_request(5, &[1]);
        assert!(cost > Dur::ZERO);
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].owner, 0);
        assert_eq!(entries[0].covers, vec![1]);
        assert_eq!(entries[0].diff.payload_bytes(), 1);
        // Second request hits the cache: free.
        let (cost2, entries2) = st.serve_diff_request(5, &[1]);
        assert_eq!(cost2, Dur::ZERO);
        assert_eq!(entries2.len(), 1);
    }

    #[test]
    fn mid_interval_serve_retwins_written_page() {
        // A diff requested while the page is being written in the current
        // interval: the diff covers the closed intervals, and the page is
        // immediately re-twinned so the open interval stays separable.
        let mut st = state(0, 2);
        fake_write(&mut st, 6, 0, 1);
        st.close_interval();
        fake_write(&mut st, 6, 1, 2); // open interval write
        let (_, entries) = st.serve_diff_request(6, &[1]);
        assert_eq!(entries.len(), 1);
        let page = st.page_mut(6);
        assert!(page.twin.is_some(), "re-twinned");
        assert!(page.writable, "still writable mid-interval");
        // Closing the open interval must still produce a servable diff.
        st.close_interval();
        let (_, entries) = st.serve_diff_request(6, &[2]);
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].covers, vec![2]);
    }
}
