//! Diffs: run-length encodings of the modifications a node made to a page,
//! computed by comparing the page against its *twin* (the copy saved at the
//! first write). The multiple-writer protocol merges concurrent writers by
//! exchanging and applying diffs instead of whole pages (§2.2.2).
//!
//! # Representation
//!
//! A diff is a sorted list of run descriptors plus **one** packed payload
//! buffer behind an [`Arc`]. Cloning a diff — which happens every time a
//! diff is served, cached under another interval key, or multicast —
//! therefore never copies payload bytes: only the two `Arc` handles are
//! duplicated. The descriptors record where in the page and where in the
//! payload each run lives.
//!
//! # Hot path
//!
//! [`Diff::create`] is the simulator's hottest host-side loop: every write
//! fault, interval invalidation, and diff request funnels through it. It
//! compares twin and page in `u64` chunks — skipping equal spans eight
//! bytes per step and extending differing runs eight bytes per step via a
//! zero-byte test on the XOR of the chunks — with a whole-page `==` fast
//! path for the common no-change case and scalar fixup at run boundaries.
//! The observable result is byte-identical to the scalar reference
//! [`Diff::create_scalar`]: runs are maximal spans of differing bytes,
//! sorted, non-overlapping, non-adjacent (proptested below).

use std::sync::Arc;

/// One run of modified bytes within a page: a borrowed view into the
/// diff's shared payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiffRun<'a> {
    /// Byte offset within the page.
    pub offset: u32,
    /// The new bytes.
    pub bytes: &'a [u8],
}

/// Internal run descriptor: `len` bytes at page offset `offset`, stored at
/// `payload_off` in the packed payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Run {
    offset: u32,
    payload_off: u32,
    len: u32,
}

/// A diff run that could not be applied because it falls outside the
/// target page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiffError {
    /// Length of the page the diff was applied to.
    pub page_len: usize,
    /// Number of runs that were skipped.
    pub bad_runs: usize,
    /// `(offset, len)` of the first skipped run.
    pub first_bad: (u32, u32),
}

impl std::fmt::Display for DiffError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} diff run(s) outside a {}-byte page (first: {} bytes at offset {})",
            self.bad_runs, self.page_len, self.first_bad.1, self.first_bad.0
        )
    }
}

impl std::error::Error for DiffError {}

/// The modifications made to one page, as a sorted list of
/// non-overlapping, non-adjacent runs over a shared payload buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diff {
    runs: Arc<[Run]>,
    payload: Arc<[u8]>,
}

impl Default for Diff {
    fn default() -> Self {
        Diff { runs: Arc::new([]), payload: Arc::new([]) }
    }
}

/// Word size of the chunked comparison loops.
const W: usize = std::mem::size_of::<u64>();

#[inline(always)]
fn load(s: &[u8], i: usize) -> u64 {
    u64::from_ne_bytes(s[i..i + W].try_into().unwrap())
}

/// True if any byte of `x` is zero (classic SWAR bit trick).
#[inline(always)]
fn has_zero_byte(x: u64) -> bool {
    x.wrapping_sub(0x0101_0101_0101_0101) & !x & 0x8080_8080_8080_8080 != 0
}

impl Diff {
    /// Compute the diff of `page` against its `twin`. Runs are maximal
    /// spans of differing bytes; adjacent differing bytes coalesce into one
    /// run.
    pub fn create(twin: &[u8], page: &[u8]) -> Diff {
        assert_eq!(twin.len(), page.len(), "twin and page must be the same size");
        // Fast path: the common "twinned but ultimately unchanged" page.
        // Slice equality is a vectorized memcmp under the hood.
        if twin == page {
            return Diff::default();
        }
        let n = page.len();
        let mut runs: Vec<Run> = Vec::new();
        let mut payload: Vec<u8> = Vec::new();
        let mut i = 0usize;
        while i < n {
            // Skip the equal span: whole words, then the word straddling
            // the first difference byte-by-byte.
            while i + W <= n && load(twin, i) == load(page, i) {
                i += W;
            }
            while i < n && twin[i] == page[i] {
                i += 1;
            }
            if i >= n {
                break;
            }
            // Extend the differing run: whole words while all eight bytes
            // differ (the XOR has no zero byte), then byte-by-byte up to
            // the first equal byte.
            let start = i;
            while i + W <= n && !has_zero_byte(load(twin, i) ^ load(page, i)) {
                i += W;
            }
            while i < n && twin[i] != page[i] {
                i += 1;
            }
            runs.push(Run {
                offset: start as u32,
                payload_off: payload.len() as u32,
                len: (i - start) as u32,
            });
            payload.extend_from_slice(&page[start..i]);
        }
        Diff { runs: runs.into(), payload: payload.into() }
    }

    /// The scalar reference implementation of [`Diff::create`]: one byte
    /// at a time. Kept as the equivalence oracle for the chunked path and
    /// as the baseline the perf harness measures speedups against.
    pub fn create_scalar(twin: &[u8], page: &[u8]) -> Diff {
        assert_eq!(twin.len(), page.len(), "twin and page must be the same size");
        let n = page.len();
        let mut runs: Vec<Run> = Vec::new();
        let mut payload: Vec<u8> = Vec::new();
        let mut i = 0;
        while i < n {
            if twin[i] != page[i] {
                let start = i;
                while i < n && twin[i] != page[i] {
                    i += 1;
                }
                runs.push(Run {
                    offset: start as u32,
                    payload_off: payload.len() as u32,
                    len: (i - start) as u32,
                });
                payload.extend_from_slice(&page[start..i]);
            } else {
                i += 1;
            }
        }
        Diff { runs: runs.into(), payload: payload.into() }
    }

    /// Apply the diff to a page copy. Idempotent (runs carry absolute
    /// values), so receiving the same diff twice — which the multicast
    /// recovery path can cause — is harmless.
    ///
    /// A run falling outside `page` (a corrupted or mis-sized diff, e.g.
    /// from the multicast recovery path) is skipped whole — never
    /// partially written — and reported via the returned [`DiffError`];
    /// all in-bounds runs are still applied.
    pub fn apply(&self, page: &mut [u8]) -> Result<(), DiffError> {
        let mut err: Option<DiffError> = None;
        for run in self.runs.iter() {
            let start = run.offset as usize;
            let Some(end) = start.checked_add(run.len as usize) else {
                note_bad(&mut err, page.len(), run);
                continue;
            };
            if end > page.len() {
                note_bad(&mut err, page.len(), run);
                continue;
            }
            let p = run.payload_off as usize;
            page[start..end].copy_from_slice(&self.payload[p..p + run.len as usize]);
        }
        match err {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }

    /// Apply several diffs in order with a single fused pass: each page
    /// byte is written at most once, by the **last** diff in `diffs` that
    /// modifies it — observationally identical to applying the diffs
    /// sequentially (proptested below), but without re-touching bytes
    /// that a later diff overwrites anyway. The win is largest on the
    /// common fault shape where consecutive intervals of an iterative
    /// application rewrote the same regions, so earlier diffs are almost
    /// entirely shadowed.
    ///
    /// Walks the diffs in reverse. The last diff needs no bookkeeping at
    /// all (it always wins), so a single-diff call costs the same as
    /// [`Diff::apply`]; earlier diffs consult a written-byte bitmap, one
    /// `u64` word per 64 page bytes. When the combined payload is small
    /// (a few sparse diffs), the shadowing can save at most a couple of
    /// page copies' worth of work — less than the bitmap costs — so the
    /// diffs are simply applied sequentially. Out-of-bounds runs are
    /// skipped and reported like in [`Diff::apply`].
    pub fn apply_fused<'a, I>(diffs: I, page: &mut [u8]) -> Result<(), DiffError>
    where
        I: IntoIterator<Item = &'a Diff>,
        I::IntoIter: DoubleEndedIterator + Clone,
    {
        let iter = diffs.into_iter();
        let payload: u64 = iter.clone().map(|d| d.payload_bytes()).sum();
        if payload <= 2 * page.len() as u64 {
            let mut err: Option<DiffError> = None;
            for diff in iter {
                merge_err(&mut err, diff.apply(page).err());
            }
            return match err {
                None => Ok(()),
                Some(e) => Err(e),
            };
        }
        let mut rev = iter.rev();
        let Some(last) = rev.next() else { return Ok(()) };
        let mut err = last.apply(page).err();
        // Bitmap of written page bytes plus the count of bytes still
        // unwritten; built lazily on the second diff. When the count hits
        // zero every remaining diff is fully shadowed and the pass ends —
        // the dense iterative case degenerates to one page write total.
        // (Runs of fully-shadowed diffs are not bounds-checked: they
        // contribute no bytes.)
        let mut written: Option<(Vec<u64>, usize)> = None;
        for diff in rev {
            let (bitmap, remaining) = written.get_or_insert_with(|| {
                let mut bm = vec![0u64; page.len().div_ceil(64)];
                mark_runs(&mut bm, last, page.len());
                let marked: u64 = bm.iter().map(|w| w.count_ones() as u64).sum();
                (bm, page.len() - marked as usize)
            });
            if *remaining == 0 {
                break;
            }
            for run in diff.runs.iter() {
                let start = run.offset as usize;
                let Some(end) = start.checked_add(run.len as usize) else {
                    note_bad(&mut err, page.len(), run);
                    continue;
                };
                if end > page.len() {
                    note_bad(&mut err, page.len(), run);
                    continue;
                }
                apply_run_uncovered(page, &diff.payload, run, bitmap, remaining);
            }
        }
        match err {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }

    /// True if the diff carries no modifications.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Number of runs.
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// Total modified bytes.
    pub fn payload_bytes(&self) -> u64 {
        self.payload.len() as u64
    }

    /// Approximate wire size: 8 bytes of header per run plus the payload
    /// (offset + length words, as TreadMarks encodes diffs).
    pub fn wire_size(&self) -> u64 {
        8 + self.runs.len() as u64 * 8 + self.payload.len() as u64
    }

    /// The runs, for inspection.
    pub fn runs(&self) -> Vec<DiffRun<'_>> {
        self.iter_runs().collect()
    }

    /// Iterate the runs without materializing a `Vec`.
    pub fn iter_runs(&self) -> impl Iterator<Item = DiffRun<'_>> {
        self.runs.iter().map(|r| DiffRun {
            offset: r.offset,
            bytes: &self.payload[r.payload_off as usize..(r.payload_off + r.len) as usize],
        })
    }
}

fn note_bad(err: &mut Option<DiffError>, page_len: usize, run: &Run) {
    match err {
        Some(e) => e.bad_runs += 1,
        None => *err = Some(DiffError { page_len, bad_runs: 1, first_bad: (run.offset, run.len) }),
    }
}

/// Fold a later error into the accumulated one (first bad run wins the
/// `first_bad` slot, counts add up).
fn merge_err(err: &mut Option<DiffError>, new: Option<DiffError>) {
    match (err.as_mut(), new) {
        (Some(e), Some(n)) => e.bad_runs += n.bad_runs,
        (None, Some(n)) => *err = Some(n),
        _ => {}
    }
}

/// Set the written bits for every in-bounds run of `diff`.
fn mark_runs(bm: &mut [u64], diff: &Diff, page_len: usize) {
    for run in diff.runs.iter() {
        let start = run.offset as usize;
        let Some(end) = start.checked_add(run.len as usize) else { continue };
        if end > page_len {
            continue; // the run was skipped, not written
        }
        let (mut i, end) = (start, end);
        while i < end {
            let w = i / 64;
            let hi = end.min((w + 1) * 64);
            bm[w] |= word_mask(i % 64, hi - i);
            i = hi;
        }
    }
}

/// The bitmap word mask covering `n_bits` bits starting at `lo_bit`.
#[inline(always)]
fn word_mask(lo_bit: usize, n_bits: usize) -> u64 {
    if n_bits == 64 {
        !0
    } else {
        ((1u64 << n_bits) - 1) << lo_bit
    }
}

/// Copy the bytes of an (in-bounds) `run` whose bits in `bitmap` are still
/// clear into `page`, set them, and decrement `remaining` by the bytes
/// newly written. Works one bitmap word (64 page bytes) at a time:
/// fully-unwritten segments take one `copy_from_slice`, fully-written
/// segments are skipped, mixed words go bit by bit.
fn apply_run_uncovered(
    page: &mut [u8],
    payload: &[u8],
    run: &Run,
    bitmap: &mut [u64],
    remaining: &mut usize,
) {
    let start = run.offset as usize;
    let end = start + run.len as usize;
    let base = run.payload_off as usize;
    let mut i = start;
    while i < end {
        let w = i / 64;
        let hi = end.min((w + 1) * 64);
        let mask = word_mask(i % 64, hi - i);
        let unwritten = mask & !bitmap[w];
        if unwritten == mask {
            page[i..hi].copy_from_slice(&payload[base + (i - start)..base + (hi - start)]);
        } else if unwritten != 0 {
            let mut bits = unwritten;
            while bits != 0 {
                let idx = w * 64 + bits.trailing_zeros() as usize;
                page[idx] = payload[base + (idx - start)];
                bits &= bits - 1;
            }
        }
        bitmap[w] |= mask;
        *remaining -= unwritten.count_ones() as usize;
        i = hi;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page_of(n: usize, f: impl Fn(usize) -> u8) -> Vec<u8> {
        (0..n).map(f).collect()
    }

    #[test]
    fn identical_pages_give_empty_diff() {
        let twin = page_of(128, |i| i as u8);
        let d = Diff::create(&twin, &twin);
        assert!(d.is_empty());
        assert_eq!(d.payload_bytes(), 0);
    }

    #[test]
    fn single_byte_change() {
        let twin = vec![0u8; 64];
        let mut page = twin.clone();
        page[17] = 9;
        let d = Diff::create(&twin, &page);
        assert_eq!(d.run_count(), 1);
        assert_eq!(d.runs()[0].offset, 17);
        assert_eq!(d.runs()[0].bytes, &[9]);
        let mut fresh = twin.clone();
        d.apply(&mut fresh).unwrap();
        assert_eq!(fresh, page);
    }

    #[test]
    fn adjacent_changes_coalesce() {
        let twin = vec![0u8; 64];
        let mut page = twin.clone();
        page[10..20].fill(1);
        let d = Diff::create(&twin, &page);
        assert_eq!(d.run_count(), 1);
        assert_eq!(d.payload_bytes(), 10);
    }

    #[test]
    fn disjoint_changes_make_separate_runs() {
        let twin = vec![0u8; 64];
        let mut page = twin.clone();
        page[0] = 1;
        page[5] = 2;
        page[63] = 3;
        let d = Diff::create(&twin, &page);
        assert_eq!(d.run_count(), 3);
    }

    #[test]
    fn cloning_shares_the_payload() {
        let twin = vec![0u8; 256];
        let mut page = twin.clone();
        page[10..200].fill(3);
        let d = Diff::create(&twin, &page);
        let d2 = d.clone();
        // Zero-copy: both handles point at the same payload allocation.
        assert!(Arc::ptr_eq(&d.payload, &d2.payload));
        assert!(Arc::ptr_eq(&d.runs, &d2.runs));
        assert_eq!(d, d2);
    }

    #[test]
    fn runs_straddle_chunk_boundaries() {
        // Every (start, len) near u64/u128 chunk boundaries on a page
        // whose size is not a multiple of the chunk width.
        let n = 81;
        let twin = page_of(n, |i| i as u8);
        for start in 0..24 {
            for len in 1..=(n - start).min(40) {
                let mut page = twin.clone();
                for b in &mut page[start..start + len] {
                    *b ^= 0xFF; // guaranteed different
                }
                let d = Diff::create(&twin, &page);
                assert_eq!(d.run_count(), 1, "start={start} len={len}");
                assert_eq!(d.runs()[0].offset as usize, start);
                assert_eq!(d.runs()[0].bytes.len(), len);
                let mut rebuilt = twin.clone();
                d.apply(&mut rebuilt).unwrap();
                assert_eq!(rebuilt, page, "start={start} len={len}");
            }
        }
    }

    #[test]
    fn concurrent_disjoint_diffs_merge() {
        // The multiple-writer protocol: two nodes modify different parts of
        // the same page; applying both diffs to a third copy merges them.
        let base = vec![0u8; 256];
        let mut a = base.clone();
        let mut b = base.clone();
        a[..32].copy_from_slice(&[1; 32]);
        b[200..220].copy_from_slice(&[2; 20]);
        let da = Diff::create(&base, &a);
        let db = Diff::create(&base, &b);
        let mut merged = base.clone();
        da.apply(&mut merged).unwrap();
        db.apply(&mut merged).unwrap();
        assert_eq!(&merged[..32], &[1; 32]);
        assert_eq!(&merged[200..220], &[2; 20]);
        assert!(merged[32..200].iter().all(|&x| x == 0));
    }

    #[test]
    fn apply_is_idempotent() {
        let twin = page_of(128, |i| (i * 7) as u8);
        let mut page = twin.clone();
        page[3] = 0;
        page[90] = 0;
        let d = Diff::create(&twin, &page);
        let mut copy = twin.clone();
        d.apply(&mut copy).unwrap();
        d.apply(&mut copy).unwrap();
        assert_eq!(copy, page);
    }

    #[test]
    fn out_of_bounds_run_is_skipped_not_fatal() {
        // Diff made from 128-byte pages, applied to a 64-byte page: the
        // in-bounds run lands, the out-of-bounds one is skipped whole and
        // reported.
        let twin = vec![0u8; 128];
        let mut page = twin.clone();
        page[3] = 7; // in bounds of the small page
        page[100] = 9; // out of bounds
        page[60..70].fill(5); // straddles the end: skipped whole
        let d = Diff::create(&twin, &page);
        assert_eq!(d.run_count(), 3);
        let mut small = vec![0u8; 64];
        let err = d.apply(&mut small).unwrap_err();
        assert_eq!(err.page_len, 64);
        assert_eq!(err.bad_runs, 2);
        assert_eq!(err.first_bad, (60, 10));
        assert_eq!(small[3], 7);
        assert!(small[4..].iter().all(|&b| b == 0), "no partial writes");
        // Fused apply reports the same.
        let mut small = vec![0u8; 64];
        let err = Diff::apply_fused([&d], &mut small).unwrap_err();
        assert_eq!(err.bad_runs, 2);
        assert_eq!(small[3], 7);
    }

    #[test]
    fn fused_apply_last_writer_wins() {
        let base = vec![0u8; 32];
        let mut v1 = base.clone();
        v1[4..20].fill(1);
        let mut v2 = base.clone();
        v2[0..10].fill(2);
        let d1 = Diff::create(&base, &v1);
        let d2 = Diff::create(&base, &v2);
        // Sequential order d1 then d2: d2 wins on [0,10).
        let mut fused = base.clone();
        Diff::apply_fused([&d1, &d2], &mut fused).unwrap();
        let mut seq = base.clone();
        d1.apply(&mut seq).unwrap();
        d2.apply(&mut seq).unwrap();
        assert_eq!(fused, seq);
        assert_eq!(&fused[0..10], &[2; 10]);
        assert_eq!(&fused[10..20], &[1; 10]);
    }

    #[test]
    fn wire_size_reflects_runs_and_payload() {
        let twin = vec![0u8; 64];
        let mut page = twin.clone();
        page[1] = 1;
        page[40] = 1;
        let d = Diff::create(&twin, &page);
        assert_eq!(d.wire_size(), 8 + 2 * (8 + 1));
    }

    #[test]
    fn word_mask_covers_ranges() {
        assert_eq!(word_mask(0, 64), !0);
        assert_eq!(word_mask(0, 1), 1);
        assert_eq!(word_mask(63, 1), 1 << 63);
        assert_eq!(word_mask(4, 3), 0b111 << 4);
    }

    #[test]
    fn fused_apply_crosses_bitmap_words() {
        // Runs straddling the 64-byte bitmap-word boundary, partially
        // shadowed by a later diff.
        let base = vec![0u8; 200];
        let mut v1 = base.clone();
        v1[30..170].fill(1); // spans words 0..3
        let mut v2 = base.clone();
        v2[60..70].fill(2); // straddles the word 0/1 boundary
        let d1 = Diff::create(&base, &v1);
        let d2 = Diff::create(&base, &v2);
        let mut fused = base.clone();
        Diff::apply_fused([&d1, &d2], &mut fused).unwrap();
        let mut seq = base.clone();
        d1.apply(&mut seq).unwrap();
        d2.apply(&mut seq).unwrap();
        assert_eq!(fused, seq);
        assert_eq!(&fused[60..70], &[2; 10]);
        assert_eq!(&fused[30..60], &[1; 30]);
        assert_eq!(&fused[70..170], &[1; 100]);
    }

    proptest::proptest! {
        /// create→apply reconstructs the modified page from the twin.
        #[test]
        fn prop_roundtrip(twin in proptest::collection::vec(0u8..4, 1..512),
                          edits in proptest::collection::vec((0usize..512, 0u8..4), 0..64)) {
            let mut page = twin.clone();
            for (pos, val) in edits {
                let pos = pos % page.len();
                page[pos] = val;
            }
            let d = Diff::create(&twin, &page);
            let mut rebuilt = twin.clone();
            d.apply(&mut rebuilt).unwrap();
            proptest::prop_assert_eq!(rebuilt, page);
        }

        /// Runs are sorted, non-overlapping, non-adjacent, and cover exactly
        /// the differing bytes.
        #[test]
        fn prop_runs_canonical(twin in proptest::collection::vec(0u8..4, 1..256),
                               page in proptest::collection::vec(0u8..4, 1..256)) {
            let n = twin.len().min(page.len());
            let (twin, page) = (&twin[..n], &page[..n]);
            let d = Diff::create(twin, page);
            let mut prev_end: Option<usize> = None;
            let mut covered = vec![false; n];
            for run in d.runs() {
                let start = run.offset as usize;
                proptest::prop_assert!(!run.bytes.is_empty());
                if let Some(pe) = prev_end {
                    proptest::prop_assert!(start > pe, "runs must not touch");
                }
                for (k, &b) in run.bytes.iter().enumerate() {
                    covered[start + k] = true;
                    proptest::prop_assert_eq!(b, page[start + k]);
                }
                prev_end = Some(start + run.bytes.len());
            }
            for i in 0..n {
                proptest::prop_assert_eq!(covered[i], twin[i] != page[i], "byte {} coverage", i);
            }
        }

        /// The chunked path is byte-identical to the scalar reference, in
        /// particular on page sizes that are not multiples of 8/16 and on
        /// runs straddering chunk boundaries (sizes 1..=300 cover every
        /// residue mod 8 and 16).
        #[test]
        fn prop_chunked_equals_scalar(twin in proptest::collection::vec(0u8..4, 1..300),
                                      page in proptest::collection::vec(0u8..4, 1..300)) {
            let n = twin.len().min(page.len());
            let (twin, page) = (&twin[..n], &page[..n]);
            let fast = Diff::create(twin, page);
            let scalar = Diff::create_scalar(twin, page);
            proptest::prop_assert_eq!(fast, scalar);
        }

        /// Fused multi-diff apply is equivalent to applying the same diffs
        /// sequentially, including overlapping runs (last writer wins).
        #[test]
        fn prop_fused_equals_sequential(
            base in proptest::collection::vec(0u8..4, 1..200),
            steps in proptest::collection::vec(
                proptest::collection::vec((0usize..200, 0u8..4), 0..16), 0..6),
        ) {
            // Build a chain of page versions; diff k is version k vs k+1,
            // so consecutive diffs overlap freely.
            let mut diffs = Vec::new();
            let mut cur = base.clone();
            for step in steps {
                let mut next = cur.clone();
                for (pos, val) in step {
                    let pos = pos % next.len();
                    next[pos] = val;
                }
                diffs.push(Diff::create(&cur, &next));
                cur = next;
            }
            let mut seq = base.clone();
            for d in &diffs {
                d.apply(&mut seq).unwrap();
            }
            let mut fused = base.clone();
            Diff::apply_fused(diffs.iter(), &mut fused).unwrap();
            proptest::prop_assert_eq!(&fused, &seq);
            proptest::prop_assert_eq!(&fused, &cur, "chain must reconstruct the last version");
        }
    }
}
