//! Diffs: run-length encodings of the modifications a node made to a page,
//! computed by comparing the page against its *twin* (the copy saved at the
//! first write). The multiple-writer protocol merges concurrent writers by
//! exchanging and applying diffs instead of whole pages (§2.2.2).

/// One run of modified bytes within a page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiffRun {
    /// Byte offset within the page.
    pub offset: u32,
    /// The new bytes.
    pub bytes: Vec<u8>,
}

/// The modifications made to one page, as a sorted list of
/// non-overlapping, non-adjacent runs.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Diff {
    runs: Vec<DiffRun>,
}

impl Diff {
    /// Compute the diff of `page` against its `twin`. Runs are maximal
    /// spans of differing bytes; adjacent differing bytes coalesce into one
    /// run.
    pub fn create(twin: &[u8], page: &[u8]) -> Diff {
        assert_eq!(twin.len(), page.len(), "twin and page must be the same size");
        let mut runs = Vec::new();
        let mut i = 0;
        let n = page.len();
        while i < n {
            if twin[i] != page[i] {
                let start = i;
                while i < n && twin[i] != page[i] {
                    i += 1;
                }
                runs.push(DiffRun { offset: start as u32, bytes: page[start..i].to_vec() });
            } else {
                i += 1;
            }
        }
        Diff { runs }
    }

    /// Apply the diff to a page copy. Idempotent (runs carry absolute
    /// values), so receiving the same diff twice — which the multicast
    /// recovery path can cause — is harmless.
    pub fn apply(&self, page: &mut [u8]) {
        for run in &self.runs {
            let start = run.offset as usize;
            let end = start + run.bytes.len();
            assert!(end <= page.len(), "diff run outside page");
            page[start..end].copy_from_slice(&run.bytes);
        }
    }

    /// True if the diff carries no modifications.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Number of runs.
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// Total modified bytes.
    pub fn payload_bytes(&self) -> u64 {
        self.runs.iter().map(|r| r.bytes.len() as u64).sum()
    }

    /// Approximate wire size: 8 bytes of header per run plus the payload
    /// (offset + length words, as TreadMarks encodes diffs).
    pub fn wire_size(&self) -> u64 {
        8 + self.runs.iter().map(|r| 8 + r.bytes.len() as u64).sum::<u64>()
    }

    /// The runs, for inspection.
    pub fn runs(&self) -> &[DiffRun] {
        &self.runs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page_of(n: usize, f: impl Fn(usize) -> u8) -> Vec<u8> {
        (0..n).map(f).collect()
    }

    #[test]
    fn identical_pages_give_empty_diff() {
        let twin = page_of(128, |i| i as u8);
        let d = Diff::create(&twin, &twin);
        assert!(d.is_empty());
        assert_eq!(d.payload_bytes(), 0);
    }

    #[test]
    fn single_byte_change() {
        let twin = vec![0u8; 64];
        let mut page = twin.clone();
        page[17] = 9;
        let d = Diff::create(&twin, &page);
        assert_eq!(d.run_count(), 1);
        assert_eq!(d.runs()[0].offset, 17);
        assert_eq!(d.runs()[0].bytes, vec![9]);
        let mut fresh = twin.clone();
        d.apply(&mut fresh);
        assert_eq!(fresh, page);
    }

    #[test]
    fn adjacent_changes_coalesce() {
        let twin = vec![0u8; 64];
        let mut page = twin.clone();
        page[10..20].fill(1);
        let d = Diff::create(&twin, &page);
        assert_eq!(d.run_count(), 1);
        assert_eq!(d.payload_bytes(), 10);
    }

    #[test]
    fn disjoint_changes_make_separate_runs() {
        let twin = vec![0u8; 64];
        let mut page = twin.clone();
        page[0] = 1;
        page[5] = 2;
        page[63] = 3;
        let d = Diff::create(&twin, &page);
        assert_eq!(d.run_count(), 3);
    }

    #[test]
    fn concurrent_disjoint_diffs_merge() {
        // The multiple-writer protocol: two nodes modify different parts of
        // the same page; applying both diffs to a third copy merges them.
        let base = vec![0u8; 256];
        let mut a = base.clone();
        let mut b = base.clone();
        a[..32].copy_from_slice(&[1; 32]);
        b[200..220].copy_from_slice(&[2; 20]);
        let da = Diff::create(&base, &a);
        let db = Diff::create(&base, &b);
        let mut merged = base.clone();
        da.apply(&mut merged);
        db.apply(&mut merged);
        assert_eq!(&merged[..32], &[1; 32]);
        assert_eq!(&merged[200..220], &[2; 20]);
        assert!(merged[32..200].iter().all(|&x| x == 0));
    }

    #[test]
    fn apply_is_idempotent() {
        let twin = page_of(128, |i| (i * 7) as u8);
        let mut page = twin.clone();
        page[3] = 0;
        page[90] = 0;
        let d = Diff::create(&twin, &page);
        let mut copy = twin.clone();
        d.apply(&mut copy);
        d.apply(&mut copy);
        assert_eq!(copy, page);
    }

    #[test]
    fn wire_size_reflects_runs_and_payload() {
        let twin = vec![0u8; 64];
        let mut page = twin.clone();
        page[1] = 1;
        page[40] = 1;
        let d = Diff::create(&twin, &page);
        assert_eq!(d.wire_size(), 8 + 2 * (8 + 1));
    }

    proptest::proptest! {
        /// create→apply reconstructs the modified page from the twin.
        #[test]
        fn prop_roundtrip(twin in proptest::collection::vec(0u8..4, 1..512),
                          edits in proptest::collection::vec((0usize..512, 0u8..4), 0..64)) {
            let mut page = twin.clone();
            for (pos, val) in edits {
                let pos = pos % page.len();
                page[pos] = val;
            }
            let d = Diff::create(&twin, &page);
            let mut rebuilt = twin.clone();
            d.apply(&mut rebuilt);
            proptest::prop_assert_eq!(rebuilt, page);
        }

        /// Runs are sorted, non-overlapping, non-adjacent, and cover exactly
        /// the differing bytes.
        #[test]
        fn prop_runs_canonical(twin in proptest::collection::vec(0u8..4, 1..256),
                               page in proptest::collection::vec(0u8..4, 1..256)) {
            let n = twin.len().min(page.len());
            let (twin, page) = (&twin[..n], &page[..n]);
            let d = Diff::create(twin, page);
            let mut prev_end: Option<usize> = None;
            let mut covered = vec![false; n];
            for run in d.runs() {
                let start = run.offset as usize;
                proptest::prop_assert!(!run.bytes.is_empty());
                if let Some(pe) = prev_end {
                    proptest::prop_assert!(start > pe, "runs must not touch");
                }
                for (k, &b) in run.bytes.iter().enumerate() {
                    covered[start + k] = true;
                    proptest::prop_assert_eq!(b, page[start + k]);
                }
                prev_end = Some(start + run.bytes.len());
            }
            for i in 0..n {
                proptest::prop_assert_eq!(covered[i], twin[i] != page[i], "byte {} coverage", i);
            }
        }
    }
}
