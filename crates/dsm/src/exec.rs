//! The execution layer: fork/join plumbing (Tmk_fork / Tmk_join), the
//! slave scheduler loop, parallel sections, and the hand-inserted page
//! broadcast used by the `MasterOnlyBroadcast` ablation and the
//! `MasterPush` strategy.

use std::sync::Arc;

use repseq_sim::{Dur, Stopped};
use repseq_stats::MsgClass;

use crate::interval::{IntervalRecord, PageId};
use crate::msg::{DsmMsg, TaskPayload};
use crate::race::SyncEdge;
use crate::runtime::DsmNode;
use crate::vc::Vc;

/// Fork/join bookkeeping (master side, plus what each node knows the
/// master knows).
pub(crate) struct ExecState {
    /// Master: last known vector time of each node, from joins.
    pub(crate) peer_vcs: Vec<Vc>,
    /// What the master/barrier manager is known to know (from the last
    /// fork or barrier departure); arrivals and joins send only records
    /// beyond this.
    pub(crate) master_known: Vc,
    /// Joins that arrived while the master was blocked on something else
    /// (e.g. its own page fault); consumed by `wait_joins`.
    pub(crate) pending_joins: Vec<(usize, Vc, Vec<IntervalRecord>)>,
    /// SeqDone signals that arrived early, likewise.
    pub(crate) pending_seqdone: usize,
}

impl ExecState {
    pub(crate) fn new(n: usize) -> ExecState {
        ExecState {
            peer_vcs: vec![Vc::zero(n); n],
            master_known: Vc::zero(n),
            pending_joins: Vec::new(),
            pending_seqdone: 0,
        }
    }
}

/// What a parked slave observed (see [`DsmNode::wait_fork`]).
pub enum ParkEvent {
    /// A fork: run this task. `replicated` marks a replicated sequential
    /// section.
    Task { task: TaskPayload, replicated: bool },
}

/// A task function shipped at a fork — the analogue of the
/// compiler-generated parallel-region subroutine whose pointer TreadMarks
/// passes to the slaves (§2.3).
pub type TaskFn = dyn Fn(&DsmNode) -> Result<(), Stopped> + Send + Sync;

/// The canonical fork payload used by [`DsmNode::slave_loop`] and the
/// runtime layer.
pub enum Task {
    /// Execute this function.
    Run(Arc<TaskFn>),
    /// Terminate the slave's scheduler loop (end of program).
    Shutdown,
}

impl Task {
    /// Wrap a function as a fork payload.
    pub fn run(f: impl Fn(&DsmNode) -> Result<(), Stopped> + Send + Sync + 'static) -> TaskPayload {
        Arc::new(Task::Run(Arc::new(f)))
    }

    /// The shutdown payload.
    pub fn shutdown() -> TaskPayload {
        Arc::new(Task::Shutdown)
    }
}

impl DsmNode {
    /// Absorb messages that can legally arrive while an application process
    /// is blocked on something else: early joins and SeqDone signals from
    /// fast slaves (buffered for `wait_joins` / `end_replicated_master`)
    /// and stale page wakeups. Returns true if the message was absorbed.
    pub(crate) fn absorb_stray(&self, msg: DsmMsg) -> bool {
        match msg {
            DsmMsg::Join { from, vc, records } => {
                self.st.lock().exec.pending_joins.push((from, vc, records));
                true
            }
            DsmMsg::SeqDone { .. } => {
                self.st.lock().exec.pending_seqdone += 1;
                true
            }
            DsmMsg::WakePage { .. } => true,
            // A duplicate reply from the resend layer whose original won
            // the race: only fetch loops consume replies (matched by
            // req_id), so outside one a reply is always stale.
            DsmMsg::DiffReply { .. } => {
                self.topo.stats.on_stale_reply(self.node());
                true
            }
            _ => false,
        }
    }

    /// Master: fork `task` to every slave, shipping each the interval
    /// records it lacks. `replicated` marks a replicated sequential section
    /// (the slaves will run the task with replication semantics).
    pub fn fork_slaves(&self, task: TaskPayload, replicated: bool) -> Result<(), Stopped> {
        assert!(self.is_master(), "only the master forks");
        let n = self.topo.n;
        self.race_sync(SyncEdge::ForkSend);
        self.st.lock().close_interval();
        for s in 1..n {
            let msg = {
                let mut st = self.st.lock();
                let records = st.con.intervals.records_unknown_to(&st.exec.peer_vcs[s]);
                let vc = st.con.vc.clone();
                st.exec.peer_vcs[s] = vc.clone();
                DsmMsg::Fork { records, vc, task: Arc::clone(&task), replicated }
            };
            let size = msg.wire_size();
            self.nic.unicast(&self.ctx, s, self.topo.app_pids[s], MsgClass::Sync, size, msg);
        }
        self.ctx.charge(self.sync_cost());
        Ok(())
    }

    /// Slave: park until the master forks a task. Valid-notice requests and
    /// tables (the exchange preceding a replicated section) are answered
    /// transparently while parked.
    pub fn wait_fork(&self) -> Result<ParkEvent, Stopped> {
        let node = self.node();
        loop {
            let env = self.ctx.recv()?;
            match env.msg {
                DsmMsg::Fork { records, vc, task, replicated } => {
                    let cost = {
                        let mut st = self.st.lock();
                        let c = st.apply_records(records, &vc);
                        st.exec.master_known = vc;
                        c
                    };
                    self.ctx.charge(cost + self.sync_cost());
                    self.race_sync(SyncEdge::ForkRecv);
                    return Ok(ParkEvent::Task { task, replicated });
                }
                DsmMsg::ValidNoticeRequest { reply_to } => {
                    let msg = {
                        let mut st = self.st.lock();
                        DsmMsg::ValidNoticeReply { from: node, delta: st.take_valid_delta() }
                    };
                    let size = msg.wire_size();
                    self.ctx.charge(self.sync_cost());
                    self.nic.unicast(&self.ctx, 0, reply_to, MsgClass::ValidNotice, size, msg);
                }
                DsmMsg::ValidNoticeTable { deltas } => {
                    self.st.lock().merge_valid_deltas(&deltas);
                    self.ctx.charge(self.sync_cost());
                }
                DsmMsg::WakePage { .. } | DsmMsg::DiffReply { .. } => {}
                other => panic!("node {node}: unexpected {} while parked", other.kind()),
            }
        }
    }

    /// Slave: signal completion of the forked task to the master, shipping
    /// the interval records the master lacks.
    pub fn join_master(&self) -> Result<(), Stopped> {
        assert!(!self.is_master());
        let node = self.node();
        self.race_sync(SyncEdge::JoinSend);
        let msg = {
            let mut st = self.st.lock();
            st.close_interval();
            let records = st.con.intervals.records_unknown_to(&st.exec.master_known);
            DsmMsg::Join { from: node, vc: st.con.vc.clone(), records }
        };
        self.ctx.charge(self.sync_cost());
        let size = msg.wire_size();
        self.nic.unicast(&self.ctx, 0, self.topo.app_pids[0], MsgClass::Sync, size, msg);
        Ok(())
    }

    /// Master: wait for every slave's join and merge their consistency
    /// information. Joins that arrived while the master was blocked
    /// elsewhere (buffered by `absorb_stray`) are consumed first.
    pub fn wait_joins(&self) -> Result<(), Stopped> {
        assert!(self.is_master());
        let mut pending = self.topo.n - 1;
        {
            let mut st = self.st.lock();
            st.close_interval();
            let buffered = std::mem::take(&mut st.exec.pending_joins);
            drop(st);
            for (from, vc, records) in buffered {
                let cost = {
                    let mut st = self.st.lock();
                    let c = st.apply_records(records, &vc);
                    st.exec.peer_vcs[from] = vc;
                    c
                };
                self.ctx.charge(cost + self.sync_cost());
                self.race_sync(SyncEdge::JoinRecv { from });
                pending -= 1;
            }
        }
        while pending > 0 {
            let env = self.ctx.recv()?;
            match env.msg {
                DsmMsg::Join { from, vc, records } => {
                    let cost = {
                        let mut st = self.st.lock();
                        let c = st.apply_records(records, &vc);
                        st.exec.peer_vcs[from] = vc;
                        c
                    };
                    self.ctx.charge(cost + self.sync_cost());
                    self.race_sync(SyncEdge::JoinRecv { from });
                    pending -= 1;
                }
                // Stale wakeups, and duplicate replies from the resend
                // layer whose originals won the race (the fetch they
                // answered already completed), drift into any later
                // receive loop at large node counts.
                DsmMsg::WakePage { .. } | DsmMsg::DiffReply { .. } => {}
                other => panic!("master: unexpected {} while joining", other.kind()),
            }
        }
        Ok(())
    }

    pub(crate) fn sync_cost(&self) -> Dur {
        self.st.lock().cfg.sync_overhead
    }

    // ---------------------------------------------------------------
    // High-level Tmk-style section helpers
    // ---------------------------------------------------------------

    /// Slave scheduler loop: park, run forked tasks (replicated sections
    /// with replication semantics), join, repeat — until the master ships
    /// [`Task::Shutdown`]. This is the whole life of a TreadMarks slave
    /// (§2.2.1).
    pub fn slave_loop(&self) -> Result<(), Stopped> {
        assert!(!self.is_master());
        loop {
            let ParkEvent::Task { task, replicated } = self.wait_fork()?;
            let task = task.downcast_ref::<Task>().expect("unknown fork payload type");
            match task {
                Task::Shutdown => return Ok(()),
                Task::Run(f) => {
                    if replicated {
                        self.enter_replicated();
                        f(self)?;
                        self.end_replicated_slave()?;
                    } else {
                        f(self)?;
                        self.join_master()?;
                    }
                }
            }
        }
    }

    /// Master: run `f` as a parallel section on every node (fork, execute
    /// the master's share, join).
    pub fn run_parallel(
        &self,
        f: impl Fn(&DsmNode) -> Result<(), Stopped> + Send + Sync + 'static,
    ) -> Result<(), Stopped> {
        assert!(self.is_master());
        let task = Task::run(f);
        let body = match task.downcast_ref::<Task>().unwrap() {
            Task::Run(f) => Arc::clone(f),
            Task::Shutdown => unreachable!(),
        };
        self.fork_slaves(task, false)?;
        body(self)?;
        self.wait_joins()
    }

    /// Master: terminate every slave's scheduler loop (end of program).
    pub fn shutdown_slaves(&self) -> Result<(), Stopped> {
        self.fork_slaves(Task::shutdown(), false)
    }

    /// Master: multicast the current contents of `pages` to every node (the
    /// hand-inserted broadcast of §6.1.2 — used to isolate contention
    /// elimination from the benefit of replicating the sequential
    /// computation). Closes the current interval first so receivers' copies
    /// cover the just-finished sequential section's write notices and are
    /// not re-invalidated at the following fork.
    pub fn broadcast_pages(&self, pages: impl IntoIterator<Item = PageId>) -> Result<(), Stopped> {
        assert!(self.is_master(), "only the master broadcasts");
        self.st.lock().close_interval();
        let mut last_delivery = self.ctx.now();
        let mut sent = 0u64;
        for p in pages {
            let msg = {
                let mut st = self.st.lock();
                // Only pages we hold a complete, valid copy of are worth
                // broadcasting (the tree pages after a sequential build).
                let valid = st.page_mut(p).valid;
                if !valid {
                    continue;
                }
                // The broadcast re-baselines every receiver's copy at the
                // just-closed interval, so our lazy-diff baseline must move
                // there too: flush any still-twinned writes into their diff
                // now. Otherwise a later diff would be taken against the
                // pre-broadcast twin, and bytes that happen to match that
                // older baseline would be omitted — wrong for a receiver
                // whose base is the broadcast image, not the twin.
                if st.page_mut(p).twin.is_some() {
                    let cost = st.create_own_diff(p);
                    drop(st);
                    self.ctx.charge(cost);
                    st = self.st.lock();
                }
                let data: Arc<[u8]> = st.page_data(p).to_vec().into();
                DsmMsg::PageBroadcast { page: p, data, vc: st.con.vc.clone() }
            };
            let size = msg.wire_size();
            let dsts: Vec<_> = self
                .topo
                .all_handlers()
                .into_iter()
                .filter(|&(node, _)| node != self.node())
                .collect();
            let at = self.nic.multicast(&self.ctx, &dsts, MsgClass::Broadcast, size, msg);
            last_delivery = last_delivery.max(at);
            sent += 1;
        }
        // Block until the broadcast has drained (the hub and the switch
        // are independent media; without this the following fork's records
        // would overtake the data and re-invalidate it at the receivers).
        let service = self.st.lock().cfg.service_overhead;
        let resume_at = last_delivery + service * (sent + 1);
        let now = self.ctx.now();
        if resume_at > now {
            self.ctx.sleep(resume_at - now)?;
        }
        Ok(())
    }

    /// The page span of an address range (helper for `broadcast_pages`).
    pub fn pages_of_range(&self, start_addr: u64, bytes: u64) -> std::ops::RangeInclusive<PageId> {
        let ps = self.page_size as u64;
        let first = (start_addr / ps) as PageId;
        let last = ((start_addr + bytes.max(1) - 1) / ps) as PageId;
        first..=last
    }
}
