//! Cluster construction: allocate and preload the shared heap, then launch
//! one application process and one protocol-handler process per node.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use repseq_net::{NetConfig, Network};
use repseq_sim::{Sim, SimError, SimReport, Stopped};
use repseq_stats::StatsRef;

use crate::config::DsmConfig;
use crate::handler::handler_main;
use crate::interval::PageId;
use crate::msg::DsmMsg;
use crate::pod::Pod;
use crate::race::RaceSink;
use crate::runtime::{DsmNode, Topology};
use crate::shmem::{ShArray, ShVar};
use crate::state::NodeState;
use crate::strategy::RseProbe;

/// Everything needed to build a simulated DSM cluster.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// DSM protocol parameters.
    pub dsm: DsmConfig,
    /// Interconnect parameters.
    pub net: NetConfig,
    /// Host threads driving the simulation: 1 (default) runs the classic
    /// serial coordinator loop; ≥ 2 promotes the engine to window-parallel
    /// conservative execution with one group per node and the network's
    /// minimum cross-node latency as the conservative lookahead. The
    /// simulated results — virtual times, messages, statistics, traces —
    /// are bit-identical either way; only host wall time changes.
    pub host_threads: usize,
    /// Force a specific host execution mode instead of the automatic
    /// promotion: `None` (default) picks serial for one thread and
    /// window-parallel for ≥ 2; `Some(mode)` pins the engine to that mode
    /// (the bench harness uses this to compare duty-handoff against
    /// window-parallel at the same thread count).
    pub host_exec: Option<repseq_sim::HostExec>,
}

impl ClusterConfig {
    /// The paper's testbed shape for `n` nodes.
    pub fn paper(n: usize) -> Self {
        ClusterConfig {
            nodes: n,
            dsm: DsmConfig::default(),
            net: NetConfig::paper(n),
            host_threads: 1,
            host_exec: None,
        }
    }
}

/// One application process per node. Node 0 runs the master program.
pub type AppFn = Box<dyn FnOnce(DsmNode) -> Result<(), Stopped> + Send + 'static>;

/// A cluster under construction. Allocate shared arrays and preload their
/// initial contents host-side (this models data present before the
/// measured run, like TreadMarks' startup), then [`Cluster::launch`].
pub struct Cluster {
    cfg: ClusterConfig,
    stats: StatsRef,
    initial: HashMap<PageId, Vec<u8>>,
    alloc_next: u64,
    record_trace: bool,
    race: Option<Arc<dyn RaceSink>>,
}

/// Everything [`Cluster::launch_inspect`] hands back for post-run
/// verification: the simulation outcome plus per-node protocol probes and
/// the network's loss log. `repseq-check` builds its invariant sweep and
/// divergence reports on this.
pub struct LaunchOutcome {
    /// The simulation result (report on success, deadlock/panic otherwise).
    pub result: Result<SimReport, SimError>,
    /// One [`RseProbe`] per node, snapshotted after the simulation ended.
    pub probes: Vec<RseProbe>,
    /// Every frame the loss injector dropped, in canonical
    /// `(at, src, dst, pair_seq, multicast)` order (host-invariant; see
    /// [`repseq_net::Network::loss_events`]).
    pub loss_events: Vec<repseq_net::LossEvent>,
}

impl Cluster {
    /// Start building a cluster.
    pub fn new(cfg: ClusterConfig, stats: StatsRef) -> Cluster {
        assert!(cfg.nodes >= 1);
        assert_eq!(cfg.net.nodes, cfg.nodes, "network and cluster node counts must agree");
        assert_eq!(stats.n_nodes(), cfg.nodes, "stats registry sized for a different cluster");
        Cluster {
            cfg,
            stats,
            initial: HashMap::new(),
            // Address 0 is reserved so that a zero handle is recognizably
            // uninitialized.
            alloc_next: 64,
            record_trace: false,
            race: None,
        }
    }

    /// Record the kernel event trace during the run (see
    /// `SimReport::trace`), so a failing schedule can be diffed against a
    /// clean run event by event. Off by default — tracing a long run costs
    /// memory.
    pub fn record_trace(&mut self, on: bool) {
        self.record_trace = on;
    }

    /// Install a race-detection sink: every application-side shared-memory
    /// access and synchronization event is reported to it (see
    /// [`RaceSink`]). Detection is purely observational — a run with a
    /// sink installed is bit-identical in virtual time, messages, bytes
    /// and faults to the same run without one.
    pub fn set_race_sink(&mut self, sink: Arc<dyn RaceSink>) {
        self.race = Some(sink);
    }

    /// The configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// Allocate a shared array of `len` elements, 8-byte aligned.
    pub fn alloc_array<T: Pod>(&mut self, len: usize) -> ShArray<T> {
        self.alloc_array_aligned(len, 8)
    }

    /// Allocate a shared array starting on a page boundary (applications
    /// use this to avoid false sharing on hot structures).
    pub fn alloc_array_page_aligned<T: Pod>(&mut self, len: usize) -> ShArray<T> {
        self.alloc_array_aligned(len, self.cfg.dsm.page_size as u64)
    }

    fn alloc_array_aligned<T: Pod>(&mut self, len: usize, align: u64) -> ShArray<T> {
        let align = align.max(T::SIZE.min(8) as u64).max(1);
        let base = self.alloc_next.div_ceil(align) * align;
        let bytes = (T::SIZE * len) as u64;
        self.alloc_next = base + bytes;
        assert!(
            self.alloc_next <= self.cfg.dsm.heap_bytes(),
            "shared heap exhausted: {} > {} bytes (raise DsmConfig::heap_pages)",
            self.alloc_next,
            self.cfg.dsm.heap_bytes()
        );
        ShArray::new(base, len)
    }

    /// Allocate a single shared variable.
    pub fn alloc_var<T: Pod>(&mut self) -> ShVar<T> {
        ShVar::from_array(self.alloc_array::<T>(1))
    }

    /// Preload an array's initial contents (present on every node before
    /// the run starts; not counted as communication).
    pub fn preload<T: Pod>(&mut self, arr: ShArray<T>, vals: &[T]) {
        assert!(vals.len() <= arr.len());
        let mut buf = vec![0u8; T::SIZE];
        for (i, v) in vals.iter().enumerate() {
            v.write_to(&mut buf);
            self.preload_bytes(arr.addr(i), &buf);
        }
    }

    /// Preload one element.
    pub fn preload_at<T: Pod>(&mut self, arr: ShArray<T>, i: usize, v: T) {
        let mut buf = vec![0u8; T::SIZE];
        v.write_to(&mut buf);
        self.preload_bytes(arr.addr(i), &buf);
    }

    /// Preload a shared variable.
    pub fn preload_var<T: Pod>(&mut self, var: ShVar<T>, v: T) {
        self.preload_at(var.as_array(), 0, v);
    }

    fn preload_bytes(&mut self, addr: u64, bytes: &[u8]) {
        let ps = self.cfg.dsm.page_size;
        let mut off = 0usize;
        while off < bytes.len() {
            let a = addr + off as u64;
            let p = (a / ps as u64) as PageId;
            let in_page = (a % ps as u64) as usize;
            let chunk = (ps - in_page).min(bytes.len() - off);
            let page = self.initial.entry(p).or_insert_with(|| vec![0u8; ps]);
            page[in_page..in_page + chunk].copy_from_slice(&bytes[off..off + chunk]);
            off += chunk;
        }
    }

    /// Launch the cluster: one handler daemon and one application process
    /// per node (`apps[0]` is the master program), and run the simulation
    /// to completion.
    pub fn launch(self, apps: Vec<AppFn>) -> Result<SimReport, SimError> {
        self.launch_inspect(apps).result
    }

    /// Like [`Cluster::launch`], but additionally returns per-node protocol
    /// probes and the loss log for post-run invariant checking — the entry
    /// point `repseq-check` uses.
    pub fn launch_inspect(self, apps: Vec<AppFn>) -> LaunchOutcome {
        let n = self.cfg.nodes;
        assert_eq!(apps.len(), n, "need exactly one application per node");
        let net = Network::new(self.cfg.net.clone(), Arc::clone(&self.stats));
        // Shared-segment size in pages: every allocation so far. Sizes the
        // twin pool — a segment-wide fault burst must recycle, not
        // allocate.
        let seg_pages = self.alloc_next.div_ceil(self.cfg.dsm.page_size as u64) as usize;
        let initial: Arc<HashMap<PageId, Arc<[u8]>>> =
            Arc::new(self.initial.into_iter().map(|(p, v)| (p, Arc::<[u8]>::from(v))).collect());
        let states: Vec<Arc<Mutex<NodeState>>> = (0..n)
            .map(|i| {
                let mut st = NodeState::new(i, n, self.cfg.dsm.clone(), Arc::clone(&initial));
                st.size_twin_pool(seg_pages);
                Arc::new(Mutex::new(st))
            })
            .collect();
        let topo = Arc::new(Topology {
            n,
            app_pids: (n..2 * n).collect(),
            handler_pids: (0..n).collect(),
            stats: Arc::clone(&self.stats),
            race: self.race.clone(),
        });

        let mut sim = Sim::<DsmMsg>::new();
        sim.record_trace(self.record_trace);
        // Handlers first: pids 0..n-1.
        for (i, state) in states.iter().enumerate() {
            let nic = net.nic(i);
            let st = Arc::clone(state);
            let topo2 = Arc::clone(&topo);
            let pid = sim
                .spawn_daemon(&format!("handler{i}"), move |ctx| handler_main(ctx, nic, st, topo2));
            assert_eq!(pid, topo.handler_pids[i]);
        }
        // Applications: pids n..2n-1.
        for (i, app) in apps.into_iter().enumerate() {
            let nic = net.nic(i);
            let st = Arc::clone(&states[i]);
            let topo2 = Arc::clone(&topo);
            let page_size = self.cfg.dsm.page_size;
            let tlb_enabled = self.cfg.dsm.tlb_enabled;
            let pid = sim.spawn(&format!("app{i}"), move |ctx| {
                let node = DsmNode::new(ctx, nic, st, topo2, page_size, tlb_enabled);
                app(node)
            });
            assert_eq!(pid, topo.app_pids[i]);
        }
        // Group each node's two processes together so a node's local event
        // runs stay on one scheduling unit, with the network's minimum
        // cross-node latency as the conservative lookahead bound. The
        // grouping (and the lookahead) is applied in *every* mode, single
        // threaded included: event keys carry the pusher's group and a
        // per-group sequence number, and the post-exit quiescence tail is
        // bounded by the lookahead horizon, so leaving a serial run
        // ungrouped would give it a different tie order (and a different
        // processed-event count) than the very runs it is the determinism
        // baseline for. With `host_exec: None`, ≥ 2 threads promote to
        // window-parallel execution; a forced mode is honored as-is.
        let lookahead = self.cfg.net.min_cross_latency();
        match self.cfg.host_exec {
            Some(exec) => sim.set_exec(exec, self.cfg.host_threads, lookahead),
            None => sim.set_parallel(self.cfg.host_threads, lookahead),
        }
        for i in 0..n {
            sim.assign_group(topo.handler_pids[i], i);
            sim.assign_group(topo.app_pids[i], i);
        }
        let result = sim.run();
        let probes = states.iter().map(|s| s.lock().rse_probe()).collect();
        LaunchOutcome { result, probes, loss_events: net.loss_events() }
    }
}
