//! The DSM wire protocol.
//!
//! Every simulated frame carries one `DsmMsg`. Wire sizes are estimated per
//! message for the tables' byte counts; the network layer turns sizes into
//! transmission times.

use std::any::Any;
use std::sync::Arc;

use repseq_sim::Pid;
use repseq_stats::NodeId;

use crate::interval::{IntervalRecord, PageId};
use crate::page::DiffEntry;
use crate::vc::Vc;

/// An opaque task shipped by a fork message (the runtime layer downcasts
/// it). This mirrors TreadMarks' fork message, which carries "a subroutine
/// to be executed, its arguments, and some additional information".
pub type TaskPayload = Arc<dyn Any + Send + Sync>;

/// Protocol messages.
#[derive(Clone)]
pub enum DsmMsg {
    // ---- demand diff fetching (ordinary lazy release consistency) ----
    /// Ask `owner`'s handler for the diffs of the listed intervals of one
    /// page. Replies go straight to the faulting application process.
    DiffRequest { page: PageId, ivxs: Vec<u32>, reply_to: Pid, req_id: u64 },
    /// Diffs in response to one [`DsmMsg::DiffRequest`].
    DiffReply { page: PageId, diffs: Vec<DiffEntry>, req_id: u64 },

    // ---- barriers (centralized manager at node 0) ----
    /// Barrier arrival: the client's vector time plus every interval record
    /// the manager might not know.
    BarrierArrive { from: NodeId, vc: Vc, records: Vec<IntervalRecord>, reply_to: Pid },
    /// Barrier departure: the records this client lacks plus the merged
    /// vector time.
    BarrierDepart { records: Vec<IntervalRecord>, vc: Vc },

    // ---- locks (static manager, distributed queue) ----
    /// Lock acquire request, sent to the lock's manager and forwarded to
    /// the last holder (`forwarded` marks the second hop).
    LockAcquire { lock: u32, from: NodeId, vc: Vc, reply_to: Pid, forwarded: bool },
    /// Lock grant: the token plus the records the new holder lacks.
    LockGrant { lock: u32, records: Vec<IntervalRecord>, vc: Vc },

    // ---- fork/join (Tmk_fork / Tmk_join, driven by the runtime crate) ----
    /// Master → slave: run `task`; carries the consistency information the
    /// slave lacks.
    Fork { records: Vec<IntervalRecord>, vc: Vc, task: TaskPayload, replicated: bool },
    /// Slave → master: parallel work finished.
    Join { from: NodeId, vc: Vc, records: Vec<IntervalRecord> },

    // ---- replicated sequential execution (the paper's contribution) ----
    /// Master → slave app: send me your valid-notice delta (the exchange at
    /// the join before a replicated section, §5.4.1).
    ValidNoticeRequest { reply_to: Pid },
    /// Slave → master: pages whose valid notice changed since the last
    /// exchange.
    ValidNoticeReply { from: NodeId, delta: Vec<(PageId, Vc)> },
    /// Master → slave app, attached to the replicated fork: everyone's
    /// valid-notice deltas, so every node elects identical requesters.
    /// Shared, not owned: the table is multicast to every node, and at
    /// hundreds of nodes a per-destination deep copy of n·pages vector
    /// clocks is gigabytes of host memcpy per section.
    ValidNoticeTable { deltas: Arc<[(NodeId, PageId, Vc)]> },
    /// Elected requester → master handler: request diffs for a page on
    /// behalf of every faulting node (§5.4.2, serialized at the master).
    /// `epoch` is the requester's replicated-section count, so the master
    /// can tell a request racing ahead of its own section entry (accept)
    /// from one whose section already ended (drop — a zombie chain).
    McastRequest { page: PageId, wanted: Vec<(NodeId, u32)>, requester: NodeId, epoch: u64 },
    /// Master handler → all handlers (hub multicast): the forwarded request
    /// that also alerts every node that diffs are coming.
    McastForward { page: PageId, wanted: Vec<(NodeId, u32)>, requester: NodeId, req_seq: u64 },
    /// A node's turn in the reply chain, carrying its diffs.
    McastDiffReply { page: PageId, diffs: Vec<DiffEntry>, turn: NodeId, req_seq: u64 },
    /// A node's turn in the reply chain when it has nothing to send.
    McastNullAck { page: PageId, turn: NodeId, req_seq: u64 },
    /// Timeout recovery (§5.4.2): ask one owner directly; it multicasts the
    /// reply out of band (`req_seq = u64::MAX`).
    RecoveryRequest { page: PageId, ivxs: Vec<u32>, requester: NodeId, reply_mcast: bool },
    /// Slave app → master app: finished the replicated section body.
    SeqDone { from: NodeId },
    /// Master app → slave apps: everyone finished; continue past the fork.
    /// Carries no consistency information (§5.2).
    SeqGo,

    // ---- hand-inserted broadcast (the §6.1.2 ablation) ----
    /// Whole-page broadcast after a master-only sequential section.
    PageBroadcast { page: PageId, data: Arc<[u8]>, vc: Vc },

    // ---- local (same node, free) ----
    /// Handler → application: a page you were waiting for became valid.
    WakePage { page: PageId },
}

fn records_size(records: &[IntervalRecord]) -> u64 {
    records.iter().map(|r| r.wire_size()).sum::<u64>()
}

fn diffs_size(diffs: &[DiffEntry]) -> u64 {
    diffs.iter().map(|r| 8 + 4 * r.covers.len() as u64 + r.diff.wire_size()).sum::<u64>()
}

impl DsmMsg {
    /// Estimated payload size in bytes, as counted in the tables.
    pub fn wire_size(&self) -> u64 {
        match self {
            DsmMsg::DiffRequest { ivxs, .. } => 16 + 4 * ivxs.len() as u64,
            DsmMsg::DiffReply { diffs, .. } => 16 + diffs_size(diffs),
            DsmMsg::BarrierArrive { vc, records, .. } => 8 + vc.wire_size() + records_size(records),
            DsmMsg::BarrierDepart { records, vc } => 8 + vc.wire_size() + records_size(records),
            DsmMsg::LockAcquire { vc, .. } => 16 + vc.wire_size(),
            DsmMsg::LockGrant { records, vc, .. } => 16 + vc.wire_size() + records_size(records),
            DsmMsg::Fork { records, vc, .. } => 64 + vc.wire_size() + records_size(records),
            DsmMsg::Join { vc, records, .. } => 8 + vc.wire_size() + records_size(records),
            DsmMsg::ValidNoticeRequest { .. } => 8,
            DsmMsg::ValidNoticeReply { delta, .. } => {
                8 + delta.iter().map(|(_, vc)| 4 + vc.wire_size()).sum::<u64>()
            }
            DsmMsg::ValidNoticeTable { deltas } => {
                8 + deltas.iter().map(|(_, _, vc)| 8 + vc.wire_size()).sum::<u64>()
            }
            DsmMsg::McastRequest { wanted, .. } => 24 + 8 * wanted.len() as u64,
            DsmMsg::McastForward { wanted, .. } => 24 + 8 * wanted.len() as u64,
            DsmMsg::McastDiffReply { diffs, .. } => 24 + diffs_size(diffs),
            DsmMsg::McastNullAck { .. } => 24,
            DsmMsg::RecoveryRequest { ivxs, .. } => 24 + 4 * ivxs.len() as u64,
            DsmMsg::SeqDone { .. } => 8,
            DsmMsg::SeqGo => 8,
            DsmMsg::PageBroadcast { data, vc, .. } => 8 + data.len() as u64 + vc.wire_size(),
            DsmMsg::WakePage { .. } => 0,
        }
    }

    /// Short tag for diagnostics.
    pub fn kind(&self) -> &'static str {
        match self {
            DsmMsg::DiffRequest { .. } => "DiffRequest",
            DsmMsg::DiffReply { .. } => "DiffReply",
            DsmMsg::BarrierArrive { .. } => "BarrierArrive",
            DsmMsg::BarrierDepart { .. } => "BarrierDepart",
            DsmMsg::LockAcquire { .. } => "LockAcquire",
            DsmMsg::LockGrant { .. } => "LockGrant",
            DsmMsg::Fork { .. } => "Fork",
            DsmMsg::Join { .. } => "Join",
            DsmMsg::ValidNoticeRequest { .. } => "ValidNoticeRequest",
            DsmMsg::ValidNoticeReply { .. } => "ValidNoticeReply",
            DsmMsg::ValidNoticeTable { .. } => "ValidNoticeTable",
            DsmMsg::McastRequest { .. } => "McastRequest",
            DsmMsg::McastForward { .. } => "McastForward",
            DsmMsg::McastDiffReply { .. } => "McastDiffReply",
            DsmMsg::McastNullAck { .. } => "McastNullAck",
            DsmMsg::RecoveryRequest { .. } => "RecoveryRequest",
            DsmMsg::SeqDone { .. } => "SeqDone",
            DsmMsg::SeqGo => "SeqGo",
            DsmMsg::PageBroadcast { .. } => "PageBroadcast",
            DsmMsg::WakePage { .. } => "WakePage",
        }
    }
}

impl std::fmt::Debug for DsmMsg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "DsmMsg::{}({} bytes)", self.kind(), self.wire_size())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diff::Diff;

    #[test]
    fn wire_sizes_scale_with_content() {
        let small = DsmMsg::DiffRequest { page: 1, ivxs: vec![1], reply_to: 0, req_id: 0 };
        let big = DsmMsg::DiffRequest { page: 1, ivxs: vec![1; 10], reply_to: 0, req_id: 0 };
        assert!(big.wire_size() > small.wire_size());

        let d = Arc::new(crate::page::DiffRecord {
            owner: 0,
            covers: vec![1],
            diff: Diff::create(&[0u8; 64], &[1u8; 64]),
        });
        let reply = DsmMsg::DiffReply { page: 1, diffs: vec![d], req_id: 0 };
        assert!(reply.wire_size() > 64);
    }

    #[test]
    fn null_ack_is_small() {
        let ack = DsmMsg::McastNullAck { page: 0, turn: 3, req_seq: 9 };
        assert!(ack.wire_size() <= 32);
    }

    #[test]
    fn debug_shows_kind() {
        let m = DsmMsg::SeqGo;
        assert_eq!(format!("{m:?}"), "DsmMsg::SeqGo(8 bytes)");
    }
}
