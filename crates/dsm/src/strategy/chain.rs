//! Replicated sequential execution, handler side (§5.4.2): the
//! master-serialized forwarded requests and the id-ordered reply chain
//! with null-ack flow control.

use repseq_sim::{Ctx, Dur};
use repseq_stats::{MsgClass, NodeId};

use crate::interval::PageId;
use crate::msg::DsmMsg;
use crate::state::NodeState;
use crate::strategy::rse_state::ChainState;

/// Request sequence number used by out-of-band recovery replies.
pub(crate) const OOB_SEQ: u64 = u64::MAX;

/// Master handler: queue a forwarded request; start it if the medium is
/// free ("Diff requests from different threads are serialized at the
/// master thread", §5.4.2). Returns a message to multicast, if any.
/// Under [`crate::config::FlowControl::Concurrent`] the request is
/// forwarded immediately with no serialization.
pub(crate) fn master_enqueue(
    st: &mut NodeState,
    page: PageId,
    wanted: Vec<(NodeId, u32)>,
    requester: NodeId,
    epoch: u64,
) -> Option<DsmMsg> {
    let current = epoch == st.rse.section_epoch && st.rse.active;
    let ahead = epoch > st.rse.section_epoch;
    if !current && !ahead {
        // The section this request belongs to already ended: its requester
        // completed via timeout recovery while the request was in flight.
        // Forwarding it now would start a zombie chain in a later section.
        // (A request racing *ahead* of the master — sent by an early slave
        // before the master's own fork loop returned and entered the
        // section, routine at hundreds of nodes — is NOT a zombie: it is
        // queued and forwarded like any other.)
        return None;
    }
    if st.cfg.flow_control == crate::config::FlowControl::Concurrent {
        let req_seq = st.rse.mcast_next_seq;
        st.rse.mcast_next_seq += 1;
        return Some(DsmMsg::McastForward { page, wanted, requester, req_seq });
    }
    st.rse.mcast_queue.push_back((page, wanted, requester));
    master_try_start(st)
}

/// Master handler: begin the next queued forwarded request if none is in
/// flight.
pub(crate) fn master_try_start(st: &mut NodeState) -> Option<DsmMsg> {
    if st.rse.mcast_inflight.is_some() {
        return None;
    }
    let (page, wanted, requester) = st.rse.mcast_queue.pop_front()?;
    let req_seq = st.rse.mcast_next_seq;
    st.rse.mcast_next_seq += 1;
    st.rse.mcast_inflight = Some(req_seq);
    Some(DsmMsg::McastForward { page, wanted, requester, req_seq })
}

/// Any handler: a forwarded request arrived; set up the reply chain. The
/// chain starts at node 0: each node multicasts its diffs — or a null
/// acknowledgment — once it has received everything from its predecessor
/// (§5.4.2 flow control).
///
/// Under [`crate::config::FlowControl::Concurrent`] there is no chain: the
/// handler immediately produces its own diffs, if it has any (the return
/// value), and sends no null acknowledgments.
pub(crate) fn on_forward(
    st: &mut NodeState,
    page: PageId,
    wanted: Vec<(NodeId, u32)>,
    requester: NodeId,
    req_seq: u64,
) -> Option<(DsmMsg, Dur)> {
    if st.cfg.flow_control == crate::config::FlowControl::Concurrent {
        let me = st.node;
        let my_ivxs: Vec<u32> =
            wanted.iter().filter(|&&(owner, _)| owner == me).map(|&(_, ivx)| ivx).collect();
        if my_ivxs.is_empty() {
            return None;
        }
        let (cost, diffs) = st.serve_diff_request(page, &my_ivxs);
        return Some((DsmMsg::McastDiffReply { page, diffs, turn: me, req_seq }, cost));
    }
    st.rse.chains.insert(req_seq, ChainState { page, wanted, requester, next_turn: 0, holes: 0 });
    take_turn(st, req_seq)
}

/// Does this node hold the next turn of chain `req_seq`? If so, produce the
/// turn message (diff reply or null ack) and the diff-creation cost.
pub(crate) fn take_turn(st: &mut NodeState, req_seq: u64) -> Option<(DsmMsg, Dur)> {
    let me = st.node;
    let (page, my_ivxs) = {
        let chain = st.rse.chains.get(&req_seq)?;
        if chain.next_turn != me {
            return None;
        }
        let my_ivxs: Vec<u32> =
            chain.wanted.iter().filter(|&&(owner, _)| owner == me).map(|&(_, ivx)| ivx).collect();
        (chain.page, my_ivxs)
    };
    if my_ivxs.is_empty() {
        Some((DsmMsg::McastNullAck { page, turn: me, req_seq }, Dur::ZERO))
    } else {
        let (cost, diffs) = st.serve_diff_request(page, &my_ivxs);
        Some((DsmMsg::McastDiffReply { page, diffs, turn: me, req_seq }, cost))
    }
}

/// Record that turn `turn` of chain `req_seq` was observed. Returns true if
/// the chain completed (the last node has spoken).
///
/// Turns can arrive with gaps: a dropped turn frame means the next observed
/// turn skips the lost node(s). The chain must tolerate that explicitly —
/// advance to `max(next_turn, turn + 1)`, record the hole — rather than
/// assert turn-by-turn delivery, because the node whose frame was lost has
/// already taken its turn and will not retransmit; the requester's timeout
/// recovery (§5.4.2) fetches the missing diffs directly. Duplicate or
/// late-arriving turns (`turn < next_turn`) are ignored.
pub(crate) fn advance_chain(st: &mut NodeState, req_seq: u64, turn: NodeId) -> bool {
    let n = st.n;
    let Some(chain) = st.rse.chains.get_mut(&req_seq) else {
        return false;
    };
    if turn < chain.next_turn {
        // A duplicate or a frame that arrived after the chain moved past
        // it: the chain state must not move backwards.
        return false;
    }
    // An accepted frame: the chain is alive. The application's timeout
    // path watches this counter to avoid firing recovery at a chain that
    // is merely slow (see `RseState::chain_turns`).
    st.rse.chain_turns += 1;
    let holes = (turn - chain.next_turn) as u64;
    if holes > 0 {
        // Turns [next_turn, turn) were lost on this node's link. Count
        // them so the torture harness can assert the recovery path was
        // actually exercised; completion below no longer implies every
        // node's diffs were observed.
        chain.holes += holes;
        st.rse.chain_holes += holes;
    }
    chain.next_turn = turn + 1;
    if chain.next_turn == n {
        st.rse.chains.remove(&req_seq);
        true
    } else {
        false
    }
}

/// Incorporate multicast diffs at a handler: cache them, and if the local
/// copy can now be completed (and is actually missing something — nodes
/// with valid copies ignore the traffic), apply and wake a waiting
/// application. Returns (apply cost, wake page).
pub(crate) fn incorporate_diffs(
    st: &mut NodeState,
    page: PageId,
    diffs: &[crate::page::DiffEntry],
) -> (Dur, Option<PageId>) {
    st.cache_diffs(page, diffs);
    let meta = st.page_mut(page);
    if meta.valid {
        return (Dur::ZERO, None);
    }
    if !st.can_complete(page) {
        return (Dur::ZERO, None);
    }
    let cost = st.apply_cached_diffs(page);
    let wake = if st.rse.waiting_page == Some(page) { Some(page) } else { None };
    (cost, wake)
}

/// Convenience used by the handler loop to multicast a message to every
/// handler.
pub(crate) fn multicast_to_handlers(
    node_nic: &repseq_net::Nic,
    ctx: &Ctx<DsmMsg>,
    topo: &crate::runtime::Topology,
    class: MsgClass,
    msg: DsmMsg,
) {
    let size = msg.wire_size();
    node_nic.multicast(ctx, &topo.all_handlers(), class, size, msg);
}

// =================================================================
// Unit tests for the chain-advance bookkeeping (the gap-tolerance
// regression: see `advance_chain`'s doc comment).
// =================================================================

#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    use std::sync::Arc;

    use super::*;
    use crate::config::DsmConfig;

    fn state_with_chain(n: usize, req_seq: u64) -> NodeState {
        let mut st = NodeState::new(1, n, DsmConfig::default(), Arc::new(HashMap::new()));
        st.rse.chains.insert(
            req_seq,
            ChainState { page: 7, wanted: Vec::new(), requester: 0, next_turn: 0, holes: 0 },
        );
        st
    }

    /// A dropped turn frame must not wedge the chain: the next observed
    /// turn skips over it and the skip is recorded as a hole.
    #[test]
    fn advance_chain_tolerates_turn_gaps() {
        let mut st = state_with_chain(4, 0);
        assert!(!advance_chain(&mut st, 0, 0));
        // Turn 1's frame was lost on this node's link; turn 2 arrives next.
        assert!(!advance_chain(&mut st, 0, 2));
        assert_eq!(st.rse.chains[&0].holes, 1);
        assert_eq!(st.rse.chain_holes, 1);
        assert!(advance_chain(&mut st, 0, 3), "last turn completes the chain");
        assert!(st.rse.chains.is_empty());
        assert_eq!(st.rse.chain_holes, 1, "node-level hole count survives chain retirement");
    }

    /// Duplicates and frames arriving after the chain moved past their turn
    /// must not move the chain backwards or recount holes.
    #[test]
    fn advance_chain_ignores_duplicate_and_late_turns() {
        let mut st = state_with_chain(4, 9);
        assert!(!advance_chain(&mut st, 9, 1));
        assert_eq!(st.rse.chain_holes, 1); // turn 0 was skipped
        assert!(!advance_chain(&mut st, 9, 0)); // late copy of turn 0
        assert!(!advance_chain(&mut st, 9, 1)); // duplicate of turn 1
        assert_eq!(st.rse.chains[&9].next_turn, 2);
        assert_eq!(st.rse.chain_holes, 1);
        // Turns for unknown chains (already retired, or never forwarded
        // here) are a no-op.
        assert!(!advance_chain(&mut st, 42, 0));
        assert_eq!(st.rse.chain_holes, 1);
    }

    /// Even if every turn but the last is lost, the final frame completes
    /// the chain — with all missing turns on the books, so completion is
    /// never mistaken for full delivery.
    #[test]
    fn advance_chain_completes_past_trailing_gap() {
        let mut st = state_with_chain(3, 2);
        assert!(advance_chain(&mut st, 2, 2));
        assert!(st.rse.chains.is_empty());
        assert_eq!(st.rse.chain_holes, 2);
    }
}
