//! Sequential-section execution strategies.
//!
//! The paper's question is *how a DSM program should execute its
//! sequential sections*; this module makes the answer a first-class,
//! swappable policy. [`SeqExecStrategy`] is the narrow contract: a
//! strategy is handed the master node and the section body and must leave
//! the cluster in a state where the next parallel section observes every
//! result of the section. Strategies may use the data plane and the layer
//! APIs (fork/join, broadcast, interval close) but never reach into
//! consistency metadata directly.
//!
//! Three implementations, selected by [`SeqExecMode`] on
//! [`crate::DsmConfig`]:
//!
//! - **MasterOnly** — the TreadMarks baseline: the master simply runs the
//!   body; slaves fetch what they miss on demand in the next parallel
//!   section (the contended pattern of §3).
//! - **Rse** — the paper's contribution (§5): every node executes the
//!   body on its own copy, with the multicast fault protocol.
//! - **MasterPush** — the eager-push alternative the paper argues against
//!   in §2: the master runs the body, then multicasts every page it wrote.

pub(crate) mod chain;
pub(crate) mod rse;
mod rse_state;

use std::sync::Arc;

use repseq_sim::Stopped;

use crate::config::SeqExecMode;
use crate::exec::TaskFn;
use crate::interval::PageId;
use crate::runtime::DsmNode;

pub(crate) use rse_state::RseState;
pub use rse_state::{ChainProbe, RseProbe};

/// How the master executes a sequential section. Implementations must be
/// stateless (all protocol state lives in the layers they drive) so one
/// static instance serves every node and every section.
///
/// Contract: on entry the caller is the master, between sections (all
/// slaves parked in [`DsmNode::slave_loop`], no section active). On return
/// the section's effects are published well enough that ordinary lazy
/// release consistency makes them visible — a strategy may replicate the
/// body, push data eagerly, or do nothing beyond running it, but it must
/// not leave replicated-section machinery engaged (`rse_probe` quiescent).
pub trait SeqExecStrategy: Send + Sync {
    /// The strategy's name, as reported in benchmarks and logs.
    fn name(&self) -> &'static str;

    /// Execute `body` as a sequential section on the cluster whose master
    /// is `node`.
    fn run_master(&self, node: &DsmNode, body: Arc<TaskFn>) -> Result<(), Stopped>;
}

/// Baseline: the master executes the body; nothing else happens. Slaves
/// demand-fetch the results (with the §3 contention at the master).
struct MasterOnly;

impl SeqExecStrategy for MasterOnly {
    fn name(&self) -> &'static str {
        "master_only"
    }

    fn run_master(&self, node: &DsmNode, body: Arc<TaskFn>) -> Result<(), Stopped> {
        body(node)
    }
}

/// Replicated sequential execution (§5): fork the body to every node and
/// run it everywhere under the replicated-section protocol.
struct Rse;

impl SeqExecStrategy for Rse {
    fn name(&self) -> &'static str {
        "rse"
    }

    fn run_master(&self, node: &DsmNode, body: Arc<TaskFn>) -> Result<(), Stopped> {
        rse::run_master(node, body)
    }
}

/// Eager push (§2's rejected alternative, made concrete): the master runs
/// the body, then multicasts every page the section wrote. Correct under
/// plain lazy release consistency — the broadcast closes the section's
/// interval and ships post-close copies, and any dropped frame degrades to
/// a demand fetch — but it ships whole pages whether or not a consumer
/// needs them, which is why it loses to replication on contended inputs.
struct MasterPush;

impl SeqExecStrategy for MasterPush {
    fn name(&self) -> &'static str {
        "master_push"
    }

    fn run_master(&self, node: &DsmNode, body: Arc<TaskFn>) -> Result<(), Stopped> {
        // Isolate the section's writes in their own interval so the write
        // set below is exactly what the body touched.
        node.st.lock().close_interval();
        body(node)?;
        let pages: Vec<PageId> = {
            let st = node.st.lock();
            let mut pages = st.con.cur_writes.clone();
            pages.sort_unstable();
            pages
        };
        node.broadcast_pages(pages)
    }
}

/// The statically-known strategies, by configuration mode.
pub(crate) fn strategy_for(mode: SeqExecMode) -> &'static dyn SeqExecStrategy {
    match mode {
        SeqExecMode::MasterOnly => &MasterOnly,
        SeqExecMode::Rse => &Rse,
        SeqExecMode::MasterPush => &MasterPush,
    }
}

impl DsmNode {
    /// Master: execute `f` as a sequential section under the strategy
    /// configured in [`crate::DsmConfig::seq_exec`].
    pub fn run_sequential(
        &self,
        f: impl Fn(&DsmNode) -> Result<(), Stopped> + Send + Sync + 'static,
    ) -> Result<(), Stopped> {
        assert!(self.is_master(), "sequential sections start at the master");
        let mode = self.st.lock().cfg.seq_exec;
        strategy_for(mode).run_master(self, Arc::new(f))
    }

    /// Master: execute `f` as a *replicated* sequential section (§5),
    /// regardless of the configured strategy. Prefer
    /// [`DsmNode::run_sequential`]; this remains for callers that compare
    /// strategies side by side.
    pub fn run_replicated(
        &self,
        f: impl Fn(&DsmNode) -> Result<(), Stopped> + Send + Sync + 'static,
    ) -> Result<(), Stopped> {
        assert!(self.is_master(), "replicated sections start at the master");
        rse::run_master(self, Arc::new(f))
    }
}
