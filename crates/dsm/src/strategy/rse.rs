//! Replicated sequential execution, application side (§5.2–§5.4): the
//! valid-notice exchange at the join before a replicated section,
//! requester election on faults, and the wait for multicast diffs. The
//! handler side (forwarded requests, reply chains) is in
//! [`crate::strategy::chain`].

use std::sync::Arc;

use repseq_sim::Stopped;
use repseq_stats::{MsgClass, NodeId};

use crate::exec::{Task, TaskFn};
use crate::fetch::RetryTimer;
use crate::interval::PageId;
use crate::msg::{DsmMsg, TaskPayload};
use crate::runtime::DsmNode;
use crate::vc::Vc;

/// Run one replicated sequential section from the master: valid-notice
/// exchange, fork of the body to every node, replicated execution of the
/// master's own copy, then the end-of-section join.
pub(crate) fn run_master(node: &DsmNode, body: Arc<TaskFn>) -> Result<(), Stopped> {
    let task: TaskPayload = Arc::new(Task::Run(Arc::clone(&body)));
    node.fork_replicated(task)?;
    node.enter_replicated();
    body(node)?;
    node.end_replicated_master()
}

impl DsmNode {
    /// Master: run the valid-notice exchange at the join before a
    /// replicated section (§5.4.1: "Valid notices are exchanged only at the
    /// join before a sequential section"), then fork the replicated `task`
    /// to every slave together with the aggregated table.
    pub fn fork_replicated(&self, task: TaskPayload) -> Result<(), Stopped> {
        assert!(self.is_master());
        let n = self.topo.n;
        let t0 = self.ctx.now();

        // 1. Collect everyone's valid-notice deltas. The request carries
        //    the same few bytes to every slave, so it goes out as ONE
        //    multicast over the hub — n-1 unicasts would serialize ~n
        //    send overheads on the master's CPU at every section entry.
        if n > 1 {
            let slave_apps: Vec<_> = (1..n).map(|s| (s, self.topo.app_pids[s])).collect();
            let msg = DsmMsg::ValidNoticeRequest { reply_to: self.ctx.pid() };
            let size = msg.wire_size();
            self.nic.multicast_reliable(&self.ctx, &slave_apps, MsgClass::ValidNotice, size, msg);
        }
        let mut table: Vec<(NodeId, PageId, Vc)> = {
            let mut st = self.st.lock();
            st.take_valid_delta().into_iter().map(|(p, vc)| (0usize, p, vc)).collect()
        };
        let mut pending = n - 1;
        while pending > 0 {
            let env = self.ctx.recv()?;
            match env.msg {
                DsmMsg::ValidNoticeReply { from, delta } => {
                    let mut st = self.st.lock();
                    for (p, vc) in delta {
                        st.rse.valid_known[from].insert(p, vc.clone());
                        table.push((from, p, vc));
                    }
                    pending -= 1;
                }
                // Stale wakeups and duplicate diff replies (resends whose
                // originals won the race) are harmless stragglers.
                DsmMsg::WakePage { .. } | DsmMsg::DiffReply { .. } => {}
                other => panic!("master: unexpected {} during valid-notice exchange", other.kind()),
            }
        }
        table.sort_by_key(|(q, p, _)| (*q, *p));

        // 2. Distribute the table so every node elects identical
        //    requesters: the same data goes to everyone, so it travels as
        //    ONE multicast over the hub to the protocol handlers. The
        //    master blocks until delivery — the forks go over the switch
        //    and must not overtake the table.
        let msg = DsmMsg::ValidNoticeTable { deltas: table.into() };
        let size = msg.wire_size();
        let dsts: Vec<_> =
            self.topo.all_handlers().into_iter().filter(|&(node, _)| node != 0).collect();
        let at = self.nic.multicast_reliable(&self.ctx, &dsts, MsgClass::ValidNotice, size, msg);
        let service = self.st.lock().cfg.service_overhead;
        let resume_at = at + service * 2;
        let now = self.ctx.now();
        if resume_at > now {
            self.ctx.sleep(resume_at - now)?;
        }
        self.topo.stats.on_valid_notice_time(0, self.ctx.now() - t0);

        // 3. Fork the replicated body.
        self.fork_slaves(task, true)
    }

    /// Enter the replicated section (both master and slaves, after the fork
    /// records are applied): write-protect dirty pages (§5.3) and snapshot
    /// the entry timestamp.
    ///
    /// Both this transition and section retirement (`exit_replicated`)
    /// revoke write permission, so the state methods bump the node's
    /// protection generation — every software-TLB entry cached before the
    /// section is revalidated on its next use, which is what forces
    /// replicated writes back through `write_fault` and its §5.3
    /// pre-section diff.
    pub fn enter_replicated(&self) {
        {
            let mut st = self.st.lock();
            st.enter_replicated();
        }
        // From here to the exit barrier this node's accesses belong to the
        // *replica* — one logical thread executing on every node (§5.2).
        self.race_sync(crate::race::SyncEdge::RseEnter);
    }

    /// Master: wait for every slave's end-of-section signal, release them,
    /// and retire the section. "At the fork at the end of a sequential
    /// section, threads wait until all other threads have finished ... No
    /// memory coherence information is exchanged" (§5.2).
    pub fn end_replicated_master(&self) -> Result<(), Stopped> {
        assert!(self.is_master());
        self.race_sync(crate::race::SyncEdge::RseExitArrive);
        let n = self.topo.n;
        let mut pending = n - 1;
        {
            // SeqDone signals that arrived while the master was blocked in
            // its own replicated fault were buffered.
            let mut st = self.st.lock();
            pending -= st.exec.pending_seqdone;
            st.exec.pending_seqdone = 0;
        }
        while pending > 0 {
            let env = self.ctx.recv()?;
            match env.msg {
                DsmMsg::SeqDone { .. } => pending -= 1,
                DsmMsg::WakePage { .. } | DsmMsg::DiffReply { .. } => {}
                other => panic!("master: unexpected {} ending replicated section", other.kind()),
            }
        }
        // The release is identical for every slave: one multicast, not n-1
        // serialized unicasts. The master blocks until delivery — its next
        // fork goes over the *switch* and must not overtake the hub frame,
        // or a slave still waiting for SeqGo would see the Fork first.
        if n > 1 {
            let slave_apps: Vec<_> = (1..n).map(|s| (s, self.topo.app_pids[s])).collect();
            let msg = DsmMsg::SeqGo;
            let size = msg.wire_size();
            let at = self.nic.multicast_reliable(&self.ctx, &slave_apps, MsgClass::Sync, size, msg);
            let now = self.ctx.now();
            if at > now {
                self.ctx.sleep(at - now)?;
            }
        }
        self.ctx.charge(self.sync_cost());
        self.st.lock().exit_replicated();
        self.race_sync(crate::race::SyncEdge::RseExitDepart);
        Ok(())
    }

    /// Slave: signal completion of the replicated body and wait for the
    /// master's go-ahead, then retire the section.
    pub fn end_replicated_slave(&self) -> Result<(), Stopped> {
        assert!(!self.is_master());
        let node = self.node();
        self.race_sync(crate::race::SyncEdge::RseExitArrive);
        let msg = DsmMsg::SeqDone { from: node };
        let size = msg.wire_size();
        self.ctx.charge(self.sync_cost());
        self.nic.unicast(&self.ctx, 0, self.topo.app_pids[0], MsgClass::Sync, size, msg);
        loop {
            let env = self.ctx.recv()?;
            match env.msg {
                DsmMsg::SeqGo => break,
                DsmMsg::WakePage { .. } | DsmMsg::DiffReply { .. } => {}
                other => panic!("node {node}: unexpected {} awaiting SeqGo", other.kind()),
            }
        }
        self.st.lock().exit_replicated();
        self.race_sync(crate::race::SyncEdge::RseExitDepart);
        Ok(())
    }
}

/// A read fault inside a replicated section (§5.4): elect the requester
/// deterministically; the elected node sends one request (serialized
/// through the master); everyone waits for the multicast reply chain,
/// which the node's handler applies. Timeouts trigger the direct recovery
/// path, on the shared [`RetryTimer`] budget.
pub(crate) fn fetch_replicated(node: &DsmNode, p: PageId) -> Result<(), Stopped> {
    let me = node.node();
    let t0 = node.ctx().now();
    let (send_request, wanted, epoch) = {
        let mut st = node.st.lock();
        if st.can_complete(p) {
            // The diffs already arrived via an earlier multicast.
            let cost = st.apply_cached_diffs(p);
            drop(st);
            node.ctx().charge(cost);
            return Ok(());
        }
        let (requester, wanted) = st.elect_requester(p);
        let send = requester == me && !st.rse.requested.contains(&p);
        if send {
            st.rse.requested.insert(p);
        }
        st.rse.waiting_page = Some(p);
        let epoch = st.rse.section_epoch;
        (send, wanted, epoch)
    };
    if send_request {
        let msg = DsmMsg::McastRequest { page: p, wanted, requester: me, epoch };
        // Serialized at the master (§5.4.2): a point-to-point message to
        // the master, which multicasts the forwarded request. When the
        // elected requester IS the master node, the request is an
        // intra-node signal to its own handler and is delivered locally,
        // like every other same-node control message (locks, barriers,
        // wakeups). Routing it through the NIC would queue this tiny
        // frame on the master's transmit link behind the O(n) fork
        // frames of the section entry — at ~200 nodes that is seconds of
        // virtual delay, during which every other node times out and
        // fires §5.4.2 recovery at full strength.
        if me == 0 {
            node.nic.local(node.ctx(), node.topo.handler_pids[0], msg);
        } else {
            let size = msg.wire_size();
            node.nic.unicast(
                node.ctx(),
                0,
                node.topo.handler_pids[0],
                MsgClass::DiffRequest,
                size,
                msg,
            );
        }
    }
    let mut timer = RetryTimer::from_cfg(&node.st.lock().cfg);
    let mut seen_turns = node.st.lock().rse.chain_turns;
    loop {
        match node.ctx().recv_timeout(timer.timeout())? {
            Some(env) => match env.msg {
                DsmMsg::WakePage { page } if page == p => {
                    if try_complete(node, p) {
                        break;
                    }
                    // An out-of-band recovery reply arrived but our copy
                    // still cannot complete — it covered someone else's
                    // missing diffs, or only part of ours. Recovery replies
                    // are multicast, so at large node counts every waiting
                    // node is woken by every OTHER requester's recovery
                    // round; charging the retry budget (or re-sending our
                    // own recovery requests) here turns the budget into a
                    // wakeup counter and the recovery path into an O(n²)
                    // request storm. Just keep waiting: our own requests
                    // are already in flight, and the §5.4.2 timeout below
                    // re-sends them if they are genuinely lost.
                }
                DsmMsg::WakePage { page } => {
                    debug_assert_ne!(page, p); // handled above
                }
                other => {
                    if !node.absorb_stray(other) {
                        panic!(
                            "node {me}: unexpected message waiting for multicast diffs of page {p}"
                        );
                    }
                }
            },
            None => {
                // §5.4.2 recovery: "When a thread times out on receive, it
                // sends out a request asking for its missing diffs
                // regardless of other threads ... and the replies are
                // multicast to all threads."
                //
                // Re-check completability first: the diffs may all have
                // arrived without a wakeup reaching us, and a resend loop
                // with an empty fetch plan would otherwise re-arm forever
                // sending nothing.
                if try_complete(node, p) {
                    break;
                }
                // A slow chain is not a dead chain: if our handler accepted
                // new chain turns since the last check, the serialized reply
                // machinery is still delivering — which at hundreds of nodes
                // routinely takes longer than `rse_timeout` even on a
                // lossless network. Recovery is for chains that went silent.
                let turns = node.st.lock().rse.chain_turns;
                if turns != seen_turns {
                    seen_turns = turns;
                    continue;
                }
                timer.note_retry(|max| recovery_diagnostic(node, p, me, max));
                send_recovery_requests(node, p, me);
            }
        }
    }
    let waited = node.ctx().now() - t0;
    node.topo.stats.on_diff_stall(me, waited);
    if send_request {
        node.topo.stats.on_diff_request_complete(me, waited);
    }
    Ok(())
}

/// If the waited-on page is already valid — or every diff it needs is
/// cached — finish the fault locally and return true.
fn try_complete(node: &DsmNode, p: PageId) -> bool {
    let mut st = node.st.lock();
    if st.page_mut(p).valid {
        st.rse.waiting_page = None;
        return true;
    }
    if st.can_complete(p) {
        let cost = st.apply_cached_diffs(p);
        st.rse.waiting_page = None;
        drop(st);
        node.ctx().charge(cost);
        return true;
    }
    false
}

/// Unicast a §5.4.2 recovery request to every owner of a still-missing
/// diff. The owners reply with out-of-band multicasts
/// ([`crate::strategy::chain::OOB_SEQ`]).
fn send_recovery_requests(node: &DsmNode, p: PageId, me: NodeId) {
    let plan = {
        let mut st = node.st.lock();
        st.rse.recovery_rounds += 1;
        st.fetch_plan(p)
    };
    let mut owners: Vec<NodeId> = plan.keys().copied().collect();
    owners.sort_unstable();
    for owner in owners {
        let msg = DsmMsg::RecoveryRequest {
            page: p,
            ivxs: plan[&owner].clone(),
            requester: me,
            reply_mcast: true,
        };
        let size = msg.wire_size();
        node.nic.unicast(
            node.ctx(),
            owner,
            node.topo.handler_pids[owner],
            MsgClass::DiffRequest,
            size,
            msg,
        );
    }
}

/// A recovery that never converges points at a protocol bug or a dead
/// owner, not at bad luck — every retry re-requests every missing diff, so
/// the expected number of rounds under any survivable loss rate is tiny.
/// This renders the exact state for the retry budget's panic.
fn recovery_diagnostic(node: &DsmNode, p: PageId, me: NodeId, max_retries: u32) -> String {
    let mut st = node.st.lock();
    let missing = st.fetch_plan(p);
    let valid = st.page_mut(p).valid;
    let waiting = st.rse.waiting_page;
    format!(
        "node {me}: page {p}: §5.4.2 recovery did not converge after {max_retries} \
         retries; still missing diffs {missing:?} (valid={valid}, waiting={waiting:?})"
    )
}
