//! Replicated-sequential-execution state: everything a node tracks for
//! §5.2–§5.4 — section membership, valid-notice tables, reply chains and
//! the master's multicast serialization — plus the read-only probes
//! `repseq-check` asserts over.

use std::collections::{HashMap, HashSet, VecDeque};

use repseq_sim::{Dur, SimTime};
use repseq_stats::NodeId;

use crate::dataplane::pool_recycle;
use crate::interval::PageId;
use crate::state::NodeState;
use crate::vc::Vc;

/// A queued multicast request awaiting the master's serialization:
/// (page, wanted diffs, requester).
pub(crate) type QueuedRequest = (PageId, Vec<(NodeId, u32)>, NodeId);

/// Reply-chain state for one forwarded multicast request (§5.4.2).
#[derive(Debug)]
pub(crate) struct ChainState {
    pub(crate) page: PageId,
    pub(crate) wanted: Vec<(NodeId, u32)>,
    pub(crate) requester: NodeId,
    /// Whose turn it is to multicast next.
    pub(crate) next_turn: NodeId,
    /// Turns this node never observed (dropped frames skipped over when a
    /// later turn arrived). A chain that completes with holes did NOT
    /// deliver every node's diffs here; timeout recovery fills the gap.
    pub(crate) holes: u64,
}

/// Snapshot of one reply chain, taken by [`NodeState::rse_probe`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainProbe {
    pub req_seq: u64,
    pub page: PageId,
    pub requester: NodeId,
    pub next_turn: NodeId,
    pub holes: u64,
}

/// A read-only snapshot of one node's replicated-section protocol state
/// (see [`NodeState::rse_probe`]). `repseq-check` asserts over these after
/// every torture run: at quiescence, `chains`, `mcast_queue_len`,
/// `mcast_inflight`, `rse_requested` and `waiting_page` must all be empty,
/// and `in_rse` false.
#[derive(Debug, Clone)]
pub struct RseProbe {
    pub node: NodeId,
    pub in_rse: bool,
    pub chains: Vec<ChainProbe>,
    pub mcast_queue_len: usize,
    pub mcast_inflight: Option<u64>,
    pub rse_requested: Vec<PageId>,
    pub waiting_page: Option<PageId>,
    pub chain_holes: u64,
    pub recovery_rounds: u64,
}

impl RseProbe {
    /// True when nothing of the replicated-section machinery is left
    /// behind: the invariant every node must satisfy once a run (or a
    /// section) has fully retired.
    pub fn is_quiescent(&self) -> bool {
        !self.in_rse
            && self.chains.is_empty()
            && self.mcast_queue_len == 0
            && self.mcast_inflight.is_none()
            && self.rse_requested.is_empty()
            && self.waiting_page.is_none()
    }
}

/// Per-node RSE protocol state.
pub(crate) struct RseState {
    /// Inside a replicated section right now.
    pub(crate) active: bool,
    /// The (cluster-identical) vector time at replicated-section entry.
    pub(crate) entry_vc: Vc,
    /// Pages written during the current replicated section.
    pub(crate) dirty: Vec<PageId>,
    /// Valid notices of every node, from the exchanges at replicated-
    /// section entry. `valid_known[q][page]` is node `q`'s valid notice.
    pub(crate) valid_known: Vec<HashMap<PageId, Vc>>,
    /// Own pages whose valid notice changed since the last exchange.
    pub(crate) valid_changed: HashSet<PageId>,
    /// Pages this node has already sent a multicast request for, in the
    /// current replicated section.
    pub(crate) requested: HashSet<PageId>,
    /// Page the application process is blocked on (handler wakes it).
    pub(crate) waiting_page: Option<PageId>,
    /// Active reply chains, by request sequence number.
    pub(crate) chains: HashMap<u64, ChainState>,
    /// Total chain turns this node skipped over because the frame was lost
    /// (see [`ChainState::holes`]); monotone over the whole run, so the
    /// torture harness can tell whether a schedule exercised the gap path.
    pub(crate) chain_holes: u64,
    /// §5.4.2 recovery rounds this node's application initiated (timeouts
    /// that re-requested missing diffs); monotone over the run, likewise
    /// for harness assertions.
    pub(crate) recovery_rounds: u64,
    /// Total reply-chain turns this node's handler has observed (accepted
    /// frames of any chain, any page); monotone. The application's
    /// timeout path reads it to distinguish a *slow* chain (turns still
    /// advancing — keep waiting) from a *dead* one (counter static —
    /// trigger §5.4.2 recovery). At hundreds of nodes a serialized chain
    /// legitimately outlives `rse_timeout`, and firing n simultaneous
    /// recovery rounds there is an O(n²) message storm.
    pub(crate) chain_turns: u64,
    /// Replicated sections this node has entered (monotone; identical on
    /// every node, since every node executes every section). Stamped into
    /// `McastRequest` so the master can order a request against its own
    /// section entry: at large node counts early slaves fault — and elect
    /// requesters — before the master's fork loop has even returned, and
    /// those requests must be queued, not dropped as zombies.
    pub(crate) section_epoch: u64,
    /// Owner side (§5.4.2 recovery): for each page, the time of the last
    /// out-of-band reply this handler multicast, and the union of the
    /// interval indices those replies served. Recovery replies go to
    /// every handler, so one reply serves every concurrent requester;
    /// when a delayed request or chain makes all ~n waiters time out at
    /// once, this memory lets the owner answer the first request and
    /// suppress the other n-1 identical ones (see the handler's
    /// `RecoveryRequest` arm) instead of multicasting n copies — the
    /// flow-control improvement §8 of the paper calls for. Cleared at
    /// section entry; bounded by the timeout window so lost replies are
    /// still re-served on the requester's next retry.
    pub(crate) oob_replies: HashMap<PageId, (SimTime, Vec<u32>)>,
    /// Master only (§5.4.2): queued forwarded requests ...
    pub(crate) mcast_queue: VecDeque<QueuedRequest>,
    /// ... and the sequence number of the one in flight, if any.
    pub(crate) mcast_inflight: Option<u64>,
    pub(crate) mcast_next_seq: u64,
}

impl RseState {
    pub(crate) fn new(n: usize) -> RseState {
        RseState {
            active: false,
            entry_vc: Vc::zero(n),
            dirty: Vec::new(),
            valid_known: vec![HashMap::new(); n],
            valid_changed: HashSet::new(),
            requested: HashSet::new(),
            waiting_page: None,
            chains: HashMap::new(),
            chain_holes: 0,
            recovery_rounds: 0,
            chain_turns: 0,
            section_epoch: 0,
            oob_replies: HashMap::new(),
            mcast_queue: VecDeque::new(),
            mcast_inflight: None,
            mcast_next_seq: 0,
        }
    }
}

impl NodeState {
    /// Enter a replicated section: write-protect every dirty page so lazy
    /// diff creation cannot leak replicated writes (§5.3), and snapshot the
    /// entry vector time (identical on every node after the fork).
    pub fn enter_replicated(&mut self) {
        assert!(!self.rse.active, "nested replicated sections are not supported");
        self.rse.active = true;
        self.rse.section_epoch += 1;
        self.rse.entry_vc = self.con.vc.clone();
        self.rse.dirty.clear();
        self.rse.requested.clear();
        // Replies multicast in an earlier section may not cover the diffs
        // this section's faults will ask for.
        self.rse.oob_replies.clear();
        for &p in &self.data.dirty_pages.clone() {
            let page = self.page_mut(p);
            debug_assert!(page.twin.is_some());
            page.writable = false;
            page.rse_protected = true;
            // §5.3 write-protect: a TLB entry caching write permission for
            // this dirty page is now stale — the first write inside the
            // section must fault so the pre-section diff gets created.
            // Read-only entries stay right: the page remains valid.
            self.bump_page_write_prot_gen(p);
        }
    }

    /// Leave a replicated section: unprotect the dirty pages that were
    /// never written (§5.3: "the remaining write-protected dirty pages are
    /// unprotected and returned to their normal state") and retire the
    /// pages written during the section — their twins are dropped, they
    /// stay valid everywhere, and they produce no write notices.
    pub fn exit_replicated(&mut self) {
        assert!(self.rse.active);
        self.rse.active = false;
        for &p in &self.data.dirty_pages.clone() {
            let page = self.page_mut(p);
            if page.rse_protected {
                // Back to the normal post-interval-close state: twinned and
                // write-protected, so the next write faults and lands in
                // its own interval.
                page.rse_protected = false;
                page.writable = false;
            }
        }
        let entry_vc = self.rse.entry_vc.clone();
        let retired = std::mem::take(&mut self.rse.dirty);
        for &p in &retired {
            if let Some(twin) = self.page_mut(p).twin.take() {
                pool_recycle(&mut self.data.twin_pool, self.data.twin_pool_cap, twin);
            }
            let page = self.page_mut(p);
            page.writable = false;
            page.rse_dirty = false;
            page.valid = true;
            page.valid_at = entry_vc.clone();
            // Section retirement re-protected the page written in it; the
            // retired copy stays valid, so reads may keep their entries.
            self.bump_page_write_prot_gen(p);
        }
        // Pages retired by a replicated section are valid on *every* node
        // by construction — each node executed the same writes at the same
        // vector time — so their validity is common knowledge. Record it
        // locally for all peers instead of re-announcing it (with O(n)
        // vector clocks per entry, from all n nodes) in the next
        // valid-notice exchange: at hundreds of nodes those redundant
        // notices dominated the section's wire traffic.
        let n = self.n;
        for &p in &retired {
            self.rse.valid_changed.remove(&p);
            for q in 0..n {
                self.rse.valid_known[q].insert(p, entry_vc.clone());
            }
        }
        self.rse.waiting_page = None;
        self.rse.requested.clear();
        // Every fault of the section has been satisfied by now (SeqDone /
        // SeqGo have been exchanged), so any chain still tracked was wedged
        // by loss and will never advance: its requester already completed
        // via timeout recovery. Same for the master's forward queue — a
        // queued request whose requester recovered must not start a zombie
        // chain in a later section.
        self.rse.chains.clear();
        self.rse.mcast_queue.clear();
        self.rse.mcast_inflight = None;
    }

    /// Owner side of §5.4.2 recovery: must this request be answered with
    /// a fresh out-of-band multicast? Replies go to every handler, so a
    /// reply covering the same interval indices multicast within the
    /// last `window` already served this requester too — answering each
    /// of the ~n simultaneous timeouts individually is an O(n²) reply
    /// storm (the flow-control problem §8 of the paper points at).
    /// Records the reply (time, union of served indices) when it answers
    /// true. A requester whose copy of the recorded reply was lost on
    /// its link retries a full `rse_timeout` later — outside any
    /// `window <= rse_timeout`, so it is always re-served.
    pub(crate) fn oob_reply_due(
        &mut self,
        page: PageId,
        ivxs: &[u32],
        now: SimTime,
        window: Dur,
    ) -> bool {
        if let Some((at, served)) = self.rse.oob_replies.get(&page) {
            if now - *at <= window && ivxs.iter().all(|i| served.contains(i)) {
                return false;
            }
        }
        let entry = self.rse.oob_replies.entry(page).or_default();
        entry.0 = now;
        for &i in ivxs {
            if !entry.1.contains(&i) {
                entry.1.push(i);
            }
        }
        true
    }

    /// This node's valid-notice delta since the last exchange (§5.4.1).
    pub(crate) fn take_valid_delta(&mut self) -> Vec<(PageId, Vc)> {
        let mut out: Vec<(PageId, Vc)> = self
            .rse
            .valid_changed
            .drain()
            .map(|p| {
                let vc = self.data.pages.get(&p).map(|pg| pg.valid_at.clone());
                (p, vc)
            })
            .filter_map(|(p, vc)| vc.map(|vc| (p, vc)))
            .collect();
        out.sort_by_key(|(p, _)| *p);
        // Mirror into our own slot of the exchanged table.
        for (p, vc) in &out {
            self.rse.valid_known[self.node].insert(*p, vc.clone());
        }
        out
    }

    /// Merge exchanged valid-notice deltas into the table.
    pub(crate) fn merge_valid_deltas(&mut self, deltas: &[(NodeId, PageId, Vc)]) {
        for (q, p, vc) in deltas {
            self.rse.valid_known[*q].insert(*p, vc.clone());
        }
    }

    /// Requester election for a replicated-section fault on `p` (§5.4.1):
    /// every node computes, from the identical write notices and exchanged
    /// valid notices, which nodes fault and which diffs are missing on any
    /// of them. The faulting node with the lowest identifier requests the
    /// union. Returns `(requester, union_of_missing)`.
    pub(crate) fn elect_requester(&mut self, p: PageId) -> (NodeId, Vec<(NodeId, u32)>) {
        let n = self.n;
        let me = self.node;
        // Walk the page's write notices against every node's exchanged
        // valid notice. The snapshot buffer comes from the scratch arena
        // (`page.notices` cannot be borrowed across `self` accesses below),
        // and each node's missing set is folded into `wanted` in place —
        // the old per-node `collect` allocated n short-lived vectors per
        // election, a steady drumbeat at hundreds of nodes. `wanted` itself
        // escapes into the multicast request message, so it stays owned.
        let mut notices = self.scratch.notices.take();
        notices.extend_from_slice(&self.page_mut(p).notices);
        let zero = Vc::zero(n);
        let mut requester = None;
        let mut wanted: Vec<(NodeId, u32)> = Vec::new();
        for q in 0..n {
            let valid_q = if q == me {
                // Our own live valid notice (identical to what we exchanged,
                // plus deterministic updates all nodes replay identically).
                self.data.pages.get(&p).map(|pg| &pg.valid_at).unwrap_or(&zero)
            } else {
                self.rse.valid_known[q].get(&p).unwrap_or(&zero)
            };
            for &(o, i) in notices.iter() {
                if valid_q.covers(o, i) {
                    continue;
                }
                requester.get_or_insert(q);
                if !wanted.contains(&(o, i)) {
                    wanted.push((o, i));
                }
            }
        }
        self.scratch.notices.give(notices);
        wanted.sort();
        (requester.expect("election on a page nobody faults on"), wanted)
    }

    /// A read-only snapshot of the replicated-section protocol state, for
    /// invariant checking. Safe to take at any point; never perturbs the
    /// protocol.
    pub fn rse_probe(&self) -> RseProbe {
        let mut chains: Vec<ChainProbe> = self
            .rse
            .chains
            .iter()
            .map(|(&req_seq, c)| ChainProbe {
                req_seq,
                page: c.page,
                requester: c.requester,
                next_turn: c.next_turn,
                holes: c.holes,
            })
            .collect();
        chains.sort_by_key(|c| c.req_seq);
        let mut rse_requested: Vec<PageId> = self.rse.requested.iter().copied().collect();
        rse_requested.sort_unstable();
        RseProbe {
            node: self.node,
            in_rse: self.rse.active,
            chains,
            mcast_queue_len: self.rse.mcast_queue.len(),
            mcast_inflight: self.rse.mcast_inflight,
            rse_requested,
            waiting_page: self.rse.waiting_page,
            chain_holes: self.rse.chain_holes,
            recovery_rounds: self.rse.recovery_rounds,
        }
    }
}

#[cfg(test)]
mod tests {
    use repseq_stats::NodeId;

    use super::*;
    use crate::state::testutil::{fake_write, state};

    #[test]
    fn rse_entry_protects_dirty_pages_and_exit_restores() {
        let mut st = state(0, 2);
        fake_write(&mut st, 6, 0, 1);
        st.close_interval(); // the join before the section
        st.enter_replicated();
        {
            let page = st.page_mut(6);
            assert!(!page.writable && page.rse_protected && page.twin.is_some());
        }
        // Never written during the section: exit returns it to the normal
        // twinned, write-protected state.
        st.exit_replicated();
        let page = st.page_mut(6);
        assert!(!page.writable && !page.rse_protected && page.twin.is_some());
        assert_eq!(st.data.dirty_pages, vec![6]);
    }

    #[test]
    fn rse_dirty_pages_retire_silently() {
        let mut st = state(0, 2);
        st.enter_replicated();
        // Simulate a replicated write (the runtime layer does this dance).
        let ps = st.cfg.page_size;
        {
            let page = st.page_mut(8);
            let data = page.materialize(ps, None).to_vec();
            page.twin = Some(data.into_boxed_slice());
            page.writable = true;
            page.rse_dirty = true;
        }
        let gen_before = st.prot_gen();
        st.rse.dirty.push(8);
        st.exit_replicated();
        assert!(st.prot_gen() > gen_before, "retiring replicated writes must invalidate the TLB");
        let entry_vc = st.rse.entry_vc.clone();
        let page = st.page_mut(8);
        assert!(page.valid && !page.writable && page.twin.is_none());
        assert_eq!(page.valid_at, entry_vc);
        assert!(page.own_undiffed.is_empty(), "no write notices for replicated writes");
        assert!(!st.data.dirty_pages.contains(&8));
    }

    #[test]
    fn serve_during_rse_excludes_replicated_writes() {
        // The §5.3 regression, both orders. A page is dirtied before the
        // join (byte 0) and written during the replicated section (byte 1).
        // The diff served for the pre-section interval must contain ONLY
        // byte 0 — lazy diff creation must not leak the replicated write.

        // Order A: the replicated write happens first.
        let mut st = state(0, 2);
        fake_write(&mut st, 3, 0, 7);
        st.close_interval(); // join
        st.enter_replicated();
        fake_write(&mut st, 3, 1, 9); // replicated write → pre-diff + re-twin
        let (_, entries) = st.serve_diff_request(3, &[1]);
        assert_eq!(entries[0].diff.payload_bytes(), 1, "only the pre-section byte");
        assert_eq!(entries[0].diff.runs()[0].offset, 0);

        // Order B: the request arrives before the replicated write.
        let mut st = state(0, 2);
        fake_write(&mut st, 3, 0, 7);
        st.close_interval();
        st.enter_replicated();
        let (_, entries) = st.serve_diff_request(3, &[1]);
        assert_eq!(entries[0].diff.payload_bytes(), 1);
        // The replicated write still works afterwards.
        fake_write(&mut st, 3, 1, 9);
        assert!(st.page_mut(3).rse_dirty);
        st.exit_replicated();
        assert_eq!(st.page_data(3)[0], 7);
        assert_eq!(st.page_data(3)[1], 9);
    }

    #[test]
    fn election_is_lowest_faulting_node_with_union() {
        let mut st = state(2, 4);
        // Page 3 has notices (0,1) and (1,1).
        let mut vc0 = Vc::zero(4);
        vc0.set(0, 1);
        let mut vc1 = Vc::zero(4);
        vc1.set(1, 1);
        st.apply_records(
            vec![
                crate::interval::IntervalRecord::new(0, 1, vc0.clone(), vec![3]),
                crate::interval::IntervalRecord::new(1, 1, vc1.clone(), vec![3]),
            ],
            &{
                let mut m = vc0.clone();
                m.merge(&vc1);
                m
            },
        );
        // Node 0 is missing only (1,1); node 1 is valid; node 3 missing
        // both. Node 2 (us) missing both.
        let mut v0 = Vc::zero(4);
        v0.set(0, 1);
        st.rse.valid_known[0].insert(3, v0);
        let mut v1 = Vc::zero(4);
        v1.set(0, 1);
        v1.set(1, 1);
        st.rse.valid_known[1].insert(3, v1);
        // node 3: no entry → zero.
        let (req, wanted) = st.elect_requester(3);
        assert_eq!(req, 0, "lowest faulting node requests");
        assert_eq!(wanted, vec![(0, 1), (1, 1)], "union of everyone's missing diffs");
    }

    /// The owner answers the first recovery request for a page, suppresses
    /// identical requests inside the window (one multicast already served
    /// every requester), and answers again once the window has passed — so
    /// a requester whose copy of the reply was lost is re-served on its
    /// next `rse_timeout` retry.
    #[test]
    fn oob_reply_dedups_within_window() {
        let mut st = state(1, 4);
        let w = Dur::from_millis(250);
        let t = |ms: u64| SimTime::ZERO + Dur::from_millis(ms);
        assert!(st.oob_reply_due(7, &[1, 2], t(0), w), "first request is served");
        assert!(!st.oob_reply_due(7, &[1, 2], t(100), w), "identical request suppressed");
        assert!(!st.oob_reply_due(7, &[2], t(100), w), "subset suppressed too");
        assert!(st.oob_reply_due(7, &[3], t(100), w), "an unserved index must be served");
        assert!(!st.oob_reply_due(7, &[1, 3], t(200), w), "served union accumulates");
        assert!(st.oob_reply_due(9, &[1], t(100), w), "other pages are independent");
        assert!(st.oob_reply_due(7, &[1, 2], t(500), w), "window expiry re-serves");
        // Section entry wipes the memory: new section, new diffs.
        st.enter_replicated();
        st.exit_replicated();
        st.enter_replicated();
        assert!(st.oob_reply_due(7, &[1], t(501), w), "cleared at section entry");
    }

    #[test]
    fn valid_delta_roundtrip() {
        let mut st = state(1, 2);
        fake_write(&mut st, 2, 0, 1);
        st.close_interval();
        let delta = st.take_valid_delta();
        assert_eq!(delta.len(), 1);
        assert_eq!(delta[0].0, 2);
        assert!(delta[0].1.covers(1, 1));
        // Drained: next delta is empty.
        assert!(st.take_valid_delta().is_empty());
        // Mirrored into own table slot.
        assert!(st.rse.valid_known[1].contains_key(&2));
        // Merging into another node's state.
        let mut other = state(0, 2);
        let table: Vec<(NodeId, PageId, Vc)> =
            delta.into_iter().map(|(p, vc)| (1usize, p, vc)).collect();
        other.merge_valid_deltas(&table);
        assert!(other.rse.valid_known[1][&2].covers(1, 1));
    }
}
