//! The consistency layer: vector time, interval records and write notices
//! (§5.1 and the LRC substrate of §2).
//!
//! This layer owns *what happened before what*: the node's vector time,
//! every interval record it knows (own and remote), and the write set of
//! the currently open interval. It decides when pages must be invalidated
//! (a write notice the local copy does not cover) but delegates the actual
//! page bookkeeping — twins, diffs, protections — to the data plane.

use repseq_sim::Dur;

use crate::interval::{IntervalRecord, IntervalStore, PageId};
use crate::state::NodeState;
use crate::vc::Vc;

/// Interval/vector-clock state: one node's knowledge of the
/// happened-before order of writes.
pub(crate) struct Consistency {
    /// Current vector time. Entry `node` counts closed intervals.
    pub(crate) vc: Vc,
    /// Every interval record known, own and remote.
    pub(crate) intervals: IntervalStore,
    /// Pages written (write-faulted) during the current, still-open
    /// interval. Consumed into write notices at the interval close; pages
    /// are then re-protected so that a later write faults again and is
    /// attributed to its own interval.
    pub(crate) cur_writes: Vec<PageId>,
}

impl Consistency {
    pub(crate) fn new(n: usize) -> Consistency {
        Consistency { vc: Vc::zero(n), intervals: IntervalStore::new(n), cur_writes: Vec::new() }
    }
}

impl NodeState {
    /// Close the current interval (performed at every release and acquire).
    /// If pages were written, records the interval with write notices for
    /// exactly the pages written during it, re-protects them (so a later
    /// write faults and is attributed to its own interval), and advances
    /// the local entry of the vector time.
    pub fn close_interval(&mut self) {
        if self.con.cur_writes.is_empty() {
            return;
        }
        let node = self.node;
        let ivx = self.con.vc.get(node) + 1;
        self.con.vc.set(node, ivx);
        let mut pages = std::mem::take(&mut self.con.cur_writes);
        pages.sort_unstable();
        for &p in &pages {
            let page = self.page_mut(p);
            page.notices.push((node, ivx));
            page.own_undiffed.push(ivx);
            page.written_cur = false;
            page.writable = false;
            // Our copy trivially contains our own writes: advance the valid
            // notice so elections and fault logic treat own intervals as
            // covered.
            page.valid_at.set(node, ivx);
            self.rse.valid_changed.insert(p);
            // The written page was re-protected; it stays valid and
            // readable, so only writable translations go stale.
            self.bump_page_write_prot_gen(p);
        }
        let rec = IntervalRecord::new(node, ivx, self.con.vc.clone(), pages);
        let inserted = self.con.intervals.insert(rec);
        debug_assert!(inserted);
    }

    /// Incorporate interval records received at an acquire (barrier
    /// departure, lock grant, fork). Closes the current interval first
    /// (an acquire starts a new interval), inserts the records, posts write
    /// notices and invalidates uncovered pages — creating diffs for our own
    /// concurrent modifications first (the multiple-writer protocol).
    /// Returns the modeled cost.
    pub fn apply_records(&mut self, records: Vec<IntervalRecord>, sender_vc: &Vc) -> Dur {
        self.close_interval();
        let mut cost = Dur::ZERO;
        for rec in records {
            // Records of our own intervals (echoed back by a barrier
            // manager or lock chain) are already known and skipped by the
            // duplicate check below. Keeping a handle on the shared
            // payload (an Arc bump, not a deep copy) lets `insert` consume
            // the record while we still walk its pages.
            let (owner, ivx, data) = (rec.owner, rec.ivx, std::sync::Arc::clone(&rec.data));
            if !self.con.intervals.insert(rec) {
                continue;
            }
            for &p in &data.pages {
                let page = self.page_mut(p);
                page.notices.push((owner, ivx));
                if page.valid && !page.valid_at.covers(owner, ivx) {
                    // Invalidate. If we have concurrent un-diffed writes,
                    // diff them now so they stay separable (§5.1).
                    if page.twin.is_some() {
                        cost += self.create_own_diff(p);
                        let page = self.page_mut(p);
                        page.valid = false;
                        page.writable = false;
                    } else {
                        page.valid = false;
                        page.writable = false;
                    }
                    self.bump_page_prot_gen(p); // write-notice invalidation
                }
            }
        }
        self.con.vc.merge(sender_vc);
        cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::testutil::{fake_write, state};

    #[test]
    fn close_interval_records_write_notices() {
        let mut st = state(0, 2);
        fake_write(&mut st, 3, 10, 9);
        st.close_interval();
        assert_eq!(st.con.vc.get(0), 1);
        assert_eq!(st.con.intervals.known(0), 1);
        assert_eq!(st.con.intervals.get(0, 1).pages, vec![3]);
        let page = st.page_mut(3);
        assert_eq!(page.notices, vec![(0, 1)]);
        assert_eq!(page.own_undiffed, vec![1]);
        assert!(page.valid_at.covers(0, 1));
    }

    #[test]
    fn empty_interval_is_not_recorded() {
        let mut st = state(0, 2);
        st.close_interval();
        assert_eq!(st.con.vc.get(0), 0);
        assert_eq!(st.con.intervals.known(0), 0);
    }

    #[test]
    fn apply_records_invalidates_uncovered_pages() {
        let mut st = state(1, 2);
        let mut vc = Vc::zero(2);
        vc.set(0, 1);
        let rec = IntervalRecord::new(0, 1, vc.clone(), vec![7]);
        st.apply_records(vec![rec], &vc);
        let page = st.page_mut(7);
        assert!(!page.valid);
        assert_eq!(page.notices, vec![(0, 1)]);
        assert!(st.con.vc.covers(0, 1));
    }

    #[test]
    fn apply_records_diffs_concurrent_local_writes_first() {
        // False sharing: we wrote the page, a concurrent interval of node 0
        // also wrote it. Our writes must be diffed before invalidation.
        let mut st = state(1, 2);
        fake_write(&mut st, 7, 100, 42);
        let mut vc = Vc::zero(2);
        vc.set(0, 1);
        let rec = IntervalRecord::new(0, 1, vc.clone(), vec![7]);
        let cost = st.apply_records(vec![rec], &vc);
        assert!(cost > Dur::ZERO, "diff creation must be charged");
        // apply_records closed our interval (ivx 1 of node 1) first.
        assert!(st.data.diffs.contains_key(&(7, 1, 1)));
        let page = st.page_mut(7);
        assert!(!page.valid);
        assert!(page.twin.is_none());
    }

    #[test]
    fn rewrite_after_close_lands_in_its_own_interval() {
        // The spurious-write-notice regression: a page written in interval
        // 1 but not afterwards must never be noticed in interval 2.
        let mut st = state(0, 2);
        fake_write(&mut st, 6, 0, 1);
        st.close_interval();
        // Another page is written in interval 2; page 6 is untouched.
        fake_write(&mut st, 9, 0, 1);
        st.close_interval();
        assert_eq!(st.con.intervals.get(0, 1).pages, vec![6]);
        assert_eq!(st.con.intervals.get(0, 2).pages, vec![9]);
        assert_eq!(st.page_mut(6).notices, vec![(0, 1)]);
        // And a page re-written later faults again and is re-noticed.
        fake_write(&mut st, 6, 1, 2);
        st.close_interval();
        assert_eq!(st.con.intervals.get(0, 3).pages, vec![6]);
        assert_eq!(st.page_mut(6).notices, vec![(0, 1), (0, 3)]);
        assert_eq!(st.page_mut(6).own_undiffed, vec![1, 3]);
    }
}
