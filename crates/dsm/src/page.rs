//! Per-node page state: the software analogue of the VM page table plus
//! the TreadMarks bookkeeping (twin, write notices, valid timestamp).

use std::cell::UnsafeCell;
use std::sync::Arc;

use repseq_stats::NodeId;

use crate::diff::Diff;
use crate::vc::Vc;

/// The bytes of one page behind an interior-mutable cell, so the fast path
/// (software TLB, page guards) can read and write them without holding the
/// node-state mutex.
struct PageCell(UnsafeCell<Box<[u8]>>);

// Safety: the simulation engine runs exactly one process at a time (the
// channel handoff between processes is a happens-before edge), so at any
// instant at most one thread touches any page cell. See the safety
// contract on [`PageBuf::slice_mut`] for the aliasing side.
unsafe impl Send for PageCell {}
unsafe impl Sync for PageCell {}

/// A cheap-to-clone handle to one page's contents. `PageMeta::data` holds
/// one; the software TLB and the page guards hold clones, so a protection
/// change never invalidates the *bytes* a stale handle points at — stale
/// handles are fenced off by the protection generation counter instead.
pub struct PageBuf {
    cell: Arc<PageCell>,
}

impl PageBuf {
    /// A new buffer owning `bytes`.
    pub(crate) fn new(bytes: Box<[u8]>) -> PageBuf {
        PageBuf { cell: Arc::new(PageCell(UnsafeCell::new(bytes))) }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.slice().len()
    }

    /// Whether the buffer is empty (it never is for a real page).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Read access to the page bytes.
    ///
    /// Safety relies on the engine's serialization: exactly one simulated
    /// process runs at a time, and no caller keeps a returned slice alive
    /// across a yielding call (every `&[u8]` produced here is consumed
    /// within one straight-line access), so no mutable alias can exist
    /// while the slice is read.
    #[inline]
    pub(crate) fn slice(&self) -> &[u8] {
        unsafe { &*self.cell.0.get() }
    }

    /// Write access to the page bytes.
    ///
    /// Safety: same contract as [`PageBuf::slice`] — engine serialization
    /// plus the no-slice-across-yields rule mean at most one reference
    /// produced by this cell is live at any instant.
    #[inline]
    #[allow(clippy::mut_from_ref)]
    pub(crate) fn slice_mut(&self) -> &mut [u8] {
        unsafe { &mut *self.cell.0.get() }
    }
}

impl Clone for PageBuf {
    fn clone(&self) -> PageBuf {
        PageBuf { cell: Arc::clone(&self.cell) }
    }
}

impl std::fmt::Debug for PageBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PageBuf({} bytes)", self.len())
    }
}

/// One node's view of one shared page.
#[derive(Debug)]
pub struct PageMeta {
    /// Page contents. `None` means the page still holds its initial image
    /// (materialized lazily on first write or diff application).
    pub data: Option<PageBuf>,
    /// The twin saved at the first write since the page was last diffed.
    pub twin: Option<Box<[u8]>>,
    /// Software write permission: a write to a non-writable page traps.
    pub writable: bool,
    /// Software validity: a read of an invalid page traps.
    pub valid: bool,
    /// The *valid notice* (§5.4.1): this node's vector time when the page
    /// was last brought fully up to date. A write notice `(owner, ivx)` is
    /// incorporated in the local copy iff `valid_at.covers(owner, ivx)`.
    pub valid_at: Vc,
    /// Every write notice known for this page, own and remote.
    pub notices: Vec<(NodeId, u32)>,
    /// Own closed intervals that have write notices for this page but no
    /// diff yet (lazy diff creation). The eventual diff against the twin
    /// covers all of them.
    pub own_undiffed: Vec<u32>,
    /// Written during the current (open) interval.
    pub written_cur: bool,
    /// Written during the current replicated sequential section; such
    /// writes produce no write notices and no diffs (§5.3).
    pub rse_dirty: bool,
    /// Dirty page write-protected at replicated-section entry (§5.3): the
    /// first write inside the section must create the pre-section diff
    /// before the page may change.
    pub rse_protected: bool,
}

impl PageMeta {
    /// A fresh page view: valid, read-only, holding the initial image.
    pub fn new(n_nodes: usize) -> PageMeta {
        PageMeta {
            data: None,
            twin: None,
            writable: false,
            valid: true,
            valid_at: Vc::zero(n_nodes),
            notices: Vec::new(),
            own_undiffed: Vec::new(),
            written_cur: false,
            rse_dirty: false,
            rse_protected: false,
        }
    }

    /// Materialize the page contents, starting from `initial` (or zeros).
    pub fn materialize(&mut self, page_size: usize, initial: Option<&Arc<[u8]>>) -> &mut [u8] {
        self.buf(page_size, initial).slice_mut()
    }

    /// Materialize and return the shared handle to the page contents.
    pub fn buf(&mut self, page_size: usize, initial: Option<&Arc<[u8]>>) -> &PageBuf {
        if self.data.is_none() {
            let bytes = match initial {
                Some(img) => {
                    debug_assert_eq!(img.len(), page_size);
                    img.to_vec().into_boxed_slice()
                }
                None => vec![0u8; page_size].into_boxed_slice(),
            };
            self.data = Some(PageBuf::new(bytes));
        }
        self.data.as_ref().unwrap()
    }

    /// Write notices not yet incorporated in the local copy: the fetch set
    /// of a page fault.
    pub fn missing_notices(&self) -> Vec<(NodeId, u32)> {
        self.notices
            .iter()
            .copied()
            .filter(|&(owner, ivx)| !self.valid_at.covers(owner, ivx))
            .collect()
    }

    /// Would a node whose valid notice for this page is `valid_at` fault,
    /// given this page's notices? (Used for requester election, §5.4.1 —
    /// every node evaluates this with every other node's exchanged valid
    /// notice.)
    pub fn faults_with(&self, valid_at: &Vc) -> bool {
        self.notices.iter().any(|&(owner, ivx)| !valid_at.covers(owner, ivx))
    }

    /// The notices a node with valid notice `valid_at` is missing.
    pub fn missing_with(&self, valid_at: &Vc) -> Vec<(NodeId, u32)> {
        self.notices.iter().copied().filter(|&(owner, ivx)| !valid_at.covers(owner, ivx)).collect()
    }
}

/// A diff as shipped and cached: the owner, *every* interval of the owner
/// the diff covers, and the data. With lazy diff creation one diff can
/// cover several intervals of its writer (the page stayed twinned across
/// interval closes); shipping the full coverage lets the receiver record
/// exactly how far its copy now reaches — re-fetching the same bytes under
/// a different interval tag (which could clobber newer local writes) is
/// thereby impossible.
#[derive(Debug)]
pub struct DiffRecord {
    pub owner: NodeId,
    /// Ascending interval indices of `owner` whose write notices this diff
    /// satisfies.
    pub covers: Vec<u32>,
    pub diff: Diff,
}

impl DiffRecord {
    /// Highest covered interval.
    pub(crate) fn max_ivx(&self) -> u32 {
        *self.covers.last().expect("a diff covers at least one interval")
    }
}

/// Shared handle to a cached diff.
pub type DiffEntry = Arc<DiffRecord>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_page_is_valid_readonly_zero() {
        let mut p = PageMeta::new(2);
        assert!(p.valid && !p.writable);
        let data = p.materialize(64, None);
        assert!(data.iter().all(|&b| b == 0));
    }

    #[test]
    fn materialize_uses_initial_image() {
        let img: Arc<[u8]> = vec![7u8; 16].into();
        let mut p = PageMeta::new(2);
        let data = p.materialize(16, Some(&img));
        assert!(data.iter().all(|&b| b == 7));
    }

    #[test]
    fn missing_notices_respects_valid_at() {
        let mut p = PageMeta::new(3);
        p.notices = vec![(0, 1), (0, 2), (1, 1)];
        p.valid_at.set(0, 1);
        assert_eq!(p.missing_notices(), vec![(0, 2), (1, 1)]);
        p.valid_at.set(0, 2);
        p.valid_at.set(1, 1);
        assert!(p.missing_notices().is_empty());
    }

    #[test]
    fn faults_with_models_other_nodes() {
        let mut p = PageMeta::new(2);
        p.notices = vec![(0, 3)];
        let mut fresh = Vc::zero(2);
        assert!(p.faults_with(&fresh));
        fresh.set(0, 3);
        assert!(!p.faults_with(&fresh));
        assert_eq!(p.missing_with(&Vc::zero(2)), vec![(0, 3)]);
    }
}
