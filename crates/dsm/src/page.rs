//! Per-node page state: the software analogue of the VM page table plus
//! the TreadMarks bookkeeping (twin, write notices, valid timestamp).

use std::sync::Arc;

use repseq_stats::NodeId;

use crate::diff::Diff;
use crate::vc::Vc;

/// One node's view of one shared page.
#[derive(Debug)]
pub struct PageMeta {
    /// Page contents. `None` means the page still holds its initial image
    /// (materialized lazily on first write or diff application).
    pub data: Option<Box<[u8]>>,
    /// The twin saved at the first write since the page was last diffed.
    pub twin: Option<Box<[u8]>>,
    /// Software write permission: a write to a non-writable page traps.
    pub writable: bool,
    /// Software validity: a read of an invalid page traps.
    pub valid: bool,
    /// The *valid notice* (§5.4.1): this node's vector time when the page
    /// was last brought fully up to date. A write notice `(owner, ivx)` is
    /// incorporated in the local copy iff `valid_at.covers(owner, ivx)`.
    pub valid_at: Vc,
    /// Every write notice known for this page, own and remote.
    pub notices: Vec<(NodeId, u32)>,
    /// Own closed intervals that have write notices for this page but no
    /// diff yet (lazy diff creation). The eventual diff against the twin
    /// covers all of them.
    pub own_undiffed: Vec<u32>,
    /// Written during the current (open) interval.
    pub written_cur: bool,
    /// Written during the current replicated sequential section; such
    /// writes produce no write notices and no diffs (§5.3).
    pub rse_dirty: bool,
    /// Dirty page write-protected at replicated-section entry (§5.3): the
    /// first write inside the section must create the pre-section diff
    /// before the page may change.
    pub rse_protected: bool,
}

impl PageMeta {
    /// A fresh page view: valid, read-only, holding the initial image.
    pub fn new(n_nodes: usize) -> PageMeta {
        PageMeta {
            data: None,
            twin: None,
            writable: false,
            valid: true,
            valid_at: Vc::zero(n_nodes),
            notices: Vec::new(),
            own_undiffed: Vec::new(),
            written_cur: false,
            rse_dirty: false,
            rse_protected: false,
        }
    }

    /// Materialize the page contents, starting from `initial` (or zeros).
    pub fn materialize(&mut self, page_size: usize, initial: Option<&Arc<[u8]>>) -> &mut [u8] {
        if self.data.is_none() {
            let buf = match initial {
                Some(img) => {
                    debug_assert_eq!(img.len(), page_size);
                    img.to_vec().into_boxed_slice()
                }
                None => vec![0u8; page_size].into_boxed_slice(),
            };
            self.data = Some(buf);
        }
        self.data.as_mut().unwrap()
    }

    /// Write notices not yet incorporated in the local copy: the fetch set
    /// of a page fault.
    pub fn missing_notices(&self) -> Vec<(NodeId, u32)> {
        self.notices
            .iter()
            .copied()
            .filter(|&(owner, ivx)| !self.valid_at.covers(owner, ivx))
            .collect()
    }

    /// Would a node whose valid notice for this page is `valid_at` fault,
    /// given this page's notices? (Used for requester election, §5.4.1 —
    /// every node evaluates this with every other node's exchanged valid
    /// notice.)
    pub fn faults_with(&self, valid_at: &Vc) -> bool {
        self.notices.iter().any(|&(owner, ivx)| !valid_at.covers(owner, ivx))
    }

    /// The notices a node with valid notice `valid_at` is missing.
    pub fn missing_with(&self, valid_at: &Vc) -> Vec<(NodeId, u32)> {
        self.notices.iter().copied().filter(|&(owner, ivx)| !valid_at.covers(owner, ivx)).collect()
    }
}

/// A diff as shipped and cached: the owner, *every* interval of the owner
/// the diff covers, and the data. With lazy diff creation one diff can
/// cover several intervals of its writer (the page stayed twinned across
/// interval closes); shipping the full coverage lets the receiver record
/// exactly how far its copy now reaches — re-fetching the same bytes under
/// a different interval tag (which could clobber newer local writes) is
/// thereby impossible.
#[derive(Debug)]
pub struct DiffRecord {
    pub owner: NodeId,
    /// Ascending interval indices of `owner` whose write notices this diff
    /// satisfies.
    pub covers: Vec<u32>,
    pub diff: Diff,
}

impl DiffRecord {
    /// Highest covered interval.
    pub fn max_ivx(&self) -> u32 {
        *self.covers.last().expect("a diff covers at least one interval")
    }
}

/// Shared handle to a cached diff.
pub type DiffEntry = Arc<DiffRecord>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_page_is_valid_readonly_zero() {
        let mut p = PageMeta::new(2);
        assert!(p.valid && !p.writable);
        let data = p.materialize(64, None);
        assert!(data.iter().all(|&b| b == 0));
    }

    #[test]
    fn materialize_uses_initial_image() {
        let img: Arc<[u8]> = vec![7u8; 16].into();
        let mut p = PageMeta::new(2);
        let data = p.materialize(16, Some(&img));
        assert!(data.iter().all(|&b| b == 7));
    }

    #[test]
    fn missing_notices_respects_valid_at() {
        let mut p = PageMeta::new(3);
        p.notices = vec![(0, 1), (0, 2), (1, 1)];
        p.valid_at.set(0, 1);
        assert_eq!(p.missing_notices(), vec![(0, 2), (1, 1)]);
        p.valid_at.set(0, 2);
        p.valid_at.set(1, 1);
        assert!(p.missing_notices().is_empty());
    }

    #[test]
    fn faults_with_models_other_nodes() {
        let mut p = PageMeta::new(2);
        p.notices = vec![(0, 3)];
        let mut fresh = Vc::zero(2);
        assert!(p.faults_with(&fresh));
        fresh.set(0, 3);
        assert!(!p.faults_with(&fresh));
        assert_eq!(p.missing_with(&Vc::zero(2)), vec![(0, 3)]);
    }
}
