//! DSM protocol cost parameters.

use repseq_sim::Dur;

/// How multicast diff replies are paced during replicated sequential
/// execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowControl {
    /// The paper's conservative scheme (§5.4.2): requests serialized at the
    /// master, replies multicast one node at a time in identifier order,
    /// null acknowledgments from nodes with nothing to send.
    Serialized,
    /// The idealized scheme the paper's §8 conjectures ("strategies that
    /// allow more concurrency in message delivery"): forwards are not
    /// serialized and every holder multicasts immediately. Physically
    /// optimistic (ignores receive-buffer overflow) — used by the
    /// flow-control ablation to bound the conjectured improvement.
    Concurrent,
}

/// How sequential sections execute — which [`crate::SeqExecStrategy`] the
/// master dispatches to (selected per run; see §4 and §6 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SeqExecMode {
    /// The base system: the master executes sequential sections alone;
    /// every other node pays the contention of demand-fetching the results
    /// in the following parallel section.
    MasterOnly,
    /// Replicated sequential execution (§5, the paper's contribution):
    /// every node executes the section, with valid-notice exchange,
    /// requester election and the flow-controlled multicast diff protocol.
    #[default]
    Rse,
    /// Eager master-push: the master executes the section alone, then
    /// multicasts every page the section wrote. The "send the results to
    /// everyone" alternative §2 argues against — whole pages travel
    /// instead of diffs, and the master's link serializes the update.
    MasterPush,
}

/// Parameters of the simulated TreadMarks runtime.
///
/// The time costs model an 800 MHz Athlon running the TreadMarks user-level
/// library over UDP (the paper's testbed): page-protection traps and
/// handler dispatch cost tens of microseconds, twin/diff work is a few
/// memory passes over a 4 KB page.
#[derive(Debug, Clone)]
pub struct DsmConfig {
    /// Shared page size in bytes.
    pub page_size: usize,
    /// Size of the shared heap in pages.
    pub heap_pages: u32,
    /// Cost of taking a page fault (trap + handler entry/exit).
    pub fault_overhead: Dur,
    /// Cost per byte of creating a twin (one page copy).
    pub twin_ns_per_byte: f64,
    /// Cost per byte of scanning a page against its twin to make a diff.
    pub diff_create_ns_per_byte: f64,
    /// Cost per payload byte of applying a diff.
    pub diff_apply_ns_per_byte: f64,
    /// Handler dispatch cost per protocol request served.
    pub service_overhead: Dur,
    /// Processing cost per synchronization message (barrier, lock, fork).
    pub sync_overhead: Dur,
    /// Receive timeout before the replicated-section recovery path kicks in
    /// (§5.4.2: "a rather expensive mechanism ... almost never invoked").
    pub rse_timeout: Dur,
    /// Maximum §5.4.2 recovery rounds for one fault before the node gives
    /// up with a diagnostic panic. Every round re-requests every missing
    /// diff, so a recovery that has not converged after this many rounds
    /// indicates a protocol bug or a dead peer, not loss.
    pub rse_max_retries: u32,
    /// Multicast pacing during replicated sections.
    pub flow_control: FlowControl,
    /// How sequential sections execute ([`DsmNode::run_sequential`]
    /// dispatches on this).
    ///
    /// [`DsmNode::run_sequential`]: crate::DsmNode::run_sequential
    pub seq_exec: SeqExecMode,
    /// Enable the per-application-process software TLB (host-time fast
    /// path; invisible to virtual time). On by default; the MMU bench
    /// turns it off to measure the locked baseline, and equivalence tests
    /// turn it off to prove protocol behaviour is identical either way.
    pub tlb_enabled: bool,
    /// Test-only fault injection: suppress every protection-generation
    /// bump, leaving stale software-TLB entries live across protection
    /// changes. Exists so the torture harness can demonstrate that the
    /// coherence oracle catches exactly this class of bug. Never enable
    /// outside tests.
    pub tlb_break_generation_bumps: bool,
}

impl Default for DsmConfig {
    fn default() -> Self {
        DsmConfig {
            page_size: 4096,
            heap_pages: 16 * 1024, // 64 MB shared heap
            fault_overhead: Dur::from_micros(25),
            twin_ns_per_byte: 0.25,
            diff_create_ns_per_byte: 1.0,
            diff_apply_ns_per_byte: 0.5,
            service_overhead: Dur::from_micros(10),
            sync_overhead: Dur::from_micros(8),
            rse_timeout: Dur::from_millis(500),
            rse_max_retries: 32,
            flow_control: FlowControl::Serialized,
            seq_exec: SeqExecMode::Rse,
            tlb_enabled: true,
            tlb_break_generation_bumps: false,
        }
    }
}

impl DsmConfig {
    /// Cost of copying one page into a twin.
    pub fn twin_cost(&self) -> Dur {
        Dur::from_secs_f64(self.twin_ns_per_byte * self.page_size as f64 * 1e-9)
    }

    /// Cost of scanning one page against its twin.
    pub fn diff_create_cost(&self) -> Dur {
        Dur::from_secs_f64(self.diff_create_ns_per_byte * self.page_size as f64 * 1e-9)
    }

    /// Cost of applying `payload` bytes of diff.
    pub fn diff_apply_cost(&self, payload: u64) -> Dur {
        Dur::from_secs_f64(self.diff_apply_ns_per_byte * payload as f64 * 1e-9)
    }

    /// Total shared heap size in bytes.
    pub fn heap_bytes(&self) -> u64 {
        self.heap_pages as u64 * self.page_size as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn costs_scale_with_page_size() {
        let cfg = DsmConfig::default();
        assert_eq!(cfg.twin_cost(), Dur::from_nanos(1024));
        assert_eq!(cfg.diff_create_cost(), Dur::from_nanos(4096));
        assert_eq!(cfg.diff_apply_cost(1000), Dur::from_nanos(500));
        assert_eq!(cfg.heap_bytes(), 64 * 1024 * 1024);
    }
}
