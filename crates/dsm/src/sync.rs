//! The synchronization layer: the centralized barrier and the distributed
//! locks, on both the application side (blocking operations on `DsmNode`)
//! and the manager/holder side (the decision logic the handler process
//! runs).

use std::collections::{HashMap, HashSet, VecDeque};

use repseq_sim::{Pid, Stopped};
use repseq_stats::{MsgClass, NodeId};

use crate::interval::IntervalRecord;
use crate::msg::DsmMsg;
use crate::race::SyncEdge;
use crate::runtime::DsmNode;
use crate::state::NodeState;
use crate::vc::Vc;

/// Pending lock-acquire request queued at the current holder.
#[derive(Debug, Clone)]
pub(crate) struct PendingAcquire {
    pub(crate) from: NodeId,
    pub(crate) vc: Vc,
    pub(crate) reply_to: Pid,
}

/// Barrier-manager and lock state.
pub(crate) struct SyncState {
    /// Barrier manager (node 0 only): arrivals of the current episode.
    pub(crate) barrier_arrivals: Vec<(NodeId, Vc, Pid)>,
    /// Locks whose token is at this node.
    pub(crate) lock_token: HashSet<u32>,
    /// Locks currently held by this node's application.
    pub(crate) lock_held: HashSet<u32>,
    /// Acquire requests waiting for this node to release.
    pub(crate) lock_pending: HashMap<u32, VecDeque<PendingAcquire>>,
    /// Manager-side: the node an acquire should be forwarded to.
    pub(crate) lock_last: HashMap<u32, NodeId>,
}

impl SyncState {
    pub(crate) fn new() -> SyncState {
        SyncState {
            barrier_arrivals: Vec::new(),
            lock_token: HashSet::new(),
            lock_held: HashSet::new(),
            lock_pending: HashMap::new(),
            lock_last: HashMap::new(),
        }
    }
}

/// What the handler should do with an incoming lock acquire.
pub(crate) enum LockAction {
    Queued,
    Forward(usize),
    Grant { records: Vec<IntervalRecord>, vc: Vc },
}

/// Lock logic at the node believed to hold the token.
pub(crate) fn holder_logic(
    s: &mut NodeState,
    lock: u32,
    from: usize,
    vc: &Vc,
    reply_to: Pid,
) -> LockAction {
    if s.sync.lock_token.contains(&lock) && !s.sync.lock_held.contains(&lock) {
        s.sync.lock_token.remove(&lock);
        let records = s.con.intervals.records_unknown_to(vc);
        LockAction::Grant { records, vc: s.con.vc.clone() }
    } else {
        // Held by the local application, or the token is still in flight
        // to us: queue; the release path grants.
        s.sync.lock_pending.entry(lock).or_default().push_back(PendingAcquire {
            from,
            vc: vc.clone(),
            reply_to,
        });
        LockAction::Queued
    }
}

impl DsmNode {
    // ---------------------------------------------------------------
    // Barriers (centralized manager at node 0's handler)
    // ---------------------------------------------------------------

    /// Global barrier: a release (interval close + arrival) followed by an
    /// acquire (departure records merged).
    pub fn barrier(&self) -> Result<(), Stopped> {
        let node = self.node();
        self.race_sync(SyncEdge::BarrierArrive);
        let msg = {
            let mut st = self.st.lock();
            st.close_interval();
            let records = st.con.intervals.records_unknown_to(&st.exec.master_known);
            DsmMsg::BarrierArrive {
                from: node,
                vc: st.con.vc.clone(),
                records,
                reply_to: self.ctx.pid(),
            }
        };
        self.ctx.charge(self.sync_cost());
        let size = msg.wire_size();
        if node == 0 {
            // The manager lives on this node: no network traffic.
            self.nic.local(&self.ctx, self.topo.handler_pids[0], msg);
        } else {
            self.nic.unicast(&self.ctx, 0, self.topo.handler_pids[0], MsgClass::Sync, size, msg);
        }
        loop {
            let env = self.ctx.recv()?;
            match env.msg {
                DsmMsg::BarrierDepart { records, vc } => {
                    let cost = {
                        let mut st = self.st.lock();
                        let c = st.apply_records(records, &vc);
                        st.exec.master_known = vc;
                        c
                    };
                    self.ctx.charge(cost + self.sync_cost());
                    self.race_sync(SyncEdge::BarrierDepart);
                    return Ok(());
                }
                other => {
                    if !self.absorb_stray(other) {
                        panic!("node {node}: unexpected message at barrier");
                    }
                }
            }
        }
    }

    // ---------------------------------------------------------------
    // Locks (static manager, distributed FIFO queue)
    // ---------------------------------------------------------------

    /// The node managing lock `l`.
    pub(crate) fn lock_manager(&self, l: u32) -> NodeId {
        (l as usize) % self.topo.n
    }

    /// Acquire a lock (an acquire access in release consistency).
    pub fn lock(&self, l: u32) -> Result<(), Stopped> {
        let node = self.node();
        let local = {
            let mut st = self.st.lock();
            assert!(!st.sync.lock_held.contains(&l), "recursive lock acquire");
            if st.sync.lock_token.contains(&l) {
                // We were the last holder: re-acquire locally, no traffic,
                // no new consistency information.
                st.sync.lock_held.insert(l);
                true
            } else {
                false
            }
        };
        if local {
            // Still an acquire edge for the detector (it merges this
            // node's own release clock — a no-op for the HB relation).
            self.race_sync(SyncEdge::LockAcquire { lock: l });
            return Ok(());
        }
        let msg = {
            let st = self.st.lock();
            DsmMsg::LockAcquire {
                lock: l,
                from: node,
                vc: st.con.vc.clone(),
                reply_to: self.ctx.pid(),
                forwarded: false,
            }
        };
        let mgr = self.lock_manager(l);
        let size = msg.wire_size();
        self.ctx.charge(self.sync_cost());
        if mgr == node {
            self.nic.local(&self.ctx, self.topo.handler_pids[mgr], msg);
        } else {
            self.nic.unicast(
                &self.ctx,
                mgr,
                self.topo.handler_pids[mgr],
                MsgClass::Lock,
                size,
                msg,
            );
        }
        loop {
            let env = self.ctx.recv()?;
            match env.msg {
                DsmMsg::LockGrant { lock, records, vc } => {
                    debug_assert_eq!(lock, l);
                    let cost = {
                        let mut st = self.st.lock();
                        let c = st.apply_records(records, &vc);
                        st.sync.lock_held.insert(l);
                        st.sync.lock_token.insert(l);
                        c
                    };
                    self.ctx.charge(cost + self.sync_cost());
                    self.race_sync(SyncEdge::LockAcquire { lock: l });
                    return Ok(());
                }
                other => {
                    if !self.absorb_stray(other) {
                        panic!("node {node}: unexpected message while acquiring lock");
                    }
                }
            }
        }
    }

    /// Release a lock (a release access: closes the interval). If another
    /// node's acquire is queued here, the grant — with the consistency
    /// information the acquirer lacks — goes straight to it.
    pub fn unlock(&self, l: u32) -> Result<(), Stopped> {
        // The release edge must be recorded before the grant can move the
        // lock anywhere else.
        self.race_sync(SyncEdge::LockRelease { lock: l });
        let grant = {
            let mut st = self.st.lock();
            assert!(st.sync.lock_held.remove(&l), "releasing a lock we do not hold");
            st.close_interval();
            match st.sync.lock_pending.get_mut(&l).and_then(|q| q.pop_front()) {
                Some(req) => {
                    st.sync.lock_token.remove(&l);
                    let records = st.con.intervals.records_unknown_to(&req.vc);
                    Some((req, records, st.con.vc.clone()))
                }
                None => None,
            }
        };
        self.ctx.charge(self.sync_cost());
        if let Some((req, records, vc)) = grant {
            let msg = DsmMsg::LockGrant { lock: l, records, vc };
            let size = msg.wire_size();
            self.nic.unicast(&self.ctx, req.from, req.reply_to, MsgClass::Lock, size, msg);
        }
        Ok(())
    }
}
