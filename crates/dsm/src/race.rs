//! Race-detection hooks: the DSM side of `repseq-check::race`.
//!
//! The runtime does not detect races itself. Instead, every shared-memory
//! access and every synchronization operation is (optionally) reported to
//! a [`RaceSink`] installed on the cluster. The sink sees a serialized
//! stream of events — the simulator runs one process at a time and only
//! switches at yield points, so the host-order stream is consistent with
//! the simulated happens-before order — and `repseq-check` builds a
//! vector-clock happens-before detector on top of it.
//!
//! Everything here is zero-cost when no sink is installed: the hooks are
//! an inlined `Option` test on a field that is `None` by default, the
//! sink never charges virtual time, and no protocol message or fault path
//! consults it. The detector-invariance tests in `repseq-check` pin this
//! down by asserting bit-identical `SimReport`s and stats snapshots with
//! the detector on and off.

use std::sync::Arc;

use repseq_stats::NodeId;

/// What kind of shared-memory access a hook reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// A load (typed read, byte read, or guard element `get`).
    Read,
    /// A store (typed write, byte write, or guard element `set`).
    Write,
}

/// One synchronization event, reported from the exact point in the
/// runtime where the corresponding happens-before edge is established.
///
/// The stream is serialized (one simulated process runs at a time), so a
/// sink can maintain vector clocks with no locking discipline beyond a
/// mutex. The runtime guarantees the following orderings:
///
/// * `ForkSend` on the master precedes every slave's `ForkRecv` for that
///   fork (the task messages are sent after the hook fires);
/// * each slave's `JoinSend` precedes the master's matching
///   `JoinRecv { from }`;
/// * every node's `BarrierArrive` precedes every node's `BarrierDepart`
///   for the same barrier episode;
/// * every node's `RseExitArrive` precedes every node's `RseExitDepart`
///   for the same replicated section (the SeqDone/SeqGo exit barrier);
/// * `LockRelease` on the holder precedes the next `LockAcquire` of the
///   same lock on any node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncEdge {
    /// Master is about to distribute tasks for a parallel or replicated
    /// phase.
    ForkSend,
    /// A slave received its task for the current phase.
    ForkRecv,
    /// A slave finished its task and is about to notify the master.
    JoinSend,
    /// Master consumed the join (or SeqDone) of slave `from`.
    JoinRecv {
        /// The slave whose completion was consumed.
        from: NodeId,
    },
    /// This node reached a barrier and is about to wait.
    BarrierArrive,
    /// This node was released from the barrier.
    BarrierDepart,
    /// This node is releasing lock `lock` (hook fires before the grant
    /// can move anywhere else).
    LockRelease {
        /// Paper-level lock id.
        lock: u32,
    },
    /// This node now holds lock `lock`.
    LockAcquire {
        /// Paper-level lock id.
        lock: u32,
    },
    /// This node entered a replicated sequential section: from here to
    /// the matching exit, its accesses are performed by the *replica* —
    /// one logical thread executing on every node (§5.2).
    RseEnter,
    /// This node reached the end of its replicated section body (the
    /// SeqDone/SeqGo exit barrier's arrival side).
    RseExitArrive,
    /// This node left the replicated section exit barrier.
    RseExitDepart,
    /// The application labeled the code this node is about to run (used
    /// for provenance in race reports; purely descriptive).
    Section {
        /// Static label, e.g. `"bh::forces"`.
        label: &'static str,
    },
}

/// Receiver for the access/sync event stream.
///
/// Implemented by `repseq-check`'s detector; the DSM crate only defines
/// the interface so that the dependency points from the checker to the
/// substrate, never the other way.
pub trait RaceSink: Send + Sync {
    /// A shared-memory access of `len` bytes at virtual address `addr` by
    /// `node`'s application process.
    fn access(&self, node: NodeId, addr: u64, len: usize, kind: AccessKind);
    /// A synchronization event on `node`'s application process.
    fn sync(&self, node: NodeId, edge: SyncEdge);
}

/// Detector tuning knobs (consumed by `repseq-check`'s detector, defined
/// here so apps and harnesses can build one without depending on the
/// checker).
#[derive(Debug, Clone, Copy)]
pub struct RaceConfig {
    /// Shadow granularity in bytes (a power of two). 8 tracks every
    /// 64-bit word independently; 64 approximates cache-line granularity
    /// and will flag false sharing as races.
    pub granule: usize,
    /// DSM page size (shadow pages and report provenance use it).
    pub page_size: usize,
    /// Keep at most this many distinct race reports (every race is still
    /// *counted*; this only bounds stored provenance).
    pub max_reports: usize,
}

impl Default for RaceConfig {
    fn default() -> Self {
        RaceConfig { granule: 8, page_size: 4096, max_reports: 64 }
    }
}

/// A recording handle a page guard carries so that element-wise
/// `get`/`set` on the mapped slice reach the sink with exact addresses.
#[derive(Clone)]
pub(crate) struct AccessTap {
    pub sink: Arc<dyn RaceSink>,
    pub node: NodeId,
    /// Virtual address of element 0 of the guarded run.
    pub base: u64,
}

impl AccessTap {
    #[inline]
    pub(crate) fn element(&self, k: usize, elem_size: usize, kind: AccessKind) {
        self.sink.access(self.node, self.base + (k * elem_size) as u64, elem_size, kind);
    }
}
