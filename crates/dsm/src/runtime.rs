//! The application-side runtime core: the `DsmNode` handle, cluster
//! topology, the software TLB, and typed shared-memory access with
//! software page faults. The blocking protocol operations live with their
//! layers — [`crate::fetch`] (demand fetching), [`crate::sync`]
//! (barrier/locks), [`crate::exec`] (fork/join) and [`crate::strategy`]
//! (sequential-section execution) — as further `impl DsmNode` blocks.

use std::cell::RefCell;
use std::sync::Arc;

use parking_lot::Mutex;
use repseq_net::Nic;
use repseq_sim::{Ctx, Dur, Pid, Stopped};
use repseq_stats::{host, NodeId, StatsRef};

use crate::dataplane::GenTable;
use crate::interval::PageId;
use crate::msg::DsmMsg;
use crate::page::PageBuf;
use crate::pod::Pod;
use crate::race::{AccessKind, AccessTap, RaceSink, SyncEdge};
use crate::state::NodeState;
use crate::strategy::RseProbe;

/// Software-TLB geometry: set-associative on the low page bits.
/// 128 sets × 4 ways = 512 cached translations — large kernel-phase
/// working sets fit, and the ways absorb pages whose strides alias the
/// same set (the old direct-mapped table thrashed on those).
const TLB_SETS: usize = 128;
const TLB_WAYS: usize = 4;

/// One cached translation: page → contents handle + write permission,
/// stamped with the page's protection generations it was filled under.
struct TlbEntry {
    page: PageId,
    /// The page's read (mapping) generation at fill. Invalidation or an
    /// out-of-band content change bumps it, so a stale entry fails the
    /// equality check and falls back to the locked walk.
    gen: u64,
    /// The page's write-permission generation at fill. A write-only
    /// revocation (interval close, §5.3 write-protect) bumps it, retiring
    /// this entry's *write* permission while reads keep hitting.
    wgen: u64,
    writable: bool,
    buf: PageBuf,
}

/// The per-application-process software TLB: a set-associative cache over
/// the node's page table, each entry valid only while its page's
/// protection generation is unchanged. Purely a host-time optimization —
/// lookups model no cost and hit only in states where the slow path would
/// also charge nothing, so virtual time and message counts are
/// bit-identical with the TLB off.
pub(crate) struct Tlb {
    sets: Vec<[Option<TlbEntry>; TLB_WAYS]>,
    /// Per-set round-robin victim cursor. Deterministic: replacement
    /// depends only on the access sequence, never on host state.
    rr: Vec<u8>,
}

impl Tlb {
    fn new() -> Tlb {
        Tlb {
            sets: (0..TLB_SETS).map(|_| std::array::from_fn(|_| None)).collect(),
            rr: vec![0; TLB_SETS],
        }
    }

    #[inline]
    fn set(p: PageId) -> usize {
        p as usize & (TLB_SETS - 1)
    }

    /// The cached translation for `p`, if present and stamped with the
    /// page's current read (mapping) generation `gen`. Callers that need
    /// write permission additionally check `writable` and the entry's
    /// write-generation stamp.
    #[inline]
    fn lookup(&self, p: PageId, gen: u64) -> Option<&TlbEntry> {
        self.sets[Self::set(p)].iter().flatten().find(|e| e.page == p && e.gen == gen)
    }

    /// Install a translation. Way choice is deterministic: the way already
    /// holding `p`, else an invalid way, else a way whose entry went stale
    /// under `gens`, else the set's round-robin victim.
    fn insert(&mut self, entry: TlbEntry, gens: &GenTable) {
        let s = Self::set(entry.page);
        let way = {
            let set = &self.sets[s];
            set.iter()
                .position(|e| e.as_ref().is_some_and(|e| e.page == entry.page))
                .or_else(|| set.iter().position(|e| e.is_none()))
                .or_else(|| {
                    set.iter()
                        .position(|e| e.as_ref().is_some_and(|e| e.gen != gens.page_read(e.page)))
                })
        };
        let way = way.unwrap_or_else(|| {
            let w = self.rr[s] as usize % TLB_WAYS;
            self.rr[s] = self.rr[s].wrapping_add(1);
            w
        });
        self.sets[s][way] = Some(entry);
    }
}

/// Cluster wiring shared by every process: which kernel pid is which.
pub(crate) struct Topology {
    pub n: usize,
    /// Application process of each node.
    pub app_pids: Vec<Pid>,
    /// Protocol-handler process of each node.
    pub handler_pids: Vec<Pid>,
    pub stats: StatsRef,
    /// Race-detection sink, if one was installed on the cluster.
    pub race: Option<Arc<dyn RaceSink>>,
}

impl Topology {
    /// Destination list for a multicast to every handler (IP-multicast
    /// loopback included: the sender's own handler receives it too).
    pub(crate) fn all_handlers(&self) -> Vec<(NodeId, Pid)> {
        self.handler_pids.iter().copied().enumerate().collect()
    }
}

/// A node's application-side handle to the DSM. One per application
/// process. All shared-memory traffic, synchronization and statistics flow
/// through here.
pub struct DsmNode {
    pub(crate) ctx: Ctx<DsmMsg>,
    pub(crate) nic: Nic,
    pub(crate) st: Arc<Mutex<NodeState>>,
    pub(crate) topo: Arc<Topology>,
    pub(crate) page_size: usize,
    /// This node's per-page protection generations (shared with
    /// [`NodeState`]); one relaxed load validates a TLB entry without
    /// taking the mutex.
    pub(crate) prot_gen: Arc<GenTable>,
    /// The software TLB. `RefCell`: the application process is the only
    /// borrower, and no borrow is held across a yielding call.
    pub(crate) tlb: RefCell<Tlb>,
    pub(crate) tlb_enabled: bool,
    /// Race-detection sink (cloned off the topology); `None` costs one
    /// branch per access and nothing else.
    pub(crate) race: Option<Arc<dyn RaceSink>>,
}

impl DsmNode {
    /// Build the application-side handle, wiring the TLB to the node
    /// state's protection generation.
    pub(crate) fn new(
        ctx: Ctx<DsmMsg>,
        nic: Nic,
        st: Arc<Mutex<NodeState>>,
        topo: Arc<Topology>,
        page_size: usize,
        tlb_enabled: bool,
    ) -> DsmNode {
        let prot_gen = st.lock().prot_gen_arc();
        let race = topo.race.clone();
        DsmNode {
            ctx,
            nic,
            st,
            topo,
            page_size,
            prot_gen,
            tlb: RefCell::new(Tlb::new()),
            tlb_enabled,
            race,
        }
    }

    /// This node's id (0 is the master).
    pub fn node(&self) -> NodeId {
        self.nic.node()
    }

    /// Number of nodes in the cluster.
    pub fn n_nodes(&self) -> usize {
        self.topo.n
    }

    /// True on the master node.
    pub fn is_master(&self) -> bool {
        self.node() == 0
    }

    /// The simulation context (for charging application compute time).
    pub fn ctx(&self) -> &Ctx<DsmMsg> {
        &self.ctx
    }

    /// Account for local computation.
    pub fn charge(&self, d: Dur) {
        self.ctx.charge(d);
    }

    /// The statistics registry.
    pub fn stats(&self) -> &StatsRef {
        &self.topo.stats
    }

    /// The shared page size.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// The bytes of page `p` as a local read would see them, or `None` if
    /// this node's copy is invalid. Read-only — takes no faults, sends no
    /// messages, charges no time. This is the coherence oracle's window
    /// into each node's memory.
    pub fn inspect_page(&self, p: PageId) -> Option<Vec<u8>> {
        self.st.lock().inspect_page(p)
    }

    /// Snapshot this node's replicated-section protocol state for invariant
    /// checks (see [`crate::RseProbe`]).
    pub fn rse_probe(&self) -> RseProbe {
        self.st.lock().rse_probe()
    }

    // ---------------------------------------------------------------
    // Race-detection hooks (no-ops unless a sink is installed)
    // ---------------------------------------------------------------

    /// Report a shared-memory access to the race sink, if any.
    #[inline]
    pub(crate) fn race_access(&self, addr: u64, len: usize, kind: AccessKind) {
        if let Some(sink) = &self.race {
            sink.access(self.node(), addr, len, kind);
        }
    }

    /// Report a synchronization event to the race sink, if any.
    #[inline]
    pub(crate) fn race_sync(&self, edge: SyncEdge) {
        if let Some(sink) = &self.race {
            sink.sync(self.node(), edge);
        }
    }

    /// Label the code this node is about to run, for race-report
    /// provenance (e.g. `"bh::forces"`). Purely descriptive; a no-op
    /// without a race sink.
    pub fn race_label(&self, label: &'static str) {
        self.race_sync(SyncEdge::Section { label });
    }

    /// A recording handle for a page guard whose element 0 lives at
    /// virtual address `base` (see [`AccessTap`]).
    #[inline]
    pub(crate) fn race_tap(&self, base: u64) -> Option<AccessTap> {
        self.race.as_ref().map(|sink| AccessTap { sink: Arc::clone(sink), node: self.node(), base })
    }

    // ---------------------------------------------------------------
    // Shared-memory access (the software MMU)
    // ---------------------------------------------------------------
    //
    // Two-level fast path. Level 1: the software TLB — a hit costs one
    // atomic load plus an array probe, no mutex, no page-table walk.
    // Level 2: the locked walk, which fills the TLB on the way out. The
    // fast path only covers accesses the slow path charges zero virtual
    // time for (valid reads, valid+writable writes), so enabling the TLB
    // cannot change simulated time or message counts.

    /// Run `f` over the page bytes if the TLB has a current read mapping.
    #[inline]
    fn tlb_read<R>(&self, p: PageId, f: impl FnOnce(&[u8]) -> R) -> Option<R> {
        if !self.tlb_enabled {
            return None;
        }
        let gen = self.prot_gen.page_read(p);
        let tlb = self.tlb.borrow();
        match tlb.lookup(p, gen) {
            Some(e) => {
                host::tlb_hit();
                Some(f(e.buf.slice()))
            }
            None => None,
        }
    }

    /// Run `f` over the page bytes if the TLB has a current *writable*
    /// mapping.
    #[inline]
    fn tlb_write<R>(&self, p: PageId, f: impl FnOnce(&mut [u8]) -> R) -> Option<R> {
        if !self.tlb_enabled {
            return None;
        }
        let gen = self.prot_gen.page_read(p);
        let tlb = self.tlb.borrow();
        match tlb.lookup(p, gen) {
            Some(e) if e.writable && e.wgen == self.prot_gen.page_write(p) => {
                host::tlb_hit();
                Some(f(e.buf.slice_mut()))
            }
            _ => None,
        }
    }

    /// A clone of the cached contents handle, if the TLB has a current
    /// mapping with the required permission.
    #[inline]
    fn tlb_buf(&self, p: PageId, write: bool) -> Option<PageBuf> {
        if !self.tlb_enabled {
            return None;
        }
        let gen = self.prot_gen.page_read(p);
        let tlb = self.tlb.borrow();
        match tlb.lookup(p, gen) {
            Some(e) if !write || (e.writable && e.wgen == self.prot_gen.page_write(p)) => {
                host::tlb_hit();
                Some(e.buf.clone())
            }
            _ => None,
        }
    }

    /// Install a translation filled under the current generation.
    #[inline]
    fn tlb_fill(&self, p: PageId, writable: bool, buf: &PageBuf) {
        if !self.tlb_enabled {
            return;
        }
        let gen = self.prot_gen.page_read(p);
        let wgen = self.prot_gen.page_write(p);
        self.tlb
            .borrow_mut()
            .insert(TlbEntry { page: p, gen, wgen, writable, buf: buf.clone() }, &self.prot_gen);
    }

    /// Resolve page `p` for reading: fault until valid, fill the TLB,
    /// return the contents handle. The handle stays byte-current across
    /// later protocol activity (diffs apply in place), but protocol
    /// *validity* is only pinned at acquisition — callers must not cache
    /// it across synchronization.
    pub(crate) fn page_for_read(&self, p: PageId) -> Result<PageBuf, Stopped> {
        if let Some(buf) = self.tlb_buf(p, false) {
            return Ok(buf);
        }
        if self.tlb_enabled {
            host::tlb_miss();
        }
        loop {
            {
                let mut st = self.st.lock();
                let page = st.page_mut(p);
                if page.valid {
                    let writable = page.writable;
                    let buf = st.page_buf(p);
                    drop(st);
                    self.tlb_fill(p, writable, &buf);
                    return Ok(buf);
                }
            }
            self.read_fault(p)?;
        }
    }

    /// Resolve page `p` for writing: fault until valid and writable, fill
    /// the TLB, return the contents handle. Same caching contract as
    /// [`DsmNode::page_for_read`].
    pub(crate) fn page_for_write(&self, p: PageId) -> Result<PageBuf, Stopped> {
        if let Some(buf) = self.tlb_buf(p, true) {
            return Ok(buf);
        }
        if self.tlb_enabled {
            host::tlb_miss();
        }
        loop {
            {
                let mut st = self.st.lock();
                let page = st.page_mut(p);
                if page.valid && page.writable {
                    let buf = st.page_buf(p);
                    drop(st);
                    self.tlb_fill(p, true, &buf);
                    return Ok(buf);
                }
                if page.valid {
                    // Write fault: purely local (twin creation, and during
                    // replicated sections the §5.3 pre-diff).
                    let cost = st.write_fault(p);
                    self.topo.stats.on_page_fault(st.node);
                    drop(st);
                    self.ctx.charge(cost);
                    continue;
                }
            }
            // Invalid page: fetch it first.
            self.read_fault(p)?;
        }
    }

    /// Read a typed value from the shared address space.
    pub fn read<T: Pod>(&self, addr: u64) -> Result<T, Stopped> {
        assert!(T::SIZE <= 256, "shared values are limited to 256 bytes");
        let ps = self.page_size as u64;
        let off = (addr % ps) as usize;
        if off + T::SIZE <= self.page_size {
            // Single-page fast path: decode straight from the page, no
            // intermediate buffer, no span loop.
            self.race_access(addr, T::SIZE, AccessKind::Read);
            let p = (addr / ps) as PageId;
            if let Some(v) = self.tlb_read(p, |data| T::read_from(&data[off..off + T::SIZE])) {
                return Ok(v);
            }
            let buf = self.page_for_read(p)?;
            return Ok(T::read_from(&buf.slice()[off..off + T::SIZE]));
        }
        let mut buf = [0u8; 256];
        self.read_bytes(addr, &mut buf[..T::SIZE])?;
        Ok(T::read_from(&buf[..T::SIZE]))
    }

    /// Write a typed value to the shared address space.
    pub fn write<T: Pod>(&self, addr: u64, v: T) -> Result<(), Stopped> {
        assert!(T::SIZE <= 256, "shared values are limited to 256 bytes");
        let ps = self.page_size as u64;
        let off = (addr % ps) as usize;
        if off + T::SIZE <= self.page_size {
            self.race_access(addr, T::SIZE, AccessKind::Write);
            let p = (addr / ps) as PageId;
            if let Some(()) = self.tlb_write(p, |data| v.write_to(&mut data[off..off + T::SIZE])) {
                return Ok(());
            }
            let buf = self.page_for_write(p)?;
            v.write_to(&mut buf.slice_mut()[off..off + T::SIZE]);
            return Ok(());
        }
        let mut buf = [0u8; 256];
        v.write_to(&mut buf[..T::SIZE]);
        self.write_bytes(addr, &buf[..T::SIZE])
    }

    /// Read raw bytes (may span pages; each page is checked and fetched
    /// independently, as the hardware would).
    pub fn read_bytes(&self, addr: u64, out: &mut [u8]) -> Result<(), Stopped> {
        self.race_access(addr, out.len(), AccessKind::Read);
        self.read_bytes_quiet(addr, out)
    }

    /// [`DsmNode::read_bytes`] without the race-detection record: used for
    /// runtime-internal reads that are not program accesses (a mutable
    /// page guard pre-filling the unwritten bytes of a straddling
    /// element).
    pub(crate) fn read_bytes_quiet(&self, addr: u64, out: &mut [u8]) -> Result<(), Stopped> {
        let ps = self.page_size as u64;
        let mut off = 0usize;
        while off < out.len() {
            let a = addr + off as u64;
            let p = (a / ps) as PageId;
            let in_page = (a % ps) as usize;
            let chunk = ((ps as usize - in_page).min(out.len() - off)).max(1);
            let buf = self.page_for_read(p)?;
            out[off..off + chunk].copy_from_slice(&buf.slice()[in_page..in_page + chunk]);
            off += chunk;
        }
        Ok(())
    }

    /// Write raw bytes (may span pages).
    pub fn write_bytes(&self, addr: u64, src: &[u8]) -> Result<(), Stopped> {
        self.race_access(addr, src.len(), AccessKind::Write);
        self.write_bytes_quiet(addr, src)
    }

    /// [`DsmNode::write_bytes`] without the race-detection record: used
    /// where the access was already reported element-wise (a mutable page
    /// guard writing back a straddling element its tap recorded).
    pub(crate) fn write_bytes_quiet(&self, addr: u64, src: &[u8]) -> Result<(), Stopped> {
        let ps = self.page_size as u64;
        let mut off = 0usize;
        while off < src.len() {
            let a = addr + off as u64;
            let p = (a / ps) as PageId;
            let in_page = (a % ps) as usize;
            let chunk = ((ps as usize - in_page).min(src.len() - off)).max(1);
            let buf = self.page_for_write(p)?;
            buf.slice_mut()[in_page..in_page + chunk].copy_from_slice(&src[off..off + chunk]);
            off += chunk;
        }
        Ok(())
    }
}
