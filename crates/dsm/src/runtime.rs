//! The application-side runtime: typed shared-memory access with software
//! page faults, demand diff fetching, barriers, locks, and the fork/join
//! plumbing the OpenMP-style layer builds on.

use std::cell::RefCell;
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use repseq_net::Nic;
use repseq_sim::{Ctx, Dur, Pid, Stopped};
use repseq_stats::{host, MsgClass, NodeId, StatsRef};

use crate::interval::PageId;
use crate::msg::{DsmMsg, TaskPayload};
use crate::page::PageBuf;
use crate::pod::Pod;
use crate::race::{AccessKind, AccessTap, RaceSink, SyncEdge};
use crate::rse;
use crate::state::NodeState;

/// Software-TLB capacity. Direct-mapped on the low page bits: a working
/// set under 64 pages (every kernel phase in the apps) never conflicts.
const TLB_ENTRIES: usize = 64;

/// One cached translation: page → contents handle + write permission,
/// stamped with the protection generation it was filled under.
struct TlbEntry {
    page: PageId,
    /// Value of the node's protection generation when this entry was
    /// filled. Any protection change bumps the generation, so a stale
    /// entry fails the equality check and falls back to the locked walk.
    gen: u64,
    writable: bool,
    buf: PageBuf,
}

/// The per-application-process software TLB: a direct-mapped cache over
/// the node's page table, valid only while the protection generation is
/// unchanged. Purely a host-time optimization — lookups model no cost and
/// hit only in states where the slow path would also charge nothing, so
/// virtual time and message counts are bit-identical with the TLB off.
pub(crate) struct Tlb {
    slots: Vec<Option<TlbEntry>>,
}

impl Tlb {
    fn new() -> Tlb {
        Tlb { slots: (0..TLB_ENTRIES).map(|_| None).collect() }
    }

    #[inline]
    fn slot(p: PageId) -> usize {
        p as usize & (TLB_ENTRIES - 1)
    }
}

/// Cluster wiring shared by every process: which kernel pid is which.
pub(crate) struct Topology {
    pub n: usize,
    /// Application process of each node.
    pub app_pids: Vec<Pid>,
    /// Protocol-handler process of each node.
    pub handler_pids: Vec<Pid>,
    pub stats: StatsRef,
    /// Race-detection sink, if one was installed on the cluster.
    pub race: Option<Arc<dyn RaceSink>>,
}

impl Topology {
    /// Destination list for a multicast to every handler (IP-multicast
    /// loopback included: the sender's own handler receives it too).
    pub fn all_handlers(&self) -> Vec<(NodeId, Pid)> {
        self.handler_pids.iter().copied().enumerate().collect()
    }
}

/// What a parked slave observed (see [`DsmNode::wait_fork`]).
pub enum ParkEvent {
    /// A fork: run this task. `replicated` marks a replicated sequential
    /// section.
    Task { task: TaskPayload, replicated: bool },
}

/// A task function shipped at a fork — the analogue of the
/// compiler-generated parallel-region subroutine whose pointer TreadMarks
/// passes to the slaves (§2.3).
pub type TaskFn = dyn Fn(&DsmNode) -> Result<(), Stopped> + Send + Sync;

/// The canonical fork payload used by [`DsmNode::slave_loop`] and the
/// runtime layer.
pub enum Task {
    /// Execute this function.
    Run(Arc<TaskFn>),
    /// Terminate the slave's scheduler loop (end of program).
    Shutdown,
}

impl Task {
    /// Wrap a function as a fork payload.
    pub fn run(f: impl Fn(&DsmNode) -> Result<(), Stopped> + Send + Sync + 'static) -> TaskPayload {
        Arc::new(Task::Run(Arc::new(f)))
    }

    /// The shutdown payload.
    pub fn shutdown() -> TaskPayload {
        Arc::new(Task::Shutdown)
    }
}

/// A node's application-side handle to the DSM. One per application
/// process. All shared-memory traffic, synchronization and statistics flow
/// through here.
pub struct DsmNode {
    pub(crate) ctx: Ctx<DsmMsg>,
    pub(crate) nic: Nic,
    pub(crate) st: Arc<Mutex<NodeState>>,
    pub(crate) topo: Arc<Topology>,
    pub(crate) page_size: usize,
    /// This node's protection generation (shared with [`NodeState`]); one
    /// relaxed load validates a TLB entry without taking the mutex.
    pub(crate) prot_gen: Arc<AtomicU64>,
    /// The software TLB. `RefCell`: the application process is the only
    /// borrower, and no borrow is held across a yielding call.
    pub(crate) tlb: RefCell<Tlb>,
    pub(crate) tlb_enabled: bool,
    /// Race-detection sink (cloned off the topology); `None` costs one
    /// branch per access and nothing else.
    pub(crate) race: Option<Arc<dyn RaceSink>>,
}

impl DsmNode {
    /// Build the application-side handle, wiring the TLB to the node
    /// state's protection generation.
    pub(crate) fn new(
        ctx: Ctx<DsmMsg>,
        nic: Nic,
        st: Arc<Mutex<NodeState>>,
        topo: Arc<Topology>,
        page_size: usize,
        tlb_enabled: bool,
    ) -> DsmNode {
        let prot_gen = Arc::clone(&st.lock().prot_gen);
        let race = topo.race.clone();
        DsmNode {
            ctx,
            nic,
            st,
            topo,
            page_size,
            prot_gen,
            tlb: RefCell::new(Tlb::new()),
            tlb_enabled,
            race,
        }
    }

    /// This node's id (0 is the master).
    pub fn node(&self) -> NodeId {
        self.nic.node()
    }

    /// Number of nodes in the cluster.
    pub fn n_nodes(&self) -> usize {
        self.topo.n
    }

    /// True on the master node.
    pub fn is_master(&self) -> bool {
        self.node() == 0
    }

    /// The simulation context (for charging application compute time).
    pub fn ctx(&self) -> &Ctx<DsmMsg> {
        &self.ctx
    }

    /// Account for local computation.
    pub fn charge(&self, d: Dur) {
        self.ctx.charge(d);
    }

    /// The statistics registry.
    pub fn stats(&self) -> &StatsRef {
        &self.topo.stats
    }

    /// The shared page size.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// The bytes of page `p` as a local read would see them, or `None` if
    /// this node's copy is invalid. Read-only — takes no faults, sends no
    /// messages, charges no time. This is the coherence oracle's window
    /// into each node's memory.
    pub fn inspect_page(&self, p: PageId) -> Option<Vec<u8>> {
        self.st.lock().inspect_page(p)
    }

    /// Snapshot this node's replicated-section protocol state for invariant
    /// checks (see [`crate::RseProbe`]).
    pub fn rse_probe(&self) -> crate::state::RseProbe {
        self.st.lock().rse_probe()
    }

    // ---------------------------------------------------------------
    // Race-detection hooks (no-ops unless a sink is installed)
    // ---------------------------------------------------------------

    /// Report a shared-memory access to the race sink, if any.
    #[inline]
    pub(crate) fn race_access(&self, addr: u64, len: usize, kind: AccessKind) {
        if let Some(sink) = &self.race {
            sink.access(self.node(), addr, len, kind);
        }
    }

    /// Report a synchronization event to the race sink, if any.
    #[inline]
    pub(crate) fn race_sync(&self, edge: SyncEdge) {
        if let Some(sink) = &self.race {
            sink.sync(self.node(), edge);
        }
    }

    /// Label the code this node is about to run, for race-report
    /// provenance (e.g. `"bh::forces"`). Purely descriptive; a no-op
    /// without a race sink.
    pub fn race_label(&self, label: &'static str) {
        self.race_sync(SyncEdge::Section { label });
    }

    /// A recording handle for a page guard whose element 0 lives at
    /// virtual address `base` (see [`AccessTap`]).
    #[inline]
    pub(crate) fn race_tap(&self, base: u64) -> Option<AccessTap> {
        self.race.as_ref().map(|sink| AccessTap { sink: Arc::clone(sink), node: self.node(), base })
    }

    // ---------------------------------------------------------------
    // Shared-memory access (the software MMU)
    // ---------------------------------------------------------------
    //
    // Two-level fast path. Level 1: the software TLB — a hit costs one
    // atomic load plus an array probe, no mutex, no page-table walk.
    // Level 2: the locked walk, which fills the TLB on the way out. The
    // fast path only covers accesses the slow path charges zero virtual
    // time for (valid reads, valid+writable writes), so enabling the TLB
    // cannot change simulated time or message counts.

    /// Run `f` over the page bytes if the TLB has a current read mapping.
    #[inline]
    fn tlb_read<R>(&self, p: PageId, f: impl FnOnce(&[u8]) -> R) -> Option<R> {
        if !self.tlb_enabled {
            return None;
        }
        let gen = self.prot_gen.load(Ordering::Relaxed);
        let tlb = self.tlb.borrow();
        match &tlb.slots[Tlb::slot(p)] {
            Some(e) if e.page == p && e.gen == gen => {
                host::tlb_hit();
                Some(f(e.buf.slice()))
            }
            _ => None,
        }
    }

    /// Run `f` over the page bytes if the TLB has a current *writable*
    /// mapping.
    #[inline]
    fn tlb_write<R>(&self, p: PageId, f: impl FnOnce(&mut [u8]) -> R) -> Option<R> {
        if !self.tlb_enabled {
            return None;
        }
        let gen = self.prot_gen.load(Ordering::Relaxed);
        let tlb = self.tlb.borrow();
        match &tlb.slots[Tlb::slot(p)] {
            Some(e) if e.page == p && e.gen == gen && e.writable => {
                host::tlb_hit();
                Some(f(e.buf.slice_mut()))
            }
            _ => None,
        }
    }

    /// A clone of the cached contents handle, if the TLB has a current
    /// mapping with the required permission.
    #[inline]
    fn tlb_buf(&self, p: PageId, write: bool) -> Option<PageBuf> {
        if !self.tlb_enabled {
            return None;
        }
        let gen = self.prot_gen.load(Ordering::Relaxed);
        let tlb = self.tlb.borrow();
        match &tlb.slots[Tlb::slot(p)] {
            Some(e) if e.page == p && e.gen == gen && (e.writable || !write) => {
                host::tlb_hit();
                Some(e.buf.clone())
            }
            _ => None,
        }
    }

    /// Install a translation filled under the current generation.
    #[inline]
    fn tlb_fill(&self, p: PageId, writable: bool, buf: &PageBuf) {
        if !self.tlb_enabled {
            return;
        }
        let gen = self.prot_gen.load(Ordering::Relaxed);
        self.tlb.borrow_mut().slots[Tlb::slot(p)] =
            Some(TlbEntry { page: p, gen, writable, buf: buf.clone() });
    }

    /// Resolve page `p` for reading: fault until valid, fill the TLB,
    /// return the contents handle. The handle stays byte-current across
    /// later protocol activity (diffs apply in place), but protocol
    /// *validity* is only pinned at acquisition — callers must not cache
    /// it across synchronization.
    pub(crate) fn page_for_read(&self, p: PageId) -> Result<PageBuf, Stopped> {
        if let Some(buf) = self.tlb_buf(p, false) {
            return Ok(buf);
        }
        if self.tlb_enabled {
            host::tlb_miss();
        }
        loop {
            {
                let mut st = self.st.lock();
                let page = st.page_mut(p);
                if page.valid {
                    let writable = page.writable;
                    let buf = st.page_buf(p);
                    drop(st);
                    self.tlb_fill(p, writable, &buf);
                    return Ok(buf);
                }
            }
            self.read_fault(p)?;
        }
    }

    /// Resolve page `p` for writing: fault until valid and writable, fill
    /// the TLB, return the contents handle. Same caching contract as
    /// [`DsmNode::page_for_read`].
    pub(crate) fn page_for_write(&self, p: PageId) -> Result<PageBuf, Stopped> {
        if let Some(buf) = self.tlb_buf(p, true) {
            return Ok(buf);
        }
        if self.tlb_enabled {
            host::tlb_miss();
        }
        loop {
            {
                let mut st = self.st.lock();
                let page = st.page_mut(p);
                if page.valid && page.writable {
                    let buf = st.page_buf(p);
                    drop(st);
                    self.tlb_fill(p, true, &buf);
                    return Ok(buf);
                }
                if page.valid {
                    // Write fault: purely local (twin creation, and during
                    // replicated sections the §5.3 pre-diff).
                    let cost = st.write_fault(p);
                    self.topo.stats.on_page_fault(st.node);
                    drop(st);
                    self.ctx.charge(cost);
                    continue;
                }
            }
            // Invalid page: fetch it first.
            self.read_fault(p)?;
        }
    }

    /// Read a typed value from the shared address space.
    pub fn read<T: Pod>(&self, addr: u64) -> Result<T, Stopped> {
        assert!(T::SIZE <= 256, "shared values are limited to 256 bytes");
        let ps = self.page_size as u64;
        let off = (addr % ps) as usize;
        if off + T::SIZE <= self.page_size {
            // Single-page fast path: decode straight from the page, no
            // intermediate buffer, no span loop.
            self.race_access(addr, T::SIZE, AccessKind::Read);
            let p = (addr / ps) as PageId;
            if let Some(v) = self.tlb_read(p, |data| T::read_from(&data[off..off + T::SIZE])) {
                return Ok(v);
            }
            let buf = self.page_for_read(p)?;
            return Ok(T::read_from(&buf.slice()[off..off + T::SIZE]));
        }
        let mut buf = [0u8; 256];
        self.read_bytes(addr, &mut buf[..T::SIZE])?;
        Ok(T::read_from(&buf[..T::SIZE]))
    }

    /// Write a typed value to the shared address space.
    pub fn write<T: Pod>(&self, addr: u64, v: T) -> Result<(), Stopped> {
        assert!(T::SIZE <= 256, "shared values are limited to 256 bytes");
        let ps = self.page_size as u64;
        let off = (addr % ps) as usize;
        if off + T::SIZE <= self.page_size {
            self.race_access(addr, T::SIZE, AccessKind::Write);
            let p = (addr / ps) as PageId;
            if let Some(()) = self.tlb_write(p, |data| v.write_to(&mut data[off..off + T::SIZE])) {
                return Ok(());
            }
            let buf = self.page_for_write(p)?;
            v.write_to(&mut buf.slice_mut()[off..off + T::SIZE]);
            return Ok(());
        }
        let mut buf = [0u8; 256];
        v.write_to(&mut buf[..T::SIZE]);
        self.write_bytes(addr, &buf[..T::SIZE])
    }

    /// Read raw bytes (may span pages; each page is checked and fetched
    /// independently, as the hardware would).
    pub fn read_bytes(&self, addr: u64, out: &mut [u8]) -> Result<(), Stopped> {
        self.race_access(addr, out.len(), AccessKind::Read);
        self.read_bytes_quiet(addr, out)
    }

    /// [`DsmNode::read_bytes`] without the race-detection record: used for
    /// runtime-internal reads that are not program accesses (a mutable
    /// page guard pre-filling the unwritten bytes of a straddling
    /// element).
    pub(crate) fn read_bytes_quiet(&self, addr: u64, out: &mut [u8]) -> Result<(), Stopped> {
        let ps = self.page_size as u64;
        let mut off = 0usize;
        while off < out.len() {
            let a = addr + off as u64;
            let p = (a / ps) as PageId;
            let in_page = (a % ps) as usize;
            let chunk = ((ps as usize - in_page).min(out.len() - off)).max(1);
            let buf = self.page_for_read(p)?;
            out[off..off + chunk].copy_from_slice(&buf.slice()[in_page..in_page + chunk]);
            off += chunk;
        }
        Ok(())
    }

    /// Write raw bytes (may span pages).
    pub fn write_bytes(&self, addr: u64, src: &[u8]) -> Result<(), Stopped> {
        self.race_access(addr, src.len(), AccessKind::Write);
        self.write_bytes_quiet(addr, src)
    }

    /// [`DsmNode::write_bytes`] without the race-detection record: used
    /// where the access was already reported element-wise (a mutable page
    /// guard writing back a straddling element its tap recorded).
    pub(crate) fn write_bytes_quiet(&self, addr: u64, src: &[u8]) -> Result<(), Stopped> {
        let ps = self.page_size as u64;
        let mut off = 0usize;
        while off < src.len() {
            let a = addr + off as u64;
            let p = (a / ps) as PageId;
            let in_page = (a % ps) as usize;
            let chunk = ((ps as usize - in_page).min(src.len() - off)).max(1);
            let buf = self.page_for_write(p)?;
            buf.slice_mut()[in_page..in_page + chunk].copy_from_slice(&src[off..off + chunk]);
            off += chunk;
        }
        Ok(())
    }

    /// Absorb messages that can legally arrive while an application process
    /// is blocked on something else: early joins and SeqDone signals from
    /// fast slaves (buffered for `wait_joins` / `end_replicated_master`)
    /// and stale page wakeups. Returns true if the message was absorbed.
    pub(crate) fn absorb_stray(&self, msg: DsmMsg) -> bool {
        match msg {
            DsmMsg::Join { from, vc, records } => {
                self.st.lock().pending_joins.push((from, vc, records));
                true
            }
            DsmMsg::SeqDone { .. } => {
                self.st.lock().pending_seqdone += 1;
                true
            }
            DsmMsg::WakePage { .. } => true,
            // A duplicate reply from the resend layer whose original won
            // the race: only fetch loops consume replies (matched by
            // req_id), so outside one a reply is always stale.
            DsmMsg::DiffReply { .. } => true,
            _ => false,
        }
    }

    /// Handle a read fault: fetch the missing diffs, apply them, validate.
    fn read_fault(&self, p: PageId) -> Result<(), Stopped> {
        let node = self.node();
        self.topo.stats.on_page_fault(node);
        self.ctx.charge(self.st.lock().cfg.fault_overhead);
        let in_rse = self.st.lock().in_rse;
        if in_rse {
            rse::fetch_replicated(self, p)
        } else {
            self.fetch_normal(p)
        }
    }

    /// Ordinary lazy-release-consistency fetch: request each missing diff
    /// from its writer, in parallel (§5.4.3: "With normal sequential
    /// execution, all missing diffs for a page are requested in parallel").
    fn fetch_normal(&self, p: PageId) -> Result<(), Stopped> {
        let node = self.node();
        let t0 = self.ctx.now();
        let mut requested = false;
        loop {
            // New write notices can arrive while we wait for replies (our
            // handler keeps merging barrier/lock traffic into the shared
            // state), so the plan is recomputed — and the final apply is
            // atomic with the completeness check — until it converges.
            let (plan, req_id) = {
                let mut st = self.st.lock();
                let plan = st.fetch_plan(p);
                if plan.is_empty() {
                    let cost = st.apply_cached_diffs(p);
                    drop(st);
                    self.ctx.charge(cost);
                    break;
                }
                (plan, st.fresh_req_id())
            };
            requested = true;
            let mut owners: Vec<NodeId> = plan.keys().copied().collect();
            owners.sort_unstable();
            let mut outstanding: HashSet<NodeId> = HashSet::new();
            for &owner in &owners {
                let ivxs = plan[&owner].clone();
                debug_assert_ne!(owner, node, "own diffs are always cached");
                let msg = DsmMsg::DiffRequest { page: p, ivxs, reply_to: self.ctx.pid(), req_id };
                let size = msg.wire_size();
                self.nic.unicast(
                    &self.ctx,
                    owner,
                    self.topo.handler_pids[owner],
                    MsgClass::DiffRequest,
                    size,
                    msg,
                );
                outstanding.insert(owner);
            }
            // The unicast transport is logically reliable (TreadMarks ran
            // its own reliability layer over UDP): when loss injection is
            // allowed to touch diff frames, that layer is this resend loop.
            let (timeout, max_retries) = {
                let st = self.st.lock();
                (st.cfg.rse_timeout, st.cfg.rse_max_retries)
            };
            let mut retries: u32 = 0;
            while !outstanding.is_empty() {
                let env = match self.ctx.recv_timeout(timeout)? {
                    Some(env) => env,
                    None => {
                        retries += 1;
                        assert!(
                            retries <= max_retries,
                            "node {node}: diff fetch for page {p} incomplete after \
                             {retries} resends (owners still outstanding: {outstanding:?})"
                        );
                        for &owner in owners.iter().filter(|o| outstanding.contains(o)) {
                            let msg = DsmMsg::DiffRequest {
                                page: p,
                                ivxs: plan[&owner].clone(),
                                reply_to: self.ctx.pid(),
                                req_id,
                            };
                            let size = msg.wire_size();
                            self.nic.unicast(
                                &self.ctx,
                                owner,
                                self.topo.handler_pids[owner],
                                MsgClass::DiffRequest,
                                size,
                                msg,
                            );
                        }
                        continue;
                    }
                };
                match env.msg {
                    DsmMsg::DiffReply { page, diffs, req_id: rid } if rid == req_id => {
                        debug_assert_eq!(page, p);
                        let owner = self
                            .topo
                            .handler_pids
                            .iter()
                            .position(|&h| h == env.from)
                            .expect("diff reply from unknown handler");
                        let mut st = self.st.lock();
                        st.cache_diffs(p, &diffs);
                        outstanding.remove(&owner);
                    }
                    DsmMsg::DiffReply { .. } => { /* reply to an aborted fetch: ignore */ }
                    other => {
                        if !self.absorb_stray(other) {
                            panic!("node {node}: unexpected message while fetching page {p}");
                        }
                    }
                }
            }
        }
        if requested {
            let waited = self.ctx.now() - t0;
            self.topo.stats.on_diff_stall(node, waited);
            self.topo.stats.on_diff_request_complete(node, waited);
        }
        Ok(())
    }

    // ---------------------------------------------------------------
    // Barriers (centralized manager at node 0's handler)
    // ---------------------------------------------------------------

    /// Global barrier: a release (interval close + arrival) followed by an
    /// acquire (departure records merged).
    pub fn barrier(&self) -> Result<(), Stopped> {
        let node = self.node();
        self.race_sync(SyncEdge::BarrierArrive);
        let msg = {
            let mut st = self.st.lock();
            st.close_interval();
            let records = st.intervals.records_unknown_to(&st.master_known);
            DsmMsg::BarrierArrive {
                from: node,
                vc: st.vc.clone(),
                records,
                reply_to: self.ctx.pid(),
            }
        };
        self.ctx.charge(self.sync_cost());
        let size = msg.wire_size();
        if node == 0 {
            // The manager lives on this node: no network traffic.
            self.nic.local(&self.ctx, self.topo.handler_pids[0], msg);
        } else {
            self.nic.unicast(&self.ctx, 0, self.topo.handler_pids[0], MsgClass::Sync, size, msg);
        }
        loop {
            let env = self.ctx.recv()?;
            match env.msg {
                DsmMsg::BarrierDepart { records, vc } => {
                    let cost = {
                        let mut st = self.st.lock();
                        let c = st.apply_records(records, &vc);
                        st.master_known = vc;
                        c
                    };
                    self.ctx.charge(cost + self.sync_cost());
                    self.race_sync(SyncEdge::BarrierDepart);
                    return Ok(());
                }
                other => {
                    if !self.absorb_stray(other) {
                        panic!("node {node}: unexpected message at barrier");
                    }
                }
            }
        }
    }

    // ---------------------------------------------------------------
    // Locks (static manager, distributed FIFO queue)
    // ---------------------------------------------------------------

    /// The node managing lock `l`.
    fn lock_manager(&self, l: u32) -> NodeId {
        (l as usize) % self.topo.n
    }

    /// Acquire a lock (an acquire access in release consistency).
    pub fn lock(&self, l: u32) -> Result<(), Stopped> {
        let node = self.node();
        let local = {
            let mut st = self.st.lock();
            assert!(!st.lock_held.contains(&l), "recursive lock acquire");
            if st.lock_token.contains(&l) {
                // We were the last holder: re-acquire locally, no traffic,
                // no new consistency information.
                st.lock_held.insert(l);
                true
            } else {
                false
            }
        };
        if local {
            // Still an acquire edge for the detector (it merges this
            // node's own release clock — a no-op for the HB relation).
            self.race_sync(SyncEdge::LockAcquire { lock: l });
            return Ok(());
        }
        let msg = {
            let st = self.st.lock();
            DsmMsg::LockAcquire {
                lock: l,
                from: node,
                vc: st.vc.clone(),
                reply_to: self.ctx.pid(),
                forwarded: false,
            }
        };
        let mgr = self.lock_manager(l);
        let size = msg.wire_size();
        self.ctx.charge(self.sync_cost());
        if mgr == node {
            self.nic.local(&self.ctx, self.topo.handler_pids[mgr], msg);
        } else {
            self.nic.unicast(
                &self.ctx,
                mgr,
                self.topo.handler_pids[mgr],
                MsgClass::Lock,
                size,
                msg,
            );
        }
        loop {
            let env = self.ctx.recv()?;
            match env.msg {
                DsmMsg::LockGrant { lock, records, vc } => {
                    debug_assert_eq!(lock, l);
                    let cost = {
                        let mut st = self.st.lock();
                        let c = st.apply_records(records, &vc);
                        st.lock_held.insert(l);
                        st.lock_token.insert(l);
                        c
                    };
                    self.ctx.charge(cost + self.sync_cost());
                    self.race_sync(SyncEdge::LockAcquire { lock: l });
                    return Ok(());
                }
                other => {
                    if !self.absorb_stray(other) {
                        panic!("node {node}: unexpected message while acquiring lock");
                    }
                }
            }
        }
    }

    /// Release a lock (a release access: closes the interval). If another
    /// node's acquire is queued here, the grant — with the consistency
    /// information the acquirer lacks — goes straight to it.
    pub fn unlock(&self, l: u32) -> Result<(), Stopped> {
        // The release edge must be recorded before the grant can move the
        // lock anywhere else.
        self.race_sync(SyncEdge::LockRelease { lock: l });
        let grant = {
            let mut st = self.st.lock();
            assert!(st.lock_held.remove(&l), "releasing a lock we do not hold");
            st.close_interval();
            match st.lock_pending.get_mut(&l).and_then(|q| q.pop_front()) {
                Some(req) => {
                    st.lock_token.remove(&l);
                    let records = st.intervals.records_unknown_to(&req.vc);
                    Some((req, records, st.vc.clone()))
                }
                None => None,
            }
        };
        self.ctx.charge(self.sync_cost());
        if let Some((req, records, vc)) = grant {
            let msg = DsmMsg::LockGrant { lock: l, records, vc };
            let size = msg.wire_size();
            self.nic.unicast(&self.ctx, req.from, req.reply_to, MsgClass::Lock, size, msg);
        }
        Ok(())
    }

    // ---------------------------------------------------------------
    // Fork/join (Tmk_fork / Tmk_join) — used by the runtime crate
    // ---------------------------------------------------------------

    /// Master: fork `task` to every slave, shipping each the interval
    /// records it lacks. `replicated` marks a replicated sequential section
    /// (the slaves will run the task with replication semantics).
    pub fn fork_slaves(&self, task: TaskPayload, replicated: bool) -> Result<(), Stopped> {
        assert!(self.is_master(), "only the master forks");
        let n = self.topo.n;
        self.race_sync(SyncEdge::ForkSend);
        self.st.lock().close_interval();
        for s in 1..n {
            let msg = {
                let mut st = self.st.lock();
                let records = st.intervals.records_unknown_to(&st.peer_vcs[s]);
                let vc = st.vc.clone();
                st.peer_vcs[s] = vc.clone();
                DsmMsg::Fork { records, vc, task: Arc::clone(&task), replicated }
            };
            let size = msg.wire_size();
            self.nic.unicast(&self.ctx, s, self.topo.app_pids[s], MsgClass::Sync, size, msg);
        }
        self.ctx.charge(self.sync_cost());
        Ok(())
    }

    /// Slave: park until the master forks a task. Valid-notice requests and
    /// tables (the exchange preceding a replicated section) are answered
    /// transparently while parked.
    pub fn wait_fork(&self) -> Result<ParkEvent, Stopped> {
        let node = self.node();
        loop {
            let env = self.ctx.recv()?;
            match env.msg {
                DsmMsg::Fork { records, vc, task, replicated } => {
                    let cost = {
                        let mut st = self.st.lock();
                        let c = st.apply_records(records, &vc);
                        st.master_known = vc;
                        c
                    };
                    self.ctx.charge(cost + self.sync_cost());
                    self.race_sync(SyncEdge::ForkRecv);
                    return Ok(ParkEvent::Task { task, replicated });
                }
                DsmMsg::ValidNoticeRequest { reply_to } => {
                    let msg = {
                        let mut st = self.st.lock();
                        DsmMsg::ValidNoticeReply { from: node, delta: st.take_valid_delta() }
                    };
                    let size = msg.wire_size();
                    self.ctx.charge(self.sync_cost());
                    self.nic.unicast(&self.ctx, 0, reply_to, MsgClass::ValidNotice, size, msg);
                }
                DsmMsg::ValidNoticeTable { deltas } => {
                    self.st.lock().merge_valid_deltas(&deltas);
                    self.ctx.charge(self.sync_cost());
                }
                DsmMsg::WakePage { .. } | DsmMsg::DiffReply { .. } => {}
                other => panic!("node {node}: unexpected {} while parked", other.kind()),
            }
        }
    }

    /// Slave: signal completion of the forked task to the master, shipping
    /// the interval records the master lacks.
    pub fn join_master(&self) -> Result<(), Stopped> {
        assert!(!self.is_master());
        let node = self.node();
        self.race_sync(SyncEdge::JoinSend);
        let msg = {
            let mut st = self.st.lock();
            st.close_interval();
            let records = st.intervals.records_unknown_to(&st.master_known);
            DsmMsg::Join { from: node, vc: st.vc.clone(), records }
        };
        self.ctx.charge(self.sync_cost());
        let size = msg.wire_size();
        self.nic.unicast(&self.ctx, 0, self.topo.app_pids[0], MsgClass::Sync, size, msg);
        Ok(())
    }

    /// Master: wait for every slave's join and merge their consistency
    /// information. Joins that arrived while the master was blocked
    /// elsewhere (buffered by `absorb_stray`) are consumed first.
    pub fn wait_joins(&self) -> Result<(), Stopped> {
        assert!(self.is_master());
        let mut pending = self.topo.n - 1;
        {
            let mut st = self.st.lock();
            st.close_interval();
            let buffered = std::mem::take(&mut st.pending_joins);
            drop(st);
            for (from, vc, records) in buffered {
                let cost = {
                    let mut st = self.st.lock();
                    let c = st.apply_records(records, &vc);
                    st.peer_vcs[from] = vc;
                    c
                };
                self.ctx.charge(cost + self.sync_cost());
                self.race_sync(SyncEdge::JoinRecv { from });
                pending -= 1;
            }
        }
        while pending > 0 {
            let env = self.ctx.recv()?;
            match env.msg {
                DsmMsg::Join { from, vc, records } => {
                    let cost = {
                        let mut st = self.st.lock();
                        let c = st.apply_records(records, &vc);
                        st.peer_vcs[from] = vc;
                        c
                    };
                    self.ctx.charge(cost + self.sync_cost());
                    self.race_sync(SyncEdge::JoinRecv { from });
                    pending -= 1;
                }
                DsmMsg::WakePage { .. } => {}
                other => panic!("master: unexpected {} while joining", other.kind()),
            }
        }
        Ok(())
    }

    pub(crate) fn sync_cost(&self) -> Dur {
        self.st.lock().cfg.sync_overhead
    }

    // ---------------------------------------------------------------
    // High-level Tmk-style section helpers
    // ---------------------------------------------------------------

    /// Slave scheduler loop: park, run forked tasks (replicated sections
    /// with replication semantics), join, repeat — until the master ships
    /// [`Task::Shutdown`]. This is the whole life of a TreadMarks slave
    /// (§2.2.1).
    pub fn slave_loop(&self) -> Result<(), Stopped> {
        assert!(!self.is_master());
        loop {
            let ParkEvent::Task { task, replicated } = self.wait_fork()?;
            let task = task.downcast_ref::<Task>().expect("unknown fork payload type");
            match task {
                Task::Shutdown => return Ok(()),
                Task::Run(f) => {
                    if replicated {
                        self.enter_replicated();
                        f(self)?;
                        self.end_replicated_slave()?;
                    } else {
                        f(self)?;
                        self.join_master()?;
                    }
                }
            }
        }
    }

    /// Master: run `f` as a parallel section on every node (fork, execute
    /// the master's share, join).
    pub fn run_parallel(
        &self,
        f: impl Fn(&DsmNode) -> Result<(), Stopped> + Send + Sync + 'static,
    ) -> Result<(), Stopped> {
        assert!(self.is_master());
        let task = Task::run(f);
        let body = match task.downcast_ref::<Task>().unwrap() {
            Task::Run(f) => Arc::clone(f),
            Task::Shutdown => unreachable!(),
        };
        self.fork_slaves(task, false)?;
        body(self)?;
        self.wait_joins()
    }

    /// Master: run `f` as a *replicated sequential section* on every node
    /// (valid-notice exchange, replicated fork, §5.3 entry protection,
    /// silent exit barrier).
    pub fn run_replicated(
        &self,
        f: impl Fn(&DsmNode) -> Result<(), Stopped> + Send + Sync + 'static,
    ) -> Result<(), Stopped> {
        assert!(self.is_master());
        let task = Task::run(f);
        let body = match task.downcast_ref::<Task>().unwrap() {
            Task::Run(f) => Arc::clone(f),
            Task::Shutdown => unreachable!(),
        };
        self.fork_replicated(task)?;
        self.enter_replicated();
        body(self)?;
        self.end_replicated_master()
    }

    /// Master: terminate every slave's scheduler loop (end of program).
    pub fn shutdown_slaves(&self) -> Result<(), Stopped> {
        self.fork_slaves(Task::shutdown(), false)
    }

    /// Master: multicast the current contents of `pages` to every node (the
    /// hand-inserted broadcast of §6.1.2 — used to isolate contention
    /// elimination from the benefit of replicating the sequential
    /// computation). Closes the current interval first so receivers' copies
    /// cover the just-finished sequential section's write notices and are
    /// not re-invalidated at the following fork.
    pub fn broadcast_pages(&self, pages: impl IntoIterator<Item = PageId>) -> Result<(), Stopped> {
        assert!(self.is_master(), "only the master broadcasts");
        self.st.lock().close_interval();
        let mut last_delivery = self.ctx.now();
        let mut sent = 0u64;
        for p in pages {
            let msg = {
                let mut st = self.st.lock();
                // Only pages we hold a complete, valid copy of are worth
                // broadcasting (the tree pages after a sequential build).
                let valid = st.page_mut(p).valid;
                if !valid {
                    continue;
                }
                let data: Arc<[u8]> = st.page_data(p).to_vec().into();
                DsmMsg::PageBroadcast { page: p, data, vc: st.vc.clone() }
            };
            let size = msg.wire_size();
            let dsts: Vec<_> = self
                .topo
                .all_handlers()
                .into_iter()
                .filter(|&(node, _)| node != self.node())
                .collect();
            let at = self.nic.multicast(&self.ctx, &dsts, MsgClass::Broadcast, size, msg);
            last_delivery = last_delivery.max(at);
            sent += 1;
        }
        // Block until the broadcast has drained (the hub and the switch
        // are independent media; without this the following fork's records
        // would overtake the data and re-invalidate it at the receivers).
        let service = self.st.lock().cfg.service_overhead;
        let resume_at = last_delivery + service * (sent + 1);
        let now = self.ctx.now();
        if resume_at > now {
            self.ctx.sleep(resume_at - now)?;
        }
        Ok(())
    }

    /// The page span of an address range (helper for `broadcast_pages`).
    pub fn pages_of_range(&self, start_addr: u64, bytes: u64) -> std::ops::RangeInclusive<PageId> {
        let ps = self.page_size as u64;
        let first = (start_addr / ps) as PageId;
        let last = ((start_addr + bytes.max(1) - 1) / ps) as PageId;
        first..=last
    }
}
