//! Vector timestamps (§5.1 of the paper).
//!
//! Each node's execution is divided into intervals; every interval carries
//! a vector timestamp with one entry per node. Entry `q` of the timestamp
//! of interval `i` of node `p` names the most recent interval of `q` that
//! precedes `i` in the happened-before partial order.

use std::sync::Arc;

use repseq_stats::NodeId;

/// A vector timestamp: entry `q` is the index of the latest interval of
/// node `q` covered by this timestamp (0 = nothing).
///
/// Stored copy-on-write: timestamps are cloned into every interval record,
/// fork message and valid-notice table entry, and at hundreds of nodes an
/// n-entry deep copy per clone dominates host time and memory (O(n²·pages)
/// per replicated section). Clones share the buffer; `set`/`merge` copy
/// only when the buffer is shared — and a merge that one side dominates
/// adopts the other side's buffer outright.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Vc(Arc<Vec<u32>>);

impl Vc {
    /// The zero timestamp for an `n`-node cluster.
    pub fn zero(n: usize) -> Vc {
        Vc(Arc::new(vec![0; n]))
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if no entries (unused placeholder).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The entry for node `q`.
    #[inline]
    pub fn get(&self, q: NodeId) -> u32 {
        self.0[q]
    }

    /// Set the entry for node `q`.
    #[inline]
    pub fn set(&mut self, q: NodeId, v: u32) {
        if self.0[q] != v {
            Arc::make_mut(&mut self.0)[q] = v;
        }
    }

    /// Pairwise maximum (the merge performed at an acquire).
    pub fn merge(&mut self, other: &Vc) {
        debug_assert_eq!(self.0.len(), other.0.len());
        if Arc::ptr_eq(&self.0, &other.0) || other.dominated_by(self) {
            return;
        }
        if self.dominated_by(other) {
            // The merge IS the other timestamp: share its buffer.
            self.0 = Arc::clone(&other.0);
            return;
        }
        let mine = Arc::make_mut(&mut self.0);
        for (a, b) in mine.iter_mut().zip(other.0.iter()) {
            *a = (*a).max(*b);
        }
    }

    /// `self ≤ other` in the dominance (component-wise) order: everything
    /// this timestamp covers is also covered by `other`.
    pub fn dominated_by(&self, other: &Vc) -> bool {
        debug_assert_eq!(self.0.len(), other.0.len());
        self.0.iter().zip(other.0.iter()).all(|(a, b)| a <= b)
    }

    /// True if an interval with index `ivx` of node `owner` is covered by
    /// this timestamp. Interval indices of one node are totally ordered, so
    /// coverage is a single comparison.
    #[inline]
    pub fn covers(&self, owner: NodeId, ivx: u32) -> bool {
        self.0[owner] >= ivx
    }

    /// Sum of entries — a linear extension of the dominance order, used to
    /// sort diffs into a legal application order (if `a` strictly dominates
    /// `b`, then `sum(a) > sum(b)`).
    pub fn weight(&self) -> u64 {
        self.0.iter().map(|&v| v as u64).sum()
    }

    /// Approximate wire size in bytes (4 bytes per entry).
    pub fn wire_size(&self) -> u64 {
        4 * self.0.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_dominated_by_everything() {
        let z = Vc::zero(4);
        let mut v = Vc::zero(4);
        v.set(2, 5);
        assert!(z.dominated_by(&v));
        assert!(z.dominated_by(&z));
        assert!(!v.dominated_by(&z));
    }

    #[test]
    fn merge_is_pairwise_max() {
        let mut a = Vc::zero(3);
        a.set(0, 4);
        a.set(1, 1);
        let mut b = Vc::zero(3);
        b.set(1, 3);
        b.set(2, 2);
        a.merge(&b);
        assert_eq!((a.get(0), a.get(1), a.get(2)), (4, 3, 2));
    }

    #[test]
    fn covers_checks_single_entry() {
        let mut v = Vc::zero(3);
        v.set(1, 7);
        assert!(v.covers(1, 7));
        assert!(v.covers(1, 1));
        assert!(!v.covers(1, 8));
        assert!(v.covers(0, 0));
        assert!(!v.covers(0, 1));
    }

    #[test]
    fn weight_is_linear_extension() {
        let mut a = Vc::zero(3);
        a.set(0, 1);
        let mut b = a.clone();
        b.set(1, 2);
        // a < b strictly, so weight must increase.
        assert!(a.dominated_by(&b) && a != b);
        assert!(a.weight() < b.weight());
    }

    #[test]
    fn concurrent_timestamps_neither_dominates() {
        let mut a = Vc::zero(2);
        a.set(0, 1);
        let mut b = Vc::zero(2);
        b.set(1, 1);
        assert!(!a.dominated_by(&b));
        assert!(!b.dominated_by(&a));
    }

    proptest::proptest! {
        #[test]
        fn prop_merge_dominates_both(a in proptest::collection::vec(0u32..50, 4),
                                     b in proptest::collection::vec(0u32..50, 4)) {
            let va = Vc(Arc::new(a.clone()));
            let vb = Vc(Arc::new(b.clone()));
            let mut m = va.clone();
            m.merge(&vb);
            proptest::prop_assert!(va.dominated_by(&m));
            proptest::prop_assert!(vb.dominated_by(&m));
            // And it is the least upper bound: any other upper bound
            // dominates the merge.
            let ub = Vc(Arc::new(a.iter().zip(&b).map(|(x, y)| x.max(y) + 1).collect()));
            proptest::prop_assert!(m.dominated_by(&ub));
        }

        #[test]
        fn prop_merge_is_commutative_associative_idempotent(
            a in proptest::collection::vec(0u32..50, 4),
            b in proptest::collection::vec(0u32..50, 4),
            c in proptest::collection::vec(0u32..50, 4),
        ) {
            let (va, vb, vc_) = (Vc(Arc::new(a)), Vc(Arc::new(b)), Vc(Arc::new(c)));
            // commutative: merge(a,b) == merge(b,a)
            let mut ab = va.clone();
            ab.merge(&vb);
            let mut ba = vb.clone();
            ba.merge(&va);
            proptest::prop_assert_eq!(&ab, &ba);
            // associative: merge(merge(a,b),c) == merge(a,merge(b,c))
            let mut ab_c = ab.clone();
            ab_c.merge(&vc_);
            let mut bc = vb.clone();
            bc.merge(&vc_);
            let mut a_bc = va.clone();
            a_bc.merge(&bc);
            proptest::prop_assert_eq!(&ab_c, &a_bc);
            // idempotent: merge(a,a) == a
            let mut aa = va.clone();
            aa.merge(&va);
            proptest::prop_assert_eq!(&aa, &va);
        }

        #[test]
        fn prop_covers_agrees_with_dominance(a in proptest::collection::vec(0u32..20, 4),
                                             b in proptest::collection::vec(0u32..20, 4)) {
            let (va, vb) = (Vc(Arc::new(a)), Vc(Arc::new(b)));
            // a ≤ b exactly when b covers every (owner, ivx) entry of a —
            // the per-notice check and the whole-timestamp check must be
            // two views of the same order.
            let entrywise = (0..va.len()).all(|i| vb.covers(i, va.get(i)));
            proptest::prop_assert_eq!(va.dominated_by(&vb), entrywise);
            // covers round-trips with set/get: after set(i, k), exactly the
            // indices up to k are covered at i.
            let mut w = vb.clone();
            for i in 0..w.len() {
                let k = va.get(i);
                w.set(i, k);
                proptest::prop_assert!(w.covers(i, k));
                proptest::prop_assert_eq!(w.get(i), k);
                proptest::prop_assert!(!w.covers(i, k + 1));
            }
        }

        #[test]
        fn prop_weight_is_strictly_monotone(a in proptest::collection::vec(0u32..50, 4),
                                            b in proptest::collection::vec(0u32..50, 4)) {
            // weight() linearizes happened-before: strict dominance must
            // mean strictly smaller weight (the diff-apply sort relies on
            // this to order causally-related records).
            let (va, vb) = (Vc(Arc::new(a)), Vc(Arc::new(b)));
            if va.dominated_by(&vb) && va != vb {
                proptest::prop_assert!(va.weight() < vb.weight());
            }
        }

        #[test]
        fn prop_dominance_is_a_partial_order(a in proptest::collection::vec(0u32..10, 3),
                                             b in proptest::collection::vec(0u32..10, 3),
                                             c in proptest::collection::vec(0u32..10, 3)) {
            let (va, vb, vc_) = (Vc(Arc::new(a)), Vc(Arc::new(b)), Vc(Arc::new(c)));
            // reflexive
            proptest::prop_assert!(va.dominated_by(&va));
            // antisymmetric
            if va.dominated_by(&vb) && vb.dominated_by(&va) {
                proptest::prop_assert_eq!(&va, &vb);
            }
            // transitive
            if va.dominated_by(&vb) && vb.dominated_by(&vc_) {
                proptest::prop_assert!(va.dominated_by(&vc_));
            }
        }
    }
}
