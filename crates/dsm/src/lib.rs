//! # repseq-dsm — TreadMarks-style software DSM with replicated sequential
//! execution
//!
//! The substrate and the contribution of the PPoPP'01 paper, in one crate:
//!
//! * a multiple-writer, lazy-invalidate release-consistent DSM (vector
//!   timestamps, intervals, write notices, twins, lazy diffs) — §2.2/§5.1
//!   of the paper;
//! * fork/join, barriers and locks in the TreadMarks style;
//! * **replicated sequential execution**: valid notices, requester
//!   election, the master-serialized multicast diff protocol with its
//!   ack-chain flow control, and the dirty-page write-protection that keeps
//!   lazy diff creation from leaking replicated writes — §5.2–§5.4.
//!
//! Applications access shared memory through typed handles backed by a
//! software page table (see `DESIGN.md` for why this substitutes for
//! `mprotect`/`SIGSEGV`).

mod cluster;
mod config;
mod diff;
mod handler;
mod interval;
mod msg;
mod page;
mod pod;
mod race;
mod rse;
mod runtime;
mod shmem;
mod state;
mod vc;

pub use cluster::{AppFn, Cluster, ClusterConfig, LaunchOutcome};
pub use config::{DsmConfig, FlowControl};
pub use diff::{Diff, DiffError, DiffRun};
pub use interval::{IntervalRecord, IntervalStore, PageId};
pub use msg::{DsmMsg, TaskPayload};
pub use page::{PageBuf, PageMeta};
pub use pod::Pod;
pub use race::{AccessKind, RaceConfig, RaceSink, SyncEdge};
pub use runtime::{DsmNode, ParkEvent, Task, TaskFn};
pub use shmem::{PageSlice, PageSliceMut, ShArray, ShVar};
pub use state::{ChainProbe, NodeState, RseProbe};
pub use vc::Vc;
