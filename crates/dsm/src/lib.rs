//! # repseq-dsm — TreadMarks-style software DSM with replicated sequential
//! execution
//!
//! The substrate and the contribution of the PPoPP'01 paper, in one crate:
//!
//! * a multiple-writer, lazy-invalidate release-consistent DSM (vector
//!   timestamps, intervals, write notices, twins, lazy diffs) — §2.2/§5.1
//!   of the paper;
//! * fork/join, barriers and locks in the TreadMarks style;
//! * **replicated sequential execution**: valid notices, requester
//!   election, the master-serialized multicast diff protocol with its
//!   ack-chain flow control, and the dirty-page write-protection that keeps
//!   lazy diff creation from leaking replicated writes — §5.2–§5.4.
//!
//! Applications access shared memory through typed handles backed by a
//! software page table (see `DESIGN.md` for why this substitutes for
//! `mprotect`/`SIGSEGV`).
//!
//! ## Layering
//!
//! The crate is organized as layers with narrow interfaces; each module
//! owns one concern and the composite types ([`NodeState`], [`DsmNode`])
//! stay thin:
//!
//! | layer | module | owns |
//! |---|---|---|
//! | consistency | `vc`, `interval`, `consistency` | vector clocks, intervals, write notices |
//! | data plane | `page`, `diff`, `dataplane` | pages, twins, diff cache, twin pool, TLB revocation |
//! | fetch | `fetch` | demand-fetch request/reply and the shared retry budget |
//! | sync | `sync` | barrier manager, distributed locks |
//! | exec | `exec` | fork/join, task payloads, the slave loop |
//! | strategy | `strategy` | how sequential sections execute ([`SeqExecStrategy`]) |
//! | runtime | `runtime`, `handler`, `cluster` | processes, NICs, the software TLB, message dispatch |

// Everything not in the `pub use` façade below is crate-internal; the
// lint keeps `pub` from silently outliving its re-export.
#![warn(unreachable_pub)]

mod arena;
mod cluster;
mod config;
mod consistency;
mod dataplane;
mod diff;
mod exec;
mod fetch;
mod handler;
mod interval;
mod msg;
mod page;
mod pod;
mod race;
mod runtime;
mod shmem;
mod state;
mod strategy;
mod sync;
mod vc;

pub use cluster::{AppFn, Cluster, ClusterConfig, LaunchOutcome};
pub use config::{DsmConfig, FlowControl, SeqExecMode};
pub use diff::{Diff, DiffError, DiffRun};
pub use exec::{ParkEvent, Task, TaskFn};
pub use interval::{IntervalData, IntervalRecord, IntervalStore, PageId};
pub use msg::{DsmMsg, TaskPayload};
pub use page::{DiffEntry, PageBuf, PageMeta};
pub use pod::Pod;
pub use race::{AccessKind, RaceConfig, RaceSink, SyncEdge};
pub use runtime::DsmNode;
pub use shmem::{PageSlice, PageSliceMut, ShArray, ShVar};
pub use state::NodeState;
pub use strategy::{ChainProbe, RseProbe, SeqExecStrategy};
pub use vc::Vc;
