//! Intervals and write notices (§5.1).
//!
//! Each node's execution is divided into intervals delimited by
//! synchronization operations. An interval record names the pages its owner
//! modified during the interval (the *write notices*) and carries the
//! interval's vector timestamp. Records travel with synchronization
//! messages; each node keeps every record it has learned in an
//! [`IntervalStore`].

use std::sync::Arc;

use repseq_stats::NodeId;

use crate::vc::Vc;

/// Identifier of a shared page.
pub type PageId = u32;

/// The immutable payload of one interval: its vector timestamp and the
/// pages it modified (the write notices). Built exactly once, at the
/// interval close, and shared by reference ever after — the store keeps
/// one `Arc`, and every record shipped at a barrier, lock grant or fork
/// clones the `Arc`, not the vectors. A barrier on an `n`-node cluster
/// fans the same records out to `n - 1` clients; without the sharing that
/// is `O(n²)` deep copies of timestamp + page-list per step.
#[derive(Debug, PartialEq)]
pub struct IntervalData {
    /// The interval's vector timestamp.
    pub vc: Vc,
    /// Pages modified during the interval (write notices), ascending.
    pub pages: Vec<PageId>,
}

/// A write-notice record for one interval, as shipped in synchronization
/// messages. Cloning a record is cheap (an `Arc` bump): fan-out paths
/// rely on that.
#[derive(Debug, Clone, PartialEq)]
pub struct IntervalRecord {
    /// The node whose interval this is.
    pub owner: NodeId,
    /// The interval index (1-based; entry `owner` of `vc` equals this).
    pub ivx: u32,
    /// The shared payload (timestamp + write notices).
    pub data: Arc<IntervalData>,
}

impl IntervalRecord {
    /// Build a record, wrapping the payload for sharing.
    pub fn new(owner: NodeId, ivx: u32, vc: Vc, pages: Vec<PageId>) -> IntervalRecord {
        IntervalRecord { owner, ivx, data: Arc::new(IntervalData { vc, pages }) }
    }

    /// The interval's vector timestamp.
    #[inline]
    pub fn vc(&self) -> &Vc {
        &self.data.vc
    }

    /// Pages modified during the interval (write notices).
    #[inline]
    pub fn pages(&self) -> &[PageId] {
        &self.data.pages
    }

    /// Approximate wire size in bytes (the wire carries the payload, not
    /// the host-side sharing).
    pub fn wire_size(&self) -> u64 {
        8 + self.data.vc.wire_size() + 4 * self.data.pages.len() as u64
    }
}

/// Everything one node knows about intervals, its own and others'.
#[derive(Debug, Default)]
pub struct IntervalStore {
    /// `per_owner[q][i]` is interval `i + 1` of node `q`. Intervals are
    /// always learned in order (synchronization messages carry every
    /// missing predecessor), so a dense vector suffices. Entries share
    /// their payload with every in-flight record of the same interval.
    per_owner: Vec<Vec<Arc<IntervalData>>>,
}

impl IntervalStore {
    /// Empty store for an `n`-node cluster.
    pub fn new(n: usize) -> Self {
        IntervalStore { per_owner: vec![Vec::new(); n] }
    }

    /// Highest interval index known for `owner` (0 = none).
    pub fn known(&self, owner: NodeId) -> u32 {
        self.per_owner[owner].len() as u32
    }

    /// Insert a record. Returns false if it was already known. Panics if a
    /// gap would form (the protocol always ships predecessors first).
    pub fn insert(&mut self, rec: IntervalRecord) -> bool {
        let have = self.known(rec.owner);
        if rec.ivx <= have {
            return false;
        }
        assert_eq!(
            rec.ivx,
            have + 1,
            "interval {} of node {} arrived before {} — protocol bug",
            rec.ivx,
            rec.owner,
            have + 1
        );
        debug_assert_eq!(rec.data.vc.get(rec.owner), rec.ivx, "vc[owner] must equal the index");
        self.per_owner[rec.owner].push(rec.data);
        true
    }

    /// Look up an interval (must be known).
    pub fn get(&self, owner: NodeId, ivx: u32) -> &IntervalData {
        &self.per_owner[owner][(ivx - 1) as usize]
    }

    /// All records this store knows that a peer with timestamp `their_vc`
    /// does not, in a legal (per-owner ascending) shipping order. This is
    /// the computation performed at barriers, lock grants and forks (§5.1:
    /// "write notices for all intervals named in q's current interval
    /// timestamp but not in the timestamp it received from p").
    pub fn records_unknown_to(&self, their_vc: &Vc) -> Vec<IntervalRecord> {
        let mut out = Vec::new();
        for (owner, list) in self.per_owner.iter().enumerate() {
            let from = their_vc.get(owner);
            for (i, data) in list.iter().enumerate().skip(from as usize) {
                out.push(IntervalRecord { owner, ivx: i as u32 + 1, data: Arc::clone(data) });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(owner: NodeId, ivx: u32, n: usize, pages: Vec<PageId>) -> IntervalRecord {
        let mut vc = Vc::zero(n);
        vc.set(owner, ivx);
        IntervalRecord::new(owner, ivx, vc, pages)
    }

    #[test]
    fn insert_in_order_and_query() {
        let mut s = IntervalStore::new(2);
        assert_eq!(s.known(0), 0);
        assert!(s.insert(rec(0, 1, 2, vec![5])));
        assert!(s.insert(rec(0, 2, 2, vec![6, 7])));
        assert_eq!(s.known(0), 2);
        assert_eq!(s.get(0, 2).pages, vec![6, 7]);
    }

    #[test]
    fn duplicate_insert_is_ignored() {
        let mut s = IntervalStore::new(2);
        assert!(s.insert(rec(1, 1, 2, vec![])));
        assert!(!s.insert(rec(1, 1, 2, vec![])));
        assert_eq!(s.known(1), 1);
    }

    #[test]
    #[should_panic(expected = "protocol bug")]
    fn gap_panics() {
        let mut s = IntervalStore::new(2);
        s.insert(rec(0, 2, 2, vec![]));
    }

    #[test]
    fn records_unknown_to_filters_by_vc() {
        let mut s = IntervalStore::new(2);
        s.insert(rec(0, 1, 2, vec![1]));
        s.insert(rec(0, 2, 2, vec![2]));
        s.insert(rec(1, 1, 2, vec![3]));
        let mut their = Vc::zero(2);
        their.set(0, 1);
        let out = s.records_unknown_to(&their);
        assert_eq!(out.len(), 2);
        assert!(out.iter().any(|r| r.owner == 0 && r.ivx == 2));
        assert!(out.iter().any(|r| r.owner == 1 && r.ivx == 1));
        // Shipping order per owner is ascending.
        let zeros = Vc::zero(2);
        let all = s.records_unknown_to(&zeros);
        assert_eq!(all.len(), 3);
        assert!(all[0].owner == 0 && all[0].ivx == 1);
        assert!(all[1].owner == 0 && all[1].ivx == 2);
    }

    #[test]
    fn wire_size_counts_pages_and_vc() {
        let r = rec(0, 1, 4, vec![1, 2, 3]);
        assert_eq!(r.wire_size(), 8 + 16 + 12);
    }

    #[test]
    fn fanned_out_records_share_the_stored_payload() {
        // A barrier re-ships the same interval to every client; each copy
        // must alias the store's payload, not deep-copy it.
        let mut s = IntervalStore::new(2);
        s.insert(rec(0, 1, 2, vec![1, 2, 3]));
        let zeros = Vc::zero(2);
        let a = s.records_unknown_to(&zeros);
        let b = s.records_unknown_to(&zeros);
        assert!(Arc::ptr_eq(&a[0].data, &b[0].data));
        let stored = s.get(0, 1);
        assert_eq!(stored.pages, a[0].pages());
        // Cloning a record is an Arc bump too.
        let c = a[0].clone();
        assert!(Arc::ptr_eq(&c.data, &a[0].data));
    }
}
