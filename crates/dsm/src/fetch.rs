//! The fetch layer: demand diff fetching with the request/reply protocol
//! and the shared timeout/resend machinery.
//!
//! Both fetch paths — the ordinary parallel-section fetch below and the
//! replicated-section fetch in [`crate::strategy::rse`] — sit on the same
//! retry discipline: wait with the configured timeout, count a retry on
//! every unproductive wakeup, and fail loudly with full diagnostics once
//! the budget is exhausted (an unconverged fetch points at a protocol bug
//! or a dead peer, not bad luck). [`RetryTimer`] is that shared
//! discipline; [`classify_reply`] is the shared stale-reply absorption.

use std::collections::HashSet;

use repseq_sim::{Ctx, Dur, Envelope, Stopped};
use repseq_stats::{MsgClass, NodeId};

use crate::config::DsmConfig;
use crate::interval::PageId;
use crate::msg::DsmMsg;
use crate::page::DiffEntry;
use crate::runtime::DsmNode;
use crate::strategy;

/// Request-id state for demand fetches.
pub(crate) struct FetchState {
    /// Sequence numbers for demand diff requests.
    pub(crate) next_req_id: u64,
}

impl FetchState {
    pub(crate) fn new() -> FetchState {
        FetchState { next_req_id: 0 }
    }
}

impl crate::state::NodeState {
    /// Fresh request id for demand fetches.
    pub(crate) fn fresh_req_id(&mut self) -> u64 {
        self.fetch.next_req_id += 1;
        self.fetch.next_req_id
    }
}

/// The shared timeout/retry discipline of both fetch paths. Each
/// unproductive wait (timeout, or a wakeup that did not complete the
/// fault) counts one retry against `max_retries`; exceeding the budget
/// panics with the caller-supplied diagnostic, because under any
/// survivable loss rate the expected number of retries is tiny.
pub(crate) struct RetryTimer {
    timeout: Dur,
    max_retries: u32,
    retries: u32,
}

impl RetryTimer {
    pub(crate) fn from_cfg(cfg: &DsmConfig) -> RetryTimer {
        RetryTimer { timeout: cfg.rse_timeout, max_retries: cfg.rse_max_retries, retries: 0 }
    }

    /// The configured wait, for callers that drive `recv_timeout` directly
    /// (the replicated fetch re-checks completability before deciding a
    /// timeout was unproductive).
    pub(crate) fn timeout(&self) -> Dur {
        self.timeout
    }

    /// Wait for the next message with the retry timeout. `None` means the
    /// wait timed out and a retry was recorded — the caller resends;
    /// `describe` renders the panic diagnostic if the budget is exhausted.
    pub(crate) fn recv(
        &mut self,
        ctx: &Ctx<DsmMsg>,
        describe: impl FnOnce(u32) -> String,
    ) -> Result<Option<Envelope<DsmMsg>>, Stopped> {
        match ctx.recv_timeout(self.timeout)? {
            Some(env) => Ok(Some(env)),
            None => {
                self.note_retry(describe);
                Ok(None)
            }
        }
    }

    /// Record an unproductive round (timeout, or a wakeup after which the
    /// fault still cannot complete) against the budget.
    pub(crate) fn note_retry(&mut self, describe: impl FnOnce(u32) -> String) {
        self.retries += 1;
        if self.retries > self.max_retries {
            panic!("{}", describe(self.max_retries));
        }
    }
}

/// What a message received inside a fetch loop means for that fetch.
pub(crate) enum ReplyClass {
    /// The reply to the outstanding request: cache these diffs.
    Matching(Vec<DiffEntry>),
    /// A reply to a request this fetch already gave up on (the resend
    /// layer's duplicate whose original won the race): drop silently.
    Stale,
    /// Not a diff reply at all; the caller absorbs or rejects it.
    Other(DsmMsg),
}

/// Classify a message received while a fetch for (`want_page`, `req_id`)
/// is outstanding.
pub(crate) fn classify_reply(msg: DsmMsg, want_page: PageId, req_id: u64) -> ReplyClass {
    match msg {
        DsmMsg::DiffReply { page, diffs, req_id: rid } if rid == req_id => {
            debug_assert_eq!(page, want_page);
            ReplyClass::Matching(diffs)
        }
        DsmMsg::DiffReply { .. } => ReplyClass::Stale,
        other => ReplyClass::Other(other),
    }
}

impl DsmNode {
    /// Handle a read fault: fetch the missing diffs, apply them, validate.
    /// Inside a replicated section the fault goes through the RSE multicast
    /// protocol instead of the parallel per-owner requests.
    pub(crate) fn read_fault(&self, p: PageId) -> Result<(), Stopped> {
        let node = self.node();
        self.topo.stats.on_page_fault(node);
        self.ctx.charge(self.st.lock().cfg.fault_overhead);
        let in_rse = self.st.lock().rse.active;
        if in_rse {
            strategy::rse::fetch_replicated(self, p)
        } else {
            self.fetch_normal(p)
        }
    }

    /// Ordinary lazy-release-consistency fetch: request each missing diff
    /// from its writer, in parallel (§5.4.3: "With normal sequential
    /// execution, all missing diffs for a page are requested in parallel").
    fn fetch_normal(&self, p: PageId) -> Result<(), Stopped> {
        let node = self.node();
        let t0 = self.ctx.now();
        let mut requested = false;
        loop {
            // New write notices can arrive while we wait for replies (our
            // handler keeps merging barrier/lock traffic into the shared
            // state), so the plan is recomputed — and the final apply is
            // atomic with the completeness check — until it converges.
            let (plan, req_id) = {
                let mut st = self.st.lock();
                let plan = st.fetch_plan(p);
                if plan.is_empty() {
                    let cost = st.apply_cached_diffs(p);
                    drop(st);
                    self.ctx.charge(cost);
                    break;
                }
                (plan, st.fresh_req_id())
            };
            requested = true;
            let mut owners: Vec<NodeId> = plan.keys().copied().collect();
            owners.sort_unstable();
            let mut outstanding: HashSet<NodeId> = HashSet::new();
            for &owner in &owners {
                let ivxs = plan[&owner].clone();
                debug_assert_ne!(owner, node, "own diffs are always cached");
                let msg = DsmMsg::DiffRequest { page: p, ivxs, reply_to: self.ctx.pid(), req_id };
                let size = msg.wire_size();
                self.nic.unicast(
                    &self.ctx,
                    owner,
                    self.topo.handler_pids[owner],
                    MsgClass::DiffRequest,
                    size,
                    msg,
                );
                outstanding.insert(owner);
            }
            // The unicast transport is logically reliable (TreadMarks ran
            // its own reliability layer over UDP): when loss injection is
            // allowed to touch diff frames, that layer is this resend loop.
            let mut timer = RetryTimer::from_cfg(&self.st.lock().cfg);
            while !outstanding.is_empty() {
                let env = match timer.recv(&self.ctx, |retries| {
                    format!(
                        "node {node}: diff fetch for page {p} incomplete after \
                         {retries} resends (owners still outstanding: {outstanding:?})"
                    )
                })? {
                    Some(env) => env,
                    None => {
                        for &owner in owners.iter().filter(|o| outstanding.contains(o)) {
                            let msg = DsmMsg::DiffRequest {
                                page: p,
                                ivxs: plan[&owner].clone(),
                                reply_to: self.ctx.pid(),
                                req_id,
                            };
                            let size = msg.wire_size();
                            self.nic.unicast(
                                &self.ctx,
                                owner,
                                self.topo.handler_pids[owner],
                                MsgClass::DiffRequest,
                                size,
                                msg,
                            );
                        }
                        continue;
                    }
                };
                match classify_reply(env.msg, p, req_id) {
                    ReplyClass::Matching(diffs) => {
                        // A reply from a pid that is not a protocol handler
                        // is a straggler from a *retired* exchange (e.g. an
                        // RSE out-of-band reply sent by an app process whose
                        // req_seq collides with our req_id): the sender, not
                        // the id, proves it cannot answer this fetch. Absorb
                        // it like any other stale duplicate instead of
                        // killing the node.
                        let Some(owner) =
                            self.topo.handler_pids.iter().position(|&h| h == env.from)
                        else {
                            self.topo.stats.on_stale_reply(node);
                            continue;
                        };
                        let mut st = self.st.lock();
                        st.cache_diffs(p, &diffs);
                        outstanding.remove(&owner);
                    }
                    ReplyClass::Stale => {
                        // Reply to an aborted fetch: count it, drop it.
                        self.topo.stats.on_stale_reply(node);
                    }
                    ReplyClass::Other(other) => {
                        if !self.absorb_stray(other) {
                            panic!("node {node}: unexpected message while fetching page {p}");
                        }
                    }
                }
            }
        }
        if requested {
            let waited = self.ctx.now() - t0;
            self.topo.stats.on_diff_stall(node, waited);
            self.topo.stats.on_diff_request_complete(node, waited);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::*;
    use crate::diff::Diff;
    use crate::page::DiffRecord;

    fn reply(page: PageId, req_id: u64) -> DsmMsg {
        let rec = Arc::new(DiffRecord { owner: 1, covers: vec![1], diff: Diff::default() });
        DsmMsg::DiffReply { page, diffs: vec![rec], req_id }
    }

    /// The PR-2 deadlock fix depends on resent requests reusing the same
    /// req_id and duplicate replies being dropped: a reply carrying any
    /// other id is stale, whatever page it names.
    #[test]
    fn stale_replies_are_absorbed_not_matched() {
        // The reply to the outstanding request matches.
        assert!(
            matches!(classify_reply(reply(7, 3), 7, 3), ReplyClass::Matching(d) if d.len() == 1)
        );
        // A duplicate of an *earlier* fetch's reply (old req_id) is stale —
        // even for the same page.
        assert!(matches!(classify_reply(reply(7, 2), 7, 3), ReplyClass::Stale));
        // A reply to a later, aborted fetch likewise.
        assert!(matches!(classify_reply(reply(9, 99), 7, 3), ReplyClass::Stale));
        // Non-reply traffic is handed back for stray absorption.
        assert!(matches!(
            classify_reply(DsmMsg::WakePage { page: 7 }, 7, 3),
            ReplyClass::Other(DsmMsg::WakePage { page: 7 })
        ));
    }

    /// The retry budget counts unproductive rounds and panics with the
    /// caller's diagnostic once exhausted.
    #[test]
    #[should_panic(expected = "gave up after 2")]
    fn retry_budget_is_enforced() {
        let cfg = DsmConfig { rse_max_retries: 2, ..DsmConfig::default() };
        let mut timer = RetryTimer::from_cfg(&cfg);
        timer.note_retry(|_| unreachable!());
        timer.note_retry(|_| unreachable!());
        timer.note_retry(|max| format!("gave up after {max}"));
    }

    /// The resend discipline `fetch_normal` composes out of [`RetryTimer`]
    /// and [`classify_reply`], driven end to end in a scripted simulation:
    ///
    /// * back-to-back timeouts each resend with the **same** `req_id` as the
    ///   original request (the PR-2 deadlock fix);
    /// * the duplicate reply produced by a resend race is classified stale
    ///   by a *later* fetch and absorbed without consuming retry budget;
    /// * each timeout advances virtual time by exactly the configured wait,
    ///   so event-queue restructuring that reordered the deadline wake
    ///   against the late reply would surface here.
    #[test]
    fn back_to_back_timeouts_reuse_req_id_and_later_fetch_absorbs_the_duplicate() {
        use std::sync::atomic::{AtomicU32, Ordering};
        use std::sync::Mutex as StdMutex;

        use repseq_sim::{Sim, SimTime};

        let cfg = DsmConfig {
            rse_timeout: Dur::from_micros(100),
            rse_max_retries: 5,
            ..DsmConfig::default()
        };
        let seen_req_ids = Arc::new(StdMutex::new(Vec::<u64>::new()));
        let stale_absorbed = Arc::new(AtomicU32::new(0));
        let mut sim = Sim::<DsmMsg>::new();

        // Pid 0: the faulting node's fetch loop, two fetch rounds.
        let cfg_f = cfg.clone();
        let stale_f = Arc::clone(&stale_absorbed);
        sim.spawn("fetcher", move |ctx| {
            let request = |ctx: &repseq_sim::Ctx<DsmMsg>, req_id: u64| {
                let msg = DsmMsg::DiffRequest { page: 7, ivxs: vec![1], reply_to: 0, req_id };
                ctx.send(1, msg, ctx.now());
            };
            let fetch = |req_id: u64| -> Result<(u32, SimTime), Stopped> {
                let t0 = ctx.now();
                request(&ctx, req_id);
                let mut timer = RetryTimer::from_cfg(&cfg_f);
                let mut resends = 0u32;
                loop {
                    let env = match timer.recv(&ctx, |r| format!("fetch gave up after {r}"))? {
                        Some(env) => env,
                        None => {
                            // Unproductive round: resend, reusing req_id.
                            resends += 1;
                            request(&ctx, req_id);
                            continue;
                        }
                    };
                    match classify_reply(env.msg, 7, req_id) {
                        ReplyClass::Matching(diffs) => {
                            assert_eq!(diffs.len(), 1);
                            break Ok((resends, env.at.max(t0)));
                        }
                        ReplyClass::Stale => {
                            stale_f.fetch_add(1, Ordering::SeqCst);
                        }
                        ReplyClass::Other(m) => panic!("unexpected message {}", m.kind()),
                    }
                }
            };
            // Round A: the owner stays silent through two full timeouts.
            let start = ctx.now();
            let (resends_a, _) = fetch(1)?;
            assert_eq!(resends_a, 2, "two back-to-back timeouts, two resends");
            assert!(
                ctx.now() >= start + cfg_f.rse_timeout * 2,
                "each timeout must wait the configured interval"
            );
            // Round B: completes despite the round-A duplicate landing first.
            let (resends_b, _) = fetch(2)?;
            assert_eq!(resends_b, 0, "round B reply arrives before its deadline");
            Ok(())
        });

        // Pid 1: a scripted owner. Ignores the first two requests (forcing
        // the back-to-back timeouts), then answers the second resend twice —
        // the duplicate is timed to land in the middle of fetch round B.
        let seen = Arc::clone(&seen_req_ids);
        sim.spawn_daemon("owner", move |ctx| {
            let mut n_requests = 0u32;
            while let Ok(env) = ctx.recv() {
                let DsmMsg::DiffRequest { page, reply_to, req_id, .. } = env.msg else {
                    panic!("owner expected only requests");
                };
                seen.lock().unwrap().push(req_id);
                n_requests += 1;
                match n_requests {
                    1 | 2 => { /* silent: let the fetcher time out */ }
                    3 => {
                        // Reply to the second resend, plus the duplicate the
                        // resend race produces; the duplicate arrives after
                        // round A completed and round B began.
                        ctx.send(reply_to, reply(page, req_id), ctx.now() + Dur::from_micros(10));
                        ctx.send(reply_to, reply(page, req_id), ctx.now() + Dur::from_micros(30));
                    }
                    4 => {
                        ctx.send(reply_to, reply(page, req_id), ctx.now() + Dur::from_micros(50));
                    }
                    n => panic!("unexpected request #{n}"),
                }
            }
            Ok(())
        });

        sim.run().unwrap();
        assert_eq!(
            *seen_req_ids.lock().unwrap(),
            vec![1, 1, 1, 2],
            "resends must reuse the original req_id; the second fetch gets a fresh one"
        );
        assert_eq!(
            stale_absorbed.load(Ordering::SeqCst),
            1,
            "round B must absorb exactly the one stale duplicate from round A"
        );
    }

    /// Regression: a `DiffReply` whose `req_id` collides with the
    /// outstanding fetch but whose *sender* is not a protocol handler — a
    /// straggler from a retired exchange, such as an RSE out-of-band reply
    /// sent by an application process — used to kill the node with
    /// `expect("diff reply from unknown handler")`. It must be absorbed and
    /// counted instead. The retry timeout is set below the request/reply
    /// round trip, so every genuine reply is also delayed past at least one
    /// `RetryTimer` resend and the resend duplicates are absorbed
    /// downstream of the fetch.
    #[test]
    fn matching_reply_from_unknown_sender_is_absorbed_not_fatal() {
        use repseq_stats::Stats;

        use crate::cluster::{AppFn, Cluster, ClusterConfig};
        use crate::shmem::ShArray;

        let n = 2;
        let stats = Stats::new(n);
        let mut cfg = ClusterConfig::paper(n);
        // Below the ~200 us unicast round trip: the fetch times out and
        // resends before any genuine reply can arrive.
        cfg.dsm.rse_timeout = Dur::from_micros(60);
        cfg.dsm.rse_max_retries = 30;
        let mut cl = Cluster::new(cfg, std::sync::Arc::clone(&stats));
        let x: ShArray<u64> = cl.alloc_array_page_aligned(8);

        let master: AppFn = Box::new(move |node| {
            node.barrier()?;
            // Fetches node 1's write; the forged reply (below) is already
            // queued or in flight and is consumed inside this fetch loop.
            assert_eq!(x.get(&node, 0)?, 42);
            node.barrier()?;
            // Drain the resend-race duplicates so they are absorbed while
            // the process is still alive.
            while let Some(env) = node.ctx().recv_timeout(Dur::from_millis(2))? {
                assert!(node.absorb_stray(env.msg), "only strays expected after the run");
            }
            Ok(())
        });
        let writer: AppFn = Box::new(move |node| {
            x.set(&node, 0, 42)?;
            node.barrier()?;
            // Forge the straggler: a reply for the page the master is about
            // to fetch, carrying the colliding req_id 1, sent from this
            // *application* pid (pid 3 — not in handler_pids).
            let page = (x.addr(0) / node.page_size() as u64) as PageId;
            let msg = DsmMsg::DiffReply { page, diffs: Vec::new(), req_id: 1 };
            node.ctx().send(2, msg, node.ctx().now() + Dur::from_micros(20));
            node.barrier()?;
            Ok(())
        });
        cl.launch(vec![master, writer]).expect("forged reply must not kill the fetch");

        let stale = stats.snapshot().total_agg_with_startup().stale_replies;
        assert!(
            stale >= 2,
            "expected the forged reply plus at least one resend duplicate to be \
             absorbed and counted, got {stale}"
        );
    }
}
