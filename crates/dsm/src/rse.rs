//! Replicated sequential execution (§5.2–§5.4): the paper's contribution.
//!
//! Application side: the valid-notice exchange at the join before a
//! replicated section, requester election on faults, and the wait for
//! multicast diffs. Handler side: the master-serialized forwarded requests
//! and the id-ordered reply chain with null-ack flow control.

use repseq_sim::{Ctx, Stopped};
use repseq_stats::{MsgClass, NodeId};

use crate::interval::PageId;
use crate::msg::{DsmMsg, TaskPayload};
use crate::runtime::DsmNode;
use crate::state::{ChainState, NodeState};
use crate::vc::Vc;

// =================================================================
// Application side
// =================================================================

impl DsmNode {
    /// Master: run the valid-notice exchange at the join before a
    /// replicated section (§5.4.1: "Valid notices are exchanged only at the
    /// join before a sequential section"), then fork the replicated `task`
    /// to every slave together with the aggregated table.
    pub fn fork_replicated(&self, task: TaskPayload) -> Result<(), Stopped> {
        assert!(self.is_master());
        let n = self.topo.n;
        let t0 = self.ctx.now();

        // 1. Collect everyone's valid-notice deltas.
        for s in 1..n {
            let msg = DsmMsg::ValidNoticeRequest { reply_to: self.ctx.pid() };
            let size = msg.wire_size();
            self.nic.unicast(&self.ctx, s, self.topo.app_pids[s], MsgClass::ValidNotice, size, msg);
        }
        let mut table: Vec<(NodeId, PageId, Vc)> = {
            let mut st = self.st.lock();
            st.take_valid_delta().into_iter().map(|(p, vc)| (0usize, p, vc)).collect()
        };
        let mut pending = n - 1;
        while pending > 0 {
            let env = self.ctx.recv()?;
            match env.msg {
                DsmMsg::ValidNoticeReply { from, delta } => {
                    let mut st = self.st.lock();
                    for (p, vc) in delta {
                        st.valid_known[from].insert(p, vc.clone());
                        table.push((from, p, vc));
                    }
                    pending -= 1;
                }
                DsmMsg::WakePage { .. } => {}
                other => panic!("master: unexpected {} during valid-notice exchange", other.kind()),
            }
        }
        table.sort_by_key(|(q, p, _)| (*q, *p));

        // 2. Distribute the table so every node elects identical
        //    requesters: the same data goes to everyone, so it travels as
        //    ONE multicast over the hub to the protocol handlers. The
        //    master blocks until delivery — the forks go over the switch
        //    and must not overtake the table.
        let msg = DsmMsg::ValidNoticeTable { deltas: table };
        let size = msg.wire_size();
        let dsts: Vec<_> =
            self.topo.all_handlers().into_iter().filter(|&(node, _)| node != 0).collect();
        let at = self.nic.multicast_reliable(&self.ctx, &dsts, MsgClass::ValidNotice, size, msg);
        let service = self.st.lock().cfg.service_overhead;
        let resume_at = at + service * 2;
        let now = self.ctx.now();
        if resume_at > now {
            self.ctx.sleep(resume_at - now)?;
        }
        self.topo.stats.on_valid_notice_time(0, self.ctx.now() - t0);

        // 3. Fork the replicated body.
        self.fork_slaves(task, true)
    }

    /// Enter the replicated section (both master and slaves, after the fork
    /// records are applied): write-protect dirty pages (§5.3) and snapshot
    /// the entry timestamp.
    ///
    /// Both this transition and section retirement (`exit_replicated`)
    /// revoke write permission, so the state methods bump the node's
    /// protection generation — every software-TLB entry cached before the
    /// section is revalidated on its next use, which is what forces
    /// replicated writes back through `write_fault` and its §5.3
    /// pre-section diff.
    pub fn enter_replicated(&self) {
        {
            let mut st = self.st.lock();
            st.enter_replicated();
        }
        // From here to the exit barrier this node's accesses belong to the
        // *replica* — one logical thread executing on every node (§5.2).
        self.race_sync(crate::race::SyncEdge::RseEnter);
    }

    /// Master: wait for every slave's end-of-section signal, release them,
    /// and retire the section. "At the fork at the end of a sequential
    /// section, threads wait until all other threads have finished ... No
    /// memory coherence information is exchanged" (§5.2).
    pub fn end_replicated_master(&self) -> Result<(), Stopped> {
        assert!(self.is_master());
        self.race_sync(crate::race::SyncEdge::RseExitArrive);
        let n = self.topo.n;
        let mut pending = n - 1;
        {
            // SeqDone signals that arrived while the master was blocked in
            // its own replicated fault were buffered.
            let mut st = self.st.lock();
            pending -= st.pending_seqdone;
            st.pending_seqdone = 0;
        }
        while pending > 0 {
            let env = self.ctx.recv()?;
            match env.msg {
                DsmMsg::SeqDone { .. } => pending -= 1,
                DsmMsg::WakePage { .. } => {}
                other => panic!("master: unexpected {} ending replicated section", other.kind()),
            }
        }
        for s in 1..n {
            let msg = DsmMsg::SeqGo;
            let size = msg.wire_size();
            self.nic.unicast(&self.ctx, s, self.topo.app_pids[s], MsgClass::Sync, size, msg);
        }
        self.ctx.charge(self.sync_cost());
        self.st.lock().exit_replicated();
        self.race_sync(crate::race::SyncEdge::RseExitDepart);
        Ok(())
    }

    /// Slave: signal completion of the replicated body and wait for the
    /// master's go-ahead, then retire the section.
    pub fn end_replicated_slave(&self) -> Result<(), Stopped> {
        assert!(!self.is_master());
        let node = self.node();
        self.race_sync(crate::race::SyncEdge::RseExitArrive);
        let msg = DsmMsg::SeqDone { from: node };
        let size = msg.wire_size();
        self.ctx.charge(self.sync_cost());
        self.nic.unicast(&self.ctx, 0, self.topo.app_pids[0], MsgClass::Sync, size, msg);
        loop {
            let env = self.ctx.recv()?;
            match env.msg {
                DsmMsg::SeqGo => break,
                DsmMsg::WakePage { .. } => {}
                other => panic!("node {node}: unexpected {} awaiting SeqGo", other.kind()),
            }
        }
        self.st.lock().exit_replicated();
        self.race_sync(crate::race::SyncEdge::RseExitDepart);
        Ok(())
    }
}

/// A read fault inside a replicated section (§5.4): elect the requester
/// deterministically; the elected node sends one request (serialized
/// through the master); everyone waits for the multicast reply chain,
/// which the node's handler applies. Timeouts trigger the direct recovery
/// path.
pub(crate) fn fetch_replicated(node: &DsmNode, p: PageId) -> Result<(), Stopped> {
    let me = node.node();
    let t0 = node.ctx().now();
    let (send_request, wanted) = {
        let mut st = node.st.lock();
        if st.can_complete(p) {
            // The diffs already arrived via an earlier multicast.
            let cost = st.apply_cached_diffs(p);
            drop(st);
            node.ctx().charge(cost);
            return Ok(());
        }
        let (requester, wanted) = st.elect_requester(p);
        let send = requester == me && !st.rse_requested.contains(&p);
        if send {
            st.rse_requested.insert(p);
        }
        st.waiting_page = Some(p);
        (send, wanted)
    };
    if send_request {
        let msg = DsmMsg::McastRequest { page: p, wanted, requester: me };
        let size = msg.wire_size();
        // Serialized at the master (§5.4.2): a point-to-point message to
        // the master, which multicasts the forwarded request.
        node.nic.unicast(
            node.ctx(),
            0,
            node.topo.handler_pids[0],
            MsgClass::DiffRequest,
            size,
            msg,
        );
    }
    let (timeout, max_retries) = {
        let st = node.st.lock();
        (st.cfg.rse_timeout, st.cfg.rse_max_retries)
    };
    let mut retries: u32 = 0;
    loop {
        match node.ctx().recv_timeout(timeout)? {
            Some(env) => match env.msg {
                DsmMsg::WakePage { page } if page == p => {
                    if try_complete(node, p) {
                        break;
                    }
                    // An out-of-band recovery reply arrived but our copy
                    // still cannot complete (the reply covered someone
                    // else's missing diffs, or part of ours was lost):
                    // re-evaluate and re-request what is still missing now,
                    // instead of sleeping out another full `rse_timeout`.
                    retries += 1;
                    check_recovery_budget(node, p, me, retries, max_retries);
                    send_recovery_requests(node, p, me);
                }
                DsmMsg::WakePage { page } => {
                    debug_assert_ne!(page, p); // handled above
                }
                other => {
                    if !node.absorb_stray(other) {
                        panic!(
                            "node {me}: unexpected message waiting for multicast diffs of page {p}"
                        );
                    }
                }
            },
            None => {
                // §5.4.2 recovery: "When a thread times out on receive, it
                // sends out a request asking for its missing diffs
                // regardless of other threads ... and the replies are
                // multicast to all threads."
                //
                // Re-check completability first: the diffs may all have
                // arrived without a wakeup reaching us, and a resend loop
                // with an empty fetch plan would otherwise re-arm forever
                // sending nothing.
                if try_complete(node, p) {
                    break;
                }
                retries += 1;
                check_recovery_budget(node, p, me, retries, max_retries);
                send_recovery_requests(node, p, me);
            }
        }
    }
    let waited = node.ctx().now() - t0;
    node.topo.stats.on_diff_stall(me, waited);
    if send_request {
        node.topo.stats.on_diff_request_complete(me, waited);
    }
    Ok(())
}

/// If the waited-on page is already valid — or every diff it needs is
/// cached — finish the fault locally and return true.
fn try_complete(node: &DsmNode, p: PageId) -> bool {
    let mut st = node.st.lock();
    if st.page_mut(p).valid {
        st.waiting_page = None;
        return true;
    }
    if st.can_complete(p) {
        let cost = st.apply_cached_diffs(p);
        st.waiting_page = None;
        drop(st);
        node.ctx().charge(cost);
        return true;
    }
    false
}

/// Unicast a §5.4.2 recovery request to every owner of a still-missing
/// diff. The owners reply with out-of-band multicasts ([`OOB_SEQ`]).
fn send_recovery_requests(node: &DsmNode, p: PageId, me: NodeId) {
    let plan = {
        let mut st = node.st.lock();
        st.recovery_rounds += 1;
        st.fetch_plan(p)
    };
    let mut owners: Vec<NodeId> = plan.keys().copied().collect();
    owners.sort_unstable();
    for owner in owners {
        let msg = DsmMsg::RecoveryRequest {
            page: p,
            ivxs: plan[&owner].clone(),
            requester: me,
            reply_mcast: true,
        };
        let size = msg.wire_size();
        node.nic.unicast(
            node.ctx(),
            owner,
            node.topo.handler_pids[owner],
            MsgClass::DiffRequest,
            size,
            msg,
        );
    }
}

/// A recovery that never converges points at a protocol bug or a dead
/// owner, not at bad luck — every retry re-requests every missing diff, so
/// the expected number of rounds under any survivable loss rate is tiny.
/// Fail loudly with the exact state instead of looping forever.
fn check_recovery_budget(node: &DsmNode, p: PageId, me: NodeId, retries: u32, max_retries: u32) {
    if retries <= max_retries {
        return;
    }
    let mut st = node.st.lock();
    let missing = st.fetch_plan(p);
    let valid = st.page_mut(p).valid;
    let waiting = st.waiting_page;
    panic!(
        "node {me}: page {p}: §5.4.2 recovery did not converge after {max_retries} \
         retries; still missing diffs {missing:?} (valid={valid}, waiting={waiting:?})"
    );
}

// =================================================================
// Handler side
// =================================================================

/// Request sequence number used by out-of-band recovery replies.
pub(crate) const OOB_SEQ: u64 = u64::MAX;

/// Master handler: queue a forwarded request; start it if the medium is
/// free ("Diff requests from different threads are serialized at the
/// master thread", §5.4.2). Returns a message to multicast, if any.
/// Under [`FlowControl::Concurrent`] the request is forwarded immediately
/// with no serialization.
pub(crate) fn master_enqueue(
    st: &mut NodeState,
    page: PageId,
    wanted: Vec<(NodeId, u32)>,
    requester: NodeId,
) -> Option<DsmMsg> {
    if !st.in_rse {
        // The section this request belongs to already ended: its requester
        // completed via timeout recovery while the request was in flight.
        // Forwarding it now would start a zombie chain in a later section.
        return None;
    }
    if st.cfg.flow_control == crate::config::FlowControl::Concurrent {
        let req_seq = st.mcast_next_seq;
        st.mcast_next_seq += 1;
        return Some(DsmMsg::McastForward { page, wanted, requester, req_seq });
    }
    st.mcast_queue.push_back((page, wanted, requester));
    master_try_start(st)
}

/// Master handler: begin the next queued forwarded request if none is in
/// flight.
pub(crate) fn master_try_start(st: &mut NodeState) -> Option<DsmMsg> {
    if st.mcast_inflight.is_some() {
        return None;
    }
    let (page, wanted, requester) = st.mcast_queue.pop_front()?;
    let req_seq = st.mcast_next_seq;
    st.mcast_next_seq += 1;
    st.mcast_inflight = Some(req_seq);
    Some(DsmMsg::McastForward { page, wanted, requester, req_seq })
}

/// Any handler: a forwarded request arrived; set up the reply chain. The
/// chain starts at node 0: each node multicasts its diffs — or a null
/// acknowledgment — once it has received everything from its predecessor
/// (§5.4.2 flow control).
///
/// Under [`FlowControl::Concurrent`] there is no chain: the handler
/// immediately produces its own diffs, if it has any (the return value),
/// and sends no null acknowledgments.
pub(crate) fn on_forward(
    st: &mut NodeState,
    page: PageId,
    wanted: Vec<(NodeId, u32)>,
    requester: NodeId,
    req_seq: u64,
) -> Option<(DsmMsg, repseq_sim::Dur)> {
    if st.cfg.flow_control == crate::config::FlowControl::Concurrent {
        let me = st.node;
        let my_ivxs: Vec<u32> =
            wanted.iter().filter(|&&(owner, _)| owner == me).map(|&(_, ivx)| ivx).collect();
        if my_ivxs.is_empty() {
            return None;
        }
        let (cost, diffs) = st.serve_diff_request(page, &my_ivxs);
        return Some((DsmMsg::McastDiffReply { page, diffs, turn: me, req_seq }, cost));
    }
    st.chains.insert(req_seq, ChainState { page, wanted, requester, next_turn: 0, holes: 0 });
    take_turn(st, req_seq)
}

/// Does this node hold the next turn of chain `req_seq`? If so, produce the
/// turn message (diff reply or null ack) and the diff-creation cost.
pub(crate) fn take_turn(st: &mut NodeState, req_seq: u64) -> Option<(DsmMsg, repseq_sim::Dur)> {
    let me = st.node;
    let (page, my_ivxs) = {
        let chain = st.chains.get(&req_seq)?;
        if chain.next_turn != me {
            return None;
        }
        let my_ivxs: Vec<u32> =
            chain.wanted.iter().filter(|&&(owner, _)| owner == me).map(|&(_, ivx)| ivx).collect();
        (chain.page, my_ivxs)
    };
    if my_ivxs.is_empty() {
        Some((DsmMsg::McastNullAck { page, turn: me, req_seq }, repseq_sim::Dur::ZERO))
    } else {
        let (cost, diffs) = st.serve_diff_request(page, &my_ivxs);
        Some((DsmMsg::McastDiffReply { page, diffs, turn: me, req_seq }, cost))
    }
}

/// Record that turn `turn` of chain `req_seq` was observed. Returns true if
/// the chain completed (the last node has spoken).
///
/// Turns can arrive with gaps: a dropped turn frame means the next observed
/// turn skips the lost node(s). The chain must tolerate that explicitly —
/// advance to `max(next_turn, turn + 1)`, record the hole — rather than
/// assert turn-by-turn delivery, because the node whose frame was lost has
/// already taken its turn and will not retransmit; the requester's timeout
/// recovery (§5.4.2) fetches the missing diffs directly. Duplicate or
/// late-arriving turns (`turn < next_turn`) are ignored.
pub(crate) fn advance_chain(st: &mut NodeState, req_seq: u64, turn: NodeId) -> bool {
    let n = st.n;
    let Some(chain) = st.chains.get_mut(&req_seq) else {
        return false;
    };
    if turn < chain.next_turn {
        // A duplicate or a frame that arrived after the chain moved past
        // it: the chain state must not move backwards.
        return false;
    }
    let holes = (turn - chain.next_turn) as u64;
    if holes > 0 {
        // Turns [next_turn, turn) were lost on this node's link. Count
        // them so the torture harness can assert the recovery path was
        // actually exercised; completion below no longer implies every
        // node's diffs were observed.
        chain.holes += holes;
        st.chain_holes += holes;
    }
    chain.next_turn = turn + 1;
    if chain.next_turn == n {
        st.chains.remove(&req_seq);
        true
    } else {
        false
    }
}

/// Incorporate multicast diffs at a handler: cache them, and if the local
/// copy can now be completed (and is actually missing something — nodes
/// with valid copies ignore the traffic), apply and wake a waiting
/// application. Returns (apply cost, wake page).
pub(crate) fn incorporate_diffs(
    st: &mut NodeState,
    page: PageId,
    diffs: &[crate::page::DiffEntry],
) -> (repseq_sim::Dur, Option<PageId>) {
    st.cache_diffs(page, diffs);
    let meta = st.page_mut(page);
    if meta.valid {
        return (repseq_sim::Dur::ZERO, None);
    }
    if !st.can_complete(page) {
        return (repseq_sim::Dur::ZERO, None);
    }
    let cost = st.apply_cached_diffs(page);
    let wake = if st.waiting_page == Some(page) { Some(page) } else { None };
    (cost, wake)
}

/// Convenience used by the handler loop to multicast a message to every
/// handler.
pub(crate) fn multicast_to_handlers(
    node_nic: &repseq_net::Nic,
    ctx: &Ctx<DsmMsg>,
    topo: &crate::runtime::Topology,
    class: MsgClass,
    msg: DsmMsg,
) {
    let size = msg.wire_size();
    node_nic.multicast(ctx, &topo.all_handlers(), class, size, msg);
}

// =================================================================
// Unit tests for the chain-advance bookkeeping (the gap-tolerance
// regression: see `advance_chain`'s doc comment).
// =================================================================

#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    use std::sync::Arc;

    use super::*;
    use crate::config::DsmConfig;

    fn state_with_chain(n: usize, req_seq: u64) -> NodeState {
        let mut st = NodeState::new(1, n, DsmConfig::default(), Arc::new(HashMap::new()));
        st.chains.insert(
            req_seq,
            ChainState { page: 7, wanted: Vec::new(), requester: 0, next_turn: 0, holes: 0 },
        );
        st
    }

    /// A dropped turn frame must not wedge the chain: the next observed
    /// turn skips over it and the skip is recorded as a hole.
    #[test]
    fn advance_chain_tolerates_turn_gaps() {
        let mut st = state_with_chain(4, 0);
        assert!(!advance_chain(&mut st, 0, 0));
        // Turn 1's frame was lost on this node's link; turn 2 arrives next.
        assert!(!advance_chain(&mut st, 0, 2));
        assert_eq!(st.chains[&0].holes, 1);
        assert_eq!(st.chain_holes, 1);
        assert!(advance_chain(&mut st, 0, 3), "last turn completes the chain");
        assert!(st.chains.is_empty());
        assert_eq!(st.chain_holes, 1, "node-level hole count survives chain retirement");
    }

    /// Duplicates and frames arriving after the chain moved past their turn
    /// must not move the chain backwards or recount holes.
    #[test]
    fn advance_chain_ignores_duplicate_and_late_turns() {
        let mut st = state_with_chain(4, 9);
        assert!(!advance_chain(&mut st, 9, 1));
        assert_eq!(st.chain_holes, 1); // turn 0 was skipped
        assert!(!advance_chain(&mut st, 9, 0)); // late copy of turn 0
        assert!(!advance_chain(&mut st, 9, 1)); // duplicate of turn 1
        assert_eq!(st.chains[&9].next_turn, 2);
        assert_eq!(st.chain_holes, 1);
        // Turns for unknown chains (already retired, or never forwarded
        // here) are a no-op.
        assert!(!advance_chain(&mut st, 42, 0));
        assert_eq!(st.chain_holes, 1);
    }

    /// Even if every turn but the last is lost, the final frame completes
    /// the chain — with all missing turns on the books, so completion is
    /// never mistaken for full delivery.
    #[test]
    fn advance_chain_completes_past_trailing_gap() {
        let mut st = state_with_chain(3, 2);
        assert!(advance_chain(&mut st, 2, 2));
        assert!(st.chains.is_empty());
        assert_eq!(st.chain_holes, 2);
    }
}
