//! Per-node protocol state and the pure (communication-free) parts of the
//! TreadMarks protocol. Methods that model work return the virtual-time
//! cost for the caller to charge; methods never touch the network — the
//! runtime and handler layers do that.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use repseq_sim::{Dur, Pid};
use repseq_stats::{host, NodeId};

use crate::config::DsmConfig;
use crate::diff::Diff;
use crate::interval::{IntervalRecord, IntervalStore, PageId};
use crate::page::{DiffEntry, DiffRecord, PageBuf, PageMeta};
use crate::vc::Vc;

/// A queued multicast request awaiting the master's serialization:
/// (page, wanted diffs, requester).
pub type QueuedRequest = (PageId, Vec<(NodeId, u32)>, NodeId);

/// Twin-pool cap for nodes whose cluster never called
/// [`NodeState::size_twin_pool`] (unit tests, hand-built states). Clusters
/// size the pool from the shared-segment page count instead, since a full
/// sweep over the segment can twin every page of it.
const TWIN_POOL_DEFAULT_CAP: usize = 64;

/// Most buffers [`NodeState::size_twin_pool`] prewarms eagerly; beyond
/// this, first-touch allocation is cheaper than the up-front memory.
const TWIN_POOL_PREWARM_MAX: usize = 256;

/// Take a page buffer from `pool` (or allocate) and fill it with `src`.
/// Free functions rather than methods so callers can hold a `&mut` into
/// `self.pages` at the same time (disjoint field borrows).
fn pool_take(pool: &mut Vec<Box<[u8]>>, src: &[u8]) -> Box<[u8]> {
    match pool.pop() {
        Some(mut buf) if buf.len() == src.len() => {
            host::twin_pool_hit();
            buf.copy_from_slice(src);
            buf
        }
        _ => {
            host::twin_pool_miss();
            src.to_vec().into_boxed_slice()
        }
    }
}

/// Return a page buffer to `pool` for reuse.
fn pool_recycle(pool: &mut Vec<Box<[u8]>>, cap: usize, buf: Box<[u8]>) {
    if pool.len() < cap {
        pool.push(buf);
    }
}

/// Pending lock-acquire request queued at the current holder.
#[derive(Debug, Clone)]
pub struct PendingAcquire {
    pub from: NodeId,
    pub vc: Vc,
    pub reply_to: Pid,
}

/// Reply-chain state for one forwarded multicast request (§5.4.2).
#[derive(Debug)]
pub struct ChainState {
    pub page: PageId,
    pub wanted: Vec<(NodeId, u32)>,
    pub requester: NodeId,
    /// Whose turn it is to multicast next.
    pub next_turn: NodeId,
    /// Turns this node never observed (dropped frames skipped over when a
    /// later turn arrived). A chain that completes with holes did NOT
    /// deliver every node's diffs here; timeout recovery fills the gap.
    pub holes: u64,
}

/// Snapshot of one reply chain, taken by [`NodeState::rse_probe`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainProbe {
    pub req_seq: u64,
    pub page: PageId,
    pub requester: NodeId,
    pub next_turn: NodeId,
    pub holes: u64,
}

/// A read-only snapshot of one node's replicated-section protocol state
/// (see [`NodeState::rse_probe`]). `repseq-check` asserts over these after
/// every torture run: at quiescence, `chains`, `mcast_queue_len`,
/// `mcast_inflight`, `rse_requested` and `waiting_page` must all be empty,
/// and `in_rse` false.
#[derive(Debug, Clone)]
pub struct RseProbe {
    pub node: NodeId,
    pub in_rse: bool,
    pub chains: Vec<ChainProbe>,
    pub mcast_queue_len: usize,
    pub mcast_inflight: Option<u64>,
    pub rse_requested: Vec<PageId>,
    pub waiting_page: Option<PageId>,
    pub chain_holes: u64,
    pub recovery_rounds: u64,
}

impl RseProbe {
    /// True when nothing of the replicated-section machinery is left
    /// behind: the invariant every node must satisfy once a run (or a
    /// section) has fully retired.
    pub fn is_quiescent(&self) -> bool {
        !self.in_rse
            && self.chains.is_empty()
            && self.mcast_queue_len == 0
            && self.mcast_inflight.is_none()
            && self.rse_requested.is_empty()
            && self.waiting_page.is_none()
    }
}

/// One node's complete protocol state. Shared (behind a mutex) between the
/// node's application process and its protocol-handler process; the
/// simulation runs one process at a time, so the mutex is never contended —
/// it only satisfies the compiler. **Never hold it across a yielding call.**
pub struct NodeState {
    pub node: NodeId,
    pub n: usize,
    pub cfg: DsmConfig,
    /// Current vector time. Entry `node` counts closed intervals.
    pub vc: Vc,
    pub pages: HashMap<PageId, PageMeta>,
    pub intervals: IntervalStore,
    /// Diff cache: local creations and remote fetches, never evicted
    /// (garbage collection is out of scope, see DESIGN.md). One record can
    /// be keyed under several intervals it covers.
    pub diffs: HashMap<(PageId, NodeId, u32), DiffEntry>,
    /// Pages with a twin (writes not yet diffed).
    pub dirty_pages: Vec<PageId>,
    /// Recycled page-sized buffers for twins: every write fault needs a
    /// page copy, and the steady state of a fault-heavy run would
    /// otherwise allocate and free one page per fault. Buffers return
    /// here when a twin is consumed by diff creation or dropped at
    /// replicated-section exit. Capped at `twin_pool_cap`.
    pub twin_pool: Vec<Box<[u8]>>,
    /// Pool cap: the shared-segment page count once the cluster calls
    /// [`NodeState::size_twin_pool`], [`TWIN_POOL_DEFAULT_CAP`] otherwise.
    pub twin_pool_cap: usize,
    /// Protection generation counter: bumped at every protection
    /// *revocation* or out-of-band content change that could make a cached
    /// translation stale — interval close, invalidation by write notice,
    /// §5.3 write-protect at replicated-section entry/exit, diff
    /// application, page broadcast. Permission *grants* (a write fault
    /// enabling writing) do not bump: a stale read-only entry is merely
    /// conservative (write lookups miss and take the slow path), and the
    /// counter is node-global, so bumping on every fault would flush the
    /// whole TLB each time a page is first written in an interval.
    /// The application process's software TLB validates entries against it
    /// with one relaxed load, so TLB hits skip the mutex and page walk.
    /// Shared (`Arc`) because the handler process mutates protections while
    /// the TLB lives with the application process.
    pub prot_gen: Arc<AtomicU64>,
    /// Pages written (write-faulted) during the current, still-open
    /// interval. Consumed into write notices at the interval close; pages
    /// are then re-protected so that a later write faults again and is
    /// attributed to its own interval.
    pub cur_writes: Vec<PageId>,
    /// Initial page images (shared, written before the run starts).
    pub initial: Arc<HashMap<PageId, Arc<[u8]>>>,

    // ---- replicated sequential execution ----
    pub in_rse: bool,
    /// The (cluster-identical) vector time at replicated-section entry.
    pub rse_entry_vc: Vc,
    /// Pages written during the current replicated section.
    pub rse_dirty: Vec<PageId>,
    /// Valid notices of every node, from the exchanges at replicated-
    /// section entry. `valid_known[q][page]` is node `q`'s valid notice.
    pub valid_known: Vec<HashMap<PageId, Vc>>,
    /// Own pages whose valid notice changed since the last exchange.
    pub valid_changed: HashSet<PageId>,
    /// Pages this node has already sent a multicast request for, in the
    /// current replicated section.
    pub rse_requested: HashSet<PageId>,
    /// Page the application process is blocked on (handler wakes it).
    pub waiting_page: Option<PageId>,
    /// Active reply chains, by request sequence number.
    pub chains: HashMap<u64, ChainState>,
    /// Total chain turns this node skipped over because the frame was lost
    /// (see [`ChainState::holes`]); monotone over the whole run, so the
    /// torture harness can tell whether a schedule exercised the gap path.
    pub chain_holes: u64,
    /// §5.4.2 recovery rounds this node's application initiated (timeouts
    /// or unproductive out-of-band wakeups that re-requested missing
    /// diffs); monotone over the run, likewise for harness assertions.
    pub recovery_rounds: u64,

    // ---- master-only multicast serialization (§5.4.2) ----
    pub mcast_queue: VecDeque<QueuedRequest>,
    pub mcast_inflight: Option<u64>,
    pub mcast_next_seq: u64,

    // ---- barrier manager (node 0 only) ----
    pub barrier_arrivals: Vec<(NodeId, Vc, Pid)>,

    // ---- locks ----
    /// Locks whose token is at this node.
    pub lock_token: HashSet<u32>,
    /// Locks currently held by this node's application.
    pub lock_held: HashSet<u32>,
    /// Acquire requests waiting for this node to release.
    pub lock_pending: HashMap<u32, VecDeque<PendingAcquire>>,
    /// Manager-side: the node an acquire should be forwarded to.
    pub lock_last: HashMap<u32, NodeId>,

    // ---- fork/join (master side) ----
    /// Master: last known vector time of each node, from joins.
    pub peer_vcs: Vec<Vc>,
    /// What the master/barrier manager is known to know (from the last
    /// fork or barrier departure); arrivals and joins send only records
    /// beyond this.
    pub master_known: Vc,
    /// Joins that arrived while the master was blocked on something else
    /// (e.g. its own page fault); consumed by `wait_joins`.
    pub pending_joins: Vec<(NodeId, Vc, Vec<IntervalRecord>)>,
    /// SeqDone signals that arrived early, likewise.
    pub pending_seqdone: usize,

    /// Sequence numbers for demand diff requests.
    pub next_req_id: u64,
}

impl NodeState {
    pub fn new(
        node: NodeId,
        n: usize,
        cfg: DsmConfig,
        initial: Arc<HashMap<PageId, Arc<[u8]>>>,
    ) -> NodeState {
        NodeState {
            node,
            n,
            cfg,
            vc: Vc::zero(n),
            pages: HashMap::new(),
            intervals: IntervalStore::new(n),
            diffs: HashMap::new(),
            dirty_pages: Vec::new(),
            twin_pool: Vec::new(),
            twin_pool_cap: TWIN_POOL_DEFAULT_CAP,
            prot_gen: Arc::new(AtomicU64::new(0)),
            cur_writes: Vec::new(),
            initial,
            in_rse: false,
            rse_entry_vc: Vc::zero(n),
            rse_dirty: Vec::new(),
            valid_known: vec![HashMap::new(); n],
            valid_changed: HashSet::new(),
            rse_requested: HashSet::new(),
            waiting_page: None,
            chains: HashMap::new(),
            chain_holes: 0,
            recovery_rounds: 0,
            mcast_queue: VecDeque::new(),
            mcast_inflight: None,
            mcast_next_seq: 0,
            barrier_arrivals: Vec::new(),
            lock_token: HashSet::new(),
            lock_held: HashSet::new(),
            lock_pending: HashMap::new(),
            lock_last: HashMap::new(),
            peer_vcs: vec![Vc::zero(n); n],
            master_known: Vc::zero(n),
            pending_joins: Vec::new(),
            pending_seqdone: 0,
            next_req_id: 0,
        }
    }

    /// The page contents, materialized from the initial image on first
    /// touch.
    pub fn page_data(&mut self, p: PageId) -> &mut [u8] {
        let ps = self.cfg.page_size;
        let initial = Arc::clone(&self.initial);
        let n = self.n;
        let page = self.pages.entry(p).or_insert_with(|| PageMeta::new(n));
        page.materialize(ps, initial.get(&p))
    }

    /// A shared handle to the page contents (materialized on first touch),
    /// for the software TLB and the page guards.
    pub fn page_buf(&mut self, p: PageId) -> PageBuf {
        let ps = self.cfg.page_size;
        let initial = Arc::clone(&self.initial);
        let n = self.n;
        let page = self.pages.entry(p).or_insert_with(|| PageMeta::new(n));
        page.buf(ps, initial.get(&p)).clone()
    }

    /// Advance the protection generation, invalidating every software-TLB
    /// entry of this node. Called by every method that changes a page's
    /// protection or replaces/mutates its contents outside the TLB's view.
    /// The test-only `tlb_break_generation_bumps` config flag turns this
    /// into a no-op so the coherence oracle can be shown to catch the
    /// resulting stale translations.
    #[inline]
    pub fn bump_prot_gen(&self) {
        if self.cfg.tlb_break_generation_bumps {
            return;
        }
        self.prot_gen.fetch_add(1, Ordering::Relaxed);
    }

    /// Size the twin pool for a shared segment of `seg_pages` pages: a
    /// segment-wide fault burst (one twin per page) must recycle rather
    /// than allocate, so the cap tracks the segment size, and the pool is
    /// prewarmed so even the first burst hits.
    pub fn size_twin_pool(&mut self, seg_pages: usize) {
        self.twin_pool_cap = seg_pages.max(TWIN_POOL_DEFAULT_CAP);
        let warm = seg_pages.min(TWIN_POOL_PREWARM_MAX);
        let ps = self.cfg.page_size;
        while self.twin_pool.len() < warm {
            self.twin_pool.push(vec![0u8; ps].into_boxed_slice());
        }
    }

    /// This node's view of page `p`, created on demand.
    pub fn page_mut(&mut self, p: PageId) -> &mut PageMeta {
        let n = self.n;
        self.pages.entry(p).or_insert_with(|| PageMeta::new(n))
    }

    /// Close the current interval (performed at every release and acquire).
    /// If pages were written, records the interval with write notices for
    /// exactly the pages written during it, re-protects them (so a later
    /// write faults and is attributed to its own interval), and advances
    /// the local entry of the vector time.
    pub fn close_interval(&mut self) {
        if self.cur_writes.is_empty() {
            return;
        }
        let node = self.node;
        let ivx = self.vc.get(node) + 1;
        self.vc.set(node, ivx);
        let mut pages = std::mem::take(&mut self.cur_writes);
        pages.sort_unstable();
        for &p in &pages {
            let page = self.page_mut(p);
            page.notices.push((node, ivx));
            page.own_undiffed.push(ivx);
            page.written_cur = false;
            page.writable = false;
            // Our copy trivially contains our own writes: advance the valid
            // notice so elections and fault logic treat own intervals as
            // covered.
            page.valid_at.set(node, ivx);
            self.valid_changed.insert(p);
        }
        let rec = IntervalRecord { owner: node, ivx, vc: self.vc.clone(), pages };
        let inserted = self.intervals.insert(rec);
        debug_assert!(inserted);
        self.bump_prot_gen(); // written pages were re-protected
    }

    /// Create the diff for a twinned page (lazy diff creation, §5.1).
    /// Returns the modeled cost. Afterwards the page is clean: no twin,
    /// write-protected, out of the dirty set.
    pub fn create_own_diff(&mut self, p: PageId) -> Dur {
        let node = self.node;
        let mut cost = self.cfg.diff_create_cost();
        let page = self.pages.get_mut(&p).expect("diffing unknown page");
        let mut twin = page.twin.take().expect("diffing a page without a twin");
        let data = page.data.as_ref().expect("twinned page must be materialized").slice();
        let timer = host::start();
        let diff = Diff::create(&twin, data);
        host::record_diff_create(timer, 2 * data.len() as u64);
        let ivxs = std::mem::take(&mut page.own_undiffed);
        let written_cur = page.written_cur;
        page.rse_protected = false;
        if written_cur {
            // The diff was requested mid-interval: it already contains the
            // current interval's writes so far, but that interval's write
            // notice does not exist yet. Re-twin immediately so the rest of
            // the current interval stays separable — reusing the buffer of
            // the twin just consumed instead of cloning the page.
            cost += self.cfg.twin_cost();
            let page = self.pages.get_mut(&p).unwrap();
            twin.copy_from_slice(page.data.as_ref().unwrap().slice());
            page.twin = Some(twin);
            // stays writable and in the dirty set
        } else {
            pool_recycle(&mut self.twin_pool, self.twin_pool_cap, twin);
            let page = self.pages.get_mut(&p).unwrap();
            page.writable = false;
            self.dirty_pages.retain(|&q| q != p);
            self.bump_prot_gen(); // write permission revoked
        }
        let record = Arc::new(DiffRecord { owner: node, covers: ivxs.clone(), diff });
        for ivx in ivxs {
            self.diffs.insert((p, node, ivx), Arc::clone(&record));
        }
        cost
    }

    /// Incorporate interval records received at an acquire (barrier
    /// departure, lock grant, fork). Closes the current interval first
    /// (an acquire starts a new interval), inserts the records, posts write
    /// notices and invalidates uncovered pages — creating diffs for our own
    /// concurrent modifications first (the multiple-writer protocol).
    /// Returns the modeled cost.
    pub fn apply_records(&mut self, records: Vec<IntervalRecord>, sender_vc: &Vc) -> Dur {
        self.close_interval();
        let mut cost = Dur::ZERO;
        let mut invalidated = false;
        for rec in records {
            // Records of our own intervals (echoed back by a barrier
            // manager or lock chain) are already known and skipped by the
            // duplicate check below.
            let (owner, ivx, pages) = (rec.owner, rec.ivx, rec.pages.clone());
            if !self.intervals.insert(rec) {
                continue;
            }
            for p in pages {
                let page = self.page_mut(p);
                page.notices.push((owner, ivx));
                if page.valid && !page.valid_at.covers(owner, ivx) {
                    // Invalidate. If we have concurrent un-diffed writes,
                    // diff them now so they stay separable (§5.1).
                    if page.twin.is_some() {
                        cost += self.create_own_diff(p);
                        let page = self.page_mut(p);
                        page.valid = false;
                        page.writable = false;
                    } else {
                        page.valid = false;
                        page.writable = false;
                    }
                    invalidated = true;
                }
            }
        }
        if invalidated {
            self.bump_prot_gen(); // write-notice invalidation
        }
        self.vc.merge(sender_vc);
        cost
    }

    /// Handle a write fault on a *valid* page: create the twin if the page
    /// has none (and, during a replicated section, the §5.3 pre-section
    /// diff first). A page re-protected at an interval close keeps its
    /// twin; the fault only re-enables writing and records the page in the
    /// new interval's write set. Returns the cost to charge.
    pub fn write_fault(&mut self, p: PageId) -> Dur {
        let mut cost = self.cfg.fault_overhead;
        let in_rse = self.in_rse;
        let rse_protected = self.pages.get(&p).map(|pg| pg.rse_protected).unwrap_or(false);
        if in_rse && rse_protected {
            // First write to a dirty page inside a replicated section:
            // create the pre-section diff before the page may change
            // (§5.3), then fall through to re-twin.
            cost += self.create_own_diff(p);
        }
        let need_twin = self.pages.get(&p).map(|pg| pg.twin.is_none()).unwrap_or(true);
        if need_twin {
            cost += self.cfg.twin_cost();
            self.page_data(p); // materialize before twinning
            let page = self.pages.get_mut(&p).unwrap();
            debug_assert!(page.valid, "write fault on an invalid page");
            let twin = pool_take(&mut self.twin_pool, page.data.as_ref().unwrap().slice());
            page.twin = Some(twin);
            if !in_rse {
                self.dirty_pages.push(p);
            }
        }
        let page = self.pages.get_mut(&p).unwrap();
        page.writable = true;
        if in_rse {
            if !page.rse_dirty {
                page.rse_dirty = true;
                self.rse_dirty.push(p);
            }
        } else if !page.written_cur {
            page.written_cur = true;
            self.cur_writes.push(p);
        }
        cost
    }

    /// The write notices this node's copy of `p` is missing.
    pub fn needed_notices(&mut self, p: PageId) -> Vec<(NodeId, u32)> {
        self.page_mut(p).missing_notices()
    }

    /// Group the needed notices that are not already in the diff cache by
    /// owner: the requests an ordinary page fault sends (in parallel, to
    /// each last writer).
    pub fn fetch_plan(&mut self, p: PageId) -> HashMap<NodeId, Vec<u32>> {
        let needed = self.needed_notices(p);
        let mut plan: HashMap<NodeId, Vec<u32>> = HashMap::new();
        for (owner, ivx) in needed {
            if !self.diffs.contains_key(&(p, owner, ivx)) {
                plan.entry(owner).or_default().push(ivx);
            }
        }
        plan
    }

    /// Apply every cached missing diff to the local copy of `p` in a legal
    /// order and mark the page valid. All needed diffs must be cached.
    /// Returns the modeled cost.
    pub fn apply_cached_diffs(&mut self, p: PageId) -> Dur {
        let needed = self.needed_notices(p);
        // Collect the distinct records behind the needed notices.
        let mut records: Vec<(u64, DiffEntry)> = Vec::new();
        for &(owner, ivx) in &needed {
            let rec = self
                .diffs
                .get(&(p, owner, ivx))
                .unwrap_or_else(|| panic!("diff ({p},{owner},{ivx}) not cached"))
                .clone();
            if records.iter().any(|(_, r)| Arc::ptr_eq(r, &rec)) {
                continue;
            }
            // Sort key: the vector time of the *earliest* covered interval,
            // in a linear extension of happened-before (dominated
            // timestamps have strictly smaller weights). The earliest
            // interval is the right anchor for a merged record: a remote
            // write notice that intervened after one of the covered
            // intervals would have invalidated the writer's page and cut
            // the merge there, so every other diff either precedes the
            // earliest covered interval (and must apply before this record)
            // or is concurrent with all covered intervals (and, in a
            // race-free program, byte-disjoint).
            let key_ivx = rec.covers[0];
            debug_assert!(key_ivx <= self.intervals.known(owner));
            let weight = self.intervals.get(owner, key_ivx).vc.weight();
            records.push((weight, rec));
        }
        records
            .sort_by(|a, b| (a.0, a.1.owner, a.1.covers[0]).cmp(&(b.0, b.1.owner, b.1.covers[0])));
        let mut cost = Dur::ZERO;
        let node = self.node;
        let page_size = self.cfg.page_size;
        let initial = Arc::clone(&self.initial);
        let page = self.page_mut(p);
        let data = page.materialize(page_size, initial.get(&p));
        let payload: u64 = records.iter().map(|(_, rec)| rec.diff.payload_bytes()).sum();
        // One fused pass over the page instead of one pass per record;
        // the modeled cost still charges every record's full payload, as
        // a real DSM would copy it.
        let timer = host::start();
        let applied = Diff::apply_fused(records.iter().map(|(_, rec)| &rec.diff), data);
        host::record_diff_apply(timer, payload);
        if let Err(e) = applied {
            // A run outside the page means a corrupted or mis-sized diff.
            // The in-bounds runs were applied; keep the node running on
            // its best-effort copy rather than tearing the cluster down.
            eprintln!("node {node}: page {p}: {e}");
        }
        cost += self.cfg.diff_apply_cost(payload);
        // The copy now reflects everything we know — plus every interval
        // the applied diffs cover, even if we have not yet seen those
        // intervals' records. Recording the full coverage is what prevents
        // the same bytes from being re-applied later under a different
        // interval tag, over newer local writes.
        let mut valid_at = self.vc.clone();
        for (_, rec) in &records {
            let o = rec.owner;
            valid_at.set(o, valid_at.get(o).max(rec.max_ivx()));
        }
        let page = self.pages.get_mut(&p).unwrap();
        page.valid = true;
        page.valid_at = valid_at;
        self.valid_changed.insert(p);
        // The handler may have applied these diffs while the application
        // process was blocked elsewhere: its TLB must re-check validity.
        self.bump_prot_gen();
        cost
    }

    /// Serve a diff request for intervals `ivxs` of this node on page `p`:
    /// create the diff lazily if needed and return the entries. This is the
    /// §5.3-critical path: during a replicated section the twin still holds
    /// the pre-section base, so the diff created here contains only
    /// pre-section modifications.
    pub fn serve_diff_request(&mut self, p: PageId, ivxs: &[u32]) -> (Dur, Vec<DiffEntry>) {
        let node = self.node;
        let mut cost = Dur::ZERO;
        let mut out: Vec<DiffEntry> = Vec::new();
        for &ivx in ivxs {
            if !self.diffs.contains_key(&(p, node, ivx)) {
                // Lazy creation: must still have the twin.
                let page = self.pages.get(&p);
                assert!(
                    page.map(|pg| pg.twin.is_some()).unwrap_or(false),
                    "node {node}: diff ({p},{ivx}) requested but neither cached nor creatable"
                );
                cost += self.create_own_diff(p);
            }
            let rec = self.diffs.get(&(p, node, ivx)).unwrap().clone();
            if !out.iter().any(|r| Arc::ptr_eq(r, &rec)) {
                out.push(rec);
            }
        }
        (cost, out)
    }

    /// Record fetched diffs in the cache, keyed under every interval each
    /// record covers.
    pub fn cache_diffs(&mut self, p: PageId, entries: &[DiffEntry]) {
        for rec in entries {
            for &ivx in &rec.covers {
                self.diffs.entry((p, rec.owner, ivx)).or_insert_with(|| Arc::clone(rec));
            }
        }
    }

    /// True if every needed diff for `p` is cached (the page can be made
    /// valid locally).
    pub fn can_complete(&mut self, p: PageId) -> bool {
        let needed = self.needed_notices(p);
        needed.iter().all(|&(owner, ivx)| self.diffs.contains_key(&(p, owner, ivx)))
    }

    /// Fresh request id for demand fetches.
    pub fn fresh_req_id(&mut self) -> u64 {
        self.next_req_id += 1;
        self.next_req_id
    }

    // ---- replicated sequential execution (§5.2, §5.3) ----

    /// Enter a replicated section: write-protect every dirty page so lazy
    /// diff creation cannot leak replicated writes (§5.3), and snapshot the
    /// entry vector time (identical on every node after the fork).
    pub fn enter_replicated(&mut self) {
        assert!(!self.in_rse, "nested replicated sections are not supported");
        self.in_rse = true;
        self.rse_entry_vc = self.vc.clone();
        self.rse_dirty.clear();
        self.rse_requested.clear();
        for &p in &self.dirty_pages.clone() {
            let page = self.page_mut(p);
            debug_assert!(page.twin.is_some());
            page.writable = false;
            page.rse_protected = true;
        }
        // §5.3 write-protect: TLB entries caching write permission for the
        // dirty pages are now stale — the first write inside the section
        // must fault so the pre-section diff gets created.
        self.bump_prot_gen();
    }

    /// Leave a replicated section: unprotect the dirty pages that were
    /// never written (§5.3: "the remaining write-protected dirty pages are
    /// unprotected and returned to their normal state") and retire the
    /// pages written during the section — their twins are dropped, they
    /// stay valid everywhere, and they produce no write notices.
    pub fn exit_replicated(&mut self) {
        assert!(self.in_rse);
        self.in_rse = false;
        for &p in &self.dirty_pages.clone() {
            let page = self.page_mut(p);
            if page.rse_protected {
                // Back to the normal post-interval-close state: twinned and
                // write-protected, so the next write faults and lands in
                // its own interval.
                page.rse_protected = false;
                page.writable = false;
            }
        }
        let entry_vc = self.rse_entry_vc.clone();
        for p in std::mem::take(&mut self.rse_dirty) {
            if let Some(twin) = self.page_mut(p).twin.take() {
                pool_recycle(&mut self.twin_pool, self.twin_pool_cap, twin);
            }
            let page = self.page_mut(p);
            page.writable = false;
            page.rse_dirty = false;
            page.valid = true;
            page.valid_at = entry_vc.clone();
            self.valid_changed.insert(p);
        }
        self.waiting_page = None;
        self.rse_requested.clear();
        // Every fault of the section has been satisfied by now (SeqDone /
        // SeqGo have been exchanged), so any chain still tracked was wedged
        // by loss and will never advance: its requester already completed
        // via timeout recovery. Same for the master's forward queue — a
        // queued request whose requester recovered must not start a zombie
        // chain in a later section.
        self.chains.clear();
        self.mcast_queue.clear();
        self.mcast_inflight = None;
        // Section retirement re-protected the pages written in it.
        self.bump_prot_gen();
    }

    /// This node's valid-notice delta since the last exchange (§5.4.1).
    pub fn take_valid_delta(&mut self) -> Vec<(PageId, Vc)> {
        let mut out: Vec<(PageId, Vc)> = self
            .valid_changed
            .drain()
            .map(|p| {
                let vc = self.pages.get(&p).map(|pg| pg.valid_at.clone());
                (p, vc)
            })
            .filter_map(|(p, vc)| vc.map(|vc| (p, vc)))
            .collect();
        out.sort_by_key(|(p, _)| *p);
        // Mirror into our own slot of the exchanged table.
        for (p, vc) in &out {
            self.valid_known[self.node].insert(*p, vc.clone());
        }
        out
    }

    /// Merge exchanged valid-notice deltas into the table.
    pub fn merge_valid_deltas(&mut self, deltas: &[(NodeId, PageId, Vc)]) {
        for (q, p, vc) in deltas {
            self.valid_known[*q].insert(*p, vc.clone());
        }
    }

    // ---- inspection (repseq-check) ----

    /// A read-only snapshot of the replicated-section protocol state, for
    /// invariant checking. Safe to take at any point; never perturbs the
    /// protocol.
    pub fn rse_probe(&self) -> RseProbe {
        let mut chains: Vec<ChainProbe> = self
            .chains
            .iter()
            .map(|(&req_seq, c)| ChainProbe {
                req_seq,
                page: c.page,
                requester: c.requester,
                next_turn: c.next_turn,
                holes: c.holes,
            })
            .collect();
        chains.sort_by_key(|c| c.req_seq);
        let mut rse_requested: Vec<PageId> = self.rse_requested.iter().copied().collect();
        rse_requested.sort_unstable();
        RseProbe {
            node: self.node,
            in_rse: self.in_rse,
            chains,
            mcast_queue_len: self.mcast_queue.len(),
            mcast_inflight: self.mcast_inflight,
            rse_requested,
            waiting_page: self.waiting_page,
            chain_holes: self.chain_holes,
            recovery_rounds: self.recovery_rounds,
        }
    }

    /// The bytes of page `p` as a local read would see them, or `None` if
    /// the local copy is invalid. Read-only: unlike `page_data`, an
    /// untouched page is *not* materialized into the page table — the lazy
    /// initial image is copied out instead — so inspection never perturbs
    /// protocol state.
    pub fn inspect_page(&self, p: PageId) -> Option<Vec<u8>> {
        match self.pages.get(&p) {
            Some(pg) if !pg.valid => None,
            Some(pg) => Some(match &pg.data {
                Some(d) => d.slice().to_vec(),
                None => self.initial_image(p),
            }),
            None => Some(self.initial_image(p)),
        }
    }

    fn initial_image(&self, p: PageId) -> Vec<u8> {
        match self.initial.get(&p) {
            Some(img) => img.to_vec(),
            None => vec![0u8; self.cfg.page_size],
        }
    }

    /// Requester election for a replicated-section fault on `p` (§5.4.1):
    /// every node computes, from the identical write notices and exchanged
    /// valid notices, which nodes fault and which diffs are missing on any
    /// of them. The faulting node with the lowest identifier requests the
    /// union. Returns `(requester, union_of_missing)`.
    pub fn elect_requester(&mut self, p: PageId) -> (NodeId, Vec<(NodeId, u32)>) {
        let n = self.n;
        let me = self.node;
        let page = self.page_mut(p);
        let notices = page.notices.clone();
        let zero = Vc::zero(n);
        let mut requester = None;
        let mut wanted: Vec<(NodeId, u32)> = Vec::new();
        for q in 0..n {
            let valid_q = if q == me {
                // Our own live valid notice (identical to what we exchanged,
                // plus deterministic updates all nodes replay identically).
                self.pages.get(&p).map(|pg| &pg.valid_at).unwrap_or(&zero)
            } else {
                self.valid_known[q].get(&p).unwrap_or(&zero)
            };
            let missing: Vec<(NodeId, u32)> =
                notices.iter().copied().filter(|&(o, i)| !valid_q.covers(o, i)).collect();
            if !missing.is_empty() {
                requester.get_or_insert(q);
                for m in missing {
                    if !wanted.contains(&m) {
                        wanted.push(m);
                    }
                }
            }
        }
        wanted.sort();
        (requester.expect("election on a page nobody faults on"), wanted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(node: NodeId, n: usize) -> NodeState {
        NodeState::new(node, n, DsmConfig::default(), Arc::new(HashMap::new()))
    }

    /// Simulate a local write for tests: the write-fault dance plus the
    /// actual byte store.
    fn fake_write(st: &mut NodeState, p: PageId, offset: usize, val: u8) {
        let (valid, writable) =
            st.pages.get(&p).map(|pg| (pg.valid, pg.writable)).unwrap_or((true, false));
        assert!(valid, "fake_write on an invalid page");
        if !writable {
            st.write_fault(p);
        }
        st.page_data(p)[offset] = val;
    }

    #[test]
    fn close_interval_records_write_notices() {
        let mut st = state(0, 2);
        fake_write(&mut st, 3, 10, 9);
        st.close_interval();
        assert_eq!(st.vc.get(0), 1);
        assert_eq!(st.intervals.known(0), 1);
        assert_eq!(st.intervals.get(0, 1).pages, vec![3]);
        let page = st.page_mut(3);
        assert_eq!(page.notices, vec![(0, 1)]);
        assert_eq!(page.own_undiffed, vec![1]);
        assert!(page.valid_at.covers(0, 1));
    }

    #[test]
    fn empty_interval_is_not_recorded() {
        let mut st = state(0, 2);
        st.close_interval();
        assert_eq!(st.vc.get(0), 0);
        assert_eq!(st.intervals.known(0), 0);
    }

    #[test]
    fn own_diff_covers_all_undiffed_intervals() {
        let mut st = state(0, 2);
        fake_write(&mut st, 3, 0, 1);
        st.close_interval();
        // Page stays dirty; second interval re-notices it.
        fake_write(&mut st, 3, 1, 2);
        st.close_interval();
        assert_eq!(st.page_mut(3).own_undiffed, vec![1, 2]);
        st.create_own_diff(3);
        assert!(st.diffs.contains_key(&(3, 0, 1)));
        assert!(st.diffs.contains_key(&(3, 0, 2)));
        assert!(Arc::ptr_eq(&st.diffs[&(3, 0, 1)], &st.diffs[&(3, 0, 2)]));
        let page = st.page_mut(3);
        assert!(page.twin.is_none() && !page.writable);
        assert!(st.dirty_pages.is_empty());
    }

    #[test]
    fn apply_records_invalidates_uncovered_pages() {
        let mut st = state(1, 2);
        let mut vc = Vc::zero(2);
        vc.set(0, 1);
        let rec = IntervalRecord { owner: 0, ivx: 1, vc: vc.clone(), pages: vec![7] };
        st.apply_records(vec![rec], &vc);
        let page = st.page_mut(7);
        assert!(!page.valid);
        assert_eq!(page.notices, vec![(0, 1)]);
        assert!(st.vc.covers(0, 1));
    }

    #[test]
    fn apply_records_diffs_concurrent_local_writes_first() {
        // False sharing: we wrote the page, a concurrent interval of node 0
        // also wrote it. Our writes must be diffed before invalidation.
        let mut st = state(1, 2);
        fake_write(&mut st, 7, 100, 42);
        let mut vc = Vc::zero(2);
        vc.set(0, 1);
        let rec = IntervalRecord { owner: 0, ivx: 1, vc: vc.clone(), pages: vec![7] };
        let cost = st.apply_records(vec![rec], &vc);
        assert!(cost > Dur::ZERO, "diff creation must be charged");
        // apply_records closed our interval (ivx 1 of node 1) first.
        assert!(st.diffs.contains_key(&(7, 1, 1)));
        let page = st.page_mut(7);
        assert!(!page.valid);
        assert!(page.twin.is_none());
    }

    #[test]
    fn fetch_plan_groups_missing_by_owner() {
        let mut st = state(2, 3);
        for (owner, ivx) in [(0u32, 1u32), (0, 2), (1, 1)] {
            let mut vc = Vc::zero(3);
            vc.set(owner as usize, ivx);
            if ivx > 1 {
                vc.set(owner as usize, ivx);
            }
            let mut vcfix = Vc::zero(3);
            vcfix.set(owner as usize, ivx);
            let rec =
                IntervalRecord { owner: owner as usize, ivx, vc: vcfix.clone(), pages: vec![9] };
            st.apply_records(vec![rec], &vcfix);
        }
        // Cache one of them: plan must exclude it.
        st.diffs.insert(
            (9, 0, 1),
            Arc::new(DiffRecord { owner: 0, covers: vec![1], diff: Diff::default() }),
        );
        let plan = st.fetch_plan(9);
        assert_eq!(plan[&0], vec![2]);
        assert_eq!(plan[&1], vec![1]);
    }

    #[test]
    fn apply_cached_diffs_orders_by_happened_before() {
        let ps = DsmConfig::default().page_size;
        // Node 0 writes byte 0 = 1 in interval 1, then (after node 1 saw
        // it) node 1 writes byte 0 = 2 in its interval 1. Node 2 must end
        // with 2.
        let mut st = state(2, 3);
        let mut vc01 = Vc::zero(3);
        vc01.set(0, 1);
        let mut vc11 = vc01.clone();
        vc11.set(1, 1); // node 1's interval knows node 0's
        let r0 = IntervalRecord { owner: 0, ivx: 1, vc: vc01.clone(), pages: vec![4] };
        let r1 = IntervalRecord { owner: 1, ivx: 1, vc: vc11.clone(), pages: vec![4] };
        st.apply_records(vec![r0, r1], &vc11);
        // Diffs: node 0 wrote 1, node 1 wrote 2 at the same offset.
        let base = vec![0u8; ps];
        let mut a = base.clone();
        a[0] = 1;
        let mut b = base.clone();
        b[0] = 2;
        st.diffs.insert(
            (4, 0, 1),
            Arc::new(DiffRecord { owner: 0, covers: vec![1], diff: Diff::create(&base, &a) }),
        );
        st.diffs.insert(
            (4, 1, 1),
            Arc::new(DiffRecord { owner: 1, covers: vec![1], diff: Diff::create(&a, &b) }),
        );
        assert!(st.can_complete(4));
        st.apply_cached_diffs(4);
        let page = st.page_mut(4);
        assert!(page.valid);
        assert_eq!(page.data.as_ref().unwrap().slice()[0], 2);
    }

    #[test]
    fn serve_diff_request_creates_lazily() {
        let mut st = state(0, 2);
        fake_write(&mut st, 5, 8, 77);
        st.close_interval();
        let (cost, entries) = st.serve_diff_request(5, &[1]);
        assert!(cost > Dur::ZERO);
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].owner, 0);
        assert_eq!(entries[0].covers, vec![1]);
        assert_eq!(entries[0].diff.payload_bytes(), 1);
        // Second request hits the cache: free.
        let (cost2, entries2) = st.serve_diff_request(5, &[1]);
        assert_eq!(cost2, Dur::ZERO);
        assert_eq!(entries2.len(), 1);
    }

    #[test]
    fn rse_entry_protects_dirty_pages_and_exit_restores() {
        let mut st = state(0, 2);
        fake_write(&mut st, 6, 0, 1);
        st.close_interval(); // the join before the section
        st.enter_replicated();
        {
            let page = st.page_mut(6);
            assert!(!page.writable && page.rse_protected && page.twin.is_some());
        }
        // Never written during the section: exit returns it to the normal
        // twinned, write-protected state.
        st.exit_replicated();
        let page = st.page_mut(6);
        assert!(!page.writable && !page.rse_protected && page.twin.is_some());
        assert_eq!(st.dirty_pages, vec![6]);
    }

    #[test]
    fn rewrite_after_close_lands_in_its_own_interval() {
        // The spurious-write-notice regression: a page written in interval
        // 1 but not afterwards must never be noticed in interval 2.
        let mut st = state(0, 2);
        fake_write(&mut st, 6, 0, 1);
        st.close_interval();
        // Another page is written in interval 2; page 6 is untouched.
        fake_write(&mut st, 9, 0, 1);
        st.close_interval();
        assert_eq!(st.intervals.get(0, 1).pages, vec![6]);
        assert_eq!(st.intervals.get(0, 2).pages, vec![9]);
        assert_eq!(st.page_mut(6).notices, vec![(0, 1)]);
        // And a page re-written later faults again and is re-noticed.
        fake_write(&mut st, 6, 1, 2);
        st.close_interval();
        assert_eq!(st.intervals.get(0, 3).pages, vec![6]);
        assert_eq!(st.page_mut(6).notices, vec![(0, 1), (0, 3)]);
        assert_eq!(st.page_mut(6).own_undiffed, vec![1, 3]);
    }

    #[test]
    fn mid_interval_serve_retwins_written_page() {
        // A diff requested while the page is being written in the current
        // interval: the diff covers the closed intervals, and the page is
        // immediately re-twinned so the open interval stays separable.
        let mut st = state(0, 2);
        fake_write(&mut st, 6, 0, 1);
        st.close_interval();
        fake_write(&mut st, 6, 1, 2); // open interval write
        let (_, entries) = st.serve_diff_request(6, &[1]);
        assert_eq!(entries.len(), 1);
        let page = st.page_mut(6);
        assert!(page.twin.is_some(), "re-twinned");
        assert!(page.writable, "still writable mid-interval");
        // Closing the open interval must still produce a servable diff.
        st.close_interval();
        let (_, entries) = st.serve_diff_request(6, &[2]);
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].covers, vec![2]);
    }

    #[test]
    fn rse_dirty_pages_retire_silently() {
        let mut st = state(0, 2);
        st.enter_replicated();
        // Simulate a replicated write (the runtime layer does this dance).
        let ps = st.cfg.page_size;
        {
            let page = st.page_mut(8);
            let data = page.materialize(ps, None).to_vec();
            page.twin = Some(data.into_boxed_slice());
            page.writable = true;
            page.rse_dirty = true;
        }
        let gen_before = st.prot_gen.load(Ordering::Relaxed);
        st.rse_dirty.push(8);
        st.exit_replicated();
        assert!(
            st.prot_gen.load(Ordering::Relaxed) > gen_before,
            "retiring replicated writes must invalidate the TLB"
        );
        let entry_vc = st.rse_entry_vc.clone();
        let page = st.page_mut(8);
        assert!(page.valid && !page.writable && page.twin.is_none());
        assert_eq!(page.valid_at, entry_vc);
        assert!(page.own_undiffed.is_empty(), "no write notices for replicated writes");
        assert!(!st.dirty_pages.contains(&8));
    }

    #[test]
    fn serve_during_rse_excludes_replicated_writes() {
        // The §5.3 regression, both orders. A page is dirtied before the
        // join (byte 0) and written during the replicated section (byte 1).
        // The diff served for the pre-section interval must contain ONLY
        // byte 0 — lazy diff creation must not leak the replicated write.

        // Order A: the replicated write happens first.
        let mut st = state(0, 2);
        fake_write(&mut st, 3, 0, 7);
        st.close_interval(); // join
        st.enter_replicated();
        fake_write(&mut st, 3, 1, 9); // replicated write → pre-diff + re-twin
        let (_, entries) = st.serve_diff_request(3, &[1]);
        assert_eq!(entries[0].diff.payload_bytes(), 1, "only the pre-section byte");
        assert_eq!(entries[0].diff.runs()[0].offset, 0);

        // Order B: the request arrives before the replicated write.
        let mut st = state(0, 2);
        fake_write(&mut st, 3, 0, 7);
        st.close_interval();
        st.enter_replicated();
        let (_, entries) = st.serve_diff_request(3, &[1]);
        assert_eq!(entries[0].diff.payload_bytes(), 1);
        // The replicated write still works afterwards.
        fake_write(&mut st, 3, 1, 9);
        assert!(st.page_mut(3).rse_dirty);
        st.exit_replicated();
        assert_eq!(st.page_data(3)[0], 7);
        assert_eq!(st.page_data(3)[1], 9);
    }

    #[test]
    fn election_is_lowest_faulting_node_with_union() {
        let mut st = state(2, 4);
        // Page 3 has notices (0,1) and (1,1).
        let mut vc0 = Vc::zero(4);
        vc0.set(0, 1);
        let mut vc1 = Vc::zero(4);
        vc1.set(1, 1);
        st.apply_records(
            vec![
                IntervalRecord { owner: 0, ivx: 1, vc: vc0.clone(), pages: vec![3] },
                IntervalRecord { owner: 1, ivx: 1, vc: vc1.clone(), pages: vec![3] },
            ],
            &{
                let mut m = vc0.clone();
                m.merge(&vc1);
                m
            },
        );
        // Node 0 is missing only (1,1); node 1 is valid; node 3 missing
        // both. Node 2 (us) missing both.
        let mut v0 = Vc::zero(4);
        v0.set(0, 1);
        st.valid_known[0].insert(3, v0);
        let mut v1 = Vc::zero(4);
        v1.set(0, 1);
        v1.set(1, 1);
        st.valid_known[1].insert(3, v1);
        // node 3: no entry → zero.
        let (req, wanted) = st.elect_requester(3);
        assert_eq!(req, 0, "lowest faulting node requests");
        assert_eq!(wanted, vec![(0, 1), (1, 1)], "union of everyone's missing diffs");
    }

    #[test]
    fn valid_delta_roundtrip() {
        let mut st = state(1, 2);
        fake_write(&mut st, 2, 0, 1);
        st.close_interval();
        let delta = st.take_valid_delta();
        assert_eq!(delta.len(), 1);
        assert_eq!(delta[0].0, 2);
        assert!(delta[0].1.covers(1, 1));
        // Drained: next delta is empty.
        assert!(st.take_valid_delta().is_empty());
        // Mirrored into own table slot.
        assert!(st.valid_known[1].contains_key(&2));
        // Merging into another node's state.
        let mut other = state(0, 2);
        let table: Vec<(NodeId, PageId, Vc)> =
            delta.into_iter().map(|(p, vc)| (1usize, p, vc)).collect();
        other.merge_valid_deltas(&table);
        assert!(other.valid_known[1][&2].covers(1, 1));
    }
}
