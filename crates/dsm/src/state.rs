//! Per-node protocol state: a thin composite of the layer states. The
//! pure (communication-free) protocol logic lives with each layer —
//! [`crate::consistency`] (intervals, vector clocks, write notices),
//! [`crate::dataplane`] (pages, twins, diffs), [`crate::strategy`]
//! (replicated sections), [`crate::sync`] (barrier/locks),
//! [`crate::exec`] (fork/join) and [`crate::fetch`] (request ids) — as
//! `impl NodeState` blocks in those modules. Methods that model work
//! return the virtual-time cost for the caller to charge; state methods
//! never touch the network — the runtime and handler layers do that.

use std::collections::HashMap;
use std::sync::Arc;

use repseq_stats::NodeId;

use crate::arena::ScratchArena;
use crate::config::DsmConfig;
use crate::consistency::Consistency;
use crate::dataplane::DataPlane;
use crate::exec::ExecState;
use crate::fetch::FetchState;
use crate::interval::PageId;
use crate::strategy::RseState;
use crate::sync::SyncState;

/// One node's complete protocol state. Shared (behind a mutex) between the
/// node's application process and its protocol-handler process; the
/// simulation runs one process at a time, so the mutex is never contended —
/// it only satisfies the compiler. **Never hold it across a yielding call.**
///
/// The fields group the state by layer; each layer's module owns the
/// methods that touch its group (plus, where a protocol step genuinely
/// spans layers — e.g. a write fault both twins the page and records the
/// write in the open interval — the owning layer reaches across through
/// the crate-internal fields).
pub struct NodeState {
    pub node: NodeId,
    pub n: usize,
    pub cfg: DsmConfig,
    /// Lazy-release-consistency metadata: vector time, interval store,
    /// and the open interval's write set.
    pub(crate) con: Consistency,
    /// The data plane: page table, twins, diff cache, twin pool, and the
    /// TLB revocation counter.
    pub(crate) data: DataPlane,
    /// Replicated-section protocol state (§5).
    pub(crate) rse: RseState,
    /// Barrier-manager and lock state.
    pub(crate) sync: SyncState,
    /// Fork/join bookkeeping.
    pub(crate) exec: ExecState,
    /// Demand-fetch request ids.
    pub(crate) fetch: FetchState,
    /// Recycled scratch buffers for the fault hot path.
    pub(crate) scratch: ScratchArena,
}

impl NodeState {
    pub fn new(
        node: NodeId,
        n: usize,
        cfg: DsmConfig,
        initial: Arc<HashMap<PageId, Arc<[u8]>>>,
    ) -> NodeState {
        NodeState {
            node,
            n,
            cfg,
            con: Consistency::new(n),
            data: DataPlane::new(initial),
            rse: RseState::new(n),
            sync: SyncState::new(),
            exec: ExecState::new(n),
            fetch: FetchState::new(),
            scratch: ScratchArena::default(),
        }
    }
}

/// Shared helpers for the layer modules' unit tests.
#[cfg(test)]
pub(crate) mod testutil {
    use super::*;

    pub(crate) fn state(node: NodeId, n: usize) -> NodeState {
        NodeState::new(node, n, DsmConfig::default(), Arc::new(HashMap::new()))
    }

    /// Simulate a local write for tests: the write-fault dance plus the
    /// actual byte store.
    pub(crate) fn fake_write(st: &mut NodeState, p: PageId, offset: usize, val: u8) {
        let (valid, writable) =
            st.data.pages.get(&p).map(|pg| (pg.valid, pg.writable)).unwrap_or((true, false));
        assert!(valid, "fake_write on an invalid page");
        if !writable {
            st.write_fault(p);
        }
        st.page_data(p)[offset] = val;
    }
}
