//! Recycled scratch buffers for per-fault churn.
//!
//! Every page fault walks the page's missing write notices several times —
//! planning the fetch, checking completability, applying cached diffs —
//! and each walk used to allocate (and immediately free) a fresh vector.
//! On a fault-heavy run that is a steady allocator drumbeat on the hottest
//! path of the simulator. Each node instead keeps a small arena of emptied
//! buffers: a walk takes one (retaining its previous capacity), fills it,
//! and hands it back when done. This is the small-object complement to the
//! page-sized twin pool in [`crate::dataplane`].
//!
//! The arena is deliberately dumb: a LIFO stack of cleared `Vec`s per
//! shape, capped so a one-off burst cannot pin memory forever. Nothing
//! here is visible to the protocol — buffers carry no state between takes
//! (`give` clears), so virtual time, messages and bytes are bit-identical
//! with the arena disabled.

use repseq_stats::NodeId;

use crate::page::DiffEntry;

/// Buffers retained per pool; beyond this, `give` lets the vector drop.
/// The fault path needs at most a couple of scratch vectors at a time
/// (the notice walk and the diff batch can overlap), so a small stack
/// already captures the steady state.
const POOL_CAP: usize = 8;

/// A LIFO pool of cleared, capacity-retaining vectors of one shape.
pub(crate) struct BufPool<T> {
    free: Vec<Vec<T>>,
}

impl<T> Default for BufPool<T> {
    fn default() -> Self {
        BufPool { free: Vec::new() }
    }
}

impl<T> BufPool<T> {
    /// An empty vector, reusing a recycled allocation when one is banked.
    /// Reports a hit (allocation saved) or miss to the host-side counters,
    /// so the bench harness can show how much churn the arena absorbs.
    pub(crate) fn take(&mut self) -> Vec<T> {
        match self.free.pop() {
            Some(v) => {
                repseq_stats::host::scratch_pool_hit();
                v
            }
            None => {
                repseq_stats::host::scratch_pool_miss();
                Vec::new()
            }
        }
    }

    /// Return a vector for reuse. Contents are dropped here; allocations
    /// with no capacity are not worth banking.
    pub(crate) fn give(&mut self, mut v: Vec<T>) {
        if v.capacity() == 0 || self.free.len() >= POOL_CAP {
            return;
        }
        v.clear();
        self.free.push(v);
    }
}

/// One node's scratch arena, grouped by buffer shape.
#[derive(Default)]
pub(crate) struct ScratchArena {
    /// `(owner, interval)` notice lists: fetch planning, completability
    /// checks, diff application, and the per-page write-notice walk of the
    /// §5.4.1 requester election on the valid-notice exchange path.
    pub(crate) notices: BufPool<(NodeId, u32)>,
    /// Weighted diff batches assembled by `apply_cached_diffs`.
    pub(crate) diff_batch: BufPool<(u64, DiffEntry)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_reuses_given_allocation() {
        let mut pool: BufPool<u32> = BufPool::default();
        let mut v = pool.take();
        v.extend([1, 2, 3]);
        let cap = v.capacity();
        let ptr = v.as_ptr();
        pool.give(v);
        let v2 = pool.take();
        assert!(v2.is_empty(), "recycled buffers come back cleared");
        assert_eq!(v2.capacity(), cap);
        assert_eq!(v2.as_ptr(), ptr, "the allocation itself is reused");
    }

    #[test]
    fn pool_is_capped() {
        let mut pool: BufPool<u32> = BufPool::default();
        for _ in 0..POOL_CAP + 5 {
            let mut v = Vec::with_capacity(4);
            v.push(1);
            pool.give(v);
        }
        assert_eq!(pool.free.len(), POOL_CAP);
    }

    #[test]
    fn zero_capacity_buffers_are_not_banked() {
        let mut pool: BufPool<u32> = BufPool::default();
        pool.give(Vec::new());
        assert!(pool.free.is_empty());
    }
}
