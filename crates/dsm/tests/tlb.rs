//! The software TLB and its generation-counter coherence contract.
//!
//! Three layers of assurance:
//!
//! * unit tests pin every protection-*revocation* site to a generation
//!   bump (interval close, write-notice invalidation, replicated-section
//!   entry and exit) — a missed bump is a stale-translation bug that only
//!   shows up under specific interleavings, so each site is pinned
//!   explicitly;
//! * a cluster-level regression drives §5.3 through the *bulk* guard path:
//!   pages dirtied in a parallel section are rewritten inside a replicated
//!   section via `with_slices_mut`, which must take the write fault (and
//!   create the pre-section diff) rather than ride a stale writable TLB
//!   entry;
//! * an invariance test runs the same workload with the TLB on and off and
//!   requires bit-identical virtual time, message and byte counts — the
//!   fast path is a host-time optimization and must be invisible to the
//!   simulation.

#![allow(clippy::type_complexity)]

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use repseq_dsm::{
    Cluster, ClusterConfig, DsmConfig, DsmNode, IntervalRecord, NodeState, PageId, Vc,
};
use repseq_sim::Stopped;
use repseq_stats::{host, Stats};

// ---------------------------------------------------------------
// Generation-bump unit tests
// ---------------------------------------------------------------

fn mk_state() -> NodeState {
    NodeState::new(0, 2, DsmConfig::default(), Arc::new(HashMap::new()))
}

fn gen(st: &NodeState) -> u64 {
    st.prot_gen()
}

/// Make page `p` a valid, written page (as after a write fault).
fn write_page(st: &mut NodeState, p: PageId) {
    st.page_mut(p).valid = true;
    st.page_data(p);
    st.write_fault(p);
}

#[test]
fn close_interval_bumps_generation() {
    let mut st = mk_state();
    write_page(&mut st, 3);
    let g = gen(&st);
    st.close_interval();
    assert!(gen(&st) > g, "interval close re-protects written pages; TLB must revalidate");
    assert!(!st.page_mut(3).writable);
}

#[test]
fn close_interval_without_writes_does_not_bump() {
    let mut st = mk_state();
    let g = gen(&st);
    st.close_interval();
    assert_eq!(gen(&st), g, "nothing was re-protected, nothing to invalidate");
}

#[test]
fn write_notice_invalidation_bumps_generation() {
    let mut st = mk_state();
    // A valid (read-only) copy of page 5.
    st.page_mut(5).valid = true;
    st.page_data(5);
    let g = gen(&st);
    let mut vc = Vc::zero(2);
    vc.set(1, 1);
    let rec = IntervalRecord::new(1, 1, vc.clone(), vec![5]);
    st.apply_records(vec![rec], &vc);
    assert!(!st.page_mut(5).valid, "the notice must invalidate the copy");
    assert!(gen(&st) > g, "invalidation revokes the translation; TLB must revalidate");
}

#[test]
fn irrelevant_records_do_not_bump() {
    let mut st = mk_state();
    let mut vc = Vc::zero(2);
    vc.set(1, 1);
    let rec = IntervalRecord::new(1, 1, vc.clone(), vec![9]);
    st.apply_records(vec![rec.clone()], &vc);
    let g = gen(&st);
    // The duplicate is skipped and the copy is already invalid: nothing
    // new is revoked, so the TLB may keep its entries.
    st.apply_records(vec![rec], &vc);
    assert_eq!(gen(&st), g, "no copy was invalidated, the TLB may keep its entries");
}

#[test]
fn replicated_entry_and_exit_bump_generation() {
    let mut st = mk_state();
    write_page(&mut st, 7);
    let g0 = gen(&st);
    // §5.3: entry write-protects the dirty page — a writable TLB entry
    // from before the section would skip the pre-section diff.
    st.enter_replicated();
    let g1 = gen(&st);
    assert!(g1 > g0, "entry revokes write permission on dirty pages");
    st.write_fault(7); // first write inside the section
    st.exit_replicated();
    assert!(gen(&st) > g1, "retirement re-protects the section's pages");
}

#[test]
fn break_flag_suppresses_every_bump() {
    let cfg = DsmConfig { tlb_break_generation_bumps: true, ..DsmConfig::default() };
    let mut st = NodeState::new(0, 2, cfg, Arc::new(HashMap::new()));
    write_page(&mut st, 3);
    st.close_interval();
    st.enter_replicated();
    st.exit_replicated();
    assert_eq!(gen(&st), 0, "the fault-injection flag must disable the counter entirely");
}

// ---------------------------------------------------------------
// Cluster-level tests
// ---------------------------------------------------------------

const N: usize = 3;

/// The §5.3 torture shape on the guard path: a parallel phase dirties
/// pages element-wise (warming writable TLB entries), then a replicated
/// section rewrites the same pages through `with_slices_mut`, then the
/// values are read back on every node. Correct final values on all nodes
/// prove the bulk writes inside the section faulted (stale writable TLB
/// entries would skip the §5.3 pre-section diff and corrupt the merge).
fn run_53_bulk(
    tlb_enabled: bool,
) -> (Vec<Vec<u64>>, repseq_sim::SimReport, repseq_stats::StatsSnapshot) {
    let stats = Stats::new(N);
    let mut ccfg = ClusterConfig::paper(N);
    ccfg.dsm.tlb_enabled = tlb_enabled;
    let mut cl = Cluster::new(ccfg, Arc::clone(&stats));
    let per_page = cl.config().dsm.page_size / 8;
    let len = N * per_page;
    let arr = cl.alloc_array_page_aligned::<u64>(len);
    let out = Arc::new(Mutex::new(vec![Vec::new(); N]));

    let out_m = Arc::clone(&out);
    let master = move |node: DsmNode| -> Result<(), Stopped> {
        let chunk = len / N;
        for round in 0..2u64 {
            // Parallel: each node writes its block element-wise — on the
            // second and later touches of a page these writes ride the TLB.
            node.run_parallel(move |nd| {
                let me = nd.node();
                for i in me * chunk..(me + 1) * chunk {
                    arr.set(nd, i, (i as u64) * 3 + round)?;
                }
                Ok(())
            })?;
            // Replicated: rewrite everything through the bulk guard path.
            // Entry must invalidate the writable TLB entries warmed above.
            node.run_replicated(move |nd| {
                arr.with_slices_mut(nd, 0..len, |run| {
                    let first = run.first_index() as u64;
                    for j in 0..run.len() {
                        let prev = run.get(j);
                        run.set(j, prev.wrapping_mul(2).wrapping_add(first + j as u64));
                    }
                    Ok(())
                })
            })?;
        }
        // Read back on every node through the read-guard path.
        let out_c = Arc::clone(&out_m);
        node.run_parallel(move |nd| {
            let mut v = Vec::with_capacity(len);
            arr.with_slices(nd, 0..len, |run| {
                for j in 0..run.len() {
                    v.push(run.get(j));
                }
                Ok(())
            })?;
            out_c.lock()[nd.node()] = v;
            Ok(())
        })?;
        node.shutdown_slaves()
    };

    let mut apps: Vec<Box<dyn FnOnce(DsmNode) -> Result<(), Stopped> + Send>> =
        vec![Box::new(master)];
    for _ in 1..N {
        apps.push(Box::new(|node: DsmNode| node.slave_loop()));
    }
    let report = cl.launch(apps).expect("simulation must complete");
    let vals = std::mem::take(&mut *out.lock());
    (vals, report, stats.snapshot())
}

/// The ideal machine for `run_53_bulk`.
fn golden_53(len: usize) -> Vec<u64> {
    let mut mem = vec![0u64; len];
    for round in 0..2u64 {
        for (i, v) in mem.iter_mut().enumerate() {
            *v = (i as u64) * 3 + round;
        }
        for (i, v) in mem.iter_mut().enumerate() {
            *v = v.wrapping_mul(2).wrapping_add(i as u64);
        }
    }
    mem
}

#[test]
fn replicated_bulk_writes_take_the_53_fault_path() {
    let (vals, _, _) = run_53_bulk(true);
    let want = golden_53(vals[0].len());
    for (node, v) in vals.iter().enumerate() {
        assert_eq!(
            v, &want,
            "node {node}: replicated guard writes must fault past stale TLB entries \
             (§5.3 pre-section diff)"
        );
    }
}

#[test]
fn tlb_is_invisible_to_virtual_time() {
    let before = host::snapshot();
    let (vals_on, rep_on, snap_on) = run_53_bulk(true);
    let hits = host::snapshot().since(&before).tlb_hits;
    assert!(hits > 0, "the workload must actually exercise the TLB fast path");

    let (vals_off, rep_off, snap_off) = run_53_bulk(false);
    assert_eq!(vals_on, vals_off, "contents must not depend on the fast path");
    assert_eq!(rep_on.end_time, rep_off.end_time, "virtual end time must be identical");
    assert_eq!(rep_on.proc_clocks, rep_off.proc_clocks, "per-process clocks must be identical");
    assert_eq!(rep_on.events_processed, rep_off.events_processed);
    let (a, b) = (snap_on.total_agg_with_startup(), snap_off.total_agg_with_startup());
    assert_eq!(a.messages, b.messages, "message counts must be identical");
    assert_eq!(a.bytes, b.bytes, "byte counts must be identical");
    assert_eq!(a.page_faults, b.page_faults, "fault counts must be identical");
}
