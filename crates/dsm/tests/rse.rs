//! End-to-end tests of replicated sequential execution: correctness
//! (identical results to master-only execution), contention elimination
//! (no parallel-section diff traffic for section outputs), the multicast
//! machinery (forwarded requests, null acks), and loss recovery.

use std::sync::Arc;

use parking_lot::Mutex;
use repseq_dsm::{Cluster, ClusterConfig, DsmNode, LaunchOutcome, ShArray};
use repseq_net::LossConfig;
use repseq_sim::Stopped;
use repseq_stats::{MsgClass, Section, Stats, StatsRef};

type Apps = Vec<Box<dyn FnOnce(DsmNode) -> Result<(), Stopped> + Send + 'static>>;

fn cluster(n: usize) -> (Cluster, StatsRef) {
    let stats = Stats::new(n);
    let cl = Cluster::new(ClusterConfig::paper(n), Arc::clone(&stats));
    (cl, stats)
}

fn with_slaves(
    n: usize,
    master: impl FnOnce(DsmNode) -> Result<(), Stopped> + Send + 'static,
) -> Apps {
    let mut apps: Apps = Vec::new();
    apps.push(Box::new(master));
    for _ in 1..n {
        apps.push(Box::new(|node: DsmNode| node.slave_loop()));
    }
    apps
}

/// A sequential section whose output the parallel section consumes. With
/// replication, the parallel section must need no diff traffic at all for
/// the section's output.
#[test]
fn replicated_output_is_local_everywhere() {
    let n = 4;
    let (mut cl, stats) = cluster(n);
    let tree = cl.alloc_array_page_aligned::<u64>(4 * 512); // 4 pages
    let sums = cl.alloc_array_page_aligned::<u64>(n);
    let out = Arc::new(Mutex::new(Vec::new()));
    let out2 = Arc::clone(&out);
    let stats_m = Arc::clone(&stats);
    let apps = with_slaves(n, move |node: DsmNode| {
        stats_m.start_measurement(node.ctx().now());
        stats_m.set_section(Section::Replicated, node.ctx().now());
        node.run_replicated(move |nd| {
            // Deterministic "tree build": every node writes the same data.
            for k in 0..tree.len() {
                tree.set(nd, k, (k as u64) * 3 + 1)?;
            }
            Ok(())
        })?;
        stats_m.set_section(Section::Parallel, node.ctx().now());
        node.run_parallel(move |nd| {
            let mut s = 0u64;
            for k in 0..tree.len() {
                s += tree.get(nd, k)?;
            }
            sums.set(nd, nd.node(), s)
        })?;
        // The gather is a master-only sequential section.
        stats_m.set_section(Section::Sequential, node.ctx().now());
        let mut v = Vec::new();
        for q in 0..n {
            v.push(sums.get(&node, q)?);
        }
        stats_m.end_measurement(node.ctx().now());
        *out2.lock() = v;
        node.shutdown_slaves()
    });
    cl.launch(apps).unwrap();
    let len = 4 * 512u64;
    let expect = 3 * (len - 1) * len / 2 + len;
    assert_eq!(*out.lock(), vec![expect; n]);
    let snap = stats.snapshot();
    // The tree was built locally on every node: the parallel section needed
    // no diffs for it (only the per-node `sums` slots move, and they are
    // written, not read, before the final sequential gather).
    assert_eq!(
        snap.par_agg().diff_requests,
        0,
        "contention after the sequential section must be fully eliminated"
    );
    // No coherence information was exchanged for replicated writes: the
    // replicated section itself needed no diffs either (it read nothing).
    assert_eq!(snap.agg(Section::Replicated).diff_requests, 0);
    // The master-only gather of the per-node sums is the only sequential
    // diff traffic.
    assert_eq!(snap.agg(Section::Sequential).diff_requests, 1);
}

/// The replicated section reads data written by every node in the previous
/// parallel section: the multicast protocol (forwarded requests, the
/// id-ordered ack chain) fetches each page exactly once, cluster-wide.
#[test]
fn replicated_inputs_are_multicast_once() {
    let n = 4;
    let (mut cl, stats) = cluster(n);
    let pages = 8;
    let per_page = 512; // u64s per 4 KB page
    let particles = cl.alloc_array_page_aligned::<u64>(pages * per_page);
    let result = Arc::new(Mutex::new(Vec::new()));
    let result2 = Arc::clone(&result);
    let stats_m = Arc::clone(&stats);
    let apps = with_slaves(n, move |node: DsmNode| {
        stats_m.start_measurement(node.ctx().now());
        stats_m.set_section(Section::Parallel, node.ctx().now());
        // Every node writes its own slice (two pages each).
        node.run_parallel(move |nd| {
            let me = nd.node();
            let chunk = particles.len() / nd.n_nodes();
            for k in me * chunk..(me + 1) * chunk {
                particles.set(nd, k, (k as u64) + 100)?;
            }
            Ok(())
        })?;
        stats_m.set_section(Section::Replicated, node.ctx().now());
        // The replicated section reads everything (the "tree build").
        let total = Arc::new(Mutex::new(vec![0u64; n]));
        let total2 = Arc::clone(&total);
        node.run_replicated(move |nd| {
            let mut s = 0u64;
            for k in 0..particles.len() {
                s += particles.get(nd, k)?;
            }
            total2.lock()[nd.node()] = s;
            Ok(())
        })?;
        stats_m.end_measurement(node.ctx().now());
        *result2.lock() = total.lock().clone();
        node.shutdown_slaves()
    });
    cl.launch(apps).unwrap();
    let len = (pages * per_page) as u64;
    let expect = (len - 1) * len / 2 + 100 * len;
    assert_eq!(*result.lock(), vec![expect; n], "every node computed the same sum");

    let snap = stats.snapshot();
    let seq = snap.seq_agg();
    // Each node's slice is missing on the other n-1 nodes; the union is
    // fetched once per page via the master-serialized multicast: exactly
    // `pages` minus the requester-valid ones... at least one forwarded
    // request per remotely-written page, and null acks from non-owners.
    assert!(seq.forwarded_requests > 0, "forwarded requests must flow through the master");
    assert!(seq.null_acks > 0, "flow-control null acks must be multicast");
    // Chain discipline: per forwarded request every node speaks exactly
    // once (n multicasts: diffs or null acks). Replies+acks = n per chain.
    let chains = seq.forwarded_requests;
    assert_eq!(seq.null_acks + count_chain_replies(&snap), chains * n as u64);
}

/// Diff replies inside chains are `DiffReply`-class multicast frames in the
/// sequential sections; count them as chain turns minus null acks is not
/// directly exposed, so derive from totals: every chain turn is either a
/// diff reply or a null ack.
fn count_chain_replies(snap: &repseq_stats::StatsSnapshot) -> u64 {
    let seq = snap.seq_agg();
    // diff messages = wire requests (unicast to the master) + forwarded +
    // replies + null acks. When the elected requester IS the master node,
    // its request reaches its own handler locally and never hits the wire,
    // so only the other nodes' request operations produced frames.
    let master = &snap.nodes[0];
    let node0_requests = master.section(Section::Sequential).diff_requests
        + master.section(Section::Replicated).diff_requests;
    let wire_requests = seq.diff_requests - node0_requests;
    seq.diff_messages - seq.null_acks - seq.forwarded_requests - wire_requests
}

/// Identical final memory with and without replication, and less parallel
/// diff data with it.
#[test]
fn replicated_and_original_agree() {
    let run = |replicated: bool| -> (Vec<u64>, u64) {
        let n = 4;
        let (mut cl, stats) = cluster(n);
        let iters = 3usize;
        let a = cl.alloc_array_page_aligned::<u64>(2 * 512);
        let b = cl.alloc_array_page_aligned::<u64>(2 * 512);
        let out = Arc::new(Mutex::new(Vec::new()));
        let out2 = Arc::clone(&out);
        let stats_m = Arc::clone(&stats);
        let apps = with_slaves(n, move |node: DsmNode| {
            stats_m.start_measurement(node.ctx().now());
            for _ in 0..iters {
                // Sequential section: b = f(a).
                stats_m.set_section(
                    if replicated { Section::Replicated } else { Section::Sequential },
                    node.ctx().now(),
                );
                let body = move |nd: &DsmNode| -> Result<(), Stopped> {
                    for k in 0..b.len() {
                        let v = a.get(nd, k)?;
                        b.set(nd, k, v.wrapping_mul(3).wrapping_add(k as u64))?;
                    }
                    Ok(())
                };
                if replicated {
                    node.run_replicated(body)?;
                } else {
                    body(&node)?;
                }
                // Parallel section: each node updates its slice of a from b.
                stats_m.set_section(Section::Parallel, node.ctx().now());
                node.run_parallel(move |nd| {
                    let me = nd.node();
                    let chunk = a.len() / nd.n_nodes();
                    for k in me * chunk..(me + 1) * chunk {
                        let v = b.get(nd, (k + 7) % b.len())?;
                        a.set(nd, k, v ^ 0x5a5a)?;
                    }
                    Ok(())
                })?;
            }
            stats_m.end_measurement(node.ctx().now());
            let mut v = Vec::new();
            for k in 0..a.len() {
                v.push(a.get(&node, k)?);
            }
            *out2.lock() = v;
            node.shutdown_slaves()
        });
        cl.launch(apps).unwrap();
        let snap = stats.snapshot();
        let vals = out.lock().clone();
        (vals, snap.par_agg().diff_bytes)
    };
    let (orig_vals, orig_par_bytes) = run(false);
    let (opt_vals, opt_par_bytes) = run(true);
    assert_eq!(orig_vals, opt_vals, "replication must not change program results");
    assert!(
        opt_par_bytes * 2 < orig_par_bytes,
        "replication must slash parallel-section diff data: {opt_par_bytes} vs {orig_par_bytes}"
    );
}

/// §5.3 end to end: a page dirtied before the section and written inside it
/// serves only pre-section modifications, and every node converges.
#[test]
fn lazy_diff_leak_is_prevented_end_to_end() {
    let n = 3;
    let (mut cl, _stats) = cluster(n);
    let p = cl.alloc_array_page_aligned::<u64>(512);
    let out = Arc::new(Mutex::new(Vec::new()));
    let out2 = Arc::clone(&out);
    let apps = with_slaves(n, move |node: DsmNode| {
        // Master dirties the page; the interval stays un-diffed (lazy).
        p.set(&node, 0, 7)?;
        node.run_replicated(move |nd| {
            if nd.is_master() {
                // Delay the master so slaves fault (and fetch the §5.3
                // pre-section diff) before the master's replicated write.
                nd.charge(repseq_sim::Dur::from_millis(50));
            }
            // Replicated write to the same page.
            let v = p.get(nd, 0)?;
            p.set(nd, 1, v + 2)?;
            Ok(())
        })?;
        node.run_parallel(move |nd| {
            let a = p.get(nd, 0)?;
            let b = p.get(nd, 1)?;
            assert_eq!((a, b), (7, 9), "node {} diverged", nd.node());
            Ok(())
        })?;
        *out2.lock() = vec![p.get(&node, 0)?, p.get(&node, 1)?];
        node.shutdown_slaves()
    });
    cl.launch(apps).unwrap();
    assert_eq!(*out.lock(), vec![7, 9]);
}

/// The valid-notice exchange costs what the paper says it costs: one
/// multicast request, one reply per slave, plus the table distribution.
#[test]
fn valid_notice_exchange_message_count() {
    let n = 4;
    let (mut cl, stats) = cluster(n);
    let x = cl.alloc_array_page_aligned::<u64>(8);
    let stats_m = Arc::clone(&stats);
    let apps = with_slaves(n, move |node: DsmNode| {
        stats_m.start_measurement(node.ctx().now());
        stats_m.set_section(Section::Replicated, node.ctx().now());
        node.run_replicated(move |nd| x.set(nd, 0, 1).map(|_| ()))?;
        node.run_replicated(move |nd| x.set(nd, 1, 2).map(|_| ()))?;
        stats_m.end_measurement(node.ctx().now());
        node.shutdown_slaves()
    });
    cl.launch(apps).unwrap();
    let snap = stats.snapshot();
    // Per replicated section: 1 multicast request + (n-1) replies + 1
    // multicast table.
    assert_eq!(snap.seq_agg().valid_notice_msgs, 2 * (1 + (n as u64 - 1) + 1));
}

/// Multicast loss: the timeout-recovery path (§5.4.2) still converges to
/// correct values.
#[test]
fn multicast_loss_recovery_converges() {
    let n = 3;
    let stats = Stats::new(n);
    let mut cfg = ClusterConfig::paper(n);
    cfg.net.loss = Some(LossConfig::multicast_only(400, 12345)); // brutal 40%
    cfg.dsm.rse_timeout = repseq_sim::Dur::from_millis(20);
    let mut cl = Cluster::new(cfg, Arc::clone(&stats));
    // Element count divisible by the node count so every element is written.
    let data: ShArray<u64> = cl.alloc_array_page_aligned::<u64>(3 * 512);
    let out = Arc::new(Mutex::new(Vec::new()));
    let out2 = Arc::clone(&out);
    let apps = with_slaves(n, move |node: DsmNode| {
        // Each node writes a slice, then the replicated section reads all.
        node.run_parallel(move |nd| {
            let me = nd.node();
            let chunk = data.len() / nd.n_nodes();
            for k in me * chunk..(me + 1) * chunk {
                data.set(nd, k, k as u64 + 5)?;
            }
            Ok(())
        })?;
        let sums = Arc::new(Mutex::new(vec![0u64; n]));
        let sums2 = Arc::clone(&sums);
        node.run_replicated(move |nd| {
            let mut s = 0;
            for k in 0..data.len() {
                s += data.get(nd, k)?;
            }
            sums2.lock()[nd.node()] = s;
            Ok(())
        })?;
        *out2.lock() = sums.lock().clone();
        node.shutdown_slaves()
    });
    cl.launch(apps).unwrap();
    let len = (3 * 512) as u64;
    let expect = (len - 1) * len / 2 + 5 * len;
    assert_eq!(*out.lock(), vec![expect; n], "recovery must converge to correct values");
}

/// Two replicated sections in sequence: valid notices accumulated in the
/// first exchange keep elections consistent in the second.
#[test]
fn back_to_back_replicated_sections() {
    let n = 3;
    let (mut cl, _stats) = cluster(n);
    let a = cl.alloc_array_page_aligned::<u64>(512);
    let b = cl.alloc_array_page_aligned::<u64>(512);
    let out = Arc::new(Mutex::new(0u64));
    let out2 = Arc::clone(&out);
    let apps = with_slaves(n, move |node: DsmNode| {
        node.run_parallel(move |nd| {
            if nd.node() == 1 {
                a.set(nd, 0, 11)?;
            }
            Ok(())
        })?;
        node.run_replicated(move |nd| {
            let v = a.get(nd, 0)?;
            b.set(nd, 0, v * 2)
        })?;
        node.run_parallel(move |nd| {
            if nd.node() == 2 {
                let v = b.get(nd, 0)?;
                a.set(nd, 1, v + 1)?;
            }
            Ok(())
        })?;
        node.run_replicated(move |nd| {
            let v = a.get(nd, 1)?;
            b.set(nd, 1, v * 10)
        })?;
        *out2.lock() = b.get(&node, 1)?;
        node.shutdown_slaves()
    });
    cl.launch(apps).unwrap();
    assert_eq!(*out.lock(), 230);
}

// =================================================================
// Pinned-seed loss regressions (§5.4.2 recovery path)
// =================================================================

/// The standard lossy scenario for the pinned-seed regressions below: each
/// node writes a one-page slice in parallel, then a replicated section
/// reads all of it, forcing one multicast reply chain per remotely-written
/// page. Returns the per-node sums plus the full protocol post-mortem
/// (probes and the deterministic loss log).
fn lossy_rse_run(drop_per_mille: u32, seed: u64) -> (Vec<u64>, LaunchOutcome) {
    let n = 3;
    let stats = Stats::new(n);
    let mut cfg = ClusterConfig::paper(n);
    cfg.net.loss = Some(LossConfig::multicast_only(drop_per_mille, seed));
    cfg.dsm.rse_timeout = repseq_sim::Dur::from_millis(20);
    let mut cl = Cluster::new(cfg, Arc::clone(&stats));
    let data: ShArray<u64> = cl.alloc_array_page_aligned::<u64>(3 * 512);
    let out = Arc::new(Mutex::new(Vec::new()));
    let out2 = Arc::clone(&out);
    let apps = with_slaves(n, move |node: DsmNode| {
        node.run_parallel(move |nd| {
            let me = nd.node();
            let chunk = data.len() / nd.n_nodes();
            for k in me * chunk..(me + 1) * chunk {
                data.set(nd, k, k as u64 + 5)?;
            }
            Ok(())
        })?;
        let sums = Arc::new(Mutex::new(vec![0u64; n]));
        let sums2 = Arc::clone(&sums);
        node.run_replicated(move |nd| {
            let mut s = 0;
            for k in 0..data.len() {
                s += data.get(nd, k)?;
            }
            sums2.lock()[nd.node()] = s;
            Ok(())
        })?;
        *out2.lock() = sums.lock().clone();
        node.shutdown_slaves()
    });
    let outcome = cl.launch_inspect(apps);
    outcome.result.as_ref().expect("lossy run must still terminate");
    let vals = out.lock().clone();
    (vals, outcome)
}

/// Convergence + quiescence assertions shared by the pinned-seed tests.
fn assert_converged(vals: &[u64], outcome: &LaunchOutcome) {
    let len = (3 * 512) as u64;
    let expect = (len - 1) * len / 2 + 5 * len;
    assert_eq!(vals, vec![expect; 3], "recovery must converge to correct values");
    for p in &outcome.probes {
        assert!(p.is_quiescent(), "protocol state left behind: {p:?}");
    }
}

/// Regression: a null ack dropped mid-chain. The chain must not wait
/// forever for the lost turn — later turns skip over it (recorded as
/// holes) and the section still converges. Before the gap-tolerance fix
/// this schedule wedged the chain on every node that missed the ack.
/// Seed pinned by scanning: (250‰, seed 0) drops 4 null acks.
#[test]
fn dropped_null_ack_mid_chain_converges() {
    let (vals, outcome) = lossy_rse_run(250, 0);
    let nacks =
        outcome.loss_events.iter().filter(|e| e.multicast && e.class == MsgClass::NullAck).count();
    assert!(nacks > 0, "pinned seed must drop null acks; loss log: {:?}", outcome.loss_events);
    let holes: u64 = outcome.probes.iter().map(|p| p.chain_holes).sum();
    assert!(holes > 0, "a skipped turn must be recorded as a chain hole");
    assert_converged(&vals, &outcome);
}

/// Regression: a McastDiffReply dropped on the requester's own link — the
/// one node that cannot proceed without it. The requester's timeout fires
/// and a §5.4.2 recovery round refetches the diffs directly. Seed pinned
/// by scanning: (250‰, seed 4) drops chain replies destined for nodes
/// that then initiated recovery.
#[test]
fn dropped_chain_reply_to_requester_is_recovered() {
    let (vals, outcome) = lossy_rse_run(250, 4);
    let reply_to_recovering = outcome.loss_events.iter().any(|e| {
        e.multicast && e.class == MsgClass::DiffReply && outcome.probes[e.dst].recovery_rounds > 0
    });
    assert!(
        reply_to_recovering,
        "pinned seed must drop a chain reply to a node that then recovered; \
         probes: {:?}, loss log: {:?}",
        outcome.probes, outcome.loss_events
    );
    assert_converged(&vals, &outcome);
}

/// Regression: a chain that completes with holes delivered only part of
/// the wanted diffs; the requester's recovery rounds must fill exactly
/// that gap. Before the recovery-budget and OOB-reply fixes this schedule
/// either asserted (turn-order violation) or returned stale zeros.
/// Seed pinned by scanning: (400‰, seed 4) produces both holes and
/// recovery rounds.
#[test]
fn recovery_completes_pages_the_chain_missed() {
    let (vals, outcome) = lossy_rse_run(400, 4);
    assert!(
        outcome.probes.iter().any(|p| p.chain_holes > 0),
        "pinned seed must produce chain holes; probes: {:?}",
        outcome.probes
    );
    assert!(
        outcome.probes.iter().any(|p| p.recovery_rounds > 0),
        "pinned seed must exercise §5.4.2 recovery; probes: {:?}",
        outcome.probes
    );
    assert_converged(&vals, &outcome);
}
