//! Twin-pool behavior at large cluster sizes.
//!
//! The pool's prewarm is split across nodes by a cluster-wide budget (see
//! `TWIN_POOL_PREWARM_BUDGET` in `dataplane.rs`), so a 256-node cluster
//! does not eagerly commit 256 full per-node pools. The flip side this
//! test pins: even with the reduced per-node prewarm, a 256-node run must
//! keep its twin-pool hit rate ≥ 0.90 — cold-start misses are bounded by
//! the prewarm shortfall once, and every later fault burst is served by
//! recycled buffers (the pool *cap* still tracks the full segment).
//!
//! The workload drives the heaviest twin churn the protocol has: repeated
//! replicated sections touching every page of a segment *larger* than the
//! per-node prewarm share. Every node twins every page inside each section
//! (§5.3 keeps replicated writes separable), and section retirement
//! recycles all of them — no write notices, no diffs, no cross-node page
//! traffic, so the test stays cheap even at 256 nodes. One written element
//! per page run keeps the churn per-page (where the pool lives) instead of
//! per-element.
//!
//! Kept as the single test of this binary on purpose: the host counters
//! are process-global, and a sibling test running concurrently would
//! pollute the measured hit rate.

use std::sync::Arc;

use repseq_dsm::{Cluster, ClusterConfig, DsmNode};
use repseq_sim::Stopped;
use repseq_stats::{host, Stats};

const N: usize = 256;
const SEG_PAGES: usize = 128;
const ROUNDS: u64 = 8;

type AppFn = Box<dyn FnOnce(DsmNode) -> Result<(), Stopped> + Send>;

#[test]
fn twin_pool_hit_rate_stays_high_at_256_nodes() {
    let stats = Stats::new(N);
    let mut ccfg = ClusterConfig::paper(N);
    // Duty-handoff host scheduling: identical simulation, but at 256 nodes
    // the wall-clock (dominated by host context switches) drops a lot —
    // and the twin-pool counters this test reads must be mode-invariant.
    ccfg.host_threads = 4;
    let mut cl = Cluster::new(ccfg, Arc::clone(&stats));
    // A segment wider than the 256-node prewarm share (8192 / 256,
    // floored at 64 pages), so the rate genuinely depends on recycling.
    let per_page = cl.config().dsm.page_size / 8;
    let len = SEG_PAGES * per_page;
    let arr = cl.alloc_array_page_aligned::<u64>(len);

    let before = host::snapshot();

    let master = move |node: DsmNode| -> Result<(), Stopped> {
        for round in 0..ROUNDS {
            // Replicated: every node dirties every page locally (one
            // element per page run — the fault and the twin are per page).
            // All pages stay valid everywhere (only ever written inside
            // sections, which retire them valid), so each write faults,
            // twins the page, and the twin is recycled at section exit.
            node.run_replicated(move |nd| {
                arr.with_slices_mut(nd, 0..len, |run| {
                    run.set(0, run.first_index() as u64 + round);
                    Ok(())
                })
            })?;
        }
        node.shutdown_slaves()
    };

    let mut apps: Vec<AppFn> = vec![Box::new(master)];
    for _ in 1..N {
        apps.push(Box::new(|node: DsmNode| node.slave_loop()));
    }
    cl.launch(apps).expect("simulation must complete");

    let d = host::snapshot().since(&before);
    let takes = d.twin_pool_hits + d.twin_pool_misses;
    assert!(
        takes as usize >= N * SEG_PAGES * ROUNDS as usize,
        "workload must actually churn the twin pool ({takes} takes)"
    );
    let rate = d.twin_pool_hits as f64 / takes as f64;
    assert!(
        rate >= 0.90,
        "256-node twin-pool hit rate {rate:.3} < 0.90 ({} hits / {takes} takes): \
         large clusters must not silently fall back to malloc",
        d.twin_pool_hits
    );
}
