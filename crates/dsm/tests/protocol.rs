//! End-to-end protocol tests on small simulated clusters: barriers,
//! multiple-writer merging, locks, fork/join, and basic consistency.

use std::sync::Arc;

use parking_lot::Mutex;
use repseq_dsm::{Cluster, ClusterConfig, DsmNode};
use repseq_sim::Stopped;
use repseq_stats::{Section, Stats, StatsRef};

fn cluster(n: usize) -> (Cluster, StatsRef) {
    let stats = Stats::new(n);
    let cl = Cluster::new(ClusterConfig::paper(n), Arc::clone(&stats));
    (cl, stats)
}

type Apps = Vec<Box<dyn FnOnce(DsmNode) -> Result<(), Stopped> + Send + 'static>>;

/// Run the same closure on every node (SPMD style, barrier-synchronized by
/// the closure itself).
fn spmd(
    cl: Cluster,
    n: usize,
    f: impl Fn(&DsmNode) -> Result<(), Stopped> + Send + Sync + 'static,
) {
    let f = Arc::new(f);
    let apps: Apps = (0..n)
        .map(|_| {
            let f = Arc::clone(&f);
            Box::new(move |node: DsmNode| f(&node)) as _
        })
        .collect();
    cl.launch(apps).expect("simulation failed");
}

#[test]
fn barrier_propagates_master_writes() {
    let n = 4;
    let (mut cl, _stats) = cluster(n);
    let arr = cl.alloc_array::<u64>(1024);
    let sums = Arc::new(Mutex::new(vec![0u64; n]));
    let sums2 = Arc::clone(&sums);
    spmd(cl, n, move |node| {
        if node.is_master() {
            for k in 0..1024 {
                arr.set(node, k, 3 * k as u64)?;
            }
        }
        node.barrier()?;
        let mut sum = 0u64;
        for k in 0..1024 {
            sum += arr.get(node, k)?;
        }
        sums2.lock()[node.node()] = sum;
        Ok(())
    });
    let expect = 3 * (1023 * 1024 / 2) as u64;
    assert_eq!(*sums.lock(), vec![expect; n]);
}

#[test]
fn multiple_writer_merges_false_sharing() {
    // Two nodes write disjoint halves of the same page concurrently; after
    // the barrier everyone sees both halves (the multiple-writer protocol).
    let n = 2;
    let (mut cl, _stats) = cluster(n);
    let arr = cl.alloc_array::<u64>(64); // 512 bytes: one page
    let views = Arc::new(Mutex::new(vec![Vec::new(); n]));
    let views2 = Arc::clone(&views);
    spmd(cl, n, move |node| {
        let me = node.node();
        let half = 32;
        for k in 0..half {
            arr.set(node, me * half + k, (me * 1000 + k) as u64)?;
        }
        node.barrier()?;
        let mut v = Vec::new();
        for k in 0..64 {
            v.push(arr.get(node, k)?);
        }
        views2.lock()[me] = v;
        Ok(())
    });
    let views = views.lock();
    for me in 0..n {
        for k in 0..64 {
            let owner = k / 32;
            assert_eq!(
                views[me][k],
                (owner * 1000 + (k - owner * 32)) as u64,
                "node {me} sees a wrong value at {k}"
            );
        }
    }
}

#[test]
fn later_writes_overwrite_earlier_ones() {
    // x is written by node 0 (phase 1) then node 1 (phase 2), with barriers
    // between; everyone must read node 1's value — diff application order.
    let n = 3;
    let (mut cl, _stats) = cluster(n);
    let x = cl.alloc_var::<u64>();
    let got = Arc::new(Mutex::new(vec![0u64; n]));
    let got2 = Arc::clone(&got);
    spmd(cl, n, move |node| {
        if node.node() == 0 {
            x.set(node, 111)?;
        }
        node.barrier()?;
        if node.node() == 1 {
            // Read-modify-write: sees 111, writes 222.
            let v = x.get(node)?;
            assert_eq!(v, 111);
            x.set(node, v * 2)?;
        }
        node.barrier()?;
        got2.lock()[node.node()] = x.get(node)?;
        Ok(())
    });
    assert_eq!(*got.lock(), vec![222; n]);
}

#[test]
fn repeated_barriers_reuse_pages() {
    // The same page ping-pongs between writers across many phases.
    let n = 2;
    let (mut cl, _stats) = cluster(n);
    let x = cl.alloc_var::<u64>();
    let finals = Arc::new(Mutex::new(vec![0u64; n]));
    let finals2 = Arc::clone(&finals);
    spmd(cl, n, move |node| {
        for round in 0..10u64 {
            let writer = (round % 2) as usize;
            if node.node() == writer {
                let cur = x.get(node)?;
                assert_eq!(cur, round, "round {round} starts from the previous value");
                x.set(node, cur + 1)?;
            }
            node.barrier()?;
        }
        finals2.lock()[node.node()] = x.get(node)?;
        Ok(())
    });
    assert_eq!(*finals.lock(), vec![10, 10]);
}

#[test]
fn locks_provide_mutual_exclusion_and_consistency() {
    let n = 4;
    let iters = 5;
    let (mut cl, _stats) = cluster(n);
    let counter = cl.alloc_var::<u64>();
    let finals = Arc::new(Mutex::new(vec![0u64; n]));
    let finals2 = Arc::clone(&finals);
    spmd(cl, n, move |node| {
        for _ in 0..iters {
            node.lock(3)?;
            let v = counter.get(node)?;
            counter.set(node, v + 1)?;
            node.unlock(3)?;
        }
        node.barrier()?;
        finals2.lock()[node.node()] = counter.get(node)?;
        Ok(())
    });
    assert_eq!(*finals.lock(), vec![(n * iters) as u64; n]);
}

#[test]
fn two_locks_do_not_interfere() {
    let n = 3;
    let (mut cl, _stats) = cluster(n);
    let a = cl.alloc_var::<u64>();
    // Put b on a different page to keep the test about locks, not sharing.
    let _pad = cl.alloc_array_page_aligned::<u8>(1);
    let b = cl.alloc_var::<u64>();
    let out = Arc::new(Mutex::new((0u64, 0u64)));
    let out2 = Arc::clone(&out);
    spmd(cl, n, move |node| {
        for _ in 0..3 {
            node.lock(0)?;
            a.set(node, a.get(node)? + 1)?;
            node.unlock(0)?;
            node.lock(7)?;
            b.set(node, b.get(node)? + 10)?;
            node.unlock(7)?;
        }
        node.barrier()?;
        if node.is_master() {
            *out2.lock() = (a.get(node)?, b.get(node)?);
        }
        Ok(())
    });
    assert_eq!(*out.lock(), (9, 90));
}

#[test]
fn fork_join_ships_master_writes_to_slaves() {
    let n = 4;
    let (mut cl, _stats) = cluster(n);
    let data = cl.alloc_array::<u64>(256);
    let partials = cl.alloc_array_page_aligned::<u64>(n);
    let result = Arc::new(Mutex::new(0u64));
    let result2 = Arc::clone(&result);
    let mut apps: Apps = Vec::new();
    apps.push(Box::new(move |node: DsmNode| {
        // Master program: sequential init, parallel sum, sequential reduce.
        for k in 0..256 {
            data.set(&node, k, k as u64)?;
        }
        node.run_parallel(move |nd| {
            let (me, n) = (nd.node(), nd.n_nodes());
            let chunk = 256 / n;
            let mut s = 0;
            for k in me * chunk..(me + 1) * chunk {
                s += data.get(nd, k)?;
            }
            partials.set(nd, me, s)
        })?;
        let mut total = 0;
        for q in 0..n {
            total += partials.get(&node, q)?;
        }
        *result2.lock() = total;
        node.shutdown_slaves()
    }));
    for _ in 1..n {
        apps.push(Box::new(|node: DsmNode| node.slave_loop()));
    }
    cl.launch(apps).unwrap();
    assert_eq!(*result.lock(), (255 * 256 / 2) as u64);
}

#[test]
fn consecutive_parallel_sections_share_state() {
    let n = 3;
    let (mut cl, _stats) = cluster(n);
    let a = cl.alloc_array_page_aligned::<u64>(n);
    let b = cl.alloc_array_page_aligned::<u64>(n);
    let ok = Arc::new(Mutex::new(false));
    let ok2 = Arc::clone(&ok);
    let mut apps: Apps = Vec::new();
    apps.push(Box::new(move |node: DsmNode| {
        node.run_parallel(move |nd| a.set(nd, nd.node(), (nd.node() + 1) as u64))?;
        // Second section: each node reads its neighbour's value.
        node.run_parallel(move |nd| {
            let (me, n) = (nd.node(), nd.n_nodes());
            let v = a.get(nd, (me + 1) % n)?;
            b.set(nd, me, v * 10)
        })?;
        let mut vals = Vec::new();
        for q in 0..n {
            vals.push(b.get(&node, q)?);
        }
        *ok2.lock() = vals == vec![20, 30, 10];
        node.shutdown_slaves()
    }));
    for _ in 1..n {
        apps.push(Box::new(|node: DsmNode| node.slave_loop()));
    }
    cl.launch(apps).unwrap();
    assert!(*ok.lock());
}

#[test]
fn contention_after_sequential_section_is_visible() {
    // The paper's §3 pathology in miniature: the master rewrites a large
    // array sequentially; every slave then reads all of it. The average
    // parallel-section response time must exceed the uncontended service
    // time considerably.
    let n = 8;
    let (mut cl, stats) = cluster(n);
    let big = cl.alloc_array_page_aligned::<u64>(8 * 512); // 8 pages
    let mut apps: Apps = Vec::new();
    let stats_m = Arc::clone(&stats);
    apps.push(Box::new(move |node: DsmNode| {
        stats_m.start_measurement(node.ctx().now());
        stats_m.set_section(Section::Sequential, node.ctx().now());
        for k in 0..big.len() {
            big.set(&node, k, k as u64)?;
        }
        stats_m.set_section(Section::Parallel, node.ctx().now());
        node.run_parallel(move |nd| {
            let mut s = 0u64;
            for k in 0..big.len() {
                s += big.get(nd, k)?;
            }
            assert_eq!(s, (big.len() as u64 - 1) * big.len() as u64 / 2);
            Ok(())
        })?;
        stats_m.end_measurement(node.ctx().now());
        node.shutdown_slaves()
    }));
    for _ in 1..n {
        apps.push(Box::new(|node: DsmNode| node.slave_loop()));
    }
    cl.launch(apps).unwrap();
    let snap = stats.snapshot();
    let par = snap.par_agg();
    assert!(par.diff_requests >= (n as u64 - 1) * 8, "every slave faults on every page");
    let avg = par.avg_response().unwrap();
    // Uncontended service of a ~4 KB diff is well under a millisecond; with
    // 7 slaves hammering the master the average should exceed it clearly.
    assert!(avg.as_millis_f64() > 1.0, "expected contention to inflate response times, got {avg}");
}

#[test]
fn deterministic_across_runs() {
    let run = || {
        let n = 4;
        let (mut cl, stats) = cluster(n);
        let arr = cl.alloc_array::<u64>(512);
        let mut apps: Apps = Vec::new();
        apps.push(Box::new(move |node: DsmNode| {
            for k in 0..512 {
                arr.set(&node, k, (k * 7) as u64)?;
            }
            node.run_parallel(move |nd| {
                let mut s = 0u64;
                for k in 0..512 {
                    s += arr.get(nd, k)?;
                }
                let _ = s;
                Ok(())
            })?;
            node.shutdown_slaves()
        }));
        for _ in 1..n {
            apps.push(Box::new(|node: DsmNode| node.slave_loop()));
        }
        let report = cl.launch(apps).unwrap();
        let snap = stats.snapshot();
        (
            report.end_time,
            report.events_processed,
            snap.total_agg().messages,
            snap.total_agg().bytes,
        )
    };
    assert_eq!(run(), run());
}
