//! Randomized search over small replicated-mode programs (a fast,
//! deterministic complement to the proptest golden-model suite). Found the
//! merged-diff ordering bug during development; kept as a regression net.

#![allow(clippy::type_complexity)]

use std::sync::Arc;

use parking_lot::Mutex;
use repseq_dsm::{Cluster, ClusterConfig, DsmNode};
use repseq_sim::Stopped;
use repseq_stats::Stats;

const N_NODES: usize = 3;
const N_LOCS: usize = 8;

fn golden(phases: &[Vec<(usize, u64)>]) -> Vec<u64> {
    let mut mem = vec![0u64; N_LOCS];
    for phase in phases {
        for &(loc, val) in phase {
            mem[loc] = val;
        }
    }
    mem
}

fn run(phases: &[Vec<(usize, u64)>]) -> Result<(), String> {
    let stats = Stats::new(N_NODES);
    let mut cl = Cluster::new(ClusterConfig::paper(N_NODES), stats);
    let arr = cl.alloc_array_page_aligned::<u64>(N_LOCS);
    let out = Arc::new(Mutex::new(vec![Vec::new(); N_NODES]));
    let phases = Arc::new(phases.to_vec());
    let mut apps: Vec<Box<dyn FnOnce(DsmNode) -> Result<(), Stopped> + Send>> = Vec::new();
    let phases_m = Arc::clone(&phases);
    let out_m = Arc::clone(&out);
    apps.push(Box::new(move |node: DsmNode| {
        let mut gsf = vec![0u64; N_LOCS];
        for (k, phase) in phases_m.iter().enumerate() {
            let phase = phase.clone();
            for &(loc, val) in &phase {
                gsf[loc] = val;
            }
            let kk = k;
            node.run_parallel(move |nd| {
                for &(loc, val) in &phase {
                    if (loc + kk) % N_NODES == nd.node() {
                        arr.set(nd, loc, val)?;
                    }
                }
                Ok(())
            })?;
            if k % 2 == 1 {
                let expect = gsf.clone();
                let bad = Arc::new(Mutex::new(Vec::new()));
                let bad2 = Arc::clone(&bad);
                node.run_replicated(move |nd| {
                    for (loc, &want) in expect.iter().enumerate() {
                        let got = arr.get(nd, loc)?;
                        if got != want {
                            bad2.lock().push(format!(
                                "node {} loc {loc} phase {kk}: got {got} want {want}",
                                nd.node()
                            ));
                        }
                    }
                    Ok(())
                })?;
                let bad = bad.lock();
                if !bad.is_empty() {
                    eprintln!("DIVERGED: {:?}", *bad);
                }
            }
        }
        let out_c = Arc::clone(&out_m);
        node.run_parallel(move |nd| {
            let mut v = Vec::with_capacity(N_LOCS);
            for loc in 0..N_LOCS {
                v.push(arr.get(nd, loc)?);
            }
            out_c.lock()[nd.node()] = v;
            Ok(())
        })?;
        node.shutdown_slaves()
    }));
    for _ in 1..N_NODES {
        apps.push(Box::new(|node: DsmNode| node.slave_loop()));
    }
    cl.launch(apps).map_err(|e| e.to_string())?;
    let want = golden(&phases);
    let got = Arc::try_unwrap(out).unwrap().into_inner();
    for (me, view) in got.iter().enumerate() {
        if view != &want {
            return Err(format!("node {me}: got {view:?} want {want:?}"));
        }
    }
    Ok(())
}

fn rng_next(s: &mut u64) -> u64 {
    *s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    *s >> 33
}

#[test]
fn randomized_programs_match_golden() {
    for seed in 0..120u64 {
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15) + 1;
        let n_phases = 2 + (rng_next(&mut s) % 5) as usize;
        let phases: Vec<Vec<(usize, u64)>> = (0..n_phases)
            .map(|_| {
                let writes = (rng_next(&mut s) % 8) as usize;
                (0..writes)
                    .map(|_| {
                        let loc = (rng_next(&mut s) % N_LOCS as u64) as usize;
                        let val = 1 + rng_next(&mut s) % 1000;
                        (loc, val)
                    })
                    .collect()
            })
            .collect();
        if let Err(e) = run(&phases) {
            panic!("seed {seed} failed: {e}\nphases: {phases:?}");
        }
    }
}
