//! Edge cases of the DSM: page-straddling values, degenerate cluster
//! sizes, allocator behaviour, preloaded images, lock chains across
//! managers, and big-value round trips.

use std::sync::Arc;

use parking_lot::Mutex;
use repseq_dsm::{impl_pod_struct, Cluster, ClusterConfig, DsmNode, Pod, ShArray};
use repseq_sim::Stopped;
use repseq_stats::Stats;

type Apps = Vec<Box<dyn FnOnce(DsmNode) -> Result<(), Stopped> + Send + 'static>>;

fn cluster(n: usize) -> Cluster {
    Cluster::new(ClusterConfig::paper(n), Stats::new(n))
}

fn spmd(
    cl: Cluster,
    n: usize,
    f: impl Fn(&DsmNode) -> Result<(), Stopped> + Send + Sync + 'static,
) {
    let f = Arc::new(f);
    let apps: Apps = (0..n)
        .map(|_| {
            let f = Arc::clone(&f);
            Box::new(move |node: DsmNode| f(&node)) as _
        })
        .collect();
    cl.launch(apps).expect("simulation failed");
}

/// A value whose bytes straddle a page boundary is read and written
/// correctly, with faults taken on both pages.
#[test]
fn values_straddle_page_boundaries() {
    let n = 2;
    let mut cl = cluster(n);
    // Elements of 24 bytes: 4096/24 is not integral, so elements straddle.
    let arr: ShArray<[f64; 3]> = cl.alloc_array_page_aligned(400);
    let straddler = (0..400)
        .find(|&i| {
            let a = arr.addr(i);
            a / 4096 != (a + 23) / 4096
        })
        .expect("some element must straddle");
    let ok = Arc::new(Mutex::new(false));
    let ok2 = Arc::clone(&ok);
    spmd(cl, n, move |node| {
        if node.is_master() {
            arr.set(node, straddler, [1.5, -2.5, 3.25])?;
        }
        node.barrier()?;
        let v = arr.get(node, straddler)?;
        assert_eq!(v, [1.5, -2.5, 3.25]);
        if node.node() == 1 {
            *ok2.lock() = true;
        }
        Ok(())
    });
    assert!(*ok.lock());
}

/// Single-node clusters degrade gracefully: barriers, locks and sections
/// all work with no peers.
#[test]
fn single_node_cluster_works() {
    let mut cl = cluster(1);
    let x = cl.alloc_var::<u64>();
    let done = Arc::new(Mutex::new(0u64));
    let done2 = Arc::clone(&done);
    let apps: Apps = vec![Box::new(move |node: DsmNode| {
        node.barrier()?;
        node.lock(5)?;
        x.set(&node, 17)?;
        node.unlock(5)?;
        node.barrier()?;
        node.run_replicated(move |nd| {
            let v = x.get(nd)?;
            x.set(nd, v + 1)
        })?;
        node.run_parallel(move |nd| {
            let v = x.get(nd)?;
            x.set(nd, v * 2)
        })?;
        *done2.lock() = x.get(&node)?;
        node.shutdown_slaves()
    })];
    cl.launch(apps).unwrap();
    assert_eq!(*done.lock(), 36);
}

/// Preloaded initial images are visible on every node without any
/// communication.
#[test]
fn preload_is_visible_everywhere_for_free() {
    let n = 3;
    let stats = Stats::new(n);
    let mut cl = Cluster::new(ClusterConfig::paper(n), Arc::clone(&stats));
    let arr: ShArray<u32> = cl.alloc_array(1000);
    let vals: Vec<u32> = (0..1000).map(|i| i * 3 + 1).collect();
    cl.preload(arr, &vals);
    stats.start_measurement(repseq_sim::SimTime::ZERO);
    spmd(cl, n, move |node| {
        for i in (0..1000).step_by(97) {
            assert_eq!(arr.get(node, i)?, (i as u32) * 3 + 1);
        }
        Ok(())
    });
    let snap = stats.snapshot();
    assert_eq!(snap.total_agg().diff_messages, 0, "preloaded data needs no diffs");
}

/// Locks with different managers chain correctly when acquired by many
/// nodes in interleaved orders.
#[test]
fn many_locks_many_managers() {
    let n = 4;
    let mut cl = cluster(n);
    let counters: ShArray<u64> = cl.alloc_array_page_aligned(8);
    let out = Arc::new(Mutex::new(Vec::new()));
    let out2 = Arc::clone(&out);
    spmd(cl, n, move |node| {
        // Locks 0..8 are managed by nodes (l % 4). Every node increments
        // every counter under its lock, in a node-specific order.
        for round in 0..8 {
            let l = (round + node.node() * 3) % 8;
            node.lock(l as u32)?;
            let v = counters.get(node, l)?;
            counters.set(node, l, v + 1)?;
            node.unlock(l as u32)?;
        }
        node.barrier()?;
        if node.is_master() {
            let mut v = Vec::new();
            for l in 0..8 {
                v.push(counters.get(node, l)?);
            }
            *out2.lock() = v;
        }
        Ok(())
    });
    assert_eq!(*out.lock(), vec![4u64; 8]);
}

/// Re-acquiring a cached lock (token still local) is free of traffic.
#[test]
fn lock_token_caching_avoids_traffic() {
    let n = 2;
    let stats = Stats::new(n);
    let mut cl = Cluster::new(ClusterConfig::paper(n), Arc::clone(&stats));
    let x = cl.alloc_var::<u64>();
    stats.start_measurement(repseq_sim::SimTime::ZERO);
    stats.set_section(repseq_stats::Section::Parallel, repseq_sim::SimTime::ZERO);
    let apps: Apps = vec![
        Box::new(move |node: DsmNode| {
            // Master acquires the same lock many times with nobody
            // contending: after the first acquire the token stays local.
            for i in 0..20 {
                node.lock(2)?;
                x.set(&node, i)?;
                node.unlock(2)?;
            }
            node.barrier()?;
            Ok(())
        }),
        Box::new(|node: DsmNode| {
            node.barrier()?;
            Ok(())
        }),
    ];
    cl.launch(apps).unwrap();
    let snap = stats.snapshot();
    // One manager round-trip for the first acquire (lock 2 is managed by
    // node 0 itself → local messages only), plus the barrier traffic.
    let total = snap.total_agg();
    assert!(
        total.messages <= 6,
        "cached re-acquires must not generate traffic: {} messages",
        total.messages
    );
}

/// Big Pod structs (up to the 256-byte access limit) round-trip through
/// shared memory.
#[derive(Clone, Copy, PartialEq, Debug)]
struct Big {
    a: [f64; 16],
    b: [u32; 16],
    c: u64,
}
impl_pod_struct!(Big { a: [f64; 16], b: [u32; 16], c: u64 });

#[test]
fn large_pod_values_roundtrip() {
    assert_eq!(Big::SIZE, 16 * 8 + 16 * 4 + 8);
    let n = 2;
    let mut cl = cluster(n);
    let arr: ShArray<Big> = cl.alloc_array(10);
    let ok = Arc::new(Mutex::new(false));
    let ok2 = Arc::clone(&ok);
    spmd(cl, n, move |node| {
        let v = Big { a: [0.5; 16], b: [7; 16], c: 99 };
        if node.is_master() {
            arr.set(node, 3, v)?;
        }
        node.barrier()?;
        assert_eq!(arr.get(node, 3)?, v);
        if node.node() == 1 {
            *ok2.lock() = true;
        }
        Ok(())
    });
    assert!(*ok.lock());
}

/// The shared-heap allocator respects alignment and rejects exhaustion.
#[test]
fn allocator_alignment_and_exhaustion() {
    let mut cfg = ClusterConfig::paper(2);
    cfg.dsm.heap_pages = 4; // 16 KB heap
    let mut cl = Cluster::new(cfg, Stats::new(2));
    let a: ShArray<u64> = cl.alloc_array(10);
    assert_eq!(a.addr(0) % 8, 0);
    let b: ShArray<u8> = cl.alloc_array_page_aligned(100);
    assert_eq!(b.addr(0) % 4096, 0);
    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
        let _c: ShArray<u64> = cl.alloc_array(10_000); // 80 KB > 16 KB heap
    }));
    assert!(r.is_err(), "heap exhaustion must panic with a clear message");
}

/// `read_range`/`write_range` round-trip across many pages, including
/// unaligned starts.
#[test]
fn bulk_ranges_roundtrip() {
    let n = 2;
    let mut cl = cluster(n);
    let arr: ShArray<u64> = cl.alloc_array_page_aligned(3000);
    let ok = Arc::new(Mutex::new(false));
    let ok2 = Arc::clone(&ok);
    spmd(cl, n, move |node| {
        if node.is_master() {
            let vals: Vec<u64> = (0..1500).map(|i| i * 11).collect();
            arr.write_range(node, 777, &vals)?;
        }
        node.barrier()?;
        let mut out = vec![0u64; 1500];
        arr.read_range(node, 777, &mut out)?;
        for (k, &v) in out.iter().enumerate() {
            assert_eq!(v, (k as u64) * 11);
        }
        if node.node() == 1 {
            *ok2.lock() = true;
        }
        Ok(())
    });
    assert!(*ok.lock());
}

/// Page-span helper used by the broadcast ablation.
#[test]
fn page_span_covers_array() {
    let mut cl = cluster(2);
    let arr: ShArray<u64> = cl.alloc_array_page_aligned(1024); // exactly 2 pages
    let (first, last) = arr.page_span(4096);
    assert_eq!(last - first + 1, 2);
    let one: ShArray<u8> = cl.alloc_array(1);
    let (f2, l2) = one.page_span(4096);
    assert_eq!(f2, l2);
}
