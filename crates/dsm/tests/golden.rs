//! Golden-model equivalence: random race-free programs executed on the DSM
//! (with and without replicated sequential sections) must end with exactly
//! the memory an ideal sequentially-consistent machine produces.
//!
//! Program shape: a sequence of phases separated by barriers (or fork/join
//! for the replicated variant). In phase `k`, location `loc` is owned by
//! node `(loc + k) % n` — only the owner writes it, so the program is
//! race-free, while ownership *rotates* across phases to exercise diff
//! ordering, invalidation and the multiple-writer protocol on a page shared
//! by every node.

#![allow(clippy::type_complexity)]

use std::sync::Arc;

use parking_lot::Mutex;
use proptest::prelude::*;
use repseq_dsm::{Cluster, ClusterConfig, DsmNode};
use repseq_sim::Stopped;
use repseq_stats::Stats;

const N_NODES: usize = 3;
const N_LOCS: usize = 48; // 384 bytes: all on one page → maximal false sharing

#[derive(Debug, Clone)]
struct Program {
    /// `phases[k]` is a list of (loc, value) writes; the writer of `loc` in
    /// phase `k` is `(loc + k) % N_NODES`.
    phases: Vec<Vec<(usize, u64)>>,
}

fn program_strategy() -> impl Strategy<Value = Program> {
    prop::collection::vec(prop::collection::vec((0usize..N_LOCS, 1u64..1_000_000), 0..12), 1..5)
        .prop_map(|phases| Program { phases })
}

/// The ideal machine: apply phases in order; within a phase, later writes
/// to the same location by the same owner win (program order).
fn golden(prog: &Program) -> Vec<u64> {
    let mut mem = vec![0u64; N_LOCS];
    for phase in &prog.phases {
        for &(loc, val) in phase {
            mem[loc] = val;
        }
    }
    mem
}

/// Memory as read back by every node after the final barrier.
fn run_on_dsm(prog: &Program, replicated_sections: bool) -> Vec<Vec<u64>> {
    let stats = Stats::new(N_NODES);
    let mut cl = Cluster::new(ClusterConfig::paper(N_NODES), stats);
    let arr = cl.alloc_array_page_aligned::<u64>(N_LOCS);
    let out = Arc::new(Mutex::new(vec![Vec::new(); N_NODES]));
    let prog = Arc::new(prog.clone());

    let mut apps: Vec<Box<dyn FnOnce(DsmNode) -> Result<(), Stopped> + Send>> = Vec::new();
    if replicated_sections {
        // Master-driven: each phase is a parallel section; after every
        // second phase, a replicated sequential section reads the whole
        // array (forcing multicast fetches) — the read must also match the
        // golden memory at that point.
        let prog_m = Arc::clone(&prog);
        let out_m = Arc::clone(&out);
        apps.push(Box::new(move |node: DsmNode| {
            let mut golden_so_far = vec![0u64; N_LOCS];
            for (k, phase) in prog_m.phases.iter().enumerate() {
                let phase = phase.clone();
                for &(loc, val) in &phase {
                    golden_so_far[loc] = val;
                }
                let kk = k;
                node.run_parallel(move |nd| {
                    for &(loc, val) in &phase {
                        if (loc + kk) % N_NODES == nd.node() {
                            arr.set(nd, loc, val)?;
                        }
                    }
                    Ok(())
                })?;
                if k % 2 == 1 {
                    let expect = golden_so_far.clone();
                    node.run_replicated(move |nd| {
                        for (loc, &want) in expect.iter().enumerate() {
                            let got = arr.get(nd, loc)?;
                            assert_eq!(got, want, "node {} loc {loc} after phase {kk}", nd.node());
                        }
                        Ok(())
                    })?;
                }
            }
            // Final read-back on every node via a parallel section.
            let out_c = Arc::clone(&out_m);
            node.run_parallel(move |nd| {
                let mut v = Vec::with_capacity(N_LOCS);
                for loc in 0..N_LOCS {
                    v.push(arr.get(nd, loc)?);
                }
                out_c.lock()[nd.node()] = v;
                Ok(())
            })?;
            node.shutdown_slaves()
        }));
        for _ in 1..N_NODES {
            apps.push(Box::new(|node: DsmNode| node.slave_loop()));
        }
    } else {
        // SPMD with barriers.
        for me in 0..N_NODES {
            let prog = Arc::clone(&prog);
            let out = Arc::clone(&out);
            apps.push(Box::new(move |node: DsmNode| {
                for (k, phase) in prog.phases.iter().enumerate() {
                    for &(loc, val) in phase {
                        if (loc + k) % N_NODES == me {
                            arr.set(&node, loc, val)?;
                        }
                    }
                    node.barrier()?;
                }
                let mut v = Vec::with_capacity(N_LOCS);
                for loc in 0..N_LOCS {
                    v.push(arr.get(&node, loc)?);
                }
                out.lock()[me] = v;
                Ok(())
            }));
        }
    }
    cl.launch(apps).expect("simulation failed");
    Arc::try_unwrap(out).unwrap().into_inner()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn dsm_matches_golden_model(prog in program_strategy()) {
        let want = golden(&prog);
        let got = run_on_dsm(&prog, false);
        for (me, view) in got.iter().enumerate() {
            prop_assert_eq!(view, &want, "node {} diverged from the golden model", me);
        }
    }

    #[test]
    fn dsm_with_replicated_sections_matches_golden_model(prog in program_strategy()) {
        let want = golden(&prog);
        let got = run_on_dsm(&prog, true);
        for (me, view) in got.iter().enumerate() {
            prop_assert_eq!(view, &want, "node {} diverged (replicated mode)", me);
        }
    }
}

/// The shrunk input saved in `golden.proptest-regressions`, promoted to a
/// plain test: the vendored proptest shim does not replay regression
/// files (see vendor/README.md), so the case is pinned here instead.
#[test]
fn saved_regression_same_loc_across_phases() {
    let prog = Program { phases: vec![vec![(19, 1)], vec![(19, 2), (3, 1)]] };
    let want = golden(&prog);
    for replicated in [false, true] {
        let got = run_on_dsm(&prog, replicated);
        for view in got {
            assert_eq!(view, want, "replicated={replicated}");
        }
    }
}

/// A fixed adversarial case kept as a plain test: every node writes every
/// phase, ownership rotating, with replicated read-backs in between.
#[test]
fn dense_rotation_fixed_case() {
    let phases: Vec<Vec<(usize, u64)>> = (0..4)
        .map(|k| (0..N_LOCS).map(|loc| (loc, (k * 1000 + loc) as u64 + 1)).collect())
        .collect();
    let prog = Program { phases };
    let want = golden(&prog);
    for replicated in [false, true] {
        let got = run_on_dsm(&prog, replicated);
        for view in got {
            assert_eq!(view, want, "replicated={replicated}");
        }
    }
}
