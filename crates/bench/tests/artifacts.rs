//! Committed benchmark-trajectory artifacts must be self-describing:
//! every `BENCH_*.json` at the repository root carries the schema version
//! and the commit it was generated at, so trajectory tooling can line up
//! formats and provenance across the history without guessing.

use std::path::PathBuf;

#[test]
fn every_bench_artifact_carries_schema_version_and_commit() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let mut found = Vec::new();
    for entry in std::fs::read_dir(&root).expect("repo root readable") {
        let path = entry.expect("dir entry").path();
        let name = match path.file_name().and_then(|n| n.to_str()) {
            Some(n) => n.to_owned(),
            None => continue,
        };
        if !(name.starts_with("BENCH_") && name.ends_with(".json")) {
            continue;
        }
        let text = std::fs::read_to_string(&path).expect("artifact readable");
        let has_key =
            |key: &str| text.lines().any(|l| l.trim_start().starts_with(&format!("\"{key}\":")));
        assert!(has_key("schema_version"), "{name} is missing \"schema_version\"");
        assert!(has_key("commit"), "{name} is missing \"commit\"");
        assert!(!text.contains("\"commit\": \"\""), "{name} has an empty \"commit\" field");
        found.push(name);
    }
    found.sort();
    assert!(
        found.len() >= 6,
        "expected the committed BENCH artifacts (diff, mmu, table1, modes, host, kv), \
         found {found:?}"
    );
    assert!(
        found.iter().any(|n| n == "BENCH_kv.json"),
        "the KV serving sweep artifact must be committed, found {found:?}"
    );
}

/// The committed host-execution artifact must be at the v3 schema and
/// carry the window-parallel column: per-cluster `parallel` runs with the
/// window engine's counters next to the serial and duty-handoff baselines.
#[test]
fn host_artifact_records_window_parallel_runs() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let host = std::fs::read_to_string(root.join("BENCH_host.json"))
        .expect("BENCH_host.json must be committed");
    assert!(
        host.contains("\"schema_version\": 3"),
        "BENCH_host.json must carry the v3 schema (window-parallel column)"
    );
    for key in [
        "\"parallel\":",
        "\"parallel_threads\":",
        "\"host_cpus\":",
        "\"windows\":",
        "\"max_parallel_groups\":",
        "\"barrier_stalls\":",
        "\"handoff_speedup\":",
        "\"parallel_speedup\":",
    ] {
        assert!(
            host.contains(key),
            "BENCH_host.json v3 must record the window-parallel runs: missing {key}"
        );
    }
}
