//! End-to-end smoke of the KV-serving workload: the final-state gates must
//! hold across all three sequential-section strategies at a small scale.

use repseq_bench::{kv_config, run_kv, Scale};
use repseq_core::SeqMode;

#[test]
fn kv_state_is_strategy_invariant_at_small_scale() {
    let cfg = kv_config(Scale::Tiny);
    let orig = run_kv(SeqMode::MasterOnly, 4, cfg.clone());
    let opt = run_kv(SeqMode::Replicated, 4, cfg.clone());
    let push = run_kv(SeqMode::MasterPush, 4, cfg);

    // Correctness gates: identical final table, identical served values,
    // identical trace.
    assert_eq!(orig.result.fingerprint, opt.result.fingerprint);
    assert_eq!(orig.result.fingerprint, push.result.fingerprint);
    assert_eq!(orig.result.read_xor, opt.result.read_xor);
    assert_eq!(orig.result.read_xor, push.result.read_xor);
    assert_eq!(orig.result.trace_hash, opt.result.trace_hash);
    assert_eq!(orig.result.reads + orig.result.writes, 256);

    // Sanity on the measurements: latencies are populated and ordered.
    for r in [&orig.result, &opt.result, &push.result] {
        assert!(r.p50_ns > 0, "{r:?}");
        assert!(r.p50_ns <= r.p99_ns && r.p99_ns <= r.p999_ns, "{r:?}");
        assert!(r.throughput_rps > 0.0, "{r:?}");
    }
}

#[test]
fn kv_runs_are_deterministic() {
    let cfg = kv_config(Scale::Tiny);
    let a = run_kv(SeqMode::Replicated, 3, cfg.clone());
    let b = run_kv(SeqMode::Replicated, 3, cfg);
    assert_eq!(a.result, b.result, "same seed + mode must reproduce bit-identically");
}
