//! The §6.1.2 in-text ablation: "To isolate the effect of contention
//! elimination, we hand insert broadcasting of the tree between the
//! non-replicated tree building and the parallel force computation."
//!
//! The paper reports, for the force-computation phase:
//!
//! | system              | parallel time | diff messages | diff data (KB) |
//! |---------------------|---------------|---------------|----------------|
//! | Original            | 50.4 s        | 5,006,252     | 739,139        |
//! | + tree broadcast    | 36.9 s        | 4,892,246     | 538,832        |
//! | Replicated (full)   | 21.1 s        | 3,045,226     | 221,292        |
//!
//! i.e. "about half of the improvement stems from contention elimination
//! and the other half from broadcasting the particles."

use repseq_bench::*;
use repseq_core::SeqMode;

fn main() {
    let scale = Scale::from_env();
    let n = nodes_from_env();
    let cfg = bh_config(scale);
    println!(
        "Barnes-Hut broadcast ablation: {} bodies, {} nodes ({scale:?} scale)",
        cfg.n_bodies, n
    );

    let orig = run_barnes(SeqMode::MasterOnly, n, cfg.clone());
    println!("  original run done");
    let bc = run_barnes(SeqMode::MasterOnlyBroadcast, n, cfg.clone());
    println!("  broadcast run done");
    let opt = run_barnes(SeqMode::Replicated, n, cfg);
    println!("  optimized run done");

    assert_eq!(orig.result, bc.result, "broadcast must not change the physics");
    assert_eq!(orig.result, opt.result, "replication must not change the physics");

    println!("\n{:<22} {:>14} {:>16} {:>16}", "", "par time (s)", "par diff msgs", "par diff KB");
    for (label, s, paper) in [
        ("Original", &orig.snap, (50.4, 5_006_252u64, 739_139u64)),
        ("+ tree broadcast", &bc.snap, (36.9, 4_892_246, 538_832)),
        ("Replicated (full)", &opt.snap, (21.1, 3_045_226, 221_292)),
    ] {
        let par = s.par_agg();
        println!(
            "{:<22} {:>14.2} {:>16} {:>16}   | paper: {:.1} s, {} msgs, {} KB",
            label,
            s.par_time().as_secs_f64(),
            par.diff_messages,
            par.diff_bytes / 1024,
            paper.0,
            paper.1,
            paper.2
        );
    }

    println!("\nShape checks against the paper:");
    shape_check(
        "Broadcast recovers part of the parallel-section improvement",
        bc.snap.par_time() < orig.snap.par_time(),
    );
    shape_check(
        "Full replication recovers more than the broadcast alone",
        opt.snap.par_time() < bc.snap.par_time(),
    );
    shape_check(
        "Broadcast reduces parallel diff data (tree fetches disappear)",
        bc.snap.par_agg().diff_bytes < orig.snap.par_agg().diff_bytes,
    );
    shape_check(
        "Replication reduces parallel diff data further (particles too)",
        opt.snap.par_agg().diff_bytes < bc.snap.par_agg().diff_bytes,
    );
    let gain_bc = orig.snap.par_time().as_secs_f64() - bc.snap.par_time().as_secs_f64();
    let gain_full = orig.snap.par_time().as_secs_f64() - opt.snap.par_time().as_secs_f64();
    println!(
        "  broadcast alone recovers {:.0}% of the parallel-time gain (paper: ~46%)",
        100.0 * gain_bc / gain_full.max(1e-12)
    );
}
