//! Criterion micro-benchmarks of the protocol primitives: diff creation
//! and application, vector-clock operations, octree construction and force
//! evaluation, and end-to-end simulated runs of the contention kernel.
//! These measure *host* performance of the simulator itself (not virtual
//! time) — useful when hacking on the protocol hot paths.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use repseq_apps::barnes_hut::plummer::plummer_model;
use repseq_apps::barnes_hut::tree::{force_on, Octree};
use repseq_dsm::{Diff, Vc};

fn bench_diff(c: &mut Criterion) {
    let page_size = 4096;
    let twin = vec![0u8; page_size];
    // Sparse: isolated dirty bytes, the Barnes-Hut body-update shape.
    let mut sparse = twin.clone();
    for i in (0..page_size).step_by(97) {
        sparse[i] = 1;
    }
    // Dense: every byte modified, the Ilink genarray-rewrite shape.
    let mut dense = twin.clone();
    for (i, b) in dense.iter_mut().enumerate() {
        *b = (i % 251) as u8 + 1;
    }
    // The chunked hot path vs the byte-loop baseline it replaced.
    c.bench_function("diff_create_sparse_page", |b| {
        b.iter(|| Diff::create(black_box(&twin), black_box(&sparse)))
    });
    c.bench_function("diff_create_sparse_page_scalar", |b| {
        b.iter(|| Diff::create_scalar(black_box(&twin), black_box(&sparse)))
    });
    c.bench_function("diff_create_dense_page", |b| {
        b.iter(|| Diff::create(black_box(&twin), black_box(&dense)))
    });
    c.bench_function("diff_create_dense_page_scalar", |b| {
        b.iter(|| Diff::create_scalar(black_box(&twin), black_box(&dense)))
    });
    // The whole-page == fast path (unchanged twinned page).
    let clean = twin.clone();
    c.bench_function("diff_create_clean_page", |b| {
        b.iter(|| Diff::create(black_box(&twin), black_box(&clean)))
    });
    let diff = Diff::create(&twin, &dense);
    c.bench_function("diff_apply_dense_page", |b| {
        b.iter_batched(
            || twin.clone(),
            |mut page| diff.apply(black_box(&mut page)),
            BatchSize::SmallInput,
        )
    });
    // Fused multi-diff apply (one pass per page) vs one sequential pass
    // per diff: a chain of 8 dense page versions, as a fault after 8
    // missed intervals of an iterative application would fetch.
    let mut chain = Vec::new();
    let mut cur = twin.clone();
    for k in 0..8u8 {
        let mut next = cur.clone();
        for b in &mut next {
            *b = b.wrapping_add(2 * k + 1);
        }
        chain.push(Diff::create(&cur, &next));
        cur = next;
    }
    c.bench_function("diff_apply_fused_8", |b| {
        b.iter_batched(
            || twin.clone(),
            |mut page| Diff::apply_fused(black_box(&chain), &mut page),
            BatchSize::SmallInput,
        )
    });
    c.bench_function("diff_apply_sequential_8", |b| {
        b.iter_batched(
            || twin.clone(),
            |mut page| {
                for d in black_box(&chain) {
                    d.apply(&mut page).unwrap();
                }
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_vc(c: &mut Criterion) {
    let mut a = Vc::zero(32);
    let mut bb = Vc::zero(32);
    for i in 0..32 {
        a.set(i, (i * 7) as u32);
        bb.set(i, (i * 5 + 3) as u32);
    }
    c.bench_function("vc_merge_32", |b| {
        b.iter_batched(
            || a.clone(),
            |mut x| {
                x.merge(black_box(&bb));
                x
            },
            BatchSize::SmallInput,
        )
    });
    c.bench_function("vc_dominated_by_32", |b| {
        b.iter(|| black_box(&a).dominated_by(black_box(&bb)))
    });
}

fn bench_tree(c: &mut Criterion) {
    let bodies = plummer_model(4096, 7);
    let pos: Vec<[f64; 3]> = bodies.iter().map(|b| b.pos).collect();
    let mass: Vec<f64> = bodies.iter().map(|b| b.mass).collect();
    c.bench_function("octree_build_4096", |b| {
        b.iter(|| Octree::build(black_box(&pos), black_box(&mass)))
    });
    let t = Octree::build(&pos, &mass);
    c.bench_function("octree_force_4096", |b| {
        b.iter(|| force_on(black_box(&t.cells), t.n_bodies, &pos, &mass, 17, 1.0, 0.0025))
    });
}

fn bench_kernel_sim(c: &mut Criterion) {
    use repseq_apps::kernels::{ContentionKernel, KernelConfig};
    use repseq_core::{RunConfig, Runtime, SeqMode};
    let mut group = c.benchmark_group("simulated_runs");
    group.sample_size(10);
    for (label, mode) in
        [("kernel_original_8n", SeqMode::MasterOnly), ("kernel_replicated_8n", SeqMode::Replicated)]
    {
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut rt = Runtime::new(RunConfig {
                    cluster: repseq_dsm::ClusterConfig::paper(8),
                    seq_mode: mode,
                });
                let k = ContentionKernel::setup(&mut rt, KernelConfig::default());
                rt.run(move |team| {
                    black_box(k.run(team)?);
                    Ok(())
                })
                .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_diff, bench_vc, bench_tree, bench_kernel_sim);
criterion_main!(benches);
