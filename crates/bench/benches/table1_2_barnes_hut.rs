//! Reproduces **Table 1** (Barnes-Hut execution times) and **Table 2**
//! (Barnes-Hut execution statistics) of the paper: the Sequential,
//! Original and Optimized systems on the simulated cluster.
//!
//! `REPSEQ_SCALE=full` runs the paper's 131072 bodies; the default scale
//! preserves the shapes at 8192 bodies. `REPSEQ_NODES` overrides the node
//! count (paper: 32).

use repseq_bench::*;
use repseq_core::SeqMode;

fn main() {
    let scale = Scale::from_env();
    let n = nodes_from_env();
    let cfg = bh_config(scale);
    repseq_stats::host::reset();
    println!(
        "Barnes-Hut: {} bodies, {} timesteps, {} nodes ({scale:?} scale)",
        cfg.n_bodies, cfg.timesteps, n
    );

    let seq = run_barnes(SeqMode::MasterOnly, 1, cfg.clone());
    println!("  sequential run done: {} interactions", seq.result.interactions);
    let orig = run_barnes(SeqMode::MasterOnly, n, cfg.clone());
    println!("  original run done");
    let opt = run_barnes(SeqMode::Replicated, n, cfg);
    println!("  optimized run done");

    assert_eq!(seq.result, orig.result, "systems must agree on the physics");
    assert_eq!(seq.result, opt.result, "systems must agree on the physics");

    // Paper values (Table 1, 32 nodes, 131072 bodies).
    let paper_t1 = [
        [Some(359.4), Some(53.6), Some(35.5)],
        [None, Some(6.7), Some(10.1)],
        [Some(1.4), Some(3.2), Some(14.4)],
        [Some(358.0), Some(50.4), Some(21.1)],
        [None, Some(7.1), Some(17.0)],
    ];
    print_time_table(
        "Table 1: Barnes-Hut execution times",
        &seq.snap,
        &orig.snap,
        &opt.snap,
        &paper_t1,
    );

    // Paper values (Table 2).
    let paper_t2 = [
        [Some(5_106_237.0), Some(3_254_275.0)],
        [Some(795_165.0), Some(275_351.0)],
        [Some(96_848.0), Some(205_892.0)],
        [Some(10_446.0), Some(22_443.0)],
        [Some(3_072.0), Some(6_146.0)],
        [Some(0.67), Some(2.12)],
        [Some(5_006_252.0), Some(3_045_226.0)],
        [Some(739_139.0), Some(221_292.0)],
        [Some(8_479.0), Some(3_116.0)],
        [Some(3.34), Some(0.98)],
    ];
    print_stats_table("Table 2: Barnes-Hut execution statistics", &orig.snap, &opt.snap, &paper_t2);

    println!("\nShape checks against the paper:");
    let t = |s: &repseq_stats::StatsSnapshot| s.total_time.as_secs_f64();
    shape_check("Optimized beats Original overall", t(&opt.snap) < t(&orig.snap));
    shape_check(
        "Optimized sequential sections are slower (multicast overhead)",
        opt.snap.seq_time() > orig.snap.seq_time(),
    );
    shape_check(
        "Optimized parallel sections are at least ~2x faster",
        opt.snap.par_time().as_secs_f64() * 1.7 < orig.snap.par_time().as_secs_f64(),
    );
    shape_check(
        "Parallel diff data shrinks by ~3x",
        opt.snap.par_agg().diff_bytes * 2 < orig.snap.par_agg().diff_bytes,
    );
    shape_check(
        "Parallel avg response time drops ~3x",
        opt.snap.par_agg().avg_response().unwrap_or_default().nanos() * 2
            < orig.snap.par_agg().avg_response().unwrap_or_default().nanos(),
    );
    // The paper's Table 2 shows sequential-section messages *growing*
    // under replication (valid-notice traffic outweighs the saved
    // fetches). This repo deliberately deviates: section-retired pages
    // are common-knowledge valid and are no longer re-announced, and the
    // request/go sweeps are single multicasts, so replication now
    // *reduces* section messages too. The paper's directional claim —
    // replication adds sequential-section *time* overhead — is the
    // check above; here we pin the post-optimization direction.
    shape_check(
        "Sequential-section messages shrink under replication (implied-validity optimization; \
         the paper's unoptimized exchange grew them)",
        opt.snap.seq_agg().messages < orig.snap.seq_agg().messages,
    );

    print_host_counters("all three Barnes-Hut runs", &repseq_stats::host::snapshot());
}
