//! The flow-control ablation (§5.4.3 / §8): the paper's conservative
//! ack-chain multicast "is large enough to noticeably affect our results.
//! For this reason, we are actively working on a flow control mechanism
//! with less overhead ... We believe that such strategies are feasible and
//! will substantially improve our results."
//!
//! This harness bounds that conjecture: it runs the optimized systems with
//! the paper's serialized ack-chain and with an idealized concurrent
//! multicast (no master serialization, no turn order, no null acks —
//! physically optimistic about receive buffers).

use repseq_apps::barnes_hut::BarnesHut;
use repseq_apps::ilink::Ilink;
use repseq_bench::*;
use repseq_core::{RunConfig, Runtime, SeqMode};
use repseq_dsm::{ClusterConfig, FlowControl};

fn run_bh_fc(
    n: usize,
    cfg: repseq_apps::barnes_hut::BhConfig,
    fc: FlowControl,
) -> RunOutcome<repseq_apps::barnes_hut::BhResult> {
    let mut cluster = ClusterConfig::paper(n);
    cluster.dsm.flow_control = fc;
    let mut rt = Runtime::new(RunConfig { cluster, seq_mode: SeqMode::Replicated });
    let app = BarnesHut::setup(&mut rt, cfg);
    let stats = rt.stats();
    let out = std::sync::Arc::new(parking_lot::Mutex::new(None));
    let out2 = std::sync::Arc::clone(&out);
    rt.run(move |team| {
        let r = app.run(team)?;
        *out2.lock() = Some(r);
        Ok(())
    })
    .expect("run failed");
    let result = out.lock().take().unwrap();
    RunOutcome { result, snap: stats.snapshot() }
}

fn run_ilink_fc(
    n: usize,
    cfg: repseq_apps::ilink::IlinkConfig,
    fc: FlowControl,
) -> RunOutcome<repseq_apps::ilink::IlinkResult> {
    let mut cluster = ClusterConfig::paper(n);
    cluster.dsm.flow_control = fc;
    let mut rt = Runtime::new(RunConfig { cluster, seq_mode: SeqMode::Replicated });
    let app = Ilink::setup(&mut rt, cfg);
    let stats = rt.stats();
    let out = std::sync::Arc::new(parking_lot::Mutex::new(None));
    let out2 = std::sync::Arc::clone(&out);
    rt.run(move |team| {
        let r = app.run(team)?;
        *out2.lock() = Some(r);
        Ok(())
    })
    .expect("run failed");
    let result = out.lock().take().unwrap();
    RunOutcome { result, snap: stats.snapshot() }
}

fn main() {
    let scale = Scale::from_env();
    let n = nodes_from_env();
    println!("Flow-control ablation on {n} nodes ({scale:?} scale)\n");

    let bh_cfg = bh_config(scale);
    let bh_ser = run_bh_fc(n, bh_cfg.clone(), FlowControl::Serialized);
    let bh_con = run_bh_fc(n, bh_cfg, FlowControl::Concurrent);
    assert_eq!(bh_ser.result, bh_con.result, "flow control must not change the physics");

    let il_cfg = ilink_config(scale);
    let il_ser = run_ilink_fc(n, il_cfg.clone(), FlowControl::Serialized);
    let il_con = run_ilink_fc(n, il_cfg, FlowControl::Concurrent);
    assert_eq!(
        il_ser.result.likelihood, il_con.result.likelihood,
        "flow control must not change the likelihood"
    );

    println!(
        "{:<28} {:>14} {:>14} {:>14} {:>14}",
        "", "seq time (s)", "total (s)", "seq msgs", "null acks"
    );
    for (label, s) in [
        ("Barnes-Hut serialized", &bh_ser.snap),
        ("Barnes-Hut concurrent", &bh_con.snap),
        ("Ilink serialized", &il_ser.snap),
        ("Ilink concurrent", &il_con.snap),
    ] {
        let seq = s.seq_agg();
        println!(
            "{:<28} {:>14.3} {:>14.3} {:>14} {:>14}",
            label,
            s.seq_time().as_secs_f64(),
            s.total_time.as_secs_f64(),
            seq.messages,
            seq.null_acks
        );
    }

    println!("\nShape checks:");
    shape_check(
        "Concurrent multicast shortens Barnes-Hut replicated sections",
        bh_con.snap.seq_time() < bh_ser.snap.seq_time(),
    );
    shape_check(
        "Concurrent multicast shortens Ilink replicated sections",
        il_con.snap.seq_time() < il_ser.snap.seq_time(),
    );
    shape_check(
        "Null acks disappear without the ack chain",
        bh_con.snap.seq_agg().null_acks == 0 && il_con.snap.seq_agg().null_acks == 0,
    );
    shape_check(
        "Message counts do not grow without the chain (null acks + forwards gone)",
        bh_con.snap.seq_agg().messages <= bh_ser.snap.seq_agg().messages
            && il_con.snap.seq_agg().messages <= il_ser.snap.seq_agg().messages,
    );
    let bh_gain =
        bh_ser.snap.seq_time().as_secs_f64() / bh_con.snap.seq_time().as_secs_f64().max(1e-12);
    let il_gain =
        il_ser.snap.seq_time().as_secs_f64() / il_con.snap.seq_time().as_secs_f64().max(1e-12);
    println!(
        "  conjectured §8 improvement bound: sequential sections {bh_gain:.2}x (Barnes-Hut), {il_gain:.2}x (Ilink)"
    );
}
