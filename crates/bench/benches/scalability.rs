//! Extension experiment: node-count scaling of the Original and Optimized
//! systems (the trend §3 and §7 argue about — contention at the master
//! grows with the node count, so replication's advantage should widen).
//! The paper evaluates only 32 nodes; this sweep adds the curve.

use repseq_bench::*;
use repseq_core::SeqMode;

fn main() {
    let scale = Scale::from_env();
    let sweep: &[usize] = match scale {
        Scale::Tiny => &[2, 4, 8],
        _ => &[2, 4, 8, 16, 32],
    };
    let bh_cfg = bh_config(scale);
    let il_cfg = ilink_config(scale);

    println!("Scalability sweep ({scale:?} scale)\n");
    println!(
        "{:<12} {:>6} {:>14} {:>14} {:>12} {:>12}",
        "app", "nodes", "orig time (s)", "opt time (s)", "orig spdup", "opt spdup"
    );

    let bh_seq = run_barnes(SeqMode::MasterOnly, 1, bh_cfg.clone());
    let il_seq = run_ilink(SeqMode::MasterOnly, 1, il_cfg.clone());
    let bh_base = bh_seq.snap.total_time.as_secs_f64();
    let il_base = il_seq.snap.total_time.as_secs_f64();

    let mut widening = Vec::new();
    for &n in sweep {
        let o = run_barnes(SeqMode::MasterOnly, n, bh_cfg.clone());
        let r = run_barnes(SeqMode::Replicated, n, bh_cfg.clone());
        assert_eq!(o.result, r.result);
        let (to, tr) = (o.snap.total_time.as_secs_f64(), r.snap.total_time.as_secs_f64());
        println!(
            "{:<12} {:>6} {:>14.2} {:>14.2} {:>12.2} {:>12.2}",
            "barnes-hut",
            n,
            to,
            tr,
            bh_base / to,
            bh_base / tr
        );
        widening.push(to / tr);
    }
    println!();
    for &n in sweep {
        let o = run_ilink(SeqMode::MasterOnly, n, il_cfg.clone());
        let r = run_ilink(SeqMode::Replicated, n, il_cfg.clone());
        assert_eq!(o.result.likelihood, r.result.likelihood);
        let (to, tr) = (o.snap.total_time.as_secs_f64(), r.snap.total_time.as_secs_f64());
        println!(
            "{:<12} {:>6} {:>14.2} {:>14.2} {:>12.2} {:>12.2}",
            "ilink",
            n,
            to,
            tr,
            il_base / to,
            il_base / tr
        );
    }

    println!("\nShape checks:");
    shape_check(
        "Replication's Barnes-Hut advantage widens with the node count",
        widening.last().unwrap_or(&1.0) > widening.first().unwrap_or(&1.0),
    );
}
