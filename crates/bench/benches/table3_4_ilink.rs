//! Reproduces **Table 3** (Ilink execution times) and **Table 4** (Ilink
//! execution statistics): the synthetic genetic-linkage workload under the
//! Sequential, Original and Optimized systems.
//!
//! `REPSEQ_SCALE=full` runs 180 outer iterations as the paper's CLP input
//! requires; the default scale runs 24.

use repseq_bench::*;
use repseq_core::SeqMode;

fn main() {
    let scale = Scale::from_env();
    let n = nodes_from_env();
    let cfg = ilink_config(scale);
    repseq_stats::host::reset();
    println!(
        "Ilink: {} families, genarrays of {}, {} iterations, {} nodes ({scale:?} scale)",
        cfg.n_families, cfg.genarray_len, cfg.iterations, n
    );

    let seq = run_ilink(SeqMode::MasterOnly, 1, cfg.clone());
    println!(
        "  sequential run done: {} parallel-eligible / {} small updates",
        seq.result.parallel_updates, seq.result.sequential_updates
    );
    let orig = run_ilink(SeqMode::MasterOnly, n, cfg.clone());
    println!("  original run done");
    let opt = run_ilink(SeqMode::Replicated, n, cfg);
    println!("  optimized run done");

    // Across node counts the per-node partial sums reassociate, so the
    // 1-node baseline agrees only up to floating-point grouping; across
    // systems at the same node count the result is bit-identical.
    let rel = (seq.result.likelihood - orig.result.likelihood).abs()
        / orig.result.likelihood.abs().max(1e-12);
    assert!(rel < 1e-6, "sequential and original must agree (rel err {rel})");
    assert_eq!(
        orig.result.likelihood, opt.result.likelihood,
        "original and optimized must agree bit-for-bit"
    );

    // Paper values (Table 3, 32 nodes, CLP input).
    let paper_t3 = [
        [Some(99.0), Some(53.6), Some(18.0)],
        [None, Some(1.9), Some(5.5)],
        [Some(2.2), Some(5.5), Some(9.2)],
        [Some(96.8), Some(48.1), Some(8.8)],
        [None, Some(2.0), Some(11.0)],
    ];
    print_time_table("Table 3: Ilink execution times", &seq.snap, &orig.snap, &opt.snap, &paper_t3);

    // Paper values (Table 4).
    let paper_t4 = [
        [Some(1_002_787.0), Some(230_392.0)],
        [Some(565_711.0), Some(49_535.0)],
        [Some(104_530.0), Some(94_589.0)],
        [Some(2_803.0), Some(2_885.0)],
        [Some(2_836.0), Some(2_837.0)],
        [Some(0.94), Some(1.71)],
        [Some(873_052.0), Some(111_600.0)],
        [Some(518_266.0), Some(13_895.0)],
        [Some(12_318.0), Some(540.0)],
        [Some(3.01), Some(0.64)],
    ];
    print_stats_table("Table 4: Ilink execution statistics", &orig.snap, &opt.snap, &paper_t4);

    println!("\nShape checks against the paper:");
    shape_check(
        "Optimized beats Original overall (paper: 189% improvement)",
        opt.snap.total_time < orig.snap.total_time,
    );
    shape_check(
        "Optimized sequential sections are slower",
        opt.snap.seq_time() > orig.snap.seq_time(),
    );
    shape_check(
        "Parallel time collapses (paper: 48.1 s -> 8.8 s)",
        opt.snap.par_time().as_secs_f64() * 2.0 < orig.snap.par_time().as_secs_f64(),
    );
    shape_check(
        "Parallel diff data nearly vanishes (paper: -97%)",
        opt.snap.par_agg().diff_bytes * 5 < orig.snap.par_agg().diff_bytes,
    );
    shape_check(
        "Parallel diff messages drop hard (paper: -87%)",
        opt.snap.par_agg().diff_messages * 2 < orig.snap.par_agg().diff_messages,
    );
    shape_check(
        "Total messages drop (paper: ~4.4x)",
        opt.snap.total_agg().messages * 2 < orig.snap.total_agg().messages,
    );
    shape_check("Sequential diff data roughly unchanged (paper: 2803 vs 2885 KB)", {
        let a = orig.snap.seq_agg().diff_bytes as f64;
        let b = opt.snap.seq_agg().diff_bytes as f64;
        b < a * 3.0 && a < b * 3.0
    });

    print_host_counters("all three Ilink runs", &repseq_stats::host::snapshot());
}
