//! Emit the benchmark-trajectory artifacts `BENCH_diff.json` (diff-engine
//! micro-benchmarks: chunked vs byte-loop baseline, fused vs sequential
//! apply) and `BENCH_table1.json` (a Table-1-shaped Barnes-Hut run with
//! simulated times plus the host diff-engine counters).
//!
//! Run with `cargo run --release -p repseq-bench --bin bench_json` from the
//! repository root; the files are written to the current directory. The
//! checked-in copies record the trajectory at commit time — refresh them
//! whenever the data plane changes (see DESIGN.md §Performance).
//!
//! `REPSEQ_BENCH_SCALE=tiny|default` and `REPSEQ_BENCH_NODES=<n>` size the
//! table run (defaults: tiny, 8 — small enough to regenerate in seconds).
//! Timing is hand-rolled (`std::time::Instant`, median of 15 samples)
//! because binaries cannot see dev-dependencies like the criterion harness.

use std::fmt::Write as _;
use std::time::Instant;

use repseq_apps::barnes_hut::BhResult;
use repseq_bench::{bh_config, run_barnes, RunOutcome, Scale};
use repseq_core::SeqMode;
use repseq_dsm::Diff;
use repseq_stats::host;

const PAGE: usize = 4096;
const SAMPLES: usize = 15;

/// Median ns/iteration of `f`, auto-calibrated so each sample runs ≥2 ms.
fn bench_ns(mut f: impl FnMut()) -> f64 {
    let mut iters = 1u64;
    loop {
        let t = Instant::now();
        for _ in 0..iters {
            f();
        }
        if t.elapsed().as_nanos() >= 2_000_000 {
            break;
        }
        iters *= 2;
    }
    let mut samples: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let t = Instant::now();
            for _ in 0..iters {
                f();
            }
            t.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[SAMPLES / 2]
}

struct Case {
    name: &'static str,
    baseline_ns: f64,
    chunked_ns: f64,
}

fn diff_cases() -> Vec<Case> {
    let twin = vec![0u8; PAGE];
    let mut sparse = twin.clone();
    for i in (0..PAGE).step_by(97) {
        sparse[i] = 1;
    }
    let mut dense = twin.clone();
    for (i, b) in dense.iter_mut().enumerate() {
        *b = (i % 251) as u8 + 1;
    }
    let clean = twin.clone();
    let mut out = Vec::new();
    for (name, page) in
        [("create_sparse", &sparse), ("create_dense", &dense), ("create_clean", &clean)]
    {
        out.push(Case {
            name,
            baseline_ns: bench_ns(|| {
                std::hint::black_box(Diff::create_scalar(&twin, page));
            }),
            chunked_ns: bench_ns(|| {
                std::hint::black_box(Diff::create(&twin, page));
            }),
        });
    }
    // Fused vs sequential apply of 8-diff chains. "Overlap" is the Ilink
    // fault shape — consecutive intervals rewrote the whole page, so every
    // earlier diff is fully shadowed and fused apply copies each byte
    // once instead of eight times. "Scattered" is the worst case for the
    // bookkeeping: small disjoint runs where sequential apply is already
    // one cheap word move per run.
    for (name, chain) in [
        ("apply_8_chain_overlap", overlap_chain(&twin)),
        ("apply_8_chain_scattered", scattered_chain(&twin)),
    ] {
        let mut scratch = twin.clone();
        out.push(Case {
            name,
            baseline_ns: bench_ns(|| {
                scratch.copy_from_slice(&twin);
                for d in &chain {
                    d.apply(&mut scratch).unwrap();
                }
                std::hint::black_box(&scratch);
            }),
            chunked_ns: bench_ns(|| {
                scratch.copy_from_slice(&twin);
                Diff::apply_fused(&chain, &mut scratch).unwrap();
                std::hint::black_box(&scratch);
            }),
        });
    }
    out
}

/// Eight diffs that each rewrite the entire page (dense iterative
/// updates, the Ilink shape).
fn overlap_chain(twin: &[u8]) -> Vec<Diff> {
    let mut chain = Vec::new();
    let mut cur = twin.to_vec();
    for k in 0..8u8 {
        let mut next = cur.clone();
        for b in &mut next {
            *b = b.wrapping_add(2 * k + 1); // odd step: every byte changes
        }
        chain.push(Diff::create(&cur, &next));
        cur = next;
    }
    chain
}

/// Eight diffs with small runs scattered at different offsets (unrelated
/// sparse writers).
fn scattered_chain(twin: &[u8]) -> Vec<Diff> {
    let mut chain = Vec::new();
    let mut cur = twin.to_vec();
    for k in 0..8u8 {
        let mut next = cur.clone();
        for i in ((k as usize * 13)..next.len()).step_by(97) {
            next[i] = next[i].wrapping_add(k + 1);
        }
        chain.push(Diff::create(&cur, &next));
        cur = next;
    }
    chain
}

fn write_bench_diff(cases: &[Case]) -> std::io::Result<()> {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"diff_engine\",\n");
    let _ = writeln!(s, "  \"page_size\": {PAGE},");
    s.push_str("  \"unit\": \"ns_per_op_median\",\n");
    s.push_str(
        "  \"note\": \"baseline = byte-loop create (or sequential multi-apply); chunked = u64-chunked create (or fused apply)\",\n",
    );
    s.push_str("  \"cases\": [\n");
    for (i, c) in cases.iter().enumerate() {
        let _ = writeln!(
            s,
            "    {{\"name\": \"{}\", \"baseline_ns\": {:.1}, \"chunked_ns\": {:.1}, \"speedup\": {:.2}}}{}",
            c.name,
            c.baseline_ns,
            c.chunked_ns,
            c.baseline_ns / c.chunked_ns,
            if i + 1 < cases.len() { "," } else { "" },
        );
    }
    s.push_str("  ]\n}\n");
    std::fs::write("BENCH_diff.json", s)
}

fn write_bench_table1(
    scale: Scale,
    n: usize,
    seq: &RunOutcome<BhResult>,
    orig: &RunOutcome<BhResult>,
    opt: &RunOutcome<BhResult>,
    host: &host::HostCounters,
) -> std::io::Result<()> {
    let t = |o: &RunOutcome<BhResult>| o.snap.total_time.as_secs_f64();
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"table1_barnes_hut\",\n");
    let _ = writeln!(s, "  \"scale\": \"{scale:?}\",");
    let _ = writeln!(s, "  \"nodes\": {n},");
    s.push_str("  \"simulated\": {\n");
    let _ = writeln!(s, "    \"sequential_time_s\": {:.6},", t(seq));
    let _ = writeln!(s, "    \"original_time_s\": {:.6},", t(orig));
    let _ = writeln!(s, "    \"optimized_time_s\": {:.6},", t(opt));
    let _ = writeln!(s, "    \"original_speedup\": {:.3},", t(seq) / t(orig));
    let _ = writeln!(s, "    \"optimized_speedup\": {:.3}", t(seq) / t(opt));
    s.push_str("  },\n");
    s.push_str("  \"host_diff_engine\": {\n");
    let _ = writeln!(s, "    \"diff_create_calls\": {},", host.diff_create_calls);
    let _ = writeln!(s, "    \"diff_create_ns\": {},", host.diff_create_ns);
    let _ = writeln!(s, "    \"diff_create_bytes_scanned\": {},", host.diff_create_bytes);
    let _ = writeln!(s, "    \"diff_apply_calls\": {},", host.diff_apply_calls);
    let _ = writeln!(s, "    \"diff_apply_ns\": {},", host.diff_apply_ns);
    let _ = writeln!(s, "    \"diff_apply_bytes_copied\": {},", host.diff_apply_bytes);
    let _ = writeln!(s, "    \"twin_pool_hits\": {},", host.twin_pool_hits);
    let _ = writeln!(s, "    \"twin_pool_misses\": {}", host.twin_pool_misses);
    s.push_str("  }\n}\n");
    std::fs::write("BENCH_table1.json", s)
}

fn main() {
    println!("diff-engine micro-benchmarks ({SAMPLES}-sample medians)...");
    let cases = diff_cases();
    for c in &cases {
        println!(
            "  {:<20} baseline {:>9.1} ns   chunked {:>9.1} ns   speedup {:>5.2}x",
            c.name,
            c.baseline_ns,
            c.chunked_ns,
            c.baseline_ns / c.chunked_ns
        );
    }
    write_bench_diff(&cases).expect("writing BENCH_diff.json");
    println!("wrote BENCH_diff.json");

    let scale = match std::env::var("REPSEQ_BENCH_SCALE").as_deref() {
        Ok("default") => Scale::Default,
        Ok("full") => Scale::Full,
        _ => Scale::Tiny,
    };
    let n: usize =
        std::env::var("REPSEQ_BENCH_NODES").ok().and_then(|s| s.parse().ok()).unwrap_or(8);
    let cfg = bh_config(scale);
    println!(
        "Barnes-Hut table run: {} bodies, {} timesteps, {n} nodes ({scale:?} scale)...",
        cfg.n_bodies, cfg.timesteps
    );
    host::reset();
    let seq = run_barnes(SeqMode::MasterOnly, 1, cfg.clone());
    let orig = run_barnes(SeqMode::MasterOnly, n, cfg.clone());
    let opt = run_barnes(SeqMode::Replicated, n, cfg);
    assert_eq!(seq.result, orig.result, "systems must agree on the physics");
    assert_eq!(seq.result, opt.result, "systems must agree on the physics");
    let counters = host::snapshot();
    repseq_bench::print_host_counters("table run", &counters);
    write_bench_table1(scale, n, &seq, &orig, &opt, &counters).expect("writing BENCH_table1.json");
    println!("wrote BENCH_table1.json");
}
