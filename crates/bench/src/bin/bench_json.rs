//! Emit the benchmark-trajectory artifacts:
//!
//! * `BENCH_diff.json` — diff-engine micro-benchmarks (chunked vs
//!   byte-loop baseline, fused vs sequential apply);
//! * `BENCH_mmu.json` — software-MMU access-path micro-benchmarks: the
//!   locked page walk (TLB off) vs the TLB hit path vs the page-guard
//!   bulk path, in host ns per shared-memory access;
//! * `BENCH_table1.json` — a Table-1-shaped Barnes-Hut run with simulated
//!   times, host wall time, and the host data-plane counters.
//!
//! Run with `cargo run --release -p repseq-bench --bin bench_json` from the
//! repository root; the files are written to the current directory. The
//! checked-in copies record the trajectory at commit time — refresh them
//! whenever the data plane changes (see DESIGN.md §Performance and
//! EXPERIMENTS.md for the methodology).
//!
//! `REPSEQ_BENCH_SCALE=tiny|default` and `REPSEQ_BENCH_NODES=<n>` size the
//! table run (defaults: tiny, 32 — the paper's cluster size; CI's
//! bench-smoke job overrides nodes down for speed). Timing is hand-rolled
//! (`std::time::Instant`, median of 15 samples) because binaries cannot
//! see dev-dependencies like the criterion harness.
//!
//! The harness gates, not just records: it asserts the twin pool absorbs
//! ≥90% of twin allocations, that the guard path is ≥5x and the TLB hit
//! path ≥2x faster than the locked baseline, that the TLB changes
//! nothing about the simulation (identical virtual time, messages, bytes
//! with the TLB on and off), that every host-execution configuration
//! (duty-handoff, window-parallel at 2 and 4 threads) reproduces the
//! serial fingerprint exactly, and that window-parallel throughput is at
//! least duty-handoff's at the 256-node cluster.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;
use repseq_apps::barnes_hut::{BhConfig, BhResult};
use repseq_apps::kv::KvResult;
use repseq_bench::{bh_config, run_barnes, run_barnes_exec, run_kv, RunOutcome, Scale};
use repseq_core::SeqMode;
use repseq_dsm::{Cluster, ClusterConfig, Diff, DsmNode, ShArray};
use repseq_sim::{HostExec, Stopped};
use repseq_stats::{host, Stats};

const PAGE: usize = 4096;
const SAMPLES: usize = 15;

/// Schema of every BENCH_*.json artifact this harness writes. Bump when a
/// field changes meaning, so trajectory tooling can tell formats apart.
/// v3: `host_execution` gains the window-parallel `parallel` column
/// (threads 2 and 4) next to serial and duty-handoff, and the
/// `host_data_plane` blocks report the scratch-arena counters.
const SCHEMA_VERSION: u32 = 3;

/// Execute independent sweep points on scoped host worker threads,
/// returning results in input order regardless of completion order.
/// `workers == 1` runs the points inline. Points must be genuinely
/// independent: simulations never share state (virtual results are
/// host-invariant by construction — the pins and the host-execution
/// matrix prove it), but points that *time the host wall clock* contend
/// for cores when co-scheduled, so callers keep those at `workers == 1`
/// or skip their throughput gates.
fn sweep_points<I: Sync, T: Send>(
    items: &[I],
    workers: usize,
    f: impl Fn(&I) -> T + Sync,
) -> Vec<T> {
    let workers = workers.clamp(1, items.len().max(1));
    if workers == 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<T>>> = Mutex::new((0..items.len()).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let v = f(&items[i]);
                slots.lock()[i] = Some(v);
            });
        }
    });
    let mut filled = slots.lock();
    (0..items.len()).map(|i| filled[i].take().expect("sweep point completed")).collect()
}

/// The commit the artifacts were generated at (best effort; "unknown"
/// outside a git checkout).
fn commit_id() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".into())
}

/// Median ns/iteration of `f`, auto-calibrated so each sample runs ≥2 ms.
fn bench_ns(mut f: impl FnMut()) -> f64 {
    let mut iters = 1u64;
    loop {
        let t = Instant::now();
        for _ in 0..iters {
            f();
        }
        if t.elapsed().as_nanos() >= 2_000_000 {
            break;
        }
        iters *= 2;
    }
    let mut samples: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let t = Instant::now();
            for _ in 0..iters {
                f();
            }
            t.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[SAMPLES / 2]
}

struct Case {
    name: &'static str,
    baseline_ns: f64,
    chunked_ns: f64,
}

fn diff_cases() -> Vec<Case> {
    let twin = vec![0u8; PAGE];
    let mut sparse = twin.clone();
    for i in (0..PAGE).step_by(97) {
        sparse[i] = 1;
    }
    let mut dense = twin.clone();
    for (i, b) in dense.iter_mut().enumerate() {
        *b = (i % 251) as u8 + 1;
    }
    let clean = twin.clone();
    let mut out = Vec::new();
    for (name, page) in
        [("create_sparse", &sparse), ("create_dense", &dense), ("create_clean", &clean)]
    {
        out.push(Case {
            name,
            baseline_ns: bench_ns(|| {
                std::hint::black_box(Diff::create_scalar(&twin, page));
            }),
            chunked_ns: bench_ns(|| {
                std::hint::black_box(Diff::create(&twin, page));
            }),
        });
    }
    // Fused vs sequential apply of 8-diff chains. "Overlap" is the Ilink
    // fault shape — consecutive intervals rewrote the whole page, so every
    // earlier diff is fully shadowed and fused apply copies each byte
    // once instead of eight times. "Scattered" is the worst case for the
    // bookkeeping: small disjoint runs where sequential apply is already
    // one cheap word move per run.
    for (name, chain) in [
        ("apply_8_chain_overlap", overlap_chain(&twin)),
        ("apply_8_chain_scattered", scattered_chain(&twin)),
    ] {
        let mut scratch = twin.clone();
        out.push(Case {
            name,
            baseline_ns: bench_ns(|| {
                scratch.copy_from_slice(&twin);
                for d in &chain {
                    d.apply(&mut scratch).unwrap();
                }
                std::hint::black_box(&scratch);
            }),
            chunked_ns: bench_ns(|| {
                scratch.copy_from_slice(&twin);
                Diff::apply_fused(&chain, &mut scratch).unwrap();
                std::hint::black_box(&scratch);
            }),
        });
    }
    out
}

/// Eight diffs that each rewrite the entire page (dense iterative
/// updates, the Ilink shape).
fn overlap_chain(twin: &[u8]) -> Vec<Diff> {
    let mut chain = Vec::new();
    let mut cur = twin.to_vec();
    for k in 0..8u8 {
        let mut next = cur.clone();
        for b in &mut next {
            *b = b.wrapping_add(2 * k + 1); // odd step: every byte changes
        }
        chain.push(Diff::create(&cur, &next));
        cur = next;
    }
    chain
}

/// Eight diffs with small runs scattered at different offsets (unrelated
/// sparse writers).
fn scattered_chain(twin: &[u8]) -> Vec<Diff> {
    let mut chain = Vec::new();
    let mut cur = twin.to_vec();
    for k in 0..8u8 {
        let mut next = cur.clone();
        for i in ((k as usize * 13)..next.len()).step_by(97) {
            next[i] = next[i].wrapping_add(k + 1);
        }
        chain.push(Diff::create(&cur, &next));
        cur = next;
    }
    chain
}

fn write_bench_diff(cases: &[Case], commit: &str) -> std::io::Result<()> {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"diff_engine\",\n");
    let _ = writeln!(s, "  \"schema_version\": {SCHEMA_VERSION},");
    let _ = writeln!(s, "  \"commit\": \"{commit}\",");
    let _ = writeln!(s, "  \"page_size\": {PAGE},");
    s.push_str("  \"unit\": \"ns_per_op_median\",\n");
    s.push_str(
        "  \"note\": \"baseline = byte-loop create (or sequential multi-apply); chunked = u64-chunked create (or fused apply)\",\n",
    );
    s.push_str("  \"cases\": [\n");
    for (i, c) in cases.iter().enumerate() {
        let _ = writeln!(
            s,
            "    {{\"name\": \"{}\", \"baseline_ns\": {:.1}, \"chunked_ns\": {:.1}, \"speedup\": {:.2}}}{}",
            c.name,
            c.baseline_ns,
            c.chunked_ns,
            c.baseline_ns / c.chunked_ns,
            if i + 1 < cases.len() { "," } else { "" },
        );
    }
    s.push_str("  ]\n}\n");
    std::fs::write("BENCH_diff.json", s)
}

// ---------------------------------------------------------------
// Software-MMU access-path micro-benchmarks
// ---------------------------------------------------------------

/// ns per access for the four access paths, measured inside a 1-node
/// cluster (every page warm, so no faults or messages — pure MMU cost).
#[derive(Debug, Clone, Copy)]
struct MmuNumbers {
    elem_read_ns: f64,
    elem_write_ns: f64,
    guard_read_ns: f64,
    guard_write_ns: f64,
}

/// Measure element and guard access on a warm 16-page array. `tlb` off
/// gives the locked page-walk baseline; on gives the TLB-hit path.
fn mmu_case(tlb: bool) -> MmuNumbers {
    let stats = Stats::new(1);
    let mut ccfg = ClusterConfig::paper(1);
    ccfg.dsm.tlb_enabled = tlb;
    let mut cl = Cluster::new(ccfg, stats);
    let len = 16 * PAGE / 8;
    let arr: ShArray<u64> = cl.alloc_array_page_aligned(len);
    let out = Arc::new(Mutex::new(None));
    let out2 = Arc::clone(&out);
    let app = move |node: DsmNode| -> Result<(), Stopped> {
        // Warm every page: one write fault each, pages stay writable.
        arr.with_slices_mut(&node, 0..len, |run| {
            for j in 0..run.len() {
                run.set(j, j as u64);
            }
            Ok(())
        })?;
        let mut i = 0usize;
        let elem_read_ns = bench_ns(|| {
            i = (i + 129) % len;
            std::hint::black_box(arr.get(&node, i).unwrap());
        });
        let mut i = 0usize;
        let elem_write_ns = bench_ns(|| {
            i = (i + 129) % len;
            arr.set(&node, i, i as u64 ^ 0x5A).unwrap();
        });
        let guard_read_ns = bench_ns(|| {
            let mut s = 0u64;
            arr.with_slices(&node, 0..len, |run| {
                for j in 0..run.len() {
                    s = s.wrapping_add(run.get(j));
                }
                Ok(())
            })
            .unwrap();
            std::hint::black_box(s);
        }) / len as f64;
        let guard_write_ns = bench_ns(|| {
            arr.with_slices_mut(&node, 0..len, |run| {
                for j in 0..run.len() {
                    run.set(j, j as u64 ^ 0xA5);
                }
                Ok(())
            })
            .unwrap();
        }) / len as f64;
        *out2.lock() =
            Some(MmuNumbers { elem_read_ns, elem_write_ns, guard_read_ns, guard_write_ns });
        Ok(())
    };
    #[allow(clippy::type_complexity)]
    let apps: Vec<Box<dyn FnOnce(DsmNode) -> Result<(), Stopped> + Send>> = vec![Box::new(app)];
    cl.launch(apps).expect("mmu bench run failed");
    let nums = out.lock().take().expect("mmu bench produced no numbers");
    nums
}

fn write_bench_mmu(off: &MmuNumbers, on: &MmuNumbers, commit: &str) -> std::io::Result<()> {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"software_mmu\",\n");
    let _ = writeln!(s, "  \"schema_version\": {SCHEMA_VERSION},");
    let _ = writeln!(s, "  \"commit\": \"{commit}\",");
    let _ = writeln!(s, "  \"page_size\": {PAGE},");
    s.push_str("  \"unit\": \"ns_per_access_median\",\n");
    s.push_str(
        "  \"note\": \"warm 16-page u64 array on a 1-node cluster; locked_baseline = TLB disabled (mutex + page walk per access); tlb_hit = per-element fast path; guard = with_slices bulk path, amortized per element\",\n",
    );
    let _ = writeln!(
        s,
        "  \"locked_baseline\": {{\"read_ns\": {:.1}, \"write_ns\": {:.1}}},",
        off.elem_read_ns, off.elem_write_ns
    );
    let _ = writeln!(
        s,
        "  \"tlb_hit\": {{\"read_ns\": {:.1}, \"write_ns\": {:.1}}},",
        on.elem_read_ns, on.elem_write_ns
    );
    let _ = writeln!(
        s,
        "  \"guard\": {{\"read_ns\": {:.2}, \"write_ns\": {:.2}}},",
        on.guard_read_ns, on.guard_write_ns
    );
    let _ = writeln!(s, "  \"speedup_tlb_read\": {:.2},", off.elem_read_ns / on.elem_read_ns);
    let _ = writeln!(s, "  \"speedup_tlb_write\": {:.2},", off.elem_write_ns / on.elem_write_ns);
    let _ = writeln!(s, "  \"speedup_guard_read\": {:.2},", off.elem_read_ns / on.guard_read_ns);
    let _ = writeln!(s, "  \"speedup_guard_write\": {:.2}", off.elem_write_ns / on.guard_write_ns);
    s.push_str("}\n");
    std::fs::write("BENCH_mmu.json", s)
}

#[allow(clippy::too_many_arguments)]
fn write_bench_table1(
    scale: Scale,
    n: usize,
    seq: &RunOutcome<BhResult>,
    orig: &RunOutcome<BhResult>,
    opt: &RunOutcome<BhResult>,
    host: &host::HostCounters,
    host_wall_s: f64,
    commit: &str,
) -> std::io::Result<()> {
    let t = |o: &RunOutcome<BhResult>| o.snap.total_time.as_secs_f64();
    let hit_rate = |hits: u64, misses: u64| {
        let total = hits + misses;
        if total == 0 {
            1.0
        } else {
            hits as f64 / total as f64
        }
    };
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"table1_barnes_hut\",\n");
    let _ = writeln!(s, "  \"schema_version\": {SCHEMA_VERSION},");
    let _ = writeln!(s, "  \"commit\": \"{commit}\",");
    let _ = writeln!(s, "  \"scale\": \"{scale:?}\",");
    let _ = writeln!(s, "  \"nodes\": {n},");
    let _ = writeln!(s, "  \"host_wall_s\": {host_wall_s:.3},");
    s.push_str("  \"simulated\": {\n");
    let _ = writeln!(s, "    \"sequential_time_s\": {:.6},", t(seq));
    let _ = writeln!(s, "    \"original_time_s\": {:.6},", t(orig));
    let _ = writeln!(s, "    \"optimized_time_s\": {:.6},", t(opt));
    let _ = writeln!(s, "    \"original_speedup\": {:.3},", t(seq) / t(orig));
    let _ = writeln!(s, "    \"optimized_speedup\": {:.3}", t(seq) / t(opt));
    s.push_str("  },\n");
    s.push_str("  \"tlb_invariance\": \"verified: identical virtual time, messages and bytes with the TLB on and off\",\n");
    s.push_str("  \"host_data_plane\": {\n");
    let _ = writeln!(s, "    \"diff_create_calls\": {},", host.diff_create_calls);
    let _ = writeln!(s, "    \"diff_create_ns\": {},", host.diff_create_ns);
    let _ = writeln!(s, "    \"diff_create_bytes_scanned\": {},", host.diff_create_bytes);
    let _ = writeln!(s, "    \"diff_apply_calls\": {},", host.diff_apply_calls);
    let _ = writeln!(s, "    \"diff_apply_ns\": {},", host.diff_apply_ns);
    let _ = writeln!(s, "    \"diff_apply_bytes_copied\": {},", host.diff_apply_bytes);
    let _ = writeln!(s, "    \"twin_pool_hits\": {},", host.twin_pool_hits);
    let _ = writeln!(s, "    \"twin_pool_misses\": {},", host.twin_pool_misses);
    let _ = writeln!(
        s,
        "    \"twin_pool_hit_rate\": {:.4},",
        hit_rate(host.twin_pool_hits, host.twin_pool_misses)
    );
    let _ = writeln!(s, "    \"scratch_pool_hits\": {},", host.scratch_pool_hits);
    let _ = writeln!(s, "    \"scratch_pool_misses\": {},", host.scratch_pool_misses);
    let _ = writeln!(
        s,
        "    \"scratch_pool_hit_rate\": {:.4},",
        hit_rate(host.scratch_pool_hits, host.scratch_pool_misses)
    );
    let _ = writeln!(s, "    \"tlb_hits\": {},", host.tlb_hits);
    let _ = writeln!(s, "    \"tlb_misses\": {},", host.tlb_misses);
    let _ = writeln!(s, "    \"tlb_hit_rate\": {:.4}", hit_rate(host.tlb_hits, host.tlb_misses));
    s.push_str("  }\n}\n");
    std::fs::write("BENCH_table1.json", s)
}

/// The three-way sequential-section strategy comparison (§2, §6.1.2):
/// master-only, master-plus-broadcast (MasterPush) and replicated (RSE) on
/// the same contended Barnes-Hut run. MasterPush removes the demand-fetch
/// request storm but still serializes the whole tree through the master's
/// transmit link, so RSE must stay ahead of it once the tree is big enough
/// to be worth contending over — the run is pinned at 8192 bodies and at
/// least 16 nodes regardless of the (smoke-sized) table-run scale.
#[allow(clippy::too_many_arguments)]
fn write_bench_modes(
    n: usize,
    bodies: usize,
    orig: &RunOutcome<BhResult>,
    push: &RunOutcome<BhResult>,
    opt: &RunOutcome<BhResult>,
    host: &host::HostCounters,
    host_wall_s: f64,
    commit: &str,
) -> std::io::Result<()> {
    let t = |o: &RunOutcome<BhResult>| o.snap.total_time.as_secs_f64();
    let hit_rate = |hits: u64, misses: u64| {
        let total = hits + misses;
        if total == 0 {
            1.0
        } else {
            hits as f64 / total as f64
        }
    };
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"seq_exec_modes_barnes_hut\",\n");
    let _ = writeln!(s, "  \"schema_version\": {SCHEMA_VERSION},");
    let _ = writeln!(s, "  \"commit\": \"{commit}\",");
    let _ = writeln!(s, "  \"bodies\": {bodies},");
    let _ = writeln!(s, "  \"nodes\": {n},");
    let _ = writeln!(s, "  \"host_wall_s\": {host_wall_s:.3},");
    s.push_str(
        "  \"note\": \"same workload and cluster for all three strategies; times are simulated seconds. master_push broadcasts the section's written pages over the master's link (contention moves from request storm to transmit serialization); rse replicates the section so no page of it ever crosses the wire\",\n",
    );
    s.push_str("  \"simulated\": {\n");
    let _ = writeln!(s, "    \"master_only_time_s\": {:.6},", t(orig));
    let _ = writeln!(s, "    \"master_push_time_s\": {:.6},", t(push));
    let _ = writeln!(s, "    \"rse_time_s\": {:.6},", t(opt));
    let _ = writeln!(s, "    \"push_vs_master_only\": {:.3},", t(orig) / t(push));
    let _ = writeln!(s, "    \"rse_vs_master_only\": {:.3},", t(orig) / t(opt));
    let _ = writeln!(s, "    \"rse_vs_push\": {:.3}", t(push) / t(opt));
    s.push_str("  },\n");
    s.push_str("  \"host_data_plane\": {\n");
    let _ = writeln!(s, "    \"diff_create_calls\": {},", host.diff_create_calls);
    let _ = writeln!(s, "    \"diff_create_ns\": {},", host.diff_create_ns);
    let _ = writeln!(s, "    \"diff_apply_calls\": {},", host.diff_apply_calls);
    let _ = writeln!(s, "    \"diff_apply_ns\": {},", host.diff_apply_ns);
    let _ = writeln!(
        s,
        "    \"twin_pool_hit_rate\": {:.4},",
        hit_rate(host.twin_pool_hits, host.twin_pool_misses)
    );
    let _ = writeln!(
        s,
        "    \"scratch_pool_hit_rate\": {:.4},",
        hit_rate(host.scratch_pool_hits, host.scratch_pool_misses)
    );
    let _ = writeln!(s, "    \"tlb_hit_rate\": {:.4}", hit_rate(host.tlb_hits, host.tlb_misses));
    s.push_str("  }\n}\n");
    std::fs::write("BENCH_modes.json", s)
}

// ---------------------------------------------------------------
// KV serving sweep: open-loop zipfian traffic across skews
// ---------------------------------------------------------------

/// One measured point of the KV sweep: all three strategies on the same
/// trace at one (nodes, skew) coordinate.
struct KvPoint {
    nodes: usize,
    theta: f64,
    n_requests: usize,
    orig: RunOutcome<KvResult>,
    push: RunOutcome<KvResult>,
    rse: RunOutcome<KvResult>,
}

/// The serving-workload artifact: per-strategy throughput and tail
/// latency across the skew grid, at every node count. Request latencies
/// are open-loop (queueing delay included) over *virtual* time, so the
/// tails measure protocol contention, not host scheduling. The
/// fingerprint gate has already run by the time this is written.
fn write_bench_kv(points: &[KvPoint], commit: &str) -> std::io::Result<()> {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"kv_serving_zipfian\",\n");
    let _ = writeln!(s, "  \"schema_version\": {SCHEMA_VERSION},");
    let _ = writeln!(s, "  \"commit\": \"{commit}\",");
    s.push_str(
        "  \"note\": \"open-loop zipfian KV serving: reads fan out cyclically across nodes, writes run as per-shard named sequential sections. latencies are virtual nanoseconds from request arrival to completion (queueing included); identical request traces and final-table fingerprints across strategies are asserted before this file is written\",\n",
    );
    s.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        let one = |tag: &str, o: &RunOutcome<KvResult>| {
            let mut t = String::new();
            let _ = writeln!(t, "      \"{tag}\": {{");
            let _ = writeln!(t, "        \"throughput_rps\": {:.1},", o.result.throughput_rps);
            let _ = writeln!(t, "        \"p50_ns\": {},", o.result.p50_ns);
            let _ = writeln!(t, "        \"p99_ns\": {},", o.result.p99_ns);
            let _ = writeln!(t, "        \"p999_ns\": {},", o.result.p999_ns);
            let _ = writeln!(t, "        \"time_s\": {:.6}", o.result.total.as_secs_f64());
            t.push_str("      }");
            t
        };
        s.push_str("    {\n");
        let _ = writeln!(s, "      \"nodes\": {},", p.nodes);
        let _ = writeln!(s, "      \"zipf_theta\": {},", p.theta);
        let _ = writeln!(s, "      \"requests\": {},", p.n_requests);
        let _ = writeln!(s, "      \"fingerprint\": \"{:#018x}\",", p.orig.result.fingerprint);
        s.push_str(&one("master_only", &p.orig));
        s.push_str(",\n");
        s.push_str(&one("master_push", &p.push));
        s.push_str(",\n");
        s.push_str(&one("rse", &p.rse));
        s.push_str(",\n");
        let _ = writeln!(
            s,
            "      \"rse_vs_master_only_throughput\": {:.3}",
            p.rse.result.throughput_rps / p.orig.result.throughput_rps
        );
        s.push_str(if i + 1 == points.len() { "    }\n" } else { "    },\n" });
    }
    s.push_str("  ]\n}\n");
    std::fs::write("BENCH_kv.json", s)
}

// ---------------------------------------------------------------
// Host-execution bench: serial coordinator loop vs duty-handoff vs
// window-parallel conservative execution
// ---------------------------------------------------------------

/// The window-parallel thread counts the trajectory records per cluster.
const PARALLEL_THREADS: [usize; 2] = [2, 4];

/// One measured host execution of the reference workload.
struct HostRun {
    wall_s: f64,
    events: u64,
    events_per_sec: f64,
    exec: repseq_sim::ExecCounters,
}

/// Run Barnes-Hut (RSE) at `n` nodes with `threads` host threads under
/// the given execution mode (`None` = automatic promotion) and time the
/// host wall clock.
fn host_run(n: usize, threads: usize, exec: Option<HostExec>, cfg: &BhConfig) -> (HostRun, String) {
    let wall = Instant::now();
    let (out, report) = run_barnes_exec(SeqMode::Replicated, n, cfg.clone(), true, threads, exec);
    let wall_s = wall.elapsed().as_secs_f64();
    // Everything determinism-relevant, in one comparable string: the
    // virtual end state of the kernel, the physics, and the wire totals.
    let agg = out.snap.total_agg_with_startup();
    let fp = format!(
        "end={} events={} clocks={:?} backlog={:?} total_time={} msgs={} bytes={} result={:?}",
        report.end_time.nanos(),
        report.events_processed,
        report.proc_clocks,
        report.mailbox_backlog,
        out.snap.total_time.nanos(),
        agg.messages,
        agg.bytes,
        out.result,
    );
    let run = HostRun {
        wall_s,
        events: report.events_processed,
        events_per_sec: report.events_processed as f64 / wall_s.max(1e-9),
        exec: report.exec,
    };
    (run, fp)
}

struct HostCase {
    nodes: usize,
    serial: HostRun,
    handoff: HostRun,
    /// Window-parallel runs, one per entry of [`PARALLEL_THREADS`].
    parallel: Vec<(usize, HostRun)>,
}

/// CPUs available to this process. Window-parallel wall-clock wins need
/// ≥ 2; the throughput gate and the artifact both record this so a run on
/// a single-core host is legible as such.
fn host_cpus() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Measure one cluster size: serial coordinator, duty-handoff (forced —
/// the automatic promotion now picks window-parallel at ≥ 2 threads) and
/// window-parallel at each thread count, asserting every configuration
/// reproduces the serial fingerprint before anything is recorded.
fn measure_host_case(hn: usize, handoff_threads: usize, cfg: &BhConfig) -> HostCase {
    let (serial, fp_serial) = host_run(hn, 1, None, cfg);
    let (handoff, fp_handoff) = host_run(hn, handoff_threads, Some(HostExec::Handoff), cfg);
    assert_eq!(fp_serial, fp_handoff, "duty-handoff changed the simulation at {hn} nodes");
    let mut parallel = Vec::new();
    for &t in &PARALLEL_THREADS {
        let (run, fp) = host_run(hn, t, None, cfg);
        assert_eq!(
            fp_serial, fp,
            "window-parallel execution ({t} threads) changed the simulation at {hn} nodes"
        );
        assert!(
            run.exec.windows > 0,
            "window-parallel run at {hn} nodes / {t} threads never opened a window: {:?}",
            run.exec
        );
        parallel.push((t, run));
    }
    HostCase { nodes: hn, serial, handoff, parallel }
}

fn write_bench_host(
    scale: Scale,
    threads: usize,
    bodies: usize,
    cases: &[HostCase],
    commit: &str,
) -> std::io::Result<()> {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"host_execution\",\n");
    let _ = writeln!(s, "  \"schema_version\": {SCHEMA_VERSION},");
    let _ = writeln!(s, "  \"commit\": \"{commit}\",");
    let _ = writeln!(s, "  \"scale\": \"{scale:?}\",");
    let _ = writeln!(s, "  \"bodies\": {bodies},");
    let _ = writeln!(s, "  \"handoff_threads\": {threads},");
    let _ = writeln!(
        s,
        "  \"parallel_threads\": [{}],",
        PARALLEL_THREADS.map(|t| t.to_string()).join(", ")
    );
    let _ = writeln!(s, "  \"host_cpus\": {},", host_cpus());
    s.push_str(
        "  \"note\": \"Barnes-Hut (RSE) per cluster size: serial coordinator loop vs duty-handoff scheduling vs window-parallel conservative execution; fingerprints (virtual end state, physics, wire totals) verified identical across all configurations before writing. events_per_sec = kernel events / host wall seconds; speedups are vs serial\",\n",
    );
    s.push_str("  \"clusters\": [\n");
    for (i, c) in cases.iter().enumerate() {
        let _ = writeln!(s, "    {{\"nodes\": {},", c.nodes);
        let _ = writeln!(
            s,
            "     \"serial\": {{\"host_wall_s\": {:.3}, \"events\": {}, \"events_per_sec\": {:.0}}},",
            c.serial.wall_s, c.serial.events, c.serial.events_per_sec
        );
        let _ = writeln!(
            s,
            "     \"handoff\": {{\"host_wall_s\": {:.3}, \"events\": {}, \"events_per_sec\": {:.0}, \"handoff_switches\": {}, \"self_continues\": {}, \"inline_events\": {}, \"sprint_pops\": {}}},",
            c.handoff.wall_s,
            c.handoff.events,
            c.handoff.events_per_sec,
            c.handoff.exec.handoff_switches,
            c.handoff.exec.self_continues,
            c.handoff.exec.inline_events,
            c.handoff.exec.sprint_pops
        );
        s.push_str("     \"parallel\": [\n");
        for (j, (t, run)) in c.parallel.iter().enumerate() {
            let _ = writeln!(
                s,
                "       {{\"threads\": {t}, \"host_wall_s\": {:.3}, \"events\": {}, \"events_per_sec\": {:.0}, \"windows\": {}, \"max_parallel_groups\": {}, \"barrier_stalls\": {}, \"handoff_switches\": {}}}{}",
                run.wall_s,
                run.events,
                run.events_per_sec,
                run.exec.windows,
                run.exec.max_parallel_groups,
                run.exec.barrier_stalls,
                run.exec.handoff_switches,
                if j + 1 < c.parallel.len() { "," } else { "" }
            );
        }
        s.push_str("     ],\n");
        let best_parallel = c.parallel.iter().map(|(_, r)| r.wall_s).fold(f64::INFINITY, f64::min);
        let _ = writeln!(
            s,
            "     \"handoff_speedup\": {:.2},",
            c.serial.wall_s / c.handoff.wall_s.max(1e-9)
        );
        let _ = writeln!(
            s,
            "     \"parallel_speedup\": {:.2}}}{}",
            c.serial.wall_s / best_parallel.max(1e-9),
            if i + 1 < cases.len() { "," } else { "" }
        );
    }
    s.push_str("  ]\n}\n");
    std::fs::write("BENCH_host.json", s)
}

fn main() {
    let commit = commit_id();
    println!("diff-engine micro-benchmarks ({SAMPLES}-sample medians)...");
    let cases = diff_cases();
    for c in &cases {
        println!(
            "  {:<20} baseline {:>9.1} ns   chunked {:>9.1} ns   speedup {:>5.2}x",
            c.name,
            c.baseline_ns,
            c.chunked_ns,
            c.baseline_ns / c.chunked_ns
        );
    }
    write_bench_diff(&cases, &commit).expect("writing BENCH_diff.json");
    println!("wrote BENCH_diff.json");

    println!("software-MMU access-path micro-benchmarks...");
    let mmu_off = mmu_case(false);
    let mmu_on = mmu_case(true);
    println!(
        "  locked baseline  read {:>7.1} ns   write {:>7.1} ns",
        mmu_off.elem_read_ns, mmu_off.elem_write_ns
    );
    println!(
        "  TLB hit          read {:>7.1} ns   write {:>7.1} ns   ({:.2}x / {:.2}x)",
        mmu_on.elem_read_ns,
        mmu_on.elem_write_ns,
        mmu_off.elem_read_ns / mmu_on.elem_read_ns,
        mmu_off.elem_write_ns / mmu_on.elem_write_ns
    );
    println!(
        "  page guard       read {:>7.2} ns   write {:>7.2} ns   ({:.2}x / {:.2}x)",
        mmu_on.guard_read_ns,
        mmu_on.guard_write_ns,
        mmu_off.elem_read_ns / mmu_on.guard_read_ns,
        mmu_off.elem_write_ns / mmu_on.guard_write_ns
    );
    assert!(
        mmu_off.elem_read_ns >= 2.0 * mmu_on.elem_read_ns
            && mmu_off.elem_write_ns >= 2.0 * mmu_on.elem_write_ns,
        "TLB hit path must be >=2x faster than the locked baseline \
         (read {:.1} vs {:.1} ns, write {:.1} vs {:.1} ns)",
        mmu_on.elem_read_ns,
        mmu_off.elem_read_ns,
        mmu_on.elem_write_ns,
        mmu_off.elem_write_ns
    );
    assert!(
        mmu_off.elem_read_ns >= 5.0 * mmu_on.guard_read_ns
            && mmu_off.elem_write_ns >= 5.0 * mmu_on.guard_write_ns,
        "guard path must be >=5x faster than the locked baseline \
         (read {:.2} vs {:.1} ns, write {:.2} vs {:.1} ns)",
        mmu_on.guard_read_ns,
        mmu_off.elem_read_ns,
        mmu_on.guard_write_ns,
        mmu_off.elem_write_ns
    );
    write_bench_mmu(&mmu_off, &mmu_on, &commit).expect("writing BENCH_mmu.json");
    println!("wrote BENCH_mmu.json");

    let scale = match std::env::var("REPSEQ_BENCH_SCALE").as_deref() {
        Ok("default") => Scale::Default,
        Ok("full") => Scale::Full,
        _ => Scale::Tiny,
    };
    let n: usize =
        std::env::var("REPSEQ_BENCH_NODES").ok().and_then(|s| s.parse().ok()).unwrap_or(32);
    let cfg = bh_config(scale);
    println!(
        "Barnes-Hut table run: {} bodies, {} timesteps, {n} nodes ({scale:?} scale)...",
        cfg.n_bodies, cfg.timesteps
    );
    host::reset();
    let wall = Instant::now();
    let seq = run_barnes(SeqMode::MasterOnly, 1, cfg.clone());
    let orig = run_barnes(SeqMode::MasterOnly, n, cfg.clone());
    let opt = run_barnes(SeqMode::Replicated, n, cfg.clone());
    let host_wall_s = wall.elapsed().as_secs_f64();
    assert_eq!(seq.result, orig.result, "systems must agree on the physics");
    assert_eq!(seq.result, opt.result, "systems must agree on the physics");
    let counters = host::snapshot();
    let twin_total = counters.twin_pool_hits + counters.twin_pool_misses;
    assert!(
        twin_total == 0 || counters.twin_pool_hits as f64 >= 0.9 * twin_total as f64,
        "twin pool must absorb >=90% of twin allocations ({} hits / {} total)",
        counters.twin_pool_hits,
        twin_total
    );
    let tlb_total = counters.tlb_hits + counters.tlb_misses;
    assert!(
        tlb_total == 0 || counters.tlb_hits as f64 >= 0.95 * tlb_total as f64,
        "software TLB must serve >=95% of accesses without a page walk \
         ({} hits / {} total): set-associativity, per-page generations and \
         guard amortization should leave only protocol-mandatory faults",
        counters.tlb_hits,
        tlb_total
    );
    repseq_bench::print_host_counters("table run", &counters);

    // The TLB must be invisible to the simulation: re-run the optimized
    // system with the fast path disabled and require identical virtual
    // results.
    println!("TLB invariance check (optimized system, fast path disabled)...");
    let opt_no_tlb = repseq_bench::run_barnes_config(SeqMode::Replicated, n, cfg, false);
    assert_eq!(opt.result, opt_no_tlb.result, "TLB must not change the physics");
    assert_eq!(
        opt.snap.total_time, opt_no_tlb.snap.total_time,
        "TLB must not change simulated time"
    );
    let (a, b) = (opt.snap.total_agg_with_startup(), opt_no_tlb.snap.total_agg_with_startup());
    assert_eq!(a.messages, b.messages, "TLB must not change message counts");
    assert_eq!(a.bytes, b.bytes, "TLB must not change byte counts");
    println!("  ok: identical virtual time, messages, bytes");

    write_bench_table1(scale, n, &seq, &orig, &opt, &counters, host_wall_s, &commit)
        .expect("writing BENCH_table1.json");
    println!("wrote BENCH_table1.json");

    // Host-execution trajectory: serial coordinator loop vs duty-handoff
    // scheduling vs window-parallel conservative execution on the same
    // workload, growing the cluster past the paper's 32 nodes.
    // Fingerprints must match before anything is written — host
    // threading is a wall-clock optimization only. The cluster sizes are
    // independent sweep points and run through `sweep_points`, but the
    // default stays sequential (workers = 1): each point times the host
    // wall clock, and co-scheduled points contend for the cores being
    // measured. REPSEQ_BENCH_HOST_SWEEP_THREADS > 1 trades the
    // throughput gates (skipped, numbers are noise) for wall time when
    // only the fingerprint checks matter.
    let host_nodes: Vec<usize> = std::env::var("REPSEQ_BENCH_HOST_NODES")
        .map(|v| v.split(',').filter_map(|t| t.trim().parse().ok()).collect())
        .unwrap_or_default();
    let host_nodes = if host_nodes.is_empty() { vec![32, 64, 256] } else { host_nodes };
    let host_threads: usize =
        std::env::var("REPSEQ_BENCH_HOST_THREADS").ok().and_then(|s| s.parse().ok()).unwrap_or(4);
    let host_workers: usize = std::env::var("REPSEQ_BENCH_HOST_SWEEP_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let host_cfg = bh_config(scale);
    println!(
        "host execution trajectory: Barnes-Hut (RSE) at {host_nodes:?} nodes — serial vs \
         duty-handoff ({host_threads} threads) vs window-parallel ({PARALLEL_THREADS:?} threads)..."
    );
    let host_cases: Vec<HostCase> = sweep_points(&host_nodes, host_workers, |&hn| {
        measure_host_case(hn, host_threads, &host_cfg)
    });
    for c in &host_cases {
        println!("  {} nodes:", c.nodes);
        println!("    serial    {:>8.3}s  {:>10.0} ev/s", c.serial.wall_s, c.serial.events_per_sec);
        println!(
            "    handoff   {:>8.3}s  {:>10.0} ev/s   speedup {:.2}x",
            c.handoff.wall_s,
            c.handoff.events_per_sec,
            c.serial.wall_s / c.handoff.wall_s.max(1e-9)
        );
        for (t, run) in &c.parallel {
            println!(
                "    window x{t} {:>8.3}s  {:>10.0} ev/s   speedup {:.2}x   \
                 ({} windows, max {} groups in flight, {} barrier stalls)",
                run.wall_s,
                run.events_per_sec,
                c.serial.wall_s / run.wall_s.max(1e-9),
                run.exec.windows,
                run.exec.max_parallel_groups,
                run.exec.barrier_stalls
            );
        }
        if host_workers > 1 {
            continue; // co-scheduled timing is noise; fingerprints already gated
        }
        // Gate: duty-handoff must not regress event throughput by more
        // than 10% (it is expected to win; the artifact records the
        // actual speedup). Sub-50ms serial runs are pure timer noise.
        if c.serial.wall_s >= 0.05 {
            assert!(
                c.handoff.events_per_sec >= 0.9 * c.serial.events_per_sec,
                "duty-handoff regressed events/sec by >10% at {} nodes: \
                 serial {:.0} vs handoff {:.0}",
                c.nodes,
                c.serial.events_per_sec,
                c.handoff.events_per_sec
            );
        }
        // Gate: at the paper-scale 256-node cluster, window-parallel
        // execution must at least match duty-handoff throughput — the
        // whole point of the window engine is turning independent node
        // groups into wall-clock concurrency (target: ≥1.5x over
        // serial; the artifact records the actual figure). Only armed on
        // hosts that can actually run groups concurrently: on a single
        // CPU the window engine pays its arbiter for zero overlap, so
        // losing to duty-handoff there is expected, not a regression.
        // The artifact records `host_cpus` so a reader can tell which
        // case a committed run was.
        if c.nodes >= 256 && c.serial.wall_s >= 0.05 {
            if host_cpus() >= 2 {
                let best = c.parallel.iter().map(|(_, r)| r.events_per_sec).fold(0.0f64, f64::max);
                assert!(
                    best >= c.handoff.events_per_sec,
                    "window-parallel execution fell behind duty-handoff at {} nodes: \
                     best parallel {:.0} ev/s vs handoff {:.0} ev/s",
                    c.nodes,
                    best,
                    c.handoff.events_per_sec
                );
            } else {
                println!(
                    "    (single-CPU host: the 256-node parallel-vs-handoff gate is \
                     informational only)"
                );
            }
        }
    }
    write_bench_host(scale, host_threads, host_cfg.n_bodies, &host_cases, &commit)
        .expect("writing BENCH_host.json");
    println!("wrote BENCH_host.json");

    // Strategy comparison on a tree big enough to contend over: the tiny
    // table config would let the broadcast win on sheer smallness.
    let modes_n = n.max(16);
    let modes_cfg = repseq_apps::barnes_hut::BhConfig::scaled(8_192);
    let bodies = modes_cfg.n_bodies;
    println!(
        "strategy comparison: {bodies} bodies, {} timesteps, {modes_n} nodes...",
        modes_cfg.timesteps
    );
    let modes_before = host::snapshot();
    let modes_wall = Instant::now();
    let m_orig = run_barnes(SeqMode::MasterOnly, modes_n, modes_cfg.clone());
    let m_push = run_barnes(SeqMode::MasterPush, modes_n, modes_cfg.clone());
    let m_opt = run_barnes(SeqMode::Replicated, modes_n, modes_cfg);
    let modes_wall_s = modes_wall.elapsed().as_secs_f64();
    let modes_host = host::snapshot().since(&modes_before);
    assert_eq!(m_orig.result, m_push.result, "strategies must agree on the physics");
    assert_eq!(m_orig.result, m_opt.result, "strategies must agree on the physics");
    let t = |o: &RunOutcome<BhResult>| o.snap.total_time.as_secs_f64();
    println!(
        "  master_only {:.6}s   master_push {:.6}s   rse {:.6}s",
        t(&m_orig),
        t(&m_push),
        t(&m_opt)
    );
    assert!(
        t(&m_opt) < t(&m_push),
        "RSE must beat MasterPush on the contended tree rebuild at {modes_n} nodes \
         (rse {:.6}s vs push {:.6}s): the broadcast still serializes the whole \
         tree through the master's transmit link (§2)",
        t(&m_opt),
        t(&m_push)
    );
    write_bench_modes(
        modes_n,
        bodies,
        &m_orig,
        &m_push,
        &m_opt,
        &modes_host,
        modes_wall_s,
        &commit,
    )
    .expect("writing BENCH_modes.json");
    println!("wrote BENCH_modes.json");

    // KV serving sweep: the open-loop zipfian workload across skews and
    // node counts, all three strategies on the same trace at each point.
    // Two gates before anything is written: every strategy must agree on
    // the final table fingerprint, the served-read XOR, and the request
    // counts at every point (a divergence means a stale page was served);
    // and at the highest skew RSE must beat MasterOnly on throughput —
    // the paper's contention-elimination claim, restated for serving.
    let kv_nodes: Vec<usize> = std::env::var("REPSEQ_BENCH_KV_NODES")
        .map(|v| v.split(',').filter_map(|t| t.trim().parse().ok()).collect())
        .unwrap_or_default();
    let kv_nodes = if kv_nodes.is_empty() { vec![32, 64, 256] } else { kv_nodes };
    let skews = [0.2f64, 0.99, 1.2];
    // Record-sized values regardless of smoke scale — like the strategy
    // comparison above, the tiny test config would make the sections too
    // small to be worth contending over. Only the trace length shrinks.
    let kv_base = repseq_apps::kv::KvConfig::scaled(match scale {
        Scale::Tiny => 512,
        Scale::Default => 1024,
        Scale::Full => 4096,
    });
    // The θ×nodes grid points are independent simulations whose recorded
    // metrics are all *virtual* (throughput and latencies over simulated
    // time), so unlike the host trajectory above they can safely share
    // the machine: the sweep fans out on scoped host threads
    // (REPSEQ_BENCH_SWEEP_THREADS, default 2) and the results come back
    // in grid order, so the printed table and BENCH_kv.json are
    // byte-identical however the points were scheduled.
    let kv_workers: usize =
        std::env::var("REPSEQ_BENCH_SWEEP_THREADS").ok().and_then(|s| s.parse().ok()).unwrap_or(2);
    let coords: Vec<(usize, f64)> =
        kv_nodes.iter().flat_map(|&kn| skews.iter().map(move |&theta| (kn, theta))).collect();
    println!(
        "KV serving sweep: {} points ({:?} nodes x {:?} skew) on {kv_workers} sweep thread(s)...",
        coords.len(),
        kv_nodes,
        skews
    );
    let points: Vec<KvPoint> = sweep_points(&coords, kv_workers, |&(kn, theta)| {
        let cfg = kv_base.clone().with_skew(theta).weak_scaled(kn);
        let n_requests = cfg.n_requests;
        let orig = run_kv(SeqMode::MasterOnly, kn, cfg.clone());
        let push = run_kv(SeqMode::MasterPush, kn, cfg.clone());
        let rse = run_kv(SeqMode::Replicated, kn, cfg);
        for (tag, o) in [("master_push", &push), ("rse", &rse)] {
            assert_eq!(
                (o.result.fingerprint, o.result.read_xor, o.result.reads, o.result.writes),
                (
                    orig.result.fingerprint,
                    orig.result.read_xor,
                    orig.result.reads,
                    orig.result.writes
                ),
                "{tag} diverged from master_only at {kn} nodes, theta {theta}: \
                 a replicated or pushed page served stale data"
            );
        }
        KvPoint { nodes: kn, theta, n_requests, orig, push, rse }
    });
    for p in &points {
        println!(
            "  {} nodes, theta {:<4} ({} requests): master_only {:>9.0} rps (p99 {:>7.2} ms)   \
             master_push {:>9.0} rps   rse {:>9.0} rps (p99 {:>7.2} ms)",
            p.nodes,
            p.theta,
            p.n_requests,
            p.orig.result.throughput_rps,
            p.orig.result.p99_ns as f64 / 1e6,
            p.push.result.throughput_rps,
            p.rse.result.throughput_rps,
            p.rse.result.p99_ns as f64 / 1e6
        );
        // Virtual-time gate, immune to host scheduling: at the highest
        // skew RSE must beat MasterOnly on throughput at every node
        // count — the paper's contention-elimination claim, restated
        // for serving.
        if p.theta == *skews.last().expect("skew grid is non-empty") {
            assert!(
                p.rse.result.throughput_rps >= p.orig.result.throughput_rps,
                "RSE must beat MasterOnly on throughput at theta {} with {} nodes \
                 (rse {:.0} vs master_only {:.0} rps): replicating the hot shard's \
                 write sections is the whole point under skew",
                p.theta,
                p.nodes,
                p.rse.result.throughput_rps,
                p.orig.result.throughput_rps
            );
        }
    }
    write_bench_kv(&points, &commit).expect("writing BENCH_kv.json");
    println!("wrote BENCH_kv.json");
}
