//! # repseq-bench — harnesses regenerating the paper's evaluation
//!
//! One bench target per table of PPoPP'01 §6, plus the two in-text
//! ablations and a scalability extension. Each harness runs the relevant
//! application under the Sequential (1 node), Original and Optimized
//! systems and prints the paper's rows with the paper's published values
//! alongside the measured ones.
//!
//! Scale control: `REPSEQ_SCALE=tiny|default|full` (default `default`) and
//! `REPSEQ_NODES=<n>` (default 32, as in the paper). `full` is the paper's
//! problem size and takes a while; `default` preserves the shapes at
//! laptop scale.

use std::sync::Arc;

use parking_lot::Mutex;
use repseq_apps::barnes_hut::{BarnesHut, BhConfig, BhResult};
use repseq_apps::ilink::{Ilink, IlinkConfig, IlinkResult};
use repseq_apps::kv::{KvConfig, KvResult, KvStore};
use repseq_core::{RunConfig, Runtime, SeqMode};
use repseq_dsm::ClusterConfig;
use repseq_sim::{Dur, HostExec, SimReport};
use repseq_stats::{Section, StatsSnapshot};

/// Benchmark scale, from `REPSEQ_SCALE`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    Tiny,
    Default,
    Full,
}

impl Scale {
    /// Read the scale from the environment.
    pub fn from_env() -> Scale {
        match std::env::var("REPSEQ_SCALE").as_deref() {
            Ok("full") => Scale::Full,
            Ok("tiny") => Scale::Tiny,
            _ => Scale::Default,
        }
    }
}

/// Node count, from `REPSEQ_NODES` (default 32, the paper's cluster).
pub fn nodes_from_env() -> usize {
    std::env::var("REPSEQ_NODES").ok().and_then(|s| s.parse().ok()).unwrap_or(32)
}

/// The Barnes-Hut configuration for a scale.
pub fn bh_config(scale: Scale) -> BhConfig {
    match scale {
        Scale::Full => BhConfig::paper(),
        Scale::Default => BhConfig::scaled(8_192),
        Scale::Tiny => BhConfig::tiny(),
    }
}

/// The Ilink configuration for a scale.
pub fn ilink_config(scale: Scale) -> IlinkConfig {
    match scale {
        Scale::Full => IlinkConfig::paper(),
        Scale::Default => IlinkConfig::scaled(16),
        Scale::Tiny => IlinkConfig::tiny(),
    }
}

/// The KV-serving configuration for a scale.
pub fn kv_config(scale: Scale) -> KvConfig {
    match scale {
        Scale::Full => KvConfig::paper(),
        Scale::Default => KvConfig::scaled(1024),
        Scale::Tiny => KvConfig::tiny(),
    }
}

/// One measured system run.
pub struct RunOutcome<R> {
    pub result: R,
    pub snap: StatsSnapshot,
}

/// Run Barnes-Hut under `mode` on `n` nodes.
pub fn run_barnes(mode: SeqMode, n: usize, cfg: BhConfig) -> RunOutcome<BhResult> {
    run_barnes_config(mode, n, cfg, true)
}

/// Like [`run_barnes`], but with the software TLB explicitly enabled or
/// disabled — the bench harness runs both and asserts the simulated
/// results are identical (the fast path must be invisible to virtual
/// time).
pub fn run_barnes_config(
    mode: SeqMode,
    n: usize,
    cfg: BhConfig,
    tlb_enabled: bool,
) -> RunOutcome<BhResult> {
    run_barnes_report(mode, n, cfg, tlb_enabled, 1).0
}

/// Like [`run_barnes_config`], but also selects the host thread count
/// (`host_threads`, see `ClusterConfig`) and returns the kernel's
/// [`SimReport`] alongside the outcome — the host-execution bench compares
/// reports across thread counts and derives events/sec from them. Uses the
/// automatic execution-mode promotion (serial at 1 thread, window-parallel
/// at ≥ 2).
pub fn run_barnes_report(
    mode: SeqMode,
    n: usize,
    cfg: BhConfig,
    tlb_enabled: bool,
    host_threads: usize,
) -> (RunOutcome<BhResult>, SimReport) {
    run_barnes_exec(mode, n, cfg, tlb_enabled, host_threads, None)
}

/// The fully explicit Barnes-Hut runner: thread count *and* forced host
/// execution mode (`None` = automatic promotion). The host-execution bench
/// uses this to put the serial coordinator, duty-handoff and
/// window-parallel engines side by side at the same thread count.
pub fn run_barnes_exec(
    mode: SeqMode,
    n: usize,
    cfg: BhConfig,
    tlb_enabled: bool,
    host_threads: usize,
    host_exec: Option<HostExec>,
) -> (RunOutcome<BhResult>, SimReport) {
    let mut cluster = ClusterConfig::paper(n);
    cluster.dsm.tlb_enabled = tlb_enabled;
    cluster.host_threads = host_threads;
    cluster.host_exec = host_exec;
    let mut rt = Runtime::new(RunConfig { cluster, seq_mode: mode });
    let app = BarnesHut::setup(&mut rt, cfg);
    let stats = rt.stats();
    let out = Arc::new(Mutex::new(None));
    let out2 = Arc::clone(&out);
    let report = rt
        .run(move |team| {
            let r = app.run(team)?;
            *out2.lock() = Some(r);
            Ok(())
        })
        .expect("barnes-hut run failed");
    let result = out.lock().take().unwrap();
    (RunOutcome { result, snap: stats.snapshot() }, report)
}

/// Run the KV-serving workload under `mode` on `n` nodes.
pub fn run_kv(mode: SeqMode, n: usize, cfg: KvConfig) -> RunOutcome<KvResult> {
    let mut rt = Runtime::new(RunConfig { cluster: ClusterConfig::paper(n), seq_mode: mode });
    let app = KvStore::setup(&mut rt, cfg);
    let stats = rt.stats();
    let out = Arc::new(Mutex::new(None));
    let out2 = Arc::clone(&out);
    rt.run(move |team| {
        let r = app.run(team)?;
        *out2.lock() = Some(r);
        Ok(())
    })
    .expect("kv run failed");
    let result = out.lock().take().unwrap();
    RunOutcome { result, snap: stats.snapshot() }
}

/// Run Ilink under `mode` on `n` nodes.
pub fn run_ilink(mode: SeqMode, n: usize, cfg: IlinkConfig) -> RunOutcome<IlinkResult> {
    let mut rt = Runtime::new(RunConfig { cluster: ClusterConfig::paper(n), seq_mode: mode });
    let app = Ilink::setup(&mut rt, cfg);
    let stats = rt.stats();
    let out = Arc::new(Mutex::new(None));
    let out2 = Arc::clone(&out);
    rt.run(move |team| {
        let r = app.run(team)?;
        *out2.lock() = Some(r);
        Ok(())
    })
    .expect("ilink run failed");
    let result = out.lock().take().unwrap();
    RunOutcome { result, snap: stats.snapshot() }
}

fn secs(d: Dur) -> f64 {
    d.as_secs_f64()
}

/// Print a Table-1/Table-3 style execution-time table.
///
/// `paper` carries the paper's published values (same row order) for
/// side-by-side comparison; pass `None` for rows the paper does not report.
pub fn print_time_table(
    title: &str,
    seq: &StatsSnapshot,
    orig: &StatsSnapshot,
    opt: &StatsSnapshot,
    paper: &[[Option<f64>; 3]; 5],
) {
    let seq_total = secs(seq.total_time);
    let rows: [(&str, [f64; 3]); 5] = [
        ("Total time (sec.)", [seq_total, secs(orig.total_time), secs(opt.total_time)]),
        (
            "Total speedup",
            [1.0, seq_total / secs(orig.total_time), seq_total / secs(opt.total_time)],
        ),
        (
            "Sequential time (sec.)",
            [secs(seq.seq_time()), secs(orig.seq_time()), secs(opt.seq_time())],
        ),
        (
            "Parallel time (sec.)",
            [secs(seq.par_time()), secs(orig.par_time()), secs(opt.par_time())],
        ),
        (
            "Parallel speedup",
            [
                1.0,
                secs(seq.par_time()) / secs(orig.par_time()).max(1e-12),
                secs(seq.par_time()) / secs(opt.par_time()).max(1e-12),
            ],
        ),
    ];
    println!("\n=== {title} ===");
    println!(
        "{:<26} {:>12} {:>12} {:>12}   | paper: {:>9} {:>9} {:>9}",
        "", "Sequential", "Original", "Optimized", "Seq", "Orig", "Opt"
    );
    for (i, (label, vals)) in rows.iter().enumerate() {
        let p = paper[i];
        println!(
            "{:<26} {:>12.2} {:>12.2} {:>12.2}   | {:>16} {:>9} {:>9}",
            label,
            vals[0],
            vals[1],
            vals[2],
            p[0].map(|v| format!("{v:.1}")).unwrap_or_else(|| "-".into()),
            p[1].map(|v| format!("{v:.1}")).unwrap_or_else(|| "-".into()),
            p[2].map(|v| format!("{v:.1}")).unwrap_or_else(|| "-".into()),
        );
    }
}

/// Print a Table-2/Table-4 style communication-statistics table.
pub fn print_stats_table(
    title: &str,
    orig: &StatsSnapshot,
    opt: &StatsSnapshot,
    paper: &[[Option<f64>; 2]; 10],
) {
    let row = |snap: &StatsSnapshot| -> [f64; 10] {
        let total = snap.total_agg();
        let seq = snap.seq_agg();
        let par = snap.par_agg();
        [
            total.messages as f64,
            total.bytes as f64 / 1024.0,
            seq.diff_messages as f64,
            seq.diff_bytes as f64 / 1024.0,
            snap.max_node_diff_requests(Section::Sequential) as f64,
            seq.avg_response().map(|d| d.as_millis_f64()).unwrap_or(0.0),
            par.diff_messages as f64,
            par.diff_bytes as f64 / 1024.0,
            snap.avg_node_diff_requests(Section::Parallel),
            par.avg_response().map(|d| d.as_millis_f64()).unwrap_or(0.0),
        ]
    };
    let labels = [
        "Total messages",
        "      data (KB)",
        "Seq  diff messages",
        "     diff data (KB)",
        "     diff requests",
        "     avg response (ms)",
        "Par  diff messages",
        "     diff data (KB)",
        "     avg diff requests",
        "     avg response (ms)",
    ];
    let o = row(orig);
    let p = row(opt);
    println!("\n=== {title} ===");
    println!(
        "{:<24} {:>14} {:>14}   | paper: {:>12} {:>12}",
        "", "Original", "Optimized", "Orig", "Opt"
    );
    for i in 0..10 {
        let pp = paper[i];
        println!(
            "{:<24} {:>14.2} {:>14.2}   | {:>20} {:>12}",
            labels[i],
            o[i],
            p[i],
            pp[0].map(|v| format!("{v}")).unwrap_or_else(|| "-".into()),
            pp[1].map(|v| format!("{v}")).unwrap_or_else(|| "-".into()),
        );
    }
}

/// A compact shape check: direction of change between two measured values,
/// printed as reproduced/not.
pub fn shape_check(label: &str, holds: bool) {
    println!("  [{}] {label}", if holds { "ok" } else { "MISMATCH" });
}

/// Print the host-side diff-engine counters (`repseq_stats::host`)
/// accumulated across the runs: the wall-clock time the simulator itself
/// spent creating and applying diffs — as opposed to the *simulated* times
/// in the tables above — plus the page allocations the twin pool avoided.
pub fn print_host_counters(title: &str, h: &repseq_stats::HostCounters) {
    let per = |ns: u64, calls: u64| if calls == 0 { 0.0 } else { ns as f64 / calls as f64 };
    let rate = |bytes: u64, ns: u64| {
        if ns == 0 {
            0.0
        } else {
            bytes as f64 / (ns as f64 / 1e9) / 1e9
        }
    };
    println!("\n--- Host diff engine ({title}) ---");
    println!(
        "diff create: {:>10} calls  {:>10.1} ns/call  {:>8.2} GB/s scanned ({} bytes)",
        h.diff_create_calls,
        per(h.diff_create_ns, h.diff_create_calls),
        rate(h.diff_create_bytes, h.diff_create_ns),
        h.diff_create_bytes,
    );
    println!(
        "diff apply:  {:>10} calls  {:>10.1} ns/call  {:>8.2} GB/s copied  ({} bytes)",
        h.diff_apply_calls,
        per(h.diff_apply_ns, h.diff_apply_calls),
        rate(h.diff_apply_bytes, h.diff_apply_ns),
        h.diff_apply_bytes,
    );
    println!(
        "twin pool:   {:>10} hits   {:>10} misses  ({} page allocations avoided)",
        h.twin_pool_hits, h.twin_pool_misses, h.twin_pool_hits,
    );
    println!(
        "scratch:     {:>10} hits   {:>10} misses  ({} small-vector allocations avoided)",
        h.scratch_pool_hits, h.scratch_pool_misses, h.scratch_pool_hits,
    );
    let tlb_total = h.tlb_hits + h.tlb_misses;
    let tlb_rate = if tlb_total == 0 { 0.0 } else { 100.0 * h.tlb_hits as f64 / tlb_total as f64 };
    println!(
        "softw. TLB:  {:>10} hits   {:>10} misses  ({tlb_rate:.1}% of accesses skip the page walk)",
        h.tlb_hits, h.tlb_misses,
    );
}
