//! End-to-end application tests: both evaluation applications compute
//! identical results under the Original, Optimized and Broadcast systems,
//! and the traffic shapes move the way the paper reports.

use repseq_apps::barnes_hut::{BarnesHut, BhConfig, BhResult};
use repseq_apps::ilink::{Ilink, IlinkConfig, IlinkResult};
use repseq_apps::kernels::{ContentionKernel, KernelConfig};
use repseq_core::{RunConfig, Runtime, SeqMode};
use repseq_dsm::ClusterConfig;
use repseq_stats::StatsSnapshot;

fn run_bh(mode: SeqMode, n: usize, cfg: BhConfig) -> (BhResult, StatsSnapshot) {
    let mut rt = Runtime::new(RunConfig { cluster: ClusterConfig::paper(n), seq_mode: mode });
    let app = BarnesHut::setup(&mut rt, cfg);
    let stats = rt.stats();
    let out = std::sync::Arc::new(parking_lot::Mutex::new(None));
    let out2 = std::sync::Arc::clone(&out);
    rt.run(move |team| {
        let r = app.run(team)?;
        *out2.lock() = Some(r);
        Ok(())
    })
    .expect("barnes-hut run failed");
    let r = out.lock().take().unwrap();
    (r, stats.snapshot())
}

fn run_ilink(mode: SeqMode, n: usize, cfg: IlinkConfig) -> (IlinkResult, StatsSnapshot) {
    let mut rt = Runtime::new(RunConfig { cluster: ClusterConfig::paper(n), seq_mode: mode });
    let app = Ilink::setup(&mut rt, cfg);
    let stats = rt.stats();
    let out = std::sync::Arc::new(parking_lot::Mutex::new(None));
    let out2 = std::sync::Arc::clone(&out);
    rt.run(move |team| {
        let r = app.run(team)?;
        *out2.lock() = Some(r);
        Ok(())
    })
    .expect("ilink run failed");
    let r = out.lock().take().unwrap();
    (r, stats.snapshot())
}

#[test]
fn barnes_hut_modes_agree_and_traffic_shifts() {
    let cfg = BhConfig::tiny();
    let (orig, s_orig) = run_bh(SeqMode::MasterOnly, 4, cfg.clone());
    let (opt, s_opt) = run_bh(SeqMode::Replicated, 4, cfg.clone());
    let (bc, s_bc) = run_bh(SeqMode::MasterOnlyBroadcast, 4, cfg);
    assert_eq!(orig, opt, "replication must not change the physics");
    assert_eq!(orig, bc, "broadcast must not change the physics");
    assert!(orig.interactions > 0);

    // Traffic shapes (Table 2, scaled): parallel diff data collapses under
    // replication; the sequential sections get more expensive.
    assert!(
        s_opt.par_agg().diff_bytes * 2 < s_orig.par_agg().diff_bytes,
        "parallel diff data: {} (opt) vs {} (orig)",
        s_opt.par_agg().diff_bytes,
        s_orig.par_agg().diff_bytes
    );
    assert!(s_opt.seq_time() > s_orig.seq_time());
    // The multicast machinery must have run (at this tiny scale every node
    // wrote every particle page, so every chain turn carries diffs and no
    // null acks appear — they do at bench scale).
    assert!(s_opt.seq_agg().forwarded_requests > 0, "flow control must run");
    // The broadcast ablation lands between the two on parallel traffic.
    assert!(s_bc.par_agg().diff_bytes < s_orig.par_agg().diff_bytes);
}

#[test]
fn barnes_hut_physics_is_node_count_independent() {
    let cfg = BhConfig::tiny();
    let (r1, _) = run_bh(SeqMode::MasterOnly, 1, cfg.clone());
    let (r4, _) = run_bh(SeqMode::Replicated, 4, cfg.clone());
    let (r3, _) = run_bh(SeqMode::MasterOnly, 3, cfg);
    assert_eq!(r1, r4, "1-node and 4-node runs must agree bit-for-bit");
    assert_eq!(r1, r3);
}

#[test]
fn barnes_hut_positions_actually_move() {
    let cfg = BhConfig::tiny();
    let (r, _) = run_bh(SeqMode::Replicated, 2, cfg.clone());
    // Compare against the checksum of the untouched initial conditions.
    let bodies = repseq_apps::barnes_hut::plummer::plummer_model(cfg.n_bodies, cfg.seed);
    let mut initial = 0.0f64;
    for b in &bodies {
        for d in 0..3 {
            initial += b.pos[d] * (1.0 + d as f64) + b.vel[d] * 0.25;
        }
    }
    assert!((r.checksum - initial).abs() > 1e-9, "the system must evolve");
}

#[test]
fn ilink_modes_agree_and_optimized_wins() {
    let cfg = IlinkConfig::tiny();
    let (orig, s_orig) = run_ilink(SeqMode::MasterOnly, 4, cfg.clone());
    let (opt, s_opt) = run_ilink(SeqMode::Replicated, 4, cfg);
    assert_eq!(orig, opt, "likelihood must be identical across modes");
    assert!(orig.parallel_updates > 0, "the if clause must trigger parallel updates");
    assert!(orig.sequential_updates > 0, "and sequential ones");
    assert!(orig.likelihood.is_finite() && orig.likelihood != 0.0);

    // Table 4's shape, scaled: parallel-section diff traffic collapses
    // (the paper reports −87% messages, −97% data).
    assert!(
        s_opt.par_agg().diff_bytes * 2 < s_orig.par_agg().diff_bytes,
        "parallel diff data: {} (opt) vs {} (orig)",
        s_opt.par_agg().diff_bytes,
        s_orig.par_agg().diff_bytes
    );
    // Parallel time collapses. (The *total*-time win needs enough scale to
    // amortize the per-section valid-notice exchange — the bench harness
    // asserts it at table scale; at this test's tiny scale the fixed
    // overheads dominate, exactly the trade-off §5.4.3 discusses.)
    assert!(
        s_opt.par_time() < s_orig.par_time(),
        "optimized parallel sections must be faster: {} vs {}",
        s_opt.par_time(),
        s_orig.par_time()
    );
}

#[test]
fn contention_kernel_modes_agree() {
    let run = |mode| {
        let mut rt = Runtime::new(RunConfig { cluster: ClusterConfig::paper(4), seq_mode: mode });
        let k = ContentionKernel::setup(&mut rt, KernelConfig::default());
        let stats = rt.stats();
        let out = std::sync::Arc::new(parking_lot::Mutex::new(0u64));
        let out2 = std::sync::Arc::clone(&out);
        rt.run(move |team| {
            let c = k.run(team)?;
            *out2.lock() = c;
            Ok(())
        })
        .unwrap();
        let c = *out.lock();
        (c, stats.snapshot())
    };
    let (c_orig, s_orig) = run(SeqMode::MasterOnly);
    let (c_opt, s_opt) = run(SeqMode::Replicated);
    assert_eq!(c_orig, c_opt);
    // The replicated kernel's parallel phase fetches nothing for the data
    // block; only the tiny false-shared per-node sums page still moves.
    assert!(
        s_opt.par_agg().diff_bytes * 10 < s_orig.par_agg().diff_bytes,
        "kernel data reads must be fully local: {} vs {}",
        s_opt.par_agg().diff_bytes,
        s_orig.par_agg().diff_bytes
    );
    assert!(s_orig.par_agg().diff_requests > 0);
}
