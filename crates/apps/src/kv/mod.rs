//! A sharded key-value store served from the DSM, driven by an open-loop
//! zipfian load generator.
//!
//! The serving loop alternates the paper's two section kinds, batch by
//! batch:
//!
//! * every batch's **writes** are routed through per-shard *named
//!   sequential sections* — under replicated sequential execution each node
//!   applies the writes to its own copy of the shard's pages, under
//!   MasterOnly the master alone holds the fresh pages;
//! * the batch's **reads** then run in a *parallel section*, cyclically
//!   assigned to nodes. Under MasterOnly every node's hot-key reads
//!   converge on the master (the §3 contention storm, now on
//!   request/response traffic); under replication they hit local pages.
//!
//! Arrivals are open-loop (fixed rate, zipfian keys, seeded — see
//! [`trace`]): the generator never waits for the system, so when a batch
//! takes longer than its arrival window the backlog shows up as queueing
//! delay in the p99/p999 *simulated* latencies, computed from virtual
//! timestamps.

pub mod layout;
pub mod trace;

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use repseq_core::{Runtime, Stopped, Team, Worker};
use repseq_dsm::{PageId, ShArray};
use repseq_sim::Dur;

pub use layout::Layout;
pub use trace::{splitmix64, Request};

/// KV-serving experiment parameters.
#[derive(Debug, Clone)]
pub struct KvConfig {
    /// Total keys; must stripe evenly over shards, and each shard must
    /// occupy a whole number of pages.
    pub n_keys: usize,
    /// Shards (one named sequential section per shard per batch).
    pub n_shards: usize,
    /// Consecutive `u64` slots per key: a write rewrites the whole record,
    /// a read returns its fold. Record-sized values are what give the
    /// serving sections real diff volume — the §5.4.3 bandwidth asymmetry
    /// (one multicast vs n unicast copies of every fresh page).
    pub record_slots: usize,
    /// Requests in the open-loop trace.
    pub n_requests: usize,
    /// Reads per 1000 requests (900 = 90 % reads).
    pub read_per_mille: u32,
    /// Zipfian skew exponent (0 = uniform; ~1 = classic hot-key skew).
    pub zipf_theta: f64,
    /// Open-loop arrival rate, requests per virtual second.
    pub arrival_rps: f64,
    /// Requests dispatched per serving batch (arrivals are uniform, so a
    /// count batch equals a fixed arrival-time window).
    pub batch: usize,
    /// Trace seed — the only randomness source (no host RNG).
    pub seed: u64,
    /// Modeled service cost of one read.
    pub read_ns: f64,
    /// Modeled service cost of one write.
    pub write_ns: f64,
}

impl KvConfig {
    /// Full-scale serving configuration.
    pub fn paper() -> KvConfig {
        KvConfig {
            n_keys: 16_384,
            n_shards: 16,
            record_slots: 256,
            n_requests: 4096,
            read_per_mille: 900,
            zipf_theta: 0.99,
            arrival_rps: 50_000.0,
            batch: 256,
            seed: 20010618,
            read_ns: 1_500.0,
            write_ns: 2_500.0,
        }
    }

    /// Laptop-scale configuration preserving the serving shape.
    pub fn scaled(n_requests: usize) -> KvConfig {
        KvConfig { n_keys: 4096, n_shards: 4, n_requests, ..KvConfig::paper() }
    }

    /// Tiny configuration for tests (4 shards of exactly four 4 KB pages).
    pub fn tiny() -> KvConfig {
        KvConfig {
            n_keys: 512,
            n_shards: 4,
            record_slots: 16,
            n_requests: 256,
            batch: 64,
            ..KvConfig::paper()
        }
    }

    /// Weak-scale the serving batches to an `n`-node cluster: the batch
    /// grows so every node keeps a constant per-batch share of requests
    /// (each node's hot-key reads then hit the freshly written pages every
    /// batch — a bigger cluster serves proportionally more traffic), and
    /// the trace and arrival rate grow to keep the batch count and the
    /// offered load per node fixed.
    pub fn weak_scaled(mut self, n: usize) -> KvConfig {
        let batches = (self.n_requests / self.batch).max(1);
        let batch = self.batch.max(2 * n);
        let grow = batch as f64 / self.batch as f64;
        self.batch = batch;
        self.n_requests = batches * batch;
        self.arrival_rps *= grow;
        self
    }

    /// Same workload at a different skew point.
    pub fn with_skew(mut self, theta: f64) -> KvConfig {
        self.zipf_theta = theta;
        self
    }

    /// Same workload at a different arrival rate.
    pub fn with_rate(mut self, rps: f64) -> KvConfig {
        self.arrival_rps = rps;
        self
    }
}

/// Static label table so per-shard sections have stable names for the race
/// detector (labels must be `&'static str`).
static SHARD_LABELS: [&str; 16] = [
    "kv::write_shard00",
    "kv::write_shard01",
    "kv::write_shard02",
    "kv::write_shard03",
    "kv::write_shard04",
    "kv::write_shard05",
    "kv::write_shard06",
    "kv::write_shard07",
    "kv::write_shard08",
    "kv::write_shard09",
    "kv::write_shard10",
    "kv::write_shard11",
    "kv::write_shard12",
    "kv::write_shard13",
    "kv::write_shard14",
    "kv::write_shard15",
];

/// The section label of shard `s` (shards beyond the table share labels).
pub fn shard_label(s: usize) -> &'static str {
    SHARD_LABELS[s % SHARD_LABELS.len()]
}

/// A prepared KV-serving run.
pub struct KvStore {
    cfg: KvConfig,
    lay: Layout,
    table: ShArray<u64>,
    trace: Arc<Vec<Request>>,
    trace_hash: u64,
    page_size: usize,
}

/// Result of a serving run. `fingerprint`, `read_xor`, `reads`, `writes`
/// and `trace_hash` are strategy-invariant (the correctness gates);
/// latency percentiles and throughput are the strategy-dependent
/// measurements, over *virtual* time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KvResult {
    /// Deterministic fold over the final table contents.
    pub fingerprint: u64,
    /// Fingerprint of the request trace (host-thread-invariance pin).
    pub trace_hash: u64,
    /// XOR-fold of every value served to a read (order-independent).
    pub read_xor: u64,
    /// Read requests served.
    pub reads: u64,
    /// Write requests applied.
    pub writes: u64,
    /// Median request latency, virtual nanoseconds.
    pub p50_ns: u64,
    /// 99th-percentile latency.
    pub p99_ns: u64,
    /// 99.9th-percentile latency.
    pub p999_ns: u64,
    /// Measured (virtual) duration of the serving run.
    pub total: Dur,
    /// Requests per virtual second.
    pub throughput_rps: f64,
}

/// Nearest-rank percentile over a sorted slice.
fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

impl KvStore {
    /// Allocate the table and generate the request trace (host-side, from
    /// the seed only).
    pub fn setup(rt: &mut Runtime, cfg: KvConfig) -> KvStore {
        let lay = Layout::new(cfg.n_keys, cfg.n_shards);
        let page_size = rt.page_size();
        assert!(cfg.record_slots >= 1);
        assert_eq!(
            lay.keys_per_shard() * cfg.record_slots * 8 % page_size,
            0,
            "each shard must occupy a whole number of pages \
             ({} keys/shard × {} slots × 8 B vs {page_size} B pages)",
            lay.keys_per_shard(),
            cfg.record_slots
        );
        let table = rt.alloc_array_page_aligned(cfg.n_keys * cfg.record_slots);
        let (trace, trace_hash) = trace::generate(
            cfg.seed,
            cfg.n_requests,
            cfg.n_keys,
            cfg.zipf_theta,
            cfg.read_per_mille,
            cfg.arrival_rps,
        );
        KvStore { cfg, lay, table, trace: Arc::new(trace), trace_hash, page_size }
    }

    /// The generated request trace.
    pub fn trace(&self) -> &[Request] {
        &self.trace
    }

    /// The trace fingerprint (pure function of the seed).
    pub fn trace_hash(&self) -> u64 {
        self.trace_hash
    }

    /// The pages shard `s` occupies (`record_slots` slots per key).
    fn shard_pages(&self, s: usize) -> Vec<PageId> {
        let r = self.lay.shard_range(s);
        let rs = self.cfg.record_slots;
        let first = (self.table.addr(r.start * rs) / self.page_size as u64) as PageId;
        let last = ((self.table.addr(r.end * rs - 1) + 7) / self.page_size as u64) as PageId;
        (first..=last).collect()
    }

    /// Serve the trace on a team; returns the deterministic result.
    pub fn run(&self, team: &Team) -> Result<KvResult, Stopped> {
        let cfg = self.cfg.clone();
        let lay = self.lay;
        let table = self.table;
        let n_req = self.trace.len();
        let latencies: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(vec![0u64; n_req]));
        let read_xor = Arc::new(AtomicU64::new(0));
        let gap_ns = 1e9 / cfg.arrival_rps;

        team.start_measurement();
        let t0 = team.now();
        let mut write_seq = 0u64;
        for (b, batch) in self.trace.chunks(cfg.batch).enumerate() {
            let base = b * cfg.batch;
            // Open-loop dispatch: the batch is served once its arrival
            // window has closed. If serving has fallen behind, dispatch
            // immediately — the backlog becomes queueing delay.
            let close = t0 + Dur::from_nanos(((base + batch.len()) as f64 * gap_ns).round() as u64);
            let now = team.now();
            if now < close {
                team.charge(close.since(now));
            }

            // Writes, grouped into one named sequential section per shard.
            let mut by_shard: Vec<Vec<(usize, u32, u64)>> = vec![Vec::new(); lay.n_shards];
            for (j, r) in batch.iter().enumerate() {
                if r.write {
                    let val = splitmix64(cfg.seed ^ ((r.key as u64) << 24) ^ write_seq);
                    write_seq += 1;
                    by_shard[lay.shard_of(r.key as usize)].push((base + j, r.key, val));
                }
            }
            for (s, writes) in by_shard.into_iter().enumerate() {
                if writes.is_empty() {
                    continue;
                }
                let body_writes = writes.clone();
                let write_ns = cfg.write_ns;
                let rs = cfg.record_slots;
                team.sequential_broadcasting(
                    move |nd| {
                        nd.race_label(shard_label(s));
                        for &(_, key, val) in &body_writes {
                            let base = lay.flat(key as usize) * rs;
                            for j in 0..rs {
                                table.set(nd, base + j, splitmix64(val ^ j as u64))?;
                            }
                        }
                        nd.charge(Dur::from_secs_f64(body_writes.len() as f64 * write_ns * 1e-9));
                        Ok(())
                    },
                    self.shard_pages(s),
                )?;
                // A write completes when its section's results are
                // consistent cluster-wide: the section end.
                let done = team.now();
                let mut lat = latencies.lock().unwrap();
                for &(rid, ..) in &writes {
                    lat[rid] = done.since(t0 + self.trace[rid].arrival).nanos();
                }
            }

            // Reads, served in a parallel section (cyclic assignment).
            let reads: Arc<Vec<(usize, u32)>> = Arc::new(
                batch
                    .iter()
                    .enumerate()
                    .filter(|(_, r)| !r.write)
                    .map(|(j, r)| (base + j, r.key))
                    .collect(),
            );
            if !reads.is_empty() {
                let lat = Arc::clone(&latencies);
                let xor = Arc::clone(&read_xor);
                let tr = Arc::clone(&self.trace);
                let read_ns = cfg.read_ns;
                let rs = cfg.record_slots;
                team.parallel(move |nd| {
                    nd.race_label("kv::serve_reads");
                    let (me, n) = (nd.node(), nd.n_nodes());
                    for idx in (me..reads.len()).step_by(n) {
                        let (rid, key) = reads[idx];
                        let base = lay.flat(key as usize) * rs;
                        let mut v = 0u64;
                        for j in 0..rs {
                            v ^= table.get(nd, base + j)?.rotate_left(j as u32);
                        }
                        xor.fetch_xor(v ^ splitmix64(rid as u64), Ordering::Relaxed);
                        nd.charge(Dur::from_secs_f64(read_ns * 1e-9));
                        lat.lock().unwrap()[rid] =
                            nd.ctx().now().since(t0 + tr[rid].arrival).nanos();
                    }
                    Ok(())
                })?;
            }
        }
        team.end_measurement();
        let total = team.now().since(t0);

        // Deterministic final-state fingerprint (outside the measured run).
        let vals = team.node().read_all(table)?;
        let mut fingerprint = splitmix64(cfg.seed);
        for v in vals {
            fingerprint = splitmix64(fingerprint ^ v);
        }

        let mut sorted = latencies.lock().unwrap().clone();
        sorted.sort_unstable();
        let writes = self.trace.iter().filter(|r| r.write).count() as u64;
        Ok(KvResult {
            fingerprint,
            trace_hash: self.trace_hash,
            read_xor: read_xor.load(Ordering::Relaxed),
            reads: n_req as u64 - writes,
            writes,
            p50_ns: percentile(&sorted, 0.50),
            p99_ns: percentile(&sorted, 0.99),
            p999_ns: percentile(&sorted, 0.999),
            total,
            throughput_rps: n_req as f64 / total.as_secs_f64(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_is_nearest_rank() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 0.50), 50);
        assert_eq!(percentile(&v, 0.99), 99);
        assert_eq!(percentile(&v, 0.999), 100);
        assert_eq!(percentile(&[7], 0.5), 7);
        assert_eq!(percentile(&[], 0.5), 0);
    }

    #[test]
    fn shard_labels_are_stable_and_static() {
        assert_eq!(shard_label(0), "kv::write_shard00");
        assert_eq!(shard_label(15), "kv::write_shard15");
        assert_eq!(shard_label(16), shard_label(0));
    }
}
