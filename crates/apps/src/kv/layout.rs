//! Blocked key→page layout of the KV table.
//!
//! Keys are blocked contiguously into shards (`shard = key / keys_per_shard`)
//! so that the zipfian head — keys 0, 1, 2, … in popularity order — lands in
//! the *lowest* shard instead of spreading across all of them. That choice is
//! load-bearing for the serving loop: a batch's write burst then enters only
//! as many named sequential sections as it has *hot shards* (one, at high
//! skew), rather than paying the section-entry protocol once per shard per
//! batch. Hot records are also contiguous, so a burst fully dirties a small
//! run of pages — dense diffs that every node must refetch from the master
//! under the original protocol, but that replicated sequential execution
//! materializes locally for free.
//!
//! Each shard occupies a whole number of pages, so a shard's sequential
//! write section touches exactly its own pages and the following parallel
//! reads fault on freshly-written replicated pages — the contention pattern
//! the paper's optimization targets.

/// The blocked mapping between keys and flat table indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Layout {
    /// Total keys; must be a multiple of `n_shards`.
    pub n_keys: usize,
    /// Number of shards (each with its own named sequential section).
    pub n_shards: usize,
}

impl Layout {
    /// Build the layout; `n_keys` must divide evenly into shards so the
    /// mapping is a bijection.
    pub fn new(n_keys: usize, n_shards: usize) -> Layout {
        assert!(n_shards >= 1 && n_keys >= n_shards);
        assert_eq!(n_keys % n_shards, 0, "keys must block evenly into shards");
        Layout { n_keys, n_shards }
    }

    /// Keys per shard.
    pub fn keys_per_shard(self) -> usize {
        self.n_keys / self.n_shards
    }

    /// The shard serving `key` (popularity ranks block into the lowest
    /// shards).
    pub fn shard_of(self, key: usize) -> usize {
        debug_assert!(key < self.n_keys);
        key / self.keys_per_shard()
    }

    /// Flat table index of `key`: shards are contiguous, keys dense within
    /// a shard.
    pub fn flat(self, key: usize) -> usize {
        debug_assert!(key < self.n_keys);
        key
    }

    /// Inverse of [`Layout::flat`].
    pub fn key_of(self, flat: usize) -> usize {
        debug_assert!(flat < self.n_keys);
        flat
    }

    /// The flat index range shard `s` occupies.
    pub fn shard_range(self, s: usize) -> std::ops::Range<usize> {
        debug_assert!(s < self.n_shards);
        s * self.keys_per_shard()..(s + 1) * self.keys_per_shard()
    }
}

#[cfg(test)]
mod tests {
    use proptest::prelude::*;

    use super::*;

    #[test]
    fn flat_and_key_of_roundtrip_small() {
        let l = Layout::new(12, 4);
        for k in 0..12 {
            assert_eq!(l.key_of(l.flat(k)), k);
            assert_eq!(l.shard_of(k), k / 3);
            assert!(l.shard_range(l.shard_of(k)).contains(&l.flat(k)));
        }
    }

    #[test]
    fn zipf_head_blocks_into_the_lowest_shard() {
        let l = Layout::new(4096, 8);
        // The whole head of the popularity distribution shares one section.
        for k in 0..l.keys_per_shard() {
            assert_eq!(l.shard_of(k), 0);
        }
        assert_eq!(l.shard_of(l.n_keys - 1), 7);
    }

    proptest! {
        /// The mapping is a bijection over the shard space: `flat` hits
        /// every index exactly once, `key_of` inverts it, and every key's
        /// flat index lies inside its own shard's range.
        #[test]
        fn key_to_page_mapping_is_a_bijection(shards in 1usize..64, per_shard in 1usize..64) {
            let l = Layout::new(shards * per_shard, shards);
            let mut seen = vec![false; l.n_keys];
            for k in 0..l.n_keys {
                let f = l.flat(k);
                prop_assert!(f < l.n_keys);
                prop_assert!(!seen[f], "flat index {f} hit twice");
                seen[f] = true;
                prop_assert_eq!(l.key_of(f), k);
                prop_assert!(l.shard_range(l.shard_of(k)).contains(&f));
            }
            prop_assert!(seen.iter().all(|&s| s));
        }
    }
}
