//! Deterministic open-loop request-trace generation.
//!
//! Everything here is a pure function of the harness seed: the sampler is
//! counter-based splitmix64 (no host RNG, no iteration-order state), so the
//! trace is bit-identical across host thread counts, platforms and reruns —
//! the property `check/tests/host_exec.rs` pins.

use repseq_sim::Dur;

/// One request of the open-loop trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// The key, in popularity rank order (0 is the hottest).
    pub key: u32,
    /// Write (`true`) or read.
    pub write: bool,
    /// Arrival offset from the start of the measured run.
    pub arrival: Dur,
}

/// The standard 64-bit splitmix finalizer — the same deterministic hash the
/// loss injector uses.
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A uniform draw in `[0, 1)` from stream `stream` of `seed` at counter
/// `i` — counter-based, so sample `i` never depends on samples before it.
fn unit(seed: u64, stream: u64, i: u64) -> f64 {
    let x = splitmix64(seed ^ splitmix64(stream.wrapping_mul(0xA076_1D64_78BD_642F) ^ i));
    (x >> 11) as f64 / (1u64 << 53) as f64
}

/// Zipfian key sampler over `n` ranks with exponent `theta`
/// (`p(rank) ∝ 1/(rank+1)^theta`; `theta = 0` is uniform). Sampling is an
/// inverse-CDF binary search over a precomputed table.
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Precompute the CDF for `n` keys.
    pub fn new(n: usize, theta: f64) -> Zipf {
        assert!(n >= 1 && theta >= 0.0);
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for rank in 0..n {
            acc += 1.0 / ((rank + 1) as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Map a uniform `u ∈ [0, 1)` to a key rank.
    pub fn sample(&self, u: f64) -> usize {
        self.cdf.partition_point(|&c| c <= u).min(self.cdf.len() - 1)
    }
}

/// Generate the open-loop trace: `n_requests` zipfian keys with a
/// `read_per_mille` read mix, arriving at a fixed rate (arrival `i` at
/// `i / arrival_rps` seconds). Returns the trace and its fingerprint.
pub fn generate(
    seed: u64,
    n_requests: usize,
    n_keys: usize,
    zipf_theta: f64,
    read_per_mille: u32,
    arrival_rps: f64,
) -> (Vec<Request>, u64) {
    assert!(arrival_rps > 0.0);
    assert!(read_per_mille <= 1000);
    let zipf = Zipf::new(n_keys, zipf_theta);
    let gap_ns = 1e9 / arrival_rps;
    let mut trace = Vec::with_capacity(n_requests);
    for i in 0..n_requests as u64 {
        let key = zipf.sample(unit(seed, 1, i)) as u32;
        let write = unit(seed, 2, i) >= read_per_mille as f64 / 1000.0;
        let arrival = Dur::from_nanos((i as f64 * gap_ns).round() as u64);
        trace.push(Request { key, write, arrival });
    }
    let h = hash(&trace, seed);
    (trace, h)
}

/// Fingerprint a trace (used by the host-thread-invariance pin).
pub fn hash(trace: &[Request], seed: u64) -> u64 {
    let mut h = splitmix64(seed);
    for r in trace {
        h = splitmix64(
            h ^ r.key as u64 ^ ((r.write as u64) << 32) ^ r.arrival.nanos().rotate_left(17),
        );
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_is_a_pure_function_of_the_seed() {
        let (a, ha) = generate(42, 500, 1024, 0.99, 900, 1e6);
        let (b, hb) = generate(42, 500, 1024, 0.99, 900, 1e6);
        assert_eq!(a, b);
        assert_eq!(ha, hb);
        let (_, hc) = generate(43, 500, 1024, 0.99, 900, 1e6);
        assert_ne!(ha, hc, "different seeds must give different traces");
    }

    #[test]
    fn zipf_skew_concentrates_on_the_head() {
        let (skewed, _) = generate(7, 4000, 1024, 1.1, 1000, 1e6);
        let (uniform, _) = generate(7, 4000, 1024, 0.0, 1000, 1e6);
        let head_hits = |t: &[Request]| t.iter().filter(|r| r.key < 16).count();
        assert!(
            head_hits(&skewed) > 5 * head_hits(&uniform),
            "skewed {} vs uniform {}",
            head_hits(&skewed),
            head_hits(&uniform)
        );
        // Every key is in range either way.
        assert!(skewed.iter().all(|r| (r.key as usize) < 1024));
    }

    #[test]
    fn read_mix_is_roughly_honored() {
        let (t, _) = generate(11, 10_000, 256, 0.5, 900, 1e6);
        let writes = t.iter().filter(|r| r.write).count();
        assert!((700..1300).contains(&writes), "expected ~1000 writes, got {writes}");
    }

    #[test]
    fn arrivals_are_open_loop_at_the_configured_rate() {
        let (t, _) = generate(3, 10, 64, 0.9, 900, 1e5);
        for (i, r) in t.iter().enumerate() {
            assert_eq!(r.arrival, Dur::from_nanos(i as u64 * 10_000));
        }
    }
}
