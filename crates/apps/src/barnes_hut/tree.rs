//! The Barnes-Hut octree: construction, Morton-ordered enumeration, and
//! force evaluation with the opening criterion.
//!
//! Pure in-memory code: the application layer runs it inside DSM sections
//! (build in the sequential section, traversal in the parallel force
//! phase) over locally cached copies of the shared arrays, charging the
//! modeled per-operation costs explicitly.

// Index loops over the three spatial axes are the natural idiom here.
#![allow(clippy::needless_range_loop)]

use repseq_dsm::impl_pod_struct;
#[cfg(test)]
use repseq_dsm::Pod;

/// Encoding of a cell's child slot.
pub const CHILD_EMPTY: u32 = 0;

/// One octree cell, laid out for the shared heap. `children[k]` is 0 when
/// empty, `1 + body` for a leaf body, or `1 + n_bodies + cell` for a
/// subcell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cell {
    pub children: [u32; 8],
    /// Center of mass.
    pub com: [f64; 3],
    /// Total mass.
    pub mass: f64,
    /// Geometric center of the cube.
    pub center: [f64; 3],
    /// Half the cube's side length.
    pub half: f64,
}

impl Default for Cell {
    fn default() -> Self {
        Cell { children: [CHILD_EMPTY; 8], com: [0.0; 3], mass: 0.0, center: [0.0; 3], half: 0.0 }
    }
}

impl_pod_struct!(Cell {
    children: [u32; 8],
    com: [f64; 3],
    mass: f64,
    center: [f64; 3],
    half: f64
});

/// Child-slot decoding.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Child {
    Empty,
    Body(usize),
    Cell(usize),
}

#[inline]
pub fn decode_child(raw: u32, n_bodies: usize) -> Child {
    if raw == CHILD_EMPTY {
        Child::Empty
    } else if (raw as usize) <= n_bodies {
        Child::Body(raw as usize - 1)
    } else {
        Child::Cell(raw as usize - 1 - n_bodies)
    }
}

#[inline]
fn encode_body(i: usize) -> u32 {
    (i + 1) as u32
}

#[inline]
fn encode_cell(i: usize, n_bodies: usize) -> u32 {
    (i + 1 + n_bodies) as u32
}

/// Counters for the modeled cost of a build.
#[derive(Debug, Default, Clone, Copy)]
pub struct BuildStats {
    /// Levels descended across all insertions.
    pub descents: u64,
    /// Cells created.
    pub cells_created: u64,
}

/// An octree over a set of points. Construction is deterministic: given
/// identical inputs, every node of the cluster builds bit-identical trees
/// (the paper's requirement for replicated sequential execution).
pub struct Octree {
    pub cells: Vec<Cell>,
    pub n_bodies: usize,
    pub stats: BuildStats,
}

impl Octree {
    /// Build the tree over `pos`/`mass` (parallel arrays). Bodies with
    /// non-finite coordinates are rejected.
    pub fn build(pos: &[[f64; 3]], mass: &[f64]) -> Octree {
        assert_eq!(pos.len(), mass.len());
        let n = pos.len();
        let mut stats = BuildStats::default();
        let mut cells: Vec<Cell> = Vec::with_capacity(n / 2 + 16);

        // Bounding cube (reading every particle — the access that makes
        // the sequential section contend, §6.1.1).
        let mut lo = [f64::INFINITY; 3];
        let mut hi = [f64::NEG_INFINITY; 3];
        for p in pos {
            for d in 0..3 {
                assert!(p[d].is_finite(), "non-finite body coordinate");
                lo[d] = lo[d].min(p[d]);
                hi[d] = hi[d].max(p[d]);
            }
        }
        if n == 0 {
            return Octree { cells, n_bodies: 0, stats };
        }
        let center = [(lo[0] + hi[0]) * 0.5, (lo[1] + hi[1]) * 0.5, (lo[2] + hi[2]) * 0.5];
        let half =
            (0..3).map(|d| (hi[d] - lo[d]) * 0.5).fold(0.0f64, f64::max).max(1e-12) * 1.0000001; // slack so boundary bodies stay inside

        let root = Cell { center, half, ..Cell::default() };
        cells.push(root);
        stats.cells_created += 1;

        for b in 0..n {
            Self::insert(&mut cells, &mut stats, 0, b, pos, n);
        }
        Self::compute_com(&mut cells, 0, pos, mass, n);
        Octree { cells, n_bodies: n, stats }
    }

    /// Octant of `p` relative to `c`.
    #[inline]
    fn octant(c: &Cell, p: &[f64; 3]) -> usize {
        (usize::from(p[0] >= c.center[0]))
            | (usize::from(p[1] >= c.center[1]) << 1)
            | (usize::from(p[2] >= c.center[2]) << 2)
    }

    fn child_center(c: &Cell, oct: usize) -> ([f64; 3], f64) {
        let h = c.half * 0.5;
        let mut ctr = c.center;
        ctr[0] += if oct & 1 != 0 { h } else { -h };
        ctr[1] += if oct & 2 != 0 { h } else { -h };
        ctr[2] += if oct & 4 != 0 { h } else { -h };
        (ctr, h)
    }

    fn insert(
        cells: &mut Vec<Cell>,
        stats: &mut BuildStats,
        mut ci: usize,
        body: usize,
        pos: &[[f64; 3]],
        n: usize,
    ) {
        let mut depth = 0usize;
        loop {
            depth += 1;
            assert!(
                depth < 256,
                "octree depth exceeded — coincident bodies? body {body} at {:?}",
                pos[body]
            );
            stats.descents += 1;
            let oct = Self::octant(&cells[ci], &pos[body]);
            match decode_child(cells[ci].children[oct], n) {
                Child::Empty => {
                    cells[ci].children[oct] = encode_body(body);
                    return;
                }
                Child::Cell(sub) => {
                    ci = sub;
                }
                Child::Body(other) => {
                    // Split: create a subcell, push the resident body down,
                    // continue inserting the new one.
                    let (ctr, h) = Self::child_center(&cells[ci], oct);
                    let sub = cells.len();
                    cells.push(Cell { center: ctr, half: h, ..Cell::default() });
                    stats.cells_created += 1;
                    cells[ci].children[oct] = encode_cell(sub, n);
                    let ooct = Self::octant(&cells[sub], &pos[other]);
                    cells[sub].children[ooct] = encode_body(other);
                    ci = sub;
                }
            }
        }
    }

    fn compute_com(cells: &mut [Cell], ci: usize, pos: &[[f64; 3]], mass: &[f64], n: usize) {
        let mut m = 0.0;
        let mut com = [0.0f64; 3];
        for k in 0..8 {
            match decode_child(cells[ci].children[k], n) {
                Child::Empty => {}
                Child::Body(b) => {
                    m += mass[b];
                    for d in 0..3 {
                        com[d] += mass[b] * pos[b][d];
                    }
                }
                Child::Cell(sub) => {
                    Self::compute_com(cells, sub, pos, mass, n);
                    m += cells[sub].mass;
                    for d in 0..3 {
                        com[d] += cells[sub].mass * cells[sub].com[d];
                    }
                }
            }
        }
        cells[ci].mass = m;
        if m > 0.0 {
            for d in 0..3 {
                com[d] /= m;
            }
        }
        cells[ci].com = com;
    }

    /// Bodies in Morton (depth-first, fixed child order) sequence — the
    /// linear ordering the paper partitions particles by (§6.1.1).
    pub fn morton_order(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.n_bodies);
        if !self.cells.is_empty() {
            self.morton_walk(0, &mut out);
        }
        out
    }

    fn morton_walk(&self, ci: usize, out: &mut Vec<u32>) {
        for k in 0..8 {
            match decode_child(self.cells[ci].children[k], self.n_bodies) {
                Child::Empty => {}
                Child::Body(b) => out.push(b as u32),
                Child::Cell(sub) => self.morton_walk(sub, out),
            }
        }
    }
}

/// Force evaluation over a (possibly locally cached) cell array.
/// Returns the acceleration on the probe body and the number of
/// interactions evaluated (the per-particle work the paper's partition
/// weighs by).
pub fn force_on(
    cells: &[Cell],
    n_bodies: usize,
    pos: &[[f64; 3]],
    mass: &[f64],
    body: usize,
    theta: f64,
    eps2: f64,
) -> ([f64; 3], u64) {
    let mut acc = [0.0f64; 3];
    let mut interactions = 0u64;
    if cells.is_empty() {
        return (acc, 0);
    }
    let p = pos[body];
    // Explicit stack: the shared-heap tree can be deep.
    let mut stack: Vec<usize> = vec![0];
    while let Some(ci) = stack.pop() {
        let c = &cells[ci];
        let dx = [c.com[0] - p[0], c.com[1] - p[1], c.com[2] - p[2]];
        let d2 = dx[0] * dx[0] + dx[1] * dx[1] + dx[2] * dx[2];
        let size = c.half * 2.0;
        if d2 > 0.0 && size * size < theta * theta * d2 {
            // Far enough: use the cell's center of mass.
            interactions += 1;
            add_kick(&mut acc, c.mass, &dx, d2, eps2);
        } else {
            for k in 0..8 {
                match decode_child(c.children[k], n_bodies) {
                    Child::Empty => {}
                    Child::Body(b) => {
                        if b != body {
                            let dxb = [pos[b][0] - p[0], pos[b][1] - p[1], pos[b][2] - p[2]];
                            let d2b = dxb[0] * dxb[0] + dxb[1] * dxb[1] + dxb[2] * dxb[2];
                            interactions += 1;
                            add_kick(&mut acc, mass[b], &dxb, d2b, eps2);
                        }
                    }
                    Child::Cell(sub) => stack.push(sub),
                }
            }
        }
    }
    (acc, interactions)
}

#[inline]
fn add_kick(acc: &mut [f64; 3], m: f64, dx: &[f64; 3], d2: f64, eps2: f64) {
    let soft = d2 + eps2;
    let inv = 1.0 / (soft * soft.sqrt());
    for d in 0..3 {
        acc[d] += m * dx[d] * inv;
    }
}

/// Direct O(N²) reference summation (tests and accuracy checks).
pub fn force_direct(pos: &[[f64; 3]], mass: &[f64], body: usize, eps2: f64) -> [f64; 3] {
    let mut acc = [0.0f64; 3];
    let p = pos[body];
    for b in 0..pos.len() {
        if b == body {
            continue;
        }
        let dx = [pos[b][0] - p[0], pos[b][1] - p[1], pos[b][2] - p[2]];
        let d2 = dx[0] * dx[0] + dx[1] * dx[1] + dx[2] * dx[2];
        add_kick(&mut acc, mass[b], &dx, d2, eps2);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::barnes_hut::plummer::plummer_model;

    fn sample(n: usize) -> (Vec<[f64; 3]>, Vec<f64>) {
        let bodies = plummer_model(n, 42);
        let pos: Vec<[f64; 3]> = bodies.iter().map(|b| b.pos).collect();
        let mass: Vec<f64> = bodies.iter().map(|b| b.mass).collect();
        (pos, mass)
    }

    #[test]
    fn all_bodies_are_in_the_tree_exactly_once() {
        let (pos, mass) = sample(500);
        let t = Octree::build(&pos, &mass);
        let mut order = t.morton_order();
        assert_eq!(order.len(), 500);
        order.sort_unstable();
        for (i, b) in order.iter().enumerate() {
            assert_eq!(*b as usize, i);
        }
    }

    #[test]
    fn root_mass_and_com_match_totals() {
        let (pos, mass) = sample(300);
        let t = Octree::build(&pos, &mass);
        let total: f64 = mass.iter().sum();
        assert!((t.cells[0].mass - total).abs() < 1e-9 * total);
        for d in 0..3 {
            let expect: f64 = pos.iter().zip(&mass).map(|(p, m)| p[d] * m).sum::<f64>() / total;
            assert!((t.cells[0].com[d] - expect).abs() < 1e-9);
        }
    }

    #[test]
    fn bodies_live_inside_their_cells() {
        let (pos, mass) = sample(200);
        let t = Octree::build(&pos, &mass);
        for (ci, c) in t.cells.iter().enumerate() {
            for k in 0..8 {
                if let Child::Body(b) = decode_child(c.children[k], t.n_bodies) {
                    for d in 0..3 {
                        assert!(
                            (pos[b][d] - c.center[d]).abs() <= c.half * 1.001,
                            "body {b} outside cell {ci} on axis {d}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn small_theta_approaches_direct_summation() {
        let (pos, mass) = sample(150);
        let t = Octree::build(&pos, &mass);
        let eps2 = 1e-4;
        for body in [0usize, 17, 149] {
            let (approx, _) = force_on(&t.cells, t.n_bodies, &pos, &mass, body, 0.1, eps2);
            let exact = force_direct(&pos, &mass, body, eps2);
            let mag: f64 = exact.iter().map(|x| x * x).sum::<f64>().sqrt().max(1e-12);
            for d in 0..3 {
                assert!(
                    (approx[d] - exact[d]).abs() < 0.02 * mag + 1e-9,
                    "body {body} axis {d}: {} vs {}",
                    approx[d],
                    exact[d]
                );
            }
        }
    }

    #[test]
    fn larger_theta_does_less_work() {
        let (pos, mass) = sample(400);
        let t = Octree::build(&pos, &mass);
        let w = |theta: f64| {
            (0..40)
                .map(|b| force_on(&t.cells, t.n_bodies, &pos, &mass, b, theta, 1e-4).1)
                .sum::<u64>()
        };
        let tight = w(0.2);
        let loose = w(1.0);
        assert!(loose < tight, "θ=1.0 must evaluate fewer interactions: {loose} vs {tight}");
    }

    #[test]
    fn build_is_deterministic() {
        let (pos, mass) = sample(256);
        let a = Octree::build(&pos, &mass);
        let b = Octree::build(&pos, &mass);
        assert_eq!(a.cells.len(), b.cells.len());
        assert_eq!(a.morton_order(), b.morton_order());
        for (x, y) in a.cells.iter().zip(&b.cells) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn cell_pod_roundtrip() {
        let c = Cell {
            children: [1, 2, 3, 4, 5, 6, 7, 8],
            com: [0.1, 0.2, 0.3],
            mass: 4.5,
            center: [-1.0, 2.0, -3.0],
            half: 0.75,
        };
        let mut buf = vec![0u8; Cell::SIZE];
        c.write_to(&mut buf);
        assert_eq!(Cell::read_from(&buf), c);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let t = Octree::build(&[], &[]);
        assert!(t.morton_order().is_empty());
        let t1 = Octree::build(&[[1.0, 2.0, 3.0]], &[5.0]);
        assert_eq!(t1.morton_order(), vec![0]);
        assert_eq!(t1.cells[0].mass, 5.0);
        let (acc, inter) = force_on(&t1.cells, 1, &[[1.0, 2.0, 3.0]], &[5.0], 0, 0.7, 1e-4);
        assert_eq!(acc, [0.0; 3]);
        assert_eq!(inter, 0);
    }

    #[test]
    fn two_coincidentish_bodies_split_deeply_but_terminate() {
        let pos = vec![[0.0, 0.0, 0.0], [1e-9, 1e-9, 1e-9], [1.0, 1.0, 1.0]];
        let mass = vec![1.0, 1.0, 1.0];
        let t = Octree::build(&pos, &mass);
        assert_eq!(t.morton_order().len(), 3);
    }
}
