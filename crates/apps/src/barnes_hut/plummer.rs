//! Plummer-model initial conditions, as used by SPLASH-2 Barnes-Hut.
//!
//! Deterministic for a given seed: replicated sequential execution demands
//! bit-identical inputs on every node, and the experiments demand
//! reproducible runs.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One body of the N-body system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Body {
    pub pos: [f64; 3],
    pub vel: [f64; 3],
    pub mass: f64,
}

/// Generate `n` bodies from the Plummer distribution (virialized sphere;
/// Aarseth, Henon & Wielen 1974 rejection scheme), scaled to standard
/// units. Total mass is 1.
pub fn plummer_model(n: usize, seed: u64) -> Vec<Body> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut bodies = Vec::with_capacity(n);
    let m = if n > 0 { 1.0 / n as f64 } else { 0.0 };
    // Truncate the outermost orbits so the bounding cube stays sane.
    let rmax = 10.0;
    for _ in 0..n {
        // Radius from the inverse cumulative mass profile.
        let r = loop {
            let x: f64 = rng.gen_range(1e-8..1.0f64);
            let r = (x.powf(-2.0 / 3.0) - 1.0).powf(-0.5);
            if r < rmax {
                break r;
            }
        };
        let pos = sphere_point(&mut rng, r);
        // Velocity magnitude by von Neumann rejection on g(q) = q²(1-q²)^3.5.
        let q = loop {
            let q: f64 = rng.gen_range(0.0..1.0);
            let g: f64 = rng.gen_range(0.0..0.1);
            if g < q * q * (1.0 - q * q).powf(3.5) {
                break q;
            }
        };
        let vmag = q * (2.0f64).sqrt() * (1.0 + r * r).powf(-0.25);
        let vel = sphere_point(&mut rng, vmag);
        bodies.push(Body { pos, vel, mass: m });
    }
    bodies
}

/// A uniformly random point on the sphere of radius `r`.
fn sphere_point(rng: &mut SmallRng, r: f64) -> [f64; 3] {
    loop {
        let x: f64 = rng.gen_range(-1.0..1.0);
        let y: f64 = rng.gen_range(-1.0..1.0);
        let z: f64 = rng.gen_range(-1.0..1.0);
        let d2 = x * x + y * y + z * z;
        if d2 > 1e-12 && d2 <= 1.0 {
            let s = r / d2.sqrt();
            return [x * s, y * s, z * s];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_a_seed() {
        let a = plummer_model(100, 7);
        let b = plummer_model(100, 7);
        assert_eq!(a, b);
        let c = plummer_model(100, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn total_mass_is_one_and_positions_bounded() {
        let bodies = plummer_model(1000, 3);
        let total: f64 = bodies.iter().map(|b| b.mass).sum();
        assert!((total - 1.0).abs() < 1e-9);
        for b in &bodies {
            let r2: f64 = b.pos.iter().map(|x| x * x).sum();
            assert!(r2 < 10.0 * 10.0 * 1.01);
            assert!(b.pos.iter().all(|x| x.is_finite()));
            assert!(b.vel.iter().all(|x| x.is_finite()));
        }
    }

    #[test]
    fn mass_is_centrally_concentrated() {
        let bodies = plummer_model(4000, 11);
        let inside: usize =
            bodies.iter().filter(|b| b.pos.iter().map(|x| x * x).sum::<f64>() < 1.0).count();
        // The Plummer profile has ~35% of mass within the scale radius.
        let frac = inside as f64 / 4000.0;
        assert!((0.2..0.5).contains(&frac), "central fraction {frac}");
    }
}
