//! Barnes-Hut N-body simulation (SPLASH-2 style), structured exactly as the
//! paper describes (§6.1.1):
//!
//! * each timestep rebuilds the shared octree in a **sequential section**
//!   that reads every particle;
//! * the following **parallel section** partitions particles by walking the
//!   tree in Morton order with segment sizes weighted by the previous
//!   step's per-particle work, then evaluates forces (reading the tree and
//!   most particles) and writes per-particle accelerations;
//! * a second parallel phase advances each node's own particles.
//!
//! Under the base system every tree page is fetched from the master at the
//! start of the force phase — the §3 contention storm. Under replicated
//! sequential execution every node builds the tree locally and the storm
//! disappears.

pub mod plummer;
pub mod tree;

use repseq_core::sched::weighted_segments;
use repseq_core::{Stopped, Team, Worker};
use repseq_dsm::{ShArray, ShVar};
use repseq_sim::Dur;

use plummer::plummer_model;
use tree::{force_on, Cell, Octree};

/// Barnes-Hut experiment parameters.
#[derive(Debug, Clone)]
pub struct BhConfig {
    /// Number of bodies (the paper runs 131072).
    pub n_bodies: usize,
    /// Timesteps (the paper runs 2).
    pub timesteps: usize,
    /// Opening criterion.
    pub theta: f64,
    /// Integration step.
    pub dt: f64,
    /// Softening (squared).
    pub eps2: f64,
    /// Initial-condition seed.
    pub seed: u64,
    /// Modeled cost of one body-cell interaction (the dominant term; tuned
    /// so full-scale sequential execution lands near the paper's 359 s,
    /// see EXPERIMENTS.md).
    pub interaction_ns: f64,
    /// Modeled cost per level descended during tree insertion.
    pub descent_ns: f64,
    /// Modeled cost per cell created / COM accumulated.
    pub cell_ns: f64,
    /// Modeled cost of one kinematic update.
    pub update_ns: f64,
}

impl BhConfig {
    /// Paper-scale configuration (131072 bodies, 2 timesteps).
    pub fn paper() -> BhConfig {
        BhConfig {
            n_bodies: 131_072,
            timesteps: 2,
            theta: 1.0,
            dt: 0.025,
            eps2: 0.05 * 0.05,
            seed: 20010618,
            interaction_ns: 2300.0,
            descent_ns: 450.0,
            cell_ns: 700.0,
            update_ns: 300.0,
        }
    }

    /// Laptop-scale configuration preserving the paper's shape.
    pub fn scaled(n_bodies: usize) -> BhConfig {
        BhConfig { n_bodies, ..BhConfig::paper() }
    }

    /// Tiny configuration for tests.
    pub fn tiny() -> BhConfig {
        BhConfig::scaled(512)
    }
}

/// Shared-heap handles of the Barnes-Hut data (all `Copy`, captured by the
/// section closures like the translator's shared-variable addresses).
#[derive(Clone, Copy)]
struct Handles {
    pos: ShArray<[f64; 3]>,
    vel: ShArray<[f64; 3]>,
    acc: ShArray<[f64; 3]>,
    mass: ShArray<f64>,
    work: ShArray<f64>,
    cells: ShArray<Cell>,
    order: ShArray<u32>,
    bounds: ShArray<u32>,
    n_cells: ShVar<u32>,
}

/// A prepared Barnes-Hut run.
pub struct BarnesHut {
    cfg: BhConfig,
    h: Handles,
    page_size: usize,
}

/// Result of a run: a deterministic checksum over the final phase space
/// (identical across execution modes) plus the interaction count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BhResult {
    pub checksum: f64,
    pub interactions: u64,
}

impl BarnesHut {
    /// Allocate and preload the shared data on a runtime.
    pub fn setup(rt: &mut repseq_core::Runtime, cfg: BhConfig) -> BarnesHut {
        let n = cfg.n_bodies;
        let bodies = plummer_model(n, cfg.seed);
        let h = Handles {
            pos: rt.alloc_array_page_aligned(n),
            vel: rt.alloc_array_page_aligned(n),
            acc: rt.alloc_array_page_aligned(n),
            mass: rt.alloc_array_page_aligned(n),
            work: rt.alloc_array_page_aligned(n),
            cells: rt.alloc_array_page_aligned(2 * n + 64),
            order: rt.alloc_array_page_aligned(n),
            // Sized for the actual cluster, floored at the historical 64 so
            // layouts (and thus pins) at small scales are byte-identical.
            bounds: rt.alloc_array_page_aligned(rt.n_nodes().max(64) + 1),
            n_cells: rt.alloc_var(),
        };
        let pos: Vec<[f64; 3]> = bodies.iter().map(|b| b.pos).collect();
        let vel: Vec<[f64; 3]> = bodies.iter().map(|b| b.vel).collect();
        let mass: Vec<f64> = bodies.iter().map(|b| b.mass).collect();
        rt.preload(h.pos, &pos);
        rt.preload(h.vel, &vel);
        rt.preload(h.mass, &mass);
        // Uniform initial work estimate so the first partition is balanced.
        rt.preload(h.work, &vec![1.0f64; n]);
        BarnesHut { cfg, h, page_size: rt.page_size() }
    }

    /// Execute the simulation on a team; returns the deterministic result.
    pub fn run(&self, team: &Team) -> Result<BhResult, Stopped> {
        let cfg = self.cfg.clone();
        let h = self.h;
        let n = cfg.n_bodies;
        let n_nodes = team.n_nodes();
        assert!(n_nodes < h.bounds.len(), "bounds array sized for {} nodes", h.bounds.len() - 1);

        team.start_measurement();
        for _step in 0..cfg.timesteps {
            // ---- sequential section: tree build (§6.1.1) ----
            let cfgq = cfg.clone();
            let (c_first, c_last) = h.cells.page_span(self.page_size);
            let (o_first, o_last) = h.order.page_span(self.page_size);
            let (b_first, b_last) = h.bounds.page_span(self.page_size);
            let mut bc_pages: Vec<u32> = (c_first..=c_last).collect();
            bc_pages.extend(o_first..=o_last);
            bc_pages.extend(b_first..=b_last);
            team.sequential_broadcasting(
                move |nd| {
                    nd.race_label("bh::tree_build");
                    // Read every particle (the replicated version multicasts
                    // these pages — "the particles are multicast during the
                    // replicated execution").
                    let pos = nd.read_all(h.pos)?;
                    let mass = nd.read_all(h.mass)?;
                    let work = nd.read_all(h.work)?;
                    let t = Octree::build(&pos, &mass);
                    nd.charge(Dur::from_secs_f64(
                        (t.stats.descents as f64 * cfgq.descent_ns
                            + t.stats.cells_created as f64 * cfgq.cell_ns)
                            * 1e-9,
                    ));
                    assert!(t.cells.len() <= h.cells.len(), "cell pool exhausted");
                    let order = t.morton_order();
                    // Cost-weighted Morton partition for the next phase.
                    let w: Vec<f64> = order.iter().map(|&b| work[b as usize]).collect();
                    let segs = weighted_segments(&w, n_nodes);
                    h.cells.write_range(nd, 0, &t.cells)?;
                    h.n_cells.set(nd, t.cells.len() as u32)?;
                    h.order.write_range(nd, 0, &order)?;
                    let segs32: Vec<u32> = segs.iter().map(|&s| s as u32).collect();
                    h.bounds.write_range(nd, 0, &segs32)?;
                    Ok(())
                },
                bc_pages,
            )?;

            // ---- parallel section: force evaluation ----
            let cfgq = cfg.clone();
            team.parallel(move |nd| {
                nd.race_label("bh::forces");
                let me = nd.node();
                let n_cells = h.n_cells.get(nd)? as usize;
                let mut cells = vec![Cell::default(); n_cells];
                h.cells.read_range(nd, 0, &mut cells)?;
                let pos = nd.read_all(h.pos)?;
                let mass = nd.read_all(h.mass)?;
                let lo = h.bounds.get(nd, me)? as usize;
                let hi = h.bounds.get(nd, me + 1)? as usize;
                // Guard-based rewrite: iterate the Morton segment straight
                // from the page bytes (one read fault per order page, no
                // intermediate vector). The scattered per-body acc/work
                // writes stay element-wise — amortizing those is the
                // software TLB's job.
                h.order.with_slices(nd, lo..hi, |run| {
                    for j in 0..run.len() {
                        let b = run.get(j) as usize;
                        let (acc, inter) =
                            force_on(&cells, n, &pos, &mass, b, cfgq.theta, cfgq.eps2);
                        nd.charge(Dur::from_secs_f64(inter as f64 * cfgq.interaction_ns * 1e-9));
                        h.acc.set(nd, b, acc)?;
                        h.work.set(nd, b, inter as f64)?;
                    }
                    Ok(())
                })
            })?;

            // ---- parallel section: kinematic update of own particles ----
            let cfgq = cfg.clone();
            team.parallel(move |nd| {
                nd.race_label("bh::update");
                let me = nd.node();
                let lo = h.bounds.get(nd, me)? as usize;
                let hi = h.bounds.get(nd, me + 1)? as usize;
                h.order.with_slices(nd, lo..hi, |run| {
                    for j in 0..run.len() {
                        let b = run.get(j) as usize;
                        let a = h.acc.get(nd, b)?;
                        let mut v = h.vel.get(nd, b)?;
                        let mut p = h.pos.get(nd, b)?;
                        for d in 0..3 {
                            v[d] += a[d] * cfgq.dt;
                            p[d] += v[d] * cfgq.dt;
                        }
                        h.vel.set(nd, b, v)?;
                        h.pos.set(nd, b, p)?;
                        nd.charge(Dur::from_secs_f64(cfgq.update_ns * 1e-9));
                    }
                    Ok(())
                })
            })?;
        }
        team.end_measurement();

        // Deterministic checksum (outside the measured run).
        let nd = team.node();
        let pos = nd.read_all(h.pos)?;
        let vel = nd.read_all(h.vel)?;
        let work = nd.read_all(h.work)?;
        let mut checksum = 0.0f64;
        for i in 0..n {
            for d in 0..3 {
                checksum += pos[i][d] * (1.0 + d as f64) + vel[i][d] * 0.25;
            }
        }
        let interactions = work.iter().map(|&w| w as u64).sum();
        Ok(BhResult { checksum, interactions })
    }
}
