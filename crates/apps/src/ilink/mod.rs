//! A synthetic genetic-linkage workload with the structure of parallel
//! Ilink (§6.2.1, following Dwarkadas et al., "Parallelization of general
//! linkage analysis problems"):
//!
//! * a shared *bank* of genarrays sized for the largest nuclear family,
//!   reused for every family;
//! * when the computation moves to a new family the **master reinitializes
//!   the whole pool sequentially** — the paper's worst contention source,
//!   since every thread must then read the family members' genarrays;
//! * per-person updates are parallelized **cyclically over the non-zero
//!   entries**, guarded by an `if(work > threshold)` clause; each thread
//!   writes its share of entries straight into the target genarray (the
//!   multiple-writer protocol merges the false sharing), and **the master
//!   sums the contributions** in the following sequential section — the
//!   read that, under replicated execution, broadcasts "the contributions
//!   made by each thread during the previous iteration ... to all
//!   threads" (§6.2.2) and thereby strips the next parallel update of its
//!   fetch storm.
//!
//! The generator replaces the proprietary CLP pedigree input with a
//! deterministic synthetic pedigree of the same shape (see DESIGN.md); the
//! numerics are a stand-in with the same data-flow: updating one member
//! reads every other family member's genarray. Non-zero entries are modeled as a
//! contiguous cluster per member (recombination locality), so sparse reads
//! touch the pages a real index array would.

use repseq_core::{Stopped, Team};
use repseq_dsm::{ShArray, ShVar};
use repseq_sim::Dur;

/// Ilink experiment parameters.
#[derive(Debug, Clone)]
pub struct IlinkConfig {
    /// Nuclear families per outer iteration.
    pub n_families: usize,
    /// Genotype-probability array length per person.
    pub genarray_len: usize,
    /// Outer iterations (likelihood evaluations; the paper's CLP input
    /// needs 180).
    pub iterations: usize,
    /// The `if`-clause threshold on the amount of update work (non-zero
    /// count × family size).
    pub threshold: usize,
    /// Pedigree seed.
    pub seed: u64,
    /// Modeled cost per (non-zero entry × family member) in an update.
    pub entry_ns: f64,
    /// Modeled cost per element of the sequential pool reinitialization.
    pub init_ns: f64,
    /// Modeled cost per element merged by the master.
    pub merge_ns: f64,
}

impl IlinkConfig {
    /// Paper-shaped configuration (sized so full-scale sequential time
    /// lands near the paper's 99 s; see EXPERIMENTS.md).
    pub fn paper() -> IlinkConfig {
        IlinkConfig {
            n_families: 12,
            genarray_len: 2048,
            iterations: 180,
            threshold: 1_000,
            seed: 1994,
            // ≈ the paper's compute rate: 96.8 s of sequential-program
            // parallel-part time over ~3000 threshold-exceeding updates of
            // ~600 non-zeros × ~6 members.
            entry_ns: 9_000.0,
            init_ns: 60.0,
            merge_ns: 120.0,
        }
    }

    /// Laptop-scale configuration preserving the shape.
    pub fn scaled(iterations: usize) -> IlinkConfig {
        IlinkConfig {
            iterations,
            n_families: 4,
            genarray_len: 1024,
            threshold: 500,
            ..IlinkConfig::paper()
        }
    }

    /// Tiny configuration for tests.
    pub fn tiny() -> IlinkConfig {
        IlinkConfig {
            n_families: 3,
            genarray_len: 512,
            iterations: 2,
            threshold: 600,
            seed: 7,
            ..IlinkConfig::paper()
        }
    }
}

/// One nuclear family of the synthetic pedigree.
#[derive(Debug, Clone)]
pub struct Family {
    /// Member count (2 parents + children).
    pub members: usize,
    /// Non-zero entry count per member's genarray.
    pub nnz: Vec<usize>,
    /// Start of each member's non-zero cluster.
    pub nz_start: Vec<usize>,
}

/// Deterministic synthetic pedigree: family sizes 4–7, non-zero counts
/// spanning both sides of the parallelization threshold.
pub fn make_pedigree(cfg: &IlinkConfig) -> Vec<Family> {
    let mut rng = cfg.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = move || {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng
    };
    (0..cfg.n_families)
        .map(|_| {
            let members = 4 + (next() % 4) as usize;
            let nnz: Vec<usize> = (0..members)
                .map(|_| {
                    // Mostly small updates (below the if-clause threshold,
                    // as in CLP) with a quarter of large, work-dominating
                    // ones.
                    if next() % 4 != 0 {
                        8 + (next() % 32) as usize
                    } else {
                        let hi = cfg.genarray_len / 2;
                        let lo = cfg.genarray_len / 8;
                        lo + (next() as usize) % (hi - lo)
                    }
                })
                .collect();
            let nz_start =
                nnz.iter().map(|&z| (next() as usize) % (cfg.genarray_len - z + 1)).collect();
            Family { members, nnz, nz_start }
        })
        .collect()
}

/// Base value of the pool reinitialization (iteration- and
/// family-dependent, so every family visit rewrites everything).
#[inline]
fn base_value(iter: usize, fam: usize, m: usize, e: usize) -> f64 {
    let x = (iter * 31 + fam * 7 + m * 3 + e) as f64;
    0.5 + (x * 0.001).sin() * 0.25
}

/// Handles to the shared data.
#[derive(Clone, Copy)]
struct Handles {
    /// The bank: `max_members` rows of `genarray_len` probabilities.
    bank: ShArray<f64>,
    /// Accumulated likelihood.
    likelihood: ShVar<f64>,
}

/// A prepared Ilink run.
pub struct Ilink {
    cfg: IlinkConfig,
    pedigree: Vec<Family>,
    h: Handles,
}

/// Result: the accumulated likelihood (deterministic, independent of node
/// count — contributions merge in entry order) and the update counts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IlinkResult {
    pub likelihood: f64,
    pub parallel_updates: u64,
    pub sequential_updates: u64,
}

impl Ilink {
    /// Allocate the shared bank sized for the largest family.
    pub fn setup(rt: &mut repseq_core::Runtime, cfg: IlinkConfig) -> Ilink {
        let pedigree = make_pedigree(&cfg);
        let max_members = pedigree.iter().map(|f| f.members).max().unwrap_or(0);
        let h = Handles {
            bank: rt.alloc_array_page_aligned(max_members * cfg.genarray_len),
            likelihood: rt.alloc_var(),
        };
        Ilink { cfg, pedigree, h }
    }

    /// The synthetic pedigree in use.
    pub fn pedigree(&self) -> &[Family] {
        &self.pedigree
    }

    /// The value of non-zero `k` of `target` given the family rows
    /// (`rows[m]` holds member `m`'s non-zero cluster).
    #[inline]
    fn entry_value(fam: &Family, rows: &[Vec<f64>], target: usize, k: usize) -> f64 {
        let mut val = 1.0f64;
        for m in 0..fam.members {
            if m != target {
                let z = fam.nnz[m];
                val *= rows[m][(k * 7 + m * 13) % z] + 0.5;
            }
        }
        val
    }

    /// Read every member's non-zero cluster from the bank, except
    /// `skip`'s. [`Ilink::entry_value`] never reads the target member's
    /// own row, and in the parallel update the workers are concurrently
    /// writing it — reading it there would be a genuine data race (flagged
    /// by `repseq-check`'s detector), so the update paths skip it.
    fn read_clusters(
        nd: &repseq_dsm::DsmNode,
        h: &Handles,
        fam: &Family,
        len: usize,
        skip: usize,
    ) -> Result<Vec<Vec<f64>>, Stopped> {
        let mut rows = Vec::with_capacity(fam.members);
        for m in 0..fam.members {
            let mut row = vec![0.0f64; if m == skip { 0 } else { fam.nnz[m] }];
            if m != skip {
                h.bank.read_range(nd, m * len + fam.nz_start[m], &mut row)?;
            }
            rows.push(row);
        }
        Ok(rows)
    }

    /// Execute on a team.
    pub fn run(&self, team: &Team) -> Result<IlinkResult, Stopped> {
        let cfg = self.cfg.clone();
        let h = self.h;
        let n_nodes = team.n_nodes();
        assert!(n_nodes <= 64, "contribution buffers sized for 64 nodes");
        let mut parallel_updates = 0u64;
        let mut sequential_updates = 0u64;

        team.start_measurement();
        for iter in 0..cfg.iterations {
            for (fam_id, fam) in self.pedigree.iter().enumerate() {
                // ---- sequential: reinitialize the pool for this family
                // ("the whole pool of genarrays are overwritten by the
                // master thread", §6.2.1) ----
                let (members, len) = (fam.members, cfg.genarray_len);
                let cfgq = cfg.clone();
                team.sequential(move |nd| {
                    nd.race_label("ilink::init");
                    // Guard-based rewrite: one write fault per page, values
                    // computed straight into the page bytes (no row buffer).
                    for m in 0..members {
                        h.bank.with_slices_mut(nd, m * len..(m + 1) * len, |run| {
                            let first = run.first_index();
                            for j in 0..run.len() {
                                let e = first + j - m * len;
                                run.set(j, base_value(iter, fam_id, m, e));
                            }
                            Ok(())
                        })?;
                    }
                    nd.charge(Dur::from_secs_f64(
                        members as f64 * len as f64 * cfgq.init_ns * 1e-9,
                    ));
                    Ok(())
                })?;

                // ---- per-person updates ----
                for target in 0..fam.members {
                    let nnz = fam.nnz[target];
                    let work = nnz * fam.members;
                    let cfgq = cfg.clone();
                    let famq = fam.clone();
                    if work > cfg.threshold {
                        parallel_updates += 1;
                        // Parallel: cyclic assignment of non-zero entries
                        // (§6.2.1); each worker reads the family members'
                        // genarrays and writes its share of the target
                        // genarray directly (the multiple-writer protocol
                        // merges the interleaved writes).
                        let famp = famq.clone();
                        team.parallel(move |nd| {
                            nd.race_label("ilink::update");
                            let me = nd.node();
                            let stride = nd.n_nodes();
                            let ps = nd.page_size();
                            let rows = Self::read_clusters(nd, &h, &famp, len, target)?;
                            let start = famp.nz_start[target];
                            let mut visited = 0u64;
                            // Guard-based rewrite of the cyclic update: walk
                            // the assigned entries one page at a time, taking
                            // the write fault once per page and setting only
                            // this node's strided positions (the pages
                            // faulted — and the bytes written — are exactly
                            // those of the element-wise protocol, so the
                            // multiple-writer merge is unchanged).
                            let mut k = me;
                            while k < nnz {
                                let idx = target * len + start + k;
                                let a = h.bank.addr(idx);
                                let in_page = (a % ps as u64) as usize;
                                let avail = ((ps - in_page) / 8).min(nnz - k);
                                let cnt = avail.div_ceil(stride);
                                let span = (cnt - 1) * stride + 1;
                                h.bank.with_slices_mut(nd, idx..idx + span, |run| {
                                    for j in 0..cnt {
                                        let val =
                                            Self::entry_value(&famp, &rows, target, k + j * stride);
                                        run.set(j * stride, val);
                                        visited += 1;
                                    }
                                    Ok(())
                                })?;
                                k += cnt * stride;
                            }
                            nd.charge(Dur::from_secs_f64(
                                visited as f64 * famp.members as f64 * cfgq.entry_ns * 1e-9,
                            ));
                            Ok(())
                        })?;
                        // Sequential: the master sums the threads'
                        // contributions ("the master thread sums up the
                        // contributions of each of the threads"). Under
                        // replicated execution this read is what multicasts
                        // the previous parallel section's writes to every
                        // node.
                        let cfgm = cfg.clone();
                        team.sequential(move |nd| {
                            nd.race_label("ilink::merge");
                            let start = famq.nz_start[target];
                            let mut vals = vec![0.0f64; nnz];
                            h.bank.read_range(nd, target * len + start, &mut vals)?;
                            // Likelihood in entry order: independent of the
                            // node count.
                            let sum: f64 = vals.iter().sum();
                            let lik = h.likelihood.get(nd)?;
                            h.likelihood.set(nd, lik + sum / (nnz as f64 * famq.members as f64))?;
                            nd.charge(Dur::from_secs_f64(nnz as f64 * cfgm.merge_ns * 1e-9));
                            Ok(())
                        })?;
                    } else {
                        sequential_updates += 1;
                        // Below the threshold: the master updates alone.
                        team.sequential(move |nd| {
                            nd.race_label("ilink::seq_update");
                            let rows = Self::read_clusters(nd, &h, &famq, len, target)?;
                            let mut vals = vec![0.0f64; nnz];
                            for (k, v) in vals.iter_mut().enumerate() {
                                *v = Self::entry_value(&famq, &rows, target, k);
                            }
                            let start = famq.nz_start[target];
                            h.bank.write_range(nd, target * len + start, &vals)?;
                            let sum: f64 = vals.iter().sum();
                            let lik = h.likelihood.get(nd)?;
                            h.likelihood.set(nd, lik + sum / (nnz as f64 * famq.members as f64))?;
                            nd.charge(Dur::from_secs_f64(
                                nnz as f64 * famq.members as f64 * cfgq.entry_ns * 1e-9,
                            ));
                            Ok(())
                        })?;
                    }
                }
            }
        }
        team.end_measurement();
        let likelihood = h.likelihood.get(team.node())?;
        Ok(IlinkResult { likelihood, parallel_updates, sequential_updates })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pedigree_is_deterministic_and_mixed() {
        let cfg = IlinkConfig::paper();
        let a = make_pedigree(&cfg);
        let b = make_pedigree(&cfg);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.members, y.members);
            assert_eq!(x.nnz, y.nnz);
            assert_eq!(x.nz_start, y.nz_start);
        }
        // The threshold must actually split the updates.
        let (mut small, mut big) = (0, 0);
        for f in &a {
            for &nnz in &f.nnz {
                if nnz * f.members > cfg.threshold {
                    big += 1;
                } else {
                    small += 1;
                }
            }
        }
        assert!(big > 0 && small > 0, "need both kinds of updates: {big} big, {small} small");
    }

    #[test]
    fn family_shapes_are_sane() {
        let cfg = IlinkConfig::paper();
        for f in make_pedigree(&cfg) {
            assert!((4..=7).contains(&f.members));
            for (&nnz, &start) in f.nnz.iter().zip(&f.nz_start) {
                assert!(nnz >= 8 && nnz <= cfg.genarray_len / 2);
                assert!(start + nnz <= cfg.genarray_len, "cluster must fit in the genarray");
            }
        }
    }

    #[test]
    fn entry_value_reads_every_other_member() {
        let fam = Family { members: 3, nnz: vec![4, 4, 4], nz_start: vec![0, 0, 0] };
        let rows = vec![vec![1.0; 4], vec![2.0; 4], vec![3.0; 4]];
        // target 1: product over members 0 and 2: (1+0.5)*(3+0.5)
        let v = Ilink::entry_value(&fam, &rows, 1, 0);
        assert!((v - 1.5 * 3.5).abs() < 1e-12);
    }
}
