//! A minimal contention kernel: the §3 pathology distilled. The master
//! rewrites a block of pages in a sequential section; every node then reads
//! all of it in the parallel section. Used by the examples and the
//! flow-control ablation.
//!
//! Both phases run on the page-guard API (`with_slices` /
//! `with_slices_mut`): the fault is taken once per page and elements
//! encode/decode straight from the page bytes, with no intermediate
//! element vector.

use repseq_core::{Stopped, Team};
use repseq_dsm::ShArray;
use repseq_sim::Dur;

/// Kernel parameters.
#[derive(Debug, Clone)]
pub struct KernelConfig {
    /// Pages of shared data rewritten each iteration.
    pub pages: usize,
    /// Iterations.
    pub iters: usize,
    /// Modeled per-element compute cost in the parallel phase.
    pub read_ns: f64,
}

impl Default for KernelConfig {
    fn default() -> Self {
        KernelConfig { pages: 16, iters: 4, read_ns: 40.0 }
    }
}

/// A prepared kernel run.
pub struct ContentionKernel {
    cfg: KernelConfig,
    data: ShArray<u64>,
    sums: ShArray<u64>,
}

impl ContentionKernel {
    /// Allocate the shared block.
    pub fn setup(rt: &mut repseq_core::Runtime, cfg: KernelConfig) -> ContentionKernel {
        let elems = cfg.pages * rt.page_size() / 8;
        ContentionKernel {
            data: rt.alloc_array_page_aligned(elems),
            sums: rt.alloc_array_page_aligned(64),
            cfg,
        }
    }

    /// Run; returns a checksum identical across execution modes.
    pub fn run(&self, team: &Team) -> Result<u64, Stopped> {
        let data = self.data;
        let sums = self.sums;
        let cfg = self.cfg.clone();
        team.start_measurement();
        for it in 0..cfg.iters {
            let stamp = (it as u64 + 1) * 0x9E37;
            team.sequential(move |nd| {
                data.with_slices_mut(nd, 0..data.len(), |run| {
                    let first = run.first_index() as u64;
                    for j in 0..run.len() {
                        run.set(j, (first + j as u64).wrapping_mul(stamp));
                    }
                    Ok(())
                })
            })?;
            let read_ns = cfg.read_ns;
            team.parallel(move |nd| {
                let mut s = 0u64;
                data.with_slices(nd, 0..data.len(), |run| {
                    for j in 0..run.len() {
                        s = s.wrapping_add(run.get(j));
                    }
                    Ok(())
                })?;
                nd.charge(Dur::from_secs_f64(data.len() as f64 * read_ns * 1e-9));
                sums.set(nd, nd.node(), s)
            })?;
        }
        team.end_measurement();
        let mut check = 0u64;
        for q in 0..team.n_nodes() {
            check = check.wrapping_add(sums.get(team.node(), q)?);
        }
        Ok(check)
    }
}
