//! # repseq-apps — the paper's evaluation applications
//!
//! The two pointer-based applications of the PPoPP'01 evaluation, built on
//! the Team runtime so a single [`SeqMode`](repseq_core::SeqMode) switch
//! selects the Original, Optimized (replicated sequential execution) or
//! Broadcast-ablation system:
//!
//! * [`barnes_hut`] — SPLASH-2-style Barnes-Hut N-body simulation with a
//!   sequential octree build and Morton-ordered, work-weighted particle
//!   partitioning (§6.1);
//! * [`ilink`] — a synthetic genetic-linkage workload with parallel Ilink's
//!   structure: a master-reinitialized genarray bank, cyclic parallel
//!   updates guarded by an `if` clause, and master-side reduction (§6.2);
//! * [`kernels`] — a distilled contention microkernel for demos and
//!   ablations;
//! * [`kv`] — a sharded key-value store with an open-loop zipfian load
//!   generator: the serving workload (per-shard sequential write sections,
//!   parallel hot-key reads) the paper's batch apps cannot express.

pub mod barnes_hut;
pub mod ilink;
pub mod kernels;
pub mod kv;
