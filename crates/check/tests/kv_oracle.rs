//! Property test for the KV serving path: under arbitrary loss schedules,
//! node counts, and sequential-execution strategies, the table and
//! serving pages must match the reference memory **byte for byte at every
//! section boundary** — the harness checkpoints the audit set after each
//! replicated write section and each parallel read phase, so a hot-key
//! read served from a stale replicated page is caught at the boundary
//! where it happened, not just at the end of the run.

use proptest::prelude::*;
use repseq_check::{kv_serving, run_schedule, HarnessConfig, Schedule};
use repseq_dsm::SeqExecMode;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn hot_key_reads_match_reference_at_every_section_boundary(
        seed in 0u64..256,
        rate_idx in 0usize..4,
        flags in 0u8..2,
        nodes_idx in 0usize..3,
        mode_idx in 0usize..3,
    ) {
        let unicast = flags != 0;
        let drop_per_mille = [0u32, 100, 250, 400][rate_idx];
        let nodes = [3usize, 4, 8][nodes_idx];
        let seq_exec =
            [SeqExecMode::MasterOnly, SeqExecMode::Rse, SeqExecMode::MasterPush][mode_idx];
        let cfg = HarnessConfig { nodes, seq_exec, ..HarnessConfig::default() };
        let sched = Schedule { seed, drop_per_mille, unicast };
        let out = run_schedule(kv_serving, &cfg, sched)
            .unwrap_or_else(|why| panic!("kv_serving diverged from reference:\n{why}"));
        if drop_per_mille == 0 {
            prop_assert_eq!(out.drops, 0, "lossless schedule must not drop frames");
        }
    }
}
