//! The schedule-sweep torture suite: the full stack under a grid of loss
//! schedules, with the coherence oracle and the protocol invariants
//! checked after every run. CI runs this in release mode (see the
//! `torture` job); the grids below total 200+ lossy schedules.

use std::time::Instant;

use repseq_check::{
    grid, kitchen_sink, kv_serving, rse_kernel, run_schedule, sweep, Builder, HarnessConfig,
    Schedule,
};
use repseq_dsm::SeqExecMode;

/// Run one seed-shard of a sweep and report its wall-clock time. The
/// sweeps are sharded into separate `#[test]` functions so
/// `--test-threads` parallelizes the 208-schedule grid across cores; run
/// with `--nocapture` to see the per-shard timings.
fn shard(
    name: &str,
    build: Builder,
    cfg: &HarnessConfig,
    seeds: std::ops::Range<u64>,
    rates: &[u32],
) {
    let schedules = grid(seeds.clone(), rates, &[false, true]);
    let expected = schedules.len();
    let t0 = Instant::now();
    let sum = sweep(build, cfg, &schedules);
    eprintln!(
        "torture shard {name} seeds {}..{}: {} schedules, {} drops, {} chain holes in {:.2?}",
        seeds.start,
        seeds.end,
        sum.schedules,
        sum.drops,
        sum.chain_holes,
        t0.elapsed()
    );
    assert_eq!(sum.schedules, expected);
    assert!(sum.drops > 0, "the shard must actually drop frames to mean anything");
}

/// Lossless baseline: the oracle itself must hold on clean runs of both
/// workloads under every sequential-execution strategy (a failure here is
/// an oracle or workload bug, not a protocol bug).
#[test]
fn clean_runs_satisfy_the_oracle() {
    let clean = Schedule { seed: 0, drop_per_mille: 0, unicast: false };
    for seq_exec in [SeqExecMode::MasterOnly, SeqExecMode::Rse, SeqExecMode::MasterPush] {
        let cfg = HarnessConfig { seq_exec, ..HarnessConfig::default() };
        for build in [rse_kernel, kitchen_sink, kv_serving] {
            let out = run_schedule(build, &cfg, clean).unwrap_or_else(|r| panic!("{r}"));
            assert_eq!(out.drops, 0);
        }
    }
}

/// The RSE-heavy kernel across seeds × drop rates × loss media. Brutal
/// drop rates with a short recovery timeout: every schedule must converge
/// to reference memory and leave the protocol quiescent. Sharded by seed
/// (4 × 42 = the original 168-schedule grid).
#[test]
fn torture_sweep_rse_kernel_shard0() {
    shard("rse_kernel/0", rse_kernel, &HarnessConfig::default(), 0..7, &[100, 250, 400]);
}

#[test]
fn torture_sweep_rse_kernel_shard1() {
    shard("rse_kernel/1", rse_kernel, &HarnessConfig::default(), 7..14, &[100, 250, 400]);
}

#[test]
fn torture_sweep_rse_kernel_shard2() {
    shard("rse_kernel/2", rse_kernel, &HarnessConfig::default(), 14..21, &[100, 250, 400]);
}

#[test]
fn torture_sweep_rse_kernel_shard3() {
    shard("rse_kernel/3", rse_kernel, &HarnessConfig::default(), 21..28, &[100, 250, 400]);
}

/// The full-feature mix (locks, cross-block reads, cyclic updates) across
/// a smaller grid at a different node count (2 × 20 = the original
/// 40-schedule grid).
#[test]
fn torture_sweep_kitchen_sink_shard0() {
    let cfg = HarnessConfig { nodes: 4, ..HarnessConfig::default() };
    shard("kitchen_sink/0", kitchen_sink, &cfg, 0..5, &[150, 350]);
}

#[test]
fn torture_sweep_kitchen_sink_shard1() {
    let cfg = HarnessConfig { nodes: 4, ..HarnessConfig::default() };
    shard("kitchen_sink/1", kitchen_sink, &cfg, 5..10, &[150, 350]);
}

/// The KV serving loop under loss: per-shard replicated write sections
/// interleaved with cyclic read serving, the shape where a stale hot page
/// served to a read is a silent wrong answer rather than a crash. Every
/// schedule must still converge to reference memory (2 × 20-schedule
/// grid, mirroring the kitchen-sink shards).
#[test]
fn torture_sweep_kv_serving_shard0() {
    let cfg = HarnessConfig { nodes: 4, ..HarnessConfig::default() };
    shard("kv_serving/0", kv_serving, &cfg, 0..5, &[150, 350]);
}

#[test]
fn torture_sweep_kv_serving_shard1() {
    let cfg = HarnessConfig { nodes: 4, ..HarnessConfig::default() };
    shard("kv_serving/1", kv_serving, &cfg, 5..10, &[150, 350]);
}

/// The MasterPush strategy under loss: a dropped `PageBroadcast` frame
/// must degrade to a demand fetch in the next parallel section, never to
/// stale data. Same workloads, same oracle, no chain machinery — so the
/// shards assert drops only.
#[test]
fn torture_sweep_master_push_shard0() {
    let cfg = HarnessConfig { seq_exec: SeqExecMode::MasterPush, ..HarnessConfig::default() };
    shard("master_push/rse_kernel", rse_kernel, &cfg, 0..7, &[100, 250, 400]);
}

#[test]
fn torture_sweep_master_push_shard1() {
    let cfg =
        HarnessConfig { nodes: 4, seq_exec: SeqExecMode::MasterPush, ..HarnessConfig::default() };
    shard("master_push/kitchen_sink", kitchen_sink, &cfg, 0..5, &[150, 350]);
}

/// Fault injection for the software TLB: with every protection-generation
/// bump suppressed, stale translations survive protection revocations —
/// the replicated init leaves writable TLB entries, the next parallel
/// phase writes through them without faulting, so no twins or write
/// notices are produced and every other node keeps a stale valid copy.
/// The coherence oracle must catch the divergence; this pins the
/// generation counter as the mechanism that keeps the TLB coherent (a
/// passing run here would mean the fast path is not actually guarded).
#[test]
#[should_panic(expected = "coherence violation")]
fn broken_generation_bump_is_caught_by_the_oracle() {
    let cfg = HarnessConfig { nodes: 4, break_generation_bumps: true, ..HarnessConfig::default() };
    let clean = [Schedule { seed: 0, drop_per_mille: 0, unicast: false }];
    sweep(kitchen_sink, &cfg, &clean);
}

/// The divergence report machinery itself: a schedule that drops frames
/// but passes produces no report; sanity-check the report renderer by
/// forcing a failure through an impossible expectation is not possible
/// from outside, so instead assert the reporting path's building blocks —
/// the traced re-run — stays deterministic: two traced runs of the same
/// lossy schedule produce identical drop logs.
#[test]
fn lossy_schedules_are_reproducible() {
    let cfg = HarnessConfig::default();
    let sched = Schedule { seed: 7, drop_per_mille: 300, unicast: true };
    let a = run_schedule(rse_kernel, &cfg, sched).unwrap_or_else(|r| panic!("{r}"));
    let b = run_schedule(rse_kernel, &cfg, sched).unwrap_or_else(|r| panic!("{r}"));
    assert_eq!(a.drops, b.drops);
    assert_eq!(a.events, b.events);
    assert_eq!(a.chain_holes, b.chain_holes);
}
