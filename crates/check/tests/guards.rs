//! Page-guard equivalence: random range-write programs executed through
//! the bulk guard API (`with_slices` / `with_slices_mut`) must leave
//! exactly the memory the element-wise API leaves, and both must match
//! the single-copy reference memory — byte for byte, on every node.
//!
//! Two element types on purpose: `u64` (8 bytes, never straddles a page
//! on an aligned array) and `[u64; 3]` (24 bytes, straddles — exercising
//! the guards' detached singleton-run path).

#![allow(clippy::type_complexity)]

use std::sync::Arc;

use parking_lot::Mutex;
use proptest::prelude::*;
use repseq_check::{Mem, RefMem};
use repseq_dsm::{Cluster, ClusterConfig, DsmNode, ShArray};
use repseq_sim::Stopped;
use repseq_stats::Stats;

const N_NODES: usize = 2;
/// 700 × 8 B spans two 4 KiB pages.
const U64_LEN: usize = 700;
/// 180 × 24 B spans two 4 KiB pages with a straddling element.
const TRIP_LEN: usize = 180;

/// One phase: `(start, raw_len, seed)`; executed by node `phase_idx % n`,
/// writing a clamped range of both arrays. Phases are separated by
/// barriers, so the program is race-free.
type Program = Vec<(usize, usize, u64)>;

fn program_strategy() -> impl Strategy<Value = Program> {
    prop::collection::vec((0usize..U64_LEN, 1usize..96, 1u64..1_000_000), 1..5)
}

fn u64_val(seed: u64, i: usize) -> u64 {
    seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(i as u64 * 31)
}

fn trip_val(seed: u64, i: usize) -> [u64; 3] {
    [u64_val(seed, i), u64_val(seed, i) ^ 0xAAAA, i as u64]
}

fn clamp_u64(start: usize, raw_len: usize) -> (usize, usize) {
    (start, raw_len.min(U64_LEN - start))
}

fn clamp_trip(start: usize, raw_len: usize) -> (usize, usize) {
    let s = start % TRIP_LEN;
    (s, raw_len.min(TRIP_LEN - s))
}

/// Run the program on a fresh cluster; `guards` picks the access API.
/// Returns each node's final view of both arrays.
fn run_on_dsm(prog: &Program, guards: bool) -> Vec<(Vec<u64>, Vec<[u64; 3]>)> {
    let stats = Stats::new(N_NODES);
    let mut cl = Cluster::new(ClusterConfig::paper(N_NODES), stats);
    let arr: ShArray<u64> = cl.alloc_array_page_aligned(U64_LEN);
    let trip: ShArray<[u64; 3]> = cl.alloc_array_page_aligned(TRIP_LEN);
    let out = Arc::new(Mutex::new(vec![(Vec::new(), Vec::new()); N_NODES]));
    let prog = Arc::new(prog.clone());

    let mut apps: Vec<Box<dyn FnOnce(DsmNode) -> Result<(), Stopped> + Send>> = Vec::new();
    for me in 0..N_NODES {
        let prog = Arc::clone(&prog);
        let out = Arc::clone(&out);
        apps.push(Box::new(move |node: DsmNode| {
            for (k, &(start, raw_len, seed)) in prog.iter().enumerate() {
                if k % N_NODES == me {
                    let (us, ul) = clamp_u64(start, raw_len);
                    let (ts, tl) = clamp_trip(start, raw_len);
                    if guards {
                        arr.with_slices_mut(&node, us..us + ul, |run| {
                            let first = run.first_index();
                            for j in 0..run.len() {
                                run.set(j, u64_val(seed, first + j));
                            }
                            Ok(())
                        })?;
                        trip.with_slices_mut(&node, ts..ts + tl, |run| {
                            let first = run.first_index();
                            for j in 0..run.len() {
                                run.set(j, trip_val(seed, first + j));
                            }
                            Ok(())
                        })?;
                    } else {
                        for i in us..us + ul {
                            arr.set(&node, i, u64_val(seed, i))?;
                        }
                        for i in ts..ts + tl {
                            trip.set(&node, i, trip_val(seed, i))?;
                        }
                    }
                }
                node.barrier()?;
            }
            // Read back everything on every node.
            let (mut u, mut t) = (Vec::with_capacity(U64_LEN), Vec::with_capacity(TRIP_LEN));
            if guards {
                arr.with_slices(&node, 0..U64_LEN, |run| {
                    for j in 0..run.len() {
                        u.push(run.get(j));
                    }
                    Ok(())
                })?;
                trip.with_slices(&node, 0..TRIP_LEN, |run| {
                    for j in 0..run.len() {
                        t.push(run.get(j));
                    }
                    Ok(())
                })?;
            } else {
                for i in 0..U64_LEN {
                    u.push(arr.get(&node, i)?);
                }
                for i in 0..TRIP_LEN {
                    t.push(trip.get(&node, i)?);
                }
            }
            out.lock()[me] = (u, t);
            Ok(())
        }));
    }

    // Addresses are allocation-order deterministic; keep them for the
    // reference replay before the cluster is consumed.
    cl.launch(apps).expect("simulation must complete");
    let views = std::mem::take(&mut *out.lock());
    views
}

/// Replay the program on the single-copy reference memory and read back
/// the ground-truth arrays (little-endian, the DSM's Pod encoding).
fn run_on_reference(prog: &Program) -> (Vec<u64>, Vec<[u64; 3]>) {
    // Same deterministic allocator as `run_on_dsm`.
    let stats = Stats::new(N_NODES);
    let mut cl = Cluster::new(ClusterConfig::paper(N_NODES), stats);
    let arr: ShArray<u64> = cl.alloc_array_page_aligned(U64_LEN);
    let trip: ShArray<[u64; 3]> = cl.alloc_array_page_aligned(TRIP_LEN);
    let page_size = cl.config().dsm.page_size;

    let mut m = RefMem::new(page_size);
    for &(start, raw_len, seed) in prog {
        let (us, ul) = clamp_u64(start, raw_len);
        for i in us..us + ul {
            m.st(arr.addr(i), u64_val(seed, i)).unwrap();
        }
        let (ts, tl) = clamp_trip(start, raw_len);
        for i in ts..ts + tl {
            let v = trip_val(seed, i);
            for (lane, &w) in v.iter().enumerate() {
                m.st(trip.addr(i) + 8 * lane as u64, w).unwrap();
            }
        }
    }
    let u: Vec<u64> = (0..U64_LEN).map(|i| m.ld(arr.addr(i)).unwrap()).collect();
    let t: Vec<[u64; 3]> = (0..TRIP_LEN)
        .map(|i| {
            let mut v = [0u64; 3];
            for (lane, slot) in v.iter_mut().enumerate() {
                *slot = m.ld(trip.addr(i) + 8 * lane as u64).unwrap();
            }
            v
        })
        .collect();
    (u, t)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Guard-based and element-wise access must be byte-identical to each
    /// other and to the reference memory, on every node.
    #[test]
    fn guards_match_elementwise_and_reference(prog in program_strategy()) {
        let (ref_u, ref_t) = run_on_reference(&prog);
        let by_guards = run_on_dsm(&prog, true);
        let by_elems = run_on_dsm(&prog, false);
        for node in 0..N_NODES {
            prop_assert_eq!(&by_guards[node].0, &ref_u, "guards vs reference (u64), node {}", node);
            prop_assert_eq!(&by_guards[node].1, &ref_t, "guards vs reference (triple), node {}", node);
            prop_assert_eq!(&by_elems[node].0, &ref_u, "elements vs reference (u64), node {}", node);
            prop_assert_eq!(&by_elems[node].1, &ref_t, "elements vs reference (triple), node {}", node);
        }
    }
}
