//! The race-certification suite: planted-race regression fixtures, full
//! application certification runs, and the detector-invariance property.
//!
//! Three layers, mirroring the detector's contract:
//!
//! 1. **Planted races** — each classic DSM synchronization bug (missing
//!    barrier, unsynchronized reduction, a sequential-section write racing
//!    a straggler's read) MUST be detected, with the exact page and
//!    section labels in the report, and its minimally-fixed twin MUST
//!    certify clean. A detector that goes quiet on these is broken.
//! 2. **Certification** — full Barnes-Hut and Ilink runs, under all three
//!    sequential-section strategies (master-only, replicated sequential
//!    execution, master-push), at 8 nodes, must
//!    report zero races; the resulting `RaceReport` JSON is written next
//!    to the bench artifacts for the CI `race-certify` job to upload.
//! 3. **Invariance** — the detector is purely observational: any torture
//!    workload × loss schedule must produce a bit-identical simulation
//!    (virtual end time, per-process clocks, kernel events, backlog) and
//!    bit-identical statistics (messages, bytes, faults) with the
//!    detector installed as without it.

use std::sync::Arc;

use parking_lot::Mutex;
use proptest::prelude::*;
use repseq_apps::barnes_hut::{BarnesHut, BhConfig, BhResult};
use repseq_apps::ilink::{Ilink, IlinkConfig, IlinkResult};
use repseq_apps::kv::{KvConfig, KvResult, KvStore};
use repseq_check::{
    kitchen_sink, rse_kernel, run_schedule_instrumented, HarnessConfig, RaceDetector, RaceReport,
    Schedule,
};
use repseq_core::{RunConfig, Runtime};
use repseq_dsm::{
    AccessKind, Cluster, ClusterConfig, DsmNode, RaceConfig, RaceSink, ShArray, Task,
};
use repseq_sim::SimTime;
use repseq_stats::{Stats, StatsSnapshot};

// ---------------------------------------------------------------------
// Shared scaffolding
// ---------------------------------------------------------------------

/// Build an `n`-node cluster with a detector installed, run `master` on
/// node 0 and the slave scheduler loop everywhere else, and return the
/// detector's report plus the page of the (page-aligned) fixture array.
fn run_fixture(
    n: usize,
    master: impl FnOnce(DsmNode, ShArray<f64>) -> Result<(), repseq_sim::Stopped> + Send + 'static,
) -> (RaceReport, u32) {
    let stats = Stats::new(n);
    let mut cl = Cluster::new(ClusterConfig::paper(n), stats);
    let arr: ShArray<f64> = cl.alloc_array_page_aligned(16);
    let page_size = cl.config().dsm.page_size;
    let page = arr.page_span(page_size).0;
    let det = Arc::new(RaceDetector::new(n, RaceConfig { page_size, ..RaceConfig::default() }));
    cl.set_race_sink(Arc::clone(&det) as Arc<dyn RaceSink>);
    let mut apps: Vec<repseq_dsm::AppFn> = vec![Box::new(move |node: DsmNode| master(node, arr))];
    for _ in 1..n {
        apps.push(Box::new(|node: DsmNode| node.slave_loop()));
    }
    let out = cl.launch_inspect(apps);
    out.result.expect("fixture run must complete");
    (det.report(), page)
}

/// Every reported race must sit on `page` and carry only the given
/// section labels.
fn assert_provenance(rep: &RaceReport, page: u32, labels: &[&str]) {
    for r in &rep.races {
        assert_eq!(r.page, page, "race on unexpected page:\n{}", rep.render());
        for side in [&r.first, &r.second] {
            assert!(
                labels.contains(&side.section.as_str()),
                "unexpected section label {:?}:\n{}",
                side.section,
                rep.render()
            );
        }
    }
}

// ---------------------------------------------------------------------
// Planted race 1: missing barrier
// ---------------------------------------------------------------------

/// One parallel section: node 0 writes a word node 1 reads, with an
/// optional barrier between them.
fn missing_barrier(with_barrier: bool) -> (RaceReport, u32) {
    run_fixture(2, move |node, arr| {
        node.run_parallel(move |nd| {
            nd.race_label("fixture::missing_barrier");
            if nd.node() == 0 {
                arr.set(nd, 0, 1.25)?;
            }
            if with_barrier {
                nd.barrier()?;
            }
            if nd.node() == 1 {
                let _ = arr.get(nd, 0)?;
            }
            Ok(())
        })?;
        node.shutdown_slaves()
    })
}

#[test]
fn planted_missing_barrier_is_detected() {
    let (rep, page) = missing_barrier(false);
    assert_eq!(rep.races.len(), 1, "expected exactly one race:\n{}", rep.render());
    assert_provenance(&rep, page, &["fixture::missing_barrier"]);
    let kinds = [rep.races[0].first.kind, rep.races[0].second.kind];
    assert!(kinds.contains(&AccessKind::Read) && kinds.contains(&AccessKind::Write));
}

#[test]
fn barrier_fixes_the_planted_race() {
    let (rep, _) = missing_barrier(true);
    assert!(rep.is_clean(), "barrier-ordered accesses must not race:\n{}", rep.render());
    assert!(rep.checks > 0, "the detector must actually have checked accesses");
}

// ---------------------------------------------------------------------
// Planted race 2: unsynchronized reduction
// ---------------------------------------------------------------------

/// Three nodes read-modify-write one shared accumulator, with or without
/// the lock that makes it a reduction.
fn reduction(with_lock: bool) -> (RaceReport, u32) {
    run_fixture(3, move |node, arr| {
        node.run_parallel(move |nd| {
            nd.race_label("fixture::reduction");
            if with_lock {
                nd.lock(3)?;
            }
            let v = arr.get(nd, 0)?;
            arr.set(nd, 0, v + 1.0)?;
            if with_lock {
                nd.unlock(3)?;
            }
            Ok(())
        })?;
        node.shutdown_slaves()
    })
}

#[test]
fn planted_unsynchronized_reduction_is_detected() {
    let (rep, page) = reduction(false);
    assert!(!rep.is_clean(), "lockless RMW must race");
    assert_provenance(&rep, page, &["fixture::reduction"]);
}

#[test]
fn lock_fixes_the_planted_reduction() {
    let (rep, _) = reduction(true);
    assert!(rep.is_clean(), "lock-ordered reduction must not race:\n{}", rep.render());
    assert!(rep.checks > 0);
}

// ---------------------------------------------------------------------
// Planted race 3: sequential-section write vs a straggler's read
// ---------------------------------------------------------------------

/// The master forks a read task, then performs a sequential-section write
/// of the same page either before (`racy`) or after waiting for the
/// joins — the "straggler still reading while the master moves on"
/// pattern the paper's fork/join structure normally excludes.
fn straggler(write_before_join: bool) -> (RaceReport, u32) {
    run_fixture(2, move |node, arr| {
        let task = Task::run(move |nd: &DsmNode| {
            if nd.node() == 1 {
                nd.race_label("fixture::straggler_read");
                let _ = arr.get(nd, 0)?;
            }
            Ok(())
        });
        node.fork_slaves(task, false)?;
        if write_before_join {
            node.race_label("fixture::seq_write");
            arr.set(&node, 0, 2.5)?;
            node.wait_joins()?;
        } else {
            node.wait_joins()?;
            node.race_label("fixture::seq_write");
            arr.set(&node, 0, 2.5)?;
        }
        node.shutdown_slaves()
    })
}

#[test]
fn planted_straggler_read_is_detected() {
    let (rep, page) = straggler(true);
    assert_eq!(rep.races.len(), 1, "expected exactly one race:\n{}", rep.render());
    assert_provenance(&rep, page, &["fixture::seq_write", "fixture::straggler_read"]);
    let r = &rep.races[0];
    let (write, read) = if r.first.kind == AccessKind::Write {
        (&r.first, &r.second)
    } else {
        (&r.second, &r.first)
    };
    assert_eq!(write.section, "fixture::seq_write");
    assert_eq!(write.node, 0);
    assert_eq!(read.section, "fixture::straggler_read");
    assert_eq!(read.node, 1);
}

#[test]
fn joining_before_the_write_fixes_the_straggler() {
    let (rep, _) = straggler(false);
    assert!(rep.is_clean(), "join-ordered write must not race:\n{}", rep.render());
    assert!(rep.checks > 0);
}

// ---------------------------------------------------------------------
// Certification: Barnes-Hut and Ilink, all three strategies, 8 nodes
// ---------------------------------------------------------------------

const CERT_NODES: usize = 8;

/// The determinism-relevant residue of one application run.
#[derive(Debug, Clone, PartialEq)]
struct AppFingerprint {
    end_time: SimTime,
    proc_clocks: Vec<(String, SimTime)>,
    events: u64,
    stats: StatsSnapshot,
}

fn detector_for(cfg: &RunConfig) -> Arc<RaceDetector> {
    let page_size = cfg.cluster.dsm.page_size;
    Arc::new(RaceDetector::new(
        cfg.cluster.nodes,
        RaceConfig { page_size, ..RaceConfig::default() },
    ))
}

fn run_bh(cfg: RunConfig, det: Option<Arc<RaceDetector>>) -> (BhResult, AppFingerprint) {
    let mut rt = Runtime::new(cfg);
    if let Some(d) = det {
        rt.set_race_sink(d as Arc<dyn RaceSink>);
    }
    let bh = BarnesHut::setup(&mut rt, BhConfig::tiny());
    let stats = rt.stats();
    let result: Arc<Mutex<Option<BhResult>>> = Arc::new(Mutex::new(None));
    let slot = Arc::clone(&result);
    let report = rt
        .run(move |team| {
            *slot.lock() = Some(bh.run(team)?);
            Ok(())
        })
        .expect("BH run must complete");
    let r = result.lock().take().expect("BH result recorded");
    let fp = AppFingerprint {
        end_time: report.end_time,
        proc_clocks: report.proc_clocks,
        events: report.events_processed,
        stats: stats.snapshot(),
    };
    (r, fp)
}

fn run_ilink(cfg: RunConfig, det: Option<Arc<RaceDetector>>) -> (IlinkResult, AppFingerprint) {
    let mut rt = Runtime::new(cfg);
    if let Some(d) = det {
        rt.set_race_sink(d as Arc<dyn RaceSink>);
    }
    let il = Ilink::setup(&mut rt, IlinkConfig::tiny());
    let stats = rt.stats();
    let result: Arc<Mutex<Option<IlinkResult>>> = Arc::new(Mutex::new(None));
    let slot = Arc::clone(&result);
    let report = rt
        .run(move |team| {
            *slot.lock() = Some(il.run(team)?);
            Ok(())
        })
        .expect("Ilink run must complete");
    let r = result.lock().take().expect("Ilink result recorded");
    let fp = AppFingerprint {
        end_time: report.end_time,
        proc_clocks: report.proc_clocks,
        events: report.events_processed,
        stats: stats.snapshot(),
    };
    (r, fp)
}

fn run_kv(cfg: RunConfig, det: Option<Arc<RaceDetector>>) -> (KvResult, AppFingerprint) {
    let mut rt = Runtime::new(cfg);
    if let Some(d) = det {
        rt.set_race_sink(d as Arc<dyn RaceSink>);
    }
    let kv = KvStore::setup(&mut rt, KvConfig::tiny());
    let stats = rt.stats();
    let result: Arc<Mutex<Option<KvResult>>> = Arc::new(Mutex::new(None));
    let slot = Arc::clone(&result);
    let report = rt
        .run(move |team| {
            *slot.lock() = Some(kv.run(team)?);
            Ok(())
        })
        .expect("KV run must complete");
    let r = result.lock().take().expect("KV result recorded");
    let fp = AppFingerprint {
        end_time: report.end_time,
        proc_clocks: report.proc_clocks,
        events: report.events_processed,
        stats: stats.snapshot(),
    };
    (r, fp)
}

/// Write the report JSON where the CI `race-certify` job collects
/// artifacts (`target/tmp/RACE_*.json`).
fn write_artifact(name: &str, rep: &RaceReport) {
    let dir = std::path::Path::new(env!("CARGO_TARGET_TMPDIR"));
    std::fs::create_dir_all(dir).expect("artifact dir");
    std::fs::write(dir.join(format!("RACE_{name}.json")), rep.to_json()).expect("artifact write");
}

#[test]
fn barnes_hut_certifies_race_free_and_detector_is_invariant() {
    for (tag, cfg) in [
        ("bh_rse_off", RunConfig::original(CERT_NODES)),
        ("bh_rse_on", RunConfig::optimized(CERT_NODES)),
        ("bh_push", RunConfig::master_push(CERT_NODES)),
    ] {
        let det = detector_for(&cfg);
        let (r_on, fp_on) = run_bh(cfg.clone(), Some(Arc::clone(&det)));
        let (r_off, fp_off) = run_bh(cfg, None);
        let rep = det.report();
        write_artifact(tag, &rep);
        assert!(rep.is_clean(), "{tag}: expected a race-free run:\n{}", rep.render());
        assert!(rep.checks > 0, "{tag}: the detector must have observed accesses");
        assert_eq!(r_on, r_off, "{tag}: detector changed the computed result");
        assert_eq!(fp_on, fp_off, "{tag}: detector perturbed the simulation");
    }
}

#[test]
fn ilink_certifies_race_free_and_detector_is_invariant() {
    for (tag, cfg) in [
        ("ilink_rse_off", RunConfig::original(CERT_NODES)),
        ("ilink_rse_on", RunConfig::optimized(CERT_NODES)),
        ("ilink_push", RunConfig::master_push(CERT_NODES)),
    ] {
        let det = detector_for(&cfg);
        let (r_on, fp_on) = run_ilink(cfg.clone(), Some(Arc::clone(&det)));
        let (r_off, fp_off) = run_ilink(cfg, None);
        let rep = det.report();
        write_artifact(tag, &rep);
        assert!(rep.is_clean(), "{tag}: expected a race-free run:\n{}", rep.render());
        assert!(rep.checks > 0, "{tag}: the detector must have observed accesses");
        assert_eq!(r_on, r_off, "{tag}: detector changed the computed result");
        assert_eq!(fp_on, fp_off, "{tag}: detector perturbed the simulation");
    }
}

#[test]
fn kv_certifies_race_free_and_detector_is_invariant() {
    for (tag, cfg) in [
        ("kv_rse_off", RunConfig::original(CERT_NODES)),
        ("kv_rse_on", RunConfig::optimized(CERT_NODES)),
        ("kv_push", RunConfig::master_push(CERT_NODES)),
    ] {
        let det = detector_for(&cfg);
        let (r_on, fp_on) = run_kv(cfg.clone(), Some(Arc::clone(&det)));
        let (r_off, fp_off) = run_kv(cfg, None);
        let rep = det.report();
        write_artifact(tag, &rep);
        assert!(rep.is_clean(), "{tag}: expected a race-free run:\n{}", rep.render());
        assert!(rep.checks > 0, "{tag}: the detector must have observed accesses");
        assert_eq!(r_on, r_off, "{tag}: detector changed the computed result");
        assert_eq!(fp_on, fp_off, "{tag}: detector perturbed the simulation");
    }
}

// ---------------------------------------------------------------------
// Invariance property: torture workloads, detector on vs off
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any torture-generator workload under any loss schedule produces a
    /// bit-identical simulation and statistics with the detector on as
    /// off: same virtual end time, same per-process clocks, same kernel
    /// event count, same mailbox backlog, same per-node per-section
    /// messages/bytes/faults.
    #[test]
    fn detector_does_not_perturb_the_simulation(
        seed in 0u64..64,
        rate_idx in 0usize..4,
        flags in 0u8..4,
    ) {
        let drop_per_mille = [0u32, 100, 250, 400][rate_idx];
        let unicast = flags & 1 != 0;
        let kitchen = flags & 2 != 0;
        let (build, cfg) = if kitchen {
            (kitchen_sink as repseq_check::Builder,
             HarnessConfig { nodes: 4, ..HarnessConfig::default() })
        } else {
            (rse_kernel as repseq_check::Builder, HarnessConfig::default())
        };
        let sched = Schedule { seed, drop_per_mille, unicast };
        let off = run_schedule_instrumented(build, &cfg, sched, None)
            .unwrap_or_else(|e| panic!("{e}"));
        let page_size = ClusterConfig::paper(cfg.nodes).dsm.page_size;
        let det = Arc::new(RaceDetector::new(
            cfg.nodes,
            RaceConfig { page_size, ..RaceConfig::default() },
        ));
        let on = run_schedule_instrumented(build, &cfg, sched, Some(det))
            .unwrap_or_else(|e| panic!("{e}"));
        prop_assert!(on.races.is_some(), "detector run must produce a report");
        prop_assert_eq!(off.drops, on.drops, "loss schedule diverged");
        prop_assert_eq!(&off.sim, &on.sim, "simulation fingerprint diverged");
        prop_assert_eq!(&off.stats, &on.stats, "statistics diverged");
    }
}
