//! Host-threading invariance: every committed pin in `tests/pins/` must be
//! reproduced byte-for-byte when the same workload runs under duty-handoff
//! host scheduling (`host_threads >= 2`) instead of the serial coordinator
//! loop. The engine's per-group event queues and deterministic
//! `(time, seq)` merge make host parallelism invisible to the simulation;
//! this suite is the proof.
//!
//! These tests are pure consumers of the serial pins — they never
//! regenerate. Under `REPSEQ_PIN_REGEN=1` they stand down so the serial
//! `pins.rs` suite can rewrite the reference files without ordering races
//! between test binaries.

mod support;

use std::fmt::Write as _;
use std::sync::Arc;

use parking_lot::Mutex;
use repseq_apps::barnes_hut::{BarnesHut, BhConfig};
use repseq_apps::ilink::{Ilink, IlinkConfig};
use repseq_check::{
    kitchen_sink, rse_kernel, run_schedule_instrumented, Builder, HarnessConfig, Schedule,
};
use repseq_core::{RunConfig, Runtime};
use support::{check_pin_readonly, regenerating, render, render_stats};

const PIN_NODES: usize = 8;
const HOST_THREADS: usize = 2;

fn pin_bh_threaded(name: &str, mut cfg: RunConfig) {
    if regenerating() {
        eprintln!("REPSEQ_PIN_REGEN=1: skipping threaded rerun of {name}");
        return;
    }
    cfg.cluster.host_threads = HOST_THREADS;
    let mut rt = Runtime::new(cfg);
    let bh = BarnesHut::setup(&mut rt, BhConfig::tiny());
    let stats = rt.stats();
    let result = Arc::new(Mutex::new(None));
    let slot = Arc::clone(&result);
    let report = rt
        .run(move |team| {
            *slot.lock() = Some(bh.run(team)?);
            Ok(())
        })
        .expect("threaded BH pin run must complete");
    assert!(
        report.exec.handoff_switches > 0,
        "host_threads={HOST_THREADS} run never engaged duty handoff: {:?}",
        report.exec
    );
    let r = result.lock().take().expect("BH result recorded");
    check_pin_readonly(
        name,
        &render(&report, &stats.snapshot(), &format!("{r:?}")),
        &format!("host_threads={HOST_THREADS}"),
    );
}

fn pin_ilink_threaded(name: &str, mut cfg: RunConfig) {
    if regenerating() {
        eprintln!("REPSEQ_PIN_REGEN=1: skipping threaded rerun of {name}");
        return;
    }
    cfg.cluster.host_threads = HOST_THREADS;
    let mut rt = Runtime::new(cfg);
    let il = Ilink::setup(&mut rt, IlinkConfig::tiny());
    let stats = rt.stats();
    let result = Arc::new(Mutex::new(None));
    let slot = Arc::clone(&result);
    let report = rt
        .run(move |team| {
            *slot.lock() = Some(il.run(team)?);
            Ok(())
        })
        .expect("threaded Ilink pin run must complete");
    assert!(
        report.exec.handoff_switches > 0,
        "host_threads={HOST_THREADS} run never engaged duty handoff: {:?}",
        report.exec
    );
    let r = result.lock().take().expect("Ilink result recorded");
    check_pin_readonly(
        name,
        &render(&report, &stats.snapshot(), &format!("{r:?}")),
        &format!("host_threads={HOST_THREADS}"),
    );
}

#[test]
fn barnes_hut_master_only_pin_survives_host_threading() {
    pin_bh_threaded("bh_master_only", RunConfig::original(PIN_NODES));
}

#[test]
fn barnes_hut_rse_pin_survives_host_threading() {
    pin_bh_threaded("bh_rse", RunConfig::optimized(PIN_NODES));
}

#[test]
fn ilink_master_only_pin_survives_host_threading() {
    pin_ilink_threaded("ilink_master_only", RunConfig::original(PIN_NODES));
}

#[test]
fn ilink_rse_pin_survives_host_threading() {
    pin_ilink_threaded("ilink_rse", RunConfig::optimized(PIN_NODES));
}

fn pin_harness_threaded(name: &str, build: Builder, cfg: &HarnessConfig, sched: Schedule) {
    if regenerating() {
        eprintln!("REPSEQ_PIN_REGEN=1: skipping threaded rerun of {name}");
        return;
    }
    let cfg = HarnessConfig { host_threads: HOST_THREADS, ..*cfg };
    let out = run_schedule_instrumented(build, &cfg, sched, None).unwrap_or_else(|e| panic!("{e}"));
    let mut s = String::new();
    writeln!(s, "end_time_ns: {}", out.sim.end_time.nanos()).unwrap();
    writeln!(s, "events_processed: {}", out.sim.events_processed).unwrap();
    writeln!(s, "proc_clocks:").unwrap();
    for (pname, t) in &out.sim.proc_clocks {
        writeln!(s, "  {pname}: {}", t.nanos()).unwrap();
    }
    writeln!(s, "mailbox_backlog:").unwrap();
    for (pname, n) in &out.sim.mailbox_backlog {
        writeln!(s, "  {pname}: {n}").unwrap();
    }
    writeln!(s, "drops: {}", out.drops).unwrap();
    render_stats(&mut s, &out.stats);
    check_pin_readonly(name, &s, &format!("host_threads={HOST_THREADS}"));
}

#[test]
fn rse_kernel_clean_pin_survives_host_threading() {
    pin_harness_threaded(
        "kernel_clean",
        rse_kernel,
        &HarnessConfig::default(),
        Schedule { seed: 0, drop_per_mille: 0, unicast: false },
    );
}

#[test]
fn rse_kernel_lossy_pin_survives_host_threading() {
    pin_harness_threaded(
        "kernel_lossy",
        rse_kernel,
        &HarnessConfig::default(),
        Schedule { seed: 3, drop_per_mille: 250, unicast: true },
    );
}

#[test]
fn kitchen_sink_clean_pin_survives_host_threading() {
    pin_harness_threaded(
        "sink_clean",
        kitchen_sink,
        &HarnessConfig { nodes: 4, ..HarnessConfig::default() },
        Schedule { seed: 0, drop_per_mille: 0, unicast: false },
    );
}

/// Pin-file-independent invariance: the same workload at 1 vs 4 host
/// threads produces identical reports and statistics, compared directly in
/// memory. Catches drift even mid-regeneration when the pin files are in
/// flux.
#[test]
fn report_and_stats_identical_across_thread_counts() {
    let run = |threads: usize| {
        let mut cfg = RunConfig::optimized(PIN_NODES);
        cfg.cluster.host_threads = threads;
        let mut rt = Runtime::new(cfg);
        let bh = BarnesHut::setup(&mut rt, BhConfig::tiny());
        let stats = rt.stats();
        let result = Arc::new(Mutex::new(None));
        let slot = Arc::clone(&result);
        let report = rt
            .run(move |team| {
                *slot.lock() = Some(bh.run(team)?);
                Ok(())
            })
            .expect("run must complete");
        let r = result.lock().take().expect("result recorded");
        render(&report, &stats.snapshot(), &format!("{r:?}"))
    };
    let serial = run(1);
    let threaded = run(4);
    assert_eq!(serial, threaded, "host_threads=4 diverged from serial execution");
}

/// The zipfian load generator and the KV serving run are bit-identical
/// across host thread counts. The trace uses counter-based hashing (no
/// host RNG, no iteration-order state), so its hash must not move; and
/// the full rendered report — virtual end time, statistics, fingerprint,
/// tail latencies — must match byte for byte between the serial
/// coordinator and duty-handoff scheduling.
#[test]
fn kv_trace_and_run_identical_across_thread_counts() {
    use repseq_apps::kv::{KvConfig, KvStore};
    let run = |threads: usize| {
        let mut cfg = RunConfig::optimized(PIN_NODES);
        cfg.cluster.host_threads = threads;
        let mut rt = Runtime::new(cfg);
        let kv = KvStore::setup(&mut rt, KvConfig::tiny());
        let trace_hash = kv.trace_hash();
        let stats = rt.stats();
        let result = Arc::new(Mutex::new(None));
        let slot = Arc::clone(&result);
        let report = rt
            .run(move |team| {
                *slot.lock() = Some(kv.run(team)?);
                Ok(())
            })
            .expect("run must complete");
        let r = result.lock().take().expect("result recorded");
        (trace_hash, render(&report, &stats.snapshot(), &format!("{r:?}")))
    };
    let (hash1, serial) = run(1);
    let (hash2, threaded) = run(2);
    assert_eq!(hash1, hash2, "zipfian trace diverged across host thread counts");
    assert_eq!(serial, threaded, "KV run at host_threads=2 diverged from serial execution");
}
