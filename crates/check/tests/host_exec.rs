//! Host-execution invariance: every committed pin in `tests/pins/` must be
//! reproduced byte-for-byte under every host execution configuration — the
//! serial coordinator loop, duty-handoff scheduling, and window-parallel
//! conservative execution at 2 and 4 worker threads. The engine's
//! per-group event queues, the `(time, src_group, seq)` event keys and the
//! window barrier's deterministic merge make host parallelism invisible to
//! the simulation; this suite is the proof.
//!
//! These tests are pure consumers of the serial pins — they never
//! regenerate. Under `REPSEQ_PIN_REGEN=1` they stand down so the serial
//! `pins.rs` suite can rewrite the reference files without ordering races
//! between test binaries.

mod support;

use std::fmt::Write as _;
use std::sync::Arc;

use parking_lot::Mutex;
use proptest::prelude::*;
use repseq_apps::barnes_hut::{BarnesHut, BhConfig};
use repseq_apps::ilink::{Ilink, IlinkConfig};
use repseq_check::{
    kitchen_sink, rse_kernel, run_schedule_instrumented, Builder, HarnessConfig, Schedule,
};
use repseq_core::{RunConfig, Runtime};
use repseq_dsm::SeqExecMode;
use repseq_sim::HostExec;
use support::{check_pin_readonly, regenerating, render, render_stats};

const PIN_NODES: usize = 8;

/// The host-execution matrix every pin is replayed under: `(threads,
/// forced_mode)`. `None` is the automatic promotion (serial at 1 thread,
/// window-parallel at ≥ 2); duty-handoff no longer wins the promotion, so
/// it gets an explicit row to keep its resume machinery pinned too.
const MATRIX: &[(usize, Option<HostExec>)] =
    &[(1, None), (2, Some(HostExec::Handoff)), (2, None), (4, None)];

fn matrix_label(threads: usize, exec: Option<HostExec>) -> String {
    match exec {
        Some(e) => format!("host_threads={threads} host_exec={e:?}"),
        None => format!("host_threads={threads} host_exec=auto"),
    }
}

/// A non-serial run must actually engage its resume machinery: both the
/// duty-handoff chains and the window workers count their cross-process
/// resumes in `handoff_switches`.
fn assert_engaged(threads: usize, exec: Option<HostExec>, counters: &repseq_sim::ExecCounters) {
    if threads >= 2 {
        assert!(
            counters.handoff_switches > 0,
            "{} never engaged its scheduler: {counters:?}",
            matrix_label(threads, exec)
        );
    }
    if exec.is_none() && threads >= 2 {
        assert!(
            counters.windows > 0,
            "{} never opened a window: {counters:?}",
            matrix_label(threads, exec)
        );
    }
}

fn pin_bh_threaded(name: &str, cfg: &RunConfig) {
    if regenerating() {
        eprintln!("REPSEQ_PIN_REGEN=1: skipping threaded rerun of {name}");
        return;
    }
    for &(threads, exec) in MATRIX {
        let mut cfg = cfg.clone();
        cfg.cluster.host_threads = threads;
        cfg.cluster.host_exec = exec;
        let mut rt = Runtime::new(cfg);
        let bh = BarnesHut::setup(&mut rt, BhConfig::tiny());
        let stats = rt.stats();
        let result = Arc::new(Mutex::new(None));
        let slot = Arc::clone(&result);
        let report = rt
            .run(move |team| {
                *slot.lock() = Some(bh.run(team)?);
                Ok(())
            })
            .expect("threaded BH pin run must complete");
        assert_engaged(threads, exec, &report.exec);
        let r = result.lock().take().expect("BH result recorded");
        check_pin_readonly(
            name,
            &render(&report, &stats.snapshot(), &format!("{r:?}")),
            &matrix_label(threads, exec),
        );
    }
}

fn pin_ilink_threaded(name: &str, cfg: &RunConfig) {
    if regenerating() {
        eprintln!("REPSEQ_PIN_REGEN=1: skipping threaded rerun of {name}");
        return;
    }
    for &(threads, exec) in MATRIX {
        let mut cfg = cfg.clone();
        cfg.cluster.host_threads = threads;
        cfg.cluster.host_exec = exec;
        let mut rt = Runtime::new(cfg);
        let il = Ilink::setup(&mut rt, IlinkConfig::tiny());
        let stats = rt.stats();
        let result = Arc::new(Mutex::new(None));
        let slot = Arc::clone(&result);
        let report = rt
            .run(move |team| {
                *slot.lock() = Some(il.run(team)?);
                Ok(())
            })
            .expect("threaded Ilink pin run must complete");
        assert_engaged(threads, exec, &report.exec);
        let r = result.lock().take().expect("Ilink result recorded");
        check_pin_readonly(
            name,
            &render(&report, &stats.snapshot(), &format!("{r:?}")),
            &matrix_label(threads, exec),
        );
    }
}

#[test]
fn barnes_hut_master_only_pin_survives_host_threading() {
    pin_bh_threaded("bh_master_only", &RunConfig::original(PIN_NODES));
}

#[test]
fn barnes_hut_rse_pin_survives_host_threading() {
    pin_bh_threaded("bh_rse", &RunConfig::optimized(PIN_NODES));
}

#[test]
fn ilink_master_only_pin_survives_host_threading() {
    pin_ilink_threaded("ilink_master_only", &RunConfig::original(PIN_NODES));
}

#[test]
fn ilink_rse_pin_survives_host_threading() {
    pin_ilink_threaded("ilink_rse", &RunConfig::optimized(PIN_NODES));
}

fn pin_harness_threaded(name: &str, build: Builder, cfg: &HarnessConfig, sched: Schedule) {
    if regenerating() {
        eprintln!("REPSEQ_PIN_REGEN=1: skipping threaded rerun of {name}");
        return;
    }
    for &(threads, exec) in MATRIX {
        let cfg = HarnessConfig { host_threads: threads, host_exec: exec, ..*cfg };
        let out =
            run_schedule_instrumented(build, &cfg, sched, None).unwrap_or_else(|e| panic!("{e}"));
        let mut s = String::new();
        writeln!(s, "end_time_ns: {}", out.sim.end_time.nanos()).unwrap();
        writeln!(s, "events_processed: {}", out.sim.events_processed).unwrap();
        writeln!(s, "proc_clocks:").unwrap();
        for (pname, t) in &out.sim.proc_clocks {
            writeln!(s, "  {pname}: {}", t.nanos()).unwrap();
        }
        writeln!(s, "mailbox_backlog:").unwrap();
        for (pname, n) in &out.sim.mailbox_backlog {
            writeln!(s, "  {pname}: {n}").unwrap();
        }
        writeln!(s, "drops: {}", out.drops).unwrap();
        render_stats(&mut s, &out.stats);
        check_pin_readonly(name, &s, &matrix_label(threads, exec));
    }
}

#[test]
fn rse_kernel_clean_pin_survives_host_threading() {
    pin_harness_threaded(
        "kernel_clean",
        rse_kernel,
        &HarnessConfig::default(),
        Schedule { seed: 0, drop_per_mille: 0, unicast: false },
    );
}

#[test]
fn rse_kernel_lossy_pin_survives_host_threading() {
    pin_harness_threaded(
        "kernel_lossy",
        rse_kernel,
        &HarnessConfig::default(),
        Schedule { seed: 3, drop_per_mille: 250, unicast: true },
    );
}

#[test]
fn kitchen_sink_clean_pin_survives_host_threading() {
    pin_harness_threaded(
        "sink_clean",
        kitchen_sink,
        &HarnessConfig { nodes: 4, ..HarnessConfig::default() },
        Schedule { seed: 0, drop_per_mille: 0, unicast: false },
    );
}

/// Pin-file-independent invariance: the same workload across the whole
/// host-execution matrix produces identical reports and statistics,
/// compared directly in memory. Catches drift even mid-regeneration when
/// the pin files are in flux.
#[test]
fn report_and_stats_identical_across_thread_counts() {
    let run = |threads: usize, exec: Option<HostExec>| {
        let mut cfg = RunConfig::optimized(PIN_NODES);
        cfg.cluster.host_threads = threads;
        cfg.cluster.host_exec = exec;
        let mut rt = Runtime::new(cfg);
        let bh = BarnesHut::setup(&mut rt, BhConfig::tiny());
        let stats = rt.stats();
        let result = Arc::new(Mutex::new(None));
        let slot = Arc::clone(&result);
        let report = rt
            .run(move |team| {
                *slot.lock() = Some(bh.run(team)?);
                Ok(())
            })
            .expect("run must complete");
        let r = result.lock().take().expect("result recorded");
        render(&report, &stats.snapshot(), &format!("{r:?}"))
    };
    let serial = run(1, None);
    for &(threads, exec) in &MATRIX[1..] {
        let other = run(threads, exec);
        assert_eq!(serial, other, "{} diverged from serial execution", matrix_label(threads, exec));
    }
}

/// The zipfian load generator and the KV serving run are bit-identical
/// across the host-execution matrix. The trace uses counter-based hashing
/// (no host RNG, no iteration-order state), so its hash must not move; and
/// the full rendered report — virtual end time, statistics, fingerprint,
/// tail latencies — must match byte for byte between the serial
/// coordinator, duty-handoff and window-parallel execution.
#[test]
fn kv_trace_and_run_identical_across_thread_counts() {
    use repseq_apps::kv::{KvConfig, KvStore};
    let run = |threads: usize, exec: Option<HostExec>| {
        let mut cfg = RunConfig::optimized(PIN_NODES);
        cfg.cluster.host_threads = threads;
        cfg.cluster.host_exec = exec;
        let mut rt = Runtime::new(cfg);
        let kv = KvStore::setup(&mut rt, KvConfig::tiny());
        let trace_hash = kv.trace_hash();
        let stats = rt.stats();
        let result = Arc::new(Mutex::new(None));
        let slot = Arc::clone(&result);
        let report = rt
            .run(move |team| {
                *slot.lock() = Some(kv.run(team)?);
                Ok(())
            })
            .expect("run must complete");
        let r = result.lock().take().expect("result recorded");
        (trace_hash, render(&report, &stats.snapshot(), &format!("{r:?}")))
    };
    let (hash1, serial) = run(1, None);
    for &(threads, exec) in &MATRIX[1..] {
        let (hash2, other) = run(threads, exec);
        assert_eq!(hash1, hash2, "zipfian trace diverged across host thread counts");
        assert_eq!(
            serial,
            other,
            "KV run under {} diverged from serial execution",
            matrix_label(threads, exec)
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Torture-schedule invariance: across random loss seeds, drop rates
    /// and sequential-section strategies, the window-parallel engine must
    /// reproduce the serial coordinator's `SimFingerprint` *and* the full
    /// per-node `StatsSnapshot` exactly — on lossy schedules the §5.4.2
    /// recovery machinery runs, so this covers timeout wakeups, reply
    /// chains and out-of-band multicasts crossing window barriers.
    #[test]
    fn torture_schedules_are_window_invariant(
        (seed, rate_idx, strat_idx) in (0u64..1_000_000, 0usize..4, 0usize..3)
    ) {
        let sched = Schedule {
            seed,
            drop_per_mille: [0u32, 60, 150, 300][rate_idx],
            unicast: rate_idx % 2 == 1,
        };
        let seq_exec =
            [SeqExecMode::Rse, SeqExecMode::MasterOnly, SeqExecMode::MasterPush][strat_idx];
        let run = |threads: usize| {
            let cfg = HarnessConfig {
                seq_exec,
                host_threads: threads,
                ..HarnessConfig::default()
            };
            run_schedule_instrumented(rse_kernel, &cfg, sched, None)
                .unwrap_or_else(|e| panic!("schedule {sched:?} ({seq_exec:?}): {e}"))
        };
        let serial = run(1);
        let window = run(4);
        prop_assert_eq!(
            &serial.sim, &window.sim,
            "fingerprint diverged on {:?} ({:?})", sched, seq_exec
        );
        prop_assert_eq!(
            &serial.stats, &window.stats,
            "stats diverged on {:?} ({:?})", sched, seq_exec
        );
        prop_assert_eq!(serial.drops, window.drops);
    }
}
