//! Shared helpers for the pin test crates: canonical rendering of a run's
//! determinism-relevant residue and byte-exact comparison against the
//! committed pins under `tests/pins/`.
//!
//! Used by `pins.rs` (serial reference, owns regeneration) and
//! `host_exec.rs` (re-runs the same workloads under duty-handoff host
//! scheduling and holds them to the same bytes).
#![allow(dead_code)]

use std::fmt::Write as _;
use std::path::PathBuf;

use repseq_sim::SimReport;
use repseq_stats::StatsSnapshot;

/// Render a simulation report + statistics snapshot (+ optional
/// app-result debug string) as stable, human-diffable text.
pub fn render(report: &SimReport, stats: &StatsSnapshot, result: &str) -> String {
    let mut s = String::new();
    writeln!(s, "end_time_ns: {}", report.end_time.nanos()).unwrap();
    writeln!(s, "events_processed: {}", report.events_processed).unwrap();
    writeln!(s, "proc_clocks:").unwrap();
    for (name, t) in &report.proc_clocks {
        writeln!(s, "  {name}: {}", t.nanos()).unwrap();
    }
    writeln!(s, "mailbox_backlog:").unwrap();
    for (name, n) in &report.mailbox_backlog {
        writeln!(s, "  {name}: {n}").unwrap();
    }
    render_stats(&mut s, stats);
    writeln!(s, "result: {result}").unwrap();
    s
}

pub fn render_stats(s: &mut String, stats: &StatsSnapshot) {
    writeln!(s, "total_time_ns: {}", stats.total_time.nanos()).unwrap();
    writeln!(s, "seq_time_ns: {}", stats.seq_time().nanos()).unwrap();
    writeln!(s, "par_time_ns: {}", stats.par_time().nanos()).unwrap();
    for (i, node) in stats.nodes.iter().enumerate() {
        writeln!(s, "node {i}:").unwrap();
        for (j, sec) in node.sections.iter().enumerate() {
            writeln!(s, "  section {j}: {sec:?}").unwrap();
        }
    }
}

pub fn pin_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/pins").join(format!("{name}.pin"))
}

/// True when this invocation is regenerating the pins (the serial
/// reference in `pins.rs` writes them; everything else must stand down).
pub fn regenerating() -> bool {
    std::env::var("REPSEQ_PIN_REGEN").map(|v| v == "1").unwrap_or(false)
}

/// Compare `rendered` against the committed pin, or rewrite the pin when
/// `REPSEQ_PIN_REGEN=1`.
pub fn check_pin(name: &str, rendered: &str) {
    let path = pin_path(name);
    if regenerating() {
        std::fs::create_dir_all(path.parent().unwrap()).expect("pin dir");
        std::fs::write(&path, rendered).expect("pin write");
        eprintln!("regenerated pin {}", path.display());
        return;
    }
    let pinned = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing pin {} ({e}); run with REPSEQ_PIN_REGEN=1", name));
    assert_eq!(
        pinned,
        rendered,
        "fingerprint for `{name}` drifted from the pre-refactor pin \
         ({}). The pinned modes must stay bit-identical across refactors.",
        path.display()
    );
}

/// Compare `rendered` against the committed pin without ever rewriting it:
/// the parallel-host reruns are consumers of the serial reference, never
/// its source.
pub fn check_pin_readonly(name: &str, rendered: &str, what: &str) {
    let path = pin_path(name);
    let pinned = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing pin {} ({e}); regenerate via the serial pins first", name)
    });
    assert_eq!(
        pinned,
        rendered,
        "fingerprint for `{name}` under {what} diverged from the serial pin \
         ({}). Host threading must be invisible to the simulation.",
        path.display()
    );
}
