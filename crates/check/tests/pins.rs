//! Refactor-invariance pins: byte-exact fingerprints of the two
//! pre-existing sequential-section modes (`MasterOnly` and `Rse`),
//! captured at the commit *before* the layered decomposition of
//! `repseq-dsm` and committed under `tests/pins/`.
//!
//! Every pinned run renders the determinism-relevant residue of the
//! simulation — virtual end time, per-process clocks, kernel event
//! count, mailbox backlog, the full per-node per-section statistics
//! snapshot, and the computed application result — into a canonical
//! text form and compares it byte-for-byte against the committed pin.
//! Any drift in message counts, virtual timing, or numerics under the
//! pre-existing modes fails the suite, proving the refactor is
//! behaviour-preserving where it claims to be.
//!
//! Regenerate (only at a commit whose behaviour is the new reference):
//!
//! ```text
//! REPSEQ_PIN_REGEN=1 cargo test -p repseq-check --release --test pins
//! ```

mod support;

use std::fmt::Write as _;
use std::sync::Arc;

use parking_lot::Mutex;
use repseq_apps::barnes_hut::{BarnesHut, BhConfig};
use repseq_apps::ilink::{Ilink, IlinkConfig};
use repseq_check::{
    kitchen_sink, rse_kernel, run_schedule_instrumented, Builder, HarnessConfig, Schedule,
};
use repseq_core::{RunConfig, Runtime};
use support::{check_pin, render, render_stats};

const PIN_NODES: usize = 8;

// ---------------------------------------------------------------------
// Application pins: Barnes-Hut and Ilink under both pre-existing modes
// ---------------------------------------------------------------------

fn pin_bh(name: &str, cfg: RunConfig) {
    let mut rt = Runtime::new(cfg);
    let bh = BarnesHut::setup(&mut rt, BhConfig::tiny());
    let stats = rt.stats();
    let result = Arc::new(Mutex::new(None));
    let slot = Arc::clone(&result);
    let report = rt
        .run(move |team| {
            *slot.lock() = Some(bh.run(team)?);
            Ok(())
        })
        .expect("BH pin run must complete");
    let r = result.lock().take().expect("BH result recorded");
    check_pin(name, &render(&report, &stats.snapshot(), &format!("{r:?}")));
}

fn pin_ilink(name: &str, cfg: RunConfig) {
    let mut rt = Runtime::new(cfg);
    let il = Ilink::setup(&mut rt, IlinkConfig::tiny());
    let stats = rt.stats();
    let result = Arc::new(Mutex::new(None));
    let slot = Arc::clone(&result);
    let report = rt
        .run(move |team| {
            *slot.lock() = Some(il.run(team)?);
            Ok(())
        })
        .expect("Ilink pin run must complete");
    let r = result.lock().take().expect("Ilink result recorded");
    check_pin(name, &render(&report, &stats.snapshot(), &format!("{r:?}")));
}

#[test]
fn barnes_hut_master_only_matches_pre_refactor_pin() {
    pin_bh("bh_master_only", RunConfig::original(PIN_NODES));
}

#[test]
fn barnes_hut_rse_matches_pre_refactor_pin() {
    pin_bh("bh_rse", RunConfig::optimized(PIN_NODES));
}

#[test]
fn ilink_master_only_matches_pre_refactor_pin() {
    pin_ilink("ilink_master_only", RunConfig::original(PIN_NODES));
}

#[test]
fn ilink_rse_matches_pre_refactor_pin() {
    pin_ilink("ilink_rse", RunConfig::optimized(PIN_NODES));
}

// ---------------------------------------------------------------------
// Harness pins: the torture workloads through the oracle harness,
// clean and lossy, under the default (Rse) strategy
// ---------------------------------------------------------------------

fn pin_harness(name: &str, build: Builder, cfg: &HarnessConfig, sched: Schedule) {
    let out = run_schedule_instrumented(build, cfg, sched, None).unwrap_or_else(|e| panic!("{e}"));
    let mut s = String::new();
    writeln!(s, "end_time_ns: {}", out.sim.end_time.nanos()).unwrap();
    writeln!(s, "events_processed: {}", out.sim.events_processed).unwrap();
    writeln!(s, "proc_clocks:").unwrap();
    for (pname, t) in &out.sim.proc_clocks {
        writeln!(s, "  {pname}: {}", t.nanos()).unwrap();
    }
    writeln!(s, "mailbox_backlog:").unwrap();
    for (pname, n) in &out.sim.mailbox_backlog {
        writeln!(s, "  {pname}: {n}").unwrap();
    }
    writeln!(s, "drops: {}", out.drops).unwrap();
    render_stats(&mut s, &out.stats);
    check_pin(name, &s);
}

#[test]
fn rse_kernel_clean_matches_pre_refactor_pin() {
    pin_harness(
        "kernel_clean",
        rse_kernel,
        &HarnessConfig::default(),
        Schedule { seed: 0, drop_per_mille: 0, unicast: false },
    );
}

#[test]
fn rse_kernel_lossy_matches_pre_refactor_pin() {
    pin_harness(
        "kernel_lossy",
        rse_kernel,
        &HarnessConfig::default(),
        Schedule { seed: 3, drop_per_mille: 250, unicast: true },
    );
}

#[test]
fn kitchen_sink_clean_matches_pre_refactor_pin() {
    pin_harness(
        "sink_clean",
        kitchen_sink,
        &HarnessConfig { nodes: 4, ..HarnessConfig::default() },
        Schedule { seed: 0, drop_per_mille: 0, unicast: false },
    );
}
