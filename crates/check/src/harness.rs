//! The schedule-sweep torture harness: run a workload across a grid of
//! loss schedules, checking the coherence oracle and the protocol
//! invariants after every run, and producing a divergence report on the
//! first failure.

use std::sync::Arc;

use parking_lot::Mutex;
use repseq_dsm::{
    AppFn, Cluster, ClusterConfig, DsmNode, LaunchOutcome, PageId, RaceSink, SeqExecMode,
};
use repseq_net::LossConfig;
use repseq_sim::{Dur, SimTime, Stopped};
use repseq_stats::{Stats, StatsSnapshot};

use crate::oracle::{check_snapshots, DsmMem, Expected, RefMem, Snapshot};
use crate::race::{RaceDetector, RaceReport};
use crate::report;
use crate::workload::{Builder, Phase, Workload};

/// One point of the sweep grid: a loss seed, a drop rate and whether
/// unicast diff-protocol frames are lossy too.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Schedule {
    /// Loss-hash seed.
    pub seed: u64,
    /// Drop probability in 1/1000 units (0 = lossless run).
    pub drop_per_mille: u32,
    /// Also drop unicast diff-protocol frames.
    pub unicast: bool,
}

impl Schedule {
    fn loss(&self) -> Option<LossConfig> {
        if self.drop_per_mille == 0 {
            return None;
        }
        Some(LossConfig {
            drop_per_mille: self.drop_per_mille,
            seed: self.seed,
            unicast: self.unicast,
        })
    }
}

/// Cluster shape shared by every schedule of a sweep.
#[derive(Debug, Clone, Copy)]
pub struct HarnessConfig {
    /// Node count.
    pub nodes: usize,
    /// Recovery timeout (short, so lossy schedules actually reach the
    /// §5.4.2 recovery path within the test budget).
    pub rse_timeout: Dur,
    /// Fault injection: suppress every protection-generation bump so stale
    /// software-TLB entries survive protection revocations. A correct
    /// implementation MUST fail the oracle under this — it proves the
    /// generation counter is what keeps the TLB coherent.
    pub break_generation_bumps: bool,
    /// Which [`repseq_dsm::SeqExecStrategy`] the workload's sequential
    /// phases run under. The oracle and the invariant checks are
    /// strategy-agnostic, so the same sweep grid tortures every strategy.
    pub seq_exec: SeqExecMode,
    /// Host threads driving the simulation (see
    /// `ClusterConfig::host_threads`). Every fingerprint, oracle and pin in
    /// this crate must be bit-identical across values of this knob.
    pub host_threads: usize,
    /// Forced host execution mode (see `ClusterConfig::host_exec`): `None`
    /// auto-promotes ≥ 2 threads to window-parallel; `Some(mode)` pins the
    /// engine so the exec-mode matrix can cover duty-handoff explicitly.
    pub host_exec: Option<repseq_sim::HostExec>,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        HarnessConfig {
            nodes: 3,
            rse_timeout: Dur::from_millis(20),
            break_generation_bumps: false,
            seq_exec: SeqExecMode::Rse,
            host_threads: 1,
            host_exec: None,
        }
    }
}

/// What one passing schedule contributed to the sweep.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScheduleOutcome {
    /// Frames the loss injector dropped.
    pub drops: usize,
    /// Chain turns that completed despite missed predecessors, summed over
    /// nodes (> 0 means the gap-tolerant path ran).
    pub chain_holes: u64,
    /// Kernel events processed.
    pub events: u64,
}

/// Aggregate over a sweep; the torture tests assert on these to prove the
/// recovery machinery was actually exercised, not just survived.
#[derive(Debug, Clone, Copy, Default)]
pub struct SweepSummary {
    /// Schedules run.
    pub schedules: usize,
    /// Total dropped frames across all schedules.
    pub drops: usize,
    /// Total tolerated chain holes across all schedules.
    pub chain_holes: u64,
}

/// Everything one cluster run of a workload produced.
pub(crate) struct RunArtifacts {
    pub outcome: LaunchOutcome,
    pub snaps: Vec<Snapshot>,
    pub expected: Expected,
    pub name: &'static str,
    pub stats: StatsSnapshot,
}

/// The determinism-relevant residue of one run: everything the simulator
/// reported except the (optional, memory-hungry) trace. The
/// detector-invariance tests assert two of these — detector on vs off —
/// are equal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimFingerprint {
    /// Virtual end time of the run.
    pub end_time: SimTime,
    /// Final virtual clock of every process.
    pub proc_clocks: Vec<(String, SimTime)>,
    /// Kernel events processed.
    pub events_processed: u64,
    /// Undelivered messages at exit.
    pub mailbox_backlog: Vec<(String, usize)>,
}

/// What [`run_schedule_instrumented`] hands back: the simulation
/// fingerprint and stats snapshot (for invariance gating) plus the race
/// report when a detector was installed.
pub struct InstrumentedOutcome {
    /// Simulation fingerprint (virtual time, messages, backlog).
    pub sim: SimFingerprint,
    /// Full per-node, per-section statistics (messages, bytes, faults).
    pub stats: StatsSnapshot,
    /// Race report, if a detector was installed.
    pub races: Option<RaceReport>,
    /// Frames the loss injector dropped.
    pub drops: usize,
}

/// Replay the workload's phases on a single reference memory, recording
/// the audited pages' image after each phase.
fn replay_reference(w: &Workload, page_size: usize, n: usize) -> Expected {
    let mut m = RefMem::new(page_size);
    let mut out = Expected::new();
    for ph in &w.phases {
        match ph {
            Phase::Replicated(body) => body(&mut m).expect("reference replay cannot stop"),
            Phase::Parallel(body) => {
                for me in 0..n {
                    body(&mut m, me, n).expect("reference replay cannot stop");
                }
            }
        }
        out.push(w.audit.iter().map(|&p| (p, m.page_image(p))).collect());
    }
    out
}

fn take_snapshot(nd: &DsmNode, phase: usize, audit: &[PageId], coll: &Mutex<Vec<Snapshot>>) {
    let node = nd.node();
    let mut c = coll.lock();
    for &p in audit {
        if let Some(bytes) = nd.inspect_page(p) {
            c.push(Snapshot { phase, node, page: p, bytes });
        }
    }
}

/// Build a fresh cluster, run the workload once under `loss`, and collect
/// the per-checkpoint snapshots plus the launch outcome.
pub(crate) fn run_once(
    build: Builder,
    cfg: &HarnessConfig,
    loss: Option<LossConfig>,
    trace: bool,
    race: Option<Arc<dyn RaceSink>>,
) -> RunArtifacts {
    let n = cfg.nodes;
    let stats = Stats::new(n);
    let mut ccfg = ClusterConfig::paper(n);
    ccfg.net.loss = loss;
    ccfg.dsm.rse_timeout = cfg.rse_timeout;
    ccfg.dsm.tlb_break_generation_bumps = cfg.break_generation_bumps;
    ccfg.dsm.seq_exec = cfg.seq_exec;
    ccfg.host_threads = cfg.host_threads;
    ccfg.host_exec = cfg.host_exec;
    let mut cl = Cluster::new(ccfg, Arc::clone(&stats));
    cl.record_trace(trace);
    if let Some(sink) = race {
        cl.set_race_sink(sink);
    }
    let page_size = cl.config().dsm.page_size;
    let w = build(&mut cl, n);
    let expected = replay_reference(&w, page_size, n);
    let name = w.name;
    let audit: Arc<Vec<PageId>> = Arc::new(w.audit);
    let phases = w.phases;
    let collector: Arc<Mutex<Vec<Snapshot>>> = Arc::new(Mutex::new(Vec::new()));
    let coll_master = Arc::clone(&collector);
    let audit_master = Arc::clone(&audit);
    let master = move |node: DsmNode| -> Result<(), Stopped> {
        for (k, ph) in phases.iter().enumerate() {
            match ph {
                Phase::Replicated(body) => {
                    let body = Arc::clone(body);
                    let audit = Arc::clone(&audit_master);
                    let coll = Arc::clone(&coll_master);
                    node.run_sequential(move |nd| {
                        body(&mut DsmMem(nd))?;
                        take_snapshot(nd, k, &audit, &coll);
                        Ok(())
                    })?;
                }
                Phase::Parallel(body) => {
                    let body = Arc::clone(body);
                    let audit = Arc::clone(&audit_master);
                    let coll = Arc::clone(&coll_master);
                    node.run_parallel(move |nd| {
                        body(&mut DsmMem(nd), nd.node(), nd.n_nodes())?;
                        nd.barrier()?;
                        take_snapshot(nd, k, &audit, &coll);
                        Ok(())
                    })?;
                }
            }
        }
        node.shutdown_slaves()
    };
    let mut apps: Vec<AppFn> = vec![Box::new(master)];
    for _ in 1..n {
        apps.push(Box::new(|node: DsmNode| node.slave_loop()));
    }
    let outcome = cl.launch_inspect(apps);
    let snaps = std::mem::take(&mut *collector.lock());
    RunArtifacts { outcome, snaps, expected, name, stats: stats.snapshot() }
}

/// First violated invariant of a finished run, if any, as a one-paragraph
/// description for the failure report.
fn validate(art: &RunArtifacts) -> Option<String> {
    let report = match &art.outcome.result {
        Err(e) => return Some(format!("simulation failed: {e:?}")),
        Ok(r) => r,
    };
    for probe in &art.outcome.probes {
        if !probe.is_quiescent() {
            return Some(format!("node {} not quiescent after the run: {probe:?}", probe.node));
        }
    }
    let stuck: Vec<_> =
        report.mailbox_backlog.iter().filter(|(name, _)| name.starts_with("app")).collect();
    if !stuck.is_empty() {
        return Some(format!("undelivered application messages at exit: {stuck:?}"));
    }
    if let Some(v) = check_snapshots(&art.snaps, &art.expected) {
        return Some(format!(
            "coherence violation: node {} page {} byte {} is {:#04x}, reference says {:#04x} \
             (checkpoint after phase {})",
            v.node, v.page, v.offset, v.actual, v.expected, v.phase
        ));
    }
    None
}

/// Run one schedule of a workload. On success returns what it contributed
/// to the sweep; on any invariant or oracle failure, re-runs the schedule
/// and a lossless twin with kernel tracing enabled and returns the full
/// divergence report as the error.
pub fn run_schedule(
    build: Builder,
    cfg: &HarnessConfig,
    sched: Schedule,
) -> Result<ScheduleOutcome, String> {
    let art = run_once(build, cfg, sched.loss(), false, None);
    if let Some(why) = validate(&art) {
        // Deterministic engine: the traced re-runs reproduce the failure
        // and the clean twin exactly.
        let lossy = run_once(build, cfg, sched.loss(), true, None);
        let clean = run_once(build, cfg, None, true, None);
        return Err(report::render_failure(
            art.name,
            cfg,
            sched,
            &why,
            &lossy.outcome,
            &clean.outcome,
        ));
    }
    let report = art.outcome.result.as_ref().expect("validated runs have a report");
    Ok(ScheduleOutcome {
        drops: art.outcome.loss_events.len(),
        chain_holes: art.outcome.probes.iter().map(|p| p.chain_holes).sum(),
        events: report.events_processed,
    })
}

/// Run one schedule of a workload with an optional race detector
/// installed, validating the oracle and the protocol invariants exactly
/// like [`run_schedule`], and additionally return the simulation
/// fingerprint, the stats snapshot and (if a detector was given) the race
/// report. The detector-invariance tests run each schedule twice — with
/// and without a detector — and assert the fingerprints and snapshots are
/// bit-identical; the certification tests assert the report is clean.
pub fn run_schedule_instrumented(
    build: Builder,
    cfg: &HarnessConfig,
    sched: Schedule,
    detector: Option<Arc<RaceDetector>>,
) -> Result<InstrumentedOutcome, String> {
    let sink = detector.clone().map(|d| d as Arc<dyn RaceSink>);
    let art = run_once(build, cfg, sched.loss(), false, sink);
    if let Some(why) = validate(&art) {
        return Err(format!("instrumented schedule failed: {why}"));
    }
    let report = art.outcome.result.as_ref().expect("validated runs have a report");
    Ok(InstrumentedOutcome {
        sim: SimFingerprint {
            end_time: report.end_time,
            proc_clocks: report.proc_clocks.clone(),
            events_processed: report.events_processed,
            mailbox_backlog: report.mailbox_backlog.clone(),
        },
        stats: art.stats,
        races: detector.map(|d| d.report()),
        drops: art.outcome.loss_events.len(),
    })
}

/// Sweep a workload across `schedules`, panicking with the divergence
/// report on the first failure.
pub fn sweep(build: Builder, cfg: &HarnessConfig, schedules: &[Schedule]) -> SweepSummary {
    let mut sum = SweepSummary::default();
    for &s in schedules {
        match run_schedule(build, cfg, s) {
            Ok(o) => {
                sum.schedules += 1;
                sum.drops += o.drops;
                sum.chain_holes += o.chain_holes;
            }
            Err(report) => panic!("{report}"),
        }
    }
    sum
}

/// The cartesian schedule grid the torture tests use.
pub fn grid(seeds: std::ops::Range<u64>, rates: &[u32], unicast: &[bool]) -> Vec<Schedule> {
    let mut v = Vec::new();
    for seed in seeds {
        for &drop_per_mille in rates {
            for &unicast in unicast {
                v.push(Schedule { seed, drop_per_mille, unicast });
            }
        }
    }
    v
}
