//! `repseq-check::race` — a happens-before data-race detector for the LRC
//! substrate.
//!
//! The DSM runtime reports every application-side shared-memory access and
//! every synchronization event to an installed [`repseq_dsm::RaceSink`]
//! (see `Cluster::set_race_sink`). This module is the sink: it maintains
//! one vector clock per *performer* — the `n` node threads plus one extra
//! entity, the **replica**, a single logical thread that executes every
//! replicated sequential section on all nodes at once (§5.2) — derives the
//! happens-before relation from fork/join, barrier, lock and
//! replicated-entry/exit edges, and keeps a FastTrack-style shadow of the
//! last write and last reads per granule of shared memory. Two conflicting
//! accesses with incomparable clocks are a data race, reported with full
//! provenance: nodes, section labels, page/offset, and both clocks.
//!
//! The detector is purely observational. It runs on the host side of the
//! simulator's serialized event stream (one simulated process runs at a
//! time, so the stream order is consistent with simulated happens-before),
//! charges no virtual time, and sends no messages — a run with the
//! detector installed is bit-identical to the same run without it, which
//! `tests/races.rs` pins down.
//!
//! See `DESIGN.md` §6d for the HB relation and the replica model.

use std::collections::{HashMap, HashSet};
use std::fmt::Write as _;
use std::sync::Arc;

use parking_lot::Mutex;
use repseq_dsm::{AccessKind, PageId, RaceConfig, RaceSink, SyncEdge, Vc};
use repseq_stats::{host, NodeId};

/// One side of a reported race: who accessed, from where, and the clock
/// that failed to cover the other side.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessRecord {
    /// Node whose application process performed the access. For a
    /// replicated-section access this is the node observed executing the
    /// replica (provenance only; the logical performer is the replica).
    pub node: NodeId,
    /// True if the access happened inside a replicated sequential section
    /// (performed by the replica).
    pub replicated: bool,
    /// Section label in force at the access (`DsmNode::race_label`, or an
    /// automatic `phase@k` / `rse@k`).
    pub section: String,
    /// Read or write.
    pub kind: AccessKind,
    /// The performer's vector clock at the access (`n + 1` entries; the
    /// last is the replica's).
    pub clock: Vc,
}

/// A pair of concurrent conflicting accesses to the same granule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Race {
    /// Page containing the conflicting granule.
    pub page: PageId,
    /// Byte offset of the granule within the page.
    pub offset: usize,
    /// Virtual address of the granule.
    pub addr: u64,
    /// Shadow granularity in bytes.
    pub granule: usize,
    /// The earlier access (already in the shadow).
    pub first: AccessRecord,
    /// The later access (the one that tripped the check).
    pub second: AccessRecord,
    /// How many granule conflicts collapsed into this report (same page,
    /// same section pair, same access kinds).
    pub count: u64,
}

impl Race {
    fn dedup_key(&self) -> (PageId, NodeId, NodeId, String, String, u8, u8) {
        (
            self.page,
            self.first.node,
            self.second.node,
            self.first.section.clone(),
            self.second.section.clone(),
            kind_code(self.first.kind),
            kind_code(self.second.kind),
        )
    }
}

fn kind_code(k: AccessKind) -> u8 {
    match k {
        AccessKind::Read => 0,
        AccessKind::Write => 1,
    }
}

fn kind_name(k: AccessKind) -> &'static str {
    match k {
        AccessKind::Read => "read",
        AccessKind::Write => "write",
    }
}

/// Everything the detector found, snapshotted by [`RaceDetector::report`].
#[derive(Debug, Clone, Default)]
pub struct RaceReport {
    /// Distinct races, in detection order (deduplicated by page × section
    /// pair × access kinds; capped at `RaceConfig::max_reports`).
    pub races: Vec<Race>,
    /// Total unordered conflicting access pairs (including those collapsed
    /// into an existing report or dropped by the cap).
    pub races_found: u64,
    /// Shadow-granule checks performed.
    pub checks: u64,
    /// True if `max_reports` dropped distinct races.
    pub truncated: bool,
}

impl RaceReport {
    /// True if no race was found.
    pub fn is_clean(&self) -> bool {
        self.races_found == 0
    }

    /// Human-readable rendering, one paragraph per race.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "race report: {} race(s) across {} distinct site(s), {} checks{}",
            self.races_found,
            self.races.len(),
            self.checks,
            if self.truncated { " (report list truncated)" } else { "" }
        );
        for (i, r) in self.races.iter().enumerate() {
            let _ = writeln!(
                out,
                "  [{}] page {} offset {:#x} (addr {:#x}, granule {}B, ×{}):",
                i, r.page, r.offset, r.addr, r.granule, r.count
            );
            for (tag, a) in [("first", &r.first), ("second", &r.second)] {
                let _ = writeln!(
                    out,
                    "    {tag}: {} by node {}{} in \"{}\" at clock {:?}",
                    kind_name(a.kind),
                    a.node,
                    if a.replicated { " (replica)" } else { "" },
                    a.section,
                    a.clock
                );
            }
        }
        out
    }

    /// JSON rendering for CI artifacts (hand-rolled: the workspace has no
    /// serde).
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            s.replace('\\', "\\\\").replace('"', "\\\"")
        }
        fn clock_json(vc: &Vc) -> String {
            let entries: Vec<String> = (0..vc.len()).map(|q| vc.get(q).to_string()).collect();
            format!("[{}]", entries.join(","))
        }
        fn access_json(a: &AccessRecord) -> String {
            format!(
                "{{\"node\":{},\"replicated\":{},\"section\":\"{}\",\"kind\":\"{}\",\
                 \"clock\":{}}}",
                a.node,
                a.replicated,
                esc(&a.section),
                kind_name(a.kind),
                clock_json(&a.clock)
            )
        }
        let races: Vec<String> = self
            .races
            .iter()
            .map(|r| {
                format!(
                    "{{\"page\":{},\"offset\":{},\"addr\":{},\"granule\":{},\"count\":{},\
                     \"first\":{},\"second\":{}}}",
                    r.page,
                    r.offset,
                    r.addr,
                    r.granule,
                    r.count,
                    access_json(&r.first),
                    access_json(&r.second)
                )
            })
            .collect();
        format!(
            "{{\"schema_version\":1,\"races_found\":{},\"checks\":{},\"truncated\":{},\
             \"races\":[{}]}}",
            self.races_found,
            self.checks,
            self.truncated,
            races.join(",")
        )
    }
}

/// Last write to one shadow granule.
struct WriteShadow {
    clock: Arc<Vc>,
    /// Performer index (node id, or `n` for the replica).
    performer: usize,
    /// Node observed executing the access (provenance).
    node: NodeId,
    section: Arc<str>,
}

/// Last read of one shadow granule by one performer.
struct ReadShadow {
    clock: Arc<Vc>,
    node: NodeId,
    section: Arc<str>,
}

/// Shadow state of one granule of shared memory.
struct Granule {
    write: Option<WriteShadow>,
    /// Indexed by performer; entries are cleared by an ordered write.
    reads: Vec<Option<ReadShadow>>,
    read_count: usize,
}

/// One barrier (or RSE-exit-barrier) episode: clocks merge into `pending`
/// on arrival; the n-th arrival freezes the release clock every departure
/// merges. Episodes are indexed per node so back-to-back barriers cannot
/// be confused even though hook order interleaves across nodes.
#[derive(Default)]
struct Episode {
    pending: Vc,
    arrivals: usize,
    released: Option<Arc<Vc>>,
}

/// Per-node dynamic state.
struct NodeClock {
    clock: Arc<Vc>,
    in_rse: bool,
    section: Arc<str>,
    barrier_arrived: usize,
    barrier_departed: usize,
    rse_arrived: usize,
    rse_departed: usize,
}

struct Inner {
    n: usize,
    cfg: RaceConfig,
    nodes: Vec<NodeClock>,
    /// The replica's clock (performer index `n`).
    replica: Arc<Vc>,
    /// True between the first `RseEnter` of a section and its exit
    /// release.
    rse_open: bool,
    /// Section label for replica accesses.
    rse_section: Arc<str>,
    /// Fork sequence number (for automatic `phase@k` labels).
    fork_seq: u64,
    /// Master's clock at the last `ForkSend`, merged by each `ForkRecv`.
    pending_fork: Arc<Vc>,
    pending_fork_label: Arc<str>,
    /// Per-slave clock at `JoinSend`, merged by the matching `JoinRecv`.
    join_buf: Vec<Arc<Vc>>,
    /// Release clock of each lock.
    locks: HashMap<u32, Arc<Vc>>,
    barrier_eps: Vec<Episode>,
    rse_exit_eps: Vec<Episode>,
    shadow: HashMap<u64, Granule>,
    races: Vec<Race>,
    seen: HashSet<(PageId, NodeId, NodeId, String, String, u8, u8)>,
    races_found: u64,
    checks: u64,
    truncated: bool,
}

/// The happens-before race detector. Install on a cluster with
/// `Cluster::set_race_sink(Arc::new(RaceDetector::new(n, cfg)))`, run,
/// then collect [`RaceDetector::report`].
pub struct RaceDetector {
    inner: Mutex<Inner>,
}

impl RaceDetector {
    /// A detector for an `n`-node cluster.
    pub fn new(n: usize, cfg: RaceConfig) -> RaceDetector {
        assert!(n >= 1);
        assert!(cfg.granule.is_power_of_two() && cfg.granule >= 1);
        assert!(cfg.page_size.is_multiple_of(cfg.granule), "granule must divide the page size");
        let startup: Arc<str> = Arc::from("startup");
        RaceDetector {
            inner: Mutex::new(Inner {
                n,
                cfg,
                // Each performer starts in epoch 1 of its own component:
                // another clock covers an access only after an HB edge has
                // actually propagated the performer's epoch (with all-zero
                // clocks every access would look trivially ordered).
                nodes: (0..n)
                    .map(|i| {
                        let mut v = Vc::zero(n + 1);
                        v.set(i, 1);
                        NodeClock {
                            clock: Arc::new(v),
                            in_rse: false,
                            section: Arc::clone(&startup),
                            barrier_arrived: 0,
                            barrier_departed: 0,
                            rse_arrived: 0,
                            rse_departed: 0,
                        }
                    })
                    .collect(),
                replica: Arc::new({
                    let mut v = Vc::zero(n + 1);
                    v.set(n, 1);
                    v
                }),
                rse_open: false,
                rse_section: Arc::from("rse"),
                fork_seq: 0,
                pending_fork: Arc::new(Vc::zero(n + 1)),
                pending_fork_label: startup,
                join_buf: (0..n).map(|_| Arc::new(Vc::zero(n + 1))).collect(),
                locks: HashMap::new(),
                barrier_eps: Vec::new(),
                rse_exit_eps: Vec::new(),
                shadow: HashMap::new(),
                races: Vec::new(),
                seen: HashSet::new(),
                races_found: 0,
                checks: 0,
                truncated: false,
            }),
        }
    }

    /// Snapshot of everything found so far.
    pub fn report(&self) -> RaceReport {
        let inner = self.inner.lock();
        RaceReport {
            races: inner.races.clone(),
            races_found: inner.races_found,
            checks: inner.checks,
            truncated: inner.truncated,
        }
    }

    /// Total unordered conflicting access pairs found so far.
    pub fn race_count(&self) -> u64 {
        self.inner.lock().races_found
    }
}

impl RaceSink for RaceDetector {
    fn access(&self, node: NodeId, addr: u64, len: usize, kind: AccessKind) {
        self.inner.lock().access(node, addr, len, kind);
    }

    fn sync(&self, node: NodeId, edge: SyncEdge) {
        self.inner.lock().sync(node, edge);
    }
}

impl Inner {
    /// Clone-and-bump performer `p`'s entry of an `Arc`'d clock: the
    /// performer starts a new epoch, and every clock snapshot taken before
    /// the bump stays frozen in the shadow.
    fn bump(clock: &mut Arc<Vc>, p: usize) {
        let mut v = (**clock).clone();
        v.set(p, v.get(p) + 1);
        *clock = Arc::new(v);
    }

    /// Merge `other` into an `Arc`'d clock in place (copy-on-write).
    fn merge(clock: &mut Arc<Vc>, other: &Vc) {
        if other.dominated_by(clock) {
            return;
        }
        let mut v = (**clock).clone();
        v.merge(other);
        *clock = Arc::new(v);
    }

    fn sync(&mut self, node: NodeId, edge: SyncEdge) {
        let n = self.n;
        match edge {
            SyncEdge::Section { label } => {
                let label: Arc<str> = Arc::from(label);
                if self.nodes[node].in_rse {
                    self.rse_section = label;
                } else {
                    self.nodes[node].section = label;
                }
            }
            SyncEdge::ForkSend => {
                self.fork_seq += 1;
                self.pending_fork = Arc::clone(&self.nodes[node].clock);
                self.pending_fork_label = Arc::from(format!("phase@{}", self.fork_seq));
                self.nodes[node].section = Arc::clone(&self.pending_fork_label);
                Self::bump(&mut self.nodes[node].clock, node);
            }
            SyncEdge::ForkRecv => {
                let pending = Arc::clone(&self.pending_fork);
                Self::merge(&mut self.nodes[node].clock, &pending);
                self.nodes[node].section = Arc::clone(&self.pending_fork_label);
            }
            SyncEdge::JoinSend => {
                self.join_buf[node] = Arc::clone(&self.nodes[node].clock);
                Self::bump(&mut self.nodes[node].clock, node);
            }
            SyncEdge::JoinRecv { from } => {
                let j = Arc::clone(&self.join_buf[from]);
                Self::merge(&mut self.nodes[node].clock, &j);
            }
            SyncEdge::BarrierArrive => {
                let ep_idx = self.nodes[node].barrier_arrived;
                self.nodes[node].barrier_arrived += 1;
                if self.barrier_eps.len() <= ep_idx {
                    self.barrier_eps
                        .push(Episode { pending: Vc::zero(n + 1), ..Episode::default() });
                }
                let clock = Arc::clone(&self.nodes[node].clock);
                let ep = &mut self.barrier_eps[ep_idx];
                ep.pending.merge(&clock);
                ep.arrivals += 1;
                if ep.arrivals == n {
                    ep.released = Some(Arc::new(ep.pending.clone()));
                }
                Self::bump(&mut self.nodes[node].clock, node);
            }
            SyncEdge::BarrierDepart => {
                let ep_idx = self.nodes[node].barrier_departed;
                self.nodes[node].barrier_departed += 1;
                let released = self.barrier_eps[ep_idx]
                    .released
                    .as_ref()
                    .expect("barrier departed before all arrivals")
                    .clone();
                Self::merge(&mut self.nodes[node].clock, &released);
            }
            SyncEdge::LockRelease { lock } => {
                self.locks.insert(lock, Arc::clone(&self.nodes[node].clock));
                Self::bump(&mut self.nodes[node].clock, node);
            }
            SyncEdge::LockAcquire { lock } => {
                if let Some(rel) = self.locks.get(&lock).cloned() {
                    Self::merge(&mut self.nodes[node].clock, &rel);
                }
            }
            SyncEdge::RseEnter => {
                if !self.rse_open {
                    self.rse_open = true;
                    Self::bump(&mut self.replica, n);
                    self.rse_section = Arc::from(format!("rse@{}", self.fork_seq));
                }
                self.nodes[node].in_rse = true;
                let c = Arc::clone(&self.nodes[node].clock);
                Self::merge(&mut self.replica, &c);
            }
            SyncEdge::RseExitArrive => {
                self.nodes[node].in_rse = false;
                let ep_idx = self.nodes[node].rse_arrived;
                self.nodes[node].rse_arrived += 1;
                if self.rse_exit_eps.len() <= ep_idx {
                    self.rse_exit_eps
                        .push(Episode { pending: Vc::zero(n + 1), ..Episode::default() });
                }
                let clock = Arc::clone(&self.nodes[node].clock);
                let ep = &mut self.rse_exit_eps[ep_idx];
                ep.pending.merge(&clock);
                ep.arrivals += 1;
                if ep.arrivals == n {
                    // Every node finished the body, so the replica's clock
                    // is final for this section: the exit release covers
                    // all replicated writes.
                    ep.pending.merge(&self.replica);
                    ep.released = Some(Arc::new(ep.pending.clone()));
                    self.rse_open = false;
                }
                Self::bump(&mut self.nodes[node].clock, node);
            }
            SyncEdge::RseExitDepart => {
                let ep_idx = self.nodes[node].rse_departed;
                self.nodes[node].rse_departed += 1;
                let released = self.rse_exit_eps[ep_idx]
                    .released
                    .as_ref()
                    .expect("replicated section departed before all arrivals")
                    .clone();
                Self::merge(&mut self.nodes[node].clock, &released);
            }
        }
    }

    fn access(&mut self, node: NodeId, addr: u64, len: usize, kind: AccessKind) {
        if len == 0 {
            return;
        }
        let (performer, clock, section) = if self.nodes[node].in_rse {
            (self.n, Arc::clone(&self.replica), Arc::clone(&self.rse_section))
        } else {
            (node, Arc::clone(&self.nodes[node].clock), Arc::clone(&self.nodes[node].section))
        };
        let g = self.cfg.granule as u64;
        let first = addr / g;
        let last = (addr + len as u64 - 1) / g;
        for gi in first..=last {
            self.touch(gi, node, performer, &clock, &section, kind);
        }
    }

    /// Check one granule against the shadow and update it.
    #[allow(clippy::too_many_arguments)]
    fn touch(
        &mut self,
        gi: u64,
        node: NodeId,
        performer: usize,
        clock: &Arc<Vc>,
        section: &Arc<str>,
        kind: AccessKind,
    ) {
        let n = self.n;
        let mut checks = 0u64;
        let mut found: Option<AccessRecord> = None;
        {
            let granule = self.shadow.entry(gi).or_insert_with(|| Granule {
                write: None,
                reads: (0..n + 1).map(|_| None).collect(),
                read_count: 0,
            });

            // Same-epoch fast path: a repeated access by the same performer
            // with an unchanged clock was already checked (reads stay valid
            // because any intervening write clears the read shadows; writes
            // only skip while no reads have been stored since).
            match kind {
                AccessKind::Read => {
                    if let Some(r) = &granule.reads[performer] {
                        if Arc::ptr_eq(&r.clock, clock) {
                            return;
                        }
                    }
                }
                AccessKind::Write => {
                    if granule.read_count == 0 {
                        if let Some(w) = &granule.write {
                            if w.performer == performer && Arc::ptr_eq(&w.clock, clock) {
                                return;
                            }
                        }
                    }
                }
            }

            // Write-write and read-after-write: ordered iff the current
            // clock covers the writer's epoch.
            if let Some(w) = &granule.write {
                checks += 1;
                host::race_check();
                if w.performer != performer && clock.get(w.performer) < w.clock.get(w.performer) {
                    found = Some(AccessRecord {
                        node: w.node,
                        replicated: w.performer == n,
                        section: w.section.to_string(),
                        kind: AccessKind::Write,
                        clock: (*w.clock).clone(),
                    });
                }
            }
            // Write-after-read: every stored read must be covered.
            if kind == AccessKind::Write && found.is_none() && granule.read_count > 0 {
                for (q, slot) in granule.reads.iter().enumerate() {
                    let Some(r) = slot else { continue };
                    if q == performer {
                        continue;
                    }
                    checks += 1;
                    host::race_check();
                    if clock.get(q) < r.clock.get(q) {
                        found = Some(AccessRecord {
                            node: r.node,
                            replicated: q == n,
                            section: r.section.to_string(),
                            kind: AccessKind::Read,
                            clock: (*r.clock).clone(),
                        });
                        break;
                    }
                }
            }

            // Update the shadow.
            match kind {
                AccessKind::Read => {
                    if granule.reads[performer].is_none() {
                        granule.read_count += 1;
                    }
                    granule.reads[performer] = Some(ReadShadow {
                        clock: Arc::clone(clock),
                        node,
                        section: Arc::clone(section),
                    });
                }
                AccessKind::Write => {
                    granule.write = Some(WriteShadow {
                        clock: Arc::clone(clock),
                        performer,
                        node,
                        section: Arc::clone(section),
                    });
                    if granule.read_count > 0 {
                        for slot in granule.reads.iter_mut() {
                            *slot = None;
                        }
                        granule.read_count = 0;
                    }
                }
            }
        }
        self.checks += checks;
        if let Some(first) = found {
            self.record_race(gi, node, performer, clock, section, kind, first);
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn record_race(
        &mut self,
        gi: u64,
        node: NodeId,
        performer: usize,
        clock: &Arc<Vc>,
        section: &Arc<str>,
        kind: AccessKind,
        first: AccessRecord,
    ) {
        self.races_found += 1;
        host::race_found();
        let g = self.cfg.granule as u64;
        let addr = gi * g;
        let page = (addr / self.cfg.page_size as u64) as PageId;
        let offset = (addr % self.cfg.page_size as u64) as usize;
        let race = Race {
            page,
            offset,
            addr,
            granule: self.cfg.granule,
            first,
            second: AccessRecord {
                node,
                replicated: performer == self.n,
                section: section.to_string(),
                kind,
                clock: (**clock).clone(),
            },
            count: 1,
        };
        let key = race.dedup_key();
        if self.seen.contains(&key) {
            if let Some(existing) = self.races.iter_mut().find(|r| r.dedup_key() == key) {
                existing.count += 1;
            }
            return;
        }
        if self.races.len() >= self.cfg.max_reports {
            self.truncated = true;
            return;
        }
        self.seen.insert(key);
        self.races.push(race);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn det(n: usize) -> RaceDetector {
        RaceDetector::new(n, RaceConfig::default())
    }

    /// Unsynchronized write/write on two nodes is a race; the same pair
    /// ordered through fork/join is not.
    #[test]
    fn fork_join_orders_accesses() {
        let d = det(2);
        // Master writes before the fork; slave writes after ForkRecv.
        d.access(0, 0x1000, 8, AccessKind::Write);
        d.sync(0, SyncEdge::ForkSend);
        d.sync(1, SyncEdge::ForkRecv);
        d.access(1, 0x1000, 8, AccessKind::Write);
        assert_eq!(d.race_count(), 0);
        // Slave joins; master reads after JoinRecv: ordered.
        d.sync(1, SyncEdge::JoinSend);
        d.sync(0, SyncEdge::JoinRecv { from: 1 });
        d.access(0, 0x1000, 8, AccessKind::Read);
        assert_eq!(d.race_count(), 0);
    }

    /// Master writing *after* the fork races with a slave's read of the
    /// same word (the straggler pattern).
    #[test]
    fn post_fork_master_write_races_with_slave_read() {
        let d = det(2);
        d.sync(0, SyncEdge::ForkSend);
        d.sync(1, SyncEdge::ForkRecv);
        d.access(1, 0x2000, 8, AccessKind::Read);
        d.access(0, 0x2000, 8, AccessKind::Write);
        assert_eq!(d.race_count(), 1);
        let rep = d.report();
        assert_eq!(rep.races.len(), 1);
        assert_eq!(rep.races[0].page, 2);
        assert_eq!(rep.races[0].first.kind, AccessKind::Read);
        assert_eq!(rep.races[0].second.kind, AccessKind::Write);
    }

    /// A barrier between conflicting accesses removes the race.
    #[test]
    fn barrier_orders_accesses() {
        let d = det(2);
        d.sync(0, SyncEdge::ForkSend);
        d.sync(1, SyncEdge::ForkRecv);
        d.access(0, 0x3000, 8, AccessKind::Write);
        d.sync(0, SyncEdge::BarrierArrive);
        d.sync(1, SyncEdge::BarrierArrive);
        d.sync(0, SyncEdge::BarrierDepart);
        d.sync(1, SyncEdge::BarrierDepart);
        d.access(1, 0x3000, 8, AccessKind::Read);
        assert_eq!(d.race_count(), 0);
    }

    /// Lock release/acquire orders a read-modify-write; dropping the lock
    /// edges makes it race.
    #[test]
    fn lock_edges_order_rmw() {
        let d = det(2);
        d.sync(0, SyncEdge::ForkSend);
        d.sync(1, SyncEdge::ForkRecv);
        d.sync(0, SyncEdge::LockAcquire { lock: 9 });
        d.access(0, 0x4000, 8, AccessKind::Read);
        d.access(0, 0x4000, 8, AccessKind::Write);
        d.sync(0, SyncEdge::LockRelease { lock: 9 });
        d.sync(1, SyncEdge::LockAcquire { lock: 9 });
        d.access(1, 0x4000, 8, AccessKind::Read);
        d.access(1, 0x4000, 8, AccessKind::Write);
        d.sync(1, SyncEdge::LockRelease { lock: 9 });
        assert_eq!(d.race_count(), 0);

        let d = det(2);
        d.sync(0, SyncEdge::ForkSend);
        d.sync(1, SyncEdge::ForkRecv);
        d.access(0, 0x4000, 8, AccessKind::Write);
        d.access(1, 0x4000, 8, AccessKind::Write);
        assert_eq!(d.race_count(), 1);
    }

    /// Replicated-section accesses on different nodes are the same logical
    /// performer (the replica): no race among themselves, and the exit
    /// barrier orders them before later parallel reads.
    #[test]
    fn replica_is_one_performer() {
        let d = det(2);
        d.sync(0, SyncEdge::ForkSend);
        d.sync(0, SyncEdge::RseEnter);
        d.sync(1, SyncEdge::ForkRecv);
        d.sync(1, SyncEdge::RseEnter);
        // Both nodes execute the replicated write.
        d.access(0, 0x5000, 8, AccessKind::Write);
        d.access(1, 0x5000, 8, AccessKind::Write);
        assert_eq!(d.race_count(), 0, "replica copies must not race with each other");
        d.sync(0, SyncEdge::RseExitArrive);
        d.sync(1, SyncEdge::RseExitArrive);
        d.sync(0, SyncEdge::RseExitDepart);
        d.sync(1, SyncEdge::RseExitDepart);
        d.access(1, 0x5000, 8, AccessKind::Read);
        assert_eq!(d.race_count(), 0, "exit barrier orders replicated writes");
    }

    /// A straggler that missed the replicated section races with the
    /// replica's write.
    #[test]
    fn replica_write_races_with_unsynchronized_reader() {
        let d = det(3);
        d.sync(0, SyncEdge::ForkSend);
        d.sync(1, SyncEdge::ForkRecv);
        // Node 2 never saw the fork (straggler in an earlier phase).
        d.access(2, 0x6000, 8, AccessKind::Read);
        d.sync(0, SyncEdge::RseEnter);
        d.sync(1, SyncEdge::RseEnter);
        d.access(0, 0x6000, 8, AccessKind::Write);
        assert_eq!(d.race_count(), 1);
        let rep = d.report();
        assert!(rep.races[0].second.replicated);
        assert_eq!(rep.races[0].first.node, 2);
    }

    /// Section labels flow into the report.
    #[test]
    fn labels_reach_reports() {
        let d = det(2);
        d.sync(0, SyncEdge::ForkSend);
        d.sync(1, SyncEdge::ForkRecv);
        d.sync(0, SyncEdge::Section { label: "fixture::writer" });
        d.sync(1, SyncEdge::Section { label: "fixture::reader" });
        d.access(1, 0x7000, 8, AccessKind::Read);
        d.access(0, 0x7000, 8, AccessKind::Write);
        let rep = d.report();
        assert_eq!(rep.races.len(), 1);
        assert_eq!(rep.races[0].first.section, "fixture::reader");
        assert_eq!(rep.races[0].second.section, "fixture::writer");
        let json = rep.to_json();
        assert!(json.contains("\"fixture::reader\""));
        assert!(json.contains("\"schema_version\":1"));
    }

    /// Identical races collapse into one report with a count.
    #[test]
    fn dedup_collapses_repeats() {
        let d = det(2);
        d.sync(0, SyncEdge::ForkSend);
        d.sync(1, SyncEdge::ForkRecv);
        for k in 0..4 {
            d.access(1, 0x8000 + k * 8, 8, AccessKind::Read);
            d.access(0, 0x8000 + k * 8, 8, AccessKind::Write);
        }
        let rep = d.report();
        assert_eq!(rep.races_found, 4);
        assert_eq!(rep.races.len(), 1);
        assert_eq!(rep.races[0].count, 4);
    }
}
