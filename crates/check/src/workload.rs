//! Torture workloads: phase lists written against [`Mem`] so the harness
//! can run them both on the DSM cluster and on the reference memory.

use std::sync::Arc;

use repseq_dsm::{Cluster, PageId, ShArray};
use repseq_sim::Stopped;

use crate::oracle::Mem;

/// A replicated sequential body: runs identically on every node. Must not
/// branch on node identity — the reference replays it exactly once.
pub type RepBody = Arc<dyn Fn(&mut dyn Mem) -> Result<(), Stopped> + Send + Sync>;

/// A parallel body, given `(mem, me, n)`. The harness appends a barrier
/// after it, so its checkpoint sees every node's writes. The reference
/// replays the bodies sequentially in node order, so cross-node effects
/// must be commutative (disjoint blocks, or lock-protected accumulation).
pub type ParBody = Arc<dyn Fn(&mut dyn Mem, usize, usize) -> Result<(), Stopped> + Send + Sync>;

/// One oracle-checkpointed phase of a workload.
pub enum Phase {
    /// A replicated sequential section (`run_replicated`); checkpoint at
    /// the end of the body, before the exit barrier.
    Replicated(RepBody),
    /// A parallel section (`run_parallel`); the harness runs the body, a
    /// barrier, then the checkpoint.
    Parallel(ParBody),
}

/// A workload instance: its phases plus the shared pages the oracle audits.
/// Built against a concrete [`Cluster`] so the bodies capture real heap
/// addresses; allocation is deterministic, so rebuilding against a fresh
/// cluster yields identical addresses.
pub struct Workload {
    /// Display name for reports.
    pub name: &'static str,
    /// The phase list, run in order.
    pub phases: Vec<Phase>,
    /// Pages compared against the reference at every checkpoint.
    pub audit: Vec<PageId>,
}

/// A workload constructor the harness can re-invoke per schedule.
pub type Builder = fn(&mut Cluster, usize) -> Workload;

fn audit_of<T: repseq_dsm::Pod>(arr: ShArray<T>, page_size: usize) -> Vec<PageId> {
    let (a, b) = arr.page_span(page_size);
    (a..=b).collect()
}

/// The dedicated RSE-heavy kernel: each timestep, every node rewrites its
/// page of `data` in parallel, then a replicated section reads *all* of
/// `data` (n-1 invalid pages per node → forwarded requests, reply chains,
/// null acks on every timestep) and rewrites the `tree` pages from the
/// running sum. This is the §5.4.2 machinery at its densest.
pub fn rse_kernel(cl: &mut Cluster, n: usize) -> Workload {
    let page_size = cl.config().dsm.page_size;
    let per_page = page_size / 8;
    let data: ShArray<u64> = cl.alloc_array_page_aligned(n * per_page);
    let tree: ShArray<u64> = cl.alloc_array_page_aligned(2 * per_page);
    let mut phases = Vec::new();
    for t in 0..2u64 {
        let chunk = data.len() / n;
        phases.push(Phase::Parallel(Arc::new(move |m: &mut dyn Mem, me: usize, _n: usize| {
            for k in me * chunk..(me + 1) * chunk {
                let prior = if t == 0 { 0 } else { m.ld(data.addr(k))? };
                m.st(data.addr(k), prior ^ (k as u64 * 31 + t * 7 + 1))?;
            }
            m.charge_us(5);
            Ok(())
        }) as ParBody));
        phases.push(Phase::Replicated(Arc::new(move |m: &mut dyn Mem| {
            let mut s = 0u64;
            for k in 0..data.len() {
                s = s.wrapping_add(m.ld(data.addr(k))?);
            }
            for j in 0..tree.len() {
                m.st(tree.addr(j), s.wrapping_mul(j as u64 + 1).wrapping_add(t))?;
            }
            Ok(())
        }) as RepBody));
    }
    let mut audit = audit_of(data, page_size);
    audit.extend(audit_of(tree, page_size));
    Workload { name: "rse_kernel", phases, audit }
}

/// The full-stack mix (the shape of `tests/full_stack.rs`'s kitchen sink):
/// replicated init, block-parallel update with a lock-protected ticket,
/// a neighbour-reading phase, a replicated checksum, and a cyclic update.
pub fn kitchen_sink(cl: &mut Cluster, n: usize) -> Workload {
    let page_size = cl.config().dsm.page_size;
    let per_page = page_size / 8;
    let grid: ShArray<u64> = cl.alloc_array_page_aligned(n * per_page);
    let ticket: ShArray<u64> = cl.alloc_array_page_aligned(1);
    let sums: ShArray<u64> = cl.alloc_array_page_aligned(n);
    let mut phases = Vec::new();
    // Replicated init.
    phases.push(Phase::Replicated(Arc::new(move |m: &mut dyn Mem| {
        for i in 0..grid.len() {
            m.st(grid.addr(i), i as u64 * 3 + 1)?;
        }
        m.st(ticket.addr(0), 0)
    }) as RepBody));
    // Block-parallel doubling plus a lock-protected ticket counter.
    let chunk = grid.len() / n;
    phases.push(Phase::Parallel(Arc::new(move |m: &mut dyn Mem, me: usize, _n: usize| {
        for i in me * chunk..(me + 1) * chunk {
            let v = m.ld(grid.addr(i))?;
            m.st(grid.addr(i), v * 2)?;
        }
        m.lock(9)?;
        let t = m.ld(ticket.addr(0))?;
        m.charge_us(3);
        m.st(ticket.addr(0), t + 1)?;
        m.unlock(9)
    }) as ParBody));
    // Each node folds its right neighbour's block into a per-node slot
    // (reads cross-block data written in the previous phase).
    phases.push(Phase::Parallel(Arc::new(move |m: &mut dyn Mem, me: usize, n: usize| {
        let other = (me + 1) % n;
        let mut s = 0u64;
        for i in other * chunk..(other + 1) * chunk {
            s = s.wrapping_add(m.ld(grid.addr(i))?);
        }
        m.st(sums.addr(me), s)
    }) as ParBody));
    // Replicated checksum over everything.
    phases.push(Phase::Replicated(Arc::new(move |m: &mut dyn Mem| {
        let mut s = m.ld(ticket.addr(0))?;
        for i in 0..n {
            s = s.wrapping_add(m.ld(sums.addr(i))?);
        }
        for i in 0..grid.len() {
            s = s.wrapping_add(m.ld(grid.addr(i))?);
        }
        m.st(sums.addr(0), s)
    }) as RepBody));
    // Cyclic update: node `me` owns every n-th element.
    phases.push(Phase::Parallel(Arc::new(move |m: &mut dyn Mem, me: usize, n: usize| {
        let mut i = me;
        while i < grid.len() {
            let v = m.ld(grid.addr(i))?;
            m.st(grid.addr(i), v + 1)?;
            i += n;
        }
        Ok(())
    }) as ParBody));
    let mut audit = audit_of(grid, page_size);
    audit.extend(audit_of(ticket, page_size));
    audit.extend(audit_of(sums, page_size));
    audit.sort_unstable();
    audit.dedup();
    Workload { name: "kitchen_sink", phases, audit }
}

/// The KV serving loop as a torture workload: a miniature of
/// `repseq_apps::kv` phrased over [`Mem`] so the oracle and the race
/// certifier cover the serving shape — per-shard replicated write
/// sections applying a zipfian batch's updates, alternating with a
/// parallel phase where every node serves the batch's reads cyclically
/// and folds what it saw into a per-node slot. Key→page placement, value
/// derivation, and the trace generator are the real ones from the apps
/// crate, so a divergence here indicts the serving path itself.
pub fn kv_serving(cl: &mut Cluster, _n: usize) -> Workload {
    use repseq_apps::kv::{splitmix64, trace, Layout};

    let page_size = cl.config().dsm.page_size;
    let per_page = page_size / 8;
    // One page per shard: keys_per_shard * record_slots == per_page.
    let record_slots = 8usize;
    let n_shards = 4usize;
    let n_keys = n_shards * per_page / record_slots;
    let lay = Layout::new(n_keys, n_shards);
    let seed = 0x5eed_2001u64;
    let (reqs, _) = trace::generate(seed, 64, n_keys, 0.99, 700, 1_000_000.0);
    let batch = 32usize;

    let table: ShArray<u64> = cl.alloc_array_page_aligned(n_keys * record_slots);
    let served: ShArray<u64> = cl.alloc_array_page_aligned(per_page);
    let mut phases = Vec::new();
    for (b, chunk) in reqs.chunks(batch).enumerate() {
        // The batch's writes, grouped by shard, applied in one replicated
        // section per touched shard (the app's per-shard write sections).
        for s in 0..n_shards {
            let writes: Vec<(usize, u64)> = chunk
                .iter()
                .enumerate()
                .filter(|(_, r)| r.write && lay.shard_of(r.key as usize) == s)
                .map(|(i, r)| (r.key as usize, (b * batch + i) as u64))
                .collect();
            if writes.is_empty() {
                continue;
            }
            let writes = Arc::new(writes);
            phases.push(Phase::Replicated(Arc::new(move |m: &mut dyn Mem| {
                for &(key, write_seq) in writes.iter() {
                    let val = splitmix64(seed ^ ((key as u64) << 24) ^ write_seq);
                    let base = lay.flat(key) * record_slots;
                    for j in 0..record_slots {
                        m.st(table.addr(base + j), splitmix64(val ^ j as u64))?;
                    }
                }
                Ok(())
            }) as RepBody));
        }
        // Cyclic read serving: node `me` takes every n-th read and XORs
        // the record it observed into its own slot (disjoint per node, so
        // the reference's sequential replay commutes).
        let reads: Vec<usize> = chunk.iter().filter(|r| !r.write).map(|r| r.key as usize).collect();
        let reads = Arc::new(reads);
        phases.push(Phase::Parallel(Arc::new(move |m: &mut dyn Mem, me: usize, n: usize| {
            let mut fold = m.ld(served.addr(me))?;
            for (i, &key) in reads.iter().enumerate() {
                if i % n != me {
                    continue;
                }
                let base = lay.flat(key) * record_slots;
                for j in 0..record_slots {
                    fold ^= m.ld(table.addr(base + j))?.rotate_left(j as u32);
                }
            }
            m.st(served.addr(me), fold)
        }) as ParBody));
    }
    let mut audit = audit_of(table, page_size);
    audit.extend(audit_of(served, page_size));
    audit.sort_unstable();
    audit.dedup();
    Workload { name: "kv_serving", phases, audit }
}
