//! The coherence oracle: a flat single-copy reference memory, a trait that
//! lets workload bodies run unchanged on it and on the DSM, and the
//! snapshot comparison.
//!
//! ## Why the comparison is sound where we take it
//!
//! The DSM is lazy-invalidate: a page may legitimately hold stale data
//! while its owner's write notice has not yet reached this node. The oracle
//! therefore compares **only valid pages**, and only at the two points
//! where validity implies coherence:
//!
//! * **replicated-section exit**: every node has executed the same
//!   deterministic body, so every page the body touched holds the same
//!   bytes everywhere, and a valid untouched page was coherent at entry
//!   (the fork's records invalidated everything stale);
//! * **immediately after a barrier**: the departure message carries every
//!   other node's interval records, so anything written elsewhere has been
//!   invalidated here — what remains valid is current.
//!
//! Anywhere else a valid-but-stale page is correct DSM behaviour, not a
//! bug, and comparing there would produce false alarms.

use std::collections::BTreeMap;

use repseq_dsm::{DsmNode, PageId};
use repseq_sim::{Dur, Stopped};

/// Shared-memory operations a workload body is allowed to use, implemented
/// by both the DSM ([`DsmMem`]) and the reference memory ([`RefMem`]).
///
/// Bodies written against this trait must leave memory in a
/// schedule-independent state: replicated bodies may not branch on node
/// identity, and parallel bodies may combine lock-protected reads into
/// writes only commutatively (the reference replays nodes sequentially in
/// id order).
pub trait Mem {
    /// Load a shared `u64`.
    fn ld(&mut self, addr: u64) -> Result<u64, Stopped>;
    /// Store a shared `u64`.
    fn st(&mut self, addr: u64, v: u64) -> Result<(), Stopped>;
    /// Acquire lock `l` (no-op on the reference: replay is sequential).
    fn lock(&mut self, l: u32) -> Result<(), Stopped>;
    /// Release lock `l`.
    fn unlock(&mut self, l: u32) -> Result<(), Stopped>;
    /// Account for local compute time (no-op on the reference).
    fn charge_us(&mut self, us: u64);
}

/// The DSM side of [`Mem`]: every access goes through the software MMU and
/// can fault, fetch diffs, and block.
pub struct DsmMem<'a>(pub &'a DsmNode);

impl Mem for DsmMem<'_> {
    fn ld(&mut self, addr: u64) -> Result<u64, Stopped> {
        self.0.read::<u64>(addr)
    }
    fn st(&mut self, addr: u64, v: u64) -> Result<(), Stopped> {
        self.0.write::<u64>(addr, v)
    }
    fn lock(&mut self, l: u32) -> Result<(), Stopped> {
        self.0.lock(l)
    }
    fn unlock(&mut self, l: u32) -> Result<(), Stopped> {
        self.0.unlock(l)
    }
    fn charge_us(&mut self, us: u64) {
        self.0.charge(Dur::from_micros(us));
    }
}

/// The single-copy reference memory: sparse zero-initialized pages, the
/// same little-endian encoding the DSM's `Pod` layer uses. There is no
/// coherence protocol to get wrong here — whatever this holds after a
/// replay is the ground truth.
pub struct RefMem {
    page_size: usize,
    pages: BTreeMap<PageId, Vec<u8>>,
}

impl RefMem {
    /// An empty (all-zero) reference memory.
    pub fn new(page_size: usize) -> RefMem {
        RefMem { page_size, pages: BTreeMap::new() }
    }

    /// The current image of page `p` (zeros if never written).
    pub fn page_image(&self, p: PageId) -> Vec<u8> {
        self.pages.get(&p).cloned().unwrap_or_else(|| vec![0u8; self.page_size])
    }

    fn byte_mut(&mut self, addr: u64) -> &mut u8 {
        let ps = self.page_size as u64;
        let p = (addr / ps) as PageId;
        let off = (addr % ps) as usize;
        let page = self.pages.entry(p).or_insert_with(|| vec![0u8; ps as usize]);
        &mut page[off]
    }

    fn byte(&self, addr: u64) -> u8 {
        let ps = self.page_size as u64;
        let p = (addr / ps) as PageId;
        let off = (addr % ps) as usize;
        self.pages.get(&p).map_or(0, |page| page[off])
    }
}

impl Mem for RefMem {
    fn ld(&mut self, addr: u64) -> Result<u64, Stopped> {
        let mut b = [0u8; 8];
        for (i, slot) in b.iter_mut().enumerate() {
            *slot = self.byte(addr + i as u64);
        }
        Ok(u64::from_le_bytes(b))
    }
    fn st(&mut self, addr: u64, v: u64) -> Result<(), Stopped> {
        for (i, byte) in v.to_le_bytes().into_iter().enumerate() {
            *self.byte_mut(addr + i as u64) = byte;
        }
        Ok(())
    }
    fn lock(&mut self, _l: u32) -> Result<(), Stopped> {
        Ok(())
    }
    fn unlock(&mut self, _l: u32) -> Result<(), Stopped> {
        Ok(())
    }
    fn charge_us(&mut self, _us: u64) {}
}

/// One node's view of one audited page at one checkpoint, captured inside
/// the cluster run via [`DsmNode::inspect_page`].
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Index of the workload phase the checkpoint follows.
    pub phase: usize,
    /// The observing node.
    pub node: usize,
    /// The audited page.
    pub page: PageId,
    /// The page bytes as a local read would have seen them.
    pub bytes: Vec<u8>,
}

/// The first byte at which a node's memory departed from the reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OracleViolation {
    /// Phase checkpoint at which the divergence was observed.
    pub phase: usize,
    /// Node whose copy is wrong.
    pub node: usize,
    /// The divergent page.
    pub page: PageId,
    /// Byte offset within the page.
    pub offset: usize,
    /// What the reference memory holds there.
    pub expected: u8,
    /// What the node holds there.
    pub actual: u8,
}

/// Per-phase expected images of the audited pages, produced by
/// [`crate::harness`] replaying the workload on a [`RefMem`].
pub type Expected = Vec<BTreeMap<PageId, Vec<u8>>>;

/// Compare every snapshot against the reference image of its phase.
/// Returns the first mismatching byte, in snapshot order (which is virtual
/// time order — the simulation serializes the collectors).
pub fn check_snapshots(snaps: &[Snapshot], expected: &Expected) -> Option<OracleViolation> {
    for s in snaps {
        let want =
            expected[s.phase].get(&s.page).expect("snapshot of a page outside the audit set");
        debug_assert_eq!(want.len(), s.bytes.len());
        if let Some(off) = (0..want.len()).find(|&i| want[i] != s.bytes[i]) {
            return Some(OracleViolation {
                phase: s.phase,
                node: s.node,
                page: s.page,
                offset: off,
                expected: want[off],
                actual: s.bytes[off],
            });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn refmem_roundtrips_and_zero_fills() {
        let mut m = RefMem::new(4096);
        assert_eq!(m.ld(64).unwrap(), 0);
        m.st(64, 0xDEAD_BEEF_0102_0304).unwrap();
        assert_eq!(m.ld(64).unwrap(), 0xDEAD_BEEF_0102_0304);
        // Little-endian, matching the DSM's Pod encoding.
        assert_eq!(m.page_image(0)[64], 0x04);
        // A write spanning a page boundary lands in both pages.
        m.st(4096 - 4, 0x1122_3344_5566_7788).unwrap();
        assert_eq!(m.ld(4096 - 4).unwrap(), 0x1122_3344_5566_7788);
        assert_eq!(m.page_image(1)[0], 0x44);
    }

    #[test]
    fn check_finds_first_divergent_byte() {
        let mut want = BTreeMap::new();
        want.insert(3 as PageId, vec![0u8, 1, 2, 3]);
        let expected = vec![want];
        let ok = Snapshot { phase: 0, node: 1, page: 3, bytes: vec![0, 1, 2, 3] };
        assert_eq!(check_snapshots(std::slice::from_ref(&ok), &expected), None);
        let bad = Snapshot { phase: 0, node: 2, page: 3, bytes: vec![0, 1, 9, 3] };
        let v = check_snapshots(&[ok, bad], &expected).unwrap();
        assert_eq!((v.node, v.offset, v.expected, v.actual), (2, 2, 2, 9));
    }
}
