//! # repseq-check — protocol correctness checking for the §5.4.2 chain
//!
//! The DSM's replicated-section multicast protocol has a recovery path
//! (timeouts, out-of-band replies, re-elections) that ordinary workloads
//! almost never exercise — exactly the paper's observation ("a rather
//! expensive mechanism ... almost never invoked"), and exactly where bugs
//! hide. This crate turns that path into a first-class test target:
//!
//! * an **oracle** ([`oracle`]) that replays each workload on a single flat
//!   reference memory and asserts every node's valid shared pages are
//!   bit-identical to it at every barrier and replicated-section exit;
//! * a **schedule-sweep harness** ([`harness`]) that runs workloads across
//!   a grid of loss seeds × drop rates × unicast/multicast loss, checking
//!   the oracle plus protocol invariants (quiescent [`repseq_dsm::RseProbe`]s,
//!   no wedged chains, no undelivered application traffic);
//! * **divergence reporting** ([`report`]) that, on failure, re-runs the
//!   schedule with kernel-event tracing on, diffs it against a clean run of
//!   the same workload, and names the first divergent kernel event and the
//!   loss decision that caused it.
//!
//! Workload bodies are written once against the [`oracle::Mem`] trait and
//! executed both on the DSM cluster and on the reference memory, so the
//! oracle needs no per-workload expected values.

pub mod harness;
pub mod oracle;
pub mod race;
pub mod report;
pub mod workload;

pub use harness::{
    grid, run_schedule, run_schedule_instrumented, sweep, HarnessConfig, InstrumentedOutcome,
    Schedule, ScheduleOutcome, SweepSummary,
};
pub use oracle::{DsmMem, Mem, OracleViolation, RefMem, Snapshot};
pub use race::{AccessRecord, Race, RaceDetector, RaceReport};
pub use workload::{kitchen_sink, kv_serving, rse_kernel, Builder, Phase, Workload};
