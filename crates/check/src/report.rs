//! Divergence reporting: when a lossy schedule violates the oracle or an
//! invariant, say *which* kernel event first diverged from a clean run of
//! the same workload, and which loss decision is to blame.

use repseq_dsm::LaunchOutcome;
use repseq_net::LossEvent;
use repseq_sim::{first_divergence, TraceEntry};

use crate::harness::{HarnessConfig, Schedule};

fn fmt_loss_event(e: &LossEvent) -> String {
    format!(
        "t={}ns {} {}->{} pair_seq={} ({:?})",
        e.at.nanos(),
        if e.multicast { "mcast" } else { "ucast" },
        e.src,
        e.dst,
        e.pair_seq,
        e.class,
    )
}

fn fmt_trace_entry(e: &TraceEntry) -> String {
    format!(
        "t={}ns seq={} pid={} {}",
        e.time.nanos(),
        e.seq,
        e.pid,
        if e.is_delivery() { "deliver" } else { "wake" },
    )
}

/// Render the full failure report for one schedule: the violated invariant,
/// the protocol probes, the tail of the loss log, and — when both the
/// failing run and its lossless twin carry traces — the first divergent
/// kernel event plus the last loss decision at or before it.
pub fn render_failure(
    workload: &str,
    cfg: &HarnessConfig,
    sched: Schedule,
    why: &str,
    lossy: &LaunchOutcome,
    clean: &LaunchOutcome,
) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "torture schedule failed: workload={workload} nodes={} rse_timeout={:?} \
         seed={} drop={}‰ unicast={}\n",
        cfg.nodes, cfg.rse_timeout, sched.seed, sched.drop_per_mille, sched.unicast
    ));
    out.push_str(&format!("  violation: {why}\n"));
    for probe in &lossy.probes {
        out.push_str(&format!("  probe[{}]: {probe:?}\n", probe.node));
    }
    let drops = &lossy.loss_events;
    out.push_str(&format!("  {} frames dropped; last {}:\n", drops.len(), drops.len().min(10)));
    for e in drops.iter().rev().take(10).rev() {
        out.push_str(&format!("    {}\n", fmt_loss_event(e)));
    }
    let traces = match (&lossy.result, &clean.result) {
        (Ok(l), Ok(c)) => l.trace.as_deref().zip(c.trace.as_deref()),
        _ => None,
    };
    match traces {
        None => out.push_str("  (no trace pair: a run did not complete, see violation above)\n"),
        Some((lt, ct)) => match first_divergence(ct, lt) {
            None => out.push_str("  traces identical: failure is not schedule-induced\n"),
            Some(d) => {
                out.push_str(&format!("  first divergent kernel event (index {}):\n", d.index));
                out.push_str(&format!(
                    "    clean: {}\n",
                    d.a.as_ref().map_or("<end of trace>".into(), fmt_trace_entry)
                ));
                out.push_str(&format!(
                    "    lossy: {}\n",
                    d.b.as_ref().map_or("<end of trace>".into(), fmt_trace_entry)
                ));
                // The loss decision responsible: the last drop at or before
                // the divergent event's time in the lossy run.
                let at = d.b.map(|e| e.time);
                let culprit = match at {
                    Some(t) => drops.iter().rfind(|e| e.at <= t),
                    None => drops.last(),
                };
                match culprit {
                    Some(e) => {
                        out.push_str(&format!("  offending loss decision: {}\n", fmt_loss_event(e)))
                    }
                    None => out.push_str("  no loss decision precedes the divergence\n"),
                }
            }
        },
    }
    out
}
