//! # repseq-sim — deterministic discrete-event simulation engine
//!
//! This crate is the foundation of the PPoPP'01 reproduction: a
//! process-oriented discrete-event simulator in which each simulated node of
//! the cluster runs as a cooperatively scheduled OS thread in *virtual*
//! time. The engine always runs the process with the globally minimal next
//! event time, so execution is fully serialized and **bit-for-bit
//! deterministic** — the property the reproduced paper requires of
//! sequential sections, and the property that makes every experiment in
//! this repository reproducible.
//!
//! Layers above build on three primitives:
//!
//! * [`Ctx::charge`] — account for local computation without a context
//!   switch (cost is folded into the clock at the next yield);
//! * [`Ctx::send`] — schedule a message delivery at an explicit virtual
//!   time (the network model computes that time from link occupancy);
//! * [`Ctx::recv`] / [`Ctx::recv_timeout`] / [`Ctx::sleep`] — blocking
//!   operations that yield to the engine.
//!
//! See `DESIGN.md` at the repository root for how this engine substitutes
//! for the paper's 32-node Ethernet cluster.

mod ctx;
mod engine;
mod error;
mod time;
mod trace;

pub use ctx::Ctx;
pub use engine::{Envelope, ExecCounters, HostExec, Pid, Sim, SimReport};
pub use error::{SimError, Stopped};
pub use time::{Dur, SimTime};
pub use trace::{first_divergence, Divergence, TraceClass, TraceEntry};
