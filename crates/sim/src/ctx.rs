//! The process-side handle to the simulation kernel.

use std::cell::Cell;
use std::sync::Arc;

use crossbeam::channel::{Receiver, Sender};
use parking_lot::Mutex;

use crate::engine::{
    Ctrl, DrainOutcome, Envelope, EvKey, EventKind, ExecMode, Kernel, Pid, Status, WindowSync,
};
use crate::error::Stopped;
use crate::time::{Dur, SimTime};

pub(crate) enum Resume {
    /// Resume at the given event key's time. The full key rides along so
    /// the process knows its group's window envelope (see [`Ctx::ordered`]).
    Go {
        key: EvKey,
        timed_out: bool,
    },
    Stop,
}

/// Handle through which a simulated process observes and affects virtual
/// time. One `Ctx` exists per process and is not shareable.
///
/// # Yield discipline
///
/// `charge` and `send` never yield to the engine; `recv`, `recv_timeout`,
/// `try_recv` and `sleep` do. **Never hold a lock shared with another
/// simulated process across a yielding call** — the other process would
/// block on the lock at OS level without yielding in virtual time, and the
/// simulation would hang.
pub struct Ctx<M: Send + 'static> {
    pid: Pid,
    kernel: Arc<Mutex<Kernel<M>>>,
    /// Global control channel (serial/handoff yields; window mode routes
    /// through the kernel instead).
    ctrl_tx: Sender<Ctrl>,
    resume_rx: Receiver<Resume>,
    /// Window-mode link arbiter, shared with the kernel (see
    /// [`Ctx::ordered`]).
    sync: Arc<WindowSync>,
    /// Local copy of the process clock (nanoseconds); authoritative while
    /// the process runs, written back to the kernel at yields.
    clock: Cell<u64>,
    /// Compute time charged since the last yield.
    pending: Cell<u64>,
    /// Key of the event that last resumed this process. While the process
    /// runs, this *is* its group's window envelope (the group's drain
    /// stopped at that pop and only restarts after the process blocks), so
    /// [`Ctx::ordered`] can hand the arbiter its position without touching
    /// the kernel lock.
    cur_key: Cell<EvKey>,
}

impl<M: Send + 'static> Ctx<M> {
    pub(crate) fn new(
        pid: Pid,
        kernel: Arc<Mutex<Kernel<M>>>,
        resume_rx: Receiver<Resume>,
    ) -> Self {
        let (ctrl_tx, sync) = {
            let k = kernel.lock();
            (k.ctrl_tx.clone(), Arc::clone(&k.sync))
        };
        Ctx {
            pid,
            kernel,
            ctrl_tx,
            resume_rx,
            sync,
            clock: Cell::new(0),
            pending: Cell::new(0),
            cur_key: Cell::new((SimTime::ZERO, 0, 0)),
        }
    }

    /// Block until the engine first schedules this process.
    pub(crate) fn wait_first_resume(&self) -> Result<(), Stopped> {
        match self.resume_rx.recv() {
            Ok(Resume::Go { key, .. }) => {
                self.clock.set(key.0.nanos());
                self.cur_key.set(key);
                Ok(())
            }
            Ok(Resume::Stop) | Err(_) => Err(Stopped),
        }
    }

    /// This process's id.
    #[inline]
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// Current virtual time as seen by this process, including compute time
    /// charged since the last yield.
    #[inline]
    pub fn now(&self) -> SimTime {
        SimTime::from_nanos(self.clock.get() + self.pending.get())
    }

    /// Account for `d` of local computation. Free at wall-clock level: the
    /// charge is folded into the clock at the next yield point.
    #[inline]
    pub fn charge(&self, d: Dur) {
        self.pending.set(self.pending.get() + d.nanos());
    }

    /// Run `f` in global event order: under window-parallel execution,
    /// block until every other concurrently-executing node group has
    /// advanced past this process's current event key, so operations on
    /// *shared simulated resources* (the network's link-occupancy state)
    /// happen in exactly the order the serial coordinator would produce.
    /// Free outside window mode (one relaxed atomic load), and never a
    /// *virtual-time* yield — only host-level waiting.
    ///
    /// The wait is deadlock-free: event keys are globally unique and
    /// totally ordered, so the group holding the minimal in-flight key is
    /// never blocked, and positions only advance.
    #[inline]
    pub fn ordered<R>(&self, f: impl FnOnce() -> R) -> R {
        self.sync.await_turn(self.pid, self.cur_key.get());
        f()
    }

    /// Schedule delivery of `msg` to `dst` at `deliver_at` (virtual time).
    /// The delivery time is computed by the caller — in this workspace, by
    /// the network model, which accounts for link occupancy. Never yields.
    pub fn send(&self, dst: Pid, msg: M, deliver_at: SimTime) {
        let at = deliver_at.max(self.now());
        let mut k = self.kernel.lock();
        debug_assert!(dst < k.procs.len(), "send to unknown pid {dst}");
        k.push_event(
            self.pid,
            at,
            EventKind::Deliver { dst, env: Envelope { from: self.pid, at, msg } },
        );
    }

    /// Sleep for `d` of virtual time (plus any pending charge).
    pub fn sleep(&self, d: Dur) -> Result<(), Stopped> {
        let wake_at = self.flushed_clock() + d;
        self.block(|k, pid| {
            let gen = k.bump_gen(pid);
            k.procs[pid].status = Status::Sleeping;
            k.push_event(pid, wake_at, EventKind::Wake { pid, gen });
        })?;
        Ok(())
    }

    /// Receive the next message, blocking in virtual time until one is
    /// available.
    pub fn recv(&self) -> Result<Envelope<M>, Stopped> {
        loop {
            if let Some(env) = self.recv_deadline(None)? {
                return Ok(env);
            }
        }
    }

    /// Receive the next message, or `None` if none arrives within `d`.
    pub fn recv_timeout(&self, d: Dur) -> Result<Option<Envelope<M>>, Stopped> {
        let deadline = self.flushed_clock_peek() + d;
        self.recv_deadline(Some(deadline))
    }

    /// Receive a message that has already arrived, without waiting beyond
    /// the current instant. (Still a yield point: the kernel must process
    /// deliveries up to the current clock.)
    pub fn try_recv(&self) -> Result<Option<Envelope<M>>, Stopped> {
        let deadline = self.flushed_clock_peek();
        self.recv_deadline(Some(deadline))
    }

    fn recv_deadline(&self, deadline: Option<SimTime>) -> Result<Option<Envelope<M>>, Stopped> {
        let at = self.flushed_clock_peek();
        // Fast path: a message already in the mailbox was delivered at or
        // before this process's last resume, so it can be consumed right
        // now without a checkpoint event or a yield. Only one process per
        // group runs at a time and deliveries are applied in global
        // (time, src_group, seq) order, so the mailbox front is exactly
        // what the checkpoint path would return — minus two host context
        // switches (serial mode) or a kernel round trip (handoff mode) per
        // received burst message.
        {
            let mut k = self.kernel.lock();
            if let Some(env) = k.procs[self.pid].mailbox.pop_front() {
                return Ok(Some(env));
            }
        }
        let (_, timed_out) = self.block(|k, pid| {
            let gen = k.bump_gen(pid);
            k.procs[pid].status = Status::Polling { deadline };
            // Checkpoint wake at the current clock: by the time it pops, all
            // deliveries up to this instant are in the mailbox.
            k.push_event(pid, at, EventKind::Wake { pid, gen });
            if let Some(dl) = deadline {
                if dl > at {
                    k.push_event(pid, dl, EventKind::Wake { pid, gen });
                }
            }
        })?;
        if timed_out {
            return Ok(None);
        }
        let mut k = self.kernel.lock();
        Ok(k.procs[self.pid].mailbox.pop_front())
    }

    /// Fold pending charge into the clock and return the new instant.
    fn flushed_clock(&self) -> SimTime {
        let c = self.clock.get() + self.pending.get();
        self.clock.set(c);
        self.pending.set(0);
        SimTime::from_nanos(c)
    }

    /// Same as [`flushed_clock`] but usable before the block that flushes.
    fn flushed_clock_peek(&self) -> SimTime {
        self.flushed_clock()
    }

    /// Yield to the engine. `setup` runs under the kernel lock and must set
    /// this process's status and schedule any wake events.
    ///
    /// In the serial mode the yield is a channel round trip through the
    /// coordinator. In the handoff mode the yielding process keeps *duty*:
    /// still under the kernel lock, it pops and applies events itself. If
    /// one of them resumes this very process it returns immediately — zero
    /// host context switches; if it resumes another process, duty moves
    /// there directly — one switch; if the queue runs dry, duty returns to
    /// the coordinator for the termination check. The window mode is the
    /// handoff discipline scoped to this process's own group and the
    /// current window: the yielder drains its group below the horizon, and
    /// when the group runs dry it returns duty to the window worker
    /// driving the group.
    fn block(&self, setup: impl FnOnce(&mut Kernel<M>, Pid)) -> Result<(SimTime, bool), Stopped> {
        let c = self.flushed_clock();
        let mut k = self.kernel.lock();
        k.procs[self.pid].clock = c;
        setup(&mut k, self.pid);
        match k.mode {
            ExecMode::Handoff => match k.drain(Some(self.pid)) {
                DrainOutcome::SelfResume { key, timed_out } => {
                    drop(k);
                    self.clock.set(key.0.nanos());
                    self.cur_key.set(key);
                    return Ok((key.0, timed_out));
                }
                DrainOutcome::Handoff => drop(k),
                DrainOutcome::Empty => {
                    drop(k);
                    self.ctrl_tx.send(Ctrl::Idle(self.pid)).map_err(|_| Stopped)?;
                }
            },
            ExecMode::Window => {
                let g = k.group_of(self.pid);
                match k.drain_window(g, Some(self.pid)) {
                    DrainOutcome::SelfResume { key, timed_out } => {
                        drop(k);
                        self.clock.set(key.0.nanos());
                        self.cur_key.set(key);
                        return Ok((key.0, timed_out));
                    }
                    DrainOutcome::Handoff => drop(k),
                    DrainOutcome::Empty => {
                        // The group's window is complete: return duty to
                        // the worker driving it.
                        let route = k.ctrl_route(self.pid);
                        drop(k);
                        route.send(Ctrl::Idle(self.pid)).map_err(|_| Stopped)?;
                    }
                }
            }
            ExecMode::Serial => {
                drop(k);
                self.ctrl_tx.send(Ctrl::Yielded(self.pid)).map_err(|_| Stopped)?;
            }
        }
        match self.resume_rx.recv() {
            Ok(Resume::Go { key, timed_out }) => {
                self.clock.set(key.0.nanos());
                self.cur_key.set(key);
                Ok((key.0, timed_out))
            }
            Ok(Resume::Stop) | Err(_) => Err(Stopped),
        }
    }
}
