//! Virtual time.
//!
//! The simulation measures time in integer nanoseconds from the start of the
//! run. `u64` nanoseconds cover ~584 years of virtual time, far beyond any
//! experiment in this repository. All arithmetic is checked in debug builds;
//! virtual time never goes backwards.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant in virtual time (nanoseconds since simulation start).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time (nanoseconds).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Dur(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Raw nanoseconds since simulation start.
    #[inline]
    pub const fn nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as a float (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Milliseconds since simulation start, as a float (for reporting only).
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The earlier of two instants.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }

    /// Span from an earlier instant to this one. Saturates to zero if
    /// `earlier` is in fact later (callers assert where it matters).
    #[inline]
    pub fn since(self, earlier: SimTime) -> Dur {
        Dur(self.0.saturating_sub(earlier.0))
    }
}

impl Dur {
    /// Zero-length span.
    pub const ZERO: Dur = Dur(0);

    /// Construct from nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        Dur(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        Dur(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        Dur(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        Dur(s * 1_000_000_000)
    }

    /// Construct from fractional seconds, rounding to the nearest nanosecond.
    /// Panics on negative or non-finite input.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid duration: {s}");
        Dur((s * 1e9).round() as u64)
    }

    /// Raw nanoseconds.
    #[inline]
    pub const fn nanos(self) -> u64 {
        self.0
    }

    /// Seconds as a float (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Milliseconds as a float (for reporting only).
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Microseconds as a float (for reporting only).
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// The larger of two spans.
    #[inline]
    pub fn max(self, other: Dur) -> Dur {
        Dur(self.0.max(other.0))
    }

    /// The smaller of two spans.
    #[inline]
    pub fn min(self, other: Dur) -> Dur {
        Dur(self.0.min(other.0))
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, other: Dur) -> Dur {
        Dur(self.0.saturating_sub(other.0))
    }
}

impl Add<Dur> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: Dur) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("virtual time overflow"))
    }
}

impl AddAssign<Dur> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: Dur) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Dur;
    /// Span between two instants; panics (debug) if `rhs` is later.
    #[inline]
    fn sub(self, rhs: SimTime) -> Dur {
        debug_assert!(self.0 >= rhs.0, "virtual time went backwards");
        Dur(self.0.saturating_sub(rhs.0))
    }
}

impl Add for Dur {
    type Output = Dur;
    #[inline]
    fn add(self, rhs: Dur) -> Dur {
        Dur(self.0.checked_add(rhs.0).expect("duration overflow"))
    }
}

impl AddAssign for Dur {
    #[inline]
    fn add_assign(&mut self, rhs: Dur) {
        *self = *self + rhs;
    }
}

impl Sub for Dur {
    type Output = Dur;
    #[inline]
    fn sub(self, rhs: Dur) -> Dur {
        debug_assert!(self.0 >= rhs.0, "negative duration");
        Dur(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for Dur {
    #[inline]
    fn sub_assign(&mut self, rhs: Dur) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for Dur {
    type Output = Dur;
    #[inline]
    fn mul(self, rhs: u64) -> Dur {
        Dur(self.0.checked_mul(rhs).expect("duration overflow"))
    }
}

impl Div<u64> for Dur {
    type Output = Dur;
    #[inline]
    fn div(self, rhs: u64) -> Dur {
        Dur(self.0 / rhs)
    }
}

impl Sum for Dur {
    fn sum<I: Iterator<Item = Dur>>(iter: I) -> Dur {
        iter.fold(Dur::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Debug for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.as_micros_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

impl fmt::Display for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::from_nanos(1_500);
        let t2 = t + Dur::from_micros(2);
        assert_eq!(t2.nanos(), 3_500);
        assert_eq!((t2 - t).nanos(), 2_000);
    }

    #[test]
    fn dur_constructors_agree() {
        assert_eq!(Dur::from_secs(1), Dur::from_millis(1_000));
        assert_eq!(Dur::from_millis(1), Dur::from_micros(1_000));
        assert_eq!(Dur::from_micros(1), Dur::from_nanos(1_000));
        assert_eq!(Dur::from_secs_f64(0.5), Dur::from_millis(500));
    }

    #[test]
    fn since_saturates() {
        let a = SimTime::from_nanos(10);
        let b = SimTime::from_nanos(20);
        assert_eq!(a.since(b), Dur::ZERO);
        assert_eq!(b.since(a), Dur::from_nanos(10));
    }

    #[test]
    fn dur_scaling() {
        assert_eq!(Dur::from_micros(3) * 4, Dur::from_micros(12));
        assert_eq!(Dur::from_micros(12) / 4, Dur::from_micros(3));
        let total: Dur = [Dur::from_nanos(1), Dur::from_nanos(2)].into_iter().sum();
        assert_eq!(total, Dur::from_nanos(3));
    }

    #[test]
    fn max_min() {
        let a = SimTime::from_nanos(5);
        let b = SimTime::from_nanos(9);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(Dur::from_nanos(5).max(Dur::from_nanos(9)), Dur::from_nanos(9));
    }

    #[test]
    #[should_panic(expected = "invalid duration")]
    fn negative_float_duration_panics() {
        let _ = Dur::from_secs_f64(-1.0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Dur::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", Dur::from_micros(12)), "12.000us");
        assert_eq!(format!("{}", Dur::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", Dur::from_secs(12)), "12.000s");
    }
}
