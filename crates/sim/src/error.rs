//! Error types for the simulation kernel.

use std::fmt;

use crate::engine::Pid;

/// Returned from blocking [`Ctx`](crate::Ctx) calls when the engine is
/// shutting the process down (all primary processes have exited, or the run
/// aborted). Process bodies should propagate it with `?`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stopped;

impl fmt::Display for Stopped {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "simulation stopped")
    }
}

impl std::error::Error for Stopped {}

/// A failed simulation run.
#[derive(Debug)]
pub enum SimError {
    /// No events remain but primary processes are still blocked: the modeled
    /// system is deadlocked. Lists the blocked primary processes.
    Deadlock { blocked: Vec<(Pid, String)> },
    /// A process thread panicked; the panic message is on stderr.
    ProcessPanicked { pid: Pid, name: String },
    /// `run` was called on a simulation with no primary processes.
    NoPrimaryProcesses,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Deadlock { blocked } => {
                write!(f, "simulated deadlock; blocked processes: ")?;
                for (i, (pid, name)) in blocked.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "#{pid} {name}")?;
                }
                Ok(())
            }
            SimError::ProcessPanicked { pid, name } => {
                write!(f, "simulated process #{pid} `{name}` panicked")
            }
            SimError::NoPrimaryProcesses => write!(f, "simulation has no primary processes"),
        }
    }
}

impl std::error::Error for SimError {}
