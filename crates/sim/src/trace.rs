//! Event traces for determinism testing.

use crate::engine::{Event, EventKind, Pid};
use crate::time::SimTime;

/// What kind of kernel event a trace entry records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceClass {
    /// A process wake (timer expiry, spawn, or an explicit wakeup).
    Wake,
    /// A message delivery into a process mailbox.
    Deliver,
}

/// A compact record of one processed kernel event. Two runs of the same
/// simulation must produce identical traces; the determinism tests rely on
/// this.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEntry {
    /// Virtual time of the event.
    pub time: SimTime,
    /// Scheduling group of the process that *pushed* the event (the event
    /// key's second component — ties at equal time break by source group).
    pub src: u64,
    /// Sequence number drawn from the source group's counter at push
    /// (assigned deterministically in every host execution mode).
    pub seq: u64,
    /// Affected process.
    pub pid: Pid,
    /// Event class.
    pub class: TraceClass,
}

impl TraceEntry {
    pub(crate) fn from_event<M>(ev: &Event<M>) -> Self {
        let (pid, class) = match &ev.kind {
            EventKind::Wake { pid, .. } => (*pid, TraceClass::Wake),
            EventKind::Deliver { dst, .. } => (*dst, TraceClass::Deliver),
        };
        TraceEntry { time: ev.time, src: ev.src, seq: ev.seq, pid, class }
    }

    /// True for a message delivery, false for a wake.
    pub fn is_delivery(&self) -> bool {
        self.class == TraceClass::Deliver
    }
}

/// Where two event traces first disagree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Divergence {
    /// Index into both traces of the first mismatch (equal to the shorter
    /// length if one trace is a strict prefix of the other).
    pub index: usize,
    /// The entry at that index in the first trace, if any.
    pub a: Option<TraceEntry>,
    /// The entry at that index in the second trace, if any.
    pub b: Option<TraceEntry>,
}

/// Compare two traces entry by entry and report the first point where they
/// differ, or `None` if they are identical. Failure reports use this to name
/// the first kernel event at which a lossy schedule departed from a clean
/// run of the same workload.
pub fn first_divergence(a: &[TraceEntry], b: &[TraceEntry]) -> Option<Divergence> {
    let n = a.len().min(b.len());
    for i in 0..n {
        if a[i] != b[i] {
            return Some(Divergence { index: i, a: Some(a[i]), b: Some(b[i]) });
        }
    }
    if a.len() != b.len() {
        return Some(Divergence { index: n, a: a.get(n).copied(), b: b.get(n).copied() });
    }
    None
}
