//! Event traces for determinism testing.

use crate::engine::{Event, EventKind, Pid};
use crate::time::SimTime;

/// A compact record of one processed kernel event. Two runs of the same
/// simulation must produce identical traces; the determinism tests rely on
/// this.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEntry {
    /// Virtual time of the event.
    pub time: SimTime,
    /// Kernel sequence number (assigned at push, so also deterministic).
    pub seq: u64,
    /// Affected process.
    pub pid: Pid,
    /// True for a message delivery, false for a wake.
    pub is_delivery: bool,
}

impl TraceEntry {
    pub(crate) fn from_event<M>(ev: &Event<M>) -> Self {
        let (pid, is_delivery) = match &ev.kind {
            EventKind::Wake { pid, .. } => (*pid, false),
            EventKind::Deliver { dst, .. } => (*dst, true),
        };
        TraceEntry { time: ev.time, seq: ev.seq, pid, is_delivery }
    }
}
