//! The discrete-event kernel.
//!
//! Every simulated process is an OS thread that cooperates with the engine:
//! processes interact with the kernel only through [`Ctx`](crate::Ctx) —
//! charging compute time, sending messages with an explicit delivery time
//! (computed by the network layer), and blocking receives. `send` never
//! yields; `recv`/`sleep` do. Local computation between yields is free in
//! wall-clock terms (no context switch) and is folded into the process clock
//! at the next yield point.
//!
//! The engine always *applies* events in ascending `(time, src_group, seq)`
//! order per group, and globally that order is identical across every host
//! execution mode, so each run is bit-for-bit deterministic — a property the
//! reproduced paper *relies on* (replicated sequential execution assumes
//! deterministic sequential sections) and which makes every experiment in
//! this repository reproducible.
//!
//! # Event sharding and host execution modes
//!
//! Pending events live in per-*group* ordered queues (a group is normally
//! one simulated node: its application and protocol-handler processes) with
//! a lazy merge index over the group heads — see [`EventQueues`]. Event keys
//! are `(time, src_group, seq)` where `src_group` is the scheduling group of
//! the *pushing* process and `seq` is drawn from that group's private
//! counter. Because each group's execution is serialized in every mode, the
//! keys — and therefore the global pop order — never depend on how the host
//! happened to interleave worker threads.
//!
//! Three host execution modes drive that order:
//!
//! * **Serial** (default): a coordinator thread pops every event and does a
//!   channel round trip with a process thread for every resume — two host
//!   context switches per yield.
//! * **Handoff** ([`Sim::set_exec`] with [`HostExec::Handoff`]): the process
//!   threads themselves drive the kernel. At a yield, the blocking process
//!   keeps *duty*: it pops and applies events inline (no switch), resumes
//!   itself without any switch, and hands duty directly to another process
//!   with a single switch. Execution is still serialized by the duty token —
//!   this mode measures context-switch economy, not parallelism.
//! * **Window** ([`Sim::set_parallel`] with 2+ threads): true conservative
//!   parallel execution. Each *window*, the coordinator computes the safe
//!   horizon `H = min(next event time across groups) + lookahead` and
//!   dispatches every group whose head falls below `H` to a pool of host
//!   worker threads concurrently. Within the window each group drains its
//!   own queue (the intra-group duty handoff of the Handoff mode is
//!   preserved); cross-group sends are buffered per source group and merged
//!   into the destination queues at the window barrier, in `(time,
//!   src_group, seq)` order. The network model charges at least `lookahead`
//!   of virtual latency on every cross-group message, so no event below the
//!   horizon can be created during the window — the per-group drains are
//!   provably the same prefixes the serial coordinator would have executed,
//!   and every [`SimReport`] field is bit-identical to the serial mode.
//!   Shared network link state is serialized in exact serial order by a
//!   window-scoped arbiter ([`Ctx::ordered`](crate::Ctx::ordered)).
//!
//! # End of run
//!
//! When the last primary process exits, the engine finishes the lookahead
//! window the exit fell into — bounded by the current horizon — and stops.
//! With no groups or zero lookahead the horizon is degenerate and the run
//! stops at the exit event exactly as before; with windows this rule makes
//! the tail of the run identical across all three modes (a parallel window
//! cannot be cut short retroactively, so the serial modes finish it too).

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::thread::JoinHandle;

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

use crate::ctx::{Ctx, Resume};
use crate::error::{SimError, Stopped};
use crate::time::{Dur, SimTime};
use crate::trace::TraceEntry;

/// Identifier of a simulated process (index into the process table).
pub type Pid = usize;

/// Event key: `(delivery time, source group, per-source-group sequence)`.
/// Assigned at push from the pushing process's group counter, so keys are
/// identical in every host execution mode; the global pop order is the
/// ascending key order.
pub(crate) type EvKey = (SimTime, u64, u64);

/// Sentinel above every real key (used by the window arbiter for groups
/// that are inactive or have finished their window).
pub(crate) const KEY_MAX: EvKey = (SimTime::from_nanos(u64::MAX), u64::MAX, u64::MAX);

/// A message in flight or in a mailbox.
#[derive(Debug)]
pub struct Envelope<M> {
    /// Sending process.
    pub from: Pid,
    /// Virtual time at which the message became available to the receiver.
    pub at: SimTime,
    /// Payload.
    pub msg: M,
}

pub(crate) enum EventKind<M> {
    /// Wake a process (timer expiry or receive checkpoint). Stale if the
    /// process generation has moved on.
    Wake { pid: Pid, gen: u64 },
    /// Deliver a message into a mailbox.
    Deliver { dst: Pid, env: Envelope<M> },
}

impl<M> EventKind<M> {
    /// The process an event is routed to (and whose group queues it).
    fn target(&self) -> Pid {
        match self {
            EventKind::Wake { pid, .. } => *pid,
            EventKind::Deliver { dst, .. } => *dst,
        }
    }
}

pub(crate) struct Event<M> {
    pub time: SimTime,
    pub src: u64,
    pub seq: u64,
    pub kind: EventKind<M>,
}

/// Sharded pending-event store: one ordered map per group plus a lazy merge
/// index over the group heads.
///
/// Invariant (serial/handoff pops): for every non-empty group, either the
/// merge heap contains an entry carrying the group's current head key, or
/// that head is the `deferred` slot. The heap may additionally hold *stale*
/// entries — keys already consumed — which are strictly smaller than their
/// group's live head and are skipped at pop. Pops therefore always yield
/// the global minimum key.
///
/// The `deferred` slot is the sprint optimization: after popping from group
/// `g`, `g`'s next head is withheld from the heap. If it is still the
/// global minimum at the next pop (true for any run of consecutive events
/// on one node), it is consumed with two `BTreeMap` operations and no heap
/// traffic at all.
///
/// The window execution mode never uses the merge index: it reads group
/// heads directly ([`head_of`](Self::head_of)) and inserts without touching
/// the heap ([`insert_plain`](Self::insert_plain)), so the heap cannot
/// accumulate stale entries across a windowed run.
struct EventQueues<M> {
    groups: Vec<BTreeMap<EvKey, EventKind<M>>>,
    heads: BinaryHeap<Reverse<(EvKey, usize)>>,
    deferred: Option<(EvKey, usize)>,
    /// pid → group index. Each process starts in its own group;
    /// [`Sim::assign_group`] merges the processes of one simulated node.
    group_of: Vec<usize>,
    len: usize,
    sprint_pops: u64,
}

impl<M> EventQueues<M> {
    fn new() -> Self {
        EventQueues {
            groups: Vec::new(),
            heads: BinaryHeap::new(),
            deferred: None,
            group_of: Vec::new(),
            len: 0,
            sprint_pops: 0,
        }
    }

    /// Register a new process in a fresh group of its own.
    fn add_proc(&mut self) {
        self.group_of.push(self.groups.len());
        self.groups.push(BTreeMap::new());
    }

    /// Move `pid` (and its pending events) to `group`.
    fn assign_group(&mut self, pid: Pid, group: usize) {
        while self.groups.len() <= group {
            self.groups.push(BTreeMap::new());
        }
        let old = self.group_of[pid];
        if old == group {
            return;
        }
        if let Some(d) = self.deferred.take() {
            self.heads.push(Reverse(d));
        }
        self.group_of[pid] = group;
        let moved: Vec<EvKey> = self.groups[old]
            .iter()
            .filter(|(_, kind)| kind.target() == pid)
            .map(|(&k, _)| k)
            .collect();
        for key in moved {
            let kind = self.groups[old].remove(&key).expect("key just seen");
            self.groups[group].insert(key, kind);
        }
        // Re-announce both heads; redundant entries are skipped as stale.
        for g in [old, group] {
            if let Some((&k, _)) = self.groups[g].first_key_value() {
                self.heads.push(Reverse((k, g)));
            }
        }
    }

    fn push(&mut self, key: EvKey, kind: EventKind<M>) {
        let g = self.group_of[kind.target()];
        let new_head = self.groups[g].first_key_value().is_none_or(|(&k, _)| key < k);
        let dup = self.groups[g].insert(key, kind);
        debug_assert!(dup.is_none(), "duplicate event key");
        self.len += 1;
        if new_head {
            match self.deferred {
                // The deferred slot covered this group's old head; it must
                // track the new, smaller one.
                Some((_, dg)) if dg == g => self.deferred = Some((key, g)),
                _ => self.heads.push(Reverse((key, g))),
            }
        }
    }

    /// Insert without maintaining the merge index (window mode, which pops
    /// via [`take_from`](Self::take_from) and never consults the heap).
    fn insert_plain(&mut self, key: EvKey, kind: EventKind<M>) {
        let g = self.group_of[kind.target()];
        let dup = self.groups[g].insert(key, kind);
        debug_assert!(dup.is_none(), "duplicate event key");
        self.len += 1;
    }

    fn pop(&mut self) -> Option<Event<M>> {
        if let Some((dk, dg)) = self.deferred.take() {
            // Sprint: stale heap entries only under-estimate other groups'
            // heads, so `dk <= top` conservatively proves the deferred head
            // is still the global minimum.
            if self.heads.peek().is_none_or(|&Reverse((tk, _))| dk <= tk) {
                self.sprint_pops += 1;
                return Some(self.take(dk, dg));
            }
            self.heads.push(Reverse((dk, dg)));
        }
        loop {
            let Reverse((key, g)) = self.heads.pop()?;
            if self.groups[g].first_key_value().map(|(&k, _)| k) == Some(key) {
                return Some(self.take(key, g));
            }
            // Stale: this key was consumed earlier (or migrated); skip.
        }
    }

    fn take(&mut self, key: EvKey, g: usize) -> Event<M> {
        let kind = self.groups[g].remove(&key).expect("head vanished");
        debug_assert!(self.deferred.is_none());
        if let Some((&next, _)) = self.groups[g].first_key_value() {
            self.deferred = Some((next, g));
        }
        self.len -= 1;
        Event { time: key.0, src: key.1, seq: key.2, kind }
    }

    /// Current head key of group `g` (window mode; bypasses the index).
    fn head_of(&self, g: usize) -> Option<EvKey> {
        self.groups[g].first_key_value().map(|(&k, _)| k)
    }

    /// Remove and return group `g`'s head event (window mode; bypasses the
    /// index — the caller already knows `key` is the head).
    fn take_from(&mut self, key: EvKey, g: usize) -> Event<M> {
        let kind = self.groups[g].remove(&key).expect("window head vanished");
        self.len -= 1;
        Event { time: key.0, src: key.1, seq: key.2, kind }
    }

    /// Exact global minimum key, by scanning the group heads. Used only on
    /// the quiescence tail after the last primary exit, where the lazy
    /// index may be arbitrarily stale.
    fn peek_min(&self) -> Option<EvKey> {
        self.groups.iter().filter_map(|g| g.first_key_value().map(|(&k, _)| k)).min()
    }
}

/// What a blocked process is waiting for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Status {
    /// Currently executing (at most one process per group at a time).
    Running,
    /// Waiting for a timer.
    Sleeping,
    /// Yielded for a receive; the checkpoint wake will inspect the mailbox.
    Polling { deadline: Option<SimTime> },
    /// Mailbox was empty at the checkpoint; waiting for a delivery
    /// (and possibly a timeout).
    Waiting { deadline: Option<SimTime> },
    /// Finished.
    Exited,
}

pub(crate) struct ProcSlot<M> {
    pub name: String,
    pub daemon: bool,
    pub status: Status,
    /// Bumped on every resume; wake events carry the generation at which
    /// they were scheduled so stale wakes are ignored.
    pub gen: u64,
    pub clock: SimTime,
    pub mailbox: VecDeque<Envelope<M>>,
    pub resume_tx: Sender<Resume>,
    pub panicked: bool,
}

/// How the host drives the (unchanged) global event order. Public
/// selector; see the module docs for the three modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HostExec {
    /// Coordinator thread pops; every resume is a channel round trip.
    Serial,
    /// Yielding processes drive the kernel themselves and hand duty
    /// directly to the process they resume (serialized by the duty token).
    Handoff,
    /// Window-parallel conservative execution: independent groups run
    /// concurrently on host worker threads between lookahead barriers.
    Window,
}

pub(crate) type ExecMode = HostExec;

/// Host-execution counters for one run (see the module docs). These
/// describe how the *host* drove the simulation — they are not part of the
/// simulation result and are excluded from determinism fingerprints: a
/// serial run, a handoff run and a window-parallel run of the same workload
/// produce different counters but identical reports otherwise.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecCounters {
    /// Handoff mode: maximal bursts of consecutive events executed by one
    /// duty holder without returning to the coordinator. Window mode:
    /// number of barrier-delimited parallel windows executed.
    pub windows: u64,
    /// Pops served straight from the last group's queue, bypassing the
    /// merge index (consecutive same-node events; serial/handoff modes).
    pub sprint_pops: u64,
    /// Direct duty transfers that resumed a process over its channel
    /// without a serial-coordinator round trip (handoff chains, and window
    /// workers resuming group processes).
    pub handoff_switches: u64,
    /// Resumes where the duty holder resumed *itself* — zero host context
    /// switches (handoff and window modes).
    pub self_continues: u64,
    /// Events applied without resuming anyone (deliveries to busy
    /// processes, checkpoint wakes, stale wakes) by a duty-holding process.
    pub inline_events: u64,
    /// Window mode: largest number of groups dispatched concurrently in
    /// one window (capped by the worker-thread count).
    pub max_parallel_groups: u64,
    /// Window mode: windows with a single runnable group, executed inline
    /// by the coordinator — the barrier bought no parallelism there.
    pub barrier_stalls: u64,
}

/// What applying one event did (see [`Kernel::apply`]).
enum Resumption {
    /// `Resume::Go` was sent to another process.
    Cross,
    /// The applying process resumed itself; nothing was sent. `key` is the
    /// resuming event's key — the group's running envelope from here on.
    SelfGo { key: EvKey, timed_out: bool },
}

/// What a [`Kernel::drain`] / [`Kernel::drain_window`] call ended with.
pub(crate) enum DrainOutcome {
    /// No events left while this drainer held duty (window mode: none left
    /// below the horizon — the group's window is complete).
    Empty,
    /// Duty was handed to the resumed process.
    Handoff,
    /// The draining process resumed itself (only when `me` was given).
    SelfResume { key: EvKey, timed_out: bool },
}

/// Per-window kernel state (window mode only; `None` between windows).
/// The allocation is recycled across windows: the barrier drains the
/// active groups' slots and hands the carcass back to the planner, so a
/// steady-state window costs no per-group allocations.
struct WindowState<M> {
    /// Group ids active in this window, ascending (the planner scans
    /// groups in id order). Only these slots are touched.
    active: Vec<usize>,
    /// Single-active window: driven inline by the coordinator with the
    /// cross-group arbiter bypassed entirely — no other group runs, so
    /// there is nothing to order against.
    solo: bool,
    /// Events strictly below this virtual time belong to the window.
    horizon: SimTime,
    /// Latest popped event time in this window (folded into `end_time` at
    /// the barrier).
    max_time: SimTime,
    /// Per-group control routes: `Ctrl` messages from a group's processes
    /// must reach the worker currently driving that group.
    routes: Vec<Option<Sender<Ctrl>>>,
    /// Cross-group events pushed during the window, buffered per *source*
    /// group and merged into the destination queues at the barrier. Every
    /// buffered key is `>= horizon` (conservative-lookahead contract), and
    /// keys are mode-independent, so the keyed merge is deterministic.
    outboxes: Vec<Vec<(EvKey, EventKind<M>)>>,
    /// Per-group trace buffers, merged in key order at the barrier (only
    /// allocated when tracing).
    traces: Option<Vec<Vec<TraceEntry>>>,
    /// Process exits observed during the window, per group in observation
    /// order. Collected at the barrier in group order, so exit processing
    /// never depends on which worker observed the exit first.
    exits: Vec<Vec<(Pid, bool)>>,
}

impl<M> WindowState<M> {
    fn new(n_groups: usize, horizon: SimTime, tracing: bool) -> Self {
        WindowState {
            active: Vec::new(),
            solo: false,
            horizon,
            max_time: SimTime::ZERO,
            routes: (0..n_groups).map(|_| None).collect(),
            outboxes: (0..n_groups).map(|_| Vec::new()).collect(),
            traces: tracing.then(|| (0..n_groups).map(|_| Vec::new()).collect()),
            exits: (0..n_groups).map(|_| Vec::new()).collect(),
        }
    }

    /// Re-arm a recycled window for the next round. The previous barrier
    /// drained every per-group slot, so only the header fields need
    /// resetting.
    fn rearm(&mut self, horizon: SimTime, active: Vec<usize>, solo: bool) {
        debug_assert!(self.active.is_empty());
        self.active = active;
        self.solo = solo;
        self.horizon = horizon;
        self.max_time = SimTime::ZERO;
    }
}

/// The cross-thread window arbiter: per-group *positions* behind a plain
/// std mutex + condvar, separate from the kernel lock so processes can wait
/// on it without blocking the kernel.
///
/// A group's position is the **running envelope** of its window: the
/// maximum event key it has popped so far (`KEY_MAX` when inactive or
/// finished). Raw per-group pop sequences are not monotone in key — a
/// process's same-instant follow-ups (checkpoint wakes, local sends) carry
/// its own group id, which can sort below an already-consumed key from a
/// higher group — but the serial coordinator provably pops across groups
/// in ascending *envelope* order: a group's head can only drop below
/// another group's pending key through its own execution, which the serial
/// loop runs only after popping the (larger) key that resumed it. The
/// envelope is monotone and its values are globally unique event keys, so
/// ordering by it is total, the least-envelope group can always proceed
/// (deadlock freedom), and a group admitted once can never be undercut by
/// a later-created smaller key (its envelope already covers it).
///
/// [`Ctx::ordered`](crate::Ctx::ordered) blocks until every other group's
/// position is strictly greater than the caller's envelope, so operations
/// on shared *simulated* resources (network links) execute in exactly the
/// serial global order while unrelated compute still overlaps.
pub(crate) struct WindowSync {
    /// Fast-path gate: false outside window-mode runs, so `ordered` costs
    /// one relaxed load in the serial and handoff modes.
    enabled: AtomicBool,
    /// True only while a *multi-group* window is in flight. Single-active
    /// windows bypass the arbiter entirely (nothing to order against), so
    /// `ordered` stays two atomic loads on the majority of windows.
    multi: AtomicBool,
    /// Number of processes blocked in [`await_turn`](Self::await_turn).
    /// Mutated only under `inner`; read lock-free by drains to skip the
    /// per-pop position publish while nobody is watching.
    waiters: AtomicUsize,
    inner: StdMutex<SyncState>,
    cv: Condvar,
}

struct SyncState {
    /// True while a multi-group window is in flight.
    windowing: bool,
    /// pid → group, copied from the kernel at run start.
    group_of: Vec<usize>,
    /// Published per-group envelopes. May lag a group's true envelope
    /// while no waiter exists (publishing is gated on `waiters`); every
    /// path on which a group stops popping republishes — next pop with a
    /// waiter present, [`await_turn`](WindowSync::await_turn) publishing
    /// the caller's own key, or [`finish_group`](WindowSync::finish_group)
    /// — so a waiter only ever blocks on a *live* understatement.
    positions: Vec<EvKey>,
}

impl WindowSync {
    fn new() -> Self {
        WindowSync {
            enabled: AtomicBool::new(false),
            multi: AtomicBool::new(false),
            waiters: AtomicUsize::new(0),
            inner: StdMutex::new(SyncState {
                windowing: false,
                group_of: Vec::new(),
                positions: Vec::new(),
            }),
            cv: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, SyncState> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Anyone blocked in the arbiter right now? Lock-free; drains use it
    /// to skip [`advance`](Self::advance) on the uncontended fast path.
    #[inline]
    pub(crate) fn has_waiters(&self) -> bool {
        self.waiters.load(Ordering::Relaxed) > 0
    }

    /// Open a multi-group window: active groups start positioned at their
    /// head keys (set before dispatch, so a group whose worker has not
    /// started yet already holds its place in the arbiter); everyone else
    /// is `KEY_MAX`. Single-active windows never call this.
    fn begin_window(&self, active: &[(usize, EvKey)]) {
        let mut s = self.lock();
        s.positions.iter_mut().for_each(|p| *p = KEY_MAX);
        for &(g, key) in active {
            s.positions[g] = key;
        }
        s.windowing = true;
        drop(s);
        self.multi.store(true, Ordering::Release);
    }

    /// Publish event `key` (just popped by group `g`) as the group's
    /// envelope position. Only called when a waiter exists (or from the
    /// always-published paths); the fold keeps it monotone regardless.
    fn advance(&self, g: usize, key: EvKey) {
        let mut s = self.lock();
        if key > s.positions[g] {
            s.positions[g] = key;
            if self.has_waiters() {
                self.cv.notify_all();
            }
        }
    }

    /// Group `g` finished its window. Always published: a finished group
    /// pops no more, so its `KEY_MAX` must be visible to present *and
    /// future* waiters.
    fn finish_group(&self, g: usize) {
        let mut s = self.lock();
        s.positions[g] = KEY_MAX;
        if self.has_waiters() {
            self.cv.notify_all();
        }
    }

    /// Close the window (barrier reached, or the run is unwinding).
    fn end_window(&self) {
        self.multi.store(false, Ordering::Release);
        let mut s = self.lock();
        s.windowing = false;
        self.cv.notify_all();
    }

    /// Block until every other group is strictly past `mine`, the key of
    /// the event that resumed the calling process — which *is* its group's
    /// current envelope: the group's drain stopped at that pop, and only
    /// resumes after this process blocks again. No-op outside multi-group
    /// windows.
    pub(crate) fn await_turn(&self, pid: Pid, mine: EvKey) {
        if !self.enabled.load(Ordering::Acquire) || !self.multi.load(Ordering::Acquire) {
            return;
        }
        let mut s = self.lock();
        if !s.windowing {
            return;
        }
        let g = s.group_of[pid];
        // Publish our own envelope: gated publishing means `positions[g]`
        // may understate it, and a mutual-understatement standoff between
        // two waiting groups would deadlock.
        if mine > s.positions[g] {
            s.positions[g] = mine;
            if self.has_waiters() {
                self.cv.notify_all();
            }
        }
        loop {
            let blocked = s.positions.iter().enumerate().any(|(h, &k)| h != g && k <= mine);
            if !s.windowing || !blocked {
                return;
            }
            self.waiters.fetch_add(1, Ordering::Relaxed);
            s = self.cv.wait(s).unwrap_or_else(|e| e.into_inner());
            self.waiters.fetch_sub(1, Ordering::Relaxed);
        }
    }
}

pub(crate) struct Kernel<M> {
    queues: EventQueues<M>,
    pub procs: Vec<ProcSlot<M>>,
    /// Per-source-group event sequence counters (index = group id at push
    /// time). Each group's pushes are serialized by its own execution, so
    /// the counters are deterministic in every host mode — no worker-raced
    /// global counter.
    seqs: Vec<u64>,
    pub trace: Option<Vec<TraceEntry>>,
    /// Count of popped events, for the report.
    pub events_processed: u64,
    /// Virtual time of the last popped event (window mode: updated at
    /// barriers).
    pub end_time: SimTime,
    pub mode: ExecMode,
    /// Conservative lookahead: the minimum virtual latency of any
    /// cross-group message, used for window construction and validation.
    pub lookahead: Dur,
    /// Host worker threads for the window mode.
    pub host_threads: usize,
    /// True once groups were explicitly assigned (enables the lookahead
    /// check and the window mode — with default per-pid groups, same-node
    /// traffic crosses groups at zero latency and windows collapse).
    grouped: bool,
    /// End of the lookahead window the last pop fell into (grouped runs
    /// with nonzero lookahead; stays ZERO otherwise). The quiescence tail
    /// after the last primary exit is bounded by this horizon.
    cur_horizon: SimTime,
    /// In-flight window (window mode only).
    window: Option<WindowState<M>>,
    /// True for the whole window-mode run: inserts skip the merge index.
    windowing: bool,
    /// Shared with every `Ctx` for the link-order arbiter.
    pub sync: Arc<WindowSync>,
    /// Global control channel (serial loop, unwinding, and the fallback
    /// route when no window is active).
    pub(crate) ctrl_tx: Sender<Ctrl>,
    pub exec: ExecCounters,
}

impl<M> Kernel<M> {
    /// Schedule an event pushed by process `src`. The key is formed from
    /// `src`'s group and that group's sequence counter.
    pub(crate) fn push_event(&mut self, src: Pid, time: SimTime, kind: EventKind<M>) {
        let sg = self.queues.group_of[src];
        if self.seqs.len() <= sg {
            self.seqs.resize(sg + 1, 0);
        }
        let seq = self.seqs[sg];
        self.seqs[sg] += 1;
        let key = (time, sg as u64, seq);
        if let Some(w) = &mut self.window {
            let tg = self.queues.group_of[kind.target()];
            if tg != sg {
                debug_assert!(
                    time >= w.horizon,
                    "cross-group delivery below the window horizon: at {time:?}, \
                     horizon {:?}, lookahead {:?}",
                    w.horizon,
                    self.lookahead
                );
                w.outboxes[sg].push((key, kind));
                return;
            }
            self.queues.insert_plain(key, kind);
            return;
        }
        #[cfg(debug_assertions)]
        self.assert_lookahead(time, &kind);
        if self.windowing {
            self.queues.insert_plain(key, kind);
        } else {
            self.queues.push(key, kind);
        }
    }

    /// Validate the conservative-lookahead contract: a running process can
    /// only affect *another* node at least `lookahead` of virtual time in
    /// the future. This is what makes a window safe — no cross-node event
    /// can appear under a draining group's feet — and it holds because the
    /// network model charges at least the minimum cross-node latency on
    /// every inter-node message.
    #[cfg(debug_assertions)]
    fn assert_lookahead(&self, time: SimTime, kind: &EventKind<M>) {
        if !self.grouped || self.lookahead == Dur::ZERO {
            return;
        }
        let EventKind::Deliver { dst, env } = kind else { return };
        if self.queues.group_of[env.from] == self.queues.group_of[*dst] {
            return;
        }
        debug_assert!(
            time >= self.end_time + self.lookahead,
            "cross-group delivery inside the lookahead window: at {time:?}, \
             kernel at {:?}, lookahead {:?}",
            self.end_time,
            self.lookahead
        );
    }

    pub(crate) fn bump_gen(&mut self, pid: Pid) -> u64 {
        self.procs[pid].gen += 1;
        self.procs[pid].gen
    }

    /// Pop the globally next event and do the per-event bookkeeping
    /// (serial and handoff modes).
    fn pop_next(&mut self) -> Option<Event<M>> {
        let ev = self.queues.pop()?;
        debug_assert!(ev.time >= self.end_time, "kernel time went backwards");
        self.end_time = self.end_time.max(ev.time);
        self.events_processed += 1;
        if self.grouped && self.lookahead != Dur::ZERO && ev.time >= self.cur_horizon {
            self.cur_horizon = ev.time + self.lookahead;
        }
        if let Some(trace) = &mut self.trace {
            trace.push(TraceEntry::from_event(&ev));
        }
        Some(ev)
    }

    /// Apply a popped event. Returns what resumption, if any, it caused;
    /// `me` is the applying process (duty holder), which is resumed in
    /// place instead of through its channel.
    fn apply(&mut self, ev: Event<M>, me: Option<Pid>) -> Option<Resumption> {
        // The event's queue key rides along into the resumption: a resumed
        // process's group envelope *is* this key (its group drains only
        // resume after it blocks again), so `Ctx::ordered` can hand the
        // arbiter its true position without taking the kernel lock.
        let key = (ev.time, ev.src, ev.seq);
        match ev.kind {
            EventKind::Wake { pid, gen } => {
                let slot = &self.procs[pid];
                if slot.gen != gen
                    || slot.status == Status::Exited
                    || slot.status == Status::Running
                {
                    return None; // stale wake
                }
                match slot.status {
                    Status::Sleeping => Some(self.resume(pid, key, false, me)),
                    Status::Polling { deadline } => {
                        if !self.procs[pid].mailbox.is_empty() {
                            Some(self.resume(pid, key, false, me))
                        } else if deadline == Some(ev.time) {
                            // Zero-length timeout: the checkpoint *is* the
                            // deadline.
                            Some(self.resume(pid, key, true, me))
                        } else {
                            self.procs[pid].status = Status::Waiting { deadline };
                            None
                        }
                    }
                    Status::Waiting { deadline } => {
                        // Only the deadline wake is still live for a waiter.
                        debug_assert_eq!(deadline, Some(ev.time));
                        Some(self.resume(pid, key, true, me))
                    }
                    Status::Running | Status::Exited => None,
                }
            }
            EventKind::Deliver { dst, env } => {
                let slot = &mut self.procs[dst];
                if slot.status == Status::Exited {
                    return None; // message to a dead process is dropped
                }
                slot.mailbox.push_back(env);
                match slot.status {
                    Status::Waiting { .. } => Some(self.resume(dst, key, false, me)),
                    _ => None,
                }
            }
        }
    }

    fn resume(&mut self, pid: Pid, key: EvKey, timed_out: bool, me: Option<Pid>) -> Resumption {
        let slot = &mut self.procs[pid];
        debug_assert!(slot.clock <= key.0, "process resumed into its past");
        slot.gen += 1; // invalidate any other pending wakes
        slot.status = Status::Running;
        slot.clock = key.0;
        if me == Some(pid) {
            Resumption::SelfGo { key, timed_out }
        } else {
            slot.resume_tx.send(Resume::Go { key, timed_out }).expect("process thread vanished");
            Resumption::Cross
        }
    }

    /// Drive the kernel while holding duty: pop and apply events until one
    /// resumes a process (duty moves to it) or the queue runs dry. `me` is
    /// the duty-holding process, or `None` for the coordinator.
    /// Serial and handoff modes only.
    pub(crate) fn drain(&mut self, me: Option<Pid>) -> DrainOutcome {
        let mut popped = false;
        loop {
            let Some(ev) = self.pop_next() else {
                if popped {
                    self.exec.windows += 1;
                }
                return DrainOutcome::Empty;
            };
            popped = true;
            match self.apply(ev, me) {
                None => self.exec.inline_events += 1,
                Some(Resumption::SelfGo { key, timed_out }) => {
                    self.exec.windows += 1;
                    self.exec.self_continues += 1;
                    return DrainOutcome::SelfResume { key, timed_out };
                }
                Some(Resumption::Cross) => {
                    self.exec.windows += 1;
                    self.exec.handoff_switches += 1;
                    return DrainOutcome::Handoff;
                }
            }
        }
    }

    /// Window-mode drain of one group: pop and apply group `g`'s events
    /// strictly below the window horizon, advancing the arbiter position at
    /// every pop. Only group-local state is touched (events target `g`'s
    /// processes by construction), so concurrent drains of different groups
    /// under the kernel lock's serialization are free of cross-group
    /// interference — and bit-identical to the serial pops.
    pub(crate) fn drain_window(&mut self, g: usize, me: Option<Pid>) -> DrainOutcome {
        loop {
            let horizon = self.window.as_ref().expect("drain_window outside a window").horizon;
            let Some(key) = self.queues.head_of(g) else { return DrainOutcome::Empty };
            if key.0 >= horizon {
                return DrainOutcome::Empty;
            }
            let ev = self.queues.take_from(key, g);
            debug_assert!(ev.time >= self.end_time, "window popped into the kernel's past");
            self.events_processed += 1;
            let tracing = self.trace.is_some();
            let w = self.window.as_mut().expect("window vanished");
            let solo = w.solo;
            w.max_time = w.max_time.max(key.0);
            if tracing {
                if let Some(bufs) = &mut w.traces {
                    bufs[g].push(TraceEntry::from_event(&ev));
                }
            }
            // Publish the envelope only when someone is actually blocked on
            // it: an `ordered` caller publishes its own position before
            // waiting, so an unwatched lag here can never strand a waiter.
            // Solo windows skip the arbiter outright.
            if !solo && self.sync.has_waiters() {
                self.sync.advance(g, key);
            }
            match self.apply(ev, me) {
                None => self.exec.inline_events += 1,
                Some(Resumption::SelfGo { key, timed_out }) => {
                    self.exec.self_continues += 1;
                    return DrainOutcome::SelfResume { key, timed_out };
                }
                Some(Resumption::Cross) => {
                    self.exec.handoff_switches += 1;
                    return DrainOutcome::Handoff;
                }
            }
        }
    }

    /// The control route for `pid`'s group: the worker currently driving
    /// the group during a window, the global channel otherwise.
    pub(crate) fn ctrl_route(&self, pid: Pid) -> Sender<Ctrl> {
        if let Some(w) = &self.window {
            let g = self.queues.group_of[pid];
            if let Some(tx) = &w.routes[g] {
                return tx.clone();
            }
        }
        self.ctrl_tx.clone()
    }

    /// Record an exit in the process table (status must flip before any
    /// further event targeting the process is applied, in every mode).
    fn mark_exited(&mut self, pid: Pid, panicked: bool) {
        let slot = &mut self.procs[pid];
        slot.status = Status::Exited;
        slot.panicked = panicked;
    }

    pub(crate) fn group_of(&self, pid: Pid) -> usize {
        self.queues.group_of[pid]
    }
}

/// Control messages from process threads back to the engine.
pub(crate) enum Ctrl {
    /// The process blocked (its slot describes on what). Serial mode only.
    Yielded(Pid),
    /// A duty-holding process found no more runnable events (handoff:
    /// queue empty; window: group done below the horizon): duty returns to
    /// the coordinator/worker.
    Idle(Pid),
    /// The process function returned or unwound.
    Exited(Pid, /*panicked*/ bool),
    /// Window mode only, coordinator → worker pool: start driving this
    /// group's window. Shares the channel with the processes' `Idle` /
    /// `Exited` continuations so a worker is never parked on one group
    /// while another group's continuation is waiting — any free worker
    /// picks up whichever group becomes runnable next (see
    /// [`worker_loop`]).
    Adopt(usize),
}

/// Summary of a completed simulation run.
#[derive(Debug)]
pub struct SimReport {
    /// Virtual time of the last processed event.
    pub end_time: SimTime,
    /// Final virtual clock of every process, by name.
    pub proc_clocks: Vec<(String, SimTime)>,
    /// Total number of kernel events processed.
    pub events_processed: u64,
    /// Event trace, if recording was enabled with [`Sim::record_trace`].
    pub trace: Option<Vec<TraceEntry>>,
    /// Messages still sitting in process mailboxes when the run ended,
    /// as `(process name, count)` for each non-empty mailbox. A quiescent
    /// protocol leaves this empty; a wedged recovery path shows up here as
    /// undelivered traffic.
    pub mailbox_backlog: Vec<(String, usize)>,
    /// How the host drove the run (context-switch economy). Not part of
    /// the simulation result: excluded from determinism fingerprints.
    pub exec: ExecCounters,
}

/// A simulation under construction and its runner.
///
/// `M` is the message payload type exchanged between processes.
///
/// ```
/// use repseq_sim::{Sim, Dur};
///
/// let mut sim = Sim::<&'static str>::new();
/// let ping = sim.spawn("ping", |ctx| {
///     ctx.send(1, "hello", ctx.now() + Dur::from_micros(10));
///     Ok(())
/// });
/// assert_eq!(ping, 0);
/// sim.spawn("pong", |ctx| {
///     let env = ctx.recv()?;
///     assert_eq!(env.msg, "hello");
///     assert_eq!(env.at.nanos(), 10_000);
///     Ok(())
/// });
/// let report = sim.run().unwrap();
/// assert_eq!(report.end_time.nanos(), 10_000);
/// ```
pub struct Sim<M: Send + 'static> {
    kernel: Arc<Mutex<Kernel<M>>>,
    ctrl_tx: Sender<Ctrl>,
    ctrl_rx: Receiver<Ctrl>,
    threads: Vec<Option<JoinHandle<()>>>,
    record_trace: bool,
}

impl<M: Send + 'static> Default for Sim<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M: Send + 'static> Sim<M> {
    /// Create an empty simulation.
    pub fn new() -> Self {
        let (ctrl_tx, ctrl_rx) = unbounded();
        Sim {
            kernel: Arc::new(Mutex::new(Kernel {
                queues: EventQueues::new(),
                procs: Vec::new(),
                seqs: Vec::new(),
                trace: None,
                events_processed: 0,
                end_time: SimTime::ZERO,
                mode: ExecMode::Serial,
                lookahead: Dur::ZERO,
                host_threads: 1,
                grouped: false,
                cur_horizon: SimTime::ZERO,
                window: None,
                windowing: false,
                sync: Arc::new(WindowSync::new()),
                ctrl_tx: ctrl_tx.clone(),
                exec: ExecCounters::default(),
            })),
            ctrl_tx,
            ctrl_rx,
            threads: Vec::new(),
            record_trace: false,
        }
    }

    /// Record an event trace in the report (used by determinism tests).
    pub fn record_trace(&mut self, on: bool) {
        self.record_trace = on;
    }

    /// Enable parallel host execution: `threads >= 2` selects the
    /// window-parallel mode (1 keeps the serial coordinator loop).
    /// `lookahead` must be a lower bound on the virtual latency of any
    /// message between processes of different groups — pass the network's
    /// minimum cross-node latency. Runs without assigned groups or with
    /// zero lookahead fall back to the duty-handoff mode. The simulation
    /// *result* is bit-identical in every mode; only the host scheduling
    /// (and [`SimReport::exec`]) changes.
    pub fn set_parallel(&mut self, threads: usize, lookahead: Dur) {
        let exec = if threads >= 2 { HostExec::Window } else { HostExec::Serial };
        self.set_exec(exec, threads, lookahead);
    }

    /// Select a host execution mode explicitly (the benchmarks use this to
    /// measure the duty-handoff mode against the window mode).
    pub fn set_exec(&mut self, exec: HostExec, threads: usize, lookahead: Dur) {
        let mut k = self.kernel.lock();
        k.mode = exec;
        k.host_threads = threads.max(1);
        k.lookahead = lookahead;
    }

    /// Put `pid` into scheduling group `group`. Processes of one simulated
    /// node (its application and its protocol handler) should share a
    /// group: their mutual traffic has zero latency, while cross-group
    /// traffic is bounded below by the lookahead.
    pub fn assign_group(&mut self, pid: Pid, group: usize) {
        let mut k = self.kernel.lock();
        k.queues.assign_group(pid, group);
        k.grouped = true;
    }

    /// Spawn a primary process. The simulation ends when every primary
    /// process has exited (after the lookahead window the last exit fell
    /// into is finished — see the module docs).
    pub fn spawn<F>(&mut self, name: &str, f: F) -> Pid
    where
        F: FnOnce(Ctx<M>) -> Result<(), Stopped> + Send + 'static,
    {
        self.spawn_inner(name, false, f)
    }

    /// Spawn a daemon process (e.g. a protocol request handler). Daemons are
    /// stopped automatically once all primary processes exit: their pending
    /// blocking call returns [`Stopped`].
    pub fn spawn_daemon<F>(&mut self, name: &str, f: F) -> Pid
    where
        F: FnOnce(Ctx<M>) -> Result<(), Stopped> + Send + 'static,
    {
        self.spawn_inner(name, true, f)
    }

    fn spawn_inner<F>(&mut self, name: &str, daemon: bool, f: F) -> Pid
    where
        F: FnOnce(Ctx<M>) -> Result<(), Stopped> + Send + 'static,
    {
        let (resume_tx, resume_rx) = unbounded();
        let pid = {
            let mut k = self.kernel.lock();
            let pid = k.procs.len();
            k.procs.push(ProcSlot {
                name: name.to_string(),
                daemon,
                status: Status::Sleeping,
                gen: 0,
                clock: SimTime::ZERO,
                mailbox: VecDeque::new(),
                resume_tx,
                panicked: false,
            });
            k.queues.add_proc();
            // Initial wake at t=0 so the process starts when the engine runs.
            k.push_event(pid, SimTime::ZERO, EventKind::Wake { pid, gen: 0 });
            pid
        };
        let ctx = Ctx::new(pid, Arc::clone(&self.kernel), resume_rx);
        let kernel = Arc::clone(&self.kernel);
        let ctrl_tx = self.ctrl_tx.clone();
        let handle = std::thread::Builder::new()
            .name(format!("sim-{name}"))
            .spawn(move || {
                // Wait for the first resume before touching anything.
                match ctx.wait_first_resume() {
                    Ok(()) => {
                        let guard = ExitGuard { pid, kernel, armed: true };
                        let _ = f(ctx);
                        guard.disarm_and_exit();
                    }
                    Err(Stopped) => {
                        let _ = ctrl_tx.send(Ctrl::Exited(pid, false));
                    }
                }
            })
            .expect("failed to spawn simulation thread");
        self.threads.push(Some(handle));
        pid
    }

    /// Run the simulation to completion.
    pub fn run(mut self) -> Result<SimReport, SimError> {
        if self.record_trace {
            self.kernel.lock().trace = Some(Vec::new());
        }
        let (n_primary, mode, threads) = {
            let mut k = self.kernel.lock();
            // The window mode needs real groups and a positive lookahead to
            // build windows from; degenerate configurations keep the
            // (equivalent, still multi-threaded) duty-handoff scheduling.
            if k.mode == ExecMode::Window
                && (!k.grouped || k.lookahead == Dur::ZERO || k.host_threads < 2)
            {
                k.mode = ExecMode::Handoff;
            }
            (k.procs.iter().filter(|p| !p.daemon).count(), k.mode, k.host_threads)
        };
        if n_primary == 0 {
            return Err(SimError::NoPrimaryProcesses);
        }
        let result = match mode {
            ExecMode::Serial => self.event_loop_serial(n_primary),
            ExecMode::Handoff => self.event_loop_handoff(n_primary),
            ExecMode::Window => self.event_loop_window(n_primary, threads),
        };

        // Stop remaining processes (daemons, or everyone on error).
        self.stop_remaining();
        let join_err = self.join_threads();

        let mut k = self.kernel.lock();
        k.exec.sprint_pops = k.queues.sprint_pops;
        let report = SimReport {
            end_time: k.end_time,
            proc_clocks: k.procs.iter().map(|p| (p.name.clone(), p.clock)).collect(),
            events_processed: k.events_processed,
            trace: k.trace.take(),
            mailbox_backlog: k
                .procs
                .iter()
                .filter(|p| !p.mailbox.is_empty())
                .map(|p| (p.name.clone(), p.mailbox.len()))
                .collect(),
            exec: k.exec,
        };
        drop(k);

        match result {
            Ok(()) => {
                if let Some(e) = join_err {
                    return Err(e);
                }
                Ok(report)
            }
            Err(e) => Err(e),
        }
    }

    /// The classic coordinator loop: pop one event at a time; on a resume,
    /// wait for the process to yield back. Once the last primary has
    /// exited, only the remainder of the current lookahead window is
    /// drained (nothing at all when the horizon is degenerate).
    fn event_loop_serial(&mut self, n_primary: usize) -> Result<(), SimError> {
        let mut live_primary = n_primary;
        loop {
            let action = {
                let mut k = self.kernel.lock();
                if live_primary == 0 && k.queues.peek_min().is_none_or(|key| key.0 >= k.cur_horizon)
                {
                    return Ok(());
                }
                match k.pop_next() {
                    None => {
                        // No events left: either everything exited, or the
                        // remaining processes are deadlocked waiting for
                        // messages that will never arrive.
                        if live_primary == 0 {
                            return Ok(());
                        }
                        return Err(SimError::Deadlock { blocked: Self::blocked_procs(&k) });
                    }
                    Some(ev) => k.apply(ev, None),
                }
            };
            // If the event resumed a process, run it until it yields/exits.
            if let Some(Resumption::Cross) = action {
                match self.ctrl_rx.recv().expect("all process threads vanished") {
                    Ctrl::Yielded(_) => {}
                    Ctrl::Idle(_) => unreachable!("Idle is never sent in serial mode"),
                    Ctrl::Adopt(_) => unreachable!("Adopt is never sent on the global channel"),
                    Ctrl::Exited(xpid, panicked) => {
                        if let Some(end) = self.note_exit(xpid, panicked, &mut live_primary) {
                            return end;
                        }
                    }
                }
            }
        }
    }

    /// The duty-handoff loop: the coordinator only seeds the run and takes
    /// duty back at exits and idles; between those, the process threads
    /// drive the kernel themselves (see [`Kernel::drain`] and
    /// [`Ctx`](crate::Ctx)'s blocking path). The post-exit tail runs
    /// through the serial loop so the horizon bound applies identically.
    fn event_loop_handoff(&mut self, n_primary: usize) -> Result<(), SimError> {
        let mut live_primary = n_primary;
        loop {
            let outcome = self.kernel.lock().drain(None);
            match outcome {
                DrainOutcome::SelfResume { .. } => {
                    unreachable!("the coordinator cannot resume itself")
                }
                DrainOutcome::Empty => {
                    if live_primary == 0 {
                        return Ok(());
                    }
                    let k = self.kernel.lock();
                    return Err(SimError::Deadlock { blocked: Self::blocked_procs(&k) });
                }
                DrainOutcome::Handoff => {
                    // Duty circulates among the process threads now; it
                    // comes back with an exit or an idle notification.
                    match self.ctrl_rx.recv().expect("all process threads vanished") {
                        Ctrl::Yielded(_) => unreachable!("Yielded is never sent in handoff mode"),
                        Ctrl::Adopt(_) => {
                            unreachable!("Adopt is never sent on the global channel")
                        }
                        Ctrl::Idle(_) => {}
                        Ctrl::Exited(xpid, panicked) => {
                            if let Some(end) = self.note_exit(xpid, panicked, &mut live_primary) {
                                return end;
                            }
                            if live_primary == 0 {
                                // Drain the rest of the current window
                                // serially (stopping processes must not
                                // pick duty back up mid-tail).
                                self.kernel.lock().mode = ExecMode::Serial;
                                return self.event_loop_serial_from(0);
                            }
                        }
                    }
                }
            }
        }
    }

    /// Continue the serial loop with `live_primary` already at the given
    /// count (the handoff loop's quiescence tail).
    fn event_loop_serial_from(&mut self, live_primary: usize) -> Result<(), SimError> {
        debug_assert_eq!(live_primary, 0);
        let mut live = live_primary;
        loop {
            let action = {
                let mut k = self.kernel.lock();
                if k.queues.peek_min().is_none_or(|key| key.0 >= k.cur_horizon) {
                    return Ok(());
                }
                let ev = k.pop_next().expect("peeked event vanished");
                k.apply(ev, None)
            };
            if let Some(Resumption::Cross) = action {
                match self.ctrl_rx.recv().expect("all process threads vanished") {
                    Ctrl::Yielded(_) => {}
                    Ctrl::Idle(_) => unreachable!("Idle is never sent in serial mode"),
                    Ctrl::Adopt(_) => unreachable!("Adopt is never sent on the global channel"),
                    Ctrl::Exited(xpid, panicked) => {
                        if let Some(end) = self.note_exit(xpid, panicked, &mut live) {
                            return end;
                        }
                    }
                }
            }
        }
    }

    /// The window-parallel loop. Each iteration: find the global minimum
    /// head `T`, set the horizon `H = T + lookahead`, dispatch every group
    /// whose head is below `H` to the worker pool, and merge the buffered
    /// cross-group sends, traces and exits at the barrier. See the module
    /// docs for the determinism argument.
    fn event_loop_window(&mut self, n_primary: usize, threads: usize) -> Result<(), SimError> {
        let mut live_primary = n_primary;
        let sync = {
            let mut k = self.kernel.lock();
            k.windowing = true;
            // The merge index is unused from here on; park the deferred
            // slot so no head is hidden from the direct scans.
            if let Some(d) = k.queues.deferred.take() {
                k.queues.heads.push(Reverse(d));
            }
            let sync = Arc::clone(&k.sync);
            {
                let mut s = sync.lock();
                s.group_of = k.queues.group_of.clone();
                s.positions = vec![KEY_MAX; k.queues.groups.len()];
                s.windowing = false;
            }
            sync.enabled.store(true, Ordering::Release);
            sync
        };
        // One shared channel carries both group adoptions (`Ctrl::Adopt`,
        // from the coordinator) and duty continuations (`Ctrl::Idle` /
        // `Ctrl::Exited`, from the groups' processes — active groups'
        // window routes point here). Workers block *only* on this channel:
        // a worker that hands duty to a process immediately returns for
        // the next runnable group instead of waiting for that process, so
        // a process parked in `ordered()` can never wedge the window by
        // pinning both its own worker and — transitively — the undispatched
        // group it is waiting for.
        let (win_tx, win_rx) = unbounded::<Ctrl>();
        let (done_tx, done_rx) = unbounded::<usize>();
        let mut workers = Vec::with_capacity(threads);
        for wi in 0..threads {
            let kernel = Arc::clone(&self.kernel);
            let sync = Arc::clone(&sync);
            let win_rx = win_rx.clone();
            let done_tx = done_tx.clone();
            workers.push(
                std::thread::Builder::new()
                    .name(format!("sim-worker-{wi}"))
                    .spawn(move || worker_loop(kernel, sync, win_rx, done_tx))
                    .expect("failed to spawn window worker"),
            );
        }
        // The window carcass is recycled across iterations: the barrier
        // drains only the just-active slots and parks the allocation here,
        // so a steady-state window allocates nothing per group.
        let mut spare: Option<WindowState<M>> = None;
        let result = 'run: loop {
            // Plan the window: global minimum head + lookahead horizon.
            let (active, solo) = {
                let mut k = self.kernel.lock();
                let n_groups = k.queues.groups.len();
                let heads: Vec<(usize, EvKey)> =
                    (0..n_groups).filter_map(|g| k.queues.head_of(g).map(|key| (g, key))).collect();
                let Some(&(_, t_key)) = heads.iter().min_by_key(|&&(_, key)| key) else {
                    break 'run if live_primary == 0 {
                        Ok(())
                    } else {
                        Err(SimError::Deadlock { blocked: Self::blocked_procs(&k) })
                    };
                };
                let horizon = t_key.0 + k.lookahead;
                k.cur_horizon = horizon;
                let active: Vec<(usize, EvKey)> =
                    heads.into_iter().filter(|&(_, key)| key.0 < horizon).collect();
                let solo = active.len() == 1;
                k.exec.windows += 1;
                k.exec.max_parallel_groups =
                    k.exec.max_parallel_groups.max(active.len().min(threads) as u64);
                let tracing = k.trace.is_some();
                let mut window =
                    spare.take().unwrap_or_else(|| WindowState::new(n_groups, horizon, tracing));
                window.rearm(horizon, active.iter().map(|&(g, _)| g).collect(), solo);
                if !solo {
                    // Route the active groups' control traffic to the
                    // worker pool before anything is dispatched.
                    for &(g, _) in &active {
                        window.routes[g] = Some(win_tx.clone());
                    }
                }
                k.window = Some(window);
                if !solo {
                    // Solo windows never touch the arbiter: nothing else
                    // runs, so there is nothing to order against and
                    // `await_turn` short-circuits on the `multi` gate.
                    sync.begin_window(&active);
                }
                (active, solo)
            };
            // Execute it.
            let mut exits: Vec<(Pid, bool)> = Vec::new();
            if solo {
                // A lone runnable group: drive it inline, skipping the
                // dispatch round trip. The barrier bought no parallelism.
                let g = active[0].0;
                self.kernel.lock().exec.barrier_stalls += 1;
                self.drive_group_inline(g, &mut exits);
            } else {
                for &(g, _) in &active {
                    win_tx.send(Ctrl::Adopt(g)).expect("worker pool vanished");
                }
                for _ in 0..active.len() {
                    done_rx.recv().expect("worker pool vanished");
                }
            }
            // Barrier: merge outboxes and traces, close the window. Only
            // the active groups' slots can hold anything (inactive groups
            // neither pop nor push during a window), and `active` is
            // ascending, so the drain order matches the old full
            // group-order sweep.
            {
                let mut k = self.kernel.lock();
                let mut w = k.window.take().expect("window vanished at barrier");
                let mut tagged: Vec<(EvKey, usize, TraceEntry)> = Vec::new();
                for gi in 0..w.active.len() {
                    let g = w.active[gi];
                    w.routes[g] = None;
                    // Exit order must not depend on worker scheduling: the
                    // workers filed exits per group, collect them in group
                    // order (matching the serial coordinator's observation
                    // order at equal keys).
                    exits.append(&mut w.exits[g]);
                    for (key, kind) in w.outboxes[g].drain(..) {
                        k.queues.insert_plain(key, kind);
                    }
                    if let Some(bufs) = &mut w.traces {
                        // Serial interleaves groups in ascending *envelope*
                        // order (see [`WindowSync`]), not raw key order:
                        // tag each entry with its group's running max key
                        // and in-group index, then sort. Envelope values
                        // are globally unique keys, so ties only occur
                        // within one group, where the index restores pop
                        // order.
                        let mut env = (SimTime::ZERO, 0u64, 0u64);
                        for (idx, e) in bufs[g].drain(..).enumerate() {
                            env = env.max((e.time, e.src, e.seq));
                            tagged.push((env, idx, e));
                        }
                    }
                }
                if let Some(trace) = &mut k.trace {
                    tagged.sort_by_key(|&(env, idx, _)| (env, idx));
                    trace.extend(tagged.into_iter().map(|(_, _, e)| e));
                }
                k.end_time = k.end_time.max(w.max_time);
                w.active.clear();
                spare = Some(w);
                if !solo {
                    sync.end_window();
                }
            }
            for (pid, panicked) in exits {
                if let Some(end) = self.note_exit(pid, panicked, &mut live_primary) {
                    break 'run end;
                }
            }
            if live_primary == 0 {
                // The run ends with the window the last exit fell into.
                break 'run Ok(());
            }
        };
        sync.enabled.store(false, Ordering::Release);
        sync.end_window();
        drop(win_tx);
        for w in workers {
            let _ = w.join();
        }
        result
    }

    /// Drive one group's window from the coordinator thread (single-active
    /// windows), using the global control channel as the route.
    fn drive_group_inline(&mut self, g: usize, exits: &mut Vec<(Pid, bool)>) {
        {
            let mut k = self.kernel.lock();
            let tx = self.ctrl_tx.clone();
            k.window.as_mut().expect("window vanished").routes[g] = Some(tx);
        }
        'group: loop {
            let outcome = self.kernel.lock().drain_window(g, None);
            match outcome {
                DrainOutcome::Empty => break 'group,
                DrainOutcome::SelfResume { .. } => {
                    unreachable!("the coordinator cannot resume itself")
                }
                // Duty is with one of the group's processes; exactly one
                // continuation comes back per handoff — Idle (group done)
                // or Exited (re-drain for the group's remaining events).
                DrainOutcome::Handoff => {
                    match self.ctrl_rx.recv().expect("all process threads vanished") {
                        Ctrl::Idle(_) => break 'group,
                        Ctrl::Exited(pid, panicked) => {
                            self.kernel.lock().mark_exited(pid, panicked);
                            exits.push((pid, panicked));
                        }
                        Ctrl::Yielded(_) => unreachable!("Yielded is never sent in window mode"),
                        Ctrl::Adopt(_) => {
                            unreachable!("Adopt is never sent on the global channel")
                        }
                    }
                }
            }
        }
    }

    /// Record a process exit. Returns `Some(final result)` when the run
    /// must end right now (a panic), `None` to keep going — reaching zero
    /// live primaries ends the run at the horizon/barrier, which the
    /// callers check.
    fn note_exit(
        &mut self,
        xpid: Pid,
        panicked: bool,
        live_primary: &mut usize,
    ) -> Option<Result<(), SimError>> {
        let mut k = self.kernel.lock();
        k.mark_exited(xpid, panicked);
        let slot = &k.procs[xpid];
        if !slot.daemon {
            *live_primary -= 1;
        }
        let name = slot.name.clone();
        drop(k);
        if panicked {
            return Some(Err(SimError::ProcessPanicked { pid: xpid, name }));
        }
        None
    }

    fn blocked_procs(k: &Kernel<M>) -> Vec<(Pid, String)> {
        k.procs
            .iter()
            .enumerate()
            .filter(|(_, p)| p.status != Status::Exited && !p.daemon)
            .map(|(i, p)| (i, format!("{} ({:?})", p.name, p.status)))
            .collect()
    }

    fn stop_remaining(&mut self) {
        // Every remaining process is blocked (none can be Running here).
        // Send Stop; a stopped process may yield a few more times while
        // unwinding through nested calls, so keep answering Stop until it
        // exits. Unwinding yields must go through the serial path — a
        // stopping process must not pick duty back up.
        let pending: Vec<Pid> = {
            let mut k = self.kernel.lock();
            k.mode = ExecMode::Serial;
            k.window = None;
            k.sync.enabled.store(false, Ordering::Release);
            k.sync.end_window();
            k.procs
                .iter()
                .enumerate()
                .filter(|(_, p)| p.status != Status::Exited)
                .map(|(i, _)| i)
                .collect()
        };
        let mut outstanding = pending.len();
        {
            let k = self.kernel.lock();
            for &pid in &pending {
                let _ = k.procs[pid].resume_tx.send(Resume::Stop);
            }
        }
        // Drain control messages until all stopped processes have exited.
        let mut fuel: u64 = 1_000_000;
        while outstanding > 0 && fuel > 0 {
            fuel -= 1;
            match self.ctrl_rx.recv() {
                Ok(Ctrl::Exited(pid, panicked)) => {
                    let mut k = self.kernel.lock();
                    k.procs[pid].status = Status::Exited;
                    k.procs[pid].panicked = panicked;
                    outstanding -= 1;
                }
                Ok(Ctrl::Yielded(pid)) | Ok(Ctrl::Idle(pid)) => {
                    // A stopping process yielded again; answer Stop again.
                    let k = self.kernel.lock();
                    let _ = k.procs[pid].resume_tx.send(Resume::Stop);
                }
                Ok(Ctrl::Adopt(_)) => {}
                Err(_) => break,
            }
        }
    }

    fn join_threads(&mut self) -> Option<SimError> {
        let mut err = None;
        for (pid, h) in self.threads.iter_mut().enumerate() {
            if let Some(h) = h.take() {
                if h.join().is_err() && err.is_none() {
                    let name = self.kernel.lock().procs[pid].name.clone();
                    err = Some(SimError::ProcessPanicked { pid, name });
                }
            }
        }
        err
    }
}

/// One window worker: pull runnable groups off the shared window channel
/// — fresh adoptions from the coordinator and `Idle`/`Exited`
/// continuations from duty-holding processes — drive each until it hands
/// duty onward or completes its window, and report completions to the
/// barrier.
///
/// Workers block **only** on the shared channel, never on a process: when
/// `drain_window` hands duty to a process the worker simply moves on, and
/// the process's continuation (routed back to this same channel) is picked
/// up by whichever worker is free. This keeps every runnable group
/// runnable even when other groups' processes are parked in
/// [`WindowSync::await_turn`] — with per-group blocking workers, two
/// parked duty processes waiting on a still-queued group would deadlock
/// the window.
fn worker_loop<M: Send + 'static>(
    kernel: Arc<Mutex<Kernel<M>>>,
    sync: Arc<WindowSync>,
    win_rx: Receiver<Ctrl>,
    done_tx: Sender<usize>,
) {
    while let Ok(msg) = win_rx.recv() {
        let group = match msg {
            Ctrl::Adopt(g) => g,
            Ctrl::Idle(pid) => kernel.lock().group_of(pid),
            Ctrl::Exited(pid, panicked) => {
                let mut k = kernel.lock();
                k.mark_exited(pid, panicked);
                let g = k.group_of(pid);
                if let Some(w) = &mut k.window {
                    w.exits[g].push((pid, panicked));
                }
                g
            }
            Ctrl::Yielded(_) => unreachable!("Yielded is never sent in window mode"),
        };
        match kernel.lock().drain_window(group, None) {
            DrainOutcome::Empty => {
                sync.finish_group(group);
                if done_tx.send(group).is_err() {
                    return;
                }
            }
            DrainOutcome::SelfResume { .. } => unreachable!("workers cannot resume themselves"),
            // Duty is with one of the group's processes now; its Idle or
            // Exited comes back through this channel. Move on.
            DrainOutcome::Handoff => {}
        }
    }
}

impl<M: Send + 'static> Drop for Sim<M> {
    /// Stop and join any process threads still alive (covers simulations
    /// that are dropped without being run; after `run` this is a no-op).
    fn drop(&mut self) {
        {
            let mut k = self.kernel.lock();
            k.mode = ExecMode::Serial;
            k.window = None;
            k.sync.enabled.store(false, Ordering::Release);
            k.sync.end_window();
            for p in &k.procs {
                if p.status != Status::Exited {
                    let _ = p.resume_tx.send(Resume::Stop);
                }
            }
        }
        // Answer any further yields from unwinding processes with Stop.
        loop {
            match self.ctrl_rx.try_recv() {
                Ok(Ctrl::Yielded(pid)) | Ok(Ctrl::Idle(pid)) => {
                    let k = self.kernel.lock();
                    let _ = k.procs[pid].resume_tx.send(Resume::Stop);
                }
                Ok(Ctrl::Exited(..)) | Ok(Ctrl::Adopt(_)) => {}
                Err(_) => {
                    if self.threads.iter().all(|t| t.is_none()) {
                        break;
                    }
                    // Join whatever we can; threads answered with Stop will
                    // exit promptly.
                    let mut progressed = false;
                    for h in self.threads.iter_mut() {
                        if let Some(handle) = h.take() {
                            if handle.is_finished() {
                                let _ = handle.join();
                                progressed = true;
                            } else {
                                *h = Some(handle);
                            }
                        }
                    }
                    if !progressed {
                        std::thread::yield_now();
                    }
                }
            }
        }
    }
}

/// Sends `Exited` (through the window route when one is active) when a
/// process function returns or unwinds.
struct ExitGuard<M: Send + 'static> {
    pid: Pid,
    kernel: Arc<Mutex<Kernel<M>>>,
    armed: bool,
}

impl<M: Send + 'static> ExitGuard<M> {
    fn notify(&self, panicked: bool) {
        // The unwinding frames released any kernel guard before this Drop
        // runs, so taking the lock here is safe.
        let tx = self.kernel.lock().ctrl_route(self.pid);
        let _ = tx.send(Ctrl::Exited(self.pid, panicked));
    }

    fn disarm_and_exit(mut self) {
        self.armed = false;
        self.notify(false);
    }
}

impl<M: Send + 'static> Drop for ExitGuard<M> {
    fn drop(&mut self) {
        if self.armed {
            self.notify(true);
        }
    }
}
