//! The discrete-event kernel.
//!
//! Every simulated process is an OS thread that cooperates with the engine:
//! at any moment at most one process thread runs, and it is always the one
//! whose next event has the globally minimal virtual time. This serializes
//! execution completely, which makes every run bit-for-bit deterministic —
//! a property the reproduced paper *relies on* (replicated sequential
//! execution assumes deterministic sequential sections) and which makes the
//! experiments repeatable.
//!
//! Processes interact with the kernel only through [`Ctx`](crate::Ctx):
//! charging compute time, sending messages with an explicit delivery time
//! (computed by the network layer), and blocking receives. `send` never
//! yields; `recv`/`sleep` do. Local computation between yields is free in
//! wall-clock terms (no context switch) and is folded into the process clock
//! at the next yield point.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

use crate::ctx::{Ctx, Resume};
use crate::error::{SimError, Stopped};
use crate::time::SimTime;
use crate::trace::TraceEntry;

/// Identifier of a simulated process (index into the process table).
pub type Pid = usize;

/// A message in flight or in a mailbox.
#[derive(Debug)]
pub struct Envelope<M> {
    /// Sending process.
    pub from: Pid,
    /// Virtual time at which the message became available to the receiver.
    pub at: SimTime,
    /// Payload.
    pub msg: M,
}

pub(crate) enum EventKind<M> {
    /// Wake a process (timer expiry or receive checkpoint). Stale if the
    /// process generation has moved on.
    Wake { pid: Pid, gen: u64 },
    /// Deliver a message into a mailbox.
    Deliver { dst: Pid, env: Envelope<M> },
}

pub(crate) struct Event<M> {
    pub time: SimTime,
    pub seq: u64,
    pub kind: EventKind<M>,
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<M> Eq for Event<M> {}
impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Event<M> {
    /// Reverse order so that `BinaryHeap` pops the earliest (time, seq).
    fn cmp(&self, other: &Self) -> Ordering {
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// What a blocked process is waiting for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Status {
    /// Currently executing (at most one process at a time).
    Running,
    /// Waiting for a timer.
    Sleeping,
    /// Yielded for a receive; the checkpoint wake will inspect the mailbox.
    Polling { deadline: Option<SimTime> },
    /// Mailbox was empty at the checkpoint; waiting for a delivery
    /// (and possibly a timeout).
    Waiting { deadline: Option<SimTime> },
    /// Finished.
    Exited,
}

pub(crate) struct ProcSlot<M> {
    pub name: String,
    pub daemon: bool,
    pub status: Status,
    /// Bumped on every resume; wake events carry the generation at which
    /// they were scheduled so stale wakes are ignored.
    pub gen: u64,
    pub clock: SimTime,
    pub mailbox: VecDeque<Envelope<M>>,
    pub resume_tx: Sender<Resume>,
    pub panicked: bool,
}

pub(crate) struct Kernel<M> {
    pub heap: BinaryHeap<Event<M>>,
    pub procs: Vec<ProcSlot<M>>,
    pub next_seq: u64,
    pub trace: Option<Vec<TraceEntry>>,
    /// Count of popped events, for the report.
    pub events_processed: u64,
}

impl<M> Kernel<M> {
    pub(crate) fn push_event(&mut self, time: SimTime, kind: EventKind<M>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event { time, seq, kind });
    }

    pub(crate) fn bump_gen(&mut self, pid: Pid) -> u64 {
        self.procs[pid].gen += 1;
        self.procs[pid].gen
    }
}

/// Control messages from process threads back to the engine.
pub(crate) enum Ctrl {
    /// The process blocked (its slot describes on what).
    Yielded(Pid),
    /// The process function returned or unwound.
    Exited(Pid, /*panicked*/ bool),
}

/// Summary of a completed simulation run.
#[derive(Debug)]
pub struct SimReport {
    /// Virtual time of the last processed event.
    pub end_time: SimTime,
    /// Final virtual clock of every process, by name.
    pub proc_clocks: Vec<(String, SimTime)>,
    /// Total number of kernel events processed.
    pub events_processed: u64,
    /// Event trace, if recording was enabled with [`Sim::record_trace`].
    pub trace: Option<Vec<TraceEntry>>,
    /// Messages still sitting in process mailboxes when the run ended,
    /// as `(process name, count)` for each non-empty mailbox. A quiescent
    /// protocol leaves this empty; a wedged recovery path shows up here as
    /// undelivered traffic.
    pub mailbox_backlog: Vec<(String, usize)>,
}

/// A simulation under construction and its runner.
///
/// `M` is the message payload type exchanged between processes.
///
/// ```
/// use repseq_sim::{Sim, Dur};
///
/// let mut sim = Sim::<&'static str>::new();
/// let ping = sim.spawn("ping", |ctx| {
///     ctx.send(1, "hello", ctx.now() + Dur::from_micros(10));
///     Ok(())
/// });
/// assert_eq!(ping, 0);
/// sim.spawn("pong", |ctx| {
///     let env = ctx.recv()?;
///     assert_eq!(env.msg, "hello");
///     assert_eq!(env.at.nanos(), 10_000);
///     Ok(())
/// });
/// let report = sim.run().unwrap();
/// assert_eq!(report.end_time.nanos(), 10_000);
/// ```
pub struct Sim<M: Send + 'static> {
    kernel: Arc<Mutex<Kernel<M>>>,
    ctrl_tx: Sender<Ctrl>,
    ctrl_rx: Receiver<Ctrl>,
    threads: Vec<Option<JoinHandle<()>>>,
    record_trace: bool,
}

impl<M: Send + 'static> Default for Sim<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M: Send + 'static> Sim<M> {
    /// Create an empty simulation.
    pub fn new() -> Self {
        let (ctrl_tx, ctrl_rx) = unbounded();
        Sim {
            kernel: Arc::new(Mutex::new(Kernel {
                heap: BinaryHeap::new(),
                procs: Vec::new(),
                next_seq: 0,
                trace: None,
                events_processed: 0,
            })),
            ctrl_tx,
            ctrl_rx,
            threads: Vec::new(),
            record_trace: false,
        }
    }

    /// Record an event trace in the report (used by determinism tests).
    pub fn record_trace(&mut self, on: bool) {
        self.record_trace = on;
    }

    /// Spawn a primary process. The simulation ends when every primary
    /// process has exited.
    pub fn spawn<F>(&mut self, name: &str, f: F) -> Pid
    where
        F: FnOnce(Ctx<M>) -> Result<(), Stopped> + Send + 'static,
    {
        self.spawn_inner(name, false, f)
    }

    /// Spawn a daemon process (e.g. a protocol request handler). Daemons are
    /// stopped automatically once all primary processes exit: their pending
    /// blocking call returns [`Stopped`].
    pub fn spawn_daemon<F>(&mut self, name: &str, f: F) -> Pid
    where
        F: FnOnce(Ctx<M>) -> Result<(), Stopped> + Send + 'static,
    {
        self.spawn_inner(name, true, f)
    }

    fn spawn_inner<F>(&mut self, name: &str, daemon: bool, f: F) -> Pid
    where
        F: FnOnce(Ctx<M>) -> Result<(), Stopped> + Send + 'static,
    {
        let (resume_tx, resume_rx) = unbounded();
        let pid = {
            let mut k = self.kernel.lock();
            let pid = k.procs.len();
            k.procs.push(ProcSlot {
                name: name.to_string(),
                daemon,
                status: Status::Sleeping,
                gen: 0,
                clock: SimTime::ZERO,
                mailbox: VecDeque::new(),
                resume_tx,
                panicked: false,
            });
            // Initial wake at t=0 so the process starts when the engine runs.
            k.push_event(SimTime::ZERO, EventKind::Wake { pid, gen: 0 });
            pid
        };
        let ctx = Ctx::new(pid, Arc::clone(&self.kernel), self.ctrl_tx.clone(), resume_rx);
        let ctrl_tx = self.ctrl_tx.clone();
        let handle = std::thread::Builder::new()
            .name(format!("sim-{name}"))
            .spawn(move || {
                // Wait for the first resume before touching anything.
                match ctx.wait_first_resume() {
                    Ok(()) => {
                        let guard = ExitGuard { pid, ctrl_tx: ctrl_tx.clone(), armed: true };
                        let _ = f(ctx);
                        guard.disarm_and_exit();
                    }
                    Err(Stopped) => {
                        let _ = ctrl_tx.send(Ctrl::Exited(pid, false));
                    }
                }
            })
            .expect("failed to spawn simulation thread");
        self.threads.push(Some(handle));
        pid
    }

    /// Run the simulation to completion.
    pub fn run(mut self) -> Result<SimReport, SimError> {
        if self.record_trace {
            self.kernel.lock().trace = Some(Vec::new());
        }
        let n_primary = {
            let k = self.kernel.lock();
            k.procs.iter().filter(|p| !p.daemon).count()
        };
        if n_primary == 0 {
            return Err(SimError::NoPrimaryProcesses);
        }
        let mut live_primary = n_primary;
        let mut end_time = SimTime::ZERO;
        let result = loop {
            // Pop the next event (earliest virtual time).
            let action = {
                let mut k = self.kernel.lock();
                match k.heap.pop() {
                    None => {
                        // No events left: either everything exited, or the
                        // remaining processes are deadlocked waiting for
                        // messages that will never arrive.
                        if live_primary == 0 {
                            break Ok(());
                        }
                        let blocked: Vec<(Pid, String)> = k
                            .procs
                            .iter()
                            .enumerate()
                            .filter(|(_, p)| p.status != Status::Exited && !p.daemon)
                            .map(|(i, p)| (i, format!("{} ({:?})", p.name, p.status)))
                            .collect();
                        break Err(SimError::Deadlock { blocked });
                    }
                    Some(ev) => {
                        debug_assert!(ev.time >= end_time, "kernel time went backwards");
                        end_time = end_time.max(ev.time);
                        k.events_processed += 1;
                        if let Some(trace) = &mut k.trace {
                            trace.push(TraceEntry::from_event(&ev));
                        }
                        Self::apply_event(&mut k, ev)
                    }
                }
            };
            // If the event resumed a process, run it until it yields/exits.
            if let Some(pid) = action {
                match self.ctrl_rx.recv().expect("all process threads vanished") {
                    Ctrl::Yielded(_) => {}
                    Ctrl::Exited(xpid, panicked) => {
                        let mut k = self.kernel.lock();
                        let slot = &mut k.procs[xpid];
                        slot.status = Status::Exited;
                        slot.panicked = panicked;
                        if !slot.daemon {
                            live_primary -= 1;
                        }
                        let name = slot.name.clone();
                        drop(k);
                        if panicked {
                            break Err(SimError::ProcessPanicked { pid: xpid, name });
                        }
                        if live_primary == 0 {
                            break Ok(());
                        }
                    }
                }
                let _ = pid; // pid only used for debugging
            }
        };

        // Stop remaining processes (daemons, or everyone on error).
        self.stop_remaining();
        let join_err = self.join_threads();

        let mut k = self.kernel.lock();
        let report = SimReport {
            end_time,
            proc_clocks: k.procs.iter().map(|p| (p.name.clone(), p.clock)).collect(),
            events_processed: k.events_processed,
            trace: k.trace.take(),
            mailbox_backlog: k
                .procs
                .iter()
                .filter(|p| !p.mailbox.is_empty())
                .map(|p| (p.name.clone(), p.mailbox.len()))
                .collect(),
        };
        drop(k);

        match result {
            Ok(()) => {
                if let Some(e) = join_err {
                    return Err(e);
                }
                Ok(report)
            }
            Err(e) => Err(e),
        }
    }

    /// Apply a popped event to the kernel. Returns `Some(pid)` if a process
    /// was resumed and the engine must wait for it to yield.
    fn apply_event(k: &mut Kernel<M>, ev: Event<M>) -> Option<Pid> {
        match ev.kind {
            EventKind::Wake { pid, gen } => {
                let slot = &k.procs[pid];
                if slot.gen != gen
                    || slot.status == Status::Exited
                    || slot.status == Status::Running
                {
                    return None; // stale wake
                }
                match slot.status {
                    Status::Sleeping => Some(Self::resume(k, pid, ev.time, false)),
                    Status::Polling { deadline } => {
                        if !k.procs[pid].mailbox.is_empty() {
                            Some(Self::resume(k, pid, ev.time, false))
                        } else if deadline == Some(ev.time) {
                            // Zero-length timeout: the checkpoint *is* the
                            // deadline.
                            Some(Self::resume(k, pid, ev.time, true))
                        } else {
                            k.procs[pid].status = Status::Waiting { deadline };
                            None
                        }
                    }
                    Status::Waiting { deadline } => {
                        // Only the deadline wake is still live for a waiter.
                        debug_assert_eq!(deadline, Some(ev.time));
                        Some(Self::resume(k, pid, ev.time, true))
                    }
                    Status::Running | Status::Exited => None,
                }
            }
            EventKind::Deliver { dst, env } => {
                let slot = &mut k.procs[dst];
                if slot.status == Status::Exited {
                    return None; // message to a dead process is dropped
                }
                slot.mailbox.push_back(env);
                match slot.status {
                    Status::Waiting { .. } => Some(Self::resume(k, dst, ev.time, false)),
                    _ => None,
                }
            }
        }
    }

    fn resume(k: &mut Kernel<M>, pid: Pid, time: SimTime, timed_out: bool) -> Pid {
        let slot = &mut k.procs[pid];
        debug_assert!(slot.clock <= time, "process resumed into its past");
        slot.gen += 1; // invalidate any other pending wakes
        slot.status = Status::Running;
        slot.clock = time;
        slot.resume_tx.send(Resume::Go { time, timed_out }).expect("process thread vanished");
        pid
    }

    fn stop_remaining(&mut self) {
        // Every remaining process is blocked (none can be Running here).
        // Send Stop; a stopped process may yield a few more times while
        // unwinding through nested calls, so keep answering Stop until it
        // exits.
        let pending: Vec<Pid> = {
            let k = self.kernel.lock();
            k.procs
                .iter()
                .enumerate()
                .filter(|(_, p)| p.status != Status::Exited)
                .map(|(i, _)| i)
                .collect()
        };
        let mut outstanding = pending.len();
        {
            let k = self.kernel.lock();
            for &pid in &pending {
                let _ = k.procs[pid].resume_tx.send(Resume::Stop);
            }
        }
        // Drain control messages until all stopped processes have exited.
        let mut fuel: u64 = 1_000_000;
        while outstanding > 0 && fuel > 0 {
            fuel -= 1;
            match self.ctrl_rx.recv() {
                Ok(Ctrl::Exited(pid, panicked)) => {
                    let mut k = self.kernel.lock();
                    k.procs[pid].status = Status::Exited;
                    k.procs[pid].panicked = panicked;
                    outstanding -= 1;
                }
                Ok(Ctrl::Yielded(pid)) => {
                    // A stopping process yielded again; answer Stop again.
                    let k = self.kernel.lock();
                    let _ = k.procs[pid].resume_tx.send(Resume::Stop);
                }
                Err(_) => break,
            }
        }
    }

    fn join_threads(&mut self) -> Option<SimError> {
        let mut err = None;
        for (pid, h) in self.threads.iter_mut().enumerate() {
            if let Some(h) = h.take() {
                if h.join().is_err() && err.is_none() {
                    let name = self.kernel.lock().procs[pid].name.clone();
                    err = Some(SimError::ProcessPanicked { pid, name });
                }
            }
        }
        err
    }
}

impl<M: Send + 'static> Drop for Sim<M> {
    /// Stop and join any process threads still alive (covers simulations
    /// that are dropped without being run; after `run` this is a no-op).
    fn drop(&mut self) {
        {
            let k = self.kernel.lock();
            for p in &k.procs {
                if p.status != Status::Exited {
                    let _ = p.resume_tx.send(Resume::Stop);
                }
            }
        }
        // Answer any further yields from unwinding processes with Stop.
        loop {
            match self.ctrl_rx.try_recv() {
                Ok(Ctrl::Yielded(pid)) => {
                    let k = self.kernel.lock();
                    let _ = k.procs[pid].resume_tx.send(Resume::Stop);
                }
                Ok(Ctrl::Exited(..)) => {}
                Err(_) => {
                    if self.threads.iter().all(|t| t.is_none()) {
                        break;
                    }
                    // Join whatever we can; threads answered with Stop will
                    // exit promptly.
                    let mut progressed = false;
                    for h in self.threads.iter_mut() {
                        if let Some(handle) = h.take() {
                            if handle.is_finished() {
                                let _ = handle.join();
                                progressed = true;
                            } else {
                                *h = Some(handle);
                            }
                        }
                    }
                    if !progressed {
                        std::thread::yield_now();
                    }
                }
            }
        }
    }
}

/// Sends `Exited` when a process function unwinds.
struct ExitGuard {
    pid: Pid,
    ctrl_tx: Sender<Ctrl>,
    armed: bool,
}

impl ExitGuard {
    fn disarm_and_exit(mut self) {
        self.armed = false;
        let _ = self.ctrl_tx.send(Ctrl::Exited(self.pid, false));
    }
}

impl Drop for ExitGuard {
    fn drop(&mut self) {
        if self.armed {
            let _ = self.ctrl_tx.send(Ctrl::Exited(self.pid, true));
        }
    }
}
